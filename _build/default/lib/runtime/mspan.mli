(** mspans: runs of pages carved into equally-sized slots (paper §3.3). *)

(** Ownership state; tcfree's fast path requires [In_mcache] of the
    allocating thread. *)
type state =
  | In_mcache of int  (** owned by thread/P [i] *)
  | In_mcentral
  | Dangling  (** large span mid-way through the 2-step free (fig. 9) *)
  | Free

type t = {
  span_id : int;
  class_idx : int;  (** −1 for a dedicated large-object span *)
  npages : int;
  slot_size : int;
  nslots : int;
  alloc_bits : Bytes.t;
  mutable free_index : int;  (** next never-used slot (bump pointer) *)
  mutable free_list : int list;  (** slots freed by tcfree/sweep *)
  mutable allocated : int;  (** live slots *)
  mutable state : state;
}

val create_small : int -> t
(** [create_small class_idx]: a span sized by
    {!Sizeclass.pages_for_class}. *)

val create_large : int -> t
(** [create_large bytes]: a one-slot dedicated span. *)

val slot_allocated : t -> int -> bool

val is_full : t -> bool

(** Pop the free list or bump the free index; [None] when full. *)
val alloc_slot : t -> int option

(** Free one slot; reverts the bump pointer when the slot is on top
    (cascading over already-freed slots), otherwise free-lists it. *)
val free_slot : t -> int -> unit
