(** The tcfree family (paper §5, Table 4): best-effort explicit
    deallocation that gives up rather than compromise safety. *)

type outcome =
  | Freed of int  (** bytes reclaimed *)
  | Gave_up of Metrics.giveup

(** [tcfree heap ~thread ~source addr] — the dispatching primitive.
    Small objects take the mcache fast path (ownership checked); large
    objects take the 2-step dangling-span path of fig. 9.  Never raises:
    double frees, stack objects, nil and foreign spans all give up. *)
val tcfree :
  Heap.t -> thread:int -> source:Metrics.free_source -> int -> outcome
