lib/runtime/gc_collector.ml: Hashtbl Heap Int64 List Mcentral Metrics Mspan Pageheap Printf Stack Sys Unix
