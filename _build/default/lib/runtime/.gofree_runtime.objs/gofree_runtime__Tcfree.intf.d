lib/runtime/tcfree.mli: Heap Metrics
