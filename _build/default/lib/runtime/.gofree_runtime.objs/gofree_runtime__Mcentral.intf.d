lib/runtime/mcentral.mli: Mspan Pageheap
