lib/runtime/mspan.ml: Bytes List Sizeclass
