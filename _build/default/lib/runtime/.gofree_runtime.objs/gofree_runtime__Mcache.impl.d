lib/runtime/mcache.ml: Array Mcentral Mspan Sizeclass
