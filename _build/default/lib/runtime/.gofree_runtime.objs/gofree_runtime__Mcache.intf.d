lib/runtime/mcache.mli: Mcentral Mspan
