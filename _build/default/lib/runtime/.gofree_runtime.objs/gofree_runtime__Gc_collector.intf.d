lib/runtime/gc_collector.mli: Heap
