lib/runtime/heap.mli: Hashtbl Mcache Mcentral Metrics Mspan Pageheap
