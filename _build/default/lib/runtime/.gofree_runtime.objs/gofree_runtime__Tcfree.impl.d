lib/runtime/tcfree.ml: Array Hashtbl Heap Mcache Metrics Mspan Pageheap
