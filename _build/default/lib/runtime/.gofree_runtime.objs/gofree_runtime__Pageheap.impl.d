lib/runtime/pageheap.ml: Mspan Sizeclass
