lib/runtime/sizeclass.ml: Array List
