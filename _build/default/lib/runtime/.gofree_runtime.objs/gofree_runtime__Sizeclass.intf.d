lib/runtime/sizeclass.mli:
