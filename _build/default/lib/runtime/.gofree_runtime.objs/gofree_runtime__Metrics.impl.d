lib/runtime/metrics.ml: Array Format Int64
