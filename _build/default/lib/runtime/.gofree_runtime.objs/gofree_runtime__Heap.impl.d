lib/runtime/heap.ml: Array Hashtbl Mcache Mcentral Metrics Mspan Pageheap Sizeclass
