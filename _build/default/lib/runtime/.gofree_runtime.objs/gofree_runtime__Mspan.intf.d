lib/runtime/mspan.mli: Bytes
