lib/runtime/metrics.mli: Format
