lib/runtime/mcentral.ml: Array List Mspan Pageheap Sizeclass
