lib/runtime/pageheap.mli: Mspan
