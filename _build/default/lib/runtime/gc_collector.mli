(** Non-moving mark-sweep collector with GOGC pacing (paper §3.3). *)

(** Mark from the registered roots and sweep every unmarked heap object;
    retires dangling spans (fig. 9 step 2), returns empty spans' pages,
    updates the pacing target and opens the simulated concurrent-mark
    window during which tcfree backs off. *)
val collect : Heap.t -> unit

(** Safepoint check: run a cycle iff the pacer requested one and GC is
    enabled. *)
val maybe_collect : Heap.t -> unit
