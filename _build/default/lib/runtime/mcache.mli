(** Per-thread (per-P) span cache: the lock-free top allocation layer
    (paper §3.3). *)

type t = {
  thread_id : int;
  spans : Mspan.t option array;  (** current span per size class *)
}

val create : int -> t

(** Allocate a slot of the class, swapping in a new span from mcentral
    when the cached one fills up.  Returns the span and slot index. *)
val alloc : t -> Mcentral.t -> int -> Mspan.t * int

(** Whether this cache currently owns [span] — the TcfreeSmall fast-path
    condition. *)
val owns : t -> Mspan.t -> bool

(** Return every cached span to mcentral (thread exit / migration). *)
val flush : t -> Mcentral.t -> unit
