(** GoFree pipeline configuration.

    The defaults match the paper's shipped configuration: explicit
    deallocation of slices and maps only (§6.5 motivates the choice via
    Table 8), inter-procedural content tags enabled, map-growth freeing
    enabled. The other combinations exist for the ablation benchmarks. *)

type free_targets =
  | Slices_and_maps  (** the paper's choice (§6.5) *)
  | All_pointers  (** also free [new]/[&T{}] objects through raw pointers *)

type t = {
  insert_tcfree : bool;
      (** master switch: [false] reproduces stock Go compilation *)
  targets : free_targets;
  ipa : bool;
      (** use extended parameter tags; [false] forces default summaries at
          every call site (ablation: kills cross-function freeing) *)
  backprop : bool;
      (** GoFree's leaf→root propagation (fig. 5 lines 10–13); disabling
          it makes the completeness analysis unsound — used only by the
          robustness ablation to show the poison test catching it *)
}

let gofree =
  { insert_tcfree = true; targets = Slices_and_maps; ipa = true;
    backprop = true }

let go = { gofree with insert_tcfree = false }

let all_targets = { gofree with targets = All_pointers }

let no_ipa = { gofree with ipa = false }

let unsound_no_backprop = { gofree with backprop = false }
