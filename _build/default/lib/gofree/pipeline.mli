(** The GoFree compilation pipeline: source → parse → typecheck → escape
    analysis → tcfree instrumentation. *)

open Minigo

type compiled = {
  c_program : Tast.program;  (** instrumented in place *)
  c_analysis : Gofree_escape.Analysis.t;
  c_inserted : Instrument.inserted list;
  c_config : Config.t;
}

exception Compile_error of string

(** Parse and typecheck only; wraps lexer/parser/typechecker errors in
    {!Compile_error} with positions. *)
val parse_and_check : string -> Tast.program

(** Compile a MiniGo source string under [config]
    (default {!Config.gofree}). *)
val compile : ?config:Config.t -> string -> compiled

(** Compile with stock-Go settings (no tcfree). *)
val compile_go : string -> compiled
