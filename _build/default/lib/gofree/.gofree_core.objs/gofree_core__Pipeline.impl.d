lib/gofree/pipeline.ml: Config Gofree_escape Instrument Lexer Minigo Parser Printf Tast Token Typecheck
