lib/gofree/report.ml: Buffer Format Gofree_escape Hashtbl Instrument List Minigo Pretty Printf String Tast
