lib/gofree/report.mli: Format Gofree_escape Instrument Minigo Tast
