lib/gofree/pipeline.mli: Config Gofree_escape Instrument Minigo Tast
