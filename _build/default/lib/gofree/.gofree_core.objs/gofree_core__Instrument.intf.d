lib/gofree/instrument.mli: Config Gofree_escape Minigo Tast Types
