lib/gofree/config.mli:
