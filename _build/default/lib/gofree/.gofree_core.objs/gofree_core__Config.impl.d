lib/gofree/config.ml:
