lib/gofree/instrument.ml: Config Gofree_escape List Minigo Option Tast Types
