(** Human-readable and Graphviz dumps of analysis results, used by
    [gofreec analyze] and the examples. *)

open Minigo

(** Property table and points-to sets of one analyzed function. *)
val pp_function :
  Format.formatter -> Gofree_escape.Analysis.t -> string -> unit

val pp_inserted : Format.formatter -> Instrument.inserted list -> unit

(** Points-to set of a named variable as sorted location names (the
    Table 3 comparison). *)
val points_to_of_var :
  Gofree_escape.Analysis.t -> func:string -> var:string -> string list

(** The analyzed location of a named variable, if any. *)
val var_properties :
  Gofree_escape.Analysis.t -> func:string -> var:string ->
  Gofree_escape.Loc.t option

(** Stack/heap decision per allocation site of a function. *)
val site_decisions :
  Gofree_escape.Analysis.t -> Tast.program -> func:string ->
  (Tast.alloc_site * bool) list

(** Escape graph as Graphviz DOT in the paper's fig. 1 style: blue =
    stack, green = heap, dashed = dummy locations, edge labels = Derefs
    weights. *)
val to_dot : Gofree_escape.Analysis.t -> string -> string option
