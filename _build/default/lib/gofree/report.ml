(** Human-readable dumps of the analysis results: escape-graph locations,
    their Table-1 properties, points-to sets, stack/heap decisions and the
    inserted tcfrees.  Used by [gofreec --print-escape] and the
    escape_explorer example. *)

open Minigo

(* Heap decision and property table for one analyzed function. *)
let pp_function fmt (analysis : Gofree_escape.Analysis.t) name =
  match Gofree_escape.Analysis.func_result analysis name with
  | None -> Format.fprintf fmt "function %s: not analyzed@." name
  | Some fr ->
    let g = fr.Gofree_escape.Analysis.fr_ctx.Gofree_escape.Build.g in
    Format.fprintf fmt "@[<v>== escape analysis of %s ==@," name;
    Format.fprintf fmt "locations: %d, edges: %d@," g.Gofree_escape.Graph.n_locs
      g.Gofree_escape.Graph.n_edges;
    List.iter
      (fun (l : Gofree_escape.Loc.t) ->
        let pts = Gofree_escape.Graph.points_to g l in
        let pts_names =
          String.concat ", "
            (List.map Gofree_escape.Loc.name
               (List.sort
                  (fun (a : Gofree_escape.Loc.t) b ->
                    compare a.Gofree_escape.Loc.id b.Gofree_escape.Loc.id)
                  pts))
        in
        Format.fprintf fmt
          "%-24s heap=%-5b exposes=%-5b incomplete=%-5b outlived=%-5b \
           ptsHeap=%-5b toFree=%-5b pointsTo={%s}@,"
          (Gofree_escape.Loc.name l)
          l.Gofree_escape.Loc.heap_alloc l.Gofree_escape.Loc.exposes
          (Gofree_escape.Loc.incomplete l)
          l.Gofree_escape.Loc.outlived l.Gofree_escape.Loc.points_to_heap
          (Gofree_escape.Propagate.to_free l)
          pts_names)
      (Gofree_escape.Graph.all_locs g);
    Format.fprintf fmt "@]"

let pp_inserted fmt (inserted : Instrument.inserted list) =
  Format.fprintf fmt "@[<v>inserted tcfree calls: %d@,"
    (List.length inserted);
  List.iter
    (fun { Instrument.ins_func; ins_var; ins_kind } ->
      Format.fprintf fmt "  %s: %s(%s)@," ins_func
        (Pretty.free_kind_str ins_kind)
        ins_var.Tast.v_name)
    inserted;
  Format.fprintf fmt "@]"

(** Points-to set of a named variable in a function, as location names —
    the Table 3 comparison uses this. *)
let points_to_of_var (analysis : Gofree_escape.Analysis.t) ~func ~var :
    string list =
  match Gofree_escape.Analysis.func_result analysis func with
  | None -> []
  | Some fr ->
    let ctx = fr.Gofree_escape.Analysis.fr_ctx in
    let found = ref [] in
    Hashtbl.iter
      (fun _ (l : Gofree_escape.Loc.t) ->
        match l.Gofree_escape.Loc.kind with
        | Gofree_escape.Loc.Kvar v when String.equal v.Tast.v_name var ->
          found :=
            List.map Gofree_escape.Loc.name
              (Gofree_escape.Graph.points_to ctx.Gofree_escape.Build.g l)
        | _ -> ())
      ctx.Gofree_escape.Build.var_locs;
    List.sort compare !found

(** Table-1 style property record of a named variable. *)
let var_properties (analysis : Gofree_escape.Analysis.t) ~func ~var :
    Gofree_escape.Loc.t option =
  match Gofree_escape.Analysis.func_result analysis func with
  | None -> None
  | Some fr ->
    let ctx = fr.Gofree_escape.Analysis.fr_ctx in
    Hashtbl.fold
      (fun _ (l : Gofree_escape.Loc.t) acc ->
        match l.Gofree_escape.Loc.kind with
        | Gofree_escape.Loc.Kvar v when String.equal v.Tast.v_name var ->
          Some l
        | _ -> acc)
      ctx.Gofree_escape.Build.var_locs None

(** Heap decision of the [n]-th allocation site (program order) in
    [func]. *)
let site_decisions (analysis : Gofree_escape.Analysis.t)
    (p : Tast.program) ~func : (Tast.alloc_site * bool) list =
  List.filter_map
    (fun (site : Tast.alloc_site) ->
      if String.equal site.Tast.site_func func then
        Some (site, Gofree_escape.Analysis.site_is_heap analysis ~func site)
      else None)
    p.Tast.p_sites

(* ------------------------------------------------------------------ *)
(* Graphviz export                                                     *)
(* ------------------------------------------------------------------ *)

(** Render one analyzed function's escape graph as Graphviz DOT, in the
    style of the paper's fig. 1: blue for stack-allocated locations,
    green for heap-allocated ones, dashed boxes for dummy locations, and
    edge labels carrying the Derefs weights of Table 2. *)
let to_dot (analysis : Gofree_escape.Analysis.t) name : string option =
  match Gofree_escape.Analysis.func_result analysis name with
  | None -> None
  | Some fr ->
    let g = fr.Gofree_escape.Analysis.fr_ctx.Gofree_escape.Build.g in
    let buf = Buffer.create 1024 in
    let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    add "digraph escape_graph_%s {\n" name;
    add "  rankdir=LR;\n  node [fontname=\"Helvetica\"];\n";
    List.iter
      (fun (l : Gofree_escape.Loc.t) ->
        let dummy =
          match l.Gofree_escape.Loc.kind with
          | Gofree_escape.Loc.Kvar _ | Gofree_escape.Loc.Ksite _ -> false
          | _ -> true
        in
        let color =
          if l.Gofree_escape.Loc.heap_alloc then "palegreen"
          else "lightblue"
        in
        let extras =
          String.concat ""
            [
              (if Gofree_escape.Loc.incomplete l then "\\nincomplete"
               else "");
              (if l.Gofree_escape.Loc.exposes then "\\nexposes" else "");
              (if Gofree_escape.Propagate.to_free l then "\\nToFree"
               else "");
            ]
        in
        add "  n%d [label=\"%s%s\", style=\"filled%s\", fillcolor=%s];\n"
          l.Gofree_escape.Loc.id
          (Gofree_escape.Loc.name l)
          extras
          (if dummy then ",dashed" else "")
          color)
      (Gofree_escape.Graph.all_locs g);
    List.iter
      (fun (l : Gofree_escape.Loc.t) ->
        List.iter
          (fun { Gofree_escape.Graph.src; weight } ->
            add "  n%d -> n%d [label=\"%d\"];\n"
              src.Gofree_escape.Loc.id l.Gofree_escape.Loc.id weight)
          (Gofree_escape.Graph.incoming_edges g l))
      (Gofree_escape.Graph.all_locs g);
    add "}\n";
    Some (Buffer.contents buf)
