(** Static decisions handed from the compiler to the runtime: which
    allocation sites are heap-allocated, and which variables must be
    boxed because their address escapes. *)

open Minigo

type t = {
  site_heap : bool array;  (** indexed by [site_id] *)
  var_boxed : bool array;  (** indexed by [v_id] *)
}

val of_analysis : Gofree_escape.Analysis.t -> Tast.program -> t

val site_is_heap : t -> Tast.alloc_site -> bool

val var_is_boxed : t -> Tast.var -> bool
