(** Static decisions handed from the compiler to the runtime: which
    allocation sites are heap-allocated and which variables must be boxed
    (their storage moved to the heap because their address escapes). *)

open Minigo

type t = {
  site_heap : bool array;  (** indexed by [site_id] *)
  var_boxed : bool array;  (** indexed by [v_id] *)
}

let of_analysis (analysis : Gofree_escape.Analysis.t) (p : Tast.program) : t
    =
  let site_heap = Array.make (max 1 (List.length p.Tast.p_sites)) false in
  List.iter
    (fun (site : Tast.alloc_site) ->
      site_heap.(site.Tast.site_id) <-
        Gofree_escape.Analysis.site_is_heap analysis
          ~func:site.Tast.site_func site)
    p.Tast.p_sites;
  let var_boxed = Array.make (max 1 p.Tast.p_nvars) false in
  Hashtbl.iter
    (fun _ (fr : Gofree_escape.Analysis.func_result) ->
      Hashtbl.iter
        (fun var_id (l : Gofree_escape.Loc.t) ->
          match l.Gofree_escape.Loc.kind with
          | Gofree_escape.Loc.Kvar v
            when v.Tast.v_kind <> Tast.Vglobal
                 && l.Gofree_escape.Loc.heap_alloc ->
            if var_id < Array.length var_boxed then
              var_boxed.(var_id) <- true
          | _ -> ())
        fr.Gofree_escape.Analysis.fr_ctx.Gofree_escape.Build.var_locs)
    analysis.Gofree_escape.Analysis.funcs;
  { site_heap; var_boxed }

let site_is_heap t (site : Tast.alloc_site) =
  site.Tast.site_id < Array.length t.site_heap
  && t.site_heap.(site.Tast.site_id)

let var_is_boxed t (v : Tast.var) =
  v.Tast.v_id < Array.length t.var_boxed && t.var_boxed.(v.Tast.v_id)
