lib/interp/value.ml: Array Gofree_runtime Hashtbl List Minigo Printf String
