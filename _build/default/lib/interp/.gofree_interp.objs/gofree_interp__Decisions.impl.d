lib/interp/decisions.ml: Array Gofree_escape Hashtbl List Minigo Tast
