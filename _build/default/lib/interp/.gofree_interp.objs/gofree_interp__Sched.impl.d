lib/interp/sched.ml: Effect Queue
