lib/interp/sched.mli: Effect Queue
