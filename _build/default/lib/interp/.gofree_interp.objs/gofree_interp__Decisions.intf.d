lib/interp/decisions.mli: Gofree_escape Minigo Tast
