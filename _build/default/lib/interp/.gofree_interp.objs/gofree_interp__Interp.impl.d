lib/interp/interp.ml: Array Ast Buffer Char Decisions Gofree_runtime Hashtbl Int64 List Minigo Option Printf Sched String Tast Types Value
