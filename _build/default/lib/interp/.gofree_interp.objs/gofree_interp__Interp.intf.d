lib/interp/interp.mli: Buffer Decisions Gofree_runtime Hashtbl Minigo Sched Tast Value
