lib/interp/runner.mli: Gofree_core Gofree_runtime Interp
