lib/interp/value.mli: Gofree_runtime Minigo
