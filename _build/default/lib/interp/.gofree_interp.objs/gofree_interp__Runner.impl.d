lib/interp/runner.ml: Buffer Decisions Gofree_core Gofree_runtime Hashtbl Int64 Interp List Minigo Sched Tast Unix Value
