(** Function summaries: Go's parameter tags extended with GoFree's content
    tags (paper §4.4).

    A summary compresses a callee's escape graph into:
    - flows from each parameter to each return value (with [MinDerefs]
      weights), and from each parameter to the heap — Go's parameter tag;
    - per return value, a content tag recording whether the returned value
      may point at a fresh heap allocation ([ct_heap_alloc], from the
      callee's [PointsToHeap]) and whether its points-to set may be
      incomplete because of indirect stores {e inside the callee}
      ([ct_incomplete]); plus the return value's own store-origin
      incompleteness ([ret_incomplete], the paper's
      [Incomplete(l) = Incomplete(m)] adjustment).

    The [default] summary is used for unknown callees (recursion, §4.4):
    all parameters flow to the heap, all return values come from the heap
    with incomplete points-to sets. *)

type param_flow = {
  pf_param : int;  (** parameter index *)
  pf_target : [ `Return of int | `Heap | `Defer ];
  pf_derefs : int;  (** MinDerefs along the compressed edge *)
}

type content_tag = {
  ct_heap_alloc : bool;
      (** the return value may point at a heap allocation made by the
          callee: a deallocation opportunity for the caller *)
  ct_incomplete : bool;
      (** indirect stores inside the callee may have put untracked values
          behind this return value *)
  ret_incomplete : bool;
      (** store-origin incompleteness of the return value itself *)
}

type t = {
  s_name : string;
  s_nparams : int;
  s_flows : param_flow list;
  s_contents : content_tag array;  (** one per return value *)
}

(** Conservative summary for an unknown callee. *)
let default ~name ~nparams ~nresults =
  {
    s_name = name;
    s_nparams = nparams;
    s_flows =
      List.init nparams (fun i ->
          { pf_param = i; pf_target = `Heap; pf_derefs = 0 });
    s_contents =
      Array.init nresults (fun _ ->
          { ct_heap_alloc = true; ct_incomplete = true;
            ret_incomplete = true });
  }

let pp fmt s =
  let target_str = function
    | `Return i -> Printf.sprintf "return%d" i
    | `Heap -> "heapLoc"
    | `Defer -> "deferLoc"
  in
  Format.fprintf fmt "@[<v 2>summary %s:" s.s_name;
  List.iter
    (fun f ->
      Format.fprintf fmt "@,param%d --%d--> %s" f.pf_param f.pf_derefs
        (target_str f.pf_target))
    s.s_flows;
  Array.iteri
    (fun i ct ->
      Format.fprintf fmt
        "@,content%d: heap_alloc=%b incomplete=%b ret_incomplete=%b" i
        ct.ct_heap_alloc ct.ct_incomplete ct.ret_incomplete)
    s.s_contents;
  Format.fprintf fmt "@]"
