lib/escape/propagate.mli: Graph Loc
