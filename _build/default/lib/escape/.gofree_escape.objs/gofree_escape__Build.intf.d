lib/escape/build.mli: Graph Hashtbl Loc Minigo Summary Tast Types
