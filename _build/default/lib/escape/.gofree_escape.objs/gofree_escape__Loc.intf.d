lib/escape/loc.mli: Format Minigo
