lib/escape/propagate.ml: Array Graph List Loc Queue
