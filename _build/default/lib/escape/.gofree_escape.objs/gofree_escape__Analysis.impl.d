lib/escape/analysis.ml: Array Build Graph Hashtbl List Loc Minigo Propagate String Summary Tast
