lib/escape/analysis.mli: Build Hashtbl Loc Minigo Propagate Summary Tast
