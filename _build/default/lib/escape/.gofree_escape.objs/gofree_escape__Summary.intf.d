lib/escape/summary.mli: Format
