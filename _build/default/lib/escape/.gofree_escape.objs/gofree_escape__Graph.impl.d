lib/escape/graph.ml: Hashtbl List Loc Queue
