lib/escape/build.ml: Array Graph Hashtbl List Loc Minigo Option Printf Summary Tast Types
