lib/escape/summary.ml: Array Format List Printf
