lib/escape/graph.mli: Hashtbl Loc
