lib/escape/loc.ml: Format Minigo Printf
