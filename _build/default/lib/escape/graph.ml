(** The escape graph (paper Def 4.1) and the per-root walk that computes
    [Holds]/[MinDerefs]/[PointsTo] (Defs 4.6–4.9).

    Edges are directed value flows: [p = q] adds [q --0--> p], [p = &q]
    adds [q --(-1)--> p], [p = *q] adds [q --1--> p] (Table 2).  The walk
    from a root location traverses edges {e backwards} — from the root to
    everything whose value can reach it — relaxing dereference counts with
    the [max(0, d) + w] recurrence of Def 4.7, so the resulting count for a
    location [m] is [MinDerefs(m, root)]; [-1] means the root may hold
    [&m], i.e. [m ∈ PointsTo(root)]. *)

type edge = { src : Loc.t; weight : int }

type t = {
  mutable locs : Loc.t list;  (** all locations, reverse creation order *)
  mutable n_locs : int;
  incoming : (int, edge list ref) Hashtbl.t;  (** dst id → edges into dst *)
  heap : Loc.t;  (** the dummy heapLoc *)
  defer : Loc.t;  (** sink for defer/panic arguments *)
  mutable returns : Loc.t array;  (** per-return-value dummies *)
  mutable epoch : int;  (** walk generation counter *)
  mutable n_edges : int;
  mutable walk_steps : int;  (** total SPFA relaxations, for complexity stats *)
}

let make_loc id kind ~loop_depth ~decl_depth : Loc.t =
  {
    Loc.id;
    kind;
    loop_depth;
    decl_depth;
    heap_alloc = false;
    exposes = false;
    inc_param = false;
    inc_store = false;
    outermost_ref = decl_depth;
    outlived = false;
    points_to_heap = false;
    walk_derefs = 0;
    walk_epoch = -1;
    walk_queued = false;
  }

let fresh_loc g kind ~loop_depth ~decl_depth : Loc.t =
  let l = make_loc g.n_locs kind ~loop_depth ~decl_depth in
  g.n_locs <- g.n_locs + 1;
  g.locs <- l :: g.locs;
  l

let create () =
  let heap = make_loc 0 Loc.Kheap ~loop_depth:(-1) ~decl_depth:(-1) in
  heap.Loc.heap_alloc <- true;
  heap.Loc.exposes <- true;
  heap.Loc.inc_store <- true;
  let defer = make_loc 1 Loc.Kdefer ~loop_depth:0 ~decl_depth:0 in
  defer.Loc.exposes <- true;
  defer.Loc.inc_store <- true;
  {
    locs = [ defer; heap ];
    n_locs = 2;
    incoming = Hashtbl.create 64;
    heap;
    defer;
    returns = [||];
    epoch = 0;
    n_edges = 0;
    walk_steps = 0;
  }

let add_edge g ~src ~dst ~weight =
  if src.Loc.id <> dst.Loc.id || weight <> 0 then begin
    let edges =
      match Hashtbl.find_opt g.incoming dst.Loc.id with
      | Some r -> r
      | None ->
        let r = ref [] in
        Hashtbl.replace g.incoming dst.Loc.id r;
        r
    in
    (* Deduplicate: flow-insensitive construction frequently emits the
       same edge (e.g. assignments in loops lowered from [+=]). *)
    if not (List.exists (fun e -> e.src == src && e.weight = weight) !edges)
    then begin
      edges := { src; weight } :: !edges;
      g.n_edges <- g.n_edges + 1
    end
  end

let incoming_edges g dst =
  match Hashtbl.find_opt g.incoming dst.Loc.id with
  | Some r -> !r
  | None -> []

(** [walk_one g root f] computes [MinDerefs(m, root)] for every
    [m ∈ Holds(root)] with an SPFA (queue-optimized Bellman-Ford, the
    paper's §4.1 choice) and calls [f m derefs] for each, excluding the
    root itself.  Runs in O(N) average time on the sparse graph. *)
let walk_one g (root : Loc.t) (f : Loc.t -> int -> unit) =
  g.epoch <- g.epoch + 1;
  let epoch = g.epoch in
  root.Loc.walk_derefs <- 0;
  root.Loc.walk_epoch <- epoch;
  root.Loc.walk_queued <- true;
  let queue = Queue.create () in
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let dst = Queue.pop queue in
    dst.Loc.walk_queued <- false;
    let base = max 0 dst.Loc.walk_derefs in
    List.iter
      (fun { src; weight } ->
        g.walk_steps <- g.walk_steps + 1;
        let d = base + weight in
        let improved =
          src.Loc.walk_epoch <> epoch || d < src.Loc.walk_derefs
        in
        if improved then begin
          src.Loc.walk_epoch <- epoch;
          src.Loc.walk_derefs <- d;
          if not src.Loc.walk_queued then begin
            src.Loc.walk_queued <- true;
            Queue.add src queue
          end
        end)
      (incoming_edges g dst)
  done;
  List.iter
    (fun (l : Loc.t) ->
      if l.Loc.walk_epoch = epoch && l.Loc.id <> root.Loc.id then
        f l l.Loc.walk_derefs)
    g.locs

(** [min_derefs g m root] is [MinDerefs(m, root)], or [None] when
    [m ∉ Holds(root)].  Convenience for tests and summary extraction. *)
let min_derefs g (m : Loc.t) (root : Loc.t) : int option =
  let result = ref None in
  walk_one g root (fun l d -> if l.Loc.id = m.Loc.id then result := Some d);
  if m.Loc.id = root.Loc.id then Some 0 else !result

(** [points_to g root] materializes [PointsTo(root)] (Def 4.9). *)
let points_to g (root : Loc.t) : Loc.t list =
  let acc = ref [] in
  walk_one g root (fun l d -> if d = -1 then acc := l :: !acc);
  !acc

let all_locs g = List.rev g.locs
