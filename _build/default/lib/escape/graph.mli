(** The escape graph (paper Def 4.1) and the per-root SPFA walk computing
    [Holds] / [MinDerefs] / [PointsTo] (Defs 4.6–4.9). *)

type edge = { src : Loc.t; weight : int }

type t = {
  mutable locs : Loc.t list;  (** all locations, reverse creation order *)
  mutable n_locs : int;
  incoming : (int, edge list ref) Hashtbl.t;
  heap : Loc.t;  (** the dummy heapLoc *)
  defer : Loc.t;  (** sink for defer/panic arguments *)
  mutable returns : Loc.t array;  (** per-return-value dummies *)
  mutable epoch : int;
  mutable n_edges : int;
  mutable walk_steps : int;  (** total SPFA relaxations (complexity stats) *)
}

(** A fresh graph containing only [heapLoc] and the defer sink. *)
val create : unit -> t

(** Allocate a location in the graph. *)
val fresh_loc : t -> Loc.kind -> loop_depth:int -> decl_depth:int -> Loc.t

(** Add a dataflow edge [src --weight--> dst] (Table 2).  Duplicate edges
    and weight-0 self loops are dropped. *)
val add_edge : t -> src:Loc.t -> dst:Loc.t -> weight:int -> unit

val incoming_edges : t -> Loc.t -> edge list

(** [walk_one g root f] calls [f m (MinDerefs m root)] for every
    [m ∈ Holds(root)] except the root itself.  O(N) average time per walk
    on the sparse graph (queue-optimized Bellman-Ford). *)
val walk_one : t -> Loc.t -> (Loc.t -> int -> unit) -> unit

(** [MinDerefs(m, root)] (Def 4.8), or [None] if [m ∉ Holds(root)]. *)
val min_derefs : t -> Loc.t -> Loc.t -> int option

(** Materialized [PointsTo(root)] (Def 4.9): locations at MinDerefs −1. *)
val points_to : t -> Loc.t -> Loc.t list

(** All locations, in creation order. *)
val all_locs : t -> Loc.t list
