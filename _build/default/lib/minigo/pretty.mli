(** Pretty-printer for the typed AST; shows inserted tcfree calls with an
    [// inserted] marker. *)

val binop_str : Ast.binop -> string

val free_kind_str : Tast.free_kind -> string

val pp_expr : Format.formatter -> Tast.expr -> unit

val pp_stmt : int -> Format.formatter -> Tast.stmt -> unit
(** [pp_stmt indent fmt stmt] *)

val pp_func : Format.formatter -> Tast.func -> unit

val pp_program : Format.formatter -> Tast.program -> unit

val program_to_string : Tast.program -> string

val func_to_string : Tast.func -> string
