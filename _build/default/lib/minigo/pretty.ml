(** Pretty-printer for the typed AST.

    Used by [gofreec --print-instrumented] to show where tcfree calls were
    inserted, and by tests to check instrumentation placement. *)

open Format

let binop_str = function
  | Ast.Badd -> "+"
  | Ast.Bsub -> "-"
  | Ast.Bmul -> "*"
  | Ast.Bdiv -> "/"
  | Ast.Bmod -> "%"
  | Ast.Band_bits -> "&"
  | Ast.Bor_bits -> "|"
  | Ast.Bxor -> "^"
  | Ast.Bshl -> "<<"
  | Ast.Bshr -> ">>"
  | Ast.Beq -> "=="
  | Ast.Bne -> "!="
  | Ast.Blt -> "<"
  | Ast.Ble -> "<="
  | Ast.Bgt -> ">"
  | Ast.Bge -> ">="
  | Ast.Band -> "&&"
  | Ast.Bor -> "||"

let rec pp_expr fmt (e : Tast.expr) =
  match e.Tast.desc with
  | Tast.Tint n -> fprintf fmt "%d" n
  | Tast.Tfloat f -> fprintf fmt "%g" f
  | Tast.Tbool b -> fprintf fmt "%b" b
  | Tast.Tstring s -> fprintf fmt "%S" s
  | Tast.Tnil -> pp_print_string fmt "nil"
  | Tast.Tvar v -> pp_print_string fmt v.Tast.v_name
  | Tast.Tbinop (op, a, b) ->
    fprintf fmt "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | Tast.Tunop (Ast.Uneg, a) -> fprintf fmt "-%a" pp_expr a
  | Tast.Tunop (Ast.Unot, a) -> fprintf fmt "!%a" pp_expr a
  | Tast.Taddr lv -> fprintf fmt "&%a" pp_lvalue lv
  | Tast.Tderef a -> fprintf fmt "*%a" pp_expr a
  | Tast.Tindex (a, i) | Tast.Tmap_get (a, i) ->
    fprintf fmt "%a[%a]" pp_expr a pp_expr i
  | Tast.Tfield (a, _, name) -> fprintf fmt "%a.%s" pp_expr a name
  | Tast.Tcall (name, args) -> fprintf fmt "%s(%a)" name pp_args args
  | Tast.Tmake_slice (_, elem, len, None) ->
    fprintf fmt "make([]%s, %a)" (Types.to_string elem) pp_expr len
  | Tast.Tmake_slice (_, elem, len, Some cap) ->
    fprintf fmt "make([]%s, %a, %a)" (Types.to_string elem) pp_expr len
      pp_expr cap
  | Tast.Tmake_map (_, k, v) ->
    fprintf fmt "make(map[%s]%s)" (Types.to_string k) (Types.to_string v)
  | Tast.Tnew (_, t) -> fprintf fmt "new(%s)" (Types.to_string t)
  | Tast.Tslice_lit (_, elem, es) ->
    fprintf fmt "[]%s{%a}" (Types.to_string elem) pp_args es
  | Tast.Tstruct_lit (name, es) -> fprintf fmt "%s{%a}" name pp_args es
  | Tast.Taddr_struct_lit (_, name, es) ->
    fprintf fmt "&%s{%a}" name pp_args es
  | Tast.Tappend (_, s, es) ->
    fprintf fmt "append(%a, %a)" pp_expr s pp_args es
  | Tast.Tlen a -> fprintf fmt "len(%a)" pp_expr a
  | Tast.Tcap a -> fprintf fmt "cap(%a)" pp_expr a
  | Tast.Titoa a -> fprintf fmt "itoa(%a)" pp_expr a
  | Tast.Trand a -> fprintf fmt "rand(%a)" pp_expr a
  | Tast.Tsubstr (s, a, b) ->
    fprintf fmt "substr(%a, %a, %a)" pp_expr s pp_expr a pp_expr b
  | Tast.Tslice_sub (e, lo, hi) ->
    let pp_opt fmt = function
      | Some e -> pp_expr fmt e
      | None -> ()
    in
    fprintf fmt "%a[%a:%a]" pp_expr e pp_opt lo pp_opt hi
  | Tast.Tcopy (dst, src) ->
    fprintf fmt "copy(%a, %a)" pp_expr dst pp_expr src
  | Tast.Tmap_get_ok (m, k) -> fprintf fmt "%a[%a]" pp_expr m pp_expr k
  | Tast.Trecover -> fprintf fmt "recover()"

and pp_args fmt args =
  pp_print_list
    ~pp_sep:(fun fmt () -> pp_print_string fmt ", ")
    pp_expr fmt args

and pp_lvalue fmt = function
  | Tast.Lvar v -> pp_print_string fmt v.Tast.v_name
  | Tast.Lderef e -> fprintf fmt "*%a" pp_expr e
  | Tast.Lindex (a, i) | Tast.Lmap (a, i) ->
    fprintf fmt "%a[%a]" pp_expr a pp_expr i
  | Tast.Lfield (e, _, name) -> fprintf fmt "%a.%s" pp_expr e name

let free_kind_str = function
  | Tast.Free_slice -> "TcfreeSlice"
  | Tast.Free_map -> "TcfreeMap"
  | Tast.Free_obj -> "Tcfree"

let rec pp_stmt ind fmt (s : Tast.stmt) =
  let pad = String.make ind ' ' in
  match s with
  | Tast.Sdecl (v, None) ->
    fprintf fmt "%svar %s %s" pad v.Tast.v_name (Types.to_string v.Tast.v_ty)
  | Tast.Sdecl (v, Some e) ->
    fprintf fmt "%s%s := %a" pad v.Tast.v_name pp_expr e
  | Tast.Smulti_decl (vs, e) ->
    fprintf fmt "%s%s := %a" pad
      (String.concat ", " (List.map (fun v -> v.Tast.v_name) vs))
      pp_expr e
  | Tast.Sassign (lv, e) ->
    fprintf fmt "%s%a = %a" pad pp_lvalue lv pp_expr e
  | Tast.Smulti_assign (lvs, e) ->
    fprintf fmt "%s%a = %a" pad
      (pp_print_list
         ~pp_sep:(fun fmt () -> pp_print_string fmt ", ")
         pp_lvalue)
      lvs pp_expr e
  | Tast.Sexpr e -> fprintf fmt "%s%a" pad pp_expr e
  | Tast.Sif (c, b1, b2) -> begin
    fprintf fmt "%sif %a %a" pad pp_expr c (pp_block ind) b1;
    match b2 with
    | Some b -> fprintf fmt " else %a" (pp_block ind) b
    | None -> ()
  end
  | Tast.Sfor (init, cond, post, body) ->
    let pp_opt_stmt fmt = function
      | Some s -> pp_stmt 0 fmt s
      | None -> ()
    in
    let pp_opt_expr fmt = function
      | Some e -> pp_expr fmt e
      | None -> ()
    in
    fprintf fmt "%sfor %a; %a; %a %a" pad pp_opt_stmt init pp_opt_expr cond
      pp_opt_stmt post (pp_block ind) body
  | Tast.Sforrange_map (v, m, body) ->
    fprintf fmt "%sfor %s := range %a %a" pad v.Tast.v_name pp_expr m
      (pp_block ind) body
  | Tast.Sreturn [] -> fprintf fmt "%sreturn" pad
  | Tast.Sreturn es -> fprintf fmt "%sreturn %a" pad pp_args es
  | Tast.Sblock b -> fprintf fmt "%s%a" pad (pp_block ind) b
  | Tast.Sgo (name, args) ->
    fprintf fmt "%sgo %s(%a)" pad name pp_args args
  | Tast.Sdefer (name, args) ->
    fprintf fmt "%sdefer %s(%a)" pad name pp_args args
  | Tast.Spanic e -> fprintf fmt "%spanic(%a)" pad pp_expr e
  | Tast.Sbreak -> fprintf fmt "%sbreak" pad
  | Tast.Scontinue -> fprintf fmt "%scontinue" pad
  | Tast.Sdelete (m, k) ->
    fprintf fmt "%sdelete(%a, %a)" pad pp_expr m pp_expr k
  | Tast.Sprint es -> fprintf fmt "%sprintln(%a)" pad pp_args es
  | Tast.Stcfree (v, kind) ->
    fprintf fmt "%s%s(%s) // inserted" pad (free_kind_str kind)
      v.Tast.v_name

and pp_block ind fmt (b : Tast.block) =
  fprintf fmt "{";
  List.iter
    (fun s -> fprintf fmt "@\n%a" (pp_stmt (ind + 2)) s)
    b.Tast.b_stmts;
  fprintf fmt "@\n%s}" (String.make ind ' ')

let pp_func fmt (f : Tast.func) =
  let params =
    String.concat ", "
      (List.map
         (fun v ->
           Printf.sprintf "%s %s" v.Tast.v_name (Types.to_string v.Tast.v_ty))
         f.Tast.f_params)
  in
  let results =
    match f.Tast.f_results with
    | [] -> ""
    | [ t ] -> " " ^ Types.to_string t
    | ts -> " (" ^ String.concat ", " (List.map Types.to_string ts) ^ ")"
  in
  fprintf fmt "func %s(%s)%s %a" f.Tast.f_name params results (pp_block 0)
    f.Tast.f_body

let pp_program fmt (p : Tast.program) =
  List.iter (fun f -> fprintf fmt "%a@\n@\n" pp_func f) p.Tast.p_funcs

let program_to_string p = asprintf "%a" pp_program p

let func_to_string f = asprintf "%a" pp_func f
