(** Hand-written lexer for MiniGo with Go-style automatic semicolon
    insertion: a newline terminates a statement when the last token on
    the line could end one. *)

exception Error of string * Token.pos

type state

val make : string -> state

(** Current position (1-based line/column). *)
val pos : state -> Token.pos

(** Next token, applying semicolon insertion; returns [EOF] forever once
    exhausted. *)
val next : state -> Token.t * Token.pos

(** Tokenize a whole source string (tests, tooling). *)
val tokenize : string -> (Token.t * Token.pos) list
