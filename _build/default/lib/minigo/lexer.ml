(** Hand-written lexer for MiniGo with Go-style automatic semicolon
    insertion: a newline terminates a statement when the last token on the
    line could end one (see {!Token.ends_statement}). *)

exception Error of string * Token.pos

let error pos fmt = Format.kasprintf (fun s -> raise (Error (s, pos))) fmt

type state = {
  src : string;
  mutable off : int;  (** byte offset of the next unread character *)
  mutable line : int;
  mutable bol : int;  (** offset of the beginning of the current line *)
  mutable last : Token.t;  (** last emitted significant token *)
  mutable pending_semi : bool;
}

let make src =
  { src; off = 0; line = 1; bol = 0; last = Token.EOF; pending_semi = false }

let pos st : Token.pos = { line = st.line; col = st.off - st.bol + 1 }

let at_end st = st.off >= String.length st.src

let peek st = if at_end st then '\000' else st.src.[st.off]

let peek2 st =
  if st.off + 1 >= String.length st.src then '\000' else st.src.[st.off + 1]

let advance st =
  if not (at_end st) then begin
    if st.src.[st.off] = '\n' then begin
      st.line <- st.line + 1;
      st.bol <- st.off + 1
    end;
    st.off <- st.off + 1
  end

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

(* Skip whitespace and comments.  When a newline is crossed and the last
   token ends a statement, record a pending semicolon to be emitted before
   the next token. *)
let rec skip_trivia st =
  if at_end st then ()
  else
    match peek st with
    | ' ' | '\t' | '\r' ->
      advance st;
      skip_trivia st
    | '\n' ->
      if Token.ends_statement st.last then st.pending_semi <- true;
      advance st;
      skip_trivia st
    | '/' when peek2 st = '/' ->
      while (not (at_end st)) && peek st <> '\n' do
        advance st
      done;
      skip_trivia st
    | '/' when peek2 st = '*' ->
      let start = pos st in
      advance st;
      advance st;
      let rec loop () =
        if at_end st then error start "unterminated block comment"
        else if peek st = '*' && peek2 st = '/' then begin
          advance st;
          advance st
        end
        else begin
          (* A block comment containing a newline also triggers semicolon
             insertion, as in Go. *)
          if peek st = '\n' && Token.ends_statement st.last then
            st.pending_semi <- true;
          advance st;
          loop ()
        end
      in
      loop ();
      skip_trivia st
    | _ -> ()

let lex_number st =
  let start = st.off in
  let start_pos = pos st in
  while is_digit (peek st) do
    advance st
  done;
  if peek st = '.' && is_digit (peek2 st) then begin
    advance st;
    while is_digit (peek st) do
      advance st
    done;
    let s = String.sub st.src start (st.off - start) in
    match float_of_string_opt s with
    | Some f -> Token.FLOAT_LIT f
    | None -> error start_pos "invalid float literal %S" s
  end
  else
    let s = String.sub st.src start (st.off - start) in
    match int_of_string_opt s with
    | Some n -> Token.INT_LIT n
    | None -> error start_pos "invalid integer literal %S" s

let lex_string st =
  let start_pos = pos st in
  advance st;
  let buf = Buffer.create 16 in
  let rec loop () =
    if at_end st then error start_pos "unterminated string literal"
    else
      match peek st with
      | '"' -> advance st
      | '\n' -> error start_pos "newline in string literal"
      | '\\' ->
        advance st;
        let c =
          match peek st with
          | 'n' -> '\n'
          | 't' -> '\t'
          | 'r' -> '\r'
          | '\\' -> '\\'
          | '"' -> '"'
          | '0' -> '\000'
          | c -> error (pos st) "unknown escape sequence '\\%c'" c
        in
        Buffer.add_char buf c;
        advance st;
        loop ()
      | c ->
        Buffer.add_char buf c;
        advance st;
        loop ()
  in
  loop ();
  Token.STRING_LIT (Buffer.contents buf)

let lex_ident st =
  let start = st.off in
  while is_ident_char (peek st) do
    advance st
  done;
  let s = String.sub st.src start (st.off - start) in
  match Token.keyword_of_string s with Some kw -> kw | None -> Token.IDENT s

(* Lex one raw token, assuming trivia has been skipped. *)
let lex_raw st =
  let p = pos st in
  let tok =
    if at_end st then Token.EOF
    else
      match peek st with
      | c when is_digit c -> lex_number st
      | c when is_ident_start c -> lex_ident st
      | '"' -> lex_string st
      | '(' -> advance st; Token.LPAREN
      | ')' -> advance st; Token.RPAREN
      | '{' -> advance st; Token.LBRACE
      | '}' -> advance st; Token.RBRACE
      | '[' -> advance st; Token.LBRACKET
      | ']' -> advance st; Token.RBRACKET
      | ',' -> advance st; Token.COMMA
      | ';' -> advance st; Token.SEMI
      | '.' -> advance st; Token.DOT
      | ':' ->
        advance st;
        if peek st = '=' then (advance st; Token.DEFINE) else Token.COLON
      | '=' ->
        advance st;
        if peek st = '=' then (advance st; Token.EQ) else Token.ASSIGN
      | '!' ->
        advance st;
        if peek st = '=' then (advance st; Token.NE) else Token.BANG
      | '<' ->
        advance st;
        if peek st = '=' then (advance st; Token.LE)
        else if peek st = '<' then (advance st; Token.SHL)
        else Token.LT
      | '>' ->
        advance st;
        if peek st = '=' then (advance st; Token.GE)
        else if peek st = '>' then (advance st; Token.SHR)
        else Token.GT
      | '+' ->
        advance st;
        if peek st = '+' then (advance st; Token.PLUSPLUS)
        else if peek st = '=' then (advance st; Token.PLUS_ASSIGN)
        else Token.PLUS
      | '-' ->
        advance st;
        if peek st = '-' then (advance st; Token.MINUSMINUS)
        else if peek st = '=' then (advance st; Token.MINUS_ASSIGN)
        else Token.MINUS
      | '*' ->
        advance st;
        if peek st = '=' then (advance st; Token.STAR_ASSIGN) else Token.STAR
      | '/' -> advance st; Token.SLASH
      | '%' -> advance st; Token.PERCENT
      | '&' ->
        advance st;
        if peek st = '&' then (advance st; Token.AMPAMP) else Token.AMP
      | '|' ->
        advance st;
        if peek st = '|' then (advance st; Token.BARBAR) else Token.BAR
      | '^' -> advance st; Token.CARET
      | c -> error p "unexpected character %C" c
  in
  (tok, p)

let next st : Token.t * Token.pos =
  skip_trivia st;
  if st.pending_semi then begin
    st.pending_semi <- false;
    st.last <- Token.SEMI;
    (Token.SEMI, pos st)
  end
  else begin
    let tok, p = lex_raw st in
    (* At end of file, terminate a dangling statement as Go does. *)
    let tok, p =
      if tok = Token.EOF && Token.ends_statement st.last then (Token.SEMI, p)
      else (tok, p)
    in
    st.last <- tok;
    (tok, p)
  end

(** Tokenize a whole source string (used by tests and the parser). *)
let tokenize src =
  let st = make src in
  let rec loop acc =
    let tok, p = next st in
    if tok = Token.EOF then List.rev ((tok, p) :: acc)
    else loop ((tok, p) :: acc)
  in
  loop []
