(** Resolved MiniGo types, sizes and pointer-shape queries.

    Sizes follow Go on 64-bit targets: words are 8 bytes, slice headers are
    3 words, string headers 2 words.  Sizes drive both the stack/heap size
    thresholds of the escape analysis and the simulated allocator. *)

type t =
  | Int
  | Bool
  | String
  | Float
  | Ptr of t
  | Slice of t
  | Map of t * t
  | Struct of string  (** named struct; fields resolved via {!env} *)
  | Tuple of t list  (** internal: multi-value call result *)
  | Unit  (** internal: void function call *)
  | Nil  (** internal: type of the [nil] literal before unification *)

(** Struct environment: field names and types per declared struct. *)
type env = { structs : (string, (string * t) list) Hashtbl.t }

let create_env () = { structs = Hashtbl.create 16 }

let add_struct env name fields = Hashtbl.replace env.structs name fields

let struct_fields env name =
  match Hashtbl.find_opt env.structs name with
  | Some fields -> fields
  | None -> invalid_arg (Printf.sprintf "unknown struct type %s" name)

let field_index env sname fname =
  let fields = struct_fields env sname in
  let rec loop i = function
    | [] -> None
    | (n, ty) :: _ when n = fname -> Some (i, ty)
    | _ :: rest -> loop (i + 1) rest
  in
  loop 0 fields

let rec to_string = function
  | Int -> "int"
  | Bool -> "bool"
  | String -> "string"
  | Float -> "float"
  | Ptr t -> "*" ^ to_string t
  | Slice t -> "[]" ^ to_string t
  | Map (k, v) -> "map[" ^ to_string k ^ "]" ^ to_string v
  | Struct s -> s
  | Tuple ts -> "(" ^ String.concat ", " (List.map to_string ts) ^ ")"
  | Unit -> "()"
  | Nil -> "nil"

let word_size = 8

(** Size in bytes of a value of this type when stored inline (in a
    variable, field or slice element). *)
let rec size_of env = function
  | Int | Float | Bool -> word_size
  | String -> 2 * word_size  (* data pointer + length *)
  | Ptr _ -> word_size
  | Slice _ -> 3 * word_size  (* data pointer + len + cap *)
  | Map _ -> word_size  (* pointer to the map header *)
  | Struct name ->
    List.fold_left (fun acc (_, ty) -> acc + size_of env ty) 0
      (struct_fields env name)
  | Tuple ts -> List.fold_left (fun acc ty -> acc + size_of env ty) 0 ts
  | Unit | Nil -> 0

(** Whether values of this type can contain pointers into the heap: such
    values must be traced by the GC, and only such values matter to the
    completeness analysis (the paper notes Exposes/Incomplete need not be
    computed for pointer-free data). *)
let rec contains_pointers env = function
  | Int | Float | Bool -> false
  | String -> false
    (* MiniGo strings are immutable byte payloads without internal
       pointers; the payload itself is a heap object but string values are
       traced via their owning object. *)
  | Ptr _ | Slice _ | Map _ -> true
  | Struct name ->
    List.exists (fun (_, ty) -> contains_pointers env ty)
      (struct_fields env name)
  | Tuple ts -> List.exists (contains_pointers env) ts
  | Unit | Nil -> false

(** Types [nil] can inhabit. *)
let nilable = function
  | Ptr _ | Slice _ | Map _ -> true
  | _ -> false

let rec equal a b =
  match (a, b) with
  | Int, Int | Bool, Bool | String, String | Float, Float | Unit, Unit
  | Nil, Nil ->
    true
  | Ptr a, Ptr b | Slice a, Slice b -> equal a b
  | Map (ka, va), Map (kb, vb) -> equal ka kb && equal va vb
  | Struct a, Struct b -> String.equal a b
  | Tuple a, Tuple b ->
    List.length a = List.length b && List.for_all2 equal a b
  | (Int | Bool | String | Float | Ptr _ | Slice _ | Map _ | Struct _
    | Tuple _ | Unit | Nil), _ ->
    false

(** [compatible a b] allows [nil] where a nilable type is expected. *)
let compatible a b =
  equal a b || (a = Nil && nilable b) || (b = Nil && nilable a)
