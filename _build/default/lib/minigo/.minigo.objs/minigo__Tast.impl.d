lib/minigo/tast.ml: Ast List Option String Token Types
