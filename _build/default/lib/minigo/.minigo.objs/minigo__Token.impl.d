lib/minigo/token.ml: Format Printf
