lib/minigo/types.ml: Hashtbl List Printf String
