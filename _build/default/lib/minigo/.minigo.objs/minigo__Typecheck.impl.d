lib/minigo/typecheck.ml: Ast Format Hashtbl List Option Printf Tast Token Types
