lib/minigo/typecheck.mli: Ast Tast Token
