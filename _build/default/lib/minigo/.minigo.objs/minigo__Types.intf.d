lib/minigo/types.mli: Hashtbl
