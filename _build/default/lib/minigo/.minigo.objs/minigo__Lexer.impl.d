lib/minigo/lexer.ml: Buffer Format List String Token
