lib/minigo/parser.ml: Ast Format Lexer List Token
