lib/minigo/ast.ml: Token
