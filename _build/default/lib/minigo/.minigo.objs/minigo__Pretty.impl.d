lib/minigo/pretty.ml: Ast Format List Printf String Tast Types
