lib/minigo/pretty.mli: Ast Format Tast
