lib/minigo/parser.mli: Ast Token
