lib/minigo/lexer.mli: Token
