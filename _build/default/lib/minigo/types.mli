(** Resolved MiniGo types, sizes and pointer-shape queries (64-bit Go
    layout: 8-byte words, 3-word slice headers, 2-word strings). *)

type t =
  | Int
  | Bool
  | String
  | Float
  | Ptr of t
  | Slice of t
  | Map of t * t
  | Struct of string  (** named struct; fields resolved via {!env} *)
  | Tuple of t list  (** internal: multi-value call result *)
  | Unit  (** internal: void function call *)
  | Nil  (** internal: type of the [nil] literal *)

(** Struct environment: declared field lists by struct name. *)
type env = { structs : (string, (string * t) list) Hashtbl.t }

val create_env : unit -> env

val add_struct : env -> string -> (string * t) list -> unit

(** Raises [Invalid_argument] for unknown structs. *)
val struct_fields : env -> string -> (string * t) list

(** Field position and type, or [None] if absent. *)
val field_index : env -> string -> string -> (int * t) option

val to_string : t -> string

val word_size : int

(** Inline size in bytes of a value of this type. *)
val size_of : env -> t -> int

(** Whether values can carry heap pointers (GC-traced; the only types the
    completeness analysis must track). *)
val contains_pointers : env -> t -> bool

(** Types [nil] inhabits. *)
val nilable : t -> bool

val equal : t -> t -> bool

(** Equality up to [nil] against a nilable type. *)
val compatible : t -> t -> bool
