(** Name resolution and type checking: lowers the surface {!Ast} to the
    typed {!Tast}, assigning unique variable ids, the scope and loop
    depths the escape analysis needs (Defs 4.3, 4.13), and one allocation
    site per allocating expression. *)

exception Error of string * Token.pos

(** Check a whole program; raises {!Error} on the first problem. *)
val check : Ast.program -> Tast.program
