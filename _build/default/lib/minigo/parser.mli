(** Recursive-descent parser for MiniGo.

    Implements Go's composite-literal restriction: [T{...}] is not
    recognized at the top level of an if/for header (the brace would read
    as the statement block); parentheses or brackets re-enable it. *)

exception Error of string * Token.pos

(** Parse a complete source string into the surface AST. *)
val parse : string -> Ast.program
