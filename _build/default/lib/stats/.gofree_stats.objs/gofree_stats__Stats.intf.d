lib/stats/stats.mli:
