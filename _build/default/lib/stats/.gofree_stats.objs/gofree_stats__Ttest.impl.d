lib/stats/ttest.ml: Array Float Stats
