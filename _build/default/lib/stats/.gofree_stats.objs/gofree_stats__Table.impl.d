lib/stats/table.ml: Array List Printf String
