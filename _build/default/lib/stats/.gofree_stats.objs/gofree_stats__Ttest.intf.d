lib/stats/ttest.mli:
