lib/stats/stats.ml: Array
