(** Welch's unequal-variance t-test (Table 7's significance column) with
    a self-contained Student-t CDF. *)

(** Log-gamma via the Lanczos approximation (~15 digits). *)
val log_gamma : float -> float

(** Regularized incomplete beta I_x(a, b), continued-fraction
    evaluation. *)
val incomplete_beta : float -> float -> float -> float

(** Two-sided p-value of Student's t with [df] degrees of freedom. *)
val t_two_sided : t:float -> df:float -> float

type result = {
  t_stat : float;
  df : float;  (** Welch–Satterthwaite degrees of freedom *)
  p_value : float;
  significant : bool;  (** at the paper's p = 0.01 threshold *)
}

val welch : float array -> float array -> result
