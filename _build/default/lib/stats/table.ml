(** Minimal ASCII table rendering for the benchmark harness: the paper's
    tables are regenerated as aligned plain-text rows. *)

type align = Left | Right

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : string list list;  (** reverse order *)
}

let create ?aligns headers =
  let aligns =
    match aligns with
    | Some a -> a
    | None -> List.map (fun _ -> Right) headers
  in
  { headers; aligns; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let render t : string =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i c ->
          if i < ncols then widths.(i) <- max widths.(i) (String.length c))
        row)
    all;
  let pad align width s =
    let n = width - String.length s in
    if n <= 0 then s
    else
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun i c ->
           let align = try List.nth t.aligns i with _ -> Right in
           pad align widths.(i) c)
         row)
  in
  let sep =
    String.concat "--"
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n"
    ((render_row t.headers :: sep :: List.map render_row rows) @ [ "" ])

let pct x = Printf.sprintf "%.0f%%" (100.0 *. x)

let pct1 x = Printf.sprintf "%.1f%%" (100.0 *. x)

let pvalue p =
  if p < 0.001 then "<0.001" else Printf.sprintf "%.3f" p

let bytes n =
  if n >= 10 * 1024 * 1024 then Printf.sprintf "%.1fMB"
      (float_of_int n /. 1048576.0)
  else if n >= 10 * 1024 then Printf.sprintf "%.1fKB"
      (float_of_int n /. 1024.0)
  else Printf.sprintf "%dB" n
