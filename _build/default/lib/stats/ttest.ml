(** Welch's unequal-variance t-test, used for Table 7's significance
    column (the paper greys out results that are not significant at
    p = 0.01).

    The two-sided p-value needs the Student-t CDF, computed through the
    regularized incomplete beta function I_x(a, b) with the standard
    continued-fraction evaluation (Lentz's algorithm). *)

let rec log_gamma x =
  (* Lanczos approximation, g = 7, n = 9; accurate to ~15 digits. *)
  let coeffs =
    [|
      0.99999999999980993; 676.5203681218851; -1259.1392167224028;
      771.32342877765313; -176.61502916214059; 12.507343278686905;
      -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7;
    |]
  in
  if x < 0.5 then
    (* reflection formula *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma_pos (1.0 -. x) coeffs
  else log_gamma_pos x coeffs

and log_gamma_pos x coeffs =
  let x = x -. 1.0 in
  let a = ref coeffs.(0) in
  let t = x +. 7.5 in
  for i = 1 to 8 do
    a := !a +. (coeffs.(i) /. (x +. float_of_int i))
  done;
  (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a

(* Continued fraction for the incomplete beta function (Lentz). *)
let betacf a b x =
  let max_iter = 200 in
  let eps = 3e-12 in
  let fpmin = 1e-300 in
  let qab = a +. b and qap = a +. 1.0 and qam = a -. 1.0 in
  let c = ref 1.0 in
  let d = ref (1.0 -. (qab *. x /. qap)) in
  if abs_float !d < fpmin then d := fpmin;
  d := 1.0 /. !d;
  let h = ref !d in
  let m = ref 1 in
  let continue = ref true in
  while !continue && !m <= max_iter do
    let mf = float_of_int !m in
    let m2 = 2.0 *. mf in
    (* even step *)
    let aa = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
    d := 1.0 +. (aa *. !d);
    if abs_float !d < fpmin then d := fpmin;
    c := 1.0 +. (aa /. !c);
    if abs_float !c < fpmin then c := fpmin;
    d := 1.0 /. !d;
    h := !h *. !d *. !c;
    (* odd step *)
    let aa =
      -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2))
    in
    d := 1.0 +. (aa *. !d);
    if abs_float !d < fpmin then d := fpmin;
    c := 1.0 +. (aa /. !c);
    if abs_float !c < fpmin then c := fpmin;
    d := 1.0 /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if abs_float (del -. 1.0) < eps then continue := false;
    incr m
  done;
  !h

(** Regularized incomplete beta I_x(a, b). *)
let incomplete_beta a b x =
  if x <= 0.0 then 0.0
  else if x >= 1.0 then 1.0
  else begin
    let ln_front =
      log_gamma (a +. b) -. log_gamma a -. log_gamma b
      +. (a *. log x)
      +. (b *. log (1.0 -. x))
    in
    let front = exp ln_front in
    if x < (a +. 1.0) /. (a +. b +. 2.0) then front *. betacf a b x /. a
    else 1.0 -. (front *. betacf b a (1.0 -. x) /. b)
  end

(** Two-sided p-value of Student's t with [df] degrees of freedom. *)
let t_two_sided ~t ~df =
  if df <= 0.0 then 1.0
  else incomplete_beta (df /. 2.0) 0.5 (df /. (df +. (t *. t)))

type result = {
  t_stat : float;
  df : float;
  p_value : float;
  significant : bool;  (** at the paper's p = 0.01 threshold *)
}

(** Welch's t-test on two independent samples. *)
let welch (a : float array) (b : float array) : result =
  let na = float_of_int (Array.length a) in
  let nb = float_of_int (Array.length b) in
  if na < 2.0 || nb < 2.0 then
    { t_stat = 0.0; df = 0.0; p_value = 1.0; significant = false }
  else begin
    let va = Stats.variance a /. na in
    let vb = Stats.variance b /. nb in
    let se = sqrt (va +. vb) in
    if se = 0.0 then
      let equal_means = Stats.mean a = Stats.mean b in
      {
        t_stat = (if equal_means then 0.0 else infinity);
        df = na +. nb -. 2.0;
        p_value = (if equal_means then 1.0 else 0.0);
        significant = not equal_means;
      }
    else begin
      let t = (Stats.mean a -. Stats.mean b) /. se in
      let df =
        ((va +. vb) ** 2.0)
        /. ((va ** 2.0 /. (na -. 1.0)) +. (vb ** 2.0 /. (nb -. 1.0)))
      in
      let p = t_two_sided ~t ~df in
      { t_stat = t; df; p_value = p; significant = p < 0.01 }
    end
  end
