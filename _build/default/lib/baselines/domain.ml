(** Shared location domain for the baseline analyses (paper §2.1.2,
    Table 3): named variables and allocation sites, using the same
    printable names as the escape analysis so points-to sets can be
    compared side by side. *)

open Minigo

type loc =
  | Lvar of Tast.var
  | Lsite of Tast.alloc_site
  | Lheap  (** the conservative unknown *)

let name = function
  | Lvar v -> v.Tast.v_name
  | Lsite s -> Printf.sprintf "alloc#%d" s.Tast.site_id
  | Lheap -> "heapLoc"

let id = function
  | Lvar v -> v.Tast.v_id
  | Lsite s -> 1_000_000 + s.Tast.site_id
  | Lheap -> -1

let compare_loc a b = compare (id a) (id b)

module Loc_set = Set.Make (struct
  type t = loc

  let compare = compare_loc
end)

(** The assignment skeleton both baselines consume: each MiniGo statement
    reduced to the four canonical forms of the paper's Table 2, plus
    explicit allocation bindings.  [derefs] follows the same convention:
    -1 address-of, 0 copy, +1 load through. *)
type assignment = {
  a_dst : loc option;  (** [None]: flows to an untracked sink (heap) *)
  a_dst_derefs : int;  (** 0 = direct store, 1 = store through dst *)
  a_src : loc;
  a_src_derefs : int;
}

(* Flows of an expression as (location, derefs) pairs, like the escape
   analysis but without any graph side effects. *)
let rec flows (e : Tast.expr) : (loc * int) list =
  match e.Tast.desc with
  | Tast.Tvar v -> [ (Lvar v, 0) ]
  | Tast.Tderef a -> List.map (fun (l, d) -> (l, d + 1)) (flows a)
  | Tast.Tindex (a, _) -> begin
    match a.Tast.ty with
    | Minigo.Types.String -> []
    | _ -> List.map (fun (l, d) -> (l, d + 1)) (flows a)
  end
  | Tast.Tmap_get (m, _) | Tast.Tmap_get_ok (m, _) ->
    List.map (fun (l, d) -> (l, d + 1)) (flows m)
  | Tast.Tfield (a, _, _) ->
    let extra = match a.Tast.ty with Minigo.Types.Ptr _ -> 1 | _ -> 0 in
    List.map (fun (l, d) -> (l, d + extra)) (flows a)
  | Tast.Taddr lv -> addr_flows lv
  | Tast.Tmake_slice (site, _, _, _)
  | Tast.Tmake_map (site, _, _)
  | Tast.Tnew (site, _)
  | Tast.Tslice_lit (site, _, _)
  | Tast.Taddr_struct_lit (site, _, _) ->
    [ (Lsite site, -1) ]
  | Tast.Tappend (site, s, _) -> (Lsite site, -1) :: flows s
  | Tast.Tslice_sub (e, _, _) -> begin
    match e.Tast.ty with Minigo.Types.String -> [] | _ -> flows e
  end
  | Tast.Tstruct_lit (_, es) -> List.concat_map flows es
  | Tast.Tcall _ -> [ (Lheap, 0) ]  (* both baselines are intra-procedural *)
  | _ -> []

and addr_flows (lv : Tast.lvalue) : (loc * int) list =
  match lv with
  | Tast.Lvar v -> [ (Lvar v, -1) ]
  | Tast.Lderef e -> flows e
  | Tast.Lindex (a, _) -> flows a
  | Tast.Lmap (m, _) -> flows m
  | Tast.Lfield (e, _, _) -> begin
    match e.Tast.ty with
    | Minigo.Types.Ptr _ -> flows e
    | _ -> begin
      match e.Tast.desc with
      | Tast.Tvar v -> [ (Lvar v, -1) ]
      | _ -> flows e
    end
  end

(** Collect the assignment skeleton of one function. *)
let assignments_of (f : Tast.func) : assignment list =
  let acc = ref [] in
  let emit ?(dst_derefs = 0) dst (src, src_derefs) =
    acc :=
      { a_dst = dst; a_dst_derefs = dst_derefs; a_src = src;
        a_src_derefs = src_derefs }
      :: !acc
  in
  let emit_flows ?(dst_derefs = 0) dst e =
    List.iter (fun fl -> emit ~dst_derefs dst fl) (flows e)
  in
  let store_lvalue lv (e : Tast.expr) =
    match lv with
    | Tast.Lvar v -> emit_flows (Some (Lvar v)) e
    | Tast.Lderef p ->
      List.iter
        (fun (pl, pd) ->
          if pd = 0 then emit_flows ~dst_derefs:1 (Some pl) e
          else emit_flows None e)
        (flows p)
    | Tast.Lindex (a, _) ->
      List.iter
        (fun (al, ad) ->
          if ad = 0 then emit_flows ~dst_derefs:1 (Some al) e
          else emit_flows None e)
        (flows a)
    | Tast.Lmap (m, _) ->
      List.iter
        (fun (ml, md) ->
          if md = 0 then emit_flows ~dst_derefs:1 (Some ml) e
          else emit_flows None e)
        (flows m)
    | Tast.Lfield (base, _, _) -> begin
      match base.Tast.ty with
      | Minigo.Types.Ptr _ ->
        List.iter
          (fun (bl, bd) ->
            if bd = 0 then emit_flows ~dst_derefs:1 (Some bl) e
            else emit_flows None e)
          (flows base)
      | _ -> begin
        match base.Tast.desc with
        | Tast.Tvar v -> emit_flows (Some (Lvar v)) e
        | _ -> emit_flows None e
      end
    end
  in
  Tast.iter_stmts
    (fun s ->
      match s with
      | Tast.Sdecl (v, Some e) -> emit_flows (Some (Lvar v)) e
      | Tast.Sdecl (_, None) -> ()
      | Tast.Smulti_decl (vars, _) ->
        List.iter (fun v -> emit (Some (Lvar v)) (Lheap, 0)) vars
      | Tast.Sassign (lv, e) -> store_lvalue lv e
      | Tast.Smulti_assign (lvs, _) ->
        List.iter
          (fun lv ->
            match lv with
            | Tast.Lvar v -> emit (Some (Lvar v)) (Lheap, 0)
            | _ -> ())
          lvs
      | Tast.Sreturn es | Tast.Sprint es ->
        List.iter (fun e -> emit_flows None e) es
      | Tast.Sgo (_, es) | Tast.Sdefer (_, es) ->
        List.iter (fun e -> emit_flows None e) es
      | Tast.Spanic e -> emit_flows None e
      | Tast.Sforrange_map (v, m, _) ->
        List.iter
          (fun (l, d) -> emit (Some (Lvar v)) (l, d + 1))
          (flows m)
      | _ -> ())
    f.Tast.f_body;
  List.rev !acc
