(** Connection-graph baseline: an Andersen-style inclusion-based
    points-to analysis that does track indirect stores (paper §2.1.2,
    Table 3's rightmost column).

    Constraint forms over the shared {!Domain} (field-insensitive):

    - [p = &q]   →  q ∈ pts(p)
    - [p = q]    →  pts(q) ⊆ pts(p)
    - [p = *q]   →  ∀r ∈ pts(q): pts(r) ⊆ pts(p)
    - [*p = q]   →  ∀r ∈ pts(p): pts(q) ⊆ pts(r)

    The complex forms can materialize O(N) new inclusion edges per
    statement, which is where the O(N^3) worst case comes from — the
    compile-speed benchmark measures exactly this against the O(N^2)
    escape graph. *)

open Minigo

type node = {
  n_loc : Domain.loc;
  mutable pts : Domain.Loc_set.t;
  mutable subset_of : int list;  (** pts(this) ⊆ pts(target) *)
  mutable load_into : int list;  (** p = *this: ∀r∈pts(this): r ⊆ target *)
  mutable store_from : int list;  (** *this = q: ∀r∈pts(this): q ⊆ r *)
}

type t = {
  nodes : (int, node) Hashtbl.t;
  mutable work : int list;
  mutable edge_insertions : int;  (** complexity counter *)
}

let node t (l : Domain.loc) : node =
  let i = Domain.id l in
  match Hashtbl.find_opt t.nodes i with
  | Some n -> n
  | None ->
    let n =
      { n_loc = l; pts = Domain.Loc_set.empty; subset_of = [];
        load_into = []; store_from = [] }
    in
    Hashtbl.replace t.nodes i n;
    n

let add_pts t (n : node) (l : Domain.loc) =
  if not (Domain.Loc_set.mem l n.pts) then begin
    n.pts <- Domain.Loc_set.add l n.pts;
    t.work <- Domain.id n.n_loc :: t.work
  end

let add_subset t (src : node) (dst : node) =
  let di = Domain.id dst.n_loc in
  if Domain.id src.n_loc <> di && not (List.mem di src.subset_of) then begin
    src.subset_of <- di :: src.subset_of;
    t.edge_insertions <- t.edge_insertions + 1;
    t.work <- Domain.id src.n_loc :: t.work
  end

(* Normalize a flow with arbitrary derefs into the four canonical forms
   by introducing no new locations: derefs ≥ 2 collapse through pts
   chains during solving, so we keep a (loc, derefs) pair per constraint
   and expand lazily. *)
type constraintt =
  | Caddr of int * Domain.loc  (** dst, q:  q ∈ pts(dst) *)
  | Ccopy of int * int  (** dst ⊇ src *)
  | Cload of int * int * int  (** dst ⊇ *^derefs src *)
  | Cstore of int * int  (** *dst ⊇ src *)

let build (f : Tast.func) : t * constraintt list =
  let t = { nodes = Hashtbl.create 64; work = []; edge_insertions = 0 } in
  let heap = node t Domain.Lheap in
  add_pts t heap Domain.Lheap;
  let cs = ref [] in
  List.iter
    (fun { Domain.a_dst; a_dst_derefs; a_src; a_src_derefs } ->
      let src = node t a_src in
      let dst =
        match a_dst with Some d -> node t d | None -> node t Domain.Lheap
      in
      let di = Domain.id dst.n_loc and si = Domain.id src.n_loc in
      if a_dst_derefs > 0 then begin
        (* *dst = src (src possibly with its own derefs: conservatively
           load first into a virtual role of src itself) *)
        match a_src_derefs with
        | -1 ->
          (* *dst = &q is not expressible directly; route through pts *)
          cs := Cstore (di, si) :: Caddr (si, a_src) :: !cs
        | 0 -> cs := Cstore (di, si) :: !cs
        | k -> cs := Cstore (di, si) :: Cload (si, si, k) :: !cs
      end
      else begin
        match a_src_derefs with
        | -1 -> cs := Caddr (di, a_src) :: !cs
        | 0 -> cs := Ccopy (di, si) :: !cs
        | k -> cs := Cload (di, si, k) :: !cs
      end)
    (Domain.assignments_of f);
  (t, !cs)

let solve (t : t) (cs : constraintt list) =
  (* seed simple constraints; keep complex ones for the fixpoint *)
  let complex = ref [] in
  List.iter
    (fun c ->
      match c with
      | Caddr (d, q) -> add_pts t (Hashtbl.find t.nodes d) q
      | Ccopy (d, s) ->
        add_subset t (Hashtbl.find t.nodes s) (Hashtbl.find t.nodes d)
      | Cload _ | Cstore _ -> complex := c :: !complex)
    cs;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 1000 do
    changed := false;
    incr rounds;
    (* propagate subset edges to a local fixpoint *)
    let prop = ref true in
    while !prop do
      prop := false;
      Hashtbl.iter
        (fun _ (n : node) ->
          List.iter
            (fun di ->
              let d = Hashtbl.find t.nodes di in
              let united = Domain.Loc_set.union d.pts n.pts in
              if not (Domain.Loc_set.equal united d.pts) then begin
                d.pts <- united;
                prop := true
              end)
            n.subset_of)
        t.nodes
    done;
    (* expand complex constraints against current pts *)
    List.iter
      (fun c ->
        match c with
        | Cload (d, s, k) ->
          (* pts-chain of length k from s, then subset into d *)
          let rec chase set k =
            if k = 0 then set
            else
              chase
                (Domain.Loc_set.fold
                   (fun l acc ->
                     let n = node t l in
                     Domain.Loc_set.union acc n.pts)
                   set Domain.Loc_set.empty)
                (k - 1)
          in
          let sources = chase (node t (Hashtbl.find t.nodes s).n_loc).pts (k - 1) in
          Domain.Loc_set.iter
            (fun r ->
              let before = t.edge_insertions in
              add_subset t (node t r) (Hashtbl.find t.nodes d);
              if t.edge_insertions <> before then changed := true)
            sources
        | Cstore (d, s) ->
          Domain.Loc_set.iter
            (fun r ->
              let before = t.edge_insertions in
              add_subset t (Hashtbl.find t.nodes s) (node t r);
              if t.edge_insertions <> before then changed := true)
            (Hashtbl.find t.nodes d).pts
        | Caddr _ | Ccopy _ -> ())
      !complex
  done

(** Analyze one function. *)
let analyze (f : Tast.func) : t =
  let t, cs = build f in
  solve t cs;
  t

(** Points-to set of a variable by name (location names, sorted). *)
let points_to (t : t) (f : Tast.func) ~var : string list =
  let result = ref [] in
  let visit (v : Tast.var) =
    if String.equal v.Tast.v_name var then
      match Hashtbl.find_opt t.nodes v.Tast.v_id with
      | Some n ->
        result :=
          List.filter_map
            (fun l ->
              match l with
              | Domain.Lheap -> None
              | l -> Some (Domain.name l))
            (Domain.Loc_set.elements n.pts)
      | None -> ()
  in
  List.iter visit f.Tast.f_params;
  Tast.iter_stmts
    (fun s ->
      match s with
      | Tast.Sdecl (v, _) -> visit v
      | Tast.Smulti_decl (vs, _) -> List.iter visit vs
      | _ -> ())
    f.Tast.f_body;
  List.sort_uniq compare !result
