(** Fast Escape Analysis baseline (Gay–Steensgaard, paper §2.1.2).

    An O(N) analysis: equivalence classes of references are merged on
    copies (Steensgaard-style unification) and each class carries the set
    of objects directly bound into it by address-of / allocation.  Loads
    through a pointer ([p = *q]) and stores through a pointer ([*p = q])
    are not tracked at all: the class involved is tainted, its points-to
    set collapses to the conservative unknown and everything flowing
    through it escapes.

    Consequences (Table 3): [PointsTo] is empty for anything obtained by
    dereferencing, so Fast EA supports stack allocation of directly-bound
    objects only and cannot support explicit deallocation. *)

open Minigo

type class_data = {
  mutable pts : Domain.Loc_set.t;
  mutable tainted : bool;  (** touched by an untracked dereference *)
  mutable escapes : bool;
}

type t = {
  parent : (int, int) Hashtbl.t;  (** union-find over Domain.id *)
  data : (int, class_data) Hashtbl.t;
  names : (int, Domain.loc) Hashtbl.t;
}

let create () =
  { parent = Hashtbl.create 64; data = Hashtbl.create 64;
    names = Hashtbl.create 64 }

let rec find t i =
  match Hashtbl.find_opt t.parent i with
  | None ->
    Hashtbl.replace t.parent i i;
    Hashtbl.replace t.data i
      { pts = Domain.Loc_set.empty; tainted = false; escapes = false };
    i
  | Some p when p = i -> i
  | Some p ->
    let root = find t p in
    Hashtbl.replace t.parent i root;
    root

let class_of t (l : Domain.loc) =
  let i = Domain.id l in
  Hashtbl.replace t.names i l;
  find t i

let data t root = Hashtbl.find t.data root

let union t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then begin
    let da = data t ra and db = data t rb in
    Hashtbl.replace t.parent rb ra;
    da.pts <- Domain.Loc_set.union da.pts db.pts;
    da.tainted <- da.tainted || db.tainted;
    da.escapes <- da.escapes || db.escapes
  end

let taint t root =
  let d = data t root in
  d.tainted <- true;
  d.escapes <- true

let escape t root = (data t root).escapes <- true

(** Run Fast EA over one function's assignment skeleton. *)
let analyze (f : Tast.func) : t =
  let t = create () in
  let heap = class_of t Domain.Lheap in
  taint t heap;
  List.iter
    (fun { Domain.a_dst; a_dst_derefs; a_src; a_src_derefs } ->
      let src_class = class_of t a_src in
      match a_dst with
      | None ->
        (* flows to an untracked sink *)
        escape t src_class;
        if a_src_derefs < 0 then
          Domain.Loc_set.iter
            (fun _ -> ())
            Domain.Loc_set.empty  (* nothing more to record *)
      | Some dst ->
        let dst_class = class_of t dst in
        if a_dst_derefs > 0 then begin
          (* store through a pointer: untracked *)
          taint t dst_class;
          escape t src_class
        end
        else begin
          match a_src_derefs with
          | -1 ->
            (* direct binding: dst's class points at src *)
            let d = data t dst_class in
            d.pts <- Domain.Loc_set.add a_src d.pts
          | 0 ->
            (* reference copy: unify, Steensgaard-style *)
            union t dst_class src_class
          | _ ->
            (* load through a pointer: untracked *)
            taint t dst_class;
            taint t src_class
        end)
    (Domain.assignments_of f);
  t

(** Points-to set of a variable by name; empty when the class is tainted
    (Fast EA provides no usable information there). *)
let points_to (t : t) (f : Tast.func) ~var : string list =
  let result = ref [] in
  let visit (v : Tast.var) =
    if String.equal v.Tast.v_name var then begin
      let root = class_of t (Domain.Lvar v) in
      let d = data t root in
      if not d.tainted then
        result :=
          List.map Domain.name (Domain.Loc_set.elements d.pts)
    end
  in
  List.iter visit f.Tast.f_params;
  Tast.iter_stmts
    (fun s ->
      match s with
      | Tast.Sdecl (v, _) -> visit v
      | Tast.Smulti_decl (vs, _) -> List.iter visit vs
      | _ -> ())
    f.Tast.f_body;
  List.sort compare !result

(** Whether the object bound at an allocation can live on the stack:
    the reference it is immediately bound to must not escape. *)
let site_on_stack (t : t) (site : Tast.alloc_site) ~bound_to :
    bool =
  let root = class_of t (Domain.Lvar bound_to) in
  let d = data t root in
  ignore site;
  (not d.escapes) && not d.tainted
