lib/baselines/conn_graph.ml: Domain Hashtbl List Minigo String Tast
