lib/baselines/conn_graph.mli: Minigo Tast
