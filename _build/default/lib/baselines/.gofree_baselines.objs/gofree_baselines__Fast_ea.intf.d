lib/baselines/fast_ea.mli: Minigo Tast
