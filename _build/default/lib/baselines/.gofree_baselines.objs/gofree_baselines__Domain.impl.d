lib/baselines/domain.ml: List Minigo Printf Set Tast
