lib/baselines/fast_ea.ml: Domain Hashtbl List Minigo String Tast
