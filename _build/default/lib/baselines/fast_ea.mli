(** Fast Escape Analysis baseline (Gay–Steensgaard, paper §2.1.2): O(N)
    unification-based classes with direct bindings only; anything touched
    by a dereference is tainted and provides no points-to information. *)

open Minigo

type t

(** Analyze one function (intra-procedural). *)
val analyze : Tast.func -> t

(** Points-to set of a variable by name, as sorted location names; empty
    when the class is tainted. *)
val points_to : t -> Tast.func -> var:string -> string list

(** Stack-allocation test: the reference the object is immediately bound
    to must not escape. *)
val site_on_stack : t -> Tast.alloc_site -> bound_to:Tast.var -> bool
