(** Connection-graph baseline: Andersen-style inclusion-based points-to
    analysis that does track indirect stores (paper §2.1.2, Table 3).
    Complex constraints can materialize O(N) inclusion edges per
    statement — the O(N^3) worst case the escape graph avoids. *)

open Minigo

type t

(** Analyze one function (intra-procedural) to its points-to fixpoint. *)
val analyze : Tast.func -> t

(** Points-to set of a variable by name (sorted location names, heapLoc
    elided). *)
val points_to : t -> Tast.func -> var:string -> string list
