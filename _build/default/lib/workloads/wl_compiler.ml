(** "Go compiler" workload proxy.

    The paper observes that the Go compiler allocates many slices holding
    basic blocks temporarily during compilation (§6.6), with reclaim split
    across FreeSlice (56%), FreeMap (14%) and GrowMapAndFreeOld (30%)
    (Table 9) at a modest overall free ratio (12%, Table 7).

    The proxy compiles a stream of synthetic functions.  Per function it
    lexes raw instruction buffers (short-lived slices, explicitly freed),
    retains the folded output in the program's function table (the
    escaping majority of bytes that dilutes the free ratio), builds local
    value-numbering maps through a factory (end-of-life map frees), and
    interns symbols into a growing global table (map growth). *)

let source ~size =
  Printf.sprintf
    {|
var interned map[string]int
var output map[int][]int
var debugInfo map[int][]int

func internSymbol(name string) int {
  known := interned[name]
  if known > 0 {
    return known
  }
  id := len(interned) + 1
  interned[name] = id
  return id
}

// Factory for per-block analysis scopes: the returned map is a fresh
// heap allocation the caller can explicitly free (content tags, 4.4).
func newScope() map[int]int {
  return make(map[int]int)
}

// Build the raw instruction stream of one basic block: a short-lived
// scratch buffer.
func genBlock(fn int, blk int, n int) []int {
  instrs := make([]int, 0, 8)
  for i := 0; i < n; i++ {
    op := rand(16)
    instrs = append(instrs, op*65536 + fn*256 + blk)
  }
  return instrs
}

type Cursor struct {
  pos   int
  limit int
}

// Constant folding: consumes the raw block, produces the retained one.
func foldBlock(instrs []int) []int {
  // fixed-size operand scratch: constant and non-escaping, so Go's
  // stack allocation covers it (Table 8's stack columns)
  scratch := make([]int, 8)
  cur := &Cursor{pos: 0, limit: len(instrs)}
  out := make([]int, 0, len(instrs))
  acc := 0
  for i := 0; i < len(instrs); i++ {
    op := instrs[i] / 65536
    scratch[op%%8] = i
    cur.pos = i
    if op < 4 {
      acc = acc + instrs[i]%%65536 + scratch[0]*0
    } else {
      if acc > 0 {
        out = append(out, acc)
        acc = 0
      }
      out = append(out, instrs[i])
    }
  }
  if acc > 0 {
    out = append(out, acc)
  }
  return out
}

// Local value numbering over a per-block scope map.
func numberBlock(instrs []int) int {
  defs := newScope()
  for i := 0; i < len(instrs); i++ {
    defs[instrs[i]%%512] = i
  }
  sum := 0
  for i := 0; i < len(instrs); i++ {
    sum += defs[instrs[i]%%512]
  }
  return sum
}

func compileFunc(fn int) int {
  checksum := 0
  nblocks := 4 + rand(6)
  for b := 0; b < nblocks; b++ {
    raw := genBlock(fn, b, 20+rand(40))
    folded := foldBlock(raw)
    checksum += numberBlock(folded)
    checksum += internSymbol("fn" + itoa(fn) + "blk" + itoa(b))
    checksum += internSymbol("sym" + itoa(fn*nblocks+b))
    checksum += internSymbol("typ" + itoa(fn*31+b*7))
    checksum += internSymbol("loc" + itoa(fn*17+b*3))
    // the compiled block and its debug records escape into the image
    output[fn*64+b] = folded
    dbg := make([]int, len(folded)*7+8)
    for d := 0; d < len(dbg); d++ {
      dbg[d] = fn + d
    }
    debugInfo[fn*64+b] = dbg
  }
  return checksum
}

func main() {
  interned = make(map[string]int)
  output = make(map[int][]int)
  debugInfo = make(map[int][]int)
  total := 0
  for fn := 0; fn < %d; fn++ {
    total += compileFunc(fn)
  }
  println("compiled", %d, "checksum", total, "symbols", len(interned), "blocks", len(output))
}
|}
    size size

let default_size = 300
