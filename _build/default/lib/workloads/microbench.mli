(** Fig. 10 microbenchmark: short-lived maps whose inline value size is
    the sweep parameter [c]; a fraction of tables is retained so span
    pages stay pinned like a real heap. *)

(** MiniGo source for one sweep point. *)
val source : c:int -> iters:int -> string

(** The sweep points (inline value bytes). *)
val sweep : int list

(** Iterations for a point, scaled to keep total allocation ≈ [work]. *)
val iters_for : c:int -> work:int -> int

val default_work : int
