(** "structlayout" workload proxy (dominikh/go-tools).

    Computes field layouts of synthetic struct types.  The offset maps
    grow while each type is laid out and dominate the reclaim (Table 9:
    99% map growth) at the highest free ratio of the six (25%, Table 7),
    which is why slayout shows the paper's biggest maxheap win. *)

let source ~size =
  Printf.sprintf
    {|
type Field struct {
  name  string
  size  int
  align int
}

type Layout struct {
  total   int
  padding int
}

var results map[string]*Layout
var fieldCache map[int][]Field

func alignUp(off int, align int) int {
  if align <= 1 {
    return off
  }
  rem := off %% align
  if rem == 0 {
    return off
  }
  return off + align - rem
}

func genFields(ty int) []Field {
  n := 20 + rand(60)
  fields := make([]Field, 0, 8)
  for i := 0; i < n; i++ {
    sz := 1 + rand(16)
    al := 1
    if sz >= 8 {
      al = 8
    } else {
      if sz >= 4 {
        al = 4
      } else {
        if sz >= 2 {
          al = 2
        }
      }
    }
    fields = append(fields, Field{name: "f" + itoa(i), size: sz, align: al})
  }
  return fields
}

func layoutType(ty int) *Layout {
  // constant per-alignment counters: non-escaping, stack-allocated
  byAlign := make([]int, 4)
  fields := genFields(ty)
  fieldCache[ty] = fields
  // the offsets map grows entry by entry while laying out the struct
  offsets := make(map[string]int)
  off := 0
  pad := 0
  for i := 0; i < len(fields); i++ {
    aligned := alignUp(off, fields[i].align)
    pad += aligned - off
    offsets[fields[i].name] = aligned
    if fields[i].align >= 8 {
      byAlign[3]++
    } else {
      byAlign[fields[i].align/2]++
    }
    off = aligned + fields[i].size
  }
  check := 0
  for i := 0; i < len(fields); i++ {
    check += offsets[fields[i].name]
  }
  if check < 0 {
    panic("impossible layout")
  }
  return &Layout{total: alignUp(off, 8), padding: pad + byAlign[0]*0}
}

func main() {
  results = make(map[string]*Layout)
  fieldCache = make(map[int][]Field)
  totalPad := 0
  for ty := 0; ty < %d; ty++ {
    l := layoutType(ty)
    totalPad += l.padding
    results["type"+itoa(ty)] = l
  }
  println("types", len(results), "padding", totalPad)
}
|}
    size

let default_size = 800
