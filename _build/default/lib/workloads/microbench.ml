(** Fig. 10 microbenchmark: the map experiment.

    A loop obtains a map from a factory, inserts a fixed number of
    entries, and drops it; the map is explicitly freed at the end of each
    iteration and its growth steps free the abandoned bucket arrays.

    The sweep parameter [c] is the inline size of the map's value type
    (a generated struct of [c/8] int fields, mirroring Go's inline bucket
    storage): a bigger [c] makes the average deallocated object bigger
    while the number of deallocations per iteration stays the same —
    reproducing the paper's trade-off where small [c] benefits run time /
    GC frequency and large [c] benefits heap size.  Iterations scale as
    [work / c] so each sweep point allocates a comparable total volume. *)

let source ~c ~iters =
  let nfields = max 1 (c / 8) in
  let fields =
    String.concat "\n"
      (List.init nfields (fun i -> Printf.sprintf "  f%d int" i))
  in
  Printf.sprintf
    {|
type Payload struct {
%s
}

var kept map[int]map[int]Payload

func newTable() map[int]Payload {
  return make(map[int]Payload)
}

// Most rounds: a short-lived table, explicitly freed at scope end.
func fill(round int) int {
  m := newTable()
  var p Payload
  p.f0 = round
  for k := 0; k < 64; k++ {
    m[k*7+round] = p
  }
  n := len(m)
  return n
}

// A fraction of rounds build tables that stay live: their buckets pin
// span pages, which is what limits the heap-size benefit of freeing
// small objects.
func fillKeep(round int) int {
  m := newTable()
  var p Payload
  p.f0 = round
  for k := 0; k < 64; k++ {
    m[k*7+round] = p
  }
  kept[round] = m
  return len(m)
}

func main() {
  kept = make(map[int]map[int]Payload)
  total := 0
  for i := 0; i < %d; i++ {
    if i %% 4 == 0 {
      total += fillKeep(i)
    } else {
      total += fill(i)
    }
  }
  println("rounds", %d, "total", total, "kept", len(kept))
}
|}
    fields iters iters

(** The sweep points of fig. 10 (inline value bytes). *)
let sweep = [ 8; 32; 128; 512; 2048 ]

let iters_for ~c ~work = max 20 (work / (64 * max 8 c))

let default_work = 4_000_000
