(** "hugo" workload proxy: a static-site generator converting
    pseudo-markdown pages into HTML.

    Most of what a page renderer allocates survives into the site (page
    records, token streams kept for the search index), so the free ratio
    is the second lowest of the six subjects (6%, Table 7).  What GoFree
    does reclaim splits like the compiler: per-line scratch token buffers
    (FreeSlice), per-page shortcode maps from a factory (FreeMap), and
    growth of the site-wide index (GrowMapAndFreeOld). *)

let source ~size =
  Printf.sprintf
    {|
type Page struct {
  title  string
  words  int
  tokens []int
  html   []int
}

var siteIndex map[string]*Page
var searchIndex map[int]int

// Per-page shortcode attributes, built by a factory so the caller owns
// and explicitly frees them.
func newAttrs(id int) map[string]int {
  attrs := make(map[string]int)
  attrs["id"] = id
  attrs["layout"] = rand(4)
  attrs["weight"] = rand(100)
  for p := 0; p < 8; p++ {
    attrs["param"+itoa(p)] = id + p
  }
  return attrs
}

type LineState struct {
  col  int
  bold bool
}

// Tokenize one line into a scratch buffer of word lengths.
func tokenize(lineLen int, seed int) []int {
  // constant-size, non-escaping: stack-allocated by Go
  widths := make([]int, 4)
  st := &LineState{col: 0, bold: false}
  tokens := make([]int, 0, 16)
  cur := 0
  for i := 0; i < lineLen; i++ {
    st.col = i
    if (seed+i) %% 7 == 0 {
      if cur > 0 {
        widths[cur%%4] = cur
        tokens = append(tokens, cur+widths[0]*0)
        cur = 0
      }
    } else {
      cur++
    }
  }
  if cur > 0 {
    tokens = append(tokens, cur)
  }
  return tokens
}

func renderPage(id int) *Page {
  attrs := newAttrs(id)
  words := 0
  // the page keeps its full token stream for the search index
  kept := make([]int, 0, 64)
  lines := 20 + rand(30)
  for l := 0; l < lines; l++ {
    scratch := tokenize(40+rand(60), id+l)
    words += len(scratch)
    for t := 0; t < len(scratch); t++ {
      kept = append(kept, scratch[t])
    }
  }
  if attrs["layout"] > 0 {
    words += attrs["weight"]
  }
  // the rendered page body is retained with the page
  html := make([]int, len(kept)*10+16)
  for h := 0; h < len(html); h++ {
    html[h] = id + h
  }
  return &Page{title: "page" + itoa(id), words: words, tokens: kept, html: html}
}

func main() {
  siteIndex = make(map[string]*Page)
  searchIndex = make(map[int]int)
  totalWords := 0
  for id := 0; id < %d; id++ {
    p := renderPage(id)
    totalWords += p.words
    siteIndex[p.title] = p
    for t := 0; t < len(p.tokens); t = t + 6 {
      searchIndex[id*4096+t] = p.tokens[t]
    }
  }
  println("pages", len(siteIndex), "words", totalWords)
}
|}
    size

let default_size = 220
