(** Synthetic program generator for the compilation-speed experiment
    (paper §6.7: compiling the ssa package 99 times) and the complexity
    scaling comparison.

    Generates a "package" of [funcs] functions, each with [stmts] pointer
    and slice manipulating statements plus calls to earlier functions, so
    the analysis sees realistic escape graphs and a deep call DAG. *)

type st = { b : Buffer.t; mutable seed : int64 }

let next t =
  let z = Int64.add t.seed 0x9E3779B97F4A7C15L in
  t.seed <- z;
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.to_int (Int64.logand (Int64.shift_right_logical z 33) 0xFFFFFFL)

let rnd t n = if n <= 0 then 0 else next t mod n

let add t fmt = Printf.ksprintf (Buffer.add_string t.b) fmt

(** A package of [funcs] functions with roughly [stmts] statements each.
    Total program size is Θ(funcs × stmts). *)
let package ?(seed = 7L) ~funcs ~stmts () =
  let t = { b = Buffer.create (funcs * stmts * 32); seed } in
  add t "type Node struct {\n  id int\n  next *Node\n  payload []int\n}\n\n";
  for f = 0 to funcs - 1 do
    add t "func fn%d(n int, inp []int) []int {\n" f;
    add t "  buf := make([]int, n+1)\n";
    add t "  node := &Node{id: n, next: nil, payload: buf}\n";
    for s = 0 to stmts - 1 do
      match rnd t 8 with
      | 0 -> add t "  v%d := make([]int, n+%d)\n  buf = v%d\n" s (s + 1) s
      | 1 -> add t "  buf = append(buf, n+%d)\n" s
      | 2 -> add t "  node.payload = buf\n"
      | 3 ->
        add t "  p%d := &buf\n  *p%d = inp\n" s s
      | 4 when f > 0 ->
        add t "  buf = fn%d(n, buf)\n" (rnd t f)
      | 5 ->
        add t "  if len(buf) > %d {\n    buf[%d] = n\n  }\n" s s
      | 6 ->
        add t
          "  for i%d := 0; i%d < 3; i%d++ {\n    t%d := make([]int, \
           i%d+1)\n    t%d[0] = n\n    buf = append(buf, t%d[0])\n  }\n"
          s s s s s s s
      | _ -> add t "  node.id = node.id + %d\n" s
    done;
    add t "  if node.id > 0 {\n    return node.payload\n  }\n";
    add t "  return buf\n}\n\n"
  done;
  add t "func main() {\n  seedv := make([]int, 4)\n";
  add t "  out := fn%d(3, seedv)\n  println(len(out))\n}\n" (funcs - 1);
  Buffer.contents t.b

(** One big function of [stmts] pointer-heavy statements with dense
    aliasing: pools of buffers and pointers are cross-assigned and stored
    through, so an inclusion-based points-to analysis accumulates O(N)
    targets per pointer and its indirect-store constraints cascade into
    O(N) edge insertions each — the O(N^3) behaviour of §3.2.  The escape
    graph collapses every indirect store into a single heapLoc edge and
    stays O(N^2). *)
let big_function ?(seed = 11L) ~stmts () =
  let t = { b = Buffer.create (stmts * 40); seed } in
  add t "func big(inp []int) int {\n";
  add t "  v0 := make([]int, 8)\n";
  add t "  p0 := &v0\n";
  let bufs = ref 1 and ptrs = ref 1 in
  for s = 1 to stmts do
    match rnd t 6 with
    | 0 ->
      add t "  v%d := make([]int, %d)\n" !bufs (s mod 7 + 1);
      incr bufs
    | 1 ->
      add t "  p%d := &v%d\n" !ptrs (rnd t !bufs);
      incr ptrs
    | 2 ->
      (* pointer copy: inclusion edge *)
      add t "  p%d := p%d\n" !ptrs (rnd t !ptrs);
      incr ptrs
    | 3 ->
      (* indirect store: the statement Andersen expands per pointee *)
      add t "  *p%d = v%d\n" (rnd t !ptrs) (rnd t !bufs)
    | 4 ->
      add t "  v%d := *p%d\n" !bufs (rnd t !ptrs);
      incr bufs
    | _ -> add t "  v%d = append(v%d, %d)\n" (rnd t !bufs) (rnd t !bufs) s
  done;
  add t "  total := 0\n";
  for i = 0 to !bufs - 1 do
    add t "  total += len(v%d)\n" i
  done;
  add t
    "  return total\n}\n\nfunc main() {\n  s := make([]int, 3)\n  \
     println(big(s))\n}\n";
  Buffer.contents t.b
