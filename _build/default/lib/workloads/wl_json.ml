(** "Go/json" workload proxy: JSON parsing and manipulation, written in
    MiniGo itself.

    Each iteration generates a random JSON document, parses it into a
    [*JVal] tree (objects are maps that grow while being filled), and
    queries it.  Parsed maps escape into the tree so their lifetime ends
    with the whole document — GoFree's reclaim is dominated by
    GrowMapAndFreeOld, and the free ratio is the highest of the six
    subjects (Table 7: 23%), giving the largest time win. *)

let source ~size =
  Printf.sprintf
    {|
// JSON values: kind 0=null 1=number 2=string 3=array 4=object
type JVal struct {
  kind int
  num  int
  str  string
  arr  []*JVal
  obj  map[string]*JVal
}

type ParseState struct {
  input string
  pos   int
}

func peekByte(ps *ParseState) int {
  if ps.pos >= len(ps.input) {
    return -1
  }
  return ps.input[ps.pos]
}

func skipSpaces(ps *ParseState) {
  for ps.pos < len(ps.input) && ps.input[ps.pos] == 32 {
    ps.pos = ps.pos + 1
  }
}

func parseNumber(ps *ParseState) *JVal {
  n := 0
  for ps.pos < len(ps.input) && ps.input[ps.pos] >= 48 && ps.input[ps.pos] <= 57 {
    n = n*10 + ps.input[ps.pos] - 48
    ps.pos = ps.pos + 1
  }
  return &JVal{kind: 1, num: n}
}

func parseString(ps *ParseState) string {
  ps.pos = ps.pos + 1 // opening quote
  start := ps.pos
  for ps.pos < len(ps.input) && ps.input[ps.pos] != 34 {
    ps.pos = ps.pos + 1
  }
  s := substr(ps.input, start, ps.pos)
  ps.pos = ps.pos + 1 // closing quote
  return s
}

func parseValue(ps *ParseState) *JVal {
  skipSpaces(ps)
  c := peekByte(ps)
  if c == 34 {
    return &JVal{kind: 2, str: parseString(ps)}
  }
  if c == 91 { // '['
    ps.pos = ps.pos + 1
    arr := make([]*JVal, 0, 4)
    skipSpaces(ps)
    for peekByte(ps) != 93 {
      arr = append(arr, parseValue(ps))
      skipSpaces(ps)
      if peekByte(ps) == 44 {
        ps.pos = ps.pos + 1
        skipSpaces(ps)
      }
    }
    ps.pos = ps.pos + 1
    return &JVal{kind: 3, arr: arr}
  }
  if c == 123 { // '{'
    ps.pos = ps.pos + 1
    obj := make(map[string]*JVal)
    skipSpaces(ps)
    for peekByte(ps) != 125 {
      key := parseString(ps)
      skipSpaces(ps)
      ps.pos = ps.pos + 1 // ':'
      obj[key] = parseValue(ps)
      skipSpaces(ps)
      if peekByte(ps) == 44 {
        ps.pos = ps.pos + 1
        skipSpaces(ps)
      }
    }
    ps.pos = ps.pos + 1
    return &JVal{kind: 4, obj: obj}
  }
  if c >= 48 && c <= 57 {
    return parseNumber(ps)
  }
  // null / unknown token
  ps.pos = ps.pos + 4
  return &JVal{kind: 0}
}

func parse(input string) *JVal {
  ps := &ParseState{input: input, pos: 0}
  return parseValue(ps)
}

// Random document generator (pure string building).
func genDoc(id int, fields int) string {
  // constant, non-escaping: stays on the stack
  digits := make([]int, 8)
  digits[0] = id
  doc := "{"
  for f := 0; f < fields; f++ {
    if f > 0 {
      doc = doc + ", "
    }
    doc = doc + "\"k" + itoa(f) + "\": "
    which := rand(3)
    if which == 0 {
      doc = doc + itoa(rand(100000))
    } else {
      if which == 1 {
        doc = doc + "\"v" + itoa(id*31+f) + "\""
      } else {
        doc = doc + "[" + itoa(f) + ", " + itoa(id) + ", " + itoa(rand(99)) + "]"
      }
    }
  }
  return doc + "}" + itoa(digits[0]*0)
}

func countNodes(v *JVal) int {
  if v.kind == 3 {
    n := 1
    for i := 0; i < len(v.arr); i++ {
      n += countNodes(v.arr[i])
    }
    return n
  }
  if v.kind == 4 {
    return 1 + len(v.obj)
  }
  return 1
}

func main() {
  total := 0
  keysSeen := 0
  for i := 0; i < %d; i++ {
    doc := genDoc(i, 20+rand(36))
    v := parse(doc)
    total += countNodes(v)
    probe := v.obj["k3"]
    if probe != nil {
      if probe.kind == 1 {
        keysSeen += probe.num %% 7
      }
    }
  }
  println("docs", %d, "nodes", total, "probe", keysSeen)
}
|}
    size size

let default_size = 600
