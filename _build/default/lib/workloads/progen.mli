(** Synthetic program generators for the compilation-speed experiments
    (§6.7). *)

(** A package of [funcs] functions with ≈[stmts] statements each and a
    deep call DAG — the "compile the ssa package" proxy. *)
val package : ?seed:int64 -> funcs:int -> stmts:int -> unit -> string

(** One big function with dense pointer aliasing: the shape that
    separates the O(N^2) escape analyses from the O(N^3) connection
    graph. *)
val big_function : ?seed:int64 -> stmts:int -> unit -> string
