(** Random MiniGo program generator for the property-based soundness
    tests.

    Generated programs are well-typed by construction and always
    terminate (loops have constant bounds).  They exercise the features
    the escape analysis reasons about: dynamically-sized slices, maps,
    appends, pointers with address-of and indirect stores, nested scopes,
    helper functions returning fresh or passed-through values, globals,
    and defers. *)

(* Generation randomness is a self-contained splitmix64 stream keyed by
   the qcheck-provided seed integer, so shrinking stays meaningful (the
   whole program is a function of one int). *)
type gen_state = { mutable seed : int64 }

let next st =
  let z = Int64.add st.seed 0x9E3779B97F4A7C15L in
  st.seed <- z;
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.to_int
    (Int64.logand
       (Int64.logxor z (Int64.shift_right_logical z 31))
       0x3FFFFFFFL)

type t = {
  b : Buffer.t;
  st : gen_state;
  mutable depth : int;
  mutable vid : int;
  mutable ints : string list;
  mutable slices : string list;
  mutable maps : string list;
}

let rnd t n = if n <= 0 then 0 else next t.st mod n

let pick t xs = List.nth xs (rnd t (List.length xs))

let line t fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string t.b (String.make (2 * t.depth) ' ');
      Buffer.add_string t.b s;
      Buffer.add_char t.b '\n')
    fmt

let fresh t prefix =
  t.vid <- t.vid + 1;
  Printf.sprintf "%s%d" prefix t.vid

(* An int-valued expression from in-scope material. *)
let int_expr t =
  match rnd t 6 with
  | 0 -> string_of_int (rnd t 100)
  | 1 when t.ints <> [] -> pick t t.ints
  | 2 when t.slices <> [] -> Printf.sprintf "len(%s)" (pick t t.slices)
  | 3 when t.maps <> [] -> Printf.sprintf "len(%s)" (pick t t.maps)
  | 4 when t.ints <> [] ->
    Printf.sprintf "(%s + %d)" (pick t t.ints) (rnd t 10)
  | _ -> string_of_int (1 + rnd t 20)

let rec gen_stmt t ~fuel =
  if fuel <= 0 then line t "// fuel exhausted"
  else
    match rnd t 20 with
    | 0 ->
      let v = fresh t "n" in
      line t "%s := %s" v (int_expr t);
      t.ints <- v :: t.ints
    | 1 ->
      let v = fresh t "s" in
      line t "%s := make([]int, %s+1)" v (int_expr t);
      t.slices <- v :: t.slices
    | 2 ->
      let v = fresh t "m" in
      line t "%s := make(map[int]int)" v;
      t.maps <- v :: t.maps
    | 3 when t.slices <> [] ->
      let s = pick t t.slices in
      line t "if len(%s) > 0 { %s[len(%s)-1] = %s }" s s s (int_expr t)
    | 4 when t.slices <> [] ->
      let s = pick t t.slices in
      line t "%s = append(%s, %s)" s s (int_expr t)
    | 5 when t.maps <> [] ->
      let m = pick t t.maps in
      line t "%s[%s] = %s" m (int_expr t) (int_expr t)
    | 6 when t.ints <> [] ->
      let v = pick t t.ints in
      line t "%s += %s" v (int_expr t)
    | 7 ->
      (* nested scope with its own allocations *)
      line t "{";
      let saved = (t.ints, t.slices, t.maps) in
      t.depth <- t.depth + 1;
      gen_block t ~fuel:(fuel / 2) ~stmts:(1 + rnd t 3);
      t.depth <- t.depth - 1;
      let i, s, m = saved in
      t.ints <- i;
      t.slices <- s;
      t.maps <- m;
      line t "}"
    | 8 ->
      (* bounded loop *)
      let i = fresh t "i" in
      line t "for %s := 0; %s < %d; %s++ {" i i (2 + rnd t 6) i;
      let saved = (t.ints, t.slices, t.maps) in
      t.depth <- t.depth + 1;
      t.ints <- i :: t.ints;
      gen_block t ~fuel:(fuel / 3) ~stmts:(1 + rnd t 3);
      t.depth <- t.depth - 1;
      let ii, s, m = saved in
      t.ints <- ii;
      t.slices <- s;
      t.maps <- m;
      line t "}"
    | 9 when t.ints <> [] ->
      line t "if %s %% 2 == 0 {" (pick t t.ints);
      let saved = (t.ints, t.slices, t.maps) in
      t.depth <- t.depth + 1;
      gen_stmt t ~fuel:(fuel / 2);
      t.depth <- t.depth - 1;
      let i, s, m = saved in
      t.ints <- i;
      t.slices <- s;
      t.maps <- m;
      line t "}"
    | 10 ->
      (* call a helper: fresh slice from a factory *)
      let v = fresh t "f" in
      line t "%s := factory(%s + 1)" v (int_expr t);
      t.slices <- v :: t.slices
    | 11 when t.slices <> [] ->
      (* pass a slice through the identity helper (aliasing) *)
      let v = fresh t "al" in
      line t "%s := passthrough(%s)" v (pick t t.slices);
      t.slices <- v :: t.slices
    | 12 when t.slices <> [] ->
      (* leak into the global sink *)
      line t "sink = %s" (pick t t.slices)
    | 13 when t.slices <> [] ->
      let s = pick t t.slices in
      line t "if len(%s) > 0 { acc += %s[0] }" s s
    | 14 when t.slices <> [] ->
      (* fig-1-style trap: the whole aliasing chain lives in an inner
         scope; the indirect store redirects it at a long-lived slice.
         Only the completeness back-propagation (Incomplete through
         Holds, fig. 5 lines 10-13) stops GoFree from freeing through
         the alias — which at run time would free the outer slice's
         array while it is still in use *)
      let s2 = pick t t.slices in
      let s1 = fresh t "tr" and ps = fresh t "ps" and al = fresh t "al" in
      line t "{";
      t.depth <- t.depth + 1;
      line t "%s := make([]int, %d+1)" s1 (rnd t 6);
      line t "%s := &%s" ps s1;
      line t "*%s = %s" ps s2;
      line t "%s := *%s" al ps;
      line t "if len(%s) > 0 { acc += %s[0] }" al al;
      t.depth <- t.depth - 1;
      line t "}"
    | 16 when t.slices <> [] ->
      (* sub-slice view: aliases the parent's backing array *)
      let s = pick t t.slices in
      let v = fresh t "vw" in
      line t "%s := %s[:len(%s)/2]" v s s;
      t.slices <- v :: t.slices
    | 17 when t.slices <> [] ->
      let s = pick t t.slices in
      let v = fresh t "tl" in
      line t "%s := %s[len(%s)/3:]" v s s;
      t.slices <- v :: t.slices
    | 18 when List.length t.slices >= 2 ->
      let a = pick t t.slices in
      let b = pick t t.slices in
      line t "acc += copy(%s, %s)" a b
    | 19 when t.maps <> [] ->
      let m = pick t t.maps in
      let k = fresh t "mk" in
      line t "for %s := range %s {" k m;
      t.depth <- t.depth + 1;
      line t "acc += %s[%s] + %s" m k k;
      t.depth <- t.depth - 1;
      line t "}"
    | _ ->
      let v = fresh t "k" in
      line t "%s := %s * 2" v (int_expr t);
      t.ints <- v :: t.ints

and gen_block t ~fuel ~stmts =
  for _ = 1 to stmts do
    gen_stmt t ~fuel
  done

(** Generate a complete program from an integer seed.  The trailing
    checksum println makes every run observably comparable. *)
let generate seed =
  let t =
    {
      b = Buffer.create 1024;
      st = { seed = Int64.of_int seed };
      depth = 0;
      vid = 0;
      ints = [];
      slices = [];
      maps = [];
    }
  in
  Buffer.add_string t.b
    {|var sink []int
var acc int

func factory(n int) []int {
  out := make([]int, n)
  for i := 0; i < n; i++ {
    out[i] = i * 3
  }
  return out
}

func passthrough(s []int) []int {
  return s
}

func checksum(s []int) int {
  total := 0
  for i := 0; i < len(s); i++ {
    total += s[i]
  }
  return total
}

func main() {
|};
  t.depth <- 1;
  gen_block t ~fuel:24 ~stmts:(6 + rnd t 10);
  (* observable summary: every live slice/map/int feeds the checksum *)
  line t "total := acc";
  List.iter (fun v -> line t "total += %s" v) t.ints;
  List.iter (fun v -> line t "total += checksum(%s)" v) t.slices;
  List.iter (fun v -> line t "total += len(%s)" v) t.maps;
  line t "if sink != nil { total += checksum(sink) }";
  line t "println(\"checksum\", total)";
  Buffer.add_string t.b "}\n";
  Buffer.contents t.b
