(** Random well-typed MiniGo programs for the property-based soundness
    tests and the §6.8 robustness benchmark.

    Programs terminate by construction, end with a checksum [println]
    over every live value (so runs are observably comparable), and
    exercise the constructs the escape analysis reasons about: dynamic
    slices, maps, appends, sub-slice views, [copy], factory and
    pass-through helpers, global leaks, map iteration, and the
    fig-1-style indirect-store trap that distinguishes a sound
    completeness analysis from an unsound one. *)

(** Deterministic: the program is a pure function of the seed. *)
val generate : int -> string
