(** "scheck" workload proxy (dominikh/go-tools staticcheck).

    A static checker walking synthetic function bodies.  Its per-function
    fact maps come from factories and die with the function — the subject
    where end-of-life map freeing contributes the most (Table 9: 50%
    FreeMap, 48% map growth, 2% slices) at a 15% free ratio; the analyzed
    IR itself is retained in the package cache. *)

let source ~size =
  Printf.sprintf
    {|
var diagnostics map[string]int
var packageCache map[int][]int

func newFactMap() map[int]int {
  return make(map[int]int)
}

// One synthetic function body, retained in the package cache like a
// loaded SSA function.
func loadBody(fn int) []int {
  n := 400 + rand(400)
  body := make([]int, n)
  for i := 0; i < n; i++ {
    body[i] = rand(8)*1024 + rand(256)
  }
  packageCache[fn] = body
  return body
}

// Check 1: reaching definitions via a per-function fact map.
func checkDefs(body []int) int {
  defs := newFactMap()
  bad := 0
  for i := 0; i < len(body); i++ {
    op := body[i] / 1024
    tgt := body[i] %% 1024
    if op < 2 {
      defs[tgt%%32] = i + 1
    } else {
      if defs[tgt%%32] == 0 && tgt != 0 {
        bad++
      }
    }
  }
  return bad
}

// Check 2: purity facts accumulated per function.
func checkPurity(body []int) int {
  facts := newFactMap()
  for i := 0; i < len(body); i++ {
    if body[i]/1024 >= 6 {
      facts[body[i]%%24] = 1
    }
  }
  return len(facts)
}

func checkFunc(fn int) {
  // constant-size op histogram: non-escaping, stack-allocated
  hist := make([]int, 8)
  body := loadBody(fn)
  for i := 0; i < len(body); i++ {
    hist[(body[i]/1024)%%8]++
  }
  unreached := checkDefs(body)
  impure := checkPurity(body)
  if unreached > 0 {
    diagnostics["SA4006:"+itoa(fn%%97)] = unreached
  }
  if impure > 20 {
    diagnostics["SA1019:"+itoa(fn%%89)] = impure + hist[0]*0
  }
}

func main() {
  diagnostics = make(map[string]int)
  packageCache = make(map[int][]int)
  for fn := 0; fn < %d; fn++ {
    checkFunc(fn)
  }
  println("checked", %d, "diagnostics", len(diagnostics))
}
|}
    size size

let default_size = 700
