(** "badger" workload proxy: an LSM-style key-value store.

    Nearly everything a KV store allocates is retained — value-log
    entries and the memtable's contents live until a flush, and the
    memtable map itself escapes into the DB structure — so the free
    ratio is the lowest of the six subjects (4%, Table 7) and 100% of
    what GoFree does reclaim is the abandoned bucket arrays of the
    growing memtable (Table 9). *)

let source ~size =
  Printf.sprintf
    {|
type Memtable struct {
  entries map[string][]int
  bytes   int
}

type DB struct {
  active   *Memtable
  valueLog [][]int
  flushed  []int
  puts     int
}

func newMemtable() *Memtable {
  return &Memtable{entries: make(map[string][]int), bytes: 0}
}

// Encode a value into a retained value-log record.
func encode(i int, sz int) []int {
  rec := make([]int, sz)
  for k := 0; k < sz; k++ {
    rec[k] = i*31 + k
  }
  return rec
}

func put(db *DB, key string, val []int) {
  // constant non-escaping checksum scratch: stack-allocated
  sum := make([]int, 4)
  for i := 0; i < len(key) && i < 4; i++ {
    sum[i] = key[i]
  }
  db.active.entries[key] = val
  db.active.bytes = db.active.bytes + sum[0]*0
  db.active.bytes = db.active.bytes + len(key) + len(val)*8
  db.valueLog = append(db.valueLog, val)
  db.puts = db.puts + 1
  if db.active.bytes > 120000 {
    flush(db)
  }
}

func flush(db *DB) {
  db.flushed = append(db.flushed, db.active.bytes)
  db.active = newMemtable()
}

func get(db *DB, key string) []int {
  return db.active.entries[key]
}

func main() {
  db := &DB{active: newMemtable(), valueLog: make([][]int, 0, 64),
            flushed: make([]int, 0, 16), puts: 0}
  hits := 0
  for i := 0; i < %d; i++ {
    key := "user" + itoa(rand(5000))
    put(db, key, encode(i, 48+rand(120)))
    if rand(4) == 0 {
      probe := get(db, "user"+itoa(rand(5000)))
      if probe != nil {
        hits++
      }
    }
  }
  flush(db)
  println("puts", db.puts, "flushes", len(db.flushed), "hits", hits)
}
|}
    size

let default_size = 8_000
