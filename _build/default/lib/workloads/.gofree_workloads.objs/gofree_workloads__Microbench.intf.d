lib/workloads/microbench.mli:
