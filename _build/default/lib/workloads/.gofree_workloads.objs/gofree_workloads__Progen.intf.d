lib/workloads/progen.mli:
