lib/workloads/wl_slayout.ml: Printf
