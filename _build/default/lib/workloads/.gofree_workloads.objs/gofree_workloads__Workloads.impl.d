lib/workloads/workloads.ml: List Option String Wl_badger Wl_compiler Wl_hugo Wl_json Wl_scheck Wl_slayout
