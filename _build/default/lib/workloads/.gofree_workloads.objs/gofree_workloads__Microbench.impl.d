lib/workloads/microbench.ml: List Printf String
