lib/workloads/progen.ml: Buffer Int64 Printf
