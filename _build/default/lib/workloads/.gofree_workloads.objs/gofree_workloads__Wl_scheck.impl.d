lib/workloads/wl_scheck.ml: Printf
