lib/workloads/workloads.mli:
