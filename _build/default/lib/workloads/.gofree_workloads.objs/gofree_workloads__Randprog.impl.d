lib/workloads/randprog.ml: Buffer Int64 List Printf String
