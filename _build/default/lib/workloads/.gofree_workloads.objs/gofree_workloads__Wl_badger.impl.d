lib/workloads/wl_badger.ml: Printf
