lib/workloads/randprog.mli:
