lib/workloads/wl_json.ml: Printf
