lib/workloads/wl_compiler.ml: Printf
