lib/workloads/wl_hugo.ml: Printf
