(** Fig. 11: run-time distribution across repeated runs under the three
    settings (GoFree, Go, Go with GC off).  The paper plots 99 runs; we
    print the five-number summary per setting. *)

open Bench_common
module Stats = Gofree_stats.Stats
module Table = Gofree_stats.Table

let run ~options () =
  heading
    (Printf.sprintf
       "Fig 11: run-time distribution across %d runs, per setting (json \
        workload)"
       options.runs);
  let w = Gofree_workloads.Workloads.find "json" |> Option.get in
  let source =
    Gofree_workloads.Workloads.source_of ~size:(scaled_size ~options w) w
  in
  let table =
    Table.create
      ~aligns:[ Table.Left; Right; Right; Right; Right; Right; Right ]
      [ "setting"; "min"; "p25"; "median"; "p75"; "max"; "mean" ]
  in
  let med = ref [] in
  let results =
    run_interleaved ~options ~settings:[ Gofree; Go; Go_gcoff ] source
  in
  List.iter
    (fun setting ->
      let rs = List.assoc setting results in
      let times = metric (fun r -> r.r_time_ms) rs in
      let q p = Printf.sprintf "%.1fms" (Stats.percentile p times) in
      med := (setting, Stats.median times) :: !med;
      Table.add_row table
        [
          setting_name setting; q 0.0; q 25.0; q 50.0; q 75.0; q 100.0;
          Printf.sprintf "%.1fms" (Stats.mean times);
        ])
    [ Gofree; Go; Go_gcoff ];
  print_string (Table.render table);
  let find s = List.assoc s !med in
  Printf.printf
    "\nShape check (paper fig 11): GC-off fastest, GoFree between GC-off \
     and Go — observed medians: GoFree %.1fms, Go %.1fms, GC-off %.1fms.\n"
    (find Gofree) (find Go) (find Go_gcoff)
