(** Table 8: stack/heap allocation decisions for slices, maps, and other
    data structures, and the fraction of heap objects reclaimed by tcfree
    versus left to GC — the data that motivates restricting explicit
    deallocation to slices and maps (§6.5). *)

open Bench_common
module Rt = Gofree_runtime
module W = Gofree_workloads.Workloads
module Table = Gofree_stats.Table

let run ~options () =
  heading
    "Table 8: stack/heap allocation decisions of slices, maps and others \
     (dynamic counts, GoFree setting)";
  let table =
    Table.create
      ~aligns:
        [ Table.Left; Right; Right; Right; Right; Right; Right; Right;
          Right; Right; Right ]
      [ "Project"; "stack oth"; "heapGC oth"; "stack sl"; "tcfree sl";
        "heapGC sl"; "sl%"; "stack map"; "tcfree map"; "heapGC map";
        "map%" ]
  in
  let slice_pcts = ref [] and map_pcts = ref [] in
  List.iter
    (fun (w : W.t) ->
      let source = W.source_of ~size:(scaled_size ~options w) w in
      let r = run_once ~options ~setting:Gofree source in
      let m = r.r_metrics in
      let s = m.Rt.Metrics.stack_allocs in
      let tc = m.Rt.Metrics.tcfreed_objects in
      let gc = m.Rt.Metrics.gc_freed_objects in
      let idx c = Rt.Metrics.category_index c in
      let sl = idx Rt.Metrics.Cat_slice in
      let mp = idx Rt.Metrics.Cat_map in
      let ot = idx Rt.Metrics.Cat_other in
      let pct_of tcfree gcfree =
        if tcfree + gcfree = 0 then 0.0
        else float_of_int tcfree /. float_of_int (tcfree + gcfree)
      in
      let slp = pct_of tc.(sl) gc.(sl) in
      let mpp = pct_of tc.(mp) gc.(mp) in
      slice_pcts := slp :: !slice_pcts;
      map_pcts := mpp :: !map_pcts;
      Table.add_row table
        [
          w.W.w_name;
          string_of_int s.(ot);
          string_of_int gc.(ot);
          string_of_int s.(sl);
          string_of_int tc.(sl);
          string_of_int gc.(sl);
          Table.pct slp;
          string_of_int s.(mp);
          string_of_int tc.(mp);
          string_of_int gc.(mp);
          Table.pct mpp;
        ])
    W.all;
  let mean xs = Gofree_stats.Stats.mean (Array.of_list xs) in
  Table.add_row table
    [ "average"; ""; ""; ""; ""; ""; Table.pct (mean !slice_pcts); "";
      ""; ""; Table.pct (mean !map_pcts) ];
  print_string (Table.render table);
  Printf.printf
    "\nsl%% / map%% = tcfree / (tcfree + GC) per category.  Paper \
     averages: slices 10%%, maps 34%%; stack allocation already covers \
     the \"others\" column, which is why GoFree only frees slices and \
     maps.\n"
