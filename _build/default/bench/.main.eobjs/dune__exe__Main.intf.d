bench/main.mli:
