bench/exp_fig11.ml: Bench_common Gofree_stats Gofree_workloads List Option Printf
