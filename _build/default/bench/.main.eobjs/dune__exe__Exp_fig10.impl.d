bench/exp_fig10.ml: Bench_common Gofree_runtime Gofree_stats Gofree_workloads List Printf
