bench/exp_table8.ml: Array Bench_common Gofree_runtime Gofree_stats Gofree_workloads List Printf
