bench/exp_table9.ml: Array Bench_common Gofree_runtime Gofree_stats Gofree_workloads List Printf
