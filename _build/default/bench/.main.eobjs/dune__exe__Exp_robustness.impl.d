bench/exp_robustness.ml: Bench_common Gofree_core Gofree_interp Gofree_runtime Gofree_workloads List Printf String
