bench/bench_common.ml: Array Gc Gofree_core Gofree_interp Gofree_runtime Gofree_stats Gofree_workloads Int64 List Option Printf Stats String Ttest
