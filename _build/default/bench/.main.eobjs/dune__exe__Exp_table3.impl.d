bench/exp_table3.ml: Bench_common Gofree_baselines Gofree_core Gofree_escape Gofree_stats List Minigo Option Printf String
