bench/exp_compile_speed.ml: Array Bechamel Bench_common Gofree_baselines Gofree_core Gofree_escape Gofree_stats Gofree_workloads List Minigo Printf Staged String Test Unix
