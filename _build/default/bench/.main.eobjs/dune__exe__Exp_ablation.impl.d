bench/exp_ablation.ml: Bench_common Gofree_core Gofree_interp Gofree_runtime Gofree_stats Gofree_workloads Int64 List
