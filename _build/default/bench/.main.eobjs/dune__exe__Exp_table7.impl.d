bench/exp_table7.ml: Array Bench_common Gofree_stats Gofree_workloads List Printf String
