(** Fig. 10: the map microbenchmark.  Sweeps the value payload size [c];
    larger [c] means larger deallocated objects, shifting the benefit
    from run time / GC frequency towards heap size (§6.3). *)

open Bench_common
module Stats = Gofree_stats.Stats
module Table = Gofree_stats.Table

let run ~options () =
  heading
    "Fig 10: microbenchmark map experiment — effect of deallocated \
     object size (c)";
  let work = Gofree_workloads.Microbench.default_work * options.scale / 100 in
  let table =
    Table.create
      ~aligns:[ Table.Right; Right; Right; Right; Right; Right ]
      [ "c"; "iters"; "free ratio"; "time ratio"; "GCs ratio";
        "maxheap ratio" ]
  in
  let series = ref [] in
  List.iter
    (fun c ->
      let iters = Gofree_workloads.Microbench.iters_for ~c ~work in
      (* the sweep uses Go's normal pacing: with the scaled-down first-GC
         threshold, stock Go would burn dozens of cycles keeping the
         large-c points artificially compact *)
      let min_heap = Gofree_runtime.Heap.default_config.Gofree_runtime.Heap.min_heap in
      let source = Gofree_workloads.Microbench.source ~c ~iters in
      let results =
        run_interleaved ~min_heap ~options ~settings:[ Go; Gofree ] source
      in
      let go = List.assoc Go results in
      let gf = List.assoc Gofree results in
      let m f rs = Stats.mean (metric f rs) in
      let free_ratio = m (fun r -> r.r_freed /. max 1.0 r.r_alloced) gf in
      let time_ratio =
        m (fun r -> r.r_time_ms) gf /. max 1e-9 (m (fun r -> r.r_time_ms) go)
      in
      let gcs_ratio =
        let den = m (fun r -> r.r_gcs) go in
        if den = 0.0 then 1.0 else m (fun r -> r.r_gcs) gf /. den
      in
      let heap_ratio =
        m (fun r -> r.r_maxheap) gf /. max 1.0 (m (fun r -> r.r_maxheap) go)
      in
      series := (c, free_ratio, time_ratio, gcs_ratio, heap_ratio) :: !series;
      Table.add_row table
        [
          string_of_int c;
          string_of_int iters;
          Table.pct1 free_ratio;
          Table.pct time_ratio;
          Table.pct gcs_ratio;
          Table.pct heap_ratio;
        ])
    Gofree_workloads.Microbench.sweep;
  print_string (Table.render table);
  (* the figure's qualitative claims, as printed checks *)
  (match (List.rev !series, !series) with
  | (c_small, fr_small, _, gc_small, hp_small) :: _,
    (c_big, fr_big, _, gc_big, hp_big) :: _ ->
    Printf.printf
      "\nShape checks against the paper's fig 10:\n\
      \  - free ratios comparable across the sweep: %s at c=%d vs %s at \
       c=%d\n\
      \  - GC-frequency benefit weakens as c grows: GCs ratio %s at c=%d \
       vs %s at c=%d\n\
      \  - heap benefit present throughout: maxheap ratio %s at c=%d, %s \
       at c=%d\n"
      (Table.pct1 fr_small) c_small (Table.pct1 fr_big) c_big
      (Table.pct gc_small) c_small (Table.pct gc_big) c_big
      (Table.pct hp_small) c_small (Table.pct hp_big) c_big
  | _ -> ())
