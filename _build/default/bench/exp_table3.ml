(** Table 3: points-to sets for the fig. 1 program under the three escape
    analyses, regenerated from our implementations of each. *)

open Bench_common
module Table = Gofree_stats.Table

let fig1 =
  {|
type Big struct {
  fat int
  p *float
}

func dd(s *float) *float {
  bigObj := Big{fat: 42, p: s}
  c := 1.0
  d := 2.0
  pc := &c
  pd := &d
  ppd := &pd
  *ppd = pc
  pd2 := *ppd
  if bigObj.fat > 0 {
    return pd2
  }
  return pd
}

func main() {
  x := 3.0
  r := dd(&x)
  println(*r)
}
|}

let run () =
  heading "Table 3: points-to sets in different escape analyses (fig 1)";
  let program = Gofree_core.Pipeline.parse_and_check fig1 in
  let f = Minigo.Tast.find_func program "dd" |> Option.get in
  let fast = Gofree_baselines.Fast_ea.analyze f in
  let conn = Gofree_baselines.Conn_graph.analyze f in
  let compiled = Gofree_core.Pipeline.compile fig1 in
  let set xs = "{" ^ String.concat ", " xs ^ "}" in
  let table =
    Table.create
      ~aligns:[ Table.Left; Left; Left; Left ]
      [ "Method"; "Fast Esc. O(N)"; "Go esc. graph O(N^2)";
        "Conn. graph O(N^3)" ]
  in
  Table.add_row table
    [ "Omitted dataflow"; "*ppd = pc; pd2 = *ppd"; "*ppd = pc"; "none" ];
  List.iter
    (fun var ->
      Table.add_row table
        [
          "PointsTo(" ^ var ^ ")";
          set (Gofree_baselines.Fast_ea.points_to fast f ~var);
          set
            (Gofree_core.Report.points_to_of_var
               compiled.Gofree_core.Pipeline.c_analysis ~func:"dd" ~var);
          set (Gofree_baselines.Conn_graph.points_to conn f ~var);
        ])
    [ "pd2"; "pc"; "pd" ];
  print_string (Table.render table);
  let pd2 =
    Gofree_core.Report.var_properties compiled.Gofree_core.Pipeline.c_analysis
      ~func:"dd" ~var:"pd2"
    |> Option.get
  in
  Printf.printf
    "\nGoFree on the O(N^2) graph: Incomplete(pd2) = %b — it recognizes \
     PointsTo(pd2) as untrustworthy and refuses to deallocate pd2, \
     matching the paper's Table 3 narrative.\n"
    (Gofree_escape.Loc.incomplete pd2)
