(** §6.7 compilation speed: analyzing a large synthetic package with the
    stock Go analysis versus the GoFree analysis, repeated [runs] times —
    the paper finds no significant difference (p = 0.496).

    Also prints a scaling curve against the O(N^3) connection-graph
    baseline, the complexity argument of §3.2 / Table 3, and registers
    bechamel micro-benchmarks for precise per-pass timing. *)

open Bench_common
module Stats = Gofree_stats.Stats
module Ttest = Gofree_stats.Ttest
module Table = Gofree_stats.Table

let now_ms () = Unix.gettimeofday () *. 1000.0

let time_ms f =
  let t0 = now_ms () in
  let r = f () in
  (now_ms () -. t0, r)

let analyze_with mode program =
  Gofree_escape.Analysis.analyze ~mode program

(* Full compilation under each configuration: parse, typecheck, escape
   analysis, instrumentation — the paper compares end-to-end compile
   times, where the analysis is only one pass among several. *)
let compile_full config source =
  Gofree_core.Pipeline.compile ~config source

let run ~options () =
  heading
    "Compilation speed (paper 6.7): Go analysis vs GoFree analysis on a \
     large package";
  let source = Gofree_workloads.Progen.package ~funcs:60 ~stmts:24 () in
  let program = Gofree_core.Pipeline.parse_and_check source in
  let loc = List.length (String.split_on_char '\n' source) in
  let sample config =
    Array.init (max 5 options.runs) (fun _ ->
        fst (time_ms (fun () -> compile_full config source)))
  in
  ignore (sample Gofree_core.Config.go);
  let go_times = sample Gofree_core.Config.go in
  let gofree_times = sample Gofree_core.Config.gofree in
  let t = Ttest.welch go_times gofree_times in
  Printf.printf
    "package: %d lines, %d functions (full compile: parse + typecheck + \
     analysis + instrumentation)\n\
     Go compile      %.2f ± %.2f ms\n\
     GoFree compile  %.2f ± %.2f ms\n\
     Welch p-value = %s → %s (paper: p = 0.496, insignificant)\n"
    loc
    (List.length program.Minigo.Tast.p_funcs)
    (Stats.mean go_times) (Stats.stdev go_times)
    (Stats.mean gofree_times) (Stats.stdev gofree_times)
    (Table.pvalue t.Ttest.p_value)
    (if t.Ttest.significant then "significant difference"
     else "no significant difference");

  heading
    "Scaling on one growing function: O(N^2) escape analyses vs the \
     O(N^3) connection graph";
  let table =
    Table.create
      ~aligns:[ Table.Right; Right; Right; Right ]
      [ "statements"; "Go ms"; "GoFree ms"; "ConnGraph ms" ]
  in
  List.iter
    (fun stmts ->
      let source = Gofree_workloads.Progen.big_function ~stmts () in
      let program = Gofree_core.Pipeline.parse_and_check source in
      let best f =
        let t1, _ = time_ms f in
        let t2, _ = time_ms f in
        min t1 t2
      in
      let go_ms =
        best (fun () ->
            analyze_with Gofree_escape.Propagate.Go_base program)
      in
      let gf_ms =
        best (fun () -> analyze_with Gofree_escape.Propagate.Gofree program)
      in
      let cg_ms =
        best (fun () ->
            List.iter
              (fun f -> ignore (Gofree_baselines.Conn_graph.analyze f))
              program.Minigo.Tast.p_funcs)
      in
      Table.add_row table
        [
          string_of_int stmts;
          Printf.sprintf "%.1f" go_ms;
          Printf.sprintf "%.1f" gf_ms;
          Printf.sprintf "%.1f" cg_ms;
        ])
    [ 100; 200; 400; 800 ];
  print_string (Table.render table);
  print_endline
    "\nDoubling the function should roughly 4x the O(N^2) analyses and \
     8x the connection graph."

(** Bechamel micro-benchmarks: one [Test.make] per compilation stage, so
    `bench/main.exe --bechamel` gives allocation-free per-pass timings. *)
let bechamel_tests () =
  let open Bechamel in
  let source = Gofree_workloads.Progen.package ~funcs:25 ~stmts:18 () in
  let program = Gofree_core.Pipeline.parse_and_check source in
  [
    Test.make ~name:"parse+typecheck"
      (Staged.stage (fun () ->
           ignore (Gofree_core.Pipeline.parse_and_check source)));
    Test.make ~name:"analysis-go"
      (Staged.stage (fun () ->
           ignore
             (Gofree_escape.Analysis.analyze
                ~mode:Gofree_escape.Propagate.Go_base program)));
    Test.make ~name:"analysis-gofree"
      (Staged.stage (fun () ->
           ignore
             (Gofree_escape.Analysis.analyze
                ~mode:Gofree_escape.Propagate.Gofree program)));
    Test.make ~name:"analysis-conngraph"
      (Staged.stage (fun () ->
           List.iter
             (fun f -> ignore (Gofree_baselines.Conn_graph.analyze f))
             program.Minigo.Tast.p_funcs));
  ]
