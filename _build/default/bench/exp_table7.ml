(** Table 7: effect of GoFree's optimizations on the six subject
    programs — time / GC time / GCs / free ratio / maxheap, each as a
    GoFree-over-Go ratio with stdev and Welch p-value.

    GC time follows the paper's subtraction method:
    (time_GoFree − time_GoGCOff) / (time_Go − time_GoGCOff). *)

open Bench_common
module W = Gofree_workloads.Workloads
module Stats = Gofree_stats.Stats
module Table = Gofree_stats.Table

type row = {
  name : string;
  time : float * float * float;  (** ratio, stdev, p *)
  gc_time_ratio : float;
  gcs : float * float * float;
  free_ratio : float;
  maxheap : float * float * float;
}

let measure ~options (w : W.t) : row =
  let source = W.source_of ~size:(scaled_size ~options w) w in
  let results =
    run_interleaved ~options ~settings:[ Go; Gofree; Go_gcoff ] source
  in
  let go = List.assoc Go results in
  let gf = List.assoc Gofree results in
  let gcoff = List.assoc Go_gcoff results in
  (* sanity: identical observable behaviour *)
  Array.iter
    (fun (r : run_result) ->
      if not (String.equal r.r_output go.(0).r_output) then
        failwith (w.W.w_name ^ ": outputs diverged"))
    gf;
  let time f rs = metric f rs in
  let t_go = time (fun r -> r.r_time_ms) go in
  let t_gf = time (fun r -> r.r_time_ms) gf in
  let t_off = time (fun r -> r.r_time_ms) gcoff in
  let gc_time_ratio =
    let den = Stats.mean t_go -. Stats.mean t_off in
    if abs_float den < 1e-9 then 1.0
    else (Stats.mean t_gf -. Stats.mean t_off) /. den
  in
  {
    name = w.W.w_name;
    time = ratio_cell ~treatment:t_gf ~control:t_go;
    gc_time_ratio;
    gcs =
      ratio_cell
        ~treatment:(time (fun r -> r.r_gcs) gf)
        ~control:(time (fun r -> r.r_gcs) go);
    free_ratio =
      Stats.mean (time (fun r -> r.r_freed /. max 1.0 r.r_alloced) gf);
    maxheap =
      ratio_cell
        ~treatment:(time (fun r -> r.r_maxheap) gf)
        ~control:(time (fun r -> r.r_maxheap) go);
  }

let run ~options () =
  heading
    "Table 7: effect of GoFree's optimizations (ratios are GoFree/Go; \
     <100% means GoFree is better)";
  let rows = List.map (measure ~options) W.all in
  let table =
    Table.create
      ~aligns:[ Table.Left; Right; Right; Right; Right; Right; Right;
                Right; Right; Right; Right ]
      [ "Project"; "time"; "±"; "p"; "GCtime"; "GCs"; "±"; "p"; "free";
        "maxheap"; "p" ]
  in
  let pct = Table.pct and pv = Table.pvalue in
  List.iter
    (fun r ->
      let t, ts, tp = r.time in
      let g, gs, gp = r.gcs in
      let m, _, mp = r.maxheap in
      Table.add_row table
        [
          r.name; pct t; pct ts; pv tp; pct r.gc_time_ratio; pct g; pct gs;
          pv gp; pct r.free_ratio; pct m; pv mp;
        ])
    rows;
  let avg f = Stats.mean (Array.of_list (List.map f rows)) in
  Table.add_row table
    [
      "average";
      pct (avg (fun r -> let t, _, _ = r.time in t));
      ""; "";
      pct (avg (fun r -> r.gc_time_ratio));
      pct (avg (fun r -> let g, _, _ = r.gcs in g));
      ""; "";
      pct (avg (fun r -> r.free_ratio));
      pct (avg (fun r -> let m, _, _ = r.maxheap in m));
      "";
    ];
  print_string (Table.render table);
  Printf.printf
    "\nPaper (Table 7) averages for comparison: time 98%%, GC time 87%%, \
     GCs 93%%, free 14%%, maxheap 96%%.\n";
  rows
