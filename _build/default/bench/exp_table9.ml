(** Table 9: contribution breakdown of the reclaimed space across the
    three deallocation categories — FreeSlice, FreeMap, and
    GrowMapAndFreeOld (§6.6). *)

open Bench_common
module Rt = Gofree_runtime
module W = Gofree_workloads.Workloads
module Table = Gofree_stats.Table

let run ~options () =
  heading
    "Table 9: contribution breakdown of total space reclaimed by the \
     three deallocation categories";
  let table =
    Table.create
      ~aligns:[ Table.Left; Right; Right; Right ]
      [ "Project"; "FreeSlice()"; "FreeMap()"; "GrowMapAndFreeOld()" ]
  in
  List.iter
    (fun (w : W.t) ->
      let source = W.source_of ~size:(scaled_size ~options w) w in
      let r = run_once ~options ~setting:Gofree source in
      let src = r.r_metrics.Rt.Metrics.freed_by_source in
      let total = max 1 (src.(0) + src.(1) + src.(2)) in
      let pct i = Printf.sprintf "%d%%" (100 * src.(i) / total) in
      Table.add_row table [ w.W.w_name; pct 0; pct 1; pct 2 ])
    W.all;
  print_string (Table.render table);
  Printf.printf
    "\nPaper (Table 9): Go 56/14/30, hugo 56/14/30, badger 0/0/100, \
     json 0/0/100, scheck 2/50/48, slayout 1/0/99.\n"
