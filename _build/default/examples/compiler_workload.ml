(** Compiler workload: the paper's motivating scenario — the Go compiler
    itself allocates many short-lived slices for basic blocks, and GoFree
    frees most of them explicitly (Table 9: 56% of its reclaim comes from
    FreeSlice).

    This example also demonstrates the robustness methodology of §6.8:
    the same workload runs with the poisoning mock tcfree, which
    overwrites freed memory so that any wrong free becomes an immediate,
    detectable error instead of silent corruption.

    Run with:  dune exec examples/compiler_workload.exe *)

module Rt = Gofree_runtime

let () =
  let workload = Gofree_workloads.Workloads.find "Go" |> Option.get in
  let source = Gofree_workloads.Workloads.source_of ~size:150 workload in

  let go =
    Gofree_interp.Runner.compile_and_run ~gofree_config:Gofree_core.Config.go
      source
  in
  let gofree =
    Gofree_interp.Runner.compile_and_run
      ~gofree_config:Gofree_core.Config.gofree source
  in
  Printf.printf "output: %s" go.Gofree_interp.Runner.output;
  Printf.printf "outputs agree: %b\n\n"
    (String.equal go.Gofree_interp.Runner.output
       gofree.Gofree_interp.Runner.output);

  let m = gofree.Gofree_interp.Runner.metrics in
  let total = max 1 m.Rt.Metrics.freed_bytes in
  Printf.printf "GoFree freed %s (%.1f%% of allocations):\n"
    (Gofree_stats.Table.bytes m.Rt.Metrics.freed_bytes)
    (100.0 *. Rt.Metrics.free_ratio m);
  Printf.printf "  slices at end of life   %3d%%\n"
    (100 * m.Rt.Metrics.freed_by_source.(0) / total);
  Printf.printf "  maps at end of life     %3d%%\n"
    (100 * m.Rt.Metrics.freed_by_source.(1) / total);
  Printf.printf "  map growth (old arrays) %3d%%\n\n"
    (100 * m.Rt.Metrics.freed_by_source.(2) / total);

  (* §6.8 robustness: run with the poisoning mock tcfree *)
  print_endline "robustness check (mock tcfree poisons freed memory)...";
  let poison_config =
    {
      Gofree_interp.Interp.default_config with
      heap_config =
        { Rt.Heap.default_config with poison_on_free = true };
    }
  in
  (match
     Gofree_interp.Runner.compile_and_run
       ~gofree_config:Gofree_core.Config.gofree ~run_config:poison_config
       source
   with
  | poisoned ->
    Printf.printf
      "passed: output identical under poison = %b, poison reads = %d\n"
      (String.equal go.Gofree_interp.Runner.output
         poisoned.Gofree_interp.Runner.output)
      poisoned.Gofree_interp.Runner.metrics.Rt.Metrics.poison_reads
  | exception Gofree_interp.Value.Corruption msg ->
    Printf.printf "FAILED: corruption detected: %s\n" msg);

  (* the tcfree give-up statistics of §5 *)
  let g = m.Rt.Metrics.giveups in
  Printf.printf
    "\ntcfree behaviour: %d calls, %d freed; give-ups: gc-running %d, \
     ownership %d, span-swapped %d, double-free %d, stack %d, nil %d\n"
    m.Rt.Metrics.tcfree_calls m.Rt.Metrics.tcfree_success g.(0) g.(1) g.(2)
    g.(3) g.(4) g.(5)
