(** Concurrency example: goroutines allocating from per-P mcaches, with
    the tcfree ownership checks of §5 visibly exercised.

    Each worker builds per-request scratch buffers; the scheduler
    migrates goroutines between logical processors, so some tcfree calls
    find their mspan owned by a different P (or swapped into mcentral)
    and give up — exactly the best-effort behaviour the paper designs
    for: the GC picks up whatever tcfree declines.

    Run with:  dune exec examples/goroutines.exe *)

module Rt = Gofree_runtime

let program =
  {|
var processed map[int]int

func handle(worker int, requests int) {
  total := 0
  for r := 0; r < requests; r++ {
    scratch := make([]int, 100+rand(200))
    for i := 0; i < len(scratch); i++ {
      scratch[i] = worker*1000 + r + i
    }
    total += scratch[0] + scratch[len(scratch)-1]
  }
  processed[worker] = total
}

func main() {
  processed = make(map[int]int)
  for w := 0; w < 6; w++ {
    go handle(w, 400)
  }
}
|}

let () =
  let run config =
    Gofree_interp.Runner.compile_and_run ~gofree_config:config program
  in
  let go = run Gofree_core.Config.go in
  let gofree = run Gofree_core.Config.gofree in
  Printf.printf "deterministic outputs agree: %b\n"
    (String.equal go.Gofree_interp.Runner.output
       gofree.Gofree_interp.Runner.output);
  let m = gofree.Gofree_interp.Runner.metrics in
  let g = m.Rt.Metrics.giveups in
  Printf.printf "tcfree calls %d, freed %d (%.1f%% of bytes)\n"
    m.Rt.Metrics.tcfree_calls m.Rt.Metrics.tcfree_success
    (100.0 *. Rt.Metrics.free_ratio m);
  Printf.printf
    "give-ups from concurrency: ownership-changed %d, span-swapped %d, \
     gc-running %d\n"
    g.(1) g.(2) g.(0);
  Printf.printf "GC cycles %d -> %d, maxheap %s -> %s\n"
    go.Gofree_interp.Runner.metrics.Rt.Metrics.gc_cycles
    m.Rt.Metrics.gc_cycles
    (Gofree_stats.Table.bytes
       go.Gofree_interp.Runner.metrics.Rt.Metrics.max_heap)
    (Gofree_stats.Table.bytes m.Rt.Metrics.max_heap)
