examples/compiler_workload.mli:
