examples/json_pipeline.ml: Array Gofree_core Gofree_interp Gofree_runtime Gofree_stats Gofree_workloads Int64 List Option Printf String
