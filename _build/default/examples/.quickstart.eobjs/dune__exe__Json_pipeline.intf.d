examples/json_pipeline.mli:
