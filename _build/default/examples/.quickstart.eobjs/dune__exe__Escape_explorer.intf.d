examples/escape_explorer.mli:
