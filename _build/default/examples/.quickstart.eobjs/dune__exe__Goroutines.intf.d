examples/goroutines.mli:
