examples/goroutines.ml: Array Gofree_core Gofree_interp Gofree_runtime Gofree_stats Printf String
