examples/quickstart.mli:
