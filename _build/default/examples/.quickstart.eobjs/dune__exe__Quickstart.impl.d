examples/quickstart.ml: Format Gofree_core Gofree_interp Gofree_runtime Minigo Printf
