examples/escape_explorer.ml: Format Gofree_baselines Gofree_core Gofree_escape List Minigo Option Printf String
