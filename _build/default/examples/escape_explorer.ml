(** Escape-analysis explorer: reproduce the paper's fig. 1 walk-through.

    Prints every escape-graph location of the example function with its
    Table-1 properties and points-to set, then compares the three
    analyses of Table 3 on the interesting variable.

    Run with:  dune exec examples/escape_explorer.exe *)

let fig1 =
  {|
type Big struct {
  fat int
  p *float
}

func dd(s *float) *float {
  bigObj := Big{fat: 42, p: s}
  c := 1.0
  d := 2.0
  pc := &c
  pd := &d
  ppd := &pd
  *ppd = pc     // the indirect store Go's escape graph does not track
  pd2 := *ppd
  if bigObj.fat > 0 {
    return pd2
  }
  return pd
}

func main() {
  x := 3.0
  r := dd(&x)
  println(*r)
}
|}

let () =
  print_endline "=== paper fig. 1: the escape graph of dd ===";
  let compiled = Gofree_core.Pipeline.compile fig1 in
  Format.printf "%a@."
    (fun fmt () ->
      Gofree_core.Report.pp_function fmt
        compiled.Gofree_core.Pipeline.c_analysis "dd")
    ();

  print_endline "=== paper table 3: PointsTo(pd2) under three analyses ===";
  let program = Gofree_core.Pipeline.parse_and_check fig1 in
  let f = Minigo.Tast.find_func program "dd" |> Option.get in
  let fast = Gofree_baselines.Fast_ea.analyze f in
  let conn = Gofree_baselines.Conn_graph.analyze f in
  let show label pts = Printf.printf "%-28s {%s}\n" label (String.concat ", " pts) in
  show "Fast Escape Analysis O(N):"
    (Gofree_baselines.Fast_ea.points_to fast f ~var:"pd2");
  show "Go escape graph O(N^2):"
    (Gofree_core.Report.points_to_of_var
       compiled.Gofree_core.Pipeline.c_analysis ~func:"dd" ~var:"pd2");
  show "Connection graph O(N^3):"
    (Gofree_baselines.Conn_graph.points_to conn f ~var:"pd2");
  print_newline ();
  print_endline
    "GoFree keeps the O(N^2) graph but detects that PointsTo(pd2) is\n\
     incomplete (the connection graph shows it misses c), so it refuses\n\
     to insert a tcfree for pd2 — precision bookkeeping instead of a\n\
     more expensive analysis.";
  let pd2 =
    Gofree_core.Report.var_properties compiled.Gofree_core.Pipeline.c_analysis
      ~func:"dd" ~var:"pd2"
    |> Option.get
  in
  Printf.printf "Incomplete(pd2) = %b, tcfree inserted for pd2: %b\n"
    (Gofree_escape.Loc.incomplete pd2)
    (List.exists
       (fun i ->
         i.Gofree_core.Instrument.ins_var.Minigo.Tast.v_name = "pd2")
       compiled.Gofree_core.Pipeline.c_inserted)
