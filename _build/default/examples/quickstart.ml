(** Quickstart: compile a MiniGo program with GoFree, see where tcfree
    calls were inserted, run it under stock Go and under GoFree, and
    compare the runtime metrics.

    Run with:  dune exec examples/quickstart.exe *)

let program =
  {|
// A classic GoFree win: a dynamically-sized scratch buffer per
// iteration.  Stock Go leaves every buffer to the garbage collector;
// GoFree frees each one explicitly at the end of the loop body.
func process(rounds int) int {
  checksum := 0
  for r := 0; r < rounds; r++ {
    buf := make([]int, 200+rand(100))
    for i := 0; i < len(buf); i++ {
      buf[i] = r * i
    }
    checksum += buf[len(buf)-1]
  }
  return checksum
}

func main() {
  println("checksum", process(2000))
}
|}

let () =
  (* 1. Compile with GoFree: escape analysis + tcfree instrumentation. *)
  let compiled = Gofree_core.Pipeline.compile program in
  print_endline "=== inserted explicit frees ===";
  Format.printf "%a@." Gofree_core.Report.pp_inserted
    compiled.Gofree_core.Pipeline.c_inserted;
  print_endline "=== instrumented program ===";
  print_endline
    (Minigo.Pretty.program_to_string compiled.Gofree_core.Pipeline.c_program);

  (* 2. Run the same source under both compilers. *)
  let run config =
    Gofree_interp.Runner.compile_and_run ~gofree_config:config program
  in
  let go = run Gofree_core.Config.go in
  let gofree = run Gofree_core.Config.gofree in

  print_endline "=== stock Go ===";
  print_string go.Gofree_interp.Runner.output;
  Format.printf "%a@.@." Gofree_runtime.Metrics.pp
    go.Gofree_interp.Runner.metrics;

  print_endline "=== GoFree ===";
  print_string gofree.Gofree_interp.Runner.output;
  Format.printf "%a@.@." Gofree_runtime.Metrics.pp
    gofree.Gofree_interp.Runner.metrics;

  let m_go = go.Gofree_interp.Runner.metrics in
  let m_gf = gofree.Gofree_interp.Runner.metrics in
  Printf.printf
    "GoFree freed %.0f%% of allocated bytes and ran %d GC cycles instead \
     of %d.\n"
    (100.0 *. Gofree_runtime.Metrics.free_ratio m_gf)
    m_gf.Gofree_runtime.Metrics.gc_cycles m_go.Gofree_runtime.Metrics.gc_cycles
