(** JSON pipeline: the workload where GoFree wins the most (paper Table 7
    shows json with the best time ratio and the highest free ratio).

    Runs the json subject proxy under all three evaluation settings of
    fig. 11 — stock Go, GoFree, and Go with GC disabled — and prints the
    Table-5 metrics side by side.

    Run with:  dune exec examples/json_pipeline.exe *)

module Rt = Gofree_runtime

let settings =
  [
    ("Go", Gofree_core.Config.go, false);
    ("GoFree", Gofree_core.Config.gofree, false);
    ("Go-GCOff", Gofree_core.Config.go, true);
  ]

let () =
  let workload =
    Gofree_workloads.Workloads.find "json" |> Option.get
  in
  let source = Gofree_workloads.Workloads.source_of ~size:400 workload in
  let results =
    List.map
      (fun (name, config, gc_disabled) ->
        let run_config =
          {
            Gofree_interp.Interp.default_config with
            heap_config =
              {
                Rt.Heap.default_config with
                gc_disabled;
                grow_map_free_old = config.Gofree_core.Config.insert_tcfree;
              };
          }
        in
        let r =
          Gofree_interp.Runner.compile_and_run ~gofree_config:config
            ~run_config source
        in
        (name, r))
      settings
  in
  (* all settings must compute the same answer *)
  (match results with
  | (_, first) :: rest ->
    List.iter
      (fun (name, r) ->
        if
          not
            (String.equal first.Gofree_interp.Runner.output
               r.Gofree_interp.Runner.output)
        then failwith (name ^ ": output mismatch"))
      rest;
    print_string ("program output: " ^ first.Gofree_interp.Runner.output)
  | [] -> ());
  print_newline ();
  let table =
    Gofree_stats.Table.create
      ~aligns:[ Gofree_stats.Table.Left; Right; Right; Right; Right; Right ]
      [ "setting"; "time(ms)"; "GCs"; "freed"; "free%"; "maxheap" ]
  in
  List.iter
    (fun (name, (r : Gofree_interp.Runner.result)) ->
      let m = r.Gofree_interp.Runner.metrics in
      Gofree_stats.Table.add_row table
        [
          name;
          Printf.sprintf "%.1f"
            (Int64.to_float r.Gofree_interp.Runner.wall_ns /. 1e6);
          string_of_int m.Rt.Metrics.gc_cycles;
          Gofree_stats.Table.bytes m.Rt.Metrics.freed_bytes;
          Printf.sprintf "%.1f" (100.0 *. Rt.Metrics.free_ratio m);
          Gofree_stats.Table.bytes m.Rt.Metrics.max_heap;
        ])
    results;
  print_string (Gofree_stats.Table.render table);
  print_newline ();
  (match results with
  | (_, go) :: (_, gofree) :: _ ->
    let src = gofree.Gofree_interp.Runner.metrics.Rt.Metrics.freed_by_source in
    Printf.printf
      "Reclaim attribution (Table 9 shape): FreeSlice %dB, FreeMap %dB, \
       GrowMapAndFreeOld %dB\n"
      src.(0) src.(1) src.(2);
    Printf.printf "GC cycles: %d -> %d\n"
      go.Gofree_interp.Runner.metrics.Rt.Metrics.gc_cycles
      gofree.Gofree_interp.Runner.metrics.Rt.Metrics.gc_cycles
  | _ -> ())
