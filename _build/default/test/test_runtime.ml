(** Allocator substrate tests: size classes, mspans, mcache/mcentral
    interplay, page accounting. *)

open Gofree_runtime

let test_size_classes () =
  Alcotest.(check bool) "at least 40 classes" true (Sizeclass.n_classes >= 40);
  (* classes are sorted, start at 8, end at 32768 *)
  Alcotest.(check int) "first class" 8 Sizeclass.sizes.(0);
  Alcotest.(check int) "last class" 32768
    Sizeclass.sizes.(Sizeclass.n_classes - 1);
  for i = 1 to Sizeclass.n_classes - 1 do
    Alcotest.(check bool) "ascending" true
      (Sizeclass.sizes.(i) > Sizeclass.sizes.(i - 1))
  done;
  (* every size maps to the smallest class that fits *)
  List.iter
    (fun size ->
      match Sizeclass.class_for_size size with
      | None -> Alcotest.failf "size %d should be small" size
      | Some idx ->
        Alcotest.(check bool) "class fits" true
          (Sizeclass.class_size idx >= size);
        if idx > 0 then
          Alcotest.(check bool) "class is tight" true
            (Sizeclass.class_size (idx - 1) < size))
    [ 1; 8; 9; 16; 100; 1000; 4097; 32768 ];
  Alcotest.(check (option int)) "large object" None
    (Sizeclass.class_for_size 32769)

let test_span_waste_bound () =
  (* pages_for_class keeps slot waste under 12.5% like Go *)
  for c = 0 to Sizeclass.n_classes - 1 do
    let npages = Sizeclass.pages_for_class c in
    let bytes = npages * Sizeclass.page_size in
    let size = Sizeclass.class_size c in
    let waste = bytes - (bytes / size * size) in
    Alcotest.(check bool)
      (Printf.sprintf "class %d waste" c)
      true
      (waste * 8 <= bytes)
  done

let test_span_bump_and_revert () =
  let span = Mspan.create_small 0 in
  let s1 = Mspan.alloc_slot span |> Option.get in
  let s2 = Mspan.alloc_slot span |> Option.get in
  let s3 = Mspan.alloc_slot span |> Option.get in
  Alcotest.(check (list int)) "bump order" [ 0; 1; 2 ] [ s1; s2; s3 ];
  Alcotest.(check int) "allocated" 3 span.Mspan.allocated;
  (* freeing the top slot reverts the free index *)
  Mspan.free_slot span s3;
  Alcotest.(check int) "free index reverted" 2 span.Mspan.free_index;
  (* freeing a middle slot goes to the free list *)
  Mspan.free_slot span s1;
  Alcotest.(check int) "free index unchanged" 2 span.Mspan.free_index;
  Alcotest.(check (list int)) "free list" [ 0 ] span.Mspan.free_list;
  (* freeing slot 1 now cascades the revert over slot 0 as well *)
  Mspan.free_slot span s2;
  Alcotest.(check int) "cascaded revert" 0 span.Mspan.free_index;
  Alcotest.(check (list int)) "free list drained" [] span.Mspan.free_list;
  Alcotest.(check int) "empty" 0 span.Mspan.allocated

let test_span_free_list_reuse () =
  let span = Mspan.create_small 0 in
  let a = Mspan.alloc_slot span |> Option.get in
  let _b = Mspan.alloc_slot span |> Option.get in
  Mspan.free_slot span a;
  (* next allocation reuses the freed slot before bumping *)
  let c = Mspan.alloc_slot span |> Option.get in
  Alcotest.(check int) "reused slot" a c

let test_mcache_swaps_full_spans () =
  let pages = Pageheap.create () in
  let central = Mcentral.create pages in
  let cache = Mcache.create 0 in
  let class_idx = Sizeclass.class_for_size 8192 |> Option.get in
  let span0, _ = Mcache.alloc cache central class_idx in
  let nslots = span0.Mspan.nslots in
  (* exhaust the first span *)
  for _ = 2 to nslots do
    ignore (Mcache.alloc cache central class_idx)
  done;
  (* next allocation forces a swap *)
  let span1, _ = Mcache.alloc cache central class_idx in
  Alcotest.(check bool) "new span" true
    (span1.Mspan.span_id <> span0.Mspan.span_id);
  Alcotest.(check bool) "old span in mcentral" true
    (span0.Mspan.state = Mspan.In_mcentral);
  Alcotest.(check bool) "old span no longer owned" false
    (Mcache.owns cache span0);
  Alcotest.(check bool) "new span owned" true (Mcache.owns cache span1)

let test_mcentral_partial_reuse () =
  let pages = Pageheap.create () in
  let central = Mcentral.create pages in
  let span = Mcentral.acquire_span central 0 ~for_thread:0 in
  ignore (Mspan.alloc_slot span);
  Mcentral.release_span central span;
  (* a partial span comes back before a fresh one is created *)
  let again = Mcentral.acquire_span central 0 ~for_thread:1 in
  Alcotest.(check int) "same span reused" span.Mspan.span_id
    again.Mspan.span_id;
  Alcotest.(check bool) "owned by new thread" true
    (again.Mspan.state = Mspan.In_mcache 1)

let test_page_accounting () =
  let pages = Pageheap.create () in
  Pageheap.alloc_pages pages 10;
  Alcotest.(check int) "mapped" 10 pages.Pageheap.mapped_pages;
  Pageheap.free_pages pages 4;
  Pageheap.alloc_pages pages 3;
  (* reuse from the pool: no new mapping *)
  Alcotest.(check int) "still 10 mapped" 10 pages.Pageheap.mapped_pages;
  Pageheap.alloc_pages pages 2;
  Alcotest.(check int) "one more mapped" 11 pages.Pageheap.mapped_pages

let test_heap_alloc_and_metrics () =
  let heap = Heap.create () in
  let obj =
    Heap.alloc_heap heap ~thread:0 ~category:Metrics.Cat_slice ~size:100
      ~payload:Heap.No_payload
  in
  Alcotest.(check bool) "registered" true
    (Heap.find_obj heap obj.Heap.addr <> None);
  Alcotest.(check int) "alloced bytes" 100
    heap.Heap.metrics.Metrics.alloced_bytes;
  Alcotest.(check int) "heap slice count" 1
    heap.Heap.metrics.Metrics.heap_allocs.(0);
  let sobj =
    Heap.alloc_stack heap ~scope:1 ~category:Metrics.Cat_other ~size:50
      ~payload:Heap.No_payload
  in
  Alcotest.(check int) "stack allocs don't count bytes" 100
    heap.Heap.metrics.Metrics.alloced_bytes;
  Heap.release_stack heap sobj;
  Alcotest.(check bool) "stack object gone" true
    (Heap.find_obj heap sobj.Heap.addr = None)

let test_large_object_dedicated_span () =
  let heap = Heap.create () in
  let obj =
    Heap.alloc_heap heap ~thread:0 ~category:Metrics.Cat_slice
      ~size:(Sizeclass.max_small + 1) ~payload:Heap.No_payload
  in
  match obj.Heap.placement with
  | Heap.On_heap (span, 0) ->
    Alcotest.(check int) "large span class" (-1) span.Mspan.class_idx;
    Alcotest.(check int) "one slot" 1 span.Mspan.nslots;
    Alcotest.(check bool) "multiple pages" true (span.Mspan.npages >= 5)
  | _ -> Alcotest.fail "expected a dedicated span"

let suite =
  [
    Alcotest.test_case "size classes" `Quick test_size_classes;
    Alcotest.test_case "span waste bound" `Quick test_span_waste_bound;
    Alcotest.test_case "span bump and revert" `Quick
      test_span_bump_and_revert;
    Alcotest.test_case "span free-list reuse" `Quick
      test_span_free_list_reuse;
    Alcotest.test_case "mcache swaps full spans" `Quick
      test_mcache_swaps_full_spans;
    Alcotest.test_case "mcentral reuses partial spans" `Quick
      test_mcentral_partial_reuse;
    Alcotest.test_case "page accounting" `Quick test_page_accounting;
    Alcotest.test_case "heap alloc and metrics" `Quick
      test_heap_alloc_and_metrics;
    Alcotest.test_case "large objects get dedicated spans" `Quick
      test_large_object_dedicated_span;
  ]
