(** Workload tests: every subject proxy compiles, runs identically under
    stock Go / GoFree / GoFree+poison / GC-off, and shows the paper's
    qualitative effects (positive free ratio, no more GC cycles than
    stock Go). *)

module Rt = Gofree_runtime
module W = Gofree_workloads.Workloads

(* Small sizes so the whole suite stays fast. *)
let test_size (w : W.t) = max 20 (w.W.w_default_size / 10)

let run_with ~gofree_config ?(gc_disabled = false) ?(poison = false) src =
  let run_config =
    {
      Gofree_interp.Interp.default_config with
      heap_config =
        {
          Rt.Heap.default_config with
          gc_disabled;
          poison_on_free = poison;
          grow_map_free_old =
            gofree_config.Gofree_core.Config.insert_tcfree;
        };
    }
  in
  Gofree_interp.Runner.compile_and_run ~gofree_config ~run_config src

let workload_case (w : W.t) =
  Alcotest.test_case w.W.w_name `Slow (fun () ->
      let src = W.source_of ~size:(test_size w) w in
      let go = run_with ~gofree_config:Gofree_core.Config.go src in
      let gf = run_with ~gofree_config:Gofree_core.Config.gofree src in
      let gp =
        run_with ~gofree_config:Gofree_core.Config.gofree ~poison:true src
      in
      let goff =
        run_with ~gofree_config:Gofree_core.Config.go ~gc_disabled:true src
      in
      Alcotest.(check bool) "produces output" true
        (String.length go.Gofree_interp.Runner.output > 0);
      Alcotest.(check string) "Go = GoFree" go.Gofree_interp.Runner.output
        gf.Gofree_interp.Runner.output;
      Alcotest.(check string) "Go = poison" go.Gofree_interp.Runner.output
        gp.Gofree_interp.Runner.output;
      Alcotest.(check string) "Go = GC-off" go.Gofree_interp.Runner.output
        goff.Gofree_interp.Runner.output;
      let m_go = go.Gofree_interp.Runner.metrics in
      let m_gf = gf.Gofree_interp.Runner.metrics in
      Alcotest.(check bool) "GoFree frees something" true
        (m_gf.Rt.Metrics.freed_bytes > 0);
      Alcotest.(check bool) "same allocation volume" true
        (m_go.Rt.Metrics.alloced_bytes = m_gf.Rt.Metrics.alloced_bytes);
      Alcotest.(check bool) "no more GC cycles than Go" true
        (m_gf.Rt.Metrics.gc_cycles <= m_go.Rt.Metrics.gc_cycles);
      Alcotest.(check int) "no invariant violations" 0
        m_gf.Rt.Metrics.heap_to_stack_pointers;
      Alcotest.(check int) "no poison reads" 0
        gp.Gofree_interp.Runner.metrics.Rt.Metrics.poison_reads;
      Alcotest.(check bool) "GC-off run has zero cycles" true
        (goff.Gofree_interp.Runner.metrics.Rt.Metrics.gc_cycles = 0))

let test_microbench_compiles () =
  List.iter
    (fun c ->
      let src = Gofree_workloads.Microbench.source ~c ~iters:30 in
      let go = run_with ~gofree_config:Gofree_core.Config.go src in
      let gf = run_with ~gofree_config:Gofree_core.Config.gofree src in
      Alcotest.(check string)
        (Printf.sprintf "microbench c=%d outputs" c)
        go.Gofree_interp.Runner.output gf.Gofree_interp.Runner.output;
      Alcotest.(check bool)
        (Printf.sprintf "microbench c=%d frees" c)
        true
        (gf.Gofree_interp.Runner.metrics.Rt.Metrics.freed_bytes > 0))
    Gofree_workloads.Microbench.sweep

let test_registry () =
  Alcotest.(check int) "six subjects" 6 (List.length W.all);
  List.iter
    (fun name ->
      Alcotest.(check bool) name true (W.find name <> None))
    [ "Go"; "hugo"; "badger"; "json"; "scheck"; "slayout" ]

let test_determinism () =
  (* the same workload twice gives byte-identical output and metrics *)
  let w = W.find "json" |> Option.get in
  let src = W.source_of ~size:30 w in
  let r1 = run_with ~gofree_config:Gofree_core.Config.gofree src in
  let r2 = run_with ~gofree_config:Gofree_core.Config.gofree src in
  Alcotest.(check string) "outputs" r1.Gofree_interp.Runner.output
    r2.Gofree_interp.Runner.output;
  Alcotest.(check int) "alloced"
    r1.Gofree_interp.Runner.metrics.Rt.Metrics.alloced_bytes
    r2.Gofree_interp.Runner.metrics.Rt.Metrics.alloced_bytes;
  Alcotest.(check int) "freed"
    r1.Gofree_interp.Runner.metrics.Rt.Metrics.freed_bytes
    r2.Gofree_interp.Runner.metrics.Rt.Metrics.freed_bytes

let suite =
  List.map workload_case W.all
  @ [
      Alcotest.test_case "microbench sweep" `Slow test_microbench_compiles;
      Alcotest.test_case "registry" `Quick test_registry;
      Alcotest.test_case "determinism" `Slow test_determinism;
    ]
