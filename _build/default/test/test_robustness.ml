(** Robustness methodology tests (paper §6.8): the poisoning mock tcfree
    must (a) stay silent for the sound analysis and (b) catch a
    deliberately unsound one — proving the harness can actually detect
    wrong frees. *)

module Rt = Gofree_runtime

(* The fig-1-shaped trap: the alias chain lives in an inner scope, the
   indirect store redirects it at the outer slice.  Sound GoFree marks
   the alias Incomplete via back-propagation and must not free it;
   without back-propagation it frees the outer slice's array. *)
let trap =
  {|
var acc int
func main() {
  s2 := make([]int, 4+rand(2))
  s2[0] = 77
  {
    s1 := make([]int, 3+rand(2))
    ps := &s1
    *ps = s2
    al := *ps
    if len(al) > 0 { acc += al[0] }
  }
  println("alive", s2[0], acc)
}
|}

let poison_run config src =
  let run_config =
    {
      Gofree_interp.Interp.default_config with
      heap_config =
        { Rt.Heap.default_config with poison_on_free = true };
    }
  in
  Gofree_interp.Runner.compile_and_run ~gofree_config:config ~run_config src

let test_sound_trap_clean () =
  let r = poison_run Gofree_core.Config.gofree trap in
  Alcotest.(check string) "sound analysis never frees the alias"
    "alive 77 77\n" r.Gofree_interp.Runner.output;
  (* and indeed it refused the free *)
  let compiled = Helpers.compile trap in
  Alcotest.(check (list (triple string string string)))
    "nothing inserted" []
    (Helpers.inserted_vars compiled)

let test_unsound_trap_caught () =
  let compiled =
    Helpers.compile ~config:Gofree_core.Config.unsound_no_backprop trap
  in
  Alcotest.(check bool) "unsound variant frees the alias" true
    (List.exists (fun (_, v, _) -> v = "al")
       (Helpers.inserted_vars compiled));
  match poison_run Gofree_core.Config.unsound_no_backprop trap with
  | _ -> Alcotest.fail "expected the poison harness to catch the mis-free"
  | exception Gofree_interp.Value.Corruption _ -> ()

let test_unsound_caught_on_random_programs () =
  (* the negative control of the robustness benchmark, pinned to fixed
     seeds: the poison harness must catch the unsound analysis at least
     once (it catches several) and the sound analysis never *)
  let caught_unsound = ref 0 in
  for seed = 1 to 25 do
    let src = Gofree_workloads.Randprog.generate (seed * 104729) in
    (match poison_run Gofree_core.Config.unsound_no_backprop src with
    | _ -> ()
    | exception Gofree_interp.Value.Corruption _ -> incr caught_unsound);
    match poison_run Gofree_core.Config.gofree src with
    | _ -> ()
    | exception Gofree_interp.Value.Corruption msg ->
      Alcotest.failf "sound analysis mis-freed on seed %d: %s" seed msg
  done;
  Alcotest.(check bool)
    (Printf.sprintf "unsound caught at least once (%d/25)" !caught_unsound)
    true (!caught_unsound >= 1)

let test_stack_scope_poisoning () =
  (* Go invariant 2: a stack object must not outlive its scope.  Scope
     exit poisons released stack objects, so a hypothetical dangling
     reference would be caught; a correct program stays clean. *)
  let src =
    {|
func main() {
  total := 0
  for i := 0; i < 50; i++ {
    tmp := make([]int, 8)
    tmp[0] = i
    total += tmp[0]
  }
  println(total)
}
|}
  in
  let r = poison_run Gofree_core.Config.gofree src in
  Alcotest.(check string) "stack reuse clean" "1225\n"
    r.Gofree_interp.Runner.output

let test_gc_poisons_only_dead () =
  (* heavy GC churn under poison: only dead objects are poisoned *)
  let src =
    {|
var keep []int
func main() {
  for i := 0; i < 200; i++ {
    garbage := make([]int, 100+rand(50))
    garbage[0] = i
    if i == 150 {
      keep = garbage
    }
  }
  println(keep[0])
}
|}
  in
  let run_config =
    {
      Gofree_interp.Interp.default_config with
      heap_config =
        {
          Rt.Heap.default_config with
          poison_on_free = true;
          min_heap = 8 * 1024;  (* force many cycles *)
        };
    }
  in
  let r =
    Gofree_interp.Runner.compile_and_run
      ~gofree_config:Gofree_core.Config.gofree ~run_config src
  in
  Alcotest.(check string) "survivor intact" "150\n"
    r.Gofree_interp.Runner.output

let suite =
  [
    Alcotest.test_case "sound analysis survives the fig-1 trap" `Quick
      test_sound_trap_clean;
    Alcotest.test_case "unsound ablation is caught on the trap" `Quick
      test_unsound_trap_caught;
    Alcotest.test_case "unsound ablation caught on random programs" `Slow
      test_unsound_caught_on_random_programs;
    Alcotest.test_case "stack scope poisoning" `Quick
      test_stack_scope_poisoning;
    Alcotest.test_case "GC poisons only dead objects" `Quick
      test_gc_poisons_only_dead;
  ]
