(** Property-based tests (qcheck, registered as alcotest cases).

    The headline property is the paper's §6.8 robustness argument turned
    into a generator-driven check: for random well-typed MiniGo programs,
    compiling with GoFree and running with the poisoning mock tcfree must
    produce exactly the observable output of stock Go — any wrong
    compiler-inserted free trips the poison detector. *)

module Rt = Gofree_runtime

let gen_seed = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000)

let run_setting ~config ?(poison = false) ?(gc_disabled = false) src =
  let run_config =
    {
      Gofree_interp.Interp.default_config with
      heap_config =
        {
          Rt.Heap.default_config with
          poison_on_free = poison;
          gc_disabled;
          min_heap = 16 * 1024;  (* tiny heap: force frequent GC *)
          grow_map_free_old = config.Gofree_core.Config.insert_tcfree;
        };
    }
  in
  Gofree_interp.Runner.compile_and_run ~gofree_config:config ~run_config src

let prop_soundness =
  QCheck.Test.make ~count:60 ~name:"random programs: Go == GoFree+poison"
    gen_seed (fun seed ->
      let src = Gen_program.generate seed in
      let go = run_setting ~config:Gofree_core.Config.go src in
      let gf =
        run_setting ~config:Gofree_core.Config.gofree ~poison:true src
      in
      if
        not
          (String.equal go.Gofree_interp.Runner.output
             gf.Gofree_interp.Runner.output)
      then
        QCheck.Test.fail_reportf "outputs differ for seed %d:\n%s\n--- go\n%s--- gofree\n%s"
          seed src go.Gofree_interp.Runner.output
          gf.Gofree_interp.Runner.output;
      true)

let prop_soundness_all_targets =
  QCheck.Test.make ~count:40
    ~name:"random programs: all-targets config is also safe" gen_seed
    (fun seed ->
      let src = Gen_program.generate seed in
      let go = run_setting ~config:Gofree_core.Config.go src in
      let gf =
        run_setting ~config:Gofree_core.Config.all_targets ~poison:true src
      in
      String.equal go.Gofree_interp.Runner.output
        gf.Gofree_interp.Runner.output)

let prop_no_invariant_violations =
  QCheck.Test.make ~count:40
    ~name:"random programs: no heap-to-stack pointers" gen_seed (fun seed ->
      let src = Gen_program.generate seed in
      let gf = run_setting ~config:Gofree_core.Config.gofree src in
      gf.Gofree_interp.Runner.metrics.Rt.Metrics.heap_to_stack_pointers = 0)

let prop_alloc_volume_identical =
  QCheck.Test.make ~count:30
    ~name:"random programs: Go and GoFree allocate identically" gen_seed
    (fun seed ->
      let src = Gen_program.generate seed in
      let go = run_setting ~config:Gofree_core.Config.go src in
      let gf = run_setting ~config:Gofree_core.Config.gofree src in
      go.Gofree_interp.Runner.metrics.Rt.Metrics.alloced_bytes
      = gf.Gofree_interp.Runner.metrics.Rt.Metrics.alloced_bytes)

let prop_gc_off_agrees =
  QCheck.Test.make ~count:20 ~name:"random programs: GC off agrees"
    gen_seed (fun seed ->
      let src = Gen_program.generate seed in
      let go = run_setting ~config:Gofree_core.Config.go src in
      let off =
        run_setting ~config:Gofree_core.Config.go ~gc_disabled:true src
      in
      String.equal go.Gofree_interp.Runner.output
        off.Gofree_interp.Runner.output)

(* ---- allocator invariants ------------------------------------------ *)

let gen_ops =
  (* a script of alloc(size)/free(index) operations *)
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | `Alloc n -> Printf.sprintf "alloc %d" n
             | `Free i -> Printf.sprintf "free %d" i)
           ops))
    QCheck.Gen.(
      list_size (1 -- 120)
        (oneof
           [
             map (fun n -> `Alloc (1 + (n mod 40000))) (0 -- 100000);
             map (fun i -> `Free i) (0 -- 200);
           ]))

let prop_span_accounting =
  QCheck.Test.make ~count:100 ~name:"span accounting stays consistent"
    gen_ops (fun ops ->
      let heap = Rt.Heap.create () in
      let live = ref [] in
      let expected_live = ref 0 in
      List.iter
        (fun op ->
          match op with
          | `Alloc size ->
            let obj =
              Rt.Heap.alloc_heap heap ~thread:0
                ~category:Rt.Metrics.Cat_other ~size
                ~payload:Rt.Heap.No_payload
            in
            live := obj :: !live;
            expected_live := !expected_live + size
          | `Free i ->
            if !live <> [] then begin
              let idx = i mod List.length !live in
              let obj = List.nth !live idx in
              match
                Rt.Tcfree.tcfree heap ~thread:0
                  ~source:Rt.Metrics.Src_slice obj.Rt.Heap.addr
              with
              | Rt.Tcfree.Freed n ->
                expected_live := !expected_live - n;
                live := List.filter (fun o -> o != obj) !live
              | Rt.Tcfree.Gave_up _ -> ()
            end)
        ops;
      let m = heap.Rt.Heap.metrics in
      m.Rt.Metrics.heap_live = !expected_live
      && m.Rt.Metrics.heap_live
         = m.Rt.Metrics.alloced_bytes - m.Rt.Metrics.freed_bytes
      && m.Rt.Metrics.max_heap >= m.Rt.Metrics.heap_live)

let prop_span_slots_never_negative =
  QCheck.Test.make ~count:100 ~name:"span slot counts stay in range"
    gen_ops (fun ops ->
      let heap = Rt.Heap.create () in
      let live = ref [] in
      let spans = Hashtbl.create 16 in
      List.iter
        (fun op ->
          match op with
          | `Alloc size ->
            let obj =
              Rt.Heap.alloc_heap heap ~thread:0
                ~category:Rt.Metrics.Cat_other ~size
                ~payload:Rt.Heap.No_payload
            in
            (match obj.Rt.Heap.placement with
            | Rt.Heap.On_heap (span, _) ->
              Hashtbl.replace spans span.Rt.Mspan.span_id span
            | Rt.Heap.On_stack _ -> ());
            live := obj :: !live
          | `Free i ->
            if !live <> [] then begin
              let idx = i mod List.length !live in
              let obj = List.nth !live idx in
              ignore
                (Rt.Tcfree.tcfree heap ~thread:0
                   ~source:Rt.Metrics.Src_slice obj.Rt.Heap.addr);
              live := List.filter (fun o -> o != obj) !live
            end)
        ops;
      Hashtbl.fold
        (fun _ (span : Rt.Mspan.t) ok ->
          ok && span.Rt.Mspan.allocated >= 0
          && span.Rt.Mspan.allocated <= span.Rt.Mspan.nslots
          && span.Rt.Mspan.free_index <= span.Rt.Mspan.nslots
          && List.for_all (fun s -> s < span.Rt.Mspan.free_index)
               span.Rt.Mspan.free_list)
        spans true)

let prop_sizeclass_roundtrip =
  QCheck.Test.make ~count:500 ~name:"size class covers every small size"
    QCheck.(int_range 1 32768)
    (fun size ->
      match Rt.Sizeclass.class_for_size size with
      | None -> false
      | Some idx ->
        Rt.Sizeclass.class_size idx >= size
        && (idx = 0 || Rt.Sizeclass.class_size (idx - 1) < size))

(* ---- frontend properties ------------------------------------------- *)

let prop_generated_programs_typecheck =
  QCheck.Test.make ~count:100 ~name:"generated programs typecheck"
    gen_seed (fun seed ->
      match Helpers.parse_check (Gen_program.generate seed) with
      | _ -> true
      | exception _ -> false)

let prop_lexer_never_loops =
  QCheck.Test.make ~count:200 ~name:"lexer terminates on junk"
    QCheck.(string_of_size (QCheck.Gen.int_bound 200))
    (fun s ->
      match Minigo.Lexer.tokenize s with
      | _ -> true
      | exception Minigo.Lexer.Error _ -> true)

let to_alcotest = QCheck_alcotest.to_alcotest

let suite =
  List.map to_alcotest
    [
      prop_soundness;
      prop_soundness_all_targets;
      prop_no_invariant_violations;
      prop_alloc_volume_identical;
      prop_gc_off_agrees;
      prop_span_accounting;
      prop_span_slots_never_negative;
      prop_sizeclass_roundtrip;
      prop_generated_programs_typecheck;
      prop_lexer_never_loops;
    ]
