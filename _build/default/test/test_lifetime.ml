(** Lifetime analysis tests (paper §4.3, fig. 6): DeclDepth,
    OutermostRef, Outlived, and the scope at which tcfree lands. *)

open Gofree_escape

(* Reconstruction of fig. 6: three dynamically-sized slices in nested
   scopes; s1 and s2 die in their own scope, s3 leaks its array to an
   outer-scope pointer. *)
let fig6 =
  {|
func nested(n int) int {
  total := 0
  var leak []int
  {
    s1 := make([]int, n)
    s1[0] = 1
    total += s1[0]
    {
      s2 := make([]int, n+1)
      s2[0] = 2
      total += s2[0]
    }
    {
      s3 := make([]int, n+2)
      s3[0] = 3
      leak = s3
    }
  }
  total += leak[0]
  return total
}
func main() { println(nested(5)) }
|}

let test_fig6_frees () =
  let compiled = Helpers.compile fig6 in
  let freed = List.sort compare (Helpers.inserted_vars compiled) in
  (* s1 and s2 die in their own scopes and are freed there; s3 leaked its
     array to the outer-scope pointer `leak`, so s3 itself must not be
     freed — instead the free moves out to leak's (function) scope, the
     cross-scope capability §4.3 highlights. *)
  Alcotest.(check (list (triple string string string)))
    "s1, s2 freed in place; s3 deferred to leak's scope"
    [ ("nested", "leak", "slice"); ("nested", "s1", "slice");
      ("nested", "s2", "slice") ]
    freed

let test_fig6_outlived () =
  let compiled = Helpers.compile fig6 in
  let s3 = Helpers.var_props compiled ~func:"nested" ~var:"s3" in
  Alcotest.(check bool) "Outlived(s3)" true s3.Loc.outlived;
  let s1 = Helpers.var_props compiled ~func:"nested" ~var:"s1" in
  Alcotest.(check bool) "not Outlived(s1)" false s1.Loc.outlived;
  (* leak has a complete points-to set but lives at depth 1; its object's
     OutermostRef equals leak's DeclDepth so leak itself is not outlived
     — yet freeing it is pointless only if it were incomplete; check it
     IS freed at function scope *)
  let freed = Helpers.inserted_vars compiled in
  Alcotest.(check bool) "leak freeable at function scope" true
    (List.mem ("nested", "leak", "slice") freed
    || not
         (Gofree_escape.Propagate.to_free
            (Helpers.var_props compiled ~func:"nested" ~var:"leak")))

let test_outermost_ref_values () =
  let compiled = Helpers.compile fig6 in
  let analysis = compiled.Gofree_core.Pipeline.c_analysis in
  let program = compiled.Gofree_core.Pipeline.c_program in
  (* the three slice allocation sites, in source order *)
  let sites =
    List.filter
      (fun (s : Minigo.Tast.alloc_site) ->
        s.Minigo.Tast.site_kind = Minigo.Tast.Site_slice)
      program.Minigo.Tast.p_sites
  in
  let fr = Analysis.func_result analysis "nested" |> Option.get in
  let site_loc site =
    Hashtbl.find fr.Analysis.fr_ctx.Build.site_locs
      site.Minigo.Tast.site_id
  in
  match List.map site_loc sites with
  | [ l1; l2; l3 ] ->
    (* s1's object stays within its scope (depth 2), s2's within depth 3,
       s3's is referenced from depth 1 (leak) *)
    Alcotest.(check int) "OutermostRef(make s1)" 2 l1.Loc.outermost_ref;
    Alcotest.(check int) "OutermostRef(make s2)" 3 l2.Loc.outermost_ref;
    Alcotest.(check int) "OutermostRef(make s3)" 1 l3.Loc.outermost_ref
  | _ -> Alcotest.fail "expected three slice sites"

let test_free_inside_loop_body () =
  (* the declaration scope of a per-iteration buffer is the loop body:
     tcfree must land there (once per iteration) *)
  let compiled =
    Helpers.compile
      {|
func f(n int) int {
  t := 0
  for i := 0; i < n; i++ {
    buf := make([]int, i+1)
    buf[0] = i
    t += buf[0]
  }
  return t
}
func main() { println(f(4)) }
|}
  in
  let printed =
    Minigo.Pretty.program_to_string compiled.Gofree_core.Pipeline.c_program
  in
  let contains ~needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  (* the free appears inside the loop body, indented deeper than the
     loop header *)
  Alcotest.(check bool) "TcfreeSlice(buf) present at body indent" true
    (contains ~needle:"      TcfreeSlice(buf)" printed)

let test_no_free_when_returned () =
  let compiled =
    Helpers.compile
      {|
func f(n int) []int {
  s := make([]int, n)
  return s
}
func main() { println(len(f(3))) }
|}
  in
  Alcotest.(check (list (triple string string string)))
    "returned slice not freed in callee" []
    (List.filter (fun (f, _, _) -> f = "f") (Helpers.inserted_vars compiled))

let test_defer_bans_free () =
  let compiled =
    Helpers.compile
      {|
func consume(s []int) {
  println(len(s))
}
func f(n int) {
  s := make([]int, n)
  defer consume(s)
  s[0] = 1
}
func main() { f(3) }
|}
  in
  Alcotest.(check (list (triple string string string)))
    "deferred argument never freed" []
    (List.filter (fun (fn, _, _) -> fn = "f")
       (Helpers.inserted_vars compiled))

let test_go_bans_free () =
  let compiled =
    Helpers.compile
      {|
func consume(s []int) {
  println(len(s))
}
func f(n int) {
  s := make([]int, n)
  go consume(s)
  s[0] = 1
}
func main() { f(3) }
|}
  in
  Alcotest.(check (list (triple string string string)))
    "goroutine argument never freed" []
    (List.filter (fun (fn, _, _) -> fn = "f")
       (Helpers.inserted_vars compiled))

let test_panic_bans_free () =
  let compiled =
    Helpers.compile
      {|
func f(n int) {
  s := make([]int, n)
  if n > 100 {
    panic(s)
  }
  s[0] = 1
}
func main() { f(3) }
|}
  in
  Alcotest.(check (list (triple string string string)))
    "panic argument never freed" []
    (List.filter (fun (fn, _, _) -> fn = "f")
       (Helpers.inserted_vars compiled))

let suite =
  [
    Alcotest.test_case "fig 6: s1,s2 freed, s3 kept" `Quick test_fig6_frees;
    Alcotest.test_case "fig 6: Outlived(s3)" `Quick test_fig6_outlived;
    Alcotest.test_case "fig 6: OutermostRef values" `Quick
      test_outermost_ref_values;
    Alcotest.test_case "free lands in loop body" `Quick
      test_free_inside_loop_body;
    Alcotest.test_case "returned slice not freed" `Quick
      test_no_free_when_returned;
    Alcotest.test_case "defer bans freeing" `Quick test_defer_bans_free;
    Alcotest.test_case "go bans freeing" `Quick test_go_bans_free;
    Alcotest.test_case "panic bans freeing" `Quick test_panic_bans_free;
  ]
