(** Instrumentation tests (paper §4.5): placement of inserted tcfree
    statements and target filtering. *)

open Minigo

let last_stmts_of_block (b : Tast.block) = b.Tast.b_stmts

let find_func compiled name =
  Tast.find_func compiled.Gofree_core.Pipeline.c_program name |> Option.get

let test_free_before_trailing_return () =
  let compiled =
    Helpers.compile
      {|
func f(n int) int {
  s := make([]int, n)
  s[0] = 7
  x := s[0]
  return x
}
func main() { println(f(3)) }
|}
  in
  let f = find_func compiled "f" in
  match List.rev (last_stmts_of_block f.Tast.f_body) with
  | Tast.Sreturn _ :: Tast.Stcfree (v, Tast.Free_slice) :: _ ->
    Alcotest.(check string) "frees s" "s" v.Tast.v_name
  | _ -> Alcotest.fail "expected tcfree immediately before return"

let test_free_skipped_when_return_uses_var () =
  (* `return len(s)` uses s: inserting before it would be a
     use-after-free — the instrumentation must skip it *)
  let compiled =
    Helpers.compile
      {|
func f(n int) int {
  s := make([]int, n)
  s[0] = 7
  return len(s) + s[0]
}
func main() { println(f(3)) }
|}
  in
  Alcotest.(check (list (triple string string string)))
    "no free when trailing return mentions the var" []
    (List.filter (fun (fn, _, _) -> fn = "f")
       (Helpers.inserted_vars compiled));
  Helpers.check_all_settings_agree ~name:"return-mentions-var"
    {|
func f(n int) int {
  s := make([]int, n)
  s[0] = 7
  return len(s) + s[0]
}
func main() { println(f(3)) }
|}

let test_free_appended_at_block_end () =
  let compiled =
    Helpers.compile
      {|
func f(n int) {
  s := make([]int, n)
  s[0] = 1
}
func main() { f(2) }
|}
  in
  let f = find_func compiled "f" in
  match List.rev (last_stmts_of_block f.Tast.f_body) with
  | Tast.Stcfree (_, Tast.Free_slice) :: _ -> ()
  | _ -> Alcotest.fail "expected tcfree as last statement"

let test_target_filtering () =
  let src =
    {|
type T struct { a int }
func sink(m map[int]int) map[int]int {
  m[1] = 2
  return m
}
func mk(n int) *T {
  return &T{a: n}
}
func f(n int) int {
  s := make([]int, n)
  m := sink(make(map[int]int))
  p := mk(n)
  s[0] = 1
  m[0] = 1
  x := s[0] + m[0] + p.a
  return x
}
func main() { println(f(9)) }
|}
  in
  let default = Helpers.compile src in
  let kinds = List.map (fun (_, _, k) -> k) (Helpers.inserted_vars default) in
  Alcotest.(check bool) "slices freed by default" true
    (List.mem "slice" kinds);
  Alcotest.(check bool) "raw pointers not freed by default" false
    (List.mem "obj" kinds);
  let all = Helpers.compile ~config:Gofree_core.Config.all_targets src in
  let kinds_all =
    List.map (fun (_, _, k) -> k) (Helpers.inserted_vars all)
  in
  Alcotest.(check bool) "pointers freed with all-targets" true
    (List.mem "obj" kinds_all)

let test_go_mode_inserts_nothing () =
  let compiled =
    Helpers.compile ~config:Gofree_core.Config.go
      {|
func f(n int) int {
  s := make([]int, n)
  s[0] = 1
  x := s[0]
  return x
}
func main() { println(f(3)) }
|}
  in
  Alcotest.(check (list (triple string string string))) "stock Go" []
    (Helpers.inserted_vars compiled)

let test_double_free_adjacent_aliases () =
  (* two aliases of the same object, both eligible: the paper accepts
     the adjacent double free because tcfree tolerates it (§5) — the
     program must still behave identically, even under poison *)
  Helpers.check_all_settings_agree ~name:"adjacent aliases"
    {|
func f(n int) int {
  s := make([]int, n)
  t := s
  t[0] = 3
  return s[0] + t[0]
}
func main() { println(f(4)) }
|}

let test_multiple_frees_in_one_scope () =
  let compiled =
    Helpers.compile
      {|
func f(n int) int {
  a := make([]int, n)
  b := make([]int, n+1)
  c := make(map[int]int)
  a[0] = 1
  b[0] = 2
  c[0] = 3
  x := a[0] + b[0] + c[0]
  return x
}
func main() { println(f(5)) }
|}
  in
  let freed =
    List.filter (fun (fn, _, _) -> fn = "f") (Helpers.inserted_vars compiled)
  in
  (* a and b are heap (dynamic size) and freed; c's map is non-escaping
     with constant initial size, so Go stack-allocates it and there is
     nothing for tcfree to do (Def 4.16) *)
  Alcotest.(check int) "two frees" 2 (List.length freed)

let suite =
  [
    Alcotest.test_case "free before trailing return" `Quick
      test_free_before_trailing_return;
    Alcotest.test_case "skip when return mentions var" `Quick
      test_free_skipped_when_return_uses_var;
    Alcotest.test_case "free at block end" `Quick
      test_free_appended_at_block_end;
    Alcotest.test_case "target filtering" `Quick test_target_filtering;
    Alcotest.test_case "stock Go inserts nothing" `Quick
      test_go_mode_inserts_nothing;
    Alcotest.test_case "adjacent alias double-free" `Quick
      test_double_free_adjacent_aliases;
    Alcotest.test_case "several frees per scope" `Quick
      test_multiple_frees_in_one_scope;
  ]
