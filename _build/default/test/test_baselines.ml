(** Baseline analysis tests: Table 3's three-way points-to comparison
    between Fast Escape Analysis, the Go escape graph, and the
    connection-graph (Andersen) analysis. *)

let fig1 =
  {|
type Big struct {
  fat int
  p *float
}

func dd(s *float) *float {
  bigObj := Big{fat: 42, p: s}
  c := 1.0
  d := 2.0
  pc := &c
  pd := &d
  ppd := &pd
  *ppd = pc
  pd2 := *ppd
  if bigObj.fat > 0 {
    return pd2
  }
  return pd
}

func main() {
  x := 3.0
  r := dd(&x)
  println(*r)
}
|}

let with_dd f =
  let program = Helpers.parse_check fig1 in
  let func = Minigo.Tast.find_func program "dd" |> Option.get in
  f func

let test_table3_fast () =
  with_dd (fun f ->
      let fast = Gofree_baselines.Fast_ea.analyze f in
      Alcotest.(check (list string)) "fast: pd2 empty" []
        (Gofree_baselines.Fast_ea.points_to fast f ~var:"pd2");
      Alcotest.(check (list string)) "fast: pc = {c}" [ "c" ]
        (Gofree_baselines.Fast_ea.points_to fast f ~var:"pc");
      Alcotest.(check (list string)) "fast: pd = {d}" [ "d" ]
        (Gofree_baselines.Fast_ea.points_to fast f ~var:"pd"))

let test_table3_go_graph () =
  let compiled = Helpers.compile fig1 in
  Alcotest.(check (list string)) "go graph: pd2 = {d} (incomplete)"
    [ "d" ]
    (Helpers.points_to compiled ~func:"dd" ~var:"pd2")

let test_table3_connection_graph () =
  with_dd (fun f ->
      let conn = Gofree_baselines.Conn_graph.analyze f in
      Alcotest.(check (list string)) "conn: pd2 = {c, d} (complete)"
        [ "c"; "d" ]
        (Gofree_baselines.Conn_graph.points_to conn f ~var:"pd2");
      Alcotest.(check (list string)) "conn: pc = {c}" [ "c" ]
        (Gofree_baselines.Conn_graph.points_to conn f ~var:"pc"))

let test_andersen_transitivity () =
  let src =
    {|
func f() int {
  a := 1
  p := &a
  q := p
  r := q
  return *r
}
func main() { println(f()) }
|}
  in
  let program = Helpers.parse_check src in
  let f = Minigo.Tast.find_func program "f" |> Option.get in
  let conn = Gofree_baselines.Conn_graph.analyze f in
  Alcotest.(check (list string)) "pts flow through copies" [ "a" ]
    (Gofree_baselines.Conn_graph.points_to conn f ~var:"r")

let test_andersen_store_load_roundtrip () =
  let src =
    {|
func f() int {
  a := 1
  b := 2
  p := &a
  pp := &p
  *pp = &b
  q := *pp
  return *q
}
func main() { println(f()) }
|}
  in
  let program = Helpers.parse_check src in
  let f = Minigo.Tast.find_func program "f" |> Option.get in
  let conn = Gofree_baselines.Conn_graph.analyze f in
  (* q may point to a (initial) or b (stored through pp) *)
  Alcotest.(check (list string)) "store/load round trip" [ "a"; "b" ]
    (Gofree_baselines.Conn_graph.points_to conn f ~var:"q")

let test_fast_unification () =
  let src =
    {|
func f() int {
  a := 1
  p := &a
  q := p
  return *q
}
func main() { println(f()) }
|}
  in
  let program = Helpers.parse_check src in
  let f = Minigo.Tast.find_func program "f" |> Option.get in
  let fast = Gofree_baselines.Fast_ea.analyze f in
  (* q is unified with p: both see {a} *)
  Alcotest.(check (list string)) "q unified with p" [ "a" ]
    (Gofree_baselines.Fast_ea.points_to fast f ~var:"q")

let suite =
  [
    Alcotest.test_case "table 3: fast EA" `Quick test_table3_fast;
    Alcotest.test_case "table 3: Go escape graph" `Quick
      test_table3_go_graph;
    Alcotest.test_case "table 3: connection graph" `Quick
      test_table3_connection_graph;
    Alcotest.test_case "andersen: copy transitivity" `Quick
      test_andersen_transitivity;
    Alcotest.test_case "andersen: store/load" `Quick
      test_andersen_store_load_roundtrip;
    Alcotest.test_case "fast EA: unification" `Quick test_fast_unification;
  ]
