(** Lexer tests: tokens, positions, automatic semicolon insertion. *)

open Minigo

let toks src = List.map fst (Lexer.tokenize src)

let token = Alcotest.testable (Fmt.of_to_string Token.to_string) ( = )

let check_tokens name src expected =
  Alcotest.(check (list token)) name expected (toks src)

let test_idents_and_keywords () =
  check_tokens "idents" "foo bar" [ IDENT "foo"; IDENT "bar"; SEMI; EOF ];
  check_tokens "keywords" "func var if else"
    [ KW_FUNC; KW_VAR; KW_IF; KW_ELSE; EOF ];
  check_tokens "ident with digits" "x1 _y"
    [ IDENT "x1"; IDENT "_y"; SEMI; EOF ]

let test_numbers () =
  check_tokens "ints" "0 42 1000000"
    [ INT_LIT 0; INT_LIT 42; INT_LIT 1000000; SEMI; EOF ];
  check_tokens "float" "3.25" [ FLOAT_LIT 3.25; SEMI; EOF ];
  check_tokens "int dot ident" "a.b" [ IDENT "a"; DOT; IDENT "b"; SEMI; EOF ]

let test_strings () =
  check_tokens "plain" {|"hello"|} [ STRING_LIT "hello"; SEMI; EOF ];
  check_tokens "escapes" {|"a\nb\t\"c\""|}
    [ STRING_LIT "a\nb\t\"c\""; SEMI; EOF ];
  check_tokens "empty" {|""|} [ STRING_LIT ""; SEMI; EOF ]

let test_operators () =
  check_tokens "compare" "< <= > >= == !="
    [ LT; LE; GT; GE; EQ; NE; EOF ];
  check_tokens "assign family" "= := += -= *="
    [ ASSIGN; DEFINE; PLUS_ASSIGN; MINUS_ASSIGN; STAR_ASSIGN; EOF ];
  check_tokens "incr" "x++" [ IDENT "x"; PLUSPLUS; SEMI; EOF ];
  check_tokens "logic" "&& || !" [ AMPAMP; BARBAR; BANG; EOF ];
  check_tokens "amp vs ampamp" "&x && y"
    [ AMP; IDENT "x"; AMPAMP; IDENT "y"; SEMI; EOF ];
  check_tokens "bitwise" "a | b ^ c & d"
    [ IDENT "a"; BAR; IDENT "b"; CARET; IDENT "c"; AMP; IDENT "d"; SEMI;
      EOF ];
  check_tokens "shifts vs comparisons" "a << 2 >> 1 < b <= c"
    [ IDENT "a"; SHL; INT_LIT 2; SHR; INT_LIT 1; LT; IDENT "b"; LE;
      IDENT "c"; SEMI; EOF ]

let test_semicolon_insertion () =
  (* newline after an expression-ending token inserts a SEMI *)
  check_tokens "after ident" "x\ny"
    [ IDENT "x"; SEMI; IDENT "y"; SEMI; EOF ];
  (* but not after an operator *)
  check_tokens "after plus" "x +\ny"
    [ IDENT "x"; PLUS; IDENT "y"; SEMI; EOF ];
  check_tokens "after rparen" "f()\ng()"
    [ IDENT "f"; LPAREN; RPAREN; SEMI; IDENT "g"; LPAREN; RPAREN; SEMI;
      EOF ];
  check_tokens "after return" "return\nx"
    [ KW_RETURN; SEMI; IDENT "x"; SEMI; EOF ];
  check_tokens "after lbrace none" "{\nx"
    [ LBRACE; IDENT "x"; SEMI; EOF ]

let test_comments () =
  check_tokens "line comment" "x // comment\ny"
    [ IDENT "x"; SEMI; IDENT "y"; SEMI; EOF ];
  check_tokens "block comment" "x /* y */ z"
    [ IDENT "x"; IDENT "z"; SEMI; EOF ];
  check_tokens "block comment with newline still inserts semi"
    "x /* a\nb */ z" [ IDENT "x"; SEMI; IDENT "z"; SEMI; EOF ]

let test_positions () =
  let all = Lexer.tokenize "ab\n  cd" in
  match all with
  | [ (Token.IDENT "ab", p1); (Token.SEMI, _); (Token.IDENT "cd", p2);
      (Token.SEMI, _); (Token.EOF, _) ] ->
    Alcotest.(check int) "line 1" 1 p1.Token.line;
    Alcotest.(check int) "col 1" 1 p1.Token.col;
    Alcotest.(check int) "line 2" 2 p2.Token.line;
    Alcotest.(check int) "col 3" 3 p2.Token.col
  | _ -> Alcotest.fail "unexpected token stream"

let test_errors () =
  let lex_error src =
    match toks src with
    | exception Lexer.Error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "unterminated string" true (lex_error "\"abc");
  Alcotest.(check bool) "bad char" true (lex_error "x # y");
  Alcotest.(check bool) "unterminated block comment" true
    (lex_error "/* abc");
  Alcotest.(check bool) "bad escape" true (lex_error {|"a\q"|})

let suite =
  [
    Alcotest.test_case "identifiers and keywords" `Quick
      test_idents_and_keywords;
    Alcotest.test_case "numbers" `Quick test_numbers;
    Alcotest.test_case "strings" `Quick test_strings;
    Alcotest.test_case "operators" `Quick test_operators;
    Alcotest.test_case "semicolon insertion" `Quick
      test_semicolon_insertion;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "positions" `Quick test_positions;
    Alcotest.test_case "errors" `Quick test_errors;
  ]
