(** Test-side alias of the random MiniGo program generator (the
    implementation lives in the workloads library so the robustness
    benchmark can reuse it). *)

let generate = Gofree_workloads.Randprog.generate
