(** Escape analysis tests: graph mechanics (Holds/MinDerefs/PointsTo,
    Defs 4.6–4.9) and the paper's fig. 1 / fig. 3 behaviours. *)

open Gofree_escape

let fig1 =
  {|
type Big struct {
  fat int
  p *float
}

func dd(s *float) *float {
  bigObj := Big{fat: 42, p: s}
  c := 1.0
  d := 2.0
  pc := &c
  pd := &d
  ppd := &pd
  *ppd = pc
  pd2 := *ppd
  if bigObj.fat > 0 {
    return pd2
  }
  return pd
}

func main() {
  x := 3.0
  r := dd(&x)
  println(*r)
}
|}

let fig3 =
  {|
func analyses(n int) {
  s1 := make([]int, 335)
  s1[0] = 1
  for i := 1; i < n; i++ {
    s2 := make([]int, i)
    s2[0] = i
  }
}
func main() { analyses(10) }
|}

(* ---- raw graph mechanics ------------------------------------------- *)

let mkloc g name =
  Graph.fresh_loc g (Loc.Kcontent name) ~loop_depth:0 ~decl_depth:1

let test_min_derefs () =
  (* p = &q; r = *p  ⇒  q's value reaches r at derefs 0 *)
  let g = Graph.create () in
  let q = mkloc g "q" and p = mkloc g "p" and r = mkloc g "r" in
  Graph.add_edge g ~src:q ~dst:p ~weight:(-1);
  Graph.add_edge g ~src:p ~dst:r ~weight:1;
  Alcotest.(check (option int)) "q in PointsTo(p)" (Some (-1))
    (Graph.min_derefs g q p);
  Alcotest.(check (option int)) "q to r" (Some 0) (Graph.min_derefs g q r);
  Alcotest.(check (option int)) "p to r" (Some 1) (Graph.min_derefs g p r);
  Alcotest.(check (option int)) "unreachable" None (Graph.min_derefs g r q)

let test_track_derefs_floor () =
  (* the max(0, ·) floor of Def 4.7: derefs never drop below −1 along a
     track, even over several address-of edges *)
  let g = Graph.create () in
  let a = mkloc g "a" and b = mkloc g "b" and c = mkloc g "c" in
  Graph.add_edge g ~src:a ~dst:b ~weight:(-1);
  Graph.add_edge g ~src:b ~dst:c ~weight:(-1);
  Alcotest.(check (option int)) "a to c floors at -1" (Some (-1))
    (Graph.min_derefs g a c)

let test_min_over_tracks () =
  (* two tracks with different derefs: the minimum wins (Def 4.8) *)
  let g = Graph.create () in
  let src = mkloc g "src" and mid = mkloc g "mid" and dst = mkloc g "dst" in
  Graph.add_edge g ~src ~dst ~weight:1;
  Graph.add_edge g ~src ~dst:mid ~weight:(-1);
  Graph.add_edge g ~src:mid ~dst ~weight:0;
  Alcotest.(check (option int)) "min of 1 and -1" (Some (-1))
    (Graph.min_derefs g src dst)

let test_points_to_materialization () =
  let g = Graph.create () in
  let o1 = mkloc g "o1" and o2 = mkloc g "o2" and p = mkloc g "p" in
  Graph.add_edge g ~src:o1 ~dst:p ~weight:(-1);
  Graph.add_edge g ~src:o2 ~dst:p ~weight:(-1);
  let pts = List.map Loc.name (Graph.points_to g p) in
  Alcotest.(check (list string)) "points-to set"
    [ "content(o1)"; "content(o2)" ]
    (List.sort compare pts)

(* ---- paper figures -------------------------------------------------- *)

let test_fig3_stack_vs_heap () =
  let compiled = Helpers.compile fig3 in
  let program = compiled.Gofree_core.Pipeline.c_program in
  let analysis = compiled.Gofree_core.Pipeline.c_analysis in
  let sites =
    List.filter
      (fun (s : Minigo.Tast.alloc_site) ->
        s.Minigo.Tast.site_kind = Minigo.Tast.Site_slice)
      program.Minigo.Tast.p_sites
  in
  match sites with
  | [ make1; make2 ] ->
    Alcotest.(check bool) "make1 (constant size) on stack" false
      (Analysis.site_is_heap analysis ~func:"analyses" make1);
    Alcotest.(check bool) "make2 (dynamic size) on heap" true
      (Analysis.site_is_heap analysis ~func:"analyses" make2)
  | _ -> Alcotest.fail "expected two slice sites"

let test_fig3_tcfree () =
  let compiled = Helpers.compile fig3 in
  Alcotest.(check (list (triple string string string)))
    "only s2 freed, as a slice"
    [ ("analyses", "s2", "slice") ]
    (Helpers.inserted_vars compiled)

let test_fig1_properties () =
  let compiled = Helpers.compile fig1 in
  let prop var = Helpers.var_props compiled ~func:"dd" ~var in
  (* pc exposes c's address via the indirect store *ppd = pc *)
  Alcotest.(check bool) "Exposes(pc)" true (prop "pc").Loc.exposes;
  (* but pc's own points-to set stays complete *)
  Alcotest.(check (list string)) "PointsTo(pc)" [ "c" ]
    (Helpers.points_to compiled ~func:"dd" ~var:"pc");
  (* pd2's points-to set is incomplete: the escape graph cannot see that
     it may also point at c *)
  Alcotest.(check bool) "Incomplete(pd2)" true
    (Loc.incomplete (prop "pd2"));
  Alcotest.(check (list string)) "PointsTo(pd2) misses c" [ "d" ]
    (Helpers.points_to compiled ~func:"dd" ~var:"pd2");
  (* c and d are returned (via pointers): heap-allocated *)
  Alcotest.(check bool) "HeapAlloc(c)" true (prop "c").Loc.heap_alloc;
  Alcotest.(check bool) "HeapAlloc(d)" true (prop "d").Loc.heap_alloc;
  (* nothing in dd is freed: pd2 incomplete, pd outlived by the return *)
  Alcotest.(check (list (triple string string string)))
    "no frees in dd" []
    (List.filter (fun (f, _, _) -> f = "dd")
       (Helpers.inserted_vars compiled))

let test_heap_forcing_through_indirection () =
  (* storing a pointer through an untracked path forces the pointee to
     the heap (Table 2's q → heapLoc edge) *)
  let compiled =
    Helpers.compile
      {|
func f(pp **int) {
  x := 42
  *pp = &x
}
func main() {
  y := 0
  p := &y
  f(&p)
  println(*p)
}
|}
  in
  let x = Helpers.var_props compiled ~func:"f" ~var:"x" in
  Alcotest.(check bool) "x forced to heap" true x.Loc.heap_alloc

let test_loop_depth_forcing () =
  (* a pointer declared outside a loop keeps each iteration's allocation
     alive: the allocation must be heap (Def 4.10's LoopDepth rule) *)
  let compiled =
    Helpers.compile
      {|
func f(n int) int {
  var keep []int
  for i := 0; i < n; i++ {
    s := make([]int, 3)
    s[0] = i
    keep = s
  }
  return keep[0]
}
func main() { println(f(3)) }
|}
  in
  let program = compiled.Gofree_core.Pipeline.c_program in
  let site =
    List.find
      (fun (s : Minigo.Tast.alloc_site) ->
        s.Minigo.Tast.site_kind = Minigo.Tast.Site_slice)
      program.Minigo.Tast.p_sites
  in
  Alcotest.(check bool) "loop allocation escapes iteration" true
    (Analysis.site_is_heap compiled.Gofree_core.Pipeline.c_analysis
       ~func:"f" site);
  (* and s must not be freed inside the loop: keep outlives it *)
  Alcotest.(check (list (triple string string string))) "no frees" []
    (Helpers.inserted_vars compiled)

let test_globals_escape () =
  let compiled =
    Helpers.compile
      {|
var g []int
func f() {
  s := make([]int, 4)
  g = s
}
func main() { f()
  println(len(g)) }
|}
  in
  let s = Helpers.var_props compiled ~func:"f" ~var:"s" in
  Alcotest.(check bool) "global-stored slice not freed" false
    (Gofree_escape.Propagate.to_free s);
  Alcotest.(check (list (triple string string string))) "no frees" []
    (Helpers.inserted_vars compiled)

let test_walk_steps_scale () =
  (* sanity on the O(N^2) claim: doubling program size should not blow
     up walk steps by more than ~8x (allowing constant factors) *)
  let gen n =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "func main() {\n  a0 := make([]int, 1)\n";
    for i = 1 to n do
      Buffer.add_string buf (Printf.sprintf "  a%d := a%d\n" i (i - 1))
    done;
    Buffer.add_string buf (Printf.sprintf "  println(len(a%d))\n}\n" n);
    Buffer.contents buf
  in
  let steps n =
    let compiled = Helpers.compile (gen n) in
    Analysis.total_walk_steps compiled.Gofree_core.Pipeline.c_analysis
  in
  let s1 = steps 50 and s2 = steps 100 in
  Alcotest.(check bool)
    (Printf.sprintf "quadratic-ish growth (%d -> %d)" s1 s2)
    true
    (s2 < 10 * s1)

let suite =
  [
    Alcotest.test_case "MinDerefs over tracks" `Quick test_min_derefs;
    Alcotest.test_case "TrackDerefs floor" `Quick test_track_derefs_floor;
    Alcotest.test_case "minimum over multiple tracks" `Quick
      test_min_over_tracks;
    Alcotest.test_case "PointsTo materialization" `Quick
      test_points_to_materialization;
    Alcotest.test_case "fig 3: stack vs heap make" `Quick
      test_fig3_stack_vs_heap;
    Alcotest.test_case "fig 3: tcfree for make2 only" `Quick
      test_fig3_tcfree;
    Alcotest.test_case "fig 1: exposes/incomplete/heap" `Quick
      test_fig1_properties;
    Alcotest.test_case "indirect store forces heap" `Quick
      test_heap_forcing_through_indirection;
    Alcotest.test_case "loop depth forces heap" `Quick
      test_loop_depth_forcing;
    Alcotest.test_case "globals escape" `Quick test_globals_escape;
    Alcotest.test_case "walk steps stay polynomial" `Quick
      test_walk_steps_scale;
  ]
