test/test_propagate.ml: Alcotest Gofree_escape Graph Loc Propagate
