test/test_typecheck.ml: Alcotest Gofree_core Helpers List Minigo Option String Tast Types
