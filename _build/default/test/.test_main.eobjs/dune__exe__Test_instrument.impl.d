test/test_instrument.ml: Alcotest Gofree_core Helpers List Minigo Option Tast
