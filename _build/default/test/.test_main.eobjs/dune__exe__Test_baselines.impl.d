test/test_baselines.ml: Alcotest Gofree_baselines Helpers Minigo Option
