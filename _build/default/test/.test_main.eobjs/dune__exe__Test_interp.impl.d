test/test_interp.ml: Alcotest Helpers
