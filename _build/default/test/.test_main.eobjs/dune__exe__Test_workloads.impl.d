test/test_workloads.ml: Alcotest Gofree_core Gofree_interp Gofree_runtime Gofree_workloads List Option Printf String
