test/test_ipa.ml: Alcotest Analysis Array Gofree_core Gofree_escape Hashtbl Helpers List Loc Summary
