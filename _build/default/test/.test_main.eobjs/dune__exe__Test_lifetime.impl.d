test/test_lifetime.ml: Alcotest Analysis Build Gofree_core Gofree_escape Hashtbl Helpers List Loc Minigo Option String
