test/test_tcfree.ml: Alcotest Array Gc_collector Gofree_runtime Heap List Metrics Mspan Pageheap Sizeclass Tcfree
