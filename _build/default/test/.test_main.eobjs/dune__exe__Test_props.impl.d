test/test_props.ml: Gen_program Gofree_core Gofree_interp Gofree_runtime Hashtbl Helpers List Minigo Printf QCheck QCheck_alcotest String
