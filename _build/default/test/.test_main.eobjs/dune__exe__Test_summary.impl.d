test/test_summary.ml: Alcotest Analysis Array Gofree_core Gofree_escape Hashtbl Helpers List Minigo Option Summary Tast
