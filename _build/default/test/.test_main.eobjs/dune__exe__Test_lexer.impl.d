test/test_lexer.ml: Alcotest Fmt Lexer List Minigo Token
