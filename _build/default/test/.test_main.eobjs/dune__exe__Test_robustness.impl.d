test/test_robustness.ml: Alcotest Gofree_core Gofree_interp Gofree_runtime Gofree_workloads Helpers List Printf
