test/test_escape.ml: Alcotest Analysis Buffer Gofree_core Gofree_escape Graph Helpers List Loc Minigo Printf
