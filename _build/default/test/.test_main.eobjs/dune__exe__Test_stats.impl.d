test/test_stats.ml: Alcotest Array Float Gofree_stats List Stats String Table Ttest
