test/helpers.ml: Alcotest Gofree_core Gofree_interp Gofree_runtime List Minigo
