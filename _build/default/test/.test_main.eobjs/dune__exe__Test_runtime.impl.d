test/test_runtime.ml: Alcotest Array Gofree_runtime Heap List Mcache Mcentral Metrics Mspan Option Pageheap Printf Sizeclass
