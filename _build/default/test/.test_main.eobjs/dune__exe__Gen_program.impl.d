test/gen_program.ml: Gofree_workloads
