test/test_slicing.ml: Alcotest Gofree_escape Helpers List
