test/test_parser.ml: Alcotest Ast Lexer Minigo Parser Token
