test/test_gc.ml: Alcotest Array Gc_collector Gofree_runtime Heap List Mcache Metrics Mspan Pageheap Tcfree
