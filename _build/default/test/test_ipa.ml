(** Inter-procedural analysis tests (paper §4.4, fig. 7): extended
    parameter tags, content tags, multiple return values, and the
    no-IPA ablation. *)

open Gofree_escape

(* Reconstruction of fig. 7: partialNew returns one fresh allocation and
   one value obtained through an indirect-store-compromised chain. *)
let fig7 =
  {|
func partialNew(ps *[]int) ([]int, []int) {
  pps := &ps
  *pps = ps
  made := make([]int, 3)
  return made, **pps
}

func caller() int {
  s := make([]int, 3)
  fresh, old := partialNew(&s)
  n := len(fresh) + len(old)
  return n
}

func main() { println(caller()) }
|}

let test_fig7_content_tags () =
  let compiled = Helpers.compile fig7 in
  let analysis = compiled.Gofree_core.Pipeline.c_analysis in
  let summary =
    Hashtbl.find analysis.Analysis.summaries "partialNew"
  in
  Alcotest.(check int) "two content tags" 2
    (Array.length summary.Summary.s_contents);
  let fresh_ct = summary.Summary.s_contents.(0) in
  let old_ct = summary.Summary.s_contents.(1) in
  Alcotest.(check bool) "fresh content is a heap allocation" true
    fresh_ct.Summary.ct_heap_alloc;
  Alcotest.(check bool) "fresh content is complete" false
    fresh_ct.Summary.ct_incomplete;
  Alcotest.(check bool) "old content is incomplete (indirect store)" true
    old_ct.Summary.ct_incomplete

let test_fig7_frees () =
  let compiled = Helpers.compile fig7 in
  let freed =
    List.filter (fun (f, _, _) -> f = "caller")
      (Helpers.inserted_vars compiled)
  in
  (* fresh (the callee's allocation) is freeable in the caller; old is
     refused because of the callee's indirect store *)
  Alcotest.(check bool) "fresh freed in caller" true
    (List.mem ("caller", "fresh", "slice") freed);
  Alcotest.(check bool) "old not freed" false
    (List.mem ("caller", "old", "slice") freed)

let test_factory_free () =
  (* the classic factory-method pattern: the caller frees the callee's
     allocation, across the function boundary *)
  let compiled =
    Helpers.compile
      {|
func build(n int) []int {
  s := make([]int, n)
  for i := 0; i < n; i++ {
    s[i] = i
  }
  return s
}
func main() {
  total := 0
  for k := 0; k < 10; k++ {
    v := build(100 + k)
    total += v[0] + v[99]
  }
  println(total)
}
|}
  in
  Alcotest.(check bool) "v freed in main" true
    (List.mem ("main", "v", "slice") (Helpers.inserted_vars compiled))

let test_param_passthrough_not_freed () =
  (* identity function: the "returned" object belongs to the caller's
     argument; the callee's tag must not present it as a fresh heap
     allocation that could be double-freed unsafely while aliased *)
  let compiled =
    Helpers.compile
      {|
func id(s []int) []int {
  return s
}
func main() {
  base := make([]int, 4)
  alias := id(base)
  alias[0] = 1
  println(base[0], len(alias))
}
|}
  in
  (* alias aliases base; both complete; freeing either at scope end is
     the tolerated adjacent-double-free of §5 at worst, but `base` flows
     into id whose param tag returns it: check analysis doesn't crash and
     runs agree under poison *)
  ignore compiled;
  Helpers.check_all_settings_agree ~name:"param passthrough"
    {|
func id(s []int) []int {
  return s
}
func main() {
  base := make([]int, 4)
  alias := id(base)
  alias[0] = 1
  println(base[0], len(alias))
}
|}

let test_callee_stores_to_global () =
  (* the callee leaks its allocation through a global: the content tag
     must be incomplete, so the caller must not free it *)
  let compiled =
    Helpers.compile
      {|
var stash []int
func sneaky(n int) []int {
  s := make([]int, n)
  stash = s
  return s
}
func main() {
  v := sneaky(5)
  v[0] = 1
  println(stash[0])
}
|}
  in
  Alcotest.(check (list (triple string string string)))
    "nothing freed in main" []
    (List.filter (fun (f, _, _) -> f = "main")
       (Helpers.inserted_vars compiled));
  Helpers.check_all_settings_agree ~name:"global leak"
    {|
var stash []int
func sneaky(n int) []int {
  s := make([]int, n)
  stash = s
  return s
}
func main() {
  v := sneaky(5)
  v[0] = 1
  println(stash[0])
}
|}

let test_recursion_default_tag () =
  (* recursive functions get the conservative default tag: their results
     are never freed, and analysis terminates *)
  let compiled =
    Helpers.compile
      {|
func build(n int) []int {
  if n <= 0 {
    return make([]int, 1)
  }
  inner := build(n - 1)
  out := append(inner, n)
  return out
}
func main() {
  println(len(build(5)))
}
|}
  in
  Alcotest.(check (list (triple string string string)))
    "recursion: no frees" []
    (Helpers.inserted_vars compiled)

let test_mutual_recursion () =
  let compiled =
    Helpers.compile
      {|
func even(n int) bool {
  if n == 0 {
    return true
  }
  return odd(n - 1)
}
func odd(n int) bool {
  if n == 0 {
    return false
  }
  return even(n - 1)
}
func main() { println(even(10), odd(10)) }
|}
  in
  ignore compiled;
  Alcotest.(check string) "mutual recursion runs" "true false\n"
    (Helpers.output
       {|
func even(n int) bool {
  if n == 0 {
    return true
  }
  return odd(n - 1)
}
func odd(n int) bool {
  if n == 0 {
    return false
  }
  return even(n - 1)
}
func main() { println(even(10), odd(10)) }
|})

let test_no_ipa_ablation () =
  (* without content tags the factory pattern yields no frees *)
  let src =
    {|
func build(n int) []int {
  return make([]int, n)
}
func main() {
  v := build(64)
  v[0] = 1
  println(v[0])
}
|}
  in
  let with_ipa = Helpers.compile src in
  let without = Helpers.compile ~config:Gofree_core.Config.no_ipa src in
  Alcotest.(check bool) "IPA finds the cross-function free" true
    (List.mem ("main", "v", "slice") (Helpers.inserted_vars with_ipa));
  Alcotest.(check (list (triple string string string)))
    "no-IPA ablation finds nothing" []
    (Helpers.inserted_vars without)

let test_arg_to_heap_forces_heap () =
  (* a callee that stores its argument into a global forces the caller's
     object to the heap through the param tag *)
  let compiled =
    Helpers.compile
      {|
var sink *int
func keep(p *int) {
  sink = p
}
func main() {
  x := 1
  keep(&x)
  println(*sink)
}
|}
  in
  let x = Helpers.var_props compiled ~func:"main" ~var:"x" in
  Alcotest.(check bool) "x heap via param tag" true x.Loc.heap_alloc

let test_arg_not_leaked_stays_stack () =
  let compiled =
    Helpers.compile
      {|
func reads(p *int) int {
  return *p
}
func main() {
  x := 1
  println(reads(&x))
}
|}
  in
  let x = Helpers.var_props compiled ~func:"main" ~var:"x" in
  Alcotest.(check bool) "x stays on the stack" false x.Loc.heap_alloc

let suite =
  [
    Alcotest.test_case "fig 7: content tags" `Quick test_fig7_content_tags;
    Alcotest.test_case "fig 7: fresh freed, old kept" `Quick
      test_fig7_frees;
    Alcotest.test_case "factory free across call" `Quick test_factory_free;
    Alcotest.test_case "param passthrough" `Quick
      test_param_passthrough_not_freed;
    Alcotest.test_case "callee global leak blocks free" `Quick
      test_callee_stores_to_global;
    Alcotest.test_case "recursion uses default tag" `Quick
      test_recursion_default_tag;
    Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
    Alcotest.test_case "no-IPA ablation" `Quick test_no_ipa_ablation;
    Alcotest.test_case "leaking callee forces arg to heap" `Quick
      test_arg_to_heap_forces_heap;
    Alcotest.test_case "non-leaking callee keeps arg on stack" `Quick
      test_arg_not_leaked_stays_stack;
  ]
