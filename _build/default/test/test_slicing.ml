(** Slice expressions [s\[lo:hi\]] and the [copy] builtin: semantics,
    aliasing, and their interaction with the escape analysis and tcfree
    (a sub-slice aliases its parent's backing array, so freeing decisions
    must treat them as one object). *)

let expect name src want =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check string) name want (Helpers.output src);
      Helpers.check_all_settings_agree ~name src)

let semantics =
  [
    expect "basic slicing"
      {|
func main() {
  s := []int{0, 10, 20, 30, 40}
  t := s[1:4]
  println(len(t), t[0], t[2])
}
|}
      "3 10 30\n";
    expect "open bounds"
      {|
func main() {
  s := []int{1, 2, 3, 4}
  println(len(s[:2]), len(s[2:]), len(s[:]), s[1:][0])
}
|}
      "2 2 4 2\n";
    expect "sub-slices alias the parent"
      {|
func main() {
  s := make([]int, 5)
  t := s[1:3]
  t[0] = 42
  s[2] = 7
  println(s[1], t[1])
}
|}
      "42 7\n";
    expect "slicing a string"
      {|
func main() {
  s := "hello world"
  println(s[6:], s[:5], s[3:8])
}
|}
      "world hello lo wo\n";
    expect "cap after slicing"
      {|
func main() {
  s := make([]int, 6, 10)
  t := s[2:4]
  println(len(t), cap(t))
}
|}
      "2 8\n";
    expect "slice beyond len within cap"
      {|
func main() {
  s := make([]int, 2, 6)
  t := s[:5]
  t[4] = 9
  println(len(t), t[4])
}
|}
      "5 9\n";
    expect "append into shared capacity aliases"
      {|
func main() {
  s := make([]int, 1, 4)
  a := append(s, 10)
  b := append(s, 20)
  // both appends wrote slot 1 of the same backing array
  println(a[1], b[1])
}
|}
      "20 20\n";
    expect "append to a sub-slice"
      {|
func main() {
  s := []int{1, 2, 3, 4, 5}
  t := append(s[:2], 99)
  println(t[2], s[2])
}
|}
      "99 99\n";
    expect "out of range slice panics"
      {|
func main() {
  s := make([]int, 3)
  i := 5
  t := s[1:i]
  println(len(t))
}
|}
      "panic: slice bounds out of range\n";
    expect "copy semantics"
      {|
func main() {
  src := []int{1, 2, 3}
  dst := make([]int, 5)
  n := copy(dst, src)
  println(n, dst[0], dst[2], dst[3])
}
|}
      "3 1 3 0\n";
    expect "copy truncates to dst"
      {|
func main() {
  src := []int{1, 2, 3, 4}
  dst := make([]int, 2)
  println(copy(dst, src), dst[1])
}
|}
      "2 2\n";
    expect "copy between views of one array"
      {|
func main() {
  s := []int{1, 2, 3, 4, 5, 6}
  copy(s[2:], s[:3])
  println(s[2], s[3], s[4])
}
|}
      "1 2 3\n";
    expect "nil slice slicing"
      {|
func main() {
  var s []int
  t := s[:]
  println(len(t), t == nil)
}
|}
      "0 true\n";
  ]

(* ---- analysis interactions ----------------------------------------- *)

let test_escaping_subslice_blocks_free () =
  (* the sub-slice escapes into a global: its backing array is the
     parent's, so the parent must be neither freed nor stack-allocated *)
  let src =
    {|
var keep []int
func main() {
  s := make([]int, 10)
  s[0] = 1
  keep = s[2:5]
  println(keep[0])
}
|}
  in
  let compiled = Helpers.compile src in
  Alcotest.(check (list (triple string string string)))
    "no frees despite s's scope ending" []
    (Helpers.inserted_vars compiled);
  Helpers.check_all_settings_agree ~name:"escaping subslice" src

let test_local_subslice_still_freed () =
  (* when neither view escapes, the buffer is freed as usual *)
  let src =
    {|
func f(n int) int {
  s := make([]int, n)
  t := s[1:]
  t[0] = 3
  x := s[1] + len(t)
  return x
}
func main() { println(f(8)) }
|}
  in
  let compiled = Helpers.compile src in
  Alcotest.(check bool) "s freed" true
    (List.exists (fun (_, v, _) -> v = "s") (Helpers.inserted_vars compiled));
  Helpers.check_all_settings_agree ~name:"local subslice" src

let test_copy_of_pointers_conservative () =
  (* copying pointer elements into an escaping slice is an untracked
     store: the pointees must be heap and never freed through the source *)
  let src =
    {|
var out []*int
func main() {
  x := 7
  tmp := make([]*int, 1)
  tmp[0] = &x
  out = make([]*int, 1)
  copy(out, tmp)
  println(*out[0])
}
|}
  in
  let compiled = Helpers.compile src in
  let x = Helpers.var_props compiled ~func:"main" ~var:"x" in
  Alcotest.(check bool) "x forced to heap through copy" true
    x.Gofree_escape.Loc.heap_alloc;
  Helpers.check_all_settings_agree ~name:"copy pointers" src

let suite =
  semantics
  @ [
      Alcotest.test_case "escaping sub-slice blocks freeing" `Quick
        test_escaping_subslice_blocks_free;
      Alcotest.test_case "local sub-slice still freed" `Quick
        test_local_subslice_still_freed;
      Alcotest.test_case "copy of pointers is conservative" `Quick
        test_copy_of_pointers_conservative;
    ]
