(** Parser tests: declaration forms, statement forms, expression
    precedence, error reporting. *)

open Minigo

let parse src = Parser.parse src

let parse_ok name src =
  Alcotest.test_case name `Quick (fun () ->
      match parse src with
      | _ -> ()
      | exception Parser.Error (msg, pos) ->
        Alcotest.failf "parse error at %s: %s" (Token.string_of_pos pos) msg
      | exception Lexer.Error (msg, pos) ->
        Alcotest.failf "lex error at %s: %s" (Token.string_of_pos pos) msg)

let parse_fails name src =
  Alcotest.test_case name `Quick (fun () ->
      match parse src with
      | exception (Parser.Error _ | Lexer.Error _) -> ()
      | _ -> Alcotest.failf "expected a parse error")

let func_body src =
  match parse ("func f() {\n" ^ src ^ "\n}") with
  | [ Ast.Dfunc fd ] -> fd.Ast.fd_body
  | _ -> Alcotest.fail "expected one function"

let test_precedence () =
  (* a + b * c parses as a + (b * c) *)
  (match func_body "x := a + b * c" with
  | [ { Ast.sdesc =
          Ast.Sdecl
            ( [ "x" ], None,
              [ { Ast.desc =
                    Ast.Ebinop
                      ( Ast.Badd,
                        { Ast.desc = Ast.Eident "a"; _ },
                        { Ast.desc = Ast.Ebinop (Ast.Bmul, _, _); _ } );
                  _ } ] );
        _ } ] ->
    ()
  | _ -> Alcotest.fail "wrong precedence for + *");
  (* comparison binds looser than arithmetic *)
  (match func_body "x := a + 1 < b" with
  | [ { Ast.sdesc =
          Ast.Sdecl ([ "x" ], None,
            [ { Ast.desc = Ast.Ebinop (Ast.Blt, _, _); _ } ]);
        _ } ] ->
    ()
  | _ -> Alcotest.fail "wrong precedence for + <");
  (* && binds tighter than || *)
  match func_body "x := a || b && c" with
  | [ { Ast.sdesc =
          Ast.Sdecl ([ "x" ], None,
            [ { Ast.desc =
                  Ast.Ebinop (Ast.Bor, _,
                    { Ast.desc = Ast.Ebinop (Ast.Band, _, _); _ });
                _ } ]);
        _ } ] ->
    ()
  | _ -> Alcotest.fail "wrong precedence for || &&"

let test_unary () =
  (match func_body "x := -a * b" with
  | [ { Ast.sdesc =
          Ast.Sdecl ([ "x" ], None,
            [ { Ast.desc = Ast.Ebinop (Ast.Bmul,
                  { Ast.desc = Ast.Eunop (Ast.Uneg, _); _ }, _);
                _ } ]);
        _ } ] ->
    ()
  | _ -> Alcotest.fail "unary minus should bind tighter than *");
  match func_body "p := &x" with
  | [ { Ast.sdesc =
          Ast.Sdecl ([ "p" ], None, [ { Ast.desc = Ast.Eaddr _; _ } ]);
        _ } ] ->
    ()
  | _ -> Alcotest.fail "address-of"

let test_postfix_chains () =
  match func_body "x := a.b[i].c" with
  | [ { Ast.sdesc =
          Ast.Sdecl ([ "x" ], None,
            [ { Ast.desc =
                  Ast.Efield
                    ({ Ast.desc = Ast.Eindex
                         ({ Ast.desc = Ast.Efield _; _ }, _); _ }, "c");
                _ } ]);
        _ } ] ->
    ()
  | _ -> Alcotest.fail "postfix chain a.b[i].c"

let test_multi_return_decl () =
  match func_body "a, b := f()" with
  | [ { Ast.sdesc = Ast.Sdecl ([ "a"; "b" ], None, [ _ ]); _ } ] -> ()
  | _ -> Alcotest.fail "a, b := f()"

let test_for_forms () =
  (match func_body "for i := 0; i < n; i++ {\nx := i\nx++\n}" with
  | [ { Ast.sdesc = Ast.Sfor (Some _, Some _, Some _, _); _ } ] -> ()
  | _ -> Alcotest.fail "three-clause for");
  (match func_body "for x < 10 {\nx++\n}" with
  | [ { Ast.sdesc = Ast.Sfor (None, Some _, None, _); _ } ] -> ()
  | _ -> Alcotest.fail "condition-only for");
  (match func_body "for i := range xs {\ny := i\ny++\n}" with
  | [ { Ast.sdesc = Ast.Sforrange ("i", _, _); _ } ] -> ()
  | _ -> Alcotest.fail "range for");
  match func_body "for {\nbreak\n}" with
  | [ { Ast.sdesc = Ast.Sfor (None, None, None, _); _ } ] -> ()
  | _ -> Alcotest.fail "infinite for"

let test_composite_literals () =
  (match func_body "p := Point{x: 1, y: 2}" with
  | [ { Ast.sdesc =
          Ast.Sdecl ([ "p" ], None,
            [ { Ast.desc =
                  Ast.Ecomposite (Ast.Tyname "Point",
                    [ (Some "x", _); (Some "y", _) ]);
                _ } ]);
        _ } ] ->
    ()
  | _ -> Alcotest.fail "named struct literal");
  match func_body "s := []int{1, 2, 3}" with
  | [ { Ast.sdesc =
          Ast.Sdecl ([ "s" ], None,
            [ { Ast.desc =
                  Ast.Ecomposite (Ast.Tyslice Ast.Tyint,
                    [ (None, _); (None, _); (None, _) ]);
                _ } ]);
        _ } ] ->
    ()
  | _ -> Alcotest.fail "slice literal"

let test_types () =
  match parse "func f(a *int, b []string, c map[string][]*Pt) {\n}" with
  | [ Ast.Dfunc fd ] -> begin
    match fd.Ast.fd_params with
    | [ (_, Ast.Typtr Ast.Tyint);
        (_, Ast.Tyslice Ast.Tystring);
        (_, Ast.Tymap (Ast.Tystring, Ast.Tyslice (Ast.Typtr (Ast.Tyname "Pt"))))
      ] ->
      ()
    | _ -> Alcotest.fail "parameter types"
  end
  | _ -> Alcotest.fail "expected function"

let suite =
  [
    Alcotest.test_case "binary precedence" `Quick test_precedence;
    Alcotest.test_case "unary operators" `Quick test_unary;
    Alcotest.test_case "postfix chains" `Quick test_postfix_chains;
    Alcotest.test_case "multi-value declaration" `Quick
      test_multi_return_decl;
    Alcotest.test_case "for statement forms" `Quick test_for_forms;
    Alcotest.test_case "composite literals" `Quick test_composite_literals;
    Alcotest.test_case "type syntax" `Quick test_types;
    parse_ok "struct declaration"
      "type T struct {\n  a int\n  b, c string\n}";
    parse_ok "multiple results" "func f() (int, string) {\nreturn 1, \"x\"\n}";
    parse_ok "named results" "func f() (r0 []int, r1 []int) {\nreturn nil, nil\n}";
    parse_ok "globals" "var g = 10\nvar h map[string]int";
    parse_ok "defer and go" "func f() {\n}\nfunc m() {\ngo f()\ndefer f()\n}";
    parse_ok "panic" "func m() {\npanic(\"boom\")\n}";
    parse_ok "else if chain"
      "func m(x int) {\nif x > 0 {\n} else if x < 0 {\n} else {\n}\n}";
    parse_ok "delete and println"
      "func m(m1 map[int]int) {\ndelete(m1, 3)\nprintln(len(m1))\n}";
    parse_fails "missing paren" "func f( {\n}";
    parse_fails "bad statement" "func f() {\n:= 3\n}";
    parse_fails "top-level expression" "1 + 2";
    parse_fails "unclosed block" "func f() {";
    parse_fails "define non-ident" "func f() {\nf() := 3\n}";
  ]
