(** Interpreter semantics tests: one small program per language feature,
    checked against its expected output, plus panic/defer/goroutine
    behaviour and the Go-vs-GoFree output-equality guarantee. *)

let expect name src want =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check string) name want (Helpers.output src);
      (* every semantics test doubles as a robustness test *)
      Helpers.check_all_settings_agree ~name src)

let suite =
  [
    expect "arithmetic"
      {|
func main() {
  println(2+3*4, 10/3, 10%3, -7/2)
}
|}
      "14 3 1 -3\n";
    expect "float arithmetic"
      {|
func main() {
  x := 1.5
  y := x * 2.0 + 0.25
  println(y, y > 3.0)
}
|}
      "3.25 true\n";
    expect "strings"
      {|
func main() {
  s := "foo" + "bar"
  println(s, len(s), s < "fox", substr(s, 1, 4), itoa(42))
}
|}
      "foobar 6 true oob 42\n";
    expect "string indexing"
      {|
func main() {
  s := "AZ"
  println(s[0], s[1])
}
|}
      "65 90\n";
    expect "booleans and shortcut evaluation"
      {|
func boom() bool {
  panic("must not run")
}
func main() {
  println(true || boom(), false && boom())
}
|}
      "true false\n";
    expect "if else chain"
      {|
func grade(x int) string {
  if x > 90 {
    return "A"
  } else if x > 80 {
    return "B"
  } else {
    return "C"
  }
}
func main() {
  println(grade(95), grade(85), grade(10))
}
|}
      "A B C\n";
    expect "for loops with break and continue"
      {|
func main() {
  sum := 0
  for i := 0; i < 100; i++ {
    if i % 2 == 0 {
      continue
    }
    if i > 10 {
      break
    }
    sum += i
  }
  println(sum)
}
|}
      "25\n";
    expect "range over int and slice"
      {|
func main() {
  s := make([]int, 4)
  for i := range s {
    s[i] = i * i
  }
  total := 0
  for i := range 4 {
    total += s[i]
  }
  println(total)
}
|}
      "14\n";
    expect "nested functions and recursion"
      {|
func fib(n int) int {
  if n < 2 {
    return n
  }
  return fib(n-1) + fib(n-2)
}
func main() { println(fib(15)) }
|}
      "610\n";
    expect "multiple return values"
      {|
func divmod(a int, b int) (int, int) {
  return a / b, a % b
}
func main() {
  q, r := divmod(17, 5)
  println(q, r)
}
|}
      "3 2\n";
    expect "swap"
      {|
func main() {
  a := 1
  b := 2
  a, b = b, a
  println(a, b)
}
|}
      "2 1\n";
    expect "pointers"
      {|
func bump(p *int) {
  *p = *p + 1
}
func main() {
  x := 41
  bump(&x)
  p := &x
  pp := &p
  **pp = **pp + 1
  println(x)
}
|}
      "43\n";
    expect "struct values copy on assignment"
      {|
type P struct { x int
 y int }
func main() {
  a := P{x: 1, y: 2}
  b := a
  b.x = 99
  println(a.x, b.x)
}
|}
      "1 99\n";
    expect "struct pointers share"
      {|
type P struct { x int }
func main() {
  a := &P{x: 1}
  b := a
  b.x = 99
  println(a.x)
}
|}
      "99\n";
    expect "nested struct fields"
      {|
type Inner struct { v int }
type Outer struct { inner Inner
 pi *Inner }
func main() {
  o := Outer{inner: Inner{v: 1}, pi: &Inner{v: 2}}
  o.inner.v = 10
  o.pi.v = 20
  println(o.inner.v, o.pi.v)
}
|}
      "10 20\n";
    expect "address of field and element"
      {|
type P struct { x int }
func main() {
  s := make([]int, 3)
  p := &s[1]
  *p = 7
  t := P{x: 1}
  q := &t.x
  *q = 9
  println(s[1], t.x)
}
|}
      "7 9\n";
    expect "slices: make, len, cap, append growth"
      {|
func main() {
  s := make([]int, 2, 4)
  println(len(s), cap(s))
  s = append(s, 10)
  s = append(s, 11)
  println(len(s), cap(s))
  s = append(s, 12)
  println(len(s), cap(s) >= 5, s[4])
}
|}
      "2 4\n4 4\n5 true 12\n";
    expect "append aliasing semantics"
      {|
func main() {
  s := make([]int, 1, 4)
  t := append(s, 5)
  t[0] = 9
  println(s[0], t[1])
}
|}
      "9 5\n";
    expect "slice literals"
      {|
func main() {
  s := []int{3, 1, 4, 1, 5}
  sum := 0
  for i := range s {
    sum += s[i]
  }
  println(sum)
}
|}
      "14\n";
    expect "nil slices"
      {|
func main() {
  var s []int
  println(len(s), s == nil)
  s = append(s, 1)
  println(len(s), s == nil)
}
|}
      "0 true\n1 false\n";
    expect "maps: store, load, delete, zero value"
      {|
func main() {
  m := make(map[string]int)
  m["a"] = 1
  m["b"] = 2
  m["a"] = 3
  println(len(m), m["a"], m["missing"])
  delete(m, "a")
  println(len(m), m["a"])
}
|}
      "2 3 0\n1 0\n";
    expect "map growth preserves entries"
      {|
func main() {
  m := make(map[int]int)
  for i := 0; i < 1000; i++ {
    m[i] = i * 3
  }
  ok := true
  for i := 0; i < 1000; i++ {
    if m[i] != i*3 {
      ok = false
    }
  }
  println(len(m), ok)
}
|}
      "1000 true\n";
    expect "nil map reads"
      {|
func main() {
  var m map[string]int
  println(len(m), m["x"])
}
|}
      "0 0\n";
    expect "defer runs LIFO at exit"
      {|
func say(s string) {
  println(s)
}
func f() {
  defer say("first-deferred")
  defer say("second-deferred")
  println("body")
}
func main() { f()
  println("after") }
|}
      "body\nsecond-deferred\nfirst-deferred\nafter\n";
    expect "defer captures argument values at defer time"
      {|
func show(x int) {
  println(x)
}
func main() {
  x := 1
  defer show(x)
  x = 99
  println(x)
}
|}
      "99\n1\n";
    expect "panic unwinds and runs defers"
      {|
func cleanup() {
  println("cleanup")
}
func f() {
  defer cleanup()
  panic("boom")
}
func main() {
  f()
  println("unreachable")
}
|}
      "cleanup\npanic: boom\n";
    expect "runtime panics"
      {|
func main() {
  s := make([]int, 2)
  i := 5
  println(s[i])
}
|}
      "panic: index out of range\n";
    expect "division by zero panics"
      {|
func main() {
  x := 0
  println(10 / x)
}
|}
      "panic: integer divide by zero\n";
    expect "nil dereference panics"
      {|
func main() {
  var p *int
  println(*p)
}
|}
      "panic: nil pointer dereference\n";
    expect "goroutines run to completion"
      {|
var done map[int]bool
func worker(id int) {
  done[id] = true
}
func main() {
  done = make(map[int]bool)
  for i := 0; i < 8; i++ {
    go worker(i)
  }
}
|}
      "";
    expect "goroutine interleaving is deterministic"
      {|
func count(label string, n int) {
  total := 0
  for i := 0; i < n; i++ {
    total += i
  }
  println(label, total)
}
func main() {
  go count("a", 2000)
  go count("b", 1000)
  println("main done")
}
|}
      "main done\nb 499500\na 1999000\n";
    expect "globals"
      {|
var counter = 10
var table map[string]int
func bump() {
  counter++
}
func main() {
  table = make(map[string]int)
  table["x"] = counter
  bump()
  bump()
  println(counter, table["x"])
}
|}
      "12 10\n";
    expect "rand is deterministic per seed"
      {|
func main() {
  a := rand(1000)
  b := rand(1000)
  same := a == rand(0) + a
  println(same, a >= 0, a < 1000, b >= 0, b < 1000)
}
|}
      "true true true true true\n";
    expect "compound assignment and increments"
      {|
func main() {
  x := 10
  x += 5
  x -= 3
  x *= 2
  x++
  x--
  println(x)
}
|}
      "24\n";
    expect "zero values"
      {|
type T struct { n int
 s string
 sl []int
 p *int }
func main() {
  var t T
  var i int
  var b bool
  var str string
  println(t.n, t.s == "", t.sl == nil, t.p == nil, i, b, str == "")
}
|}
      "0 true true true 0 false true\n";
    expect "bitwise and shift operators"
      {|
func main() {
  x := 12
  y := 10
  println(x&y, x|y, x^y, 1<<6, 256>>4)
  println(2*3<<1, 1|2&3, 8>>1<<2)
}
|}
      "8 14 6 64 16\n12 3 16\n";
    expect "map range iterates every key"
      {|
func main() {
  m := make(map[int]int)
  for i := 0; i < 50; i++ {
    m[i*3] = i
  }
  keys := 0
  sum := 0
  for k := range m {
    keys++
    sum += m[k]
  }
  println(keys, sum)
}
|}
      "50 1225\n";
    expect "map range with break and delete"
      {|
func main() {
  m := make(map[string]int)
  m["a"] = 1
  m["b"] = 2
  m["c"] = 3
  seen := 0
  for k := range m {
    seen++
    if m[k] == 2 {
      break
    }
  }
  for k := range m {
    delete(m, k)
  }
  println(seen >= 1, len(m))
}
|}
      "true 0\n";
    expect "range over nil map"
      {|
func main() {
  var m map[int]int
  n := 0
  for k := range m {
    n += k
  }
  println(n)
}
|}
      "0\n";
    expect "comma-ok map lookup"
      {|
func main() {
  m := make(map[string]int)
  m["hit"] = 3
  v, ok := m["hit"]
  w, ok2 := m["miss"]
  println(v, ok, w, ok2)
  var nilmap map[string]int
  x, ok3 := nilmap["any"]
  println(x, ok3)
}
|}
      "3 true 0 false\n0 false\n";
    expect "comma-ok distinguishes stored zero from missing"
      {|
func main() {
  m := make(map[int]int)
  m[1] = 0
  a, okA := m[1]
  b, okB := m[2]
  println(a, okA, b, okB)
}
|}
      "0 true 0 false\n";
    expect "recover stops unwinding"
      {|
func guard() {
  msg := recover()
  if msg != "" {
    println("recovered:", msg)
  }
}
func risky(n int) int {
  defer guard()
  if n == 0 {
    panic("zero input")
  }
  return 100 / n
}
func main() {
  println(risky(5))
  println(risky(0))
  println("still running")
}
|}
      "20\nrecovered: zero input\n0\nstill running\n";
    expect "recover outside a panic returns empty"
      {|
func main() {
  println(recover() == "", "ok")
}
|}
      "true ok\n";
    expect "panic propagates past frames without recover"
      {|
func inner() {
  panic("deep")
}
func middle() {
  inner()
  println("unreachable")
}
func shield() {
  msg := recover()
  println("caught", msg)
}
func outer() {
  defer shield()
  middle()
}
func main() {
  outer()
  println("done")
}
|}
      "caught deep\ndone\n";
    expect "recover catches runtime panics"
      {|
func guard() {
  msg := recover()
  println("guard:", msg)
}
func f(s []int, i int) int {
  defer guard()
  return s[i]
}
func main() {
  s := make([]int, 2)
  println(f(s, 9))
}
|}
      "guard: index out of range\n0\n";
    expect "shadowing"
      {|
func main() {
  x := 1
  {
    x := 2
    x++
    println(x)
  }
  println(x)
}
|}
      "3\n1\n";
  ]
