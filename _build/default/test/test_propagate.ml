(** Constraint-level tests of the propagation engine: each rule of
    Defs 4.10–4.16 exercised on hand-built graphs, plus the fixpoint
    behaviour of [walkall] (fig. 5). *)

open Gofree_escape

let mkloc g name ~decl ~loop =
  Graph.fresh_loc g (Loc.Kcontent name) ~loop_depth:loop ~decl_depth:decl

let test_heapalloc_via_pointsto () =
  (* l ∈ PointsTo(m) ∧ HeapAlloc(m) ⇒ HeapAlloc(l) *)
  let g = Graph.create () in
  let obj = mkloc g "obj" ~decl:2 ~loop:0 in
  let p = mkloc g "p" ~decl:1 ~loop:0 in
  Graph.add_edge g ~src:obj ~dst:p ~weight:(-1);
  p.Loc.heap_alloc <- true;
  ignore (Propagate.walkall g);
  Alcotest.(check bool) "obj forced heap" true obj.Loc.heap_alloc

let test_heapalloc_via_loop_depth () =
  (* a pointer at smaller loop depth than its referent forces heap *)
  let g = Graph.create () in
  let obj = mkloc g "obj" ~decl:2 ~loop:1 in
  let p = mkloc g "p" ~decl:1 ~loop:0 in
  Graph.add_edge g ~src:obj ~dst:p ~weight:(-1);
  ignore (Propagate.walkall g);
  Alcotest.(check bool) "loop-born obj forced heap" true obj.Loc.heap_alloc;
  (* same loop depth: no forcing *)
  let g2 = Graph.create () in
  let obj2 = mkloc g2 "obj" ~decl:2 ~loop:1 in
  let p2 = mkloc g2 "p" ~decl:2 ~loop:1 in
  Graph.add_edge g2 ~src:obj2 ~dst:p2 ~weight:(-1);
  ignore (Propagate.walkall g2);
  Alcotest.(check bool) "same-depth obj stays" false obj2.Loc.heap_alloc

let test_transitive_heapalloc () =
  (* heapLoc ← p ← &obj: obj's address reaches the heap through a chain *)
  let g = Graph.create () in
  let obj = mkloc g "obj" ~decl:1 ~loop:0 in
  let p = mkloc g "p" ~decl:1 ~loop:0 in
  Graph.add_edge g ~src:obj ~dst:p ~weight:(-1);
  Graph.add_edge g ~src:p ~dst:g.Graph.heap ~weight:0;
  ignore (Propagate.walkall g);
  Alcotest.(check bool) "obj heap through chain" true obj.Loc.heap_alloc;
  Alcotest.(check bool) "p itself is a value, not forced" false
    p.Loc.heap_alloc

let test_exposes_backflow () =
  (* Def 4.11 rule 4: exposure flows back along value flow at derefs ≤ 0 *)
  let g = Graph.create () in
  let pc = mkloc g "pc" ~decl:1 ~loop:0 in
  Graph.add_edge g ~src:pc ~dst:g.Graph.heap ~weight:0;
  ignore (Propagate.walkall g);
  Alcotest.(check bool) "Exposes(pc) from heap flow" true pc.Loc.exposes;
  (* but not through a dereference *)
  let g2 = Graph.create () in
  let q = mkloc g2 "q" ~decl:1 ~loop:0 in
  Graph.add_edge g2 ~src:q ~dst:g2.Graph.heap ~weight:1;
  ignore (Propagate.walkall g2);
  Alcotest.(check bool) "no Exposes through deref" false q.Loc.exposes

let test_incomplete_from_exposed_pointer () =
  (* Def 4.12 rule 2: pointees of an exposed pointer become incomplete *)
  let g = Graph.create () in
  let c = mkloc g "c" ~decl:1 ~loop:0 in
  let pc = mkloc g "pc" ~decl:1 ~loop:0 in
  Graph.add_edge g ~src:c ~dst:pc ~weight:(-1);
  pc.Loc.exposes <- true;
  ignore (Propagate.walkall g);
  Alcotest.(check bool) "Incomplete(c)" true (Loc.incomplete c)

let test_incomplete_backprop () =
  (* Def 4.12 rule 3: receiving an incomplete value makes the receiver
     incomplete — the leaf→root extension of fig. 5 *)
  let g = Graph.create () in
  let src = mkloc g "src" ~decl:1 ~loop:0 in
  let dst = mkloc g "dst" ~decl:1 ~loop:0 in
  src.Loc.inc_store <- true;
  Graph.add_edge g ~src ~dst ~weight:0;
  ignore (Propagate.walkall g);
  Alcotest.(check bool) "Incomplete propagates forward" true
    (Loc.incomplete dst);
  (* with back-propagation disabled, it must not *)
  let g2 = Graph.create () in
  let src2 = mkloc g2 "src" ~decl:1 ~loop:0 in
  let dst2 = mkloc g2 "dst" ~decl:1 ~loop:0 in
  src2.Loc.inc_store <- true;
  Graph.add_edge g2 ~src:src2 ~dst:dst2 ~weight:0;
  ignore (Propagate.walkall ~backprop:false g2);
  Alcotest.(check bool) "no propagation without backprop" false
    (Loc.incomplete dst2)

let test_outermost_ref_and_outlived () =
  (* Def 4.14/4.15: an outer-scope pointer drags OutermostRef down and
     marks inner pointers outlived *)
  let g = Graph.create () in
  let obj = mkloc g "obj" ~decl:3 ~loop:0 in
  let inner = mkloc g "inner" ~decl:3 ~loop:0 in
  let outer = mkloc g "outer" ~decl:1 ~loop:0 in
  obj.Loc.heap_alloc <- true;
  Graph.add_edge g ~src:obj ~dst:inner ~weight:(-1);
  Graph.add_edge g ~src:obj ~dst:outer ~weight:(-1);
  ignore (Propagate.walkall g);
  Alcotest.(check int) "OutermostRef(obj) = outer's depth" 1
    obj.Loc.outermost_ref;
  Alcotest.(check bool) "inner is outlived" true inner.Loc.outlived;
  Alcotest.(check bool) "outer is not outlived" false outer.Loc.outlived;
  Alcotest.(check bool) "inner not freeable" false (Propagate.to_free inner);
  Alcotest.(check bool) "outer freeable" true (Propagate.to_free outer)

let test_points_to_heap () =
  let g = Graph.create () in
  let obj = mkloc g "obj" ~decl:1 ~loop:0 in
  let p = mkloc g "p" ~decl:1 ~loop:0 in
  let q = mkloc g "q" ~decl:1 ~loop:0 in
  obj.Loc.heap_alloc <- true;
  Graph.add_edge g ~src:obj ~dst:p ~weight:(-1);
  (* q holds obj's VALUE, not address: not PointsToHeap *)
  Graph.add_edge g ~src:obj ~dst:q ~weight:0;
  ignore (Propagate.walkall g);
  Alcotest.(check bool) "PointsToHeap(p)" true p.Loc.points_to_heap;
  Alcotest.(check bool) "not PointsToHeap(q)" false q.Loc.points_to_heap

let test_go_base_skips_gofree_rules () =
  let g = Graph.create () in
  let c = mkloc g "c" ~decl:1 ~loop:0 in
  let pc = mkloc g "pc" ~decl:1 ~loop:0 in
  pc.Loc.exposes <- true;
  pc.Loc.heap_alloc <- true;
  Graph.add_edge g ~src:c ~dst:pc ~weight:(-1);
  ignore (Propagate.walkall ~mode:Propagate.Go_base g);
  Alcotest.(check bool) "HeapAlloc still computed" true c.Loc.heap_alloc;
  Alcotest.(check bool) "Incomplete not computed" false (Loc.incomplete c);
  Alcotest.(check bool) "PointsToHeap not computed" false
    pc.Loc.points_to_heap

let test_fixpoint_terminates_on_cycles () =
  (* a cyclic graph with mixed weights must reach a fixpoint *)
  let g = Graph.create () in
  let a = mkloc g "a" ~decl:1 ~loop:0 in
  let b = mkloc g "b" ~decl:2 ~loop:1 in
  let c = mkloc g "c" ~decl:3 ~loop:2 in
  Graph.add_edge g ~src:a ~dst:b ~weight:(-1);
  Graph.add_edge g ~src:b ~dst:c ~weight:0;
  Graph.add_edge g ~src:c ~dst:a ~weight:1;
  Graph.add_edge g ~src:c ~dst:g.Graph.heap ~weight:0;
  let stats = Propagate.walkall g in
  Alcotest.(check bool) "finite work" true
    (stats.Propagate.roots_walked < 100)

let test_content_tag_depths () =
  (* a +∞-depth content tag never drags OutermostRef below its pointer *)
  let g = Graph.create () in
  let tag =
    mkloc g "content" ~decl:Loc.infinity_depth ~loop:Loc.infinity_depth
  in
  let v = mkloc g "v" ~decl:2 ~loop:0 in
  tag.Loc.heap_alloc <- true;
  Graph.add_edge g ~src:tag ~dst:v ~weight:(-1);
  ignore (Propagate.walkall g);
  Alcotest.(check int) "OutermostRef capped at v's depth" 2
    tag.Loc.outermost_ref;
  Alcotest.(check bool) "v freeable" true (Propagate.to_free v)

let suite =
  [
    Alcotest.test_case "HeapAlloc via PointsTo" `Quick
      test_heapalloc_via_pointsto;
    Alcotest.test_case "HeapAlloc via LoopDepth" `Quick
      test_heapalloc_via_loop_depth;
    Alcotest.test_case "HeapAlloc through chains" `Quick
      test_transitive_heapalloc;
    Alcotest.test_case "Exposes back-flow" `Quick test_exposes_backflow;
    Alcotest.test_case "Incomplete from exposure" `Quick
      test_incomplete_from_exposed_pointer;
    Alcotest.test_case "Incomplete back-propagation" `Quick
      test_incomplete_backprop;
    Alcotest.test_case "OutermostRef and Outlived" `Quick
      test_outermost_ref_and_outlived;
    Alcotest.test_case "PointsToHeap" `Quick test_points_to_heap;
    Alcotest.test_case "Go_base skips GoFree rules" `Quick
      test_go_base_skips_gofree_rules;
    Alcotest.test_case "fixpoint on cycles" `Quick
      test_fixpoint_terminates_on_cycles;
    Alcotest.test_case "content tag depths" `Quick test_content_tag_depths;
  ]
