(** Type-checker tests: accepted programs, rejected programs, and the
    scope/loop-depth bookkeeping the escape analysis depends on. *)

open Minigo

let checks name src =
  Alcotest.test_case name `Quick (fun () ->
      match Helpers.parse_check src with
      | _ -> ()
      | exception Gofree_core.Pipeline.Compile_error msg ->
        Alcotest.failf "%s" msg)

let rejects name src =
  Alcotest.test_case name `Quick (fun () ->
      match Helpers.parse_check src with
      | exception Gofree_core.Pipeline.Compile_error msg ->
        if
          String.length msg < 10
          || not (String.sub msg 0 10 = "type error")
        then Alcotest.failf "expected a type error, got: %s" msg
      | _ -> Alcotest.failf "expected a type error")

let wrap body = "func main() {\n" ^ body ^ "\n}"

let find_var program func name =
  let f = Tast.find_func program func |> Option.get in
  let found = ref None in
  let check (v : Tast.var) =
    if String.equal v.Tast.v_name name then found := Some v
  in
  List.iter check f.Tast.f_params;
  Tast.iter_stmts
    (fun s ->
      match s with
      | Tast.Sdecl (v, _) -> check v
      | Tast.Smulti_decl (vs, _) -> List.iter check vs
      | _ -> ())
    f.Tast.f_body;
  match !found with
  | Some v -> v
  | None -> Alcotest.failf "variable %s not found in %s" name func

let test_depths () =
  let program =
    Helpers.parse_check
      {|
func f(p int) {
  a := 1
  {
    b := 2
    {
      c := b
      c++
    }
  }
  for i := 0; i < p; i++ {
    d := i
    for j := 0; j < d; j++ {
      e := j
      e++
    }
  }
  a++
}
func main() { f(3) }
|}
  in
  let depth n = (find_var program "f" n).Tast.v_decl_depth in
  let loop n = (find_var program "f" n).Tast.v_loop_depth in
  Alcotest.(check int) "param depth" 1 (depth "p");
  Alcotest.(check int) "a depth" 1 (depth "a");
  Alcotest.(check int) "b depth" 2 (depth "b");
  Alcotest.(check int) "c depth" 3 (depth "c");
  (* for-init variable lives in the implicit for scope *)
  Alcotest.(check int) "i depth" 2 (depth "i");
  Alcotest.(check int) "d depth" 3 (depth "d");
  Alcotest.(check int) "a loop depth" 0 (loop "a");
  Alcotest.(check int) "i loop depth" 1 (loop "i");
  Alcotest.(check int) "d loop depth" 1 (loop "d");
  Alcotest.(check int) "j loop depth" 2 (loop "j");
  Alcotest.(check int) "e loop depth" 2 (loop "e")

let test_unique_ids () =
  let program =
    Helpers.parse_check
      {|
func f() int {
  x := 1
  {
    x := 2
    x++
  }
  return x
}
func main() { println(f()) }
|}
  in
  (* shadowed x gets a distinct id; total variables allocated covers both *)
  Alcotest.(check bool) "at least 2 vars" true (program.Tast.p_nvars >= 2)

let test_sites () =
  let program =
    Helpers.parse_check
      (wrap
         {|
  s := make([]int, 10)
  m := make(map[string]int)
  p := new(int)
  s2 := append(s, 1)
  lit := []int{1, 2}
  println(len(s2), len(lit), len(m), *p)
|})
  in
  let kinds =
    List.map (fun s -> s.Tast.site_kind) program.Tast.p_sites
  in
  Alcotest.(check int) "five sites" 5 (List.length kinds);
  Alcotest.(check bool) "has slice site" true
    (List.mem Tast.Site_slice kinds);
  Alcotest.(check bool) "has map site" true (List.mem Tast.Site_map kinds);
  Alcotest.(check bool) "has new site" true (List.mem Tast.Site_new kinds);
  Alcotest.(check bool) "has append site" true
    (List.mem Tast.Site_append kinds);
  let slice_site =
    List.find (fun s -> s.Tast.site_kind = Tast.Site_slice) program.Tast.p_sites
  in
  Alcotest.(check (option int)) "const length" (Some 10)
    slice_site.Tast.site_const_len;
  Alcotest.(check int) "elem size" 8 slice_site.Tast.site_elem_size

let test_struct_sizes () =
  let program =
    Helpers.parse_check
      {|
type P struct {
  x int
  y int
  s []int
}
func main() {
  p := P{x: 1, y: 2, s: nil}
  println(p.x)
}
|}
  in
  Alcotest.(check int) "struct size" (8 + 8 + 24)
    (Types.size_of program.Tast.p_tenv (Types.Struct "P"))

let suite =
  [
    checks "arith and strings"
      (wrap "x := 1 + 2*3\ns := \"a\" + \"b\"\nprintln(x, s)");
    checks "comparisons" (wrap "b := 1 < 2 && \"a\" <= \"b\"\nprintln(b)");
    checks "nil comparisons"
      "func f(p *int) bool { return p == nil }\nfunc main() { println(f(nil)) }";
    checks "zero-value declarations"
      "type T struct { a int\n b string }\nfunc main() {\nvar x int\nvar s []int\nvar t T\nprintln(x, len(s), t.a)\n}";
    checks "multi return"
      "func f() (int, string) { return 1, \"x\" }\nfunc main() {\na, b := f()\nprintln(a, b)\n}";
    checks "swap assignment" (wrap "a := 1\nb := 2\na, b = b, a\nprintln(a, b)");
    checks "pointer chains"
      (wrap "x := 1\np := &x\npp := &p\n**pp = 3\nprintln(x)");
    checks "map ops"
      (wrap "m := make(map[string]int)\nm[\"a\"] = 1\nv := m[\"a\"]\ndelete(m, \"a\")\nprintln(v, len(m))");
    checks "builtins" (wrap "println(itoa(42), rand(10), substr(\"hello\", 1, 3))");
    rejects "undefined variable" (wrap "x := y");
    rejects "undefined function" (wrap "f()");
    rejects "type mismatch" (wrap "x := 1 + \"a\"");
    rejects "bad condition" (wrap "if 1 {\n}");
    rejects "redeclaration" (wrap "x := 1\nx := 2");
    rejects "wrong arity"
      "func f(a int) {}\nfunc main() { f(1, 2) }";
    rejects "wrong return count"
      "func f() (int, int) { return 1 }\nfunc main() {}";
    rejects "deref non-pointer" (wrap "x := 1\ny := *x\nprintln(y)");
    rejects "index non-indexable" (wrap "x := 1\ny := x[0]\nprintln(y)");
    rejects "unknown field"
      "type T struct { a int }\nfunc main() {\nt := T{a: 1}\nprintln(t.b)\n}";
    rejects "unknown struct" (wrap "t := Unknown{}");
    rejects "nil inference" (wrap "x := nil");
    rejects "recursive struct by value"
      "type T struct { next T }\nfunc main() {}";
    rejects "map key not scalar"
      "func main() {\nm := make(map[[]int]int)\nprintln(len(m))\n}";
    rejects "assign to expression" (wrap "1 + 2 = 3");
    rejects "multi-value in expression"
      "func f() (int, int) { return 1, 2 }\nfunc main() {\nx := f() + 1\nprintln(x)\n}";
    Alcotest.test_case "decl and loop depths" `Quick test_depths;
    Alcotest.test_case "unique variable ids" `Quick test_unique_ids;
    Alcotest.test_case "allocation sites" `Quick test_sites;
    Alcotest.test_case "struct sizes" `Quick test_struct_sizes;
  ]
