(** Statistics tests: moments, percentiles, and Welch's t-test against
    reference values. *)

open Gofree_stats

let feq ?(eps = 1e-6) name want got =
  Alcotest.(check (float eps)) name want got

let test_moments () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  feq "mean" 5.0 (Stats.mean xs);
  feq "variance (sample)" (32.0 /. 7.0) (Stats.variance xs);
  feq "stdev" (sqrt (32.0 /. 7.0)) (Stats.stdev xs);
  feq "mean empty" 0.0 (Stats.mean [||]);
  feq "variance singleton" 0.0 (Stats.variance [| 3.0 |])

let test_percentiles () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  feq "median interpolates" 2.5 (Stats.median xs);
  feq "p0" 1.0 (Stats.percentile 0.0 xs);
  feq "p100" 4.0 (Stats.percentile 100.0 xs);
  feq "p25" 1.75 (Stats.percentile 25.0 xs);
  feq "median odd" 2.0 (Stats.median [| 3.0; 1.0; 2.0 |]);
  (* single sample: every percentile is that sample *)
  feq "p0 singleton" 7.0 (Stats.percentile 0.0 [| 7.0 |]);
  feq "p50 singleton" 7.0 (Stats.percentile 50.0 [| 7.0 |]);
  feq "p100 singleton" 7.0 (Stats.percentile 100.0 [| 7.0 |]);
  (* percentile must not reorder the caller's array *)
  let xs2 = [| 3.0; 1.0; 2.0 |] in
  ignore (Stats.percentile 50.0 xs2);
  Alcotest.(check bool) "input untouched" true (xs2 = [| 3.0; 1.0; 2.0 |])

let test_percentile_many () =
  let xs = [| 4.0; 1.0; 3.0; 2.0 |] in
  (* one sort, same answers as the one-at-a-time form, input order kept *)
  (match Stats.percentile_many [ 50.0; 95.0; 99.0; 0.0 ] xs with
  | [ (p50, v50); (p95, v95); (p99, v99); (p0, v0) ] ->
    feq "p label 50" 50.0 p50;
    feq "p label 95" 95.0 p95;
    feq "p label 99" 99.0 p99;
    feq "p label 0" 0.0 p0;
    feq "p50 matches percentile" (Stats.percentile 50.0 xs) v50;
    feq "p95 matches percentile" (Stats.percentile 95.0 xs) v95;
    feq "p99 matches percentile" (Stats.percentile 99.0 xs) v99;
    feq "p0 matches percentile" (Stats.percentile 0.0 xs) v0
  | _ -> Alcotest.fail "wrong arity");
  (* caller's array untouched *)
  Alcotest.(check bool) "input untouched" true (xs = [| 4.0; 1.0; 3.0; 2.0 |]);
  (match Stats.percentile_many [ 50.0 ] [| 7.0 |] with
  | [ (_, v) ] -> feq "singleton" 7.0 v
  | _ -> Alcotest.fail "wrong arity");
  Alcotest.check_raises "empty sample rejected"
    (Invalid_argument "percentile_many: empty sample") (fun () ->
      ignore (Stats.percentile_many [ 50.0 ] [||]))

let test_ratio () =
  let control = [| 10.0; 10.0; 10.0 |] in
  let treatment = [| 9.0; 9.5; 8.5 |] in
  feq "ratio" 0.9 (Stats.ratio ~treatment ~control)

let test_log_gamma () =
  (* ln Γ(n) = ln (n-1)! *)
  feq ~eps:1e-9 "lgamma 1" 0.0 (Ttest.log_gamma 1.0);
  feq ~eps:1e-9 "lgamma 5" (log 24.0) (Ttest.log_gamma 5.0);
  feq ~eps:1e-8 "lgamma 0.5" (log (sqrt Float.pi)) (Ttest.log_gamma 0.5)

let test_incomplete_beta () =
  (* I_x(1,1) = x *)
  feq ~eps:1e-9 "I_x(1,1)" 0.3 (Ttest.incomplete_beta 1.0 1.0 0.3);
  (* I_x(2,2) = 3x^2 - 2x^3 *)
  feq ~eps:1e-9 "I_x(2,2)" (3.0 *. 0.16 -. 2.0 *. 0.064)
    (Ttest.incomplete_beta 2.0 2.0 0.4);
  feq "bounds 0" 0.0 (Ttest.incomplete_beta 2.0 3.0 0.0);
  feq "bounds 1" 1.0 (Ttest.incomplete_beta 2.0 3.0 1.0)

let test_t_distribution () =
  (* two-sided p for t=2.0, df=10 is about 0.0734 (reference tables) *)
  feq ~eps:2e-4 "p(t=2, df=10)" 0.0734
    (Ttest.t_two_sided ~t:2.0 ~df:10.0);
  (* df=1 (Cauchy): p(t=1) = 0.5 *)
  feq ~eps:1e-6 "p(t=1, df=1)" 0.5 (Ttest.t_two_sided ~t:1.0 ~df:1.0);
  feq ~eps:1e-6 "p(t=0)" 1.0 (Ttest.t_two_sided ~t:0.0 ~df:5.0)

let test_welch () =
  (* clearly different samples *)
  let a = Array.init 30 (fun i -> 10.0 +. (0.01 *. float_of_int (i mod 5))) in
  let b = Array.init 30 (fun i -> 11.0 +. (0.01 *. float_of_int (i mod 5))) in
  let r = Ttest.welch a b in
  Alcotest.(check bool) "significant" true r.Ttest.significant;
  Alcotest.(check bool) "tiny p" true (r.Ttest.p_value < 1e-6);
  (* overlapping noisy samples: not significant *)
  let noise seed = Array.init 20 (fun i ->
      10.0 +. Float.rem (float_of_int ((i * 7919 + seed) mod 100)) 10.0) in
  let r2 = Ttest.welch (noise 1) (noise 13) in
  Alcotest.(check bool) "not significant" false r2.Ttest.significant;
  (* identical constant samples *)
  let c = Array.make 10 5.0 in
  let r3 = Ttest.welch c (Array.copy c) in
  Alcotest.(check bool) "identical constants" false r3.Ttest.significant

let test_welch_reference () =
  (* hand-computed: a has mean 2.5, s²=5/3; b has mean 5, s²=20/3.
     t = -2.5 / √(25/12) = -√3;
     df = (25/12)² / ((5/12)²/3 + (5/6)²/3) = 1875/425 ≈ 4.4118. *)
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  let b = [| 2.0; 4.0; 6.0; 8.0 |] in
  let r = Ttest.welch a b in
  feq ~eps:1e-6 "t statistic" (-.sqrt 3.0) r.Ttest.t_stat;
  feq ~eps:1e-6 "Welch df" (1875.0 /. 425.0) r.Ttest.df;
  (* reference two-sided p ≈ 0.1499 (scipy.stats.ttest_ind equal_var=False) *)
  Alcotest.(check bool) "p in reference bracket" true
    (r.Ttest.p_value > 0.14 && r.Ttest.p_value < 0.16);
  (* symmetric call flips only the sign of t *)
  let r' = Ttest.welch b a in
  feq ~eps:1e-6 "t antisymmetric" (sqrt 3.0) r'.Ttest.t_stat;
  feq ~eps:1e-9 "p symmetric" r.Ttest.p_value r'.Ttest.p_value

let test_table_render () =
  let t = Table.create ~aligns:[ Table.Left; Table.Right ] [ "name"; "v" ] in
  Table.add_row t [ "a"; "1" ];
  Table.add_row t [ "long-name"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0 && String.sub s 0 4 = "name");
  (* all lines equal width where padded *)
  Alcotest.(check bool) "row present" true
    (List.exists
       (fun line -> line = "long-name  22")
       (String.split_on_char '\n' s))

let suite =
  [
    Alcotest.test_case "moments" `Quick test_moments;
    Alcotest.test_case "percentiles" `Quick test_percentiles;
    Alcotest.test_case "percentile many" `Quick test_percentile_many;
    Alcotest.test_case "ratio" `Quick test_ratio;
    Alcotest.test_case "log gamma" `Quick test_log_gamma;
    Alcotest.test_case "incomplete beta" `Quick test_incomplete_beta;
    Alcotest.test_case "student t" `Quick test_t_distribution;
    Alcotest.test_case "welch t-test" `Quick test_welch;
    Alcotest.test_case "welch reference values" `Quick test_welch_reference;
    Alcotest.test_case "table rendering" `Quick test_table_render;
  ]
