(** Tests for call-graph ordering and summary extraction: the compressed
    parameter tags of §4.4 must carry the right flows and dereference
    weights. *)

open Gofree_escape
open Minigo

let analysis_of src =
  let compiled = Helpers.compile src in
  compiled.Gofree_core.Pipeline.c_analysis

let summary analysis name = Hashtbl.find analysis.Analysis.summaries name

let flows_to_return s ~param ~ret =
  List.filter_map
    (fun { Summary.pf_param; pf_target; pf_derefs } ->
      match pf_target with
      | `Return j when pf_param = param && j = ret -> Some pf_derefs
      | _ -> None)
    s.Summary.s_flows

let flows_to_heap s ~param =
  List.filter_map
    (fun { Summary.pf_param; pf_target; pf_derefs } ->
      match pf_target with
      | `Heap when pf_param = param -> Some pf_derefs
      | _ -> None)
    s.Summary.s_flows

let test_callees () =
  let program =
    Helpers.parse_check
      {|
func a() { b()
  c() }
func b() { c() }
func c() {}
func d() { go a()
  defer b() }
func main() { d() }
|}
  in
  let f name = Tast.find_func program name |> Option.get in
  Alcotest.(check (list string)) "a calls b,c" [ "b"; "c" ]
    (List.sort compare (Analysis.callees_of (f "a")));
  Alcotest.(check (list string)) "d calls a,b (go/defer)" [ "a"; "b" ]
    (List.sort compare (Analysis.callees_of (f "d")))

let test_scc_order () =
  let program =
    Helpers.parse_check
      {|
func leaf() int { return 1 }
func mid() int { return leaf() + 1 }
func top() int { return mid() + leaf() }
func main() { println(top()) }
|}
  in
  let order =
    List.map
      (fun comp -> List.map (fun (f : Tast.func) -> f.Tast.f_name) comp)
      (Analysis.scc_order program.Tast.p_funcs)
  in
  (* callees come strictly before callers *)
  let pos name =
    let rec go i = function
      | [] -> -1
      | comp :: rest -> if List.mem name comp then i else go (i + 1) rest
    in
    go 0 order
  in
  Alcotest.(check bool) "leaf before mid" true (pos "leaf" < pos "mid");
  Alcotest.(check bool) "mid before top" true (pos "mid" < pos "top");
  Alcotest.(check bool) "top before main" true (pos "top" < pos "main")

let test_scc_cycle_grouped () =
  let program =
    Helpers.parse_check
      {|
func ping(n int) int {
  if n <= 0 { return 0 }
  return pong(n - 1)
}
func pong(n int) int {
  if n <= 0 { return 1 }
  return ping(n - 1)
}
func main() { println(ping(5)) }
|}
  in
  let comps = Analysis.scc_order program.Tast.p_funcs in
  let cycle =
    List.find
      (fun comp ->
        List.exists (fun (f : Tast.func) -> f.Tast.f_name = "ping") comp)
      comps
  in
  Alcotest.(check int) "ping and pong share a component" 2
    (List.length cycle)

let test_identity_summary () =
  let analysis =
    analysis_of
      {|
func id(s []int) []int { return s }
func main() {
  x := make([]int, 3)
  y := id(x)
  y[0] = 1
  println(x[0])
}
|}
  in
  let s = summary analysis "id" in
  (* the parameter's value flows to the return with 0 dereferences *)
  Alcotest.(check (list int)) "param0 -> return0 at derefs 0" [ 0 ]
    (flows_to_return s ~param:0 ~ret:0);
  Alcotest.(check (list int)) "param0 does not flow to heap" []
    (flows_to_heap s ~param:0)

let test_deref_summary () =
  let analysis =
    analysis_of
      {|
func load(p *[]int) []int { return *p }
func main() {
  x := make([]int, 3)
  y := load(&x)
  y[0] = 1
  println(x[0])
}
|}
  in
  let s = summary analysis "load" in
  Alcotest.(check (list int)) "param0 -> return0 at derefs 1" [ 1 ]
    (flows_to_return s ~param:0 ~ret:0)

let test_leak_summary () =
  let analysis =
    analysis_of
      {|
var sink []int
func leak(s []int) {
  sink = s
}
func main() {
  x := make([]int, 3)
  leak(x)
  println(len(sink))
}
|}
  in
  let s = summary analysis "leak" in
  Alcotest.(check bool) "param0 flows to heap" true
    (flows_to_heap s ~param:0 <> [])

let test_pure_reader_summary () =
  let analysis =
    analysis_of
      {|
func total(s []int) int {
  t := 0
  for i := 0; i < len(s); i++ {
    t += s[i]
  }
  return t
}
func main() {
  x := make([]int, 3)
  println(total(x))
}
|}
  in
  let s = summary analysis "total" in
  Alcotest.(check (list int)) "no heap flow" [] (flows_to_heap s ~param:0);
  Alcotest.(check bool) "int return has no heap content" false
    s.Summary.s_contents.(0).Summary.ct_heap_alloc

let test_second_return_only () =
  (* a function that is a factory for result 0 but a pass-through for
     result 1 — the per-value tagging of §4.6.3 *)
  let analysis =
    analysis_of
      {|
func mixed(s []int) ([]int, []int) {
  fresh := make([]int, 2)
  return fresh, s
}
func main() {
  base := make([]int, 3)
  a, b := mixed(base)
  a[0] = 1
  b[0] = 2
  println(base[0])
}
|}
  in
  let s = summary analysis "mixed" in
  Alcotest.(check bool) "result 0 is a fresh heap allocation" true
    s.Summary.s_contents.(0).Summary.ct_heap_alloc;
  Alcotest.(check (list int)) "param flows only to result 1" [ 0 ]
    (flows_to_return s ~param:0 ~ret:1);
  Alcotest.(check (list int)) "param does not flow to result 0" []
    (flows_to_return s ~param:0 ~ret:0)

let test_default_summary_shape () =
  let s = Summary.default ~name:"unknown" ~nparams:2 ~nresults:2 in
  Alcotest.(check int) "two flows" 2 (List.length s.Summary.s_flows);
  List.iter
    (fun f ->
      match f.Summary.pf_target with
      | `Heap -> ()
      | _ -> Alcotest.fail "default flows must target the heap")
    s.Summary.s_flows;
  Array.iter
    (fun ct ->
      Alcotest.(check bool) "conservative contents" true
        (ct.Summary.ct_heap_alloc && ct.Summary.ct_incomplete))
    s.Summary.s_contents

(* ---------------------------------------------------------------- *)
(* Serialization (§4.4 separate compilation): text round-trips        *)
(* ---------------------------------------------------------------- *)

let summary_gen : Summary.t QCheck.Gen.t =
  let open QCheck.Gen in
  let name_gen =
    oneof
      [
        (* plain and qualified identifiers *)
        map2
          (fun a b -> Printf.sprintf "%s.%s" a b)
          (string_size ~gen:(char_range 'a' 'z') (1 -- 8))
          (string_size ~gen:(char_range 'A' 'Z') (1 -- 8));
        string_size ~gen:(char_range 'a' 'z') (1 -- 12);
        (* hostile names: the quoting path must hold *)
        return "has space";
        return "quo\"te\\slash";
        return "parens()\nand;comment";
      ]
  in
  let target_gen =
    oneof
      [ return `Heap; return `Defer; map (fun i -> `Return i) (0 -- 3) ]
  in
  let flow_gen =
    map3
      (fun p t d -> { Summary.pf_param = p; pf_target = t; pf_derefs = d })
      (0 -- 3) target_gen (0 -- 4)
  in
  let content_gen =
    map3
      (fun h i r ->
        { Summary.ct_heap_alloc = h; ct_incomplete = i; ret_incomplete = r })
      bool bool bool
  in
  map3
    (fun name (nparams, flows) contents ->
      {
        Summary.s_name = name;
        s_nparams = nparams;
        s_flows = flows;
        s_contents = Array.of_list contents;
        s_fields = [];
      })
    name_gen
    (pair (0 -- 4) (list_size (0 -- 6) flow_gen))
    (list_size (0 -- 3) content_gen)

let summary_arb =
  QCheck.make ~print:(Format.asprintf "%a" Summary.pp) summary_gen

let prop_summary_roundtrip =
  QCheck.Test.make ~count:500 ~name:"summary text round-trip identity"
    summary_arb (fun s ->
      match Summary.of_string (Summary.to_string s) with
      | Ok s' -> s' = s
      | Error e -> QCheck.Test.fail_reportf "did not re-parse: %s" e)

let test_default_roundtrip () =
  let s = Summary.default ~name:"unknown.Fn" ~nparams:3 ~nresults:2 in
  match Summary.of_string (Summary.to_string s) with
  | Ok s' ->
    Alcotest.(check bool) "default survives serialization" true (s' = s)
  | Error e -> Alcotest.failf "default did not re-parse: %s" e

let test_golden_summary_text () =
  let s =
    {
      Summary.s_name = "util.MakeRange";
      s_nparams = 1;
      s_flows =
        [ { Summary.pf_param = 0; pf_target = `Return 0; pf_derefs = 2 } ];
      s_contents =
        [|
          {
            Summary.ct_heap_alloc = true;
            ct_incomplete = false;
            ret_incomplete = false;
          };
        |];
      s_fields = [];
    }
  in
  Alcotest.(check string)
    "golden stored-summary text"
    "(summary (name util.MakeRange) (nparams 1) (flows (flow 0 (return 0) \
     2)) (contents (content true false false)))"
    (Summary.to_string s)

let test_malformed_rejected () =
  List.iter
    (fun bad ->
      match Summary.of_string bad with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" bad
      | Error _ -> ())
    [
      "";
      "(";
      "(summary)";
      "(summary (name x) (nparams no) (flows) (contents))";
      "(summary (name x) (nparams 1) (flows (flow 0 nowhere 0)) (contents))";
      "(summary (name x) (nparams 1) (flows)) trailing";
    ]

let suite =
  [
    Alcotest.test_case "callees extraction" `Quick test_callees;
    Alcotest.test_case "SCC topological order" `Quick test_scc_order;
    Alcotest.test_case "mutual recursion grouped" `Quick
      test_scc_cycle_grouped;
    Alcotest.test_case "identity summary" `Quick test_identity_summary;
    Alcotest.test_case "deref summary weight" `Quick test_deref_summary;
    Alcotest.test_case "leak summary" `Quick test_leak_summary;
    Alcotest.test_case "pure reader summary" `Quick
      test_pure_reader_summary;
    Alcotest.test_case "per-return-value factory tags" `Quick
      test_second_return_only;
    Alcotest.test_case "default summary shape" `Quick
      test_default_summary_shape;
    QCheck_alcotest.to_alcotest prop_summary_roundtrip;
    Alcotest.test_case "default summary round-trip" `Quick
      test_default_roundtrip;
    Alcotest.test_case "golden summary text" `Quick test_golden_summary_text;
    Alcotest.test_case "malformed summaries rejected" `Quick
      test_malformed_rejected;
  ]
