(** The telemetry layer end to end: registry semantics (unit and
    property tests), the [telemetry] RPC and its schema, the server-side
    latency decomposition against client-observed latency, request-id
    correlation across trace tracks, and the structured event log. *)

module Json = Gofree_obs.Json
module Reg = Gofree_obs.Registry
module Schema = Gofree_obs.Schema
module Trace = Gofree_obs.Trace
module Log = Gofree_obs.Log
module Server = Gofree_server.Server
module Client = Gofree_server.Client
module Rpc = Gofree_server.Rpc

let counter = ref 0

let fresh_socket () =
  incr counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "gofree-telemetry-test-%d-%d.sock" (Unix.getpid ())
       !counter)

let with_server ?workers ?queue_capacity ?shed_watermark f =
  let socket = fresh_socket () in
  let t = Server.start ?workers ?queue_capacity ?shed_watermark ~socket () in
  Fun.protect ~finally:(fun () -> Server.stop t) (fun () -> f t socket)

let run_req src =
  Rpc.Run
    {
      src = Rpc.Inline src;
      config = Gofree_api.Preset.(to_config default);
      options = Gofree_api.default_run_options;
    }

let src_small =
  "func main() {\n\txs := make([]int, 64)\n\tprintln(len(xs))\n}\n"

(* ---- registry unit tests ---- *)

let test_registry_basics () =
  let r = Reg.create () in
  let c = Reg.counter r ~help:"a counter" "c_total" in
  Reg.incr c;
  Reg.incr c;
  Reg.add c 3;
  Alcotest.(check int) "counter accumulates" 5 (Reg.counter_value c);
  Alcotest.(check bool) "counter create-or-return" true
    (Reg.counter_value (Reg.counter r "c_total") = 5);
  let g = Reg.gauge r "g" in
  Reg.set g 1.0;
  Reg.set g 2.5;
  let h = Reg.histogram r ~buckets:[| 1.0; 10.0; 100.0 |] "h_ms" in
  List.iter (Reg.observe h) [ 0.5; 5.0; 50.0; 500.0 ];
  let snap = Reg.snapshot r in
  Alcotest.(check (option int))
    "snapshot counter" (Some 5)
    (Reg.Snapshot.find_counter "c_total" snap);
  Alcotest.(check (option (float 1e-9)))
    "gauge last write wins" (Some 2.5)
    (List.assoc_opt "g" snap.Reg.Snapshot.gauges);
  (match Reg.Snapshot.find_histogram "h_ms" snap with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some histo ->
    Alcotest.(check (array int))
      "one observation per bucket (incl. overflow)" [| 1; 1; 1; 1 |]
      histo.Reg.Snapshot.counts;
    Alcotest.(check (float 1e-9)) "sum" 555.5 histo.Reg.Snapshot.sum;
    Alcotest.(check (float 1e-9)) "max" 500.0 histo.Reg.Snapshot.max_value;
    Alcotest.(check int) "count" 4 (Reg.Snapshot.count histo));
  (* name collisions across kinds are refused, not silently aliased *)
  (match Reg.gauge r "c_total" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch accepted");
  match Reg.histogram r ~buckets:[| 2.0 |] "h_ms" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bucket mismatch accepted"

let test_quantiles () =
  let r = Reg.create () in
  let h = Reg.histogram r ~buckets:Reg.default_buckets_ms "h" in
  for i = 1 to 1000 do
    Reg.observe h (float_of_int i /. 10.0)  (* 0.1 .. 100.0 ms *)
  done;
  let snap = Reg.snapshot r in
  let histo = Option.get (Reg.Snapshot.find_histogram "h" snap) in
  let q p = Reg.Snapshot.quantile histo p in
  Alcotest.(check bool) "monotone in p" true
    (q 50.0 <= q 95.0 && q 95.0 <= q 99.0 && q 99.0 <= q 100.0);
  Alcotest.(check bool) "clamped to max" true
    (q 100.0 <= histo.Reg.Snapshot.max_value);
  (* bucket interpolation lands in the right decade *)
  Alcotest.(check bool) "p50 near the true median" true
    (q 50.0 >= 10.0 && q 50.0 <= 100.0);
  let empty =
    Option.get
      (Reg.Snapshot.find_histogram "e" (Reg.snapshot (let r = Reg.create () in
        ignore (Reg.histogram r "e"); r)))
  in
  Alcotest.(check (float 1e-9)) "empty histogram quantile" 0.0
    (Reg.Snapshot.quantile empty 99.0)

(* ---- property tests: merge / snapshot ---- *)

(* a snapshot built from integer-valued observations: bucket counts and
   sums stay exact, so merge associativity holds with (=) *)
let snapshot_of_obs (obs : int list) : Reg.Snapshot.t =
  let r = Reg.create () in
  let c = Reg.counter r "n_total" in
  let h = Reg.histogram r ~buckets:[| 4.0; 16.0; 64.0 |] "v" in
  List.iter
    (fun v ->
      Reg.incr c;
      Reg.observe h (float_of_int v))
    obs;
  Reg.snapshot r

let gen_obs = QCheck.list_of_size (QCheck.Gen.int_range 0 40) (QCheck.int_range 0 256)

let prop_merge_associative =
  QCheck.Test.make ~count:100 ~name:"snapshot merge is associative"
    (QCheck.triple gen_obs gen_obs gen_obs)
    (fun (a, b, c) ->
      let sa = snapshot_of_obs a
      and sb = snapshot_of_obs b
      and sc = snapshot_of_obs c in
      let open Reg.Snapshot in
      merge sa (merge sb sc) = merge (merge sa sb) sc)

let prop_merge_counts_add =
  QCheck.Test.make ~count:100 ~name:"merge adds counters and counts"
    (QCheck.pair gen_obs gen_obs)
    (fun (a, b) ->
      let m = Reg.Snapshot.merge (snapshot_of_obs a) (snapshot_of_obs b) in
      Reg.Snapshot.find_counter "n_total" m
      = Some (List.length a + List.length b)
      && Reg.Snapshot.count
           (Option.get (Reg.Snapshot.find_histogram "v" m))
         = List.length a + List.length b)

let prop_snapshot_monotone =
  QCheck.Test.make ~count:60
    ~name:"snapshots are monotone under more observations"
    (QCheck.pair gen_obs gen_obs)
    (fun (a, b) ->
      let r = Reg.create () in
      let c = Reg.counter r "n_total" in
      let h = Reg.histogram r ~buckets:[| 4.0; 16.0; 64.0 |] "v" in
      let feed vs =
        List.iter
          (fun v ->
            Reg.incr c;
            Reg.observe h (float_of_int v))
          vs
      in
      feed a;
      let s1 = Reg.snapshot r in
      feed b;
      let s2 = Reg.snapshot r in
      let h1 = Option.get (Reg.Snapshot.find_histogram "v" s1) in
      let h2 = Option.get (Reg.Snapshot.find_histogram "v" s2) in
      Reg.Snapshot.find_counter "n_total" s1
      <= Reg.Snapshot.find_counter "n_total" s2
      && Array.for_all2 ( <= ) h1.Reg.Snapshot.counts h2.Reg.Snapshot.counts
      && h1.Reg.Snapshot.sum <= h2.Reg.Snapshot.sum
      && h1.Reg.Snapshot.max_value <= h2.Reg.Snapshot.max_value)

(* ---- export formats ---- *)

let test_json_round_trip () =
  let r = Reg.create () in
  let c = Reg.counter r ~help:"requests" "req_total" in
  Reg.add c 7;
  Reg.set (Reg.gauge r "depth") 3.0;
  let h = Reg.histogram r ~buckets:[| 1.0; 10.0 |] "lat_ms" in
  List.iter (Reg.observe h) [ 0.5; 5.0; 50.0 ];
  let snap = Reg.snapshot r in
  let doc = Reg.Snapshot.to_json snap in
  (match Schema.check Schema.Telemetry doc with
  | Ok () -> ()
  | Error m -> Alcotest.failf "telemetry document failed schema: %s" m);
  let back = Reg.Snapshot.of_json (Json.parse (Json.to_string doc)) in
  Alcotest.(check bool) "of_json inverts to_json" true (back = snap);
  let text = Reg.Snapshot.to_prometheus snap in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "prometheus exposition contains %S" needle)
        true
        (let len = String.length needle in
         let n = String.length text in
         let rec go i = i + len <= n && (String.sub text i len = needle || go (i + 1)) in
         go 0))
    [
      "# HELP req_total requests";
      "# TYPE req_total counter";
      "req_total 7";
      "# TYPE depth gauge";
      "# TYPE lat_ms histogram";
      "lat_ms_bucket{le=\"1\"} 1";
      "lat_ms_bucket{le=\"10\"} 2";
      "lat_ms_bucket{le=\"+Inf\"} 3";
      "lat_ms_count 3";
    ]

let test_runtime_gating () =
  let before = Reg.runtime_enabled () in
  Reg.acquire_runtime ();
  Alcotest.(check bool) "enabled after acquire" true (Reg.runtime_enabled ());
  Reg.acquire_runtime ();
  Reg.release_runtime ();
  Alcotest.(check bool) "still enabled while one holder remains" true
    (Reg.runtime_enabled ());
  Reg.release_runtime ();
  Alcotest.(check bool) "balanced release restores the initial state"
    before (Reg.runtime_enabled ())

(* ---- the telemetry RPC and the latency decomposition ---- *)

let scrape socket =
  match Client.call_once ~socket Rpc.Telemetry with
  | Ok doc -> doc
  | Error (code, m) -> Alcotest.failf "telemetry rpc error %s: %s" code m

let test_telemetry_rpc_schema () =
  with_server (fun _ socket ->
      let doc = scrape socket in
      match Schema.check Schema.Telemetry doc with
      | Ok () -> ()
      | Error m -> Alcotest.failf "telemetry response failed schema: %s" m)

let test_single_request_reconciles () =
  with_server (fun _ socket ->
      let t0 = Unix.gettimeofday () in
      (match Client.call_once ~socket (run_req src_small) with
      | Ok _ -> ()
      | Error (code, m) -> Alcotest.failf "run failed: %s: %s" code m);
      let client_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      let snap = Reg.Snapshot.of_json (scrape socket) in
      let histo name =
        match Reg.Snapshot.find_histogram name snap with
        | Some h -> h
        | None -> Alcotest.failf "histogram %s missing" name
      in
      let qw = histo "gofree_rpc_queue_wait_ms" in
      let svc = histo "gofree_rpc_service_ms" in
      let req = histo "gofree_rpc_request_ms" in
      Alcotest.(check int) "one queue-wait observation" 1
        (Reg.Snapshot.count qw);
      Alcotest.(check int) "one service observation" 1
        (Reg.Snapshot.count svc);
      Alcotest.(check int) "one request observation" 1
        (Reg.Snapshot.count req);
      let server_ms = qw.Reg.Snapshot.sum +. svc.Reg.Snapshot.sum in
      (* queue-wait + service happens inside the client-observed span
         (socket round-trip adds; timer resolution subtracts a hair) *)
      Alcotest.(check bool)
        (Printf.sprintf "server %.2fms fits inside client %.2fms" server_ms
           client_ms)
        true
        (server_ms <= client_ms +. 5.0);
      Alcotest.(check bool) "decomposition accounts for the latency" true
        (client_ms -. server_ms <= 250.0);
      Alcotest.(check (option int))
        "one response counted" (Some 1)
        (Reg.Snapshot.find_counter "gofree_rpc_responses_total" snap);
      Alcotest.(check (option int))
        "method counter" (Some 1)
        (Reg.Snapshot.find_counter "gofree_rpc_method_run_total" snap);
      (* the daemon holds the runtime acquisition: GC/tcfree instruments
         appear in the merged snapshot *)
      Alcotest.(check bool) "runtime instruments merged in" true
        (Reg.Snapshot.find_counter "gofree_tcfree_attempts_total" snap
        <> None))

(* ---- request-id correlation in the trace ---- *)

let test_trace_request_correlation () =
  Trace.start ();
  with_server (fun _ socket ->
      match Client.call_once ~socket (run_req src_small) with
      | Ok _ -> ()
      | Error (code, m) -> Alcotest.failf "run failed: %s: %s" code m);
  let doc = Json.parse (Trace.stop ()) in
  let events = Json.get_list "traceEvents" doc in
  (* events carrying args.req, grouped by request id *)
  let tagged =
    List.filter_map
      (fun e ->
        match Json.member "args" e with
        | Some args -> begin
          match Json.member "req" args with
          | Some (Json.Int rid) ->
            Some
              ( rid,
                Json.get_string "name" e,
                Json.get_int "tid" e,
                Json.get_string "ph" e )
          | _ -> None
        end
        | None -> None)
      events
  in
  let rids = List.sort_uniq compare (List.map (fun (r, _, _, _) -> r) tagged) in
  (* find the run request's id: the one whose events include the worker
     execution span *)
  let rid =
    match
      List.find_opt
        (fun r ->
          List.exists (fun (r', n, _, _) -> r' = r && n = "rpc:run") tagged)
        rids
    with
    | Some r -> r
    | None -> Alcotest.fail "no request id carries an rpc:run span"
  in
  let mine = List.filter (fun (r, _, _, _) -> r = rid) tagged in
  let names = List.map (fun (_, n, _, _) -> n) mine in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " tagged with the request id") true
        (List.mem n names))
    [ "rpc:recv"; "rpc:queued"; "rpc:run"; "rpc:respond" ];
  let tids = List.sort_uniq compare (List.map (fun (_, _, t, _) -> t) mine) in
  Alcotest.(check bool)
    "request id spans reader and worker tracks (>= 2 tids)" true
    (List.length tids >= 2);
  (* the queue-wait span opened on the reader track is closed exactly
     once, even though the E comes from the worker *)
  let queued_b =
    List.length
      (List.filter (fun (_, n, _, ph) -> n = "rpc:queued" && ph = "B") mine)
  in
  let queued_e =
    List.length
      (List.filter
         (fun e ->
           Json.get_string "ph" e = "E"
           && Json.get_string "name" e = "rpc:queued")
         events)
  in
  Alcotest.(check int) "one rpc:queued begin" 1 queued_b;
  Alcotest.(check bool) "every rpc:queued begin is closed" true
    (queued_e >= queued_b)

(* ---- the structured event log ---- *)

let test_log_levels_and_request_ids () =
  let path = Filename.temp_file "gofree-log" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Log.start ~level:Log.Info ~path ();
      Alcotest.(check bool) "info enabled" true (Log.enabled Log.Info);
      Alcotest.(check bool) "debug filtered" false (Log.enabled Log.Debug);
      Log.log Log.Debug "dropped" [];
      with_server (fun _ socket ->
          match Client.call_once ~socket (run_req src_small) with
          | Ok _ -> ()
          | Error (code, m) -> Alcotest.failf "run failed: %s: %s" code m);
      Log.stop ();
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let events =
        List.rev_map
          (fun line ->
            let j = Json.parse line in
            Alcotest.(check bool) "line has ts_ms" true
              (Json.member "ts_ms" j <> None);
            (Json.get_string "event" j, j))
          !lines
      in
      let names = List.map fst events in
      Alcotest.(check bool) "debug event dropped" true
        (not (List.mem "dropped" names));
      List.iter
        (fun n ->
          Alcotest.(check bool) (n ^ " logged") true (List.mem n names))
        [ "listening"; "request"; "shutdown" ];
      let request = List.assoc "request" events in
      Alcotest.(check bool) "request line carries the request id" true
        (match Json.member "req" request with
        | Some (Json.Int _) -> true
        | _ -> false);
      Alcotest.(check string) "request line names the method" "run"
        (Json.get_string "method" request);
      Alcotest.(check string) "level field present" "info"
        (Json.get_string "level" request))

(* ---- stats RPC: histogram percentiles plus the recent window ---- *)

let test_stats_latency_sources () =
  with_server (fun _ socket ->
      let c = Client.connect ~socket in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          for _ = 1 to 3 do
            match Client.call c (run_req src_small) with
            | Ok _ -> ()
            | Error (code, m) -> Alcotest.failf "run failed: %s: %s" code m
          done;
          let stats =
            match Client.call c Rpc.Stats with
            | Ok s -> s
            | Error (code, m) ->
              Alcotest.failf "stats failed: %s: %s" code m
          in
          let all_time = Json.get "latency_ms" stats in
          let recent = Json.get "latency_recent_ms" stats in
          Alcotest.(check int) "histogram count covers every request" 3
            (Json.get_int "count" all_time);
          Alcotest.(check int) "ring window agrees while small" 3
            (Json.get_int "window" recent);
          let p50 = Json.get_float "p50_ms" all_time in
          let p99 = Json.get_float "p99_ms" all_time in
          let mx = Json.get_float "max_ms" all_time in
          Alcotest.(check bool) "histogram ladder ordered" true
            (p50 <= p99 && p99 <= mx)))

let suite =
  [
    Alcotest.test_case "registry basics" `Quick test_registry_basics;
    Alcotest.test_case "histogram quantiles" `Quick test_quantiles;
    QCheck_alcotest.to_alcotest prop_merge_associative;
    QCheck_alcotest.to_alcotest prop_merge_counts_add;
    QCheck_alcotest.to_alcotest prop_snapshot_monotone;
    Alcotest.test_case "json round-trip and prometheus" `Quick
      test_json_round_trip;
    Alcotest.test_case "runtime registry gating" `Quick test_runtime_gating;
    Alcotest.test_case "telemetry rpc schema" `Quick
      test_telemetry_rpc_schema;
    Alcotest.test_case "single request reconciles" `Quick
      test_single_request_reconciles;
    Alcotest.test_case "trace request correlation" `Quick
      test_trace_request_correlation;
    Alcotest.test_case "log levels and request ids" `Quick
      test_log_levels_and_request_ids;
    Alcotest.test_case "stats latency sources" `Quick
      test_stats_latency_sources;
  ]
