(** Golden-file tests of the bytecode disassembler ([gofreec disasm]).

    Each case compiles a checked-in source under the gofree preset,
    lowers it with {!Gofree_interp.Emit} and compares the disassembly
    against the checked-in [.disasm] listing byte for byte.  The listing
    is the frozen shape of the ISA: opcode names, operand resolution
    (slot names, interned callees, inline-cache sites) and the stack /
    frame header.  A diff here means the emitter or the opcode table
    changed — regenerate with
    [dune exec bin/gofreec.exe -- disasm test/golden/FILE.go] only when
    that change is intentional. *)

(* Resolve golden files next to the test binary so the cases work under
   both [dune runtest] (cwd = test dir) and [dune exec] (cwd = root). *)
let golden name =
  let beside = Filename.concat (Filename.dirname Sys.executable_name) in
  if Sys.file_exists (beside "golden") then
    Filename.concat (beside "golden") name
  else Filename.concat "golden" name

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let check_golden name () =
  let src = read_file (golden (name ^ ".go")) in
  let expected = read_file (golden (name ^ ".disasm")) in
  let got =
    match Gofree_api.disassemble_string src with
    | Ok s -> s
    | Error e -> Alcotest.fail (Gofree_api.error_message e)
  in
  Alcotest.(check string) (name ^ ": disassembly") expected got

(* The disassembly must stay in sync with what actually executes: the
   listed program and the one the runner installs come from the same
   lowering, so a listing that parses as non-empty with the expected
   header shape is cross-checked by running the program too. *)
let test_disasm_matches_run () =
  let src = read_file (golden "maps_structs.go") in
  (match Gofree_api.run_string src with
  | Ok outcome ->
    Alcotest.(check bool) "runs clean" false outcome.Gofree_api.panicked
  | Error e -> Alcotest.fail (Gofree_api.error_message e));
  match Gofree_api.disassemble_string src with
  | Ok s ->
    Alcotest.(check bool)
      "has per-function headers" true
      (String.length s > 0
      && String.sub s 0 5 = "func "
      && String.length (String.concat "" (String.split_on_char '\n' s))
         > 100)
  | Error e -> Alcotest.fail (Gofree_api.error_message e)

let suite =
  [
    Alcotest.test_case "golden arith_loop" `Quick
      (check_golden "arith_loop");
    Alcotest.test_case "golden maps_structs" `Quick
      (check_golden "maps_structs");
    Alcotest.test_case "disasm consistent with run" `Quick
      test_disasm_matches_run;
  ]
