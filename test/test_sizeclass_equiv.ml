(** The O(1) size→class tables must agree with the original binary
    search on every input: exhaustively over the whole small-object
    range (including the ≤0 and just-past-[max_small] edges) and
    property-tested over arbitrary sizes. *)

module Sc = Gofree_runtime.Sizeclass

let opt_class = Alcotest.(option int)

let test_exhaustive () =
  for bytes = -8 to Sc.max_small + 1 do
    Alcotest.check opt_class
      (Printf.sprintf "class_for_size %d" bytes)
      (Sc.class_for_size_search bytes)
      (Sc.class_for_size bytes)
  done

let test_class_size_roundtrip () =
  (* every class maps back to itself: its slot size is its own class *)
  for c = 0 to Sc.n_classes - 1 do
    Alcotest.check opt_class
      (Printf.sprintf "class of size-of-class %d" c)
      (Some c)
      (Sc.class_for_size (Sc.class_size c))
  done

let prop_table_matches_search =
  QCheck.Test.make ~count:2000
    ~name:"size->class table agrees with binary search"
    QCheck.(int_range (-4096) (4 * Sc.max_small))
    (fun bytes -> Sc.class_for_size bytes = Sc.class_for_size_search bytes)

let suite =
  [
    Alcotest.test_case "exhaustive 0..max_small+1" `Quick test_exhaustive;
    Alcotest.test_case "class sizes round-trip" `Quick
      test_class_size_roundtrip;
    QCheck_alcotest.to_alcotest prop_table_matches_search;
  ]
