(** Garbage-collector tests: mark reachability, sweep accounting,
    pacing, invariant counters, and the interaction with tcfree. *)

open Gofree_runtime

(* A tiny payload language for GC tests: an object holding a mutable
   list of child addresses. *)
type Heap.payload += Children of int list ref

let trace_children payload k =
  match payload with Children l -> List.iter k !l | _ -> ()

let make_heap ?config () =
  let heap = Heap.create ?config () in
  heap.Heap.trace_payload <- trace_children;
  heap

let alloc heap ?(size = 64) children =
  Heap.alloc_heap heap ~thread:0 ~category:Metrics.Cat_other ~size
    ~payload:(Children (ref children))

let set_roots heap addrs = heap.Heap.iter_roots <- (fun k -> List.iter k !addrs)

let alive heap (obj : Heap.obj) = Heap.find_obj heap obj.Heap.addr <> None

let test_mark_sweep_chain () =
  let heap = make_heap () in
  let c = alloc heap [] in
  let b = alloc heap [ c.Heap.addr ] in
  let a = alloc heap [ b.Heap.addr ] in
  let dead = alloc heap [] in
  let roots = ref [ a.Heap.addr ] in
  set_roots heap roots;
  Gc_collector.collect heap;
  Alcotest.(check bool) "a alive" true (alive heap a);
  Alcotest.(check bool) "b alive" true (alive heap b);
  Alcotest.(check bool) "c alive" true (alive heap c);
  Alcotest.(check bool) "dead swept" false (alive heap dead);
  Alcotest.(check int) "live bytes" (3 * 64)
    heap.Heap.metrics.Metrics.heap_live

let test_cycles_collected () =
  let heap = make_heap () in
  let a = alloc heap [] in
  let b = alloc heap [ a.Heap.addr ] in
  (match a.Heap.payload with
  | Children l -> l := [ b.Heap.addr ]
  | _ -> ());
  let roots = ref [] in
  set_roots heap roots;
  Gc_collector.collect heap;
  Alcotest.(check bool) "cycle swept" false (alive heap a || alive heap b)

let test_repeated_cycles_through_stack_objects () =
  (* regression: mark bits of stack objects must reset between cycles,
     or anything reachable only through them dies at the second cycle *)
  let heap = make_heap () in
  let inner = alloc heap [] in
  let holder =
    Heap.alloc_stack heap ~scope:1 ~category:Metrics.Cat_other ~size:8
      ~payload:(Children (ref [ inner.Heap.addr ]))
  in
  let roots = ref [ holder.Heap.addr ] in
  set_roots heap roots;
  Gc_collector.collect heap;
  Alcotest.(check bool) "alive after cycle 1" true (alive heap inner);
  Gc_collector.collect heap;
  Alcotest.(check bool) "alive after cycle 2" true (alive heap inner);
  Gc_collector.collect heap;
  Alcotest.(check bool) "alive after cycle 3" true (alive heap inner)

let test_mutation_between_cycles () =
  let heap = make_heap () in
  let x = alloc heap [] in
  let y = alloc heap [] in
  let holder = alloc heap [ x.Heap.addr ] in
  let roots = ref [ holder.Heap.addr ] in
  set_roots heap roots;
  Gc_collector.collect heap;
  Alcotest.(check bool) "y dead after cycle 1" false (alive heap y);
  Alcotest.(check bool) "x alive" true (alive heap x);
  (* drop x, but y is gone already *)
  (match holder.Heap.payload with
  | Children l -> l := []
  | _ -> ());
  Gc_collector.collect heap;
  Alcotest.(check bool) "x dead after cycle 2" false (alive heap x);
  Alcotest.(check bool) "holder alive" true (alive heap holder)

let test_heap_to_stack_pointer_detection () =
  (* Go memory invariant 1: a heap object referencing a stack object is
     counted as a violation *)
  let heap = make_heap () in
  let stack_obj =
    Heap.alloc_stack heap ~scope:1 ~category:Metrics.Cat_other ~size:8
      ~payload:(Children (ref []))
  in
  let bad = alloc heap [ stack_obj.Heap.addr ] in
  let roots = ref [ bad.Heap.addr ] in
  set_roots heap roots;
  Gc_collector.collect heap;
  Alcotest.(check int) "violation counted" 1
    heap.Heap.metrics.Metrics.heap_to_stack_pointers

let test_pacing () =
  let config = { Heap.default_config with min_heap = 1000; gogc = 100 } in
  let heap = make_heap ~config () in
  let roots = ref [] in
  set_roots heap roots;
  (* allocations below the threshold never request a cycle *)
  let a = alloc heap ~size:400 [] in
  roots := [ a.Heap.addr ];
  Alcotest.(check bool) "no request yet" false heap.Heap.gc_requested;
  (* crossing min_heap requests one *)
  let b = alloc heap ~size:700 [] in
  roots := b.Heap.addr :: !roots;
  ignore (alloc heap ~size:8 []);
  Alcotest.(check bool) "requested" true heap.Heap.gc_requested;
  Gc_collector.maybe_collect heap;
  Alcotest.(check int) "one cycle" 1 heap.Heap.metrics.Metrics.gc_cycles;
  (* with ~1108 live bytes and GOGC=100, next_gc ≈ 2216 *)
  Alcotest.(check bool) "next_gc doubled" true
    (heap.Heap.next_gc >= 2 * heap.Heap.metrics.Metrics.heap_live)

let test_gc_disabled () =
  let config = { Heap.default_config with gc_disabled = true; min_heap = 100 } in
  let heap = make_heap ~config () in
  set_roots heap (ref []);
  for _ = 1 to 100 do
    ignore (alloc heap ~size:64 [])
  done;
  Gc_collector.maybe_collect heap;
  Alcotest.(check int) "no cycles with GC off" 0
    heap.Heap.metrics.Metrics.gc_cycles;
  Alcotest.(check int) "everything retained" (100 * 64)
    heap.Heap.metrics.Metrics.heap_live

let test_sweep_vs_tcfree_accounting () =
  let heap = make_heap () in
  set_roots heap (ref []);
  let kept = alloc heap ~size:100 [] in
  let freed = alloc heap ~size:100 [] in
  ignore
    (Tcfree.tcfree heap ~thread:0 ~source:Metrics.Src_slice freed.Heap.addr);
  Gc_collector.collect heap;
  ignore kept;
  let m = heap.Heap.metrics in
  Alcotest.(check int) "tcfree bytes" 100 m.Metrics.freed_bytes;
  (* the kept object was unreachable at the cycle: swept, counted as GC *)
  Alcotest.(check int) "gc-freed objects" 1 m.Metrics.gc_freed_objects.(2);
  Alcotest.(check int) "heap empty" 0 m.Metrics.heap_live

let test_empty_spans_return_pages () =
  let heap = make_heap () in
  set_roots heap (ref []);
  for _ = 1 to 50 do
    ignore (alloc heap ~size:4096 [])
  done;
  let mapped = heap.Heap.pages.Pageheap.mapped_pages in
  Alcotest.(check bool) "pages mapped" true (mapped > 0);
  Gc_collector.collect heap;
  (* every object died: all span pages return to the pool except the one
     span still cached by the allocating thread's mcache (Go keeps
     mcaches warm across cycles) *)
  let cached_pages =
    let cache = heap.Heap.caches.(0) in
    Array.fold_left
      (fun acc span ->
        match span with
        | Some (s : Mspan.t) -> acc + s.Mspan.npages
        | None -> acc)
      0 cache.Mcache.spans
  in
  Alcotest.(check int) "all uncached pages free" (mapped - cached_pages)
    heap.Heap.pages.Pageheap.free_pages

let test_poison_mode_marks_payload () =
  let config = { Heap.default_config with poison_on_free = true } in
  let heap = make_heap ~config () in
  set_roots heap (ref []);
  let obj = alloc heap [] in
  Gc_collector.collect heap;
  Alcotest.(check bool) "poisoned on sweep" true obj.Heap.poisoned

(* -------------------------------------------------------------- *)
(* Parallel collector (shared-heap configuration)                   *)
(* -------------------------------------------------------------- *)

let test_parallel_collect_equivalence () =
  (* 4 domains build linked chains concurrently on a shared heap; half
     the chain heads stay rooted.  A parallel cycle (leader + 3 helper
     domains racing over the same grey list and sweep shards) must keep
     exactly the rooted chains alive and sweep the rest — same verdict
     the sequential collector would reach. *)
  let nd = 4 and chains_per = 8 and chain_len = 25 in
  let heap = Heap.create ~nprocs:nd ~shared:true () in
  heap.Heap.trace_payload <- trace_children;
  let heads = Array.make_matrix nd chains_per None in
  let doms =
    Array.init nd (fun d ->
        Domain.spawn (fun () ->
            for c = 0 to chains_per - 1 do
              let tail = ref [] in
              for _ = 1 to chain_len do
                let o =
                  Heap.alloc_heap heap ~thread:d ~category:Metrics.Cat_other
                    ~size:64 ~payload:(Children (ref !tail))
                in
                tail := [ o.Heap.addr ]
              done;
              heads.(d).(c) <- Some !tail
            done))
  in
  Array.iter Domain.join doms;
  (* root the even-numbered chains only *)
  heap.Heap.iter_roots <-
    (fun k ->
      Array.iter
        (fun row ->
          Array.iteri
            (fun c head ->
              if c mod 2 = 0 then
                match head with
                | Some addrs -> List.iter k addrs
                | None -> ())
            row)
        heads);
  (* STW rendezvous: leader starts the cycle, then everyone helps *)
  let cycle = Gc_collector.Par.start heap in
  let helpers =
    Array.init (nd - 1) (fun _ ->
        Domain.spawn (fun () -> Gc_collector.Par.run_helper cycle))
  in
  Gc_collector.Par.run_leader cycle;
  Array.iter Domain.join helpers;
  let m = Heap.merged_metrics heap in
  let total = nd * chains_per * chain_len in
  let live = total / 2 and dead = total / 2 in
  Alcotest.(check int) "marked exactly the rooted half" live
    m.Metrics.gc_marked_objects;
  Alcotest.(check int) "swept exactly the unrooted half" dead
    m.Metrics.gc_swept_objects;
  Alcotest.(check int) "live bytes" (live * 64) m.Metrics.heap_live;
  (* rooted chain members survived, down to the deepest link *)
  Array.iter
    (fun row ->
      Array.iteri
        (fun c head ->
          match head with
          | Some [ addr ] ->
            Alcotest.(check bool) "head fate matches rooting"
              (c mod 2 = 0)
              (Heap.find_obj heap addr <> None)
          | _ -> ())
        row)
    heads;
  match Metrics.check_conservation ~live_objects:live m with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("conservation violated: " ^ msg)

let test_parallel_collect_during_allocation_pressure () =
  (* Repeated STW cycles interleaved with fresh allocation from every
     domain: mark bits must reset between cycles and the accounting
     must stay conserved across the whole history. *)
  let nd = 4 in
  let heap = Heap.create ~nprocs:nd ~shared:true () in
  heap.Heap.trace_payload <- trace_children;
  let rooted = ref [] in
  let rooted_mutex = Mutex.create () in
  heap.Heap.iter_roots <- (fun k -> List.iter k !rooted);
  for _round = 1 to 3 do
    let doms =
      Array.init nd (fun d ->
          Domain.spawn (fun () ->
              for i = 1 to 150 do
                let o =
                  Heap.alloc_heap heap ~thread:d ~category:Metrics.Cat_other
                    ~size:64 ~payload:(Children (ref []))
                in
                (* keep every 10th object; the rest are garbage *)
                if i mod 10 = 0 then begin
                  Mutex.lock rooted_mutex;
                  rooted := o.Heap.addr :: !rooted;
                  Mutex.unlock rooted_mutex
                end
              done))
    in
    Array.iter Domain.join doms;
    let cycle = Gc_collector.Par.start heap in
    let helpers =
      Array.init (nd - 1) (fun _ ->
          Domain.spawn (fun () -> Gc_collector.Par.run_helper cycle))
    in
    Gc_collector.Par.run_leader cycle;
    Array.iter Domain.join helpers
  done;
  let m = Heap.merged_metrics heap in
  let live = List.length !rooted in
  Alcotest.(check int) "rooted objects survive all cycles" (live * 64)
    m.Metrics.heap_live;
  Alcotest.(check int) "three cycles ran" 3 m.Metrics.gc_cycles;
  List.iter
    (fun addr ->
      Alcotest.(check bool) "rooted object present" true
        (Heap.find_obj heap addr <> None))
    !rooted;
  match Metrics.check_conservation ~live_objects:live m with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("conservation violated: " ^ msg)

let suite =
  [
    Alcotest.test_case "mark-sweep chain" `Quick test_mark_sweep_chain;
    Alcotest.test_case "cycles collected" `Quick test_cycles_collected;
    Alcotest.test_case "stack objects across cycles" `Quick
      test_repeated_cycles_through_stack_objects;
    Alcotest.test_case "mutation between cycles" `Quick
      test_mutation_between_cycles;
    Alcotest.test_case "heap→stack pointer detection" `Quick
      test_heap_to_stack_pointer_detection;
    Alcotest.test_case "GOGC pacing" `Quick test_pacing;
    Alcotest.test_case "GC disabled" `Quick test_gc_disabled;
    Alcotest.test_case "sweep vs tcfree accounting" `Quick
      test_sweep_vs_tcfree_accounting;
    Alcotest.test_case "empty spans return pages" `Quick
      test_empty_spans_return_pages;
    Alcotest.test_case "poison mode" `Quick test_poison_mode_marks_payload;
    Alcotest.test_case "parallel collect = sequential verdict" `Quick
      test_parallel_collect_equivalence;
    Alcotest.test_case "parallel collect under allocation pressure" `Quick
      test_parallel_collect_during_allocation_pressure;
  ]
