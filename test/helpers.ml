(** Shared helpers for the test suites. *)

let compile ?(config = Gofree_core.Config.gofree) src =
  Gofree_core.Pipeline.compile ~config src

let compile_go src = Gofree_core.Pipeline.compile_go src

let parse_check src = Gofree_core.Pipeline.parse_and_check src

(** Run a source string; returns (output, metrics). *)
let run ?(config = Gofree_core.Config.gofree) ?run_config src =
  let r =
    Gofree_interp.Runner.compile_and_run ~gofree_config:config ?run_config
      src
  in
  (r.Gofree_interp.Runner.output, r.Gofree_interp.Runner.metrics)

(** Run under the mock poison tcfree of §6.8; any wrong free raises
    {!Gofree_interp.Value.Corruption}. *)
let run_poison ?(config = Gofree_core.Config.gofree) src =
  let run_config =
    {
      Gofree_interp.Interp.default_config with
      heap_config =
        { Gofree_runtime.Heap.default_config with poison_on_free = true };
    }
  in
  run ~config ~run_config src

let output ?config src = fst (run ?config src)

(** Assert that the program produces the same output under stock Go,
    GoFree, and GoFree-with-poison — the robustness check. *)
let check_all_settings_agree ~name src =
  let go = output ~config:Gofree_core.Config.go src in
  let gf = output ~config:Gofree_core.Config.gofree src in
  let gp = fst (run_poison src) in
  Alcotest.(check string) (name ^ ": Go vs GoFree") go gf;
  Alcotest.(check string) (name ^ ": Go vs GoFree+poison") go gp

(** Names of variables with tcfree inserted, per function (field frees
    show as ["var.field"]). *)
let inserted_vars compiled =
  List.map
    (fun { Gofree_core.Instrument.ins_func; ins_var; ins_field; ins_kind }
         ->
      ( ins_func,
        (ins_var.Minigo.Tast.v_name
        ^
        match ins_field with
        | Some (_, fname) -> "." ^ fname
        | None -> ""),
        match ins_kind with
        | Minigo.Tast.Free_slice -> "slice"
        | Minigo.Tast.Free_map -> "map"
        | Minigo.Tast.Free_obj -> "obj" ))
    compiled.Gofree_core.Pipeline.c_inserted

let var_props compiled ~func ~var =
  match
    Gofree_core.Report.var_properties
      compiled.Gofree_core.Pipeline.c_analysis ~func ~var
  with
  | Some l -> l
  | None -> Alcotest.failf "no location for %s.%s" func var

let points_to compiled ~func ~var =
  Gofree_core.Report.points_to_of_var
    compiled.Gofree_core.Pipeline.c_analysis ~func ~var
