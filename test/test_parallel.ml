(** The multi-domain runtime ([--domains N]).

    The hard gate: [--domains 1] must be byte-identical to the
    sequential scheduler — same output, same step count, same metrics
    JSON (modulo the one wall-clock field) — across every Table 6
    workload, the goroutine fan-out workload and all three engines.
    Multi-domain runs are nondeterministically interleaved, so they are
    held to conservation invariants instead: every allocation is
    accounted for by exactly one of tcfree / GC / still-live, outputs
    are a line permutation of the sequential run, and the work-stealing
    scheduler actually moves goroutines. *)

module Rt = Gofree_runtime
module W = Gofree_workloads.Workloads
module Reg = Gofree_obs.Registry
module Wsq = Gofree_sched.Wsq

let engines =
  [
    ("reference", Gofree_interp.Interp.Eng_reference);
    ("closure", Gofree_interp.Interp.Eng_closure);
    ("bytecode", Gofree_interp.Interp.Eng_bytecode);
  ]

let run_mode ~engine ~domains ?(seed = 42) src =
  let run_config =
    {
      Gofree_interp.Interp.default_config with
      heap_config =
        {
          Rt.Heap.default_config with
          min_heap = 96 * 1024;  (* small heap: force real GC activity *)
        };
      engine;
      domains;
      seed = Int64.of_int seed;
    }
  in
  Gofree_interp.Runner.compile_and_run ~run_config src

let metrics_fingerprint (m : Rt.Metrics.t) : string =
  m.Rt.Metrics.gc_time_ns <- 0L;
  Gofree_obs.Json.to_string_pretty (Rt.Metrics.to_json m)

(* ---------------------------------------------------------------- *)
(* The hard gate: --domains 1 == sequential, byte for byte           *)
(* ---------------------------------------------------------------- *)

let check_identity ~name ~engine src =
  let seq = run_mode ~engine ~domains:0 src in
  let par = run_mode ~engine ~domains:1 src in
  Alcotest.(check string)
    (name ^ ": output")
    seq.Gofree_interp.Runner.output par.Gofree_interp.Runner.output;
  Alcotest.(check int)
    (name ^ ": steps")
    seq.Gofree_interp.Runner.steps par.Gofree_interp.Runner.steps;
  Alcotest.(check bool)
    (name ^ ": panicked")
    seq.Gofree_interp.Runner.panicked par.Gofree_interp.Runner.panicked;
  Alcotest.(check string)
    (name ^ ": metrics")
    (metrics_fingerprint seq.Gofree_interp.Runner.metrics)
    (metrics_fingerprint par.Gofree_interp.Runner.metrics)

let test_identity_workloads () =
  List.iter
    (fun w ->
      List.iter
        (fun (ename, engine) ->
          check_identity
            ~name:(w.W.w_name ^ "/" ^ ename)
            ~engine (W.source_of w))
        engines)
    W.all

let test_identity_fanout () =
  (* goroutine-bearing program: the single-domain scheduler must replay
     the sequential interleaving exactly — slice budgets, goroutine ids,
     mcache assignment and all *)
  let src = W.source_of W.fanout in
  List.iter
    (fun (ename, engine) ->
      check_identity ~name:("fanout/" ^ ename) ~engine src)
    engines

(* ---------------------------------------------------------------- *)
(* Multi-domain invariants                                           *)
(* ---------------------------------------------------------------- *)

let sorted_lines s =
  String.split_on_char '\n' s |> List.sort compare |> String.concat "\n"

let sum = Array.fold_left ( + ) 0

let test_multi_domain_conservation () =
  let src = W.source_of W.fanout in
  let seq = run_mode ~engine:Gofree_interp.Interp.Eng_bytecode ~domains:0 src
  and par = run_mode ~engine:Gofree_interp.Interp.Eng_bytecode ~domains:4 src in
  let sm = seq.Gofree_interp.Runner.metrics
  and pm = par.Gofree_interp.Runner.metrics in
  (* same program, different interleaving: outputs are permutations *)
  Alcotest.(check string)
    "output is a line permutation of sequential"
    (sorted_lines seq.Gofree_interp.Runner.output)
    (sorted_lines par.Gofree_interp.Runner.output);
  (* allocation volume is interleaving-independent *)
  Alcotest.(check int)
    "heap alloc count" (sum sm.Rt.Metrics.heap_allocs)
    (sum pm.Rt.Metrics.heap_allocs);
  Alcotest.(check int)
    "alloced bytes" sm.Rt.Metrics.alloced_bytes pm.Rt.Metrics.alloced_bytes;
  Alcotest.(check int)
    "tcfree call count" sm.Rt.Metrics.tcfree_calls pm.Rt.Metrics.tcfree_calls;
  (* conservation: the final sweep freed everything still live *)
  (match Rt.Metrics.check_conservation ~live_objects:0 pm with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("conservation violated: " ^ msg));
  Alcotest.(check int)
    "no heap-to-stack pointers" 0 pm.Rt.Metrics.heap_to_stack_pointers;
  Alcotest.(check bool) "ran some GC" true (pm.Rt.Metrics.gc_cycles > 0)

let sched_counter name =
  Reg.counter_value (Reg.counter Reg.runtime name)

let test_work_stealing_observable () =
  (* With telemetry on, a 4-domain fan-out run must publish nonzero
     steal/spawn/yield counters.  Stealing depends on timing, so allow
     a few attempts before declaring the scheduler inert. *)
  Reg.acquire_runtime ();
  Fun.protect ~finally:Reg.release_runtime @@ fun () ->
  let src = W.source_of ~size:12 W.fanout in
  let steals0 = sched_counter "gofree_sched_steals_total" in
  let spawns0 = sched_counter "gofree_sched_spawns_total" in
  let rec attempt n =
    let _ =
      run_mode ~engine:Gofree_interp.Interp.Eng_bytecode ~domains:4
        ~seed:(100 + n) src
    in
    if sched_counter "gofree_sched_steals_total" > steals0 then ()
    else if n < 5 then attempt (n + 1)
    else Alcotest.fail "no goroutine was ever stolen across 6 runs"
  in
  attempt 0;
  Alcotest.(check bool)
    "spawns published" true
    (sched_counter "gofree_sched_spawns_total" > spawns0);
  Alcotest.(check bool)
    "yields published" true
    (sched_counter "gofree_sched_yields_total" > 0)

(* ---------------------------------------------------------------- *)
(* Concurrency primitives                                            *)
(* ---------------------------------------------------------------- *)

let test_wsq_concurrent () =
  (* 4 domains hammer one deque pair: producers push, a thief steals
     halves; every pushed item must be popped exactly once. *)
  let own = Wsq.create () and thief = Wsq.create () in
  let n_per = 5_000 and producers = 2 in
  let seen = Atomic.make 0 in
  let drain q =
    let rec go () =
      match Wsq.pop q with
      | Some _ ->
        Atomic.incr seen;
        go ()
      | None -> ()
    in
    go ()
  in
  let doms =
    Array.init producers (fun p ->
        Domain.spawn (fun () ->
            for i = 1 to n_per do
              Wsq.push own ((p * n_per) + i)
            done))
  in
  let stealer =
    Domain.spawn (fun () ->
        for _ = 1 to 200 do
          ignore (Wsq.steal_half ~victim:own ~into:thief);
          drain thief
        done)
  in
  Array.iter Domain.join doms;
  Domain.join stealer;
  drain own;
  ignore (Wsq.steal_half ~victim:own ~into:thief);
  drain thief;
  drain own;
  Alcotest.(check int)
    "all pushed items popped exactly once" (producers * n_per)
    (Atomic.get seen)

let test_metrics_striping () =
  (* Per-domain stripes written in parallel must merge into exact sums
     — this is the satellite replacing plain [int ref] counters. *)
  let shards = Array.init 4 (fun _ -> Rt.Metrics.create ()) in
  let per = 10_000 in
  let doms =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            for _ = 1 to per do
              Rt.Metrics.count_alloc shards.(d) ~category:Rt.Metrics.Cat_slice
                ~heap:true ~bytes:8;
              Rt.Metrics.count_giveup shards.(d) Rt.Metrics.Ownership_changed
            done))
  in
  Array.iter Domain.join doms;
  let m = Rt.Metrics.merged shards in
  Alcotest.(check int) "alloc count" (4 * per) (sum m.Rt.Metrics.heap_allocs);
  Alcotest.(check int) "alloc bytes" (4 * per * 8) m.Rt.Metrics.alloced_bytes;
  Alcotest.(check int)
    "giveup count" (4 * per)
    m.Rt.Metrics.giveups.(Rt.Metrics.giveup_index
                            Rt.Metrics.Ownership_changed)

let test_sampler_locked () =
  (* Satellite: the sampler ring is mutex-guarded, so concurrent
     recorders from several domains never corrupt it. *)
  let s = Rt.Sampler.create ~every:1 () in
  let m = Rt.Metrics.create () in
  let doms =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to 1000 do
              Rt.Sampler.record s ~step:((d * 1000) + i) ~span_bytes:0 m
            done))
  in
  Array.iter Domain.join doms;
  Alcotest.(check bool)
    "ring holds samples" true
    (List.length (Rt.Sampler.samples s) > 0)

let suite =
  [
    Alcotest.test_case "domains=1 identical: six workloads x three engines"
      `Slow test_identity_workloads;
    Alcotest.test_case "domains=1 identical: goroutine fan-out" `Slow
      test_identity_fanout;
    Alcotest.test_case "domains=4 conservation invariants" `Quick
      test_multi_domain_conservation;
    Alcotest.test_case "work stealing moves goroutines" `Quick
      test_work_stealing_observable;
    Alcotest.test_case "wsq: concurrent push/pop/steal conserve items"
      `Quick test_wsq_concurrent;
    Alcotest.test_case "metrics stripes merge to exact sums" `Quick
      test_metrics_striping;
    Alcotest.test_case "sampler ring safe under concurrent recorders"
      `Quick test_sampler_locked;
  ]
