(** Differential tests for the closure-compiled interpreter: the lowered
    execution mode must be observationally identical to the reference
    tree-walker — same program output, same step count, and the same
    runtime metrics down to the byte (alloc/free volumes, free ratio
    numerator and denominator, GC cycle count, maxheap, tcfree
    attempt/success/give-up counters).

    The two modes share the allocator/map/call helpers, so a divergence
    here means the compiler changed evaluation order or skipped/added a
    safepoint or allocation somewhere. *)

module Rt = Gofree_runtime
module W = Gofree_workloads.Workloads

let run_mode ~compiled ?(config = Gofree_core.Config.gofree) src =
  let run_config =
    {
      Gofree_interp.Interp.default_config with
      heap_config =
        {
          Rt.Heap.default_config with
          min_heap = 96 * 1024;  (* small heap: force real GC activity *)
          grow_map_free_old = config.Gofree_core.Config.insert_tcfree;
        };
      compiled;
    }
  in
  Gofree_interp.Runner.compile_and_run ~gofree_config:config ~run_config src

(* Metrics comparison via the JSON export (covers every counter,
   including per-category and per-giveup arrays), with the one
   wall-clock field normalized out. *)
let metrics_fingerprint (m : Rt.Metrics.t) : string =
  m.Rt.Metrics.gc_time_ns <- 0L;
  Gofree_obs.Json.to_string_pretty (Rt.Metrics.to_json m)

let check_identical ~name ?config src =
  let r_ref = run_mode ~compiled:false ?config src in
  let r_cmp = run_mode ~compiled:true ?config src in
  Alcotest.(check string)
    (name ^ ": output")
    r_ref.Gofree_interp.Runner.output r_cmp.Gofree_interp.Runner.output;
  Alcotest.(check int)
    (name ^ ": steps")
    r_ref.Gofree_interp.Runner.steps r_cmp.Gofree_interp.Runner.steps;
  Alcotest.(check bool)
    (name ^ ": panicked")
    r_ref.Gofree_interp.Runner.panicked r_cmp.Gofree_interp.Runner.panicked;
  Alcotest.(check string)
    (name ^ ": metrics")
    (metrics_fingerprint r_ref.Gofree_interp.Runner.metrics)
    (metrics_fingerprint r_cmp.Gofree_interp.Runner.metrics)

(* ---- the six workload proxies -------------------------------------- *)

let test_workload (w : W.t) () =
  let size = max 10 (w.W.w_default_size / 5) in
  let src = W.source_of ~size w in
  check_identical ~name:w.W.w_name src;
  (* the Go setting exercises the no-tcfree configuration too *)
  check_identical ~name:(w.W.w_name ^ " (go)")
    ~config:Gofree_core.Config.go src

let workload_cases =
  List.map
    (fun (w : W.t) ->
      Alcotest.test_case ("workload " ^ w.W.w_name) `Quick (test_workload w))
    W.all

(* ---- feature-dense programs ---------------------------------------- *)

(* Goroutines, defers and a cross-fiber map: exercises the scheduler
   interleaving, defer argument pinning and interned spawn targets. *)
let src_goroutines =
  {|
var results map[int]int

func worker(base int, n int) {
  s := make([]int, 0, 1)
  for i := 0; i < n; i = i + 1 {
    s = append(s, base*100+i)
  }
  total := 0
  for i := 0; i < len(s); i = i + 1 {
    total = total + s[i]
  }
  results[base] = total
}

func cleanup(tag int) {
  results[tag] = results[tag] + 1000000
}

func main() {
  results = make(map[int]int)
  defer cleanup(1)
  for g := 0; g < 4; g = g + 1 {
    go worker(g, 200)
  }
  spin := 0
  for i := 0; i < 2000; i = i + 1 {
    spin = spin + i
  }
  println(spin)
}
|}

(* Panic/recover through nested calls with defers on the unwind path. *)
let src_panic_recover =
  {|
func guard() string {
  msg := recover()
  println("recovered:", msg)
  return msg
}

func risky(n int) int {
  defer guard()
  buf := make([]int, 4)
  if n > 2 {
    panic("too big")
  }
  return buf[n]
}

func main() {
  println(risky(1))
  println(risky(5))
  println("done")
}
|}

(* Map churn with growth (GrowMapAndFreeOld), deletes and range. *)
let src_map_churn =
  {|
func main() {
  m := make(map[string]int)
  for i := 0; i < 300; i = i + 1 {
    m[itoa(i)] = i * 2
  }
  for i := 0; i < 150; i = i + 1 {
    delete(m, itoa(i*2))
  }
  sum := 0
  for k := range m {
    sum = sum + m[k]
  }
  println(len(m), sum)
}
|}

(* Struct/pointer traffic: nested field addresses, boxed locals, slices
   of structs — the eval_addr / owner-of-base corner cases. *)
let src_structs =
  {|
type Point struct { x int; y int }
type Box struct { p Point; tag int }

func bump(pt *Point) {
  pt.x = pt.x + 1
}

func main() {
  boxes := make([]Box, 8)
  for i := 0; i < len(boxes); i = i + 1 {
    boxes[i] = Box{p: Point{x: i, y: i * 2}, tag: i}
  }
  for i := 0; i < len(boxes); i = i + 1 {
    bump(&boxes[i].p)
  }
  total := 0
  for i := 0; i < len(boxes); i = i + 1 {
    total = total + boxes[i].p.x + boxes[i].p.y
  }
  b := Box{p: Point{x: 1, y: 2}, tag: 9}
  q := &b.p
  q.y = 40
  println(total, b.p.y)
}
|}

(* Slices: literals, sub-slicing, copy, append growth and shrink. *)
let src_slices =
  {|
func main() {
  base := []int{1, 2, 3, 4, 5, 6, 7, 8}
  view := base[2:6]
  out := make([]int, len(view))
  n := copy(out, view)
  for i := 0; i < 50; i = i + 1 {
    out = append(out, i*i)
  }
  s := "hello world"
  sub := substr(s, 6, len(s))
  total := 0
  for i := 0; i < len(out); i = i + 1 {
    total = total + out[i]
  }
  println(n, total, sub, cap(out))
}
|}

let feature_cases =
  List.map
    (fun (name, src) ->
      Alcotest.test_case name `Quick (fun () ->
          check_identical ~name src;
          check_identical ~name:(name ^ " (go)")
            ~config:Gofree_core.Config.go src))
    [
      ("goroutines+defer", src_goroutines);
      ("panic+recover", src_panic_recover);
      ("map churn", src_map_churn);
      ("structs+pointers", src_structs);
      ("slices", src_slices);
    ]

(* ---- random programs ----------------------------------------------- *)

let prop_random_identical =
  QCheck.Test.make ~count:40
    ~name:"random programs: compiled == reference metrics"
    QCheck.(make ~print:string_of_int Gen.(0 -- 1_000_000))
    (fun seed ->
      let src = Gen_program.generate seed in
      let r_ref = run_mode ~compiled:false src in
      let r_cmp = run_mode ~compiled:true src in
      if
        not
          (String.equal r_ref.Gofree_interp.Runner.output
             r_cmp.Gofree_interp.Runner.output)
      then
        QCheck.Test.fail_reportf "outputs differ for seed %d:\n%s" seed src;
      if r_ref.Gofree_interp.Runner.steps <> r_cmp.Gofree_interp.Runner.steps
      then QCheck.Test.fail_reportf "step counts differ for seed %d" seed;
      if
        not
          (String.equal
             (metrics_fingerprint r_ref.Gofree_interp.Runner.metrics)
             (metrics_fingerprint r_cmp.Gofree_interp.Runner.metrics))
      then QCheck.Test.fail_reportf "metrics differ for seed %d:\n%s" seed src;
      true)

let suite =
  workload_cases @ feature_cases
  @ [ QCheck_alcotest.to_alcotest prop_random_identical ]
