(** Differential tests for the lowered execution engines: the
    closure-compiled mode and the bytecode VM must each be
    observationally identical to the reference tree-walker — same
    program output, same step count, and the same runtime metrics down
    to the byte (alloc/free volumes, free ratio numerator and
    denominator, GC cycle count, maxheap, tcfree
    attempt/success/give-up counters).

    The three engines share the allocator/map/call helpers, so a
    divergence here means a lowering changed evaluation order or
    skipped/added a safepoint or allocation somewhere. *)

module Rt = Gofree_runtime
module W = Gofree_workloads.Workloads

let engines =
  [
    ("reference", Gofree_interp.Interp.Eng_reference);
    ("closure", Gofree_interp.Interp.Eng_closure);
    ("bytecode", Gofree_interp.Interp.Eng_bytecode);
  ]

let run_mode ~engine ?(config = Gofree_core.Config.gofree) src =
  let run_config =
    {
      Gofree_interp.Interp.default_config with
      heap_config =
        {
          Rt.Heap.default_config with
          min_heap = 96 * 1024;  (* small heap: force real GC activity *)
          grow_map_free_old = config.Gofree_core.Config.insert_tcfree;
        };
      engine;
    }
  in
  Gofree_interp.Runner.compile_and_run ~gofree_config:config ~run_config src

(* Metrics comparison via the JSON export (covers every counter,
   including per-category and per-giveup arrays), with the one
   wall-clock field normalized out. *)
let metrics_fingerprint (m : Rt.Metrics.t) : string =
  m.Rt.Metrics.gc_time_ns <- 0L;
  Gofree_obs.Json.to_string_pretty (Rt.Metrics.to_json m)

(* Run under every engine and require byte-identical observables,
   pairwise against the reference walker. *)
let check_identical ~name ?config src =
  let r_ref = run_mode ~engine:Gofree_interp.Interp.Eng_reference ?config src in
  List.iter
    (fun (ename, engine) ->
      if engine <> Gofree_interp.Interp.Eng_reference then begin
        let r_cmp = run_mode ~engine ?config src in
        Alcotest.(check string)
          (name ^ ": output (" ^ ename ^ ")")
          r_ref.Gofree_interp.Runner.output r_cmp.Gofree_interp.Runner.output;
        Alcotest.(check int)
          (name ^ ": steps (" ^ ename ^ ")")
          r_ref.Gofree_interp.Runner.steps r_cmp.Gofree_interp.Runner.steps;
        Alcotest.(check bool)
          (name ^ ": panicked (" ^ ename ^ ")")
          r_ref.Gofree_interp.Runner.panicked
          r_cmp.Gofree_interp.Runner.panicked;
        Alcotest.(check string)
          (name ^ ": metrics (" ^ ename ^ ")")
          (metrics_fingerprint r_ref.Gofree_interp.Runner.metrics)
          (metrics_fingerprint r_cmp.Gofree_interp.Runner.metrics)
      end)
    engines

(* ---- the six workload proxies -------------------------------------- *)

let test_workload (w : W.t) () =
  let size = max 10 (w.W.w_default_size / 5) in
  let src = W.source_of ~size w in
  check_identical ~name:w.W.w_name src;
  (* the Go setting exercises the no-tcfree configuration too *)
  check_identical ~name:(w.W.w_name ^ " (go)")
    ~config:Gofree_core.Config.go src

let workload_cases =
  List.map
    (fun (w : W.t) ->
      Alcotest.test_case ("workload " ^ w.W.w_name) `Quick (test_workload w))
    W.all

(* ---- feature-dense programs ---------------------------------------- *)

(* Goroutines, defers and a cross-fiber map: exercises the scheduler
   interleaving, defer argument pinning and interned spawn targets. *)
let src_goroutines =
  {|
var results map[int]int

func worker(base int, n int) {
  s := make([]int, 0, 1)
  for i := 0; i < n; i = i + 1 {
    s = append(s, base*100+i)
  }
  total := 0
  for i := 0; i < len(s); i = i + 1 {
    total = total + s[i]
  }
  results[base] = total
}

func cleanup(tag int) {
  results[tag] = results[tag] + 1000000
}

func main() {
  results = make(map[int]int)
  defer cleanup(1)
  for g := 0; g < 4; g = g + 1 {
    go worker(g, 200)
  }
  spin := 0
  for i := 0; i < 2000; i = i + 1 {
    spin = spin + i
  }
  println(spin)
}
|}

(* Panic/recover through nested calls with defers on the unwind path. *)
let src_panic_recover =
  {|
func guard() string {
  msg := recover()
  println("recovered:", msg)
  return msg
}

func risky(n int) int {
  defer guard()
  buf := make([]int, 4)
  if n > 2 {
    panic("too big")
  }
  return buf[n]
}

func main() {
  println(risky(1))
  println(risky(5))
  println("done")
}
|}

(* Map churn with growth (GrowMapAndFreeOld), deletes and range. *)
let src_map_churn =
  {|
func main() {
  m := make(map[string]int)
  for i := 0; i < 300; i = i + 1 {
    m[itoa(i)] = i * 2
  }
  for i := 0; i < 150; i = i + 1 {
    delete(m, itoa(i*2))
  }
  sum := 0
  for k := range m {
    sum = sum + m[k]
  }
  println(len(m), sum)
}
|}

(* Struct/pointer traffic: nested field addresses, boxed locals, slices
   of structs — the eval_addr / owner-of-base corner cases, plus the
   bytecode engine's struct-field inline caches. *)
let src_structs =
  {|
type Point struct { x int; y int }
type Box struct { p Point; tag int }

func bump(pt *Point) {
  pt.x = pt.x + 1
}

func main() {
  boxes := make([]Box, 8)
  for i := 0; i < len(boxes); i = i + 1 {
    boxes[i] = Box{p: Point{x: i, y: i * 2}, tag: i}
  }
  for i := 0; i < len(boxes); i = i + 1 {
    bump(&boxes[i].p)
  }
  total := 0
  for i := 0; i < len(boxes); i = i + 1 {
    total = total + boxes[i].p.x + boxes[i].p.y
  }
  b := Box{p: Point{x: 1, y: 2}, tag: 9}
  q := &b.p
  q.y = 40
  println(total, b.p.y)
}
|}

(* Slices: literals, sub-slicing, copy, append growth and shrink. *)
let src_slices =
  {|
func main() {
  base := []int{1, 2, 3, 4, 5, 6, 7, 8}
  view := base[2:6]
  out := make([]int, len(view))
  n := copy(out, view)
  for i := 0; i < 50; i = i + 1 {
    out = append(out, i*i)
  }
  s := "hello world"
  sub := substr(s, 6, len(s))
  total := 0
  for i := 0; i < len(out); i = i + 1 {
    total = total + out[i]
  }
  println(n, total, sub, cap(out))
}
|}

(* Repeated same-key map reads with interleaved stores and deletes: the
   map-site inline cache's hit and invalidation paths must not change
   what a lookup observes. *)
let src_ic_invalidation =
  {|
func main() {
  m := make(map[string]int)
  m["hot"] = 1
  total := 0
  for i := 0; i < 100; i = i + 1 {
    total = total + m["hot"]
    if i == 30 {
      m["hot"] = 7
    }
    if i == 60 {
      delete(m, "hot")
    }
    if i == 80 {
      m["hot"] = 3
    }
  }
  for i := 0; i < 40; i = i + 1 {
    m[itoa(i)] = i
    total = total + m["hot"]
  }
  println(total, len(m))
}
|}

let feature_cases =
  List.map
    (fun (name, src) ->
      Alcotest.test_case name `Quick (fun () ->
          check_identical ~name src;
          check_identical ~name:(name ^ " (go)")
            ~config:Gofree_core.Config.go src))
    [
      ("goroutines+defer", src_goroutines);
      ("panic+recover", src_panic_recover);
      ("map churn", src_map_churn);
      ("structs+pointers", src_structs);
      ("slices", src_slices);
      ("ic invalidation", src_ic_invalidation);
    ]

(* ---- random programs ----------------------------------------------- *)

let prop_random_identical =
  QCheck.Test.make ~count:40
    ~name:"random programs: all engines == reference metrics"
    QCheck.(make ~print:string_of_int Gen.(0 -- 1_000_000))
    (fun seed ->
      let src = Gen_program.generate seed in
      let r_ref = run_mode ~engine:Gofree_interp.Interp.Eng_reference src in
      List.iter
        (fun (ename, engine) ->
          if engine <> Gofree_interp.Interp.Eng_reference then begin
            let r_cmp = run_mode ~engine src in
            if
              not
                (String.equal r_ref.Gofree_interp.Runner.output
                   r_cmp.Gofree_interp.Runner.output)
            then
              QCheck.Test.fail_reportf "%s output differs for seed %d:\n%s"
                ename seed src;
            if
              r_ref.Gofree_interp.Runner.steps
              <> r_cmp.Gofree_interp.Runner.steps
            then
              QCheck.Test.fail_reportf "%s step count differs for seed %d"
                ename seed;
            if
              not
                (String.equal
                   (metrics_fingerprint r_ref.Gofree_interp.Runner.metrics)
                   (metrics_fingerprint r_cmp.Gofree_interp.Runner.metrics))
            then
              QCheck.Test.fail_reportf "%s metrics differ for seed %d:\n%s"
                ename seed src
          end)
        engines;
      true)

let suite =
  workload_cases @ feature_cases
  @ [ QCheck_alcotest.to_alcotest prop_random_identical ]
