(** tcfree runtime tests (paper §5): the fast small-object path, the
    2-step large-object path (fig. 9), and every give-up condition. *)

open Gofree_runtime

let alloc heap ?(thread = 0) ?(size = 64) () =
  Heap.alloc_heap heap ~thread ~category:Metrics.Cat_slice ~size
    ~payload:Heap.No_payload

let free heap ?(thread = 0) addr =
  Tcfree.tcfree heap ~thread ~source:Metrics.Src_slice addr

let check_freed what outcome bytes =
  match outcome with
  | Tcfree.Freed n -> Alcotest.(check int) what bytes n
  | Tcfree.Gave_up _ -> Alcotest.failf "%s: unexpected give-up" what

let check_gave_up what outcome reason =
  match outcome with
  | Tcfree.Gave_up r ->
    Alcotest.(check int) what
      (Metrics.giveup_index reason)
      (Metrics.giveup_index r)
  | Tcfree.Freed _ -> Alcotest.failf "%s: unexpected free" what

let test_small_fast_path () =
  let heap = Heap.create () in
  let obj = alloc heap () in
  let span =
    match obj.Heap.placement with
    | Heap.On_heap (s, _) -> s
    | _ -> assert false
  in
  let before = span.Mspan.free_index in
  check_freed "small free" (free heap obj.Heap.addr) 64;
  Alcotest.(check bool) "object gone" true
    (Heap.find_obj heap obj.Heap.addr = None);
  Alcotest.(check int) "free index reverted" (before - 1)
    span.Mspan.free_index;
  Alcotest.(check int) "bytes counted" 64
    heap.Heap.metrics.Metrics.freed_bytes;
  Alcotest.(check int) "heap live back to zero" 0
    heap.Heap.metrics.Metrics.heap_live

let test_double_free_tolerated () =
  let heap = Heap.create () in
  let obj = alloc heap () in
  check_freed "first" (free heap obj.Heap.addr) 64;
  check_gave_up "second is a tolerated no-op" (free heap obj.Heap.addr)
    Metrics.Already_freed;
  Alcotest.(check int) "bytes counted once" 64
    heap.Heap.metrics.Metrics.freed_bytes

let test_stack_object_ignored () =
  let heap = Heap.create () in
  let obj =
    Heap.alloc_stack heap ~scope:1 ~category:Metrics.Cat_slice ~size:64
      ~payload:Heap.No_payload
  in
  check_gave_up "stack ignored" (free heap obj.Heap.addr)
    Metrics.Stack_object;
  Alcotest.(check bool) "stack object untouched" true
    (Heap.find_obj heap obj.Heap.addr <> None)

let test_nil_and_garbage_addresses () =
  let heap = Heap.create () in
  check_gave_up "nil" (free heap 0) Metrics.Not_an_object;
  check_gave_up "negative" (free heap (-3)) Metrics.Not_an_object;
  check_gave_up "never allocated" (free heap 123456)
    Metrics.Already_freed

let test_gc_running_backoff () =
  let heap = Heap.create () in
  let obj = alloc heap () in
  (* keep the object reachable, then run a cycle: the simulated
     concurrent window opens *)
  heap.Heap.iter_roots <- (fun k -> k obj.Heap.addr);
  Gc_collector.collect heap;
  Alcotest.(check bool) "window open" true (Heap.gc_running heap);
  check_gave_up "backs off while GC runs" (free heap obj.Heap.addr)
    Metrics.Gc_running;
  (* window expires after enough allocations *)
  for _ = 1 to Heap.default_config.Heap.concurrent_gc_window do
    ignore (alloc heap ())
  done;
  Alcotest.(check bool) "window closed" false (Heap.gc_running heap)

let test_ownership_change_backoff () =
  let heap = Heap.create ~nprocs:2 () in
  let obj = alloc heap ~thread:0 () in
  check_gave_up "other thread cannot free" (free heap ~thread:1 obj.Heap.addr)
    Metrics.Ownership_changed;
  (* the rightful owner still can *)
  check_freed "owner frees" (free heap ~thread:0 obj.Heap.addr) 64

let test_span_swapped_out_backoff () =
  let heap = Heap.create () in
  let obj = alloc heap ~size:8192 () in
  let span =
    match obj.Heap.placement with
    | Heap.On_heap (s, _) -> s
    | _ -> assert false
  in
  (* exhaust the span so the mcache swaps it out *)
  let needed = span.Mspan.nslots in
  for _ = 2 to needed + 1 do
    ignore (alloc heap ~size:8192 ())
  done;
  Alcotest.(check bool) "span was swapped out" true
    (span.Mspan.state = Mspan.In_mcentral);
  check_gave_up "swapped-out span" (free heap obj.Heap.addr)
    Metrics.Span_swapped_out

let test_large_two_step () =
  let heap = Heap.create () in
  let size = Sizeclass.max_small * 4 in
  let obj = alloc heap ~size () in
  let span =
    match obj.Heap.placement with
    | Heap.On_heap (s, _) -> s
    | _ -> assert false
  in
  let free_pages_before = heap.Heap.pages.Pageheap.free_pages in
  check_freed "large freed" (free heap obj.Heap.addr) size;
  (* step 1: pages returned immediately, span left dangling *)
  Alcotest.(check bool) "span dangling" true
    (span.Mspan.state = Mspan.Dangling);
  Alcotest.(check int) "pages returned"
    (free_pages_before + span.Mspan.npages)
    heap.Heap.pages.Pageheap.free_pages;
  Alcotest.(check bool) "span queued for GC" true
    (List.memq span heap.Heap.dangling_spans);
  (* step 2: the next GC sweep retires the span struct *)
  Gc_collector.collect heap;
  Alcotest.(check bool) "span retired" true (span.Mspan.state = Mspan.Free);
  Alcotest.(check (list pass)) "dangling list drained" []
    (List.map (fun _ -> ()) heap.Heap.dangling_spans)

let test_slot_reuse_after_tcfree () =
  let heap = Heap.create () in
  let obj1 = alloc heap () in
  let slot1 =
    match obj1.Heap.placement with
    | Heap.On_heap (_, s) -> s
    | _ -> assert false
  in
  check_freed "free" (free heap obj1.Heap.addr) 64;
  let obj2 = alloc heap () in
  let slot2 =
    match obj2.Heap.placement with
    | Heap.On_heap (_, s) -> s
    | _ -> assert false
  in
  Alcotest.(check int) "slot reused" slot1 slot2;
  Alcotest.(check bool) "new address, no aliasing" true
    (obj1.Heap.addr <> obj2.Heap.addr)

let test_giveup_metrics () =
  let heap = Heap.create () in
  let obj = alloc heap () in
  ignore (free heap obj.Heap.addr);
  ignore (free heap obj.Heap.addr);
  ignore (free heap 0);
  let m = heap.Heap.metrics in
  Alcotest.(check int) "calls" 3 m.Metrics.tcfree_calls;
  Alcotest.(check int) "successes" 1 m.Metrics.tcfree_success;
  Alcotest.(check int) "double free counted" 1
    m.Metrics.giveups.(Metrics.giveup_index Metrics.Already_freed);
  Alcotest.(check int) "not-an-object counted" 1
    m.Metrics.giveups.(Metrics.giveup_index Metrics.Not_an_object)

(* -------------------------------------------------------------- *)
(* Multi-domain stress (the shared-heap configuration)              *)
(* -------------------------------------------------------------- *)

let test_cross_domain_ownership_stress () =
  (* 4 domains allocate on their own mcaches, then every domain frees
     its neighbour's objects: the span-ownership check must make each
     of those a give-up (ownership changed, or span already swapped
     out), local frees keep succeeding, and the striped counters must
     balance exactly. *)
  let nd = 4 and per = 400 in
  let heap = Heap.create ~nprocs:nd ~shared:true () in
  let objs = Array.make_matrix nd per 0 in
  let doms =
    Array.init nd (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              objs.(d).(i) <- (alloc heap ~thread:d ()).Heap.addr
            done))
  in
  Array.iter Domain.join doms;
  let freers =
    Array.init nd (fun d ->
        Domain.spawn (fun () ->
            (* neighbour's objects first (cross-domain), then own *)
            for i = 0 to per - 1 do
              ignore (free heap ~thread:d objs.((d + 1) mod nd).(i))
            done;
            for i = 0 to per - 1 do
              ignore (free heap ~thread:d objs.(d).(i))
            done))
  in
  Array.iter Domain.join freers;
  let m = Heap.merged_metrics heap in
  Alcotest.(check int) "every free attempted" (2 * nd * per)
    m.Metrics.tcfree_calls;
  Alcotest.(check int) "attempts = successes + giveups"
    m.Metrics.tcfree_calls
    (m.Metrics.tcfree_success + Array.fold_left ( + ) 0 m.Metrics.giveups);
  let cross_giveups =
    m.Metrics.giveups.(Metrics.giveup_index Metrics.Ownership_changed)
    + m.Metrics.giveups.(Metrics.giveup_index Metrics.Span_swapped_out)
  in
  Alcotest.(check bool)
    "cross-domain frees hit the ownership protocol" true (cross_giveups > 0);
  (* nothing was GC'd, so whatever tcfree could not take is still live *)
  let live = (nd * per) - m.Metrics.tcfree_success in
  (match Metrics.check_conservation ~live_objects:live m with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("conservation violated: " ^ msg))

let test_gc_concurrent_tcfree_giveup () =
  (* Open the simulated concurrent-GC window on a shared heap, then
     free from several domains at once: every attempt inside the window
     must back off with Gc_running (§5) and nothing may be freed. *)
  let nd = 4 and per = 200 in
  let heap = Heap.create ~nprocs:nd ~shared:true () in
  let objs = Array.make_matrix nd per 0 in
  for d = 0 to nd - 1 do
    for i = 0 to per - 1 do
      objs.(d).(i) <- (alloc heap ~thread:d ()).Heap.addr
    done
  done;
  (* a parallel GC cycle (everything rooted, so nothing dies) opens the
     window *)
  heap.Heap.iter_roots <-
    (fun k -> Array.iter (fun row -> Array.iter k row) objs);
  Gc_collector.Par.run_leader (Gc_collector.Par.start heap);
  Alcotest.(check bool) "window open" true (Heap.gc_running heap);
  let freers =
    Array.init nd (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              ignore (free heap ~thread:d objs.(d).(i))
            done))
  in
  Array.iter Domain.join freers;
  let m = Heap.merged_metrics heap in
  Alcotest.(check int) "all gave up on the running GC" (nd * per)
    m.Metrics.giveups.(Metrics.giveup_index Metrics.Gc_running);
  Alcotest.(check int) "nothing freed" 0 m.Metrics.tcfree_success

let suite =
  [
    Alcotest.test_case "small fast path" `Quick test_small_fast_path;
    Alcotest.test_case "double free tolerated" `Quick
      test_double_free_tolerated;
    Alcotest.test_case "stack objects ignored" `Quick
      test_stack_object_ignored;
    Alcotest.test_case "nil and garbage addresses" `Quick
      test_nil_and_garbage_addresses;
    Alcotest.test_case "backs off while GC runs" `Quick
      test_gc_running_backoff;
    Alcotest.test_case "backs off on ownership change" `Quick
      test_ownership_change_backoff;
    Alcotest.test_case "backs off on swapped-out span" `Quick
      test_span_swapped_out_backoff;
    Alcotest.test_case "large 2-step free (fig 9)" `Quick
      test_large_two_step;
    Alcotest.test_case "slot reuse after tcfree" `Quick
      test_slot_reuse_after_tcfree;
    Alcotest.test_case "give-up metrics" `Quick test_giveup_metrics;
    Alcotest.test_case "cross-domain ownership stress" `Quick
      test_cross_domain_ownership_stress;
    Alcotest.test_case "GC-concurrent frees all back off" `Quick
      test_gc_concurrent_tcfree_giveup;
  ]
