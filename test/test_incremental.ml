(** Differential tests for function-granular incremental analysis: a
    warm rebuild after editing one function must re-solve only that
    function's analysis unit (call-graph SCC) and still produce results
    byte-identical to a cold build of the edited tree — tcfree
    insertions, program output and the runtime metrics JSON.  Also the
    iterative-Tarjan stress tests (10k-deep chains must not overflow
    the stack) and the unit-record store round-trips. *)

open Minigo
module B = Gofree_build
module E = Gofree_escape

(* ---------------------------------------------------------------- *)
(* Temporary package trees                                           *)
(* ---------------------------------------------------------------- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

let tree_counter = ref 0

let write_file path src =
  let oc = open_out_bin path in
  output_string oc src;
  close_out oc

(** Create a fresh directory holding [files] (relative path → source). *)
let make_tree files =
  incr tree_counter;
  let root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gofree-incr-test-%d-%d" (Unix.getpid ())
         !tree_counter)
  in
  mkdir_p root;
  List.iter
    (fun (rel, src) ->
      let path = Filename.concat root rel in
      mkdir_p (Filename.dirname path);
      write_file path src)
    files;
  root

(* The same three-package program as examples/multipkg: util (4 funcs,
   one private) ← data (2 funcs) ← main. *)

let util_src =
  {|package util

func Sum(xs []int) int {
	s := 0
	for i := range xs {
		s = s + xs[i]
	}
	return s
}

func MakeRange(n int) []int {
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	return xs
}

func scale(x int, k int) int {
	return x * k
}

func Scale(xs []int, k int) []int {
	ys := make([]int, len(xs))
	for i := range xs {
		ys[i] = scale(xs[i], k)
	}
	return ys
}
|}

let data_src =
  {|package data

import "util"

type Point struct {
	X int
	Y int
}

func Centroid(ps []Point) Point {
	n := len(ps)
	if n == 0 {
		return Point{}
	}
	sx := 0
	sy := 0
	for i := range ps {
		sx = sx + ps[i].X
		sy = sy + ps[i].Y
	}
	return Point{X: sx / n, Y: sy / n}
}

func Grid(n int) []Point {
	xs := util.MakeRange(n)
	ps := make([]Point, n)
	total := util.Sum(xs)
	for i := range ps {
		ps[i] = Point{X: xs[i], Y: total}
	}
	return ps
}
|}

let main_src =
  {|package main

import (
	"util"
	"data"
)

func main() {
	xs := util.MakeRange(16)
	ys := util.Scale(xs, 3)
	total := util.Sum(ys)
	ps := data.Grid(8)
	c := data.Centroid(ps)
	println("total", total)
	println("centroid", c.X, c.Y)
}
|}

let tree_files =
  [
    ("util/util.go", util_src);
    ("data/data.go", data_src);
    ("main.go", main_src);
  ]

(* ---------------------------------------------------------------- *)
(* Source edits                                                      *)
(* ---------------------------------------------------------------- *)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(** Insert a semantics-preserving pad statement at the top of [fname]'s
    body.  The typed body changes (new unit content key) but the
    function's summary — and so every dependent's key — does not. *)
let edit_func src fname =
  let needle = "func " ^ fname ^ "(" in
  let rec go acc = function
    | [] -> Alcotest.failf "edit_func: no function %s" fname
    | l :: rest when starts_with ~prefix:needle l ->
      List.rev_append acc (l :: "\tpad9 := 0" :: "\tpad9 = pad9" :: rest)
    | l :: rest -> go (l :: acc) rest
  in
  String.concat "\n" (go [] (String.split_on_char '\n' src))

let copy_edit files rel fname =
  List.map
    (fun (r, s) -> if r = rel then (r, edit_func s fname) else (r, s))
    files

(* ---------------------------------------------------------------- *)
(* Build fingerprints: the byte-identity oracle                      *)
(* ---------------------------------------------------------------- *)

let kind_str = function
  | Tast.Free_slice -> "slice"
  | Tast.Free_map -> "map"
  | Tast.Free_obj -> "obj"

let decisions_of (r : B.Driver.result) =
  {
    Gofree_interp.Decisions.site_heap = r.B.Driver.b_site_heap;
    var_boxed = r.B.Driver.b_var_boxed;
  }

(** Everything the build promises: every insertion with its absolute
    variable id, the program's output, and the runtime metrics JSON.
    Two builds with equal fingerprints are observationally identical. *)
let fingerprint (r : B.Driver.result) =
  let insertions =
    List.sort compare
      (List.map
         (fun { Gofree_core.Instrument.ins_func; ins_var; ins_field;
                ins_kind } ->
           Printf.sprintf "%s/%d%s/%s/%s" ins_func ins_var.Tast.v_id
             (match ins_field with
             | Some (idx, fname) -> Printf.sprintf ".%d:%s" idx fname
             | None -> "")
             ins_var.Tast.v_name (kind_str ins_kind))
         r.B.Driver.b_inserted)
  in
  let run =
    Gofree_interp.Runner.run_program ~decisions:(decisions_of r)
      r.B.Driver.b_program
  in
  String.concat "\n" insertions
  ^ "\n---\n" ^ run.Gofree_interp.Runner.output ^ "\n---\n"
  ^ Gofree_obs.Json.to_string
      (Gofree_runtime.Metrics.to_json run.Gofree_interp.Runner.metrics)

let unit_counts (r : B.Driver.result) =
  ( r.B.Driver.b_stats.B.Driver.bs_unit_hits,
    r.B.Driver.b_stats.B.Driver.bs_unit_misses )

(* ---------------------------------------------------------------- *)
(* Differential per-function edits of the three-package tree         *)
(* ---------------------------------------------------------------- *)

(** Cold-build the tree, edit one function in place, rebuild warm, and
    compare against a from-scratch cold build of the edited tree: the
    results must be byte-identical and only the edited function's unit
    re-solved ([exp_hits] units replayed from the cache). *)
let check_one_edit ?(jobs = 0) ?unit_cache ~rel ~fname ~exp_hits
    ~exp_misses () =
  let root = make_tree tree_files in
  ignore (B.Driver.build root);
  let edited = copy_edit tree_files rel fname in
  write_file (Filename.concat root rel) (List.assoc rel edited);
  let warm = B.Driver.build ~jobs ?unit_cache root in
  let cold = B.Driver.build (make_tree edited) in
  Alcotest.(check string)
    (fname ^ ": warm rebuild byte-identical to cold")
    (fingerprint cold) (fingerprint warm);
  Alcotest.(check (pair int int))
    (fname ^ ": expected units replayed/re-solved")
    (exp_hits, exp_misses) (unit_counts warm)

(* Each function of the tree: editing util re-analyzes all 3 packages
   (transitive keys) but re-solves 1 of 7 units; editing data leaves
   util's package entry warm (3 units seen); editing main touches only
   its own single unit. *)
let edit_cases =
  [
    ("util/util.go", "Sum", 6);
    ("util/util.go", "MakeRange", 6);
    ("util/util.go", "scale", 6);
    ("util/util.go", "Scale", 6);
    ("data/data.go", "Centroid", 2);
    ("data/data.go", "Grid", 2);
    ("main.go", "main", 0);
  ]

let test_every_function_edit () =
  List.iter
    (fun (rel, fname, exp_hits) ->
      check_one_edit ~rel ~fname ~exp_hits ~exp_misses:1 ())
    edit_cases

let test_parallel_warm_rebuild () =
  (* the pooled scheduler takes the same cache hits and produces the
     same bytes *)
  check_one_edit ~jobs:4 ~rel:"util/util.go" ~fname:"Sum" ~exp_hits:6
    ~exp_misses:1 ()

let test_no_unit_cache_fallback () =
  (* with unit caching disabled the same edit degrades to package-level
     incrementality: every unit of every re-analyzed package re-solves,
     and the bytes still match *)
  check_one_edit ~unit_cache:B.Driver.no_unit_cache ~rel:"util/util.go"
    ~fname:"Sum" ~exp_hits:0 ~exp_misses:7 ()

let test_formatting_only_edit_replays_everything () =
  (* changed bytes invalidate every package key, but no typed body
     changed, so no unit re-solves *)
  let root = make_tree tree_files in
  let cold = B.Driver.build root in
  write_file (Filename.concat root "util/util.go") (util_src ^ "\n");
  let warm = B.Driver.build root in
  Alcotest.(check string)
    "formatting-only rebuild byte-identical" (fingerprint cold)
    (fingerprint warm);
  Alcotest.(check (pair int int))
    "every unit replayed, none re-solved" (7, 0) (unit_counts warm)

(* ---------------------------------------------------------------- *)
(* Random mutation differential                                      *)
(* ---------------------------------------------------------------- *)

(** Plain function names of a generated whole-program source. *)
let func_names src =
  List.filter_map
    (fun line ->
      if starts_with ~prefix:"func " line then
        match String.index_opt line '(' with
        | Some i ->
          let name = String.trim (String.sub line 5 (i - 5)) in
          if name <> "" && not (String.contains name ' ') then Some name
          else None
        | None -> None
      else None)
    (String.split_on_char '\n' src)

let test_random_mutations () =
  (* 20 generated programs, each mutated in one pseudo-randomly chosen
     function: the warm rebuild re-solves exactly that function's SCC
     unit and matches the cold build of the mutant byte for byte *)
  for seed = 0 to 19 do
    let src = Gofree_workloads.Randprog.generate seed in
    let names = func_names src in
    let fname = List.nth names (seed * 7 mod List.length names) in
    let root = make_tree [ ("main.go", src) ] in
    ignore (B.Driver.build root);
    let mutant = edit_func src fname in
    write_file (Filename.concat root "main.go") mutant;
    let warm = B.Driver.build root in
    let cold = B.Driver.build (make_tree [ ("main.go", mutant) ]) in
    Alcotest.(check string)
      (Printf.sprintf "seed %d (%s): warm == cold" seed fname)
      (fingerprint cold) (fingerprint warm);
    Alcotest.(check int)
      (Printf.sprintf "seed %d (%s): one unit re-solved" seed fname)
      1
      (snd (unit_counts warm))
  done

(* ---------------------------------------------------------------- *)
(* Iterative Tarjan: pathological call-graph shapes                  *)
(* ---------------------------------------------------------------- *)

let chain_src n =
  let b = Buffer.create (n * 40) in
  for i = 0 to n - 1 do
    if i < n - 1 then
      Buffer.add_string b
        (Printf.sprintf "func f%d() int { return f%d() }\n" i (i + 1))
    else Buffer.add_string b (Printf.sprintf "func f%d() int { return 1 }\n" i)
  done;
  Buffer.add_string b "func main() { println(f0()) }\n";
  Buffer.contents b

let cycle_src n =
  let b = Buffer.create (n * 50) in
  for i = 0 to n - 1 do
    Buffer.add_string b
      (Printf.sprintf "func f%d(d int) int { if d <= 0 { return 0 }\nreturn f%d(d - 1) }\n"
         i ((i + 1) mod n))
  done;
  Buffer.add_string b "func main() { println(f0(3)) }\n";
  Buffer.contents b

let test_deep_chain_condenses () =
  (* a 10k-deep call chain would overflow the OCaml stack under a
     recursive Tarjan; the explicit-stack version must digest it *)
  let n = 10_000 in
  let tp = Typecheck.check (Parser.parse (chain_src n)) in
  let cg = E.Callgraph.build tp.Tast.p_funcs in
  Alcotest.(check int)
    "one unit per function" (n + 1)
    (Array.length cg.E.Callgraph.cg_units);
  Array.iter
    (fun u ->
      List.iter
        (fun d ->
          if d >= u.E.Callgraph.u_id then
            Alcotest.failf "unit %d depends forward on %d"
              u.E.Callgraph.u_id d)
        u.E.Callgraph.u_deps)
    cg.E.Callgraph.cg_units;
  (* reverse topological: the leaf first, main last *)
  Alcotest.(check int) "leaf is unit 0" 0
    (Hashtbl.find cg.E.Callgraph.cg_unit_of (Printf.sprintf "f%d" (n - 1)));
  Alcotest.(check int) "chain head below main" (n - 1)
    (Hashtbl.find cg.E.Callgraph.cg_unit_of "f0");
  Alcotest.(check int) "main is last" n
    (Hashtbl.find cg.E.Callgraph.cg_unit_of "main")

let test_deep_cycle_is_one_unit () =
  let n = 10_000 in
  let tp = Typecheck.check (Parser.parse (cycle_src n)) in
  let cg = E.Callgraph.build tp.Tast.p_funcs in
  Alcotest.(check int) "cycle + main" 2
    (Array.length cg.E.Callgraph.cg_units);
  Alcotest.(check int) "the SCC holds every function" n
    (List.length cg.E.Callgraph.cg_units.(0).E.Callgraph.u_funcs)

let test_deep_chain_pooled_analysis () =
  (* the dependency scheduler walks a 2k-deep unit chain with worker
     domains and reproduces the sequential summaries exactly *)
  let tp = Typecheck.check (Parser.parse (chain_src 2_000)) in
  let seq = E.Analysis.analyze tp in
  let pool = Gofree_sched.Pool.create ~workers:4 () in
  let par =
    Fun.protect
      ~finally:(fun () -> Gofree_sched.Pool.shutdown pool)
      (fun () -> E.Analysis.analyze ~pool tp)
  in
  let dump (a : E.Analysis.t) =
    Hashtbl.fold
      (fun name s acc -> (name, E.Summary.to_string s) :: acc)
      a.E.Analysis.summaries []
    |> List.sort compare
  in
  Alcotest.(check (list (pair string string)))
    "pooled summaries == sequential" (dump seq) (dump par)

(* ---------------------------------------------------------------- *)
(* Unit-record store round-trips                                     *)
(* ---------------------------------------------------------------- *)

let sample_summary =
  {
    E.Summary.s_name = "util.MakeRange";
    s_nparams = 1;
    s_flows =
      [ { E.Summary.pf_param = 0; pf_target = `Heap; pf_derefs = 1 } ];
    s_contents =
      [|
        {
          E.Summary.ct_heap_alloc = true;
          ct_incomplete = false;
          ret_incomplete = false;
        };
      |];
    s_fields = [];
  }

let sample_units =
  [
    {
      B.Store.u_key = "0123456789abcdef0123456789abcdef";
      u_funcs = [ "util.MakeRange" ];
      u_summaries = [ sample_summary ];
      u_frees = [ ("util.MakeRange", 1, -1, Tast.Free_slice) ];
      u_sites = [ ("util.MakeRange", 0, true) ];
      u_boxed = [ ("util.MakeRange", 2) ];
    };
    {
      (* a no-IPA record: no summaries is a valid stored shape *)
      B.Store.u_key = "fedcba9876543210fedcba9876543210";
      u_funcs = [ "util.scale"; "util.Scale" ];
      u_summaries = [];
      u_frees = [];
      u_sites = [ ("util.Scale", 0, false) ];
      u_boxed = [];
    };
  ]

let test_unit_store_roundtrip () =
  match B.Store.units_of_string (B.Store.units_to_string sample_units) with
  | Error e -> Alcotest.failf "unit round-trip failed: %s" e
  | Ok us ->
    Alcotest.(check bool) "unit round-trip identity" true (us = sample_units)

let test_unit_store_save_load () =
  let dir = Filename.concat (make_tree []) "cache" in
  B.Store.save_units ~dir ~pkg:"util" sample_units;
  (match B.Store.load_units ~dir ~pkg:"util" with
  | Some us ->
    Alcotest.(check bool) "load returns the saved records" true
      (us = sample_units)
  | None -> Alcotest.fail "saved unit records did not load");
  Alcotest.(check bool) "absent package misses" true
    (B.Store.load_units ~dir ~pkg:"nosuch" = None);
  write_file
    (B.Store.units_path ~dir ~pkg:"util")
    "(format ancient-units-v0)\n";
  Alcotest.(check bool) "stale format misses" true
    (B.Store.load_units ~dir ~pkg:"util" = None)

let test_unit_key_sensitivity () =
  let tp, _, _ = Typecheck.check_package (Parser.parse_file util_src) in
  let cg = E.Callgraph.build tp.Tast.p_funcs in
  let scale_unit =
    cg.E.Callgraph.cg_units.(Hashtbl.find cg.E.Callgraph.cg_unit_of
                               "util.Scale")
  in
  Alcotest.(check (list string))
    "Scale's summary inputs" [ "util.scale" ]
    scale_unit.E.Callgraph.u_callees;
  let key ~config_sig ~summary =
    E.Callgraph.unit_key ~config_sig ~mode_sig:"m"
      ~callee_summary:(fun _ -> summary)
      scale_unit
  in
  let base = key ~config_sig:"c" ~summary:None in
  Alcotest.(check string)
    "keys are deterministic" base
    (key ~config_sig:"c" ~summary:None);
  Alcotest.(check bool) "callee summary content feeds the key" true
    (base <> key ~config_sig:"c" ~summary:(Some "tag"));
  Alcotest.(check bool) "config signature feeds the key" true
    (base <> key ~config_sig:"c2" ~summary:None)

let suite =
  [
    Alcotest.test_case "every function edit re-solves one unit" `Quick
      test_every_function_edit;
    Alcotest.test_case "parallel warm rebuild identical" `Quick
      test_parallel_warm_rebuild;
    Alcotest.test_case "package-level fallback without unit cache" `Quick
      test_no_unit_cache_fallback;
    Alcotest.test_case "formatting-only edit replays every unit" `Quick
      test_formatting_only_edit_replays_everything;
    Alcotest.test_case "20 random mutations: warm == cold" `Quick
      test_random_mutations;
    Alcotest.test_case "10k-deep chain condenses iteratively" `Quick
      test_deep_chain_condenses;
    Alcotest.test_case "10k cycle is one unit" `Quick
      test_deep_cycle_is_one_unit;
    Alcotest.test_case "deep chain: pooled analysis == sequential" `Quick
      test_deep_chain_pooled_analysis;
    Alcotest.test_case "unit store round-trip" `Quick
      test_unit_store_roundtrip;
    Alcotest.test_case "unit store save/load/corrupt" `Quick
      test_unit_store_save_load;
    Alcotest.test_case "unit key sensitivity" `Quick
      test_unit_key_sensitivity;
  ]
