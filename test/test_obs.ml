(** Observability tests: trace-event stream well-formedness, metrics
    JSON round-trip, ring/sampler bookkeeping, build-stats JSON, and the
    [--explain] freeing diagnostics. *)

module Obs = Gofree_obs
module Json = Obs.Json
module Trace = Obs.Trace
module Rt = Gofree_runtime

(* ---------- Json ---------- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.Str "a\"b\n\xe2\x9c\x93");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Obj [] ]);
      ]
  in
  let round s = Json.to_string (Json.parse s) in
  Alcotest.(check string)
    "compact round-trip" (Json.to_string doc)
    (round (Json.to_string doc));
  Alcotest.(check string)
    "pretty parses back to same doc" (Json.to_string doc)
    (Json.to_string (Json.parse (Json.to_string_pretty doc)));
  match Json.parse "1 2" with
  | exception Json.Parse_error _ -> ()
  | _ -> Alcotest.fail "trailing garbage accepted"

(* ---------- trace stream ---------- *)

let trace_src =
  {|
package main

func work(n int) int {
	xs := make([]int, n)
	s := 0
	for i := range xs {
		xs[i] = i
		s = s + xs[i]
	}
	return s
}

func main() {
	println(work(64))
}
|}

(** Capture a trace around a compile+run and check the stream invariants
    every consumer (Perfetto, the bench exporter) relies on: valid JSON,
    timestamps monotone in emission order, every [B] matched by an [E] on
    the same track, and the pipeline phases present. *)
let test_trace_stream () =
  Trace.start ();
  ignore (Helpers.run trace_src);
  let doc = Json.parse (Trace.stop ()) in
  let events = Json.get_list "traceEvents" doc in
  Alcotest.(check bool) "nonempty" true (List.length events > 0);
  let last_ts = ref neg_infinity in
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  let names = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let ph = Json.get_string "ph" e in
      let tid = Json.get_int "tid" e in
      Hashtbl.replace names (Json.get_string "name" e) ();
      if ph <> "M" then begin
        let ts = Json.get_float "ts" e in
        Alcotest.(check bool) "ts monotone" true (ts >= !last_ts);
        last_ts := ts
      end;
      let stack = Option.value (Hashtbl.find_opt stacks tid) ~default:[] in
      match ph with
      | "B" -> Hashtbl.replace stacks tid (Json.get_string "name" e :: stack)
      | "E" -> begin
        match stack with
        | top :: rest ->
          Alcotest.(check string) "E closes innermost B" top
            (Json.get_string "name" e);
          Hashtbl.replace stacks tid rest
        | [] -> Alcotest.fail "E without open B"
      end
      | _ -> ())
    events;
  Hashtbl.iter
    (fun tid stack ->
      Alcotest.(check int)
        (Printf.sprintf "tid %d spans all closed" tid)
        0 (List.length stack))
    stacks;
  List.iter
    (fun phase ->
      Alcotest.(check bool) (phase ^ " span present") true
        (Hashtbl.mem names phase))
    [ "lex"; "parse"; "typecheck"; "escape"; "instrument"; "run g0" ]

let test_trace_disabled () =
  Alcotest.(check bool) "disabled by default" false (Trace.enabled ());
  (* emissions while disabled must be no-ops, and stop yields "{}" *)
  Trace.instant ~tid:Trace.tid_main "ignored";
  Alcotest.(check string) "stop without start" "{}" (Trace.stop ())

(* ---------- metrics JSON ---------- *)

let test_metrics_roundtrip () =
  let _, m = Helpers.run trace_src in
  Alcotest.(check bool) "something was freed" true (m.Rt.Metrics.freed_bytes > 0);
  let j = Rt.Metrics.to_json m in
  let m' = Rt.Metrics.of_json (Json.parse (Json.to_string j)) in
  Alcotest.(check string) "round-trip preserves every counter"
    (Json.to_string j)
    (Json.to_string (Rt.Metrics.to_json m'));
  Alcotest.(check string) "schema" "gofree-metrics-v1"
    (Json.get_string "schema" j)

(* ---------- ring + sampler ---------- *)

let test_ring_wraparound () =
  let r = Obs.Ring.create ~capacity:4 in
  Alcotest.(check int) "empty length" 0 (Obs.Ring.length r);
  for i = 1 to 10 do
    Obs.Ring.push r i
  done;
  Alcotest.(check int) "length capped" 4 (Obs.Ring.length r);
  Alcotest.(check int) "pushes counted" 10 (Obs.Ring.pushed r);
  Alcotest.(check (list int)) "keeps newest, oldest first" [ 7; 8; 9; 10 ]
    (Obs.Ring.to_list r);
  Obs.Ring.clear r;
  Alcotest.(check int) "cleared" 0 (Obs.Ring.length r);
  Alcotest.(check int) "clear resets pushed" 0 (Obs.Ring.pushed r)

let test_sampler () =
  let s = Rt.Sampler.create ~capacity:3 ~every:5 () in
  Alcotest.(check bool) "due at multiple" true (Rt.Sampler.due s ~step:10);
  Alcotest.(check bool) "not due off-cadence" false (Rt.Sampler.due s ~step:7);
  let m = Rt.Metrics.create () in
  for step = 1 to 5 do
    m.Rt.Metrics.heap_live <- step * 100;
    Rt.Sampler.record s ~step:(step * 5) ~span_bytes:8192 m
  done;
  let samples = Rt.Sampler.samples s in
  Alcotest.(check int) "ring keeps capacity" 3 (List.length samples);
  Alcotest.(check (list int)) "oldest first, newest retained"
    [ 15; 20; 25 ]
    (List.map (fun sm -> sm.Rt.Sampler.sm_step) samples);
  let j = Rt.Sampler.to_json s in
  Alcotest.(check string) "schema" "gofree-samples-v1"
    (Json.get_string "schema" j);
  Alcotest.(check int) "dropped = pushed - kept" 2 (Json.get_int "dropped" j);
  Alcotest.(check int) "samples serialized" 3
    (List.length (Json.get_list "samples" j));
  Alcotest.(check int) "heap_live of newest" 500
    (Json.get_int "heap_live" (List.nth (Json.get_list "samples" j) 2))

(** End to end: a run with [sample_every] set produces a time series. *)
let test_sampler_in_run () =
  let run_config =
    { Gofree_interp.Interp.default_config with sample_every = 50 }
  in
  let r =
    Gofree_interp.Runner.compile_and_run
      ~gofree_config:Gofree_core.Config.gofree ~run_config trace_src
  in
  match r.Gofree_interp.Runner.sampler with
  | None -> Alcotest.fail "no sampler attached"
  | Some s ->
    Alcotest.(check bool) "samples recorded" true
      (List.length (Rt.Sampler.samples s) > 0);
    let steps = List.map (fun sm -> sm.Rt.Sampler.sm_step) (Rt.Sampler.samples s) in
    List.iter
      (fun st -> Alcotest.(check int) "steps on cadence" 0 (st mod 50))
      steps

(* ---------- build stats JSON ---------- *)

let test_stats_json () =
  let open Gofree_build.Driver in
  let stats =
    {
      bs_pkgs =
        [
          {
            pr_name = "util";
            pr_wave = 0;
            pr_cached = false;
            pr_ms = 1.25;
            pr_nfuncs = 3;
            pr_nsummaries = 2;
            pr_units = 3;
            pr_unit_hits = 2;
          };
          {
            pr_name = "main";
            pr_wave = 1;
            pr_cached = true;
            pr_ms = 0.0;
            pr_nfuncs = 1;
            pr_nsummaries = 0;
            pr_units = 0;
            pr_unit_hits = 0;
          };
        ];
      bs_hits = 1;
      bs_misses = 1;
      bs_unit_hits = 2;
      bs_unit_misses = 1;
      bs_jobs = 2;
      bs_total_ms = 3.5;
    }
  in
  let j = Json.parse (Json.to_string (stats_to_json stats)) in
  Alcotest.(check string) "schema" "gofree-build-stats-v1"
    (Json.get_string "schema" j);
  Alcotest.(check int) "hits" 1 (Json.get_int "cache_hits" j);
  let pkgs = Json.get_list "packages" j in
  Alcotest.(check int) "both packages" 2 (List.length pkgs);
  Alcotest.(check bool) "cached flag survives" true
    (match Json.member "cached" (List.nth pkgs 1) with
    | Some (Json.Bool b) -> b
    | _ -> false)

(* ---------- --explain diagnostics ---------- *)

let explain_src =
  {|
package main

var g []int

func localSum(n int) int {
	xs := make([]int, n)
	s := 0
	for i := range xs {
		xs[i] = i
		s = s + xs[i]
	}
	return s
}

func escaping(n int) []int {
	ys := make([]int, n)
	ys[0] = n
	return ys
}

func stored(n int) {
	zs := make([]int, n)
	zs[0] = n
	g = zs
}

func keeper(n int) int {
	var keep []int
	for i := 0; i < n; i++ {
		tmp := make([]int, 3)
		tmp[0] = i
		keep = tmp
	}
	return keep[0]
}

func indirect(n int) int {
	s := make([]int, n)
	ps := &s
	t := make([]int, n)
	t[0] = 7
	*ps = t
	x := s[0]
	return x
}

func main() {
	println(localSum(8))
	println(len(escaping(4)))
	stored(4)
	println(keeper(3))
	println(indirect(5))
}
|}

let test_explain () =
  let open Gofree_core in
  let c = Helpers.compile explain_src in
  let sites =
    Report.explain c.Pipeline.c_analysis c.Pipeline.c_inserted
      c.Pipeline.c_config c.Pipeline.c_program
  in
  Alcotest.(check int) "every site classified" 6 (List.length sites);
  let in_func f =
    List.find (fun e -> e.Report.ex_site.Minigo.Tast.site_func = f) sites
  in
  let blocking f =
    match (in_func f).Report.ex_blocking with
    | Some b -> Report.blocking_str b
    | None -> "none"
  in
  (* freed: the one inserted tcfree covers localSum's slice *)
  Alcotest.(check (option string)) "localSum freed" (Some "xs")
    (in_func "localSum").Report.ex_freed_by;
  Alcotest.(check string) "return value escapes" "escapes to caller"
    (blocking "escaping");
  Alcotest.(check string) "global store escapes" "escapes to global/heap store"
    (blocking "stored");
  Alcotest.(check string) "loop-carried holder blocks insertion"
    "insertion unsafe (trailing use)" (blocking "keeper");
  (* the indirect function has two sites: the overwritten slice is
     incomplete, the replacement escapes through *ps *)
  let indirect_sites =
    List.filter
      (fun e -> e.Report.ex_site.Minigo.Tast.site_func = "indirect")
      sites
  in
  Alcotest.(check int) "two sites in indirect" 2 (List.length indirect_sites);
  Alcotest.(check bool) "indirect store makes a site incomplete" true
    (List.exists
       (fun e -> e.Report.ex_blocking = Some Report.Incomplete_store)
       indirect_sites);
  (* all heap sites, none stack-allocated in this program *)
  List.iter
    (fun e -> Alcotest.(check bool) "heap site" true e.Report.ex_heap)
    sites;
  (* JSON export parses and covers every site *)
  let j = Json.parse (Json.to_string (Report.explain_to_json sites)) in
  Alcotest.(check string) "schema" "gofree-explain-v1"
    (Json.get_string "schema" j);
  Alcotest.(check int) "all sites exported" 6
    (List.length (Json.get_list "sites" j))

(** Totality: every unfreed heap site of arbitrary generated programs
    gets some blocking diagnosis (explain never raises, freed+blocked
    covers all sites). *)
let test_explain_total () =
  List.iter
    (fun src ->
      let open Gofree_core in
      let c = Helpers.compile src in
      let sites =
        Report.explain c.Pipeline.c_analysis c.Pipeline.c_inserted
          c.Pipeline.c_config c.Pipeline.c_program
      in
      List.iter
        (fun e ->
          let diagnosed =
            (not e.Report.ex_heap)
            || e.Report.ex_freed_by <> None
            || e.Report.ex_blocking <> None
          in
          Alcotest.(check bool) "heap site freed or diagnosed" true diagnosed)
        sites)
    [ trace_src; explain_src ]

let suite =
  [
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "trace stream invariants" `Quick test_trace_stream;
    Alcotest.test_case "trace disabled" `Quick test_trace_disabled;
    Alcotest.test_case "metrics json round-trip" `Quick test_metrics_roundtrip;
    Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "sampler" `Quick test_sampler;
    Alcotest.test_case "sampler in a run" `Quick test_sampler_in_run;
    Alcotest.test_case "build stats json" `Quick test_stats_json;
    Alcotest.test_case "explain diagnostics" `Quick test_explain;
    Alcotest.test_case "explain is total" `Quick test_explain_total;
  ]
