(** Test entry point: one alcotest run over every suite. *)

let () =
  Alcotest.run "gofree"
    [
      ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("typecheck", Test_typecheck.suite);
      ("escape", Test_escape.suite);
      ("propagate", Test_propagate.suite);
      ("lifetime", Test_lifetime.suite);
      ("ipa", Test_ipa.suite);
      ("summary", Test_summary.suite);
      ("instrument", Test_instrument.suite);
      ("build", Test_build.suite);
      ("incremental", Test_incremental.suite);
      ("runtime", Test_runtime.suite);
      ("tcfree", Test_tcfree.suite);
      ("gc", Test_gc.suite);
      ("interp", Test_interp.suite);
      ("slicing", Test_slicing.suite);
      ("baselines", Test_baselines.suite);
      ("stats", Test_stats.suite);
      ("obs", Test_obs.suite);
      ("workloads", Test_workloads.suite);
      ("robustness", Test_robustness.suite);
      ("properties", Test_props.suite);
      ("sizeclass-equiv", Test_sizeclass_equiv.suite);
      ("compile-differential", Test_compile_differential.suite);
      ("parallel", Test_parallel.suite);
      ("precision", Test_precision.suite);
      ("disasm", Test_disasm.suite);
      ("api", Test_api.suite);
      ("server", Test_server.suite);
      ("load", Test_load.suite);
      ("telemetry", Test_telemetry.suite);
    ]
