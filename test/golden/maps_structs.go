type Point struct { x int; y int }

func lookup(m map[string]int, k string) int {
  return m[k]
}

func main() {
  m := make(map[string]int)
  m["a"] = 1
  m["b"] = 2
  p := Point{x: lookup(m, "a"), y: lookup(m, "b")}
  q := &p
  q.x = q.x + p.y
  for k := range m {
    delete(m, k)
  }
  println(p.x, q.y, len(m))
}
