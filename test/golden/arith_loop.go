func sum(n int) int {
  total := 0
  for i := 0; i < n; i = i + 1 {
    if i%3 == 0 {
      continue
    }
    total = total + i*i
  }
  return total
}

func main() {
  println(sum(50))
}
