(** Tests for the multi-package build subsystem: package/import syntax,
    export rules, the summary store, cache behavior, and — the headline
    acceptance check — that a multi-package build inserts exactly the
    tcfree calls a whole-program single-file compile would (paper §4.4:
    stored tags lose no precision). *)

open Minigo
module B = Gofree_build
module E = Gofree_escape

(* ---------------------------------------------------------------- *)
(* Temporary package trees                                           *)
(* ---------------------------------------------------------------- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

let tree_counter = ref 0

(** Create a fresh directory holding [files] (relative path → source). *)
let make_tree files =
  incr tree_counter;
  let root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gofree-build-test-%d-%d" (Unix.getpid ())
         !tree_counter)
  in
  mkdir_p root;
  List.iter
    (fun (rel, src) ->
      let path = Filename.concat root rel in
      mkdir_p (Filename.dirname path);
      let oc = open_out_bin path in
      output_string oc src;
      close_out oc)
    files;
  root

(* ---------------------------------------------------------------- *)
(* The reference three-package program and its single-file twin      *)
(* ---------------------------------------------------------------- *)

let util_src =
  {|package util

func Sum(xs []int) int {
	s := 0
	for i := range xs {
		s = s + xs[i]
	}
	return s
}

func MakeRange(n int) []int {
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	return xs
}

func scale(x int, k int) int {
	return x * k
}

func Scale(xs []int, k int) []int {
	ys := make([]int, len(xs))
	for i := range xs {
		ys[i] = scale(xs[i], k)
	}
	return ys
}
|}

let data_src =
  {|package data

import "util"

type Point struct {
	X int
	Y int
}

func Centroid(ps []Point) Point {
	n := len(ps)
	if n == 0 {
		return Point{}
	}
	sx := 0
	sy := 0
	for i := range ps {
		sx = sx + ps[i].X
		sy = sy + ps[i].Y
	}
	return Point{X: sx / n, Y: sy / n}
}

func Grid(n int) []Point {
	xs := util.MakeRange(n)
	ps := make([]Point, n)
	total := util.Sum(xs)
	for i := range ps {
		ps[i] = Point{X: xs[i], Y: total}
	}
	return ps
}
|}

let main_src =
  {|package main

import (
	"util"
	"data"
)

func main() {
	xs := util.MakeRange(16)
	ys := util.Scale(xs, 3)
	total := util.Sum(ys)
	ps := data.Grid(8)
	c := data.Centroid(ps)
	println("total", total)
	println("centroid", c.X, c.Y)
}
|}

let tree_files =
  [
    ("util/util.go", util_src);
    ("data/data.go", data_src);
    ("main.go", main_src);
  ]

(* The same program as one whole-program source: declarations
   concatenated in dependency order (util, data, main), qualifiers
   dropped.  This is the reference the multi-package build must match. *)
let single_src =
  {|
func Sum(xs []int) int {
	s := 0
	for i := range xs {
		s = s + xs[i]
	}
	return s
}

func MakeRange(n int) []int {
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	return xs
}

func scale(x int, k int) int {
	return x * k
}

func Scale(xs []int, k int) []int {
	ys := make([]int, len(xs))
	for i := range xs {
		ys[i] = scale(xs[i], k)
	}
	return ys
}

type Point struct {
	X int
	Y int
}

func Centroid(ps []Point) Point {
	n := len(ps)
	if n == 0 {
		return Point{}
	}
	sx := 0
	sy := 0
	for i := range ps {
		sx = sx + ps[i].X
		sy = sy + ps[i].Y
	}
	return Point{X: sx / n, Y: sy / n}
}

func Grid(n int) []Point {
	xs := MakeRange(n)
	ps := make([]Point, n)
	total := Sum(xs)
	for i := range ps {
		ps[i] = Point{X: xs[i], Y: total}
	}
	return ps
}

func main() {
	xs := MakeRange(16)
	ys := Scale(xs, 3)
	total := Sum(ys)
	ps := Grid(8)
	c := Centroid(ps)
	println("total", total)
	println("centroid", c.X, c.Y)
}
|}

(** [contains s sub] — plain substring test, keeps error-message checks
    robust to wording around the key phrase. *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ---------------------------------------------------------------- *)
(* Insertion-site comparison helpers                                 *)
(* ---------------------------------------------------------------- *)

(** Strip a ["pkg."] qualifier so multi-package names compare against
    their single-file twins. *)
let strip name =
  match String.index_opt name '.' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> name

let kind_str = function
  | Tast.Free_slice -> "slice"
  | Tast.Free_map -> "map"
  | Tast.Free_obj -> "obj"

let inserted_triples inserted =
  List.sort compare
    (List.map
       (fun { Gofree_core.Instrument.ins_func; ins_var; ins_field;
              ins_kind } ->
         ( strip ins_func,
           (strip ins_var.Tast.v_name
           ^
           match ins_field with
           | Some (_, fname) -> "." ^ fname
           | None -> ""),
           kind_str ins_kind ))
       inserted)

let triple3 = Alcotest.(triple string string string)

let decisions_of (r : B.Driver.result) =
  {
    Gofree_interp.Decisions.site_heap = r.B.Driver.b_site_heap;
    var_boxed = r.B.Driver.b_var_boxed;
  }

(* ---------------------------------------------------------------- *)
(* Frontend: package / import syntax and export rules                *)
(* ---------------------------------------------------------------- *)

let test_parse_package_imports () =
  let file =
    Parser.parse_file
      "package main\nimport (\n\t\"util\"\n\t\"lib/extra\"\n)\nfunc main() {}\n"
  in
  Alcotest.(check string) "package clause" "main" file.Ast.file_package;
  Alcotest.(check (list (pair string string)))
    "import paths and aliases"
    [ ("util", "util"); ("lib/extra", "extra") ]
    (List.map
       (fun i -> (i.Ast.imp_path, i.Ast.imp_alias))
       file.Ast.file_imports)

let test_parse_import_alias () =
  let file =
    Parser.parse_file
      "package data\nimport u \"util\"\nfunc F() int { return u.G() }\n"
  in
  Alcotest.(check (list (pair string string)))
    "aliased import"
    [ ("util", "u") ]
    (List.map
       (fun i -> (i.Ast.imp_path, i.Ast.imp_alias))
       file.Ast.file_imports)

let test_parse_discards_package_in_whole_program_mode () =
  (* the classic entry point still accepts package/import headers *)
  let prog = Parser.parse "package main\nfunc main() { println(1) }\n" in
  Alcotest.(check int) "one decl" 1 (List.length prog)

let check_type_error ~substring src_of_pkg =
  match src_of_pkg () with
  | _ -> Alcotest.failf "expected a type error mentioning %S" substring
  | exception Typecheck.Error (msg, _) ->
    if not (contains msg substring) then
      Alcotest.failf "error %S does not mention %S" msg substring

let util_iface () =
  let _, iface, _ = Typecheck.check_package (Parser.parse_file util_src) in
  iface

let test_unexported_rejected () =
  let iface = util_iface () in
  check_type_error ~substring:"not exported" (fun () ->
      Typecheck.check_package ~imports:[ iface ]
        (Parser.parse_file
           "package main\nimport \"util\"\nfunc main() { println(util.scale(2, 3)) }\n"))

let test_unknown_package_rejected () =
  (* an import whose interface is not supplied: the package-level
     analogue of "undefined: util" *)
  check_type_error ~substring:"cannot find package" (fun () ->
      Typecheck.check_package
        (Parser.parse_file
           "package main\nimport \"util\"\nfunc main() { println(util.Sum(nil)) }\n"))

(* ---------------------------------------------------------------- *)
(* Equivalence: multi-package build == single-file whole program     *)
(* ---------------------------------------------------------------- *)

let test_equivalence_with_single_file () =
  let root = make_tree tree_files in
  let r = B.Driver.build root in
  let single = Helpers.compile single_src in
  Alcotest.(check (list triple3))
    "same tcfree insertion sites"
    (List.sort compare (Helpers.inserted_vars single))
    (inserted_triples r.B.Driver.b_inserted);
  let rm =
    Gofree_interp.Runner.run_program ~decisions:(decisions_of r)
      r.B.Driver.b_program
  in
  let rs = Gofree_interp.Runner.run single in
  Alcotest.(check string)
    "same program output" rs.Gofree_interp.Runner.output
    rm.Gofree_interp.Runner.output;
  let ms = rs.Gofree_interp.Runner.metrics
  and mm = rm.Gofree_interp.Runner.metrics in
  Alcotest.(check int)
    "same allocated bytes" ms.Gofree_runtime.Metrics.alloced_bytes
    mm.Gofree_runtime.Metrics.alloced_bytes;
  Alcotest.(check int)
    "same freed bytes" ms.Gofree_runtime.Metrics.freed_bytes
    mm.Gofree_runtime.Metrics.freed_bytes;
  Alcotest.(check int)
    "same tcfree calls" ms.Gofree_runtime.Metrics.tcfree_calls
    mm.Gofree_runtime.Metrics.tcfree_calls;
  Alcotest.(check bool)
    "frees actually happened" true
    (mm.Gofree_runtime.Metrics.freed_bytes > 0)

let test_parallel_matches_sequential () =
  let root = make_tree tree_files in
  let seq = B.Driver.build ~jobs:1 ~force:true root in
  let par = B.Driver.build ~jobs:4 ~force:true root in
  Alcotest.(check (list triple3))
    "same insertions with domains"
    (inserted_triples seq.B.Driver.b_inserted)
    (inserted_triples par.B.Driver.b_inserted)

(* ---------------------------------------------------------------- *)
(* Incrementality: warm cache, replay, transitive invalidation       *)
(* ---------------------------------------------------------------- *)

let test_warm_cache_skips_analysis () =
  let root = make_tree tree_files in
  let r1 = B.Driver.build root in
  Alcotest.(check int)
    "cold build analyzes everything" 3
    r1.B.Driver.b_stats.B.Driver.bs_misses;
  let r2 = B.Driver.build root in
  Alcotest.(check int)
    "warm build hits every package" 3 r2.B.Driver.b_stats.B.Driver.bs_hits;
  Alcotest.(check int)
    "warm build analyzes nothing" 0 r2.B.Driver.b_stats.B.Driver.bs_misses;
  List.iter
    (fun pr ->
      Alcotest.(check bool)
        (pr.B.Driver.pr_name ^ " served from cache")
        true pr.B.Driver.pr_cached)
    r2.B.Driver.b_stats.B.Driver.bs_pkgs;
  (* the replayed (cache-hit) program is the same program *)
  Alcotest.(check (list triple3))
    "replay reproduces the insertions"
    (inserted_triples r1.B.Driver.b_inserted)
    (inserted_triples r2.B.Driver.b_inserted);
  let run r =
    (Gofree_interp.Runner.run_program ~decisions:(decisions_of r)
       r.B.Driver.b_program)
      .Gofree_interp.Runner.output
  in
  Alcotest.(check string) "replay runs identically" (run r1) (run r2)

let test_change_invalidates_transitively () =
  let root = make_tree tree_files in
  ignore (B.Driver.build root);
  (* touch the leaf package: every dependent must re-analyze *)
  let util_path = Filename.concat root "util/util.go" in
  let oc = open_out_gen [ Open_append ] 0o644 util_path in
  output_string oc "\nfunc Extra() int { return 7 }\n";
  close_out oc;
  let r = B.Driver.build root in
  Alcotest.(check int)
    "leaf change re-analyzes the whole chain" 3
    r.B.Driver.b_stats.B.Driver.bs_misses;
  (* now touch only the middle package: the leaf stays cached *)
  let data_path = Filename.concat root "data/data.go" in
  let oc = open_out_gen [ Open_append ] 0o644 data_path in
  output_string oc "\nfunc Unused() int { return 9 }\n";
  close_out oc;
  let r = B.Driver.build root in
  let cached =
    List.filter_map
      (fun pr ->
        if pr.B.Driver.pr_cached then Some pr.B.Driver.pr_name else None)
      r.B.Driver.b_stats.B.Driver.bs_pkgs
  in
  Alcotest.(check (list string))
    "only the untouched leaf is cached" [ "util" ] cached

let test_force_ignores_cache () =
  let root = make_tree tree_files in
  ignore (B.Driver.build root);
  let r = B.Driver.build ~force:true root in
  Alcotest.(check int)
    "force re-analyzes everything" 3 r.B.Driver.b_stats.B.Driver.bs_misses

(* ---------------------------------------------------------------- *)
(* Conservative fallback without a summary                           *)
(* ---------------------------------------------------------------- *)

let fallback_main_src =
  {|package main

import "util"

func main() {
	xs := util.MakeRange(16)
	println(util.Sum(xs))
}
|}

let test_missing_summary_is_conservative () =
  let tp_u, iface_u, c_u =
    Typecheck.check_package (Parser.parse_file util_src)
  in
  let cu = Gofree_core.Pipeline.compile_program tp_u in
  let util_summaries =
    List.filter_map
      (fun (f : Tast.func) ->
        Hashtbl.find_opt
          cu.Gofree_core.Pipeline.c_analysis.E.Analysis.summaries
          f.Tast.f_name)
      tp_u.Tast.p_funcs
  in
  let tp_m, _, _ =
    Typecheck.check_package ~imports:[ iface_u ]
      ~first_var:c_u.Typecheck.c_next_var
      ~first_scope:c_u.Typecheck.c_next_scope
      ~first_site:c_u.Typecheck.c_next_site
      (Parser.parse_file fallback_main_src)
  in
  let with_sums =
    Gofree_core.Pipeline.compile_program ~imported:util_summaries tp_m
  in
  let without_sums = Gofree_core.Pipeline.compile_program tp_m in
  let frees c =
    inserted_triples c.Gofree_core.Pipeline.c_inserted
    |> List.filter (fun (f, _, _) -> f = "main")
  in
  Alcotest.(check (list triple3))
    "with the callee summary, main frees the returned slice"
    [ ("main", "xs", "slice") ]
    (frees with_sums);
  Alcotest.(check (list triple3))
    "without it, the default tag forbids freeing" [] (frees without_sums)

(* ---------------------------------------------------------------- *)
(* Loader and graph errors                                           *)
(* ---------------------------------------------------------------- *)

let expect_build_error ~substring root =
  match B.Driver.build root with
  | _ -> Alcotest.failf "expected a build error mentioning %S" substring
  | exception (B.Driver.Error msg | B.Loader.Error msg) ->
    if not (contains msg substring) then
      Alcotest.failf "error %S does not mention %S" msg substring

let test_import_cycle_rejected () =
  let root =
    make_tree
      [
        ("a/a.go", "package a\nimport \"b\"\nfunc A() int { return b.B() }\n");
        ("b/b.go", "package b\nimport \"a\"\nfunc B() int { return a.A() }\n");
        ("main.go", "package main\nimport \"a\"\nfunc main() { println(a.A()) }\n");
      ]
  in
  expect_build_error ~substring:"import cycle" root

let test_unresolved_import_rejected () =
  let root =
    make_tree
      [ ("main.go", "package main\nimport \"nosuch\"\nfunc main() {}\n") ]
  in
  expect_build_error ~substring:"nosuch" root

let test_missing_main_rejected () =
  let root = make_tree [ ("util/util.go", util_src) ] in
  expect_build_error ~substring:"main" root

(* ---------------------------------------------------------------- *)
(* Summary store: golden file format and round-trips                 *)
(* ---------------------------------------------------------------- *)

let sample_summary =
  {
    E.Summary.s_name = "util.MakeRange";
    s_nparams = 1;
    s_flows =
      [ { E.Summary.pf_param = 0; pf_target = `Heap; pf_derefs = 1 } ];
    s_contents =
      [|
        {
          E.Summary.ct_heap_alloc = true;
          ct_incomplete = false;
          ret_incomplete = false;
        };
      |];
    s_fields = [];
  }

let sample_entry =
  {
    B.Store.e_pkg = "util";
    e_key = "0123456789abcdef";
    e_nvars = 5;
    e_nsites = 2;
    e_summaries = [ sample_summary ];
    e_frees = [ ("util.MakeRange", 3, -1, Tast.Free_slice) ];
    e_site_heap = [ true; false ];
    e_var_boxed = [ 1; 3 ];
  }

let golden_entry_text =
  "(format gofree-sum-v2)\n\
   (package util)\n\
   (key 0123456789abcdef)\n\
   (nvars 5)\n\
   (nsites 2)\n\
   (summaries (summary (name util.MakeRange) (nparams 1) (flows (flow 0 \
   heap 1)) (contents (content true false false))))\n\
   (frees (free util.MakeRange 3 -1 slice))\n\
   (site-heap true false)\n\
   (var-boxed 1 3)\n"

let test_store_golden () =
  Alcotest.(check string)
    "serialized entry matches the golden file" golden_entry_text
    (B.Store.to_string sample_entry)

let test_store_roundtrip () =
  match B.Store.of_string (B.Store.to_string sample_entry) with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok e ->
    Alcotest.(check bool) "round-trip identity" true (e = sample_entry)

let test_store_save_load () =
  let root = make_tree [] in
  let dir = Filename.concat root "cache" in
  B.Store.save ~dir sample_entry;
  (match B.Store.load ~dir ~pkg:"util" with
  | Some e ->
    Alcotest.(check bool) "load returns the saved entry" true
      (e = sample_entry)
  | None -> Alcotest.fail "saved entry did not load");
  Alcotest.(check bool) "absent package misses" true
    (B.Store.load ~dir ~pkg:"nosuch" = None);
  (* a stale or corrupt file is just a miss, never an error *)
  let oc = open_out (B.Store.entry_path ~dir ~pkg:"util") in
  output_string oc "(format ancient-v0)\n(package util)\n";
  close_out oc;
  Alcotest.(check bool) "stale format misses" true
    (B.Store.load ~dir ~pkg:"util" = None)

let test_stored_summary_survives_store () =
  (* a summary produced by real analysis, through the store and back *)
  let root = make_tree tree_files in
  let r = B.Driver.build root in
  ignore r;
  let dir = Filename.concat root ".gofree-cache" in
  match B.Store.load ~dir ~pkg:"util" with
  | None -> Alcotest.fail "build did not persist util's entry"
  | Some e ->
    let mk =
      List.find
        (fun s -> s.E.Summary.s_name = "util.MakeRange")
        e.B.Store.e_summaries
    in
    Alcotest.(check bool)
      "stored MakeRange returns a fresh heap allocation" true
      mk.E.Summary.s_contents.(0).E.Summary.ct_heap_alloc;
    (match E.Summary.of_string (E.Summary.to_string mk) with
    | Ok s ->
      Alcotest.(check bool) "summary text round-trip" true (s = mk)
    | Error err -> Alcotest.failf "summary did not re-parse: %s" err)

let suite =
  [
    Alcotest.test_case "parse package and imports" `Quick
      test_parse_package_imports;
    Alcotest.test_case "parse aliased import" `Quick
      test_parse_import_alias;
    Alcotest.test_case "whole-program parse ignores header" `Quick
      test_parse_discards_package_in_whole_program_mode;
    Alcotest.test_case "unexported reference rejected" `Quick
      test_unexported_rejected;
    Alcotest.test_case "unknown package rejected" `Quick
      test_unknown_package_rejected;
    Alcotest.test_case "multi-package == single-file insertions" `Quick
      test_equivalence_with_single_file;
    Alcotest.test_case "parallel build matches sequential" `Quick
      test_parallel_matches_sequential;
    Alcotest.test_case "warm cache skips analysis" `Quick
      test_warm_cache_skips_analysis;
    Alcotest.test_case "change invalidates transitively" `Quick
      test_change_invalidates_transitively;
    Alcotest.test_case "force ignores cache" `Quick test_force_ignores_cache;
    Alcotest.test_case "missing summary is conservative" `Quick
      test_missing_summary_is_conservative;
    Alcotest.test_case "import cycle rejected" `Quick
      test_import_cycle_rejected;
    Alcotest.test_case "unresolved import rejected" `Quick
      test_unresolved_import_rejected;
    Alcotest.test_case "missing main rejected" `Quick
      test_missing_main_rejected;
    Alcotest.test_case "store golden file" `Quick test_store_golden;
    Alcotest.test_case "store round-trip" `Quick test_store_roundtrip;
    Alcotest.test_case "store save/load/miss" `Quick test_store_save_load;
    Alcotest.test_case "stored summary survives the store" `Quick
      test_stored_summary_survives_store;
  ]
