(** The [gofreec load] harness: mix parsing, seeded determinism of the
    generated schedules, the [gofree-load-v1] report, and a smoke run
    against a live in-process daemon. *)

module Json = Gofree_obs.Json
module Schema = Gofree_obs.Schema
module Rng = Gofree_load.Rng
module Mix = Gofree_load.Mix
module Schedule = Gofree_load.Schedule
module Harness = Gofree_load.Harness
module Server = Gofree_server.Server

(* ---- mix ---- *)

let test_mix_parse () =
  (match Mix.of_string "analyze=4,run=2,explain=1,stats=1" with
  | Ok m ->
    Alcotest.(check int) "analyze weight" 4 (Mix.weight m Mix.Analyze);
    Alcotest.(check int) "build weight defaults 0" 0
      (Mix.weight m Mix.Build);
    Alcotest.(check int) "total" 8 (Mix.total m);
    (* round-trip through the canonical rendering *)
    Alcotest.(check string) "to_string round-trips"
      (Mix.to_string m)
      (match Mix.of_string (Mix.to_string m) with
      | Ok m' -> Mix.to_string m'
      | Error e -> e)
  | Error m -> Alcotest.failf "parse failed: %s" m);
  let bad s =
    match Mix.of_string s with
    | Ok _ -> Alcotest.failf "%S parsed" s
    | Error _ -> ()
  in
  bad "";
  bad "frobnicate=1";
  bad "analyze=x";
  bad "analyze=-1";
  bad "analyze=1,analyze=2";
  bad "analyze=0,run=0"

let test_mix_pick_covers () =
  (* picking across the unit interval must reach exactly the positive
     weights, in proportion *)
  let m =
    match Mix.of_string "analyze=3,run=1" with
    | Ok m -> m
    | Error e -> Alcotest.fail e
  in
  let n = 1000 in
  let counts = Hashtbl.create 4 in
  for i = 0 to n - 1 do
    let k = Mix.pick m ~u:(float_of_int i /. float_of_int n) in
    Hashtbl.replace counts k
      (1 + Option.value (Hashtbl.find_opt counts k) ~default:0)
  done;
  Alcotest.(check int) "analyze share" 750
    (Option.value (Hashtbl.find_opt counts Mix.Analyze) ~default:0);
  Alcotest.(check int) "run share" 250
    (Option.value (Hashtbl.find_opt counts Mix.Run) ~default:0);
  Alcotest.(check int) "zero-weight kinds never picked" 0
    (Option.value (Hashtbl.find_opt counts Mix.Stats) ~default:0)

(* ---- rng ---- *)

let test_rng_determinism () =
  let a = Rng.stream ~seed:7 ~client:3 in
  let b = Rng.stream ~seed:7 ~client:3 in
  for i = 1 to 64 do
    Alcotest.(check int)
      (Printf.sprintf "draw %d equal" i)
      (Rng.int a 1_000_000) (Rng.int b 1_000_000)
  done;
  (* distinct clients of one seed are distinct streams *)
  let c0 = Rng.stream ~seed:7 ~client:0 in
  let c1 = Rng.stream ~seed:7 ~client:1 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int c0 1_000_000 = Rng.int c1 1_000_000 then incr same
  done;
  Alcotest.(check bool) "client streams diverge" true (!same < 8);
  (* floats live in [0, 1) *)
  let r = Rng.create ~seed:123 in
  for _ = 1 to 1000 do
    let f = Rng.float r in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 1.0)
  done

(* ---- schedule determinism (the seeded-determinism contract) ---- *)

let events_fingerprint ~seed ~client ~arrival n =
  let gen =
    Schedule.make ~seed ~client ~mix:Mix.default ~workloads:6 ~churn:0.2
      ~arrival
  in
  List.init n (fun _ ->
      Json.to_string
        (Schedule.event_json
           ~workload_name:(fun _ i -> string_of_int i)
           (Schedule.next gen)))
  |> String.concat "\n"

let test_schedule_determinism () =
  List.iter
    (fun arrival ->
      Alcotest.(check string)
        (Schedule.arrival_name arrival ^ " schedule is seed-determined")
        (events_fingerprint ~seed:42 ~client:1 ~arrival 200)
        (events_fingerprint ~seed:42 ~client:1 ~arrival 200))
    [ Schedule.Closed; Schedule.Poisson 50.0; Schedule.Uniform 50.0 ];
  (* different seed, different schedule *)
  Alcotest.(check bool) "seed changes the schedule" true
    (events_fingerprint ~seed:1 ~client:0 ~arrival:Schedule.Closed 200
    <> events_fingerprint ~seed:2 ~client:0 ~arrival:Schedule.Closed 200);
  (* a client's stream does not shift when its index changes *)
  Alcotest.(check bool) "clients get distinct schedules" true
    (events_fingerprint ~seed:1 ~client:0 ~arrival:Schedule.Closed 200
    <> events_fingerprint ~seed:1 ~client:1 ~arrival:Schedule.Closed 200)

let test_schedule_shapes () =
  let gen arrival =
    Schedule.make ~seed:5 ~client:0 ~mix:Mix.default ~workloads:6
      ~churn:0.0 ~arrival
  in
  let g = gen Schedule.Closed in
  for _ = 1 to 50 do
    let ev = Schedule.next g in
    Alcotest.(check (float 0.0)) "closed loop has no gaps" 0.0
      ev.Schedule.ev_gap_ms;
    Alcotest.(check bool) "no churn, no reconnects" false
      ev.Schedule.ev_reconnect;
    Alcotest.(check bool) "workload in range" true
      (ev.Schedule.ev_workload >= 0 && ev.Schedule.ev_workload < 6)
  done;
  let g = gen (Schedule.Uniform 100.0) in
  ignore (Schedule.next g);
  let ev = Schedule.next g in
  Alcotest.(check (float 1e-9)) "uniform gap is 1000/rps" 10.0
    ev.Schedule.ev_gap_ms;
  let g = gen (Schedule.Poisson 100.0) in
  let total = ref 0.0 in
  let n = 2000 in
  for _ = 1 to n do
    let ev = Schedule.next g in
    Alcotest.(check bool) "poisson gap nonnegative" true
      (ev.Schedule.ev_gap_ms >= 0.0);
    total := !total +. ev.Schedule.ev_gap_ms
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "poisson mean gap near 10ms (got %.2f)" mean)
    true
    (mean > 8.0 && mean < 12.0);
  (* a churning generator's first event never reconnects: there is no
     connection to drop yet *)
  let g =
    Schedule.make ~seed:5 ~client:0 ~mix:Mix.default ~workloads:6
      ~churn:1.0 ~arrival:Schedule.Closed
  in
  let first = Schedule.next g in
  Alcotest.(check bool) "first event cannot churn" false
    first.Schedule.ev_reconnect;
  Alcotest.(check bool) "churn 1.0 reconnects afterwards" true
    (Schedule.next g).Schedule.ev_reconnect

(* ---- dry-run: two same-seed runs, identical schedules, valid doc ---- *)

let dry_cfg socket =
  {
    (Harness.default_config ~socket) with
    Harness.clients = 3;
    arrival = Schedule.Poisson 10.0;
    churn = 0.1;
    seed = 99;
    scale = 10;
  }

let test_dry_run_deterministic () =
  let doc () =
    match Harness.dry_run (dry_cfg "/nonexistent.sock") ~events:32 with
    | Ok d -> Json.to_string d
    | Error m -> Alcotest.fail m
  in
  let a = doc () in
  Alcotest.(check string) "same seed, byte-identical schedule" a (doc ());
  (* the document passes the registry gate and declares the dry run *)
  let j = Json.parse a in
  (match Schema.check Schema.Load j with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Alcotest.(check bool) "dry_run marked" true
    (Json.member "dry_run" j = Some (Json.Bool true));
  Alcotest.(check int) "one entry per client" 3
    (List.length (Json.get_list "clients" j));
  (* a different seed yields a different schedule *)
  let other =
    match
      Harness.dry_run
        { (dry_cfg "/nonexistent.sock") with Harness.seed = 100 }
        ~events:32
    with
    | Ok d -> Json.to_string d
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check bool) "seed changes the dry run" true (a <> other)

let test_config_validation () =
  let cfg = Harness.default_config ~socket:"/nonexistent.sock" in
  let expect_error c =
    match Harness.dry_run c ~events:1 with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "invalid config accepted"
  in
  expect_error { cfg with Harness.clients = 0 };
  expect_error { cfg with Harness.duration_s = 0.0 };
  expect_error
    {
      cfg with
      Harness.mix =
        [ (Mix.Analyze, 0); (Mix.Run, 0); (Mix.Explain, 0);
          (Mix.Build, 1); (Mix.Stats, 0) ];
      (* build weight without a build dir *)
      build_dir = None;
    }

(* ---- live smoke: harness against an in-process daemon ---- *)

let test_harness_smoke () =
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gofree-load-%d.sock" (Unix.getpid ()))
  in
  let t = Server.start ~workers:2 ~socket () in
  Fun.protect
    ~finally:(fun () -> Server.stop t)
    (fun () ->
      let cfg =
        {
          (Harness.default_config ~socket) with
          Harness.clients = 2;
          duration_s = 0.6;
          scale = 10;
          seed = 11;
        }
      in
      match Harness.run cfg with
      | Error m -> Alcotest.fail m
      | Ok report ->
        (match Schema.check Schema.Load report with
        | Ok () -> ()
        | Error m -> Alcotest.fail m);
        let achieved = Json.get "achieved" report in
        Alcotest.(check bool) "some requests served" true
          (Json.get_int "ok" achieved >= 1);
        Alcotest.(check int) "no hard errors" 0
          (Json.get_int "errors" achieved);
        Alcotest.(check bool) "well-formed load meets its SLO" true
          (Harness.slo_ok report);
        Alcotest.(check bool) "outputs byte-identical" true
          (Json.member "outputs_identical" (Json.get "consistency" report)
          = Some (Json.Bool true));
        let all = Json.get "all" (Json.get "latency_ms" report) in
        Alcotest.(check bool) "latency ladder present" true
          (Json.get_float "p50_ms" all <= Json.get_float "p99_ms" all))

let suite =
  [
    Alcotest.test_case "mix parse" `Quick test_mix_parse;
    Alcotest.test_case "mix pick covers weights" `Quick
      test_mix_pick_covers;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "schedule determinism" `Quick
      test_schedule_determinism;
    Alcotest.test_case "schedule shapes" `Quick test_schedule_shapes;
    Alcotest.test_case "dry-run deterministic" `Quick
      test_dry_run_deterministic;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "harness smoke against live daemon" `Quick
      test_harness_smoke;
  ]
