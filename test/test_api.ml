(** The {!Gofree_api} facade and the {!Gofree_obs.Schema} registry.

    The facade is the only surface [bin/gofreec.ml] is allowed to touch,
    so these tests pin its behaviour against the underlying pipeline:
    same insertions, same outputs, same error discipline. *)

module Json = Gofree_obs.Json
module Schema = Gofree_obs.Schema

let src_free =
  {|
func localSum(n int) int {
	xs := make([]int, n)
	s := 0
	for i := range xs {
		xs[i] = i
		s = s + xs[i]
	}
	return s
}

func main() {
	println(localSum(64))
}
|}

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "api error: %s" (Gofree_api.error_message e)

(* ---- facade vs pipeline ---- *)

let test_insertions_match_pipeline () =
  let c = ok (Gofree_api.compile_string src_free) in
  let via_api =
    List.map
      (fun i ->
        ( i.Gofree_api.ins_function,
          i.Gofree_api.ins_variable,
          Gofree_api.free_kind_name i.Gofree_api.ins_kind ))
      (Gofree_api.insertions c)
  in
  let direct =
    Helpers.inserted_vars (Gofree_core.Pipeline.compile src_free)
  in
  Alcotest.(check (list (triple string string string)))
    "facade reports the pipeline's insertions" direct via_api

let test_run_matches_interpreter () =
  let outcome = ok (Gofree_api.run_string src_free) in
  let expected = Helpers.output src_free in
  Alcotest.(check string) "facade run output" expected
    outcome.Gofree_api.output;
  Alcotest.(check bool) "no panic" false outcome.Gofree_api.panicked

let test_presets () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Gofree_api.preset_name p ^ " round-trips")
        true
        (Gofree_api.preset_of_name (Gofree_api.preset_name p) = Some p))
    [ Gofree_api.Gofree; Gofree_api.Go; Gofree_api.All_targets;
      Gofree_api.No_ipa ];
  (* --go really disables insertion *)
  let c =
    ok
      (Gofree_api.compile_string
         ~config:(Gofree_api.config_of_preset Gofree_api.Go)
         src_free)
  in
  Alcotest.(check int) "stock Go inserts nothing" 0
    (List.length (Gofree_api.insertions c))

(* ---- Preset builder and the config <-> JSON codec ---- *)

let test_preset_builders () =
  let module P = Gofree_api.Preset in
  let module C = Gofree_core.Config in
  (* every named preset resolves and its name round-trips *)
  List.iter
    (fun (name, cfg) ->
      match P.of_name name with
      | None -> Alcotest.failf "preset %S not resolvable" name
      | Some p ->
        Alcotest.(check string)
          (name ^ " resolves to itself")
          (C.signature (P.to_config p))
          (C.signature cfg))
    P.named;
  Alcotest.(check bool) "unknown preset rejected" true
    (P.of_name "nope" = None);
  (* combinators compose left to right over the default *)
  let built =
    P.(
      default |> with_targets C.All_pointers
      |> with_field_sensitivity true
      |> with_placement C.Last_use |> to_config)
  in
  Alcotest.(check bool) "with_targets applied" true
    (built.C.targets = C.All_pointers);
  Alcotest.(check bool) "with_field_sensitivity applied" true
    built.C.precision.C.field_sensitive;
  Alcotest.(check bool) "with_placement applied" true
    (built.C.precision.C.placement = C.Last_use);
  (* precise = field-sensitive + last-use *)
  Alcotest.(check bool) "precise == field-sensitive + last-use" true
    (C.precise_precision
    = { C.field_sensitive = true; C.placement = C.Last_use })

let test_config_json_roundtrip () =
  let module P = Gofree_api.Preset in
  let module C = Gofree_core.Config in
  List.iter
    (fun (name, cfg) ->
      match Gofree_api.config_of_json (Gofree_api.config_to_json cfg) with
      | Ok cfg' ->
        Alcotest.(check string)
          (name ^ " config json round-trips")
          (C.signature cfg) (C.signature cfg')
      | Error m -> Alcotest.failf "%s: %s" name m)
    P.named;
  (* partial objects default to the paper's configuration *)
  (match
     Gofree_api.config_of_json
       (Json.Obj
          [ ( "precision",
              Json.Obj [ ("field_sensitive", Json.Bool true) ] ) ])
   with
  | Ok c ->
    Alcotest.(check string) "partial config defaults"
      (C.signature P.(to_config (with_field_sensitivity true default)))
      (C.signature c)
  | Error m -> Alcotest.failf "partial config rejected: %s" m);
  (* unknown fields are schema errors, not silently dropped *)
  (match Gofree_api.config_of_json (Json.Obj [ ("bogus", Json.Bool true) ])
   with
  | Ok _ -> Alcotest.fail "unknown config field accepted"
  | Error _ -> ());
  match
    Gofree_api.config_of_json
      (Json.Obj
         [ ("precision", Json.Obj [ ("placement", Json.Str "sometime") ]) ])
  with
  | Ok _ -> Alcotest.fail "unknown placement accepted"
  | Error _ -> ()

let test_error_discipline () =
  (match Gofree_api.compile_string "func main( {}" with
  | Ok _ -> Alcotest.fail "garbage compiled"
  | Error e ->
    Alcotest.(check int) "compile errors exit 1" 1
      (Gofree_api.error_exit_code e));
  match
    Gofree_api.run_string
      "func main() {\n\tvar xs []int\n\tprintln(xs[3])\n}\n"
  with
  | Ok o ->
    (* out-of-range is a panic, reported in the outcome, not an error *)
    Alcotest.(check bool) "index panic reported" true o.Gofree_api.panicked
  | Error e ->
    Alcotest.(check int) "runtime errors exit 2" 2
      (Gofree_api.error_exit_code e)

(* ---- content keys ---- *)

let test_source_key () =
  let config = Gofree_api.config_of_preset Gofree_api.Gofree in
  let k1 = Gofree_api.source_key ~config src_free in
  Alcotest.(check string) "key is deterministic" k1
    (Gofree_api.source_key ~config src_free);
  Alcotest.(check bool) "key covers the source" true
    (k1 <> Gofree_api.source_key ~config (src_free ^ "\n// edit\n"));
  Alcotest.(check bool) "key covers the config" true
    (k1
    <> Gofree_api.source_key
         ~config:(Gofree_api.config_of_preset Gofree_api.Go)
         src_free)

(* ---- schema registry ---- *)

let all_schemas =
  [ Schema.Metrics; Schema.Samples; Schema.Build_stats; Schema.Explain;
    Schema.Bench; Schema.Rpc; Schema.Load; Schema.Telemetry;
    Schema.Precision ]

(* Exhaustive by construction: adding a [Schema.t] constructor breaks
   this match, which forces [all_schemas] (and the registry list it is
   checked against) to keep up. *)
let constructor_index : Schema.t -> int = function
  | Schema.Metrics -> 0
  | Schema.Samples -> 1
  | Schema.Build_stats -> 2
  | Schema.Explain -> 3
  | Schema.Bench -> 4
  | Schema.Rpc -> 5
  | Schema.Load -> 6
  | Schema.Telemetry -> 7
  | Schema.Precision -> 8

let test_schema_tags () =
  let indexes = List.sort_uniq compare (List.map constructor_index all_schemas) in
  Alcotest.(check (list int))
    "all_schemas lists every constructor once"
    (List.init (List.length all_schemas) Fun.id)
    indexes;
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Schema.tag s ^ " round-trips")
        true
        (Schema.of_tag (Schema.tag s) = Some s))
    all_schemas;
  (* every tag is distinct, and the local list tracks the registry *)
  Alcotest.(check int) "registry covered" (List.length Schema.all)
    (List.length all_schemas);
  let tags = List.sort_uniq compare (List.map Schema.tag all_schemas) in
  Alcotest.(check int) "all tags distinct" (List.length all_schemas)
    (List.length tags)

let check_msg s j =
  match Schema.check s j with
  | Ok () -> Alcotest.fail "bad document accepted"
  | Error m -> m

let test_schema_check () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Schema.tag s ^ " accepts itself")
        true
        (Schema.check s (Json.Obj [ Schema.field s ]) = Ok ()))
    all_schemas;
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  let m = check_msg Schema.Metrics (Json.Obj [ ("x", Json.Int 1) ]) in
  Alcotest.(check bool) "missing tag names the expectation" true
    (contains "gofree-metrics-v1" m);
  let m =
    check_msg Schema.Metrics
      (Json.Obj [ ("schema", Json.Str "gofree-samples-v1") ])
  in
  Alcotest.(check bool) "wrong family names both tags" true
    (contains "gofree-samples-v1" m && contains "gofree-metrics-v1" m);
  let m =
    check_msg Schema.Metrics
      (Json.Obj [ ("schema", Json.Str "gofree-metrics-v9") ])
  in
  Alcotest.(check bool) "version mismatch mentions version" true
    (contains "version" m)

let test_schema_guards_parsers () =
  (* of_json refuses a samples document where metrics are expected *)
  let m = Gofree_api.run_string src_free in
  let doc =
    match m with
    | Ok o -> Json.get "metrics" o.Gofree_api.metrics_json
    | Error _ -> Alcotest.fail "run failed"
  in
  (* the real document parses back *)
  ignore (Gofree_runtime.Metrics.of_json doc);
  match
    Gofree_runtime.Metrics.of_json
      (Json.Obj [ ("schema", Json.Str "gofree-samples-v1") ])
  with
  | _ -> Alcotest.fail "wrong-schema document parsed"
  | exception Json.Parse_error _ -> ()

let suite =
  [
    Alcotest.test_case "insertions match pipeline" `Quick
      test_insertions_match_pipeline;
    Alcotest.test_case "run matches interpreter" `Quick
      test_run_matches_interpreter;
    Alcotest.test_case "presets" `Quick test_presets;
    Alcotest.test_case "preset builders" `Quick test_preset_builders;
    Alcotest.test_case "config json round-trip" `Quick
      test_config_json_roundtrip;
    Alcotest.test_case "error discipline" `Quick test_error_discipline;
    Alcotest.test_case "source key" `Quick test_source_key;
    Alcotest.test_case "schema tags" `Quick test_schema_tags;
    Alcotest.test_case "schema check diagnostics" `Quick test_schema_check;
    Alcotest.test_case "schema guards parsers" `Quick
      test_schema_guards_parsers;
  ]
