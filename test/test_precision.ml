(** Differential suite for the precision frontier: every precision mode
    (baseline, field-sensitive, last-use, precise) must behave like a
    {e mode} of one compiler, not a fork —

    - the three execution engines stay byte-identical to each other
      {e within} each mode (output, step count, metrics JSON);
    - analysis is deterministic across pooled and sequential builds,
      and warm cache replays are byte-identical to cold builds, in
      every mode;
    - precision is monotone: no mode ever inserts {e fewer} tcfree
      calls than the baseline on the six paper workloads or on
      generated programs;
    - the poison harness stays silent in every mode — more freeing,
      never wrong freeing (paper §6.8);
    - the [--explain-delta] report accounts for the improvement:
      freed-site counts are monotone and eliminated blocking reasons
      sum consistently. *)

module W = Gofree_workloads.Workloads
module C = Gofree_core.Config
module Rt = Gofree_runtime
module B = Gofree_build
module Json = Gofree_obs.Json

let modes =
  [
    ("baseline", C.gofree);
    ("field-sensitive", C.field_sensitive);
    ("last-use", C.last_use);
    ("precise", C.precise);
  ]

let refined_modes = List.filter (fun (n, _) -> n <> "baseline") modes

let engines =
  [
    ("reference", Gofree_interp.Interp.Eng_reference);
    ("closure", Gofree_interp.Interp.Eng_closure);
    ("bytecode", Gofree_interp.Interp.Eng_bytecode);
  ]

let run_mode ~engine ~config src =
  let run_config =
    {
      Gofree_interp.Interp.default_config with
      heap_config =
        {
          Rt.Heap.default_config with
          min_heap = 96 * 1024;  (* small heap: force real GC activity *)
          grow_map_free_old = config.C.insert_tcfree;
        };
      engine;
    }
  in
  Gofree_interp.Runner.compile_and_run ~gofree_config:config ~run_config src

let metrics_fingerprint (m : Rt.Metrics.t) : string =
  m.Rt.Metrics.gc_time_ns <- 0L;
  Json.to_string_pretty (Rt.Metrics.to_json m)

(* ---- engine identity within each mode ---------------------------- *)

let check_engines_identical ~name ~config src =
  let r_ref = run_mode ~engine:Gofree_interp.Interp.Eng_reference ~config src in
  List.iter
    (fun (ename, engine) ->
      if engine <> Gofree_interp.Interp.Eng_reference then begin
        let r = run_mode ~engine ~config src in
        Alcotest.(check string)
          (name ^ ": output (" ^ ename ^ ")")
          r_ref.Gofree_interp.Runner.output r.Gofree_interp.Runner.output;
        Alcotest.(check int)
          (name ^ ": steps (" ^ ename ^ ")")
          r_ref.Gofree_interp.Runner.steps r.Gofree_interp.Runner.steps;
        Alcotest.(check string)
          (name ^ ": metrics (" ^ ename ^ ")")
          (metrics_fingerprint r_ref.Gofree_interp.Runner.metrics)
          (metrics_fingerprint r.Gofree_interp.Runner.metrics)
      end)
    engines

let test_engines_per_mode (w : W.t) () =
  let size = max 10 (w.W.w_default_size / 5) in
  let src = W.source_of ~size w in
  List.iter
    (fun (mname, config) ->
      check_engines_identical ~name:(w.W.w_name ^ "/" ^ mname) ~config src)
    modes

(* ---- monotonicity: never fewer free sites than baseline ----------- *)

let insertion_count config src =
  List.length
    (Helpers.inserted_vars (Gofree_core.Pipeline.compile ~config src))

let check_monotone ~name src =
  let base = insertion_count C.gofree src in
  List.iter
    (fun (mname, config) ->
      let n = insertion_count config src in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s inserts >= baseline (%d >= %d)" name mname
           n base)
        true (n >= base))
    refined_modes

let test_monotonicity_workloads () =
  List.iter
    (fun (w : W.t) ->
      let size = max 10 (w.W.w_default_size / 5) in
      check_monotone ~name:w.W.w_name (W.source_of ~size w))
    W.all

let test_monotonicity_generated () =
  for seed = 1 to 15 do
    check_monotone
      ~name:(Printf.sprintf "randprog %d" seed)
      (Gofree_workloads.Randprog.generate (seed * 7919))
  done

(* ---- poison safety in every mode ---------------------------------- *)

let poison_run config src =
  let run_config =
    {
      Gofree_interp.Interp.default_config with
      heap_config = { Rt.Heap.default_config with poison_on_free = true };
    }
  in
  Gofree_interp.Runner.compile_and_run ~gofree_config:config ~run_config src

let test_poison_all_modes () =
  let programs =
    List.map
      (fun (w : W.t) ->
        (w.W.w_name, W.source_of ~size:(max 10 (w.W.w_default_size / 5)) w))
      W.all
    @ List.init 10 (fun i ->
          let seed = (i + 1) * 104729 in
          (Printf.sprintf "randprog %d" seed,
           Gofree_workloads.Randprog.generate seed))
  in
  List.iter
    (fun (name, src) ->
      let go = (poison_run C.go src).Gofree_interp.Runner.output in
      List.iter
        (fun (mname, config) ->
          match poison_run config src with
          | r ->
            Alcotest.(check string)
              (Printf.sprintf "%s/%s output unchanged under poison" name
                 mname)
              go r.Gofree_interp.Runner.output
          | exception Gofree_interp.Value.Corruption msg ->
            Alcotest.failf "%s/%s mis-freed: %s" name mname msg)
        modes)
    programs

(* ---- pooled == sequential, warm == cold, per mode ----------------- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

let tree_counter = ref 0

(* A three-package tree whose freeing frontier moves with precision:
   store.Log holds slice-valued fields appended to by helpers, so the
   field-sensitive modes free spines the baseline leaves to the GC. *)
let tree_files =
  [
    ( "util/util.go",
      "package util\n\n\
       func MakeRange(n int) []int {\n\
       \txs := make([]int, n)\n\
       \tfor i := range xs {\n\
       \t\txs[i] = i\n\
       \t}\n\
       \treturn xs\n\
       }\n" );
    ( "store/store.go",
      "package store\n\n\
       import \"util\"\n\n\
       type Log struct {\n\
       \tEntries [][]int\n\
       \tSizes   []int\n\
       }\n\n\
       func Push(lg *Log, n int) {\n\
       \te := util.MakeRange(n)\n\
       \tlg.Entries = append(lg.Entries, e)\n\
       \tlg.Sizes = append(lg.Sizes, n)\n\
       }\n\n\
       func Total(lg *Log) int {\n\
       \tt := 0\n\
       \tfor i := range lg.Sizes {\n\
       \t\tt = t + lg.Sizes[i]\n\
       \t}\n\
       \treturn t\n\
       }\n" );
    ( "main.go",
      "package main\n\n\
       import (\n\
       \t\"util\"\n\
       \t\"store\"\n\
       )\n\n\
       func main() {\n\
       \tn := 6\n\
       \tlg := &store.Log{Entries: make([][]int, 0, n),\n\
       \t\tSizes: make([]int, 0, n)}\n\
       \tfor i := 0; i < n; i++ {\n\
       \t\tstore.Push(lg, 8+i)\n\
       \t}\n\
       \txs := util.MakeRange(32)\n\
       \tprintln(\"total\", store.Total(lg)+xs[31])\n\
       }\n" );
  ]

let make_tree () =
  incr tree_counter;
  let root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gofree-precision-test-%d-%d" (Unix.getpid ())
         !tree_counter)
  in
  mkdir_p root;
  List.iter
    (fun (rel, src) ->
      let path = Filename.concat root rel in
      mkdir_p (Filename.dirname path);
      let oc = open_out_bin path in
      output_string oc src;
      close_out oc)
    tree_files;
  root

let kind_str = function
  | Minigo.Tast.Free_slice -> "slice"
  | Minigo.Tast.Free_map -> "map"
  | Minigo.Tast.Free_obj -> "obj"

(** Insertions (absolute var ids, fields), program output and metrics:
    equal fingerprints = observationally identical builds. *)
let build_fingerprint (r : B.Driver.result) =
  let insertions =
    List.sort compare
      (List.map
         (fun { Gofree_core.Instrument.ins_func; ins_var; ins_field;
                ins_kind } ->
           Printf.sprintf "%s/%d%s/%s/%s" ins_func
             ins_var.Minigo.Tast.v_id
             (match ins_field with
             | Some (idx, fname) -> Printf.sprintf ".%d:%s" idx fname
             | None -> "")
             ins_var.Minigo.Tast.v_name (kind_str ins_kind))
         r.B.Driver.b_inserted)
  in
  let run =
    Gofree_interp.Runner.run_program
      ~decisions:
        {
          Gofree_interp.Decisions.site_heap = r.B.Driver.b_site_heap;
          var_boxed = r.B.Driver.b_var_boxed;
        }
      r.B.Driver.b_program
  in
  String.concat "\n" insertions
  ^ "\n---\n" ^ run.Gofree_interp.Runner.output ^ "\n---\n"
  ^ Json.to_string (Rt.Metrics.to_json run.Gofree_interp.Runner.metrics)

let test_build_determinism_per_mode () =
  List.iter
    (fun (mname, config) ->
      let root = make_tree () in
      let sequential = B.Driver.build ~config ~jobs:1 root in
      let pooled = B.Driver.build ~config ~jobs:4 ~force:true root in
      Alcotest.(check string)
        (mname ^ ": pooled build == sequential build")
        (build_fingerprint sequential)
        (build_fingerprint pooled);
      (* third build replays everything from the store *)
      let warm = B.Driver.build ~config root in
      Alcotest.(check string)
        (mname ^ ": warm replay == cold build")
        (build_fingerprint sequential)
        (build_fingerprint warm);
      Alcotest.(check int)
        (mname ^ ": warm build re-solved nothing")
        0 warm.B.Driver.b_stats.B.Driver.bs_unit_misses)
    modes

(* field frees must actually appear in the tree build under the
   field-sensitive modes, and never under baseline *)
let test_tree_field_frees () =
  let field_frees config =
    let root = make_tree () in
    let r = B.Driver.build ~config root in
    List.filter
      (fun i -> i.Gofree_core.Instrument.ins_field <> None)
      r.B.Driver.b_inserted
    |> List.length
  in
  Alcotest.(check int) "baseline has no field frees" 0
    (field_frees C.gofree);
  Alcotest.(check bool) "field-sensitive mode frees through fields" true
    (field_frees C.field_sensitive > 0)

(* ---- the explain-delta accounting --------------------------------- *)

let test_explain_delta () =
  let src = W.source_of (List.find (fun w -> w.W.w_name = "scheck") W.all) in
  let explain config =
    match Gofree_api.compile_string ~config src with
    | Ok c -> Gofree_api.explain c
    | Error e -> Alcotest.failf "compile: %s" (Gofree_api.error_message e)
  in
  let baseline = explain C.gofree in
  List.iter
    (fun (mname, config) ->
      let refined = explain config in
      let freed es =
        List.length
          (List.filter
             (fun e -> e.Gofree_core.Report.ex_freed_by <> None)
             es)
      in
      Alcotest.(check bool)
        (mname ^ ": freed sites monotone")
        true
        (freed refined >= freed baseline);
      (* the delta document balances: eliminated blocked sites ==
         newly freed sites (total sites and heap decisions are fixed
         across modes) *)
      let delta = Gofree_api.explain_delta ~baseline ~refined in
      let eliminated =
        match Json.member "eliminated" delta with
        | Some (Json.Obj fields) ->
          List.fold_left
            (fun acc (_, v) ->
              match v with Json.Int n -> acc + n | _ -> acc)
            0 fields
        | _ -> Alcotest.fail "delta has no eliminated object"
      in
      Alcotest.(check int)
        (mname ^ ": eliminated blocking == newly freed")
        (freed refined - freed baseline)
        eliminated)
    refined_modes

let suite =
  List.map
    (fun (w : W.t) ->
      Alcotest.test_case
        ("engines identical per mode: " ^ w.W.w_name)
        `Quick (test_engines_per_mode w))
    W.all
  @ [
      Alcotest.test_case "monotone free sites on workloads" `Quick
        test_monotonicity_workloads;
      Alcotest.test_case "monotone free sites on generated programs"
        `Quick test_monotonicity_generated;
      Alcotest.test_case "poison silent in every mode" `Quick
        test_poison_all_modes;
      Alcotest.test_case "pooled/sequential/warm builds identical per mode"
        `Quick test_build_determinism_per_mode;
      Alcotest.test_case "tree build frees fields" `Quick
        test_tree_field_frees;
      Alcotest.test_case "explain delta accounting" `Quick
        test_explain_delta;
    ]
