(** The [gofreec serve] daemon: protocol, resident cache, concurrency,
    and failure containment.

    Every test starts a real server on a fresh Unix socket (in-process,
    via {!Gofree_server.Server.start}) and talks to it through
    {!Gofree_server.Client} — the same code paths [gofreec client]
    uses. *)

module Json = Gofree_obs.Json
module Server = Gofree_server.Server
module Client = Gofree_server.Client
module Rpc = Gofree_server.Rpc

let counter = ref 0

let fresh_socket () =
  incr counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "gofree-test-%d-%d.sock" (Unix.getpid ()) !counter)

(** Run [f server socket] against a live daemon; always stops it. *)
let with_server ?workers ?queue_capacity ?shed_watermark f =
  let socket = fresh_socket () in
  let t = Server.start ?workers ?queue_capacity ?shed_watermark ~socket () in
  Fun.protect ~finally:(fun () -> Server.stop t) (fun () -> f t socket)

let src_free =
  {|
func localSum(n int) int {
	xs := make([]int, n)
	s := 0
	for i := range xs {
		xs[i] = i
		s = s + xs[i]
	}
	return s
}

func main() {
	println(localSum(64))
}
|}

(* a distinct program per concurrent client: the printed constant tells
   us a response was not crossed between connections *)
let src_print n =
  Printf.sprintf "func main() {\n\txs := make([]int, %d)\n\tprintln(len(xs))\n}\n" n

let analyze ?(explain = false) src =
  Rpc.Analyze { src = Rpc.Inline src; config = Gofree_api.Preset.(to_config default); explain }

let run_req src =
  Rpc.Run
    {
      src = Rpc.Inline src;
      config = Gofree_api.Preset.(to_config default);
      options = Gofree_api.default_run_options;
    }

let call_ok c request =
  match Client.call c request with
  | Ok result -> result
  | Error (code, m) -> Alcotest.failf "rpc error %s: %s" code m

(* ---- protocol basics ---- *)

(* encode -> decode identity for the v2 envelope, across the precision
   surface: the structured "config" object must carry the whole Config.t
   (checked by signature, which covers every field) *)
let test_rpc_v2_config_roundtrip () =
  let module C = Gofree_core.Config in
  let requests config =
    [
      Rpc.Analyze { src = Rpc.Inline src_free; config; explain = true };
      Rpc.Run
        { src = Rpc.Inline src_free; config;
          options = Gofree_api.default_run_options };
      Rpc.Explain { src = Rpc.Inline src_free; config };
      Rpc.Build
        { dir = "/tmp/tree"; config; force = false; jobs = 1; run = false;
          cache_dir = None; options = Gofree_api.default_run_options };
    ]
  in
  let config_of = function
    | Rpc.Analyze { config; _ } | Rpc.Run { config; _ }
    | Rpc.Explain { config; _ } | Rpc.Build { config; _ } -> config
    | _ -> Alcotest.fail "unexpected request"
  in
  List.iter
    (fun (name, config) ->
      List.iter
        (fun request ->
          let line =
            Json.to_string (Rpc.request_to_json ~id:(Json.Int 1) request)
          in
          match Rpc.decode line with
          | Error (_, m) -> Alcotest.failf "%s: decode failed: %s" name m
          | Ok inc ->
            Alcotest.(check string)
              (name ^ "/" ^ Rpc.method_name request ^ " config round-trips")
              (C.signature config)
              (C.signature (config_of inc.Rpc.rq_request)))
        (requests config))
    Gofree_api.Preset.named

(* v1 envelopes — the flat preset-name "config" under the old schema
   tag — must still decode, to the same configuration *)
let test_rpc_v1_compat () =
  let module C = Gofree_core.Config in
  List.iter
    (fun (name, cfg) ->
      let line =
        Printf.sprintf
          "{\"schema\":\"gofree-rpc-v1\",\"id\":1,\"method\":\"analyze\",\
           \"params\":{\"source\":\"func main() {}\",\"config\":%S}}"
          name
      in
      match Rpc.decode line with
      | Error (_, m) -> Alcotest.failf "v1 %s rejected: %s" name m
      | Ok { Rpc.rq_request = Rpc.Analyze { config; _ }; _ } ->
        Alcotest.(check string)
          ("v1 preset " ^ name ^ " maps to the same config")
          (C.signature cfg) (C.signature config)
      | Ok _ -> Alcotest.fail "decoded to the wrong method")
    Gofree_api.Preset.named;
  (* malformed structured configs are decode errors, not crashes *)
  let bad =
    "{\"schema\":\"gofree-rpc-v2\",\"id\":1,\"method\":\"analyze\",\
     \"params\":{\"source\":\"x\",\"config\":{\"bogus\":true}}}"
  in
  (match Rpc.decode bad with
  | Error (Json.Int 1, _) -> ()
  | Error (id, _) ->
    Alcotest.failf "bad config echoed wrong id %s" (Json.to_string id)
  | Ok _ -> Alcotest.fail "unknown config field accepted");
  Alcotest.(check bool) "rpc-v1 is a legacy tag of Rpc" true
    (Gofree_obs.Schema.check Gofree_obs.Schema.Rpc
       (Json.Obj [ ("schema", Json.Str "gofree-rpc-v1") ])
    = Ok ())

(* a precision config sent over the wire changes what the daemon
   computes: field-sensitive mode frees strictly more here *)
let test_rpc_precision_config_applies () =
  let src =
    "type Box struct {\n\
     \tvals []int\n\
     }\n\n\
     func main() {\n\
     \tn := 64\n\
     \tb := Box{vals: make([]int, n)}\n\
     \tb.vals[0] = 1\n\
     \tprintln(b.vals[0])\n\
     }\n"
  in
  with_server (fun _ socket ->
      let c = Client.connect ~socket in
      let count config =
        let r =
          call_ok c (Rpc.Analyze { src = Rpc.Inline src; config;
                                   explain = false })
        in
        List.length (Json.get_list "insertions" r)
      in
      let baseline = count Gofree_api.Preset.(to_config default) in
      let field =
        count
          Gofree_api.Preset.(
            to_config (with_field_sensitivity true default))
      in
      Client.close c;
      Alcotest.(check bool)
        (Printf.sprintf "field-sensitive frees more (%d > %d)" field
           baseline)
        true (field > baseline))

let test_analyze_roundtrip () =
  with_server (fun _ socket ->
      let c = Client.connect ~socket in
      let r = call_ok c (analyze src_free) in
      Alcotest.(check bool) "first analyze is uncached" false
        (Json.get "cached" r = Json.Bool true);
      let vars =
        Json.get_list "insertions" r
        |> List.map (fun i -> Json.get_string "variable" i)
      in
      Alcotest.(check (list string)) "tcfree inserted for xs" [ "xs" ] vars;
      Client.close c)

let test_run_roundtrip () =
  with_server (fun _ socket ->
      match Client.call_once ~socket (run_req (src_print 7)) with
      | Error (code, m) -> Alcotest.failf "rpc error %s: %s" code m
      | Ok r ->
        Alcotest.(check string) "program output" "7\n"
          (Json.get_string "output" r);
        Alcotest.(check bool) "no panic" false
          (Json.get "panicked" r = Json.Bool true))

let test_warm_cache_skips_analysis () =
  with_server (fun t socket ->
      let c = Client.connect ~socket in
      let r1 = call_ok c (analyze src_free) in
      let r2 = call_ok c (analyze src_free) in
      Client.close c;
      Alcotest.(check bool) "cold miss" true
        (Json.get "cached" r1 = Json.Bool false);
      Alcotest.(check bool) "warm hit" true
        (Json.get "cached" r2 = Json.Bool true);
      (* identical payload either way: drop the cache marker and compare *)
      let strip = function
        | Json.Obj fields ->
          Json.Obj (List.filter (fun (k, _) -> k <> "cached") fields)
        | j -> j
      in
      Alcotest.(check string) "warm result is byte-identical"
        (Json.to_string (strip r1))
        (Json.to_string (strip r2));
      ignore t)

let test_build_resident_cache () =
  let root = Test_build.make_tree Test_build.tree_files in
  with_server (fun _ socket ->
      let c = Client.connect ~socket in
      let build force =
        call_ok c
          (Rpc.Build
             {
               dir = root;
               config = Gofree_api.Preset.(to_config default);
               force;
               jobs = 1;
               run = false;
               cache_dir = None;
               options = Gofree_api.default_run_options;
             })
      in
      let r1 = build false in
      let r2 = build false in
      Client.close c;
      Alcotest.(check string) "cold request misses" "miss"
        (Json.get_string "resident_cache" r1);
      Alcotest.(check string) "warm request hits" "hit"
        (Json.get_string "resident_cache" r2);
      (* the acceptance bar: identical insertions and stats, byte for
         byte — the warm path must not re-derive anything differently *)
      Alcotest.(check string) "insertions byte-identical"
        (Json.to_string (Json.get "insertions" r1))
        (Json.to_string (Json.get "insertions" r2));
      Alcotest.(check string) "stats doc byte-identical"
        (Json.to_string (Json.get "stats" r1))
        (Json.to_string (Json.get "stats" r2)))

(* ---- concurrency ---- *)

let test_concurrent_clients_isolated () =
  with_server (fun _ socket ->
      let n = 8 in
      let results = Array.make n None in
      let client i () =
        let want = 10 + i in
        match Client.call_once ~socket (run_req (src_print want)) with
        | Ok r -> results.(i) <- Some (Json.get_string "output" r)
        | Error (code, m) ->
          results.(i) <- Some (Printf.sprintf "error %s: %s" code m)
      in
      let threads =
        List.init n (fun i -> Thread.create (client i) ())
      in
      List.iter Thread.join threads;
      Array.iteri
        (fun i r ->
          Alcotest.(check (option string))
            (Printf.sprintf "client %d got its own program's output" i)
            (Some (Printf.sprintf "%d\n" (10 + i)))
            r)
        results)

let test_pipelined_ids_correlate () =
  with_server (fun _ socket ->
      (* one connection, several requests in flight: responses may come
         back in any order, the ids are the correlation *)
      let c = Client.connect ~socket in
      let n = 6 in
      for i = 1 to n do
        Client.send_line c
          (Json.to_string
             (Rpc.request_to_json ~id:(Json.Int i)
                (run_req (src_print (100 + i)))))
      done;
      let seen = Hashtbl.create n in
      for _ = 1 to n do
        match Client.recv c with
        | None -> Alcotest.fail "connection closed early"
        | Some r ->
          let id = Json.get_int "id" r in
          let out = Json.get_string "output" (Json.get "result" r) in
          Hashtbl.replace seen id out
      done;
      Client.close c;
      for i = 1 to n do
        Alcotest.(check (option string))
          (Printf.sprintf "response %d pairs with request %d" i i)
          (Some (Printf.sprintf "%d\n" (100 + i)))
          (Hashtbl.find_opt seen i)
      done)

(* ---- failure containment ---- *)

let test_malformed_line_keeps_serving () =
  with_server (fun _ socket ->
      let c = Client.connect ~socket in
      Client.send_line c "this is not json";
      (match Client.recv c with
      | Some r ->
        Alcotest.(check bool) "malformed gets ok=false" true
          (Json.get "ok" r = Json.Bool false);
        Alcotest.(check string) "code is bad_request" "bad_request"
          (Json.get_string "code" (Json.get "error" r))
      | None -> Alcotest.fail "server dropped the connection");
      (* same connection still works *)
      let r = call_ok c (analyze src_free) in
      Alcotest.(check bool) "valid request after garbage succeeds" true
        (Json.get "insertions" r <> Json.Null);
      (* wrong schema tag is also contained *)
      Client.send_line c
        {|{"schema":"gofree-rpc-v9","id":1,"method":"stats"}|};
      (match Client.recv c with
      | Some r ->
        Alcotest.(check bool) "wrong protocol version rejected" true
          (Json.get "ok" r = Json.Bool false)
      | None -> Alcotest.fail "server dropped the connection");
      Client.close c;
      (* and the daemon serves fresh clients *)
      match Client.call_once ~socket (analyze src_free) with
      | Ok _ -> ()
      | Error (code, m) -> Alcotest.failf "daemon wedged: %s %s" code m)

let test_disconnect_mid_request_keeps_serving () =
  with_server (fun _ socket ->
      (* fire a request and hang up before the response can be written *)
      let c = Client.connect ~socket in
      Client.send_line c
        (Json.to_string
           (Rpc.request_to_json ~id:(Json.Int 1) (run_req (src_print 3))));
      Client.close c;
      (* a partial line then a hangup must not wedge the reader either *)
      let c2 = Client.connect ~socket in
      Client.send_line c2 {|{"schema":"gofree-rpc-v1","id":2,"met|};
      Client.close c2;
      (* daemon is still alive and correct *)
      match Client.call_once ~socket (run_req (src_print 5)) with
      | Ok r ->
        Alcotest.(check string) "later client served" "5\n"
          (Json.get_string "output" r)
      | Error (code, m) -> Alcotest.failf "daemon wedged: %s %s" code m)

(* ---- overload: admission control, deadlines, cancellation,
   fairness ---- *)

(* A run request slow enough (tens of ms interpreted) that a 1-worker
   server is reliably busy while more requests arrive. *)
let src_slow =
  {|
func main() {
	s := 0
	outer := make([]int, 400)
	for i := range outer {
		xs := make([]int, 1200)
		for j := range xs {
			xs[j] = i + j
			s = s + xs[j]
		}
	}
	println(s)
}
|}

let send_run ?deadline_ms c ~id src =
  Client.send_line c
    (Json.to_string
       (Rpc.request_to_json ~id:(Json.Int id) ?deadline_ms (run_req src)))

let error_code_of r = Json.get_string "code" (Json.get "error" r)

(* Poll the daemon until [p stats] holds (bounded); stats answers on the
   reader thread so a busy worker pool cannot wedge the poll. *)
let wait_stats socket p =
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec go () =
    let s =
      match Client.call_once ~socket Rpc.Stats with
      | Ok s -> Some s
      | Error _ -> None
    in
    match s with
    | Some s when p s -> s
    | _ ->
      if Unix.gettimeofday () > deadline then
        Alcotest.fail "stats condition never held"
      else begin
        Thread.delay 0.01;
        go ()
      end
  in
  go ()

let by_method_count name s =
  match Json.member name (Json.get "by_method" (Json.get "requests" s)) with
  | Some (Json.Int k) -> k
  | _ -> 0

let test_shed_on_overload () =
  (* one worker, queue of one: a pipelined flood must be answered with
     [overloaded] responses, not absorbed by a blocking reader *)
  with_server ~workers:1 ~queue_capacity:1 (fun _ socket ->
      let c = Client.connect ~socket in
      let n = 12 in
      for i = 1 to n do
        send_run c ~id:i src_slow
      done;
      let ok = ref 0 and shed = ref 0 and ids = ref [] in
      for _ = 1 to n do
        match Client.recv c with
        | None -> Alcotest.fail "connection closed under overload"
        | Some r ->
          ids := Json.get_int "id" r :: !ids;
          if Json.get "ok" r = Json.Bool true then incr ok
          else begin
            Alcotest.(check string) "shed code" "overloaded" (error_code_of r);
            incr shed
          end
      done;
      Client.close c;
      (* one response per request, every id echoed exactly once *)
      Alcotest.(check (list int)) "all ids answered"
        (List.init n (fun i -> i + 1))
        (List.sort compare !ids);
      Alcotest.(check bool) "some requests served" true (!ok >= 1);
      Alcotest.(check bool) "some requests shed" true (!shed >= 1);
      let s = wait_stats socket (fun _ -> true) in
      Alcotest.(check int) "shed counter matches" !shed
        (Json.get_int "shed" (Json.get "requests" s));
      Alcotest.(check bool) "queue high watermark recorded" true
        (Json.get_int "high_watermark" (Json.get "queue" s) >= 1))

let test_request_timeout () =
  with_server ~workers:1 (fun _ socket ->
      let c = Client.connect ~socket in
      (* the slow request occupies the single worker... *)
      send_run c ~id:1 src_slow;
      (* ...so this one queues past its 1ms deadline *)
      send_run c ~id:2 ~deadline_ms:1 src_slow;
      let r1 = Option.get (Client.recv c) in
      let r2 = Option.get (Client.recv c) in
      Client.close c;
      (* responses come back in submission order here: the timed-out
         request is answered when the worker reaches it *)
      Alcotest.(check int) "slow request id" 1 (Json.get_int "id" r1);
      Alcotest.(check bool) "slow request succeeded" true
        (Json.get "ok" r1 = Json.Bool true);
      Alcotest.(check int) "timed-out id echoed" 2 (Json.get_int "id" r2);
      Alcotest.(check string) "timed_out code" "timed_out"
        (error_code_of r2);
      let s = wait_stats socket (fun s ->
          Json.get_int "timed_out" (Json.get "requests" s) >= 1)
      in
      Alcotest.(check int) "timed_out counted" 1
        (Json.get_int "timed_out" (Json.get "requests" s)))

let test_cancel_on_disconnect () =
  with_server ~workers:1 (fun _ socket ->
      let a = Client.connect ~socket in
      send_run a ~id:1 src_slow;
      (* b pipelines two requests and hangs up.  The two connections'
         reader threads race to the queue, so either client's job may be
         dequeued first — but with one worker at most one job has
         started by the time b closes, so at least one of b's is still
         queued, and queued work for a dead client must be cancelled at
         dequeue, not executed. *)
      let b = Client.connect ~socket in
      send_run b ~id:1 src_slow;
      send_run b ~id:2 src_slow;
      ignore
        (wait_stats socket (fun s -> by_method_count "run" s >= 3));
      Client.close b;
      (* a is served regardless *)
      (match Client.recv a with
      | Some r ->
        Alcotest.(check bool) "a's request served" true
          (Json.get "ok" r = Json.Bool true)
      | None -> Alcotest.fail "a lost its connection");
      Client.close a;
      let s = wait_stats socket (fun s ->
          Json.get_int "cancelled" (Json.get "requests" s) >= 1)
      in
      Alcotest.(check bool) "cancelled counted" true
        (Json.get_int "cancelled" (Json.get "requests" s) >= 1))

let test_per_client_fairness () =
  (* one worker: a floods 10 requests, then b sends one.  Round-robin
     draining must serve b next rotation — long before a's tail — where
     a single FIFO would serve b 11th. *)
  with_server ~workers:1 (fun _ socket ->
      let n_flood = 10 in
      let a = Client.connect ~socket in
      for i = 1 to n_flood do
        send_run a ~id:i src_slow
      done;
      ignore
        (wait_stats socket (fun s -> by_method_count "run" s >= n_flood));
      let b = Client.connect ~socket in
      send_run b ~id:100 src_slow;
      let a_done = Atomic.make 0 in
      let a_reader =
        Thread.create
          (fun () ->
            try
              for _ = 1 to n_flood do
                match Client.recv a with
                | Some _ -> Atomic.incr a_done
                | None -> raise Exit
              done
            with Exit | Client.Error _ -> ())
          ()
      in
      (match Client.recv b with
      | Some r ->
        Alcotest.(check int) "b's id echoed" 100 (Json.get_int "id" r);
        Alcotest.(check bool) "b's request served" true
          (Json.get "ok" r = Json.Bool true)
      | None -> Alcotest.fail "b lost its connection");
      let a_done_when_b_finished = Atomic.get a_done in
      Thread.join a_reader;
      Client.close a;
      Client.close b;
      Alcotest.(check int) "a eventually fully served" n_flood
        (Atomic.get a_done);
      (* the fairness bar: b did not wait for a's whole flood *)
      Alcotest.(check bool)
        (Printf.sprintf
           "b served after %d of a's %d responses (wants round-robin, \
            not FIFO)" a_done_when_b_finished n_flood)
        true
        (a_done_when_b_finished <= n_flood - 3))

(* ---- shutdown ---- *)

let test_shutdown_drains () =
  let socket = fresh_socket () in
  let t = Server.start ~socket () in
  let c = Client.connect ~socket in
  let n = 4 in
  for i = 1 to n do
    Client.send_line c
      (Json.to_string
         (Rpc.request_to_json ~id:(Json.Int i) (run_req (src_print i))))
  done;
  (* wait until the daemon has decoded all four (they may still be
     queued or running) — decoded requests are what drain guarantees *)
  let deadline = Unix.gettimeofday () +. 10.0 in
  let decoded () =
    match Client.call_once ~socket Rpc.Stats with
    | Ok s ->
      (match Json.member "run" (Json.get "by_method" (Json.get "requests" s)) with
      | Some (Json.Int k) -> k >= n
      | _ -> false)
    | Error _ -> false
  in
  while (not (decoded ())) && Unix.gettimeofday () < deadline do
    Thread.yield ()
  done;
  (* shutdown from a second connection while those are in flight *)
  (match Client.call_once ~socket Rpc.Shutdown with
  | Ok r ->
    Alcotest.(check bool) "shutdown acknowledged" true
      (Json.get "stopping" r = Json.Bool true)
  | Error (code, m) -> Alcotest.failf "shutdown refused: %s %s" code m);
  (* every accepted request is still answered (ok or shutting_down) *)
  let answered = ref 0 in
  (try
     for _ = 1 to n do
       match Client.recv c with
       | Some _ -> incr answered
       | None -> raise Exit
     done
   with Exit | Client.Error _ -> ());
  Client.close c;
  Server.wait t;
  Alcotest.(check int) "all in-flight requests answered" n !answered;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket)

let test_stats_counters () =
  with_server (fun _ socket ->
      let c = Client.connect ~socket in
      ignore (call_ok c (analyze src_free));
      ignore (call_ok c (analyze src_free));
      Client.send_line c "garbage";
      ignore (Client.recv c);
      (match Client.call c (analyze "func main( {}") with
      | Ok _ -> Alcotest.fail "garbage source compiled"
      | Error (code, _) ->
        Alcotest.(check string) "compile failure code" "compile_error" code);
      let s = call_ok c Rpc.Stats in
      Client.close c;
      let req = Json.get "requests" s in
      Alcotest.(check bool) "served counted" true
        (Json.get_int "served" req >= 3);
      Alcotest.(check int) "malformed counted" 1
        (Json.get_int "malformed" req);
      (* the bad_request reply to the garbage line is itself an error
         response, so two errors: one malformed, one compile failure *)
      Alcotest.(check int) "errors counted" 2 (Json.get_int "errors" req);
      let cache = Json.get "cache" s in
      Alcotest.(check bool) "one resident hit" true
        (Json.get_int "hits" cache >= 1);
      Alcotest.(check bool) "hit ratio in range" true
        (let r = Json.get_float "hit_ratio" cache in
         r > 0.0 && r <= 1.0);
      (* the latency summary reports the full quantile ladder, p99 and
         max included, and it is monotone *)
      let lat = Json.get "latency_ms" s in
      Alcotest.(check bool) "latency samples recorded" true
        (Json.get_int "count" lat >= 2);
      let p50 = Json.get_float "p50_ms" lat in
      let p95 = Json.get_float "p95_ms" lat in
      let p99 = Json.get_float "p99_ms" lat in
      let max_ms = Json.get_float "max_ms" lat in
      Alcotest.(check bool) "p50 <= p95 <= p99 <= max" true
        (p50 <= p95 && p95 <= p99 && p99 <= max_ms))

let suite =
  [
    Alcotest.test_case "rpc v2 config round-trip" `Quick
      test_rpc_v2_config_roundtrip;
    Alcotest.test_case "rpc v1 compatibility" `Quick test_rpc_v1_compat;
    Alcotest.test_case "rpc precision config applies" `Quick
      test_rpc_precision_config_applies;
    Alcotest.test_case "analyze round-trip" `Quick test_analyze_roundtrip;
    Alcotest.test_case "run round-trip" `Quick test_run_roundtrip;
    Alcotest.test_case "warm cache skips analysis" `Quick
      test_warm_cache_skips_analysis;
    Alcotest.test_case "build resident cache byte-identical" `Quick
      test_build_resident_cache;
    Alcotest.test_case "concurrent clients isolated" `Quick
      test_concurrent_clients_isolated;
    Alcotest.test_case "pipelined ids correlate" `Quick
      test_pipelined_ids_correlate;
    Alcotest.test_case "malformed line keeps serving" `Quick
      test_malformed_line_keeps_serving;
    Alcotest.test_case "disconnect mid-request keeps serving" `Quick
      test_disconnect_mid_request_keeps_serving;
    Alcotest.test_case "shed on overload" `Quick test_shed_on_overload;
    Alcotest.test_case "request timeout" `Quick test_request_timeout;
    Alcotest.test_case "cancel queued work on disconnect" `Quick
      test_cancel_on_disconnect;
    Alcotest.test_case "per-client fairness" `Quick
      test_per_client_fairness;
    Alcotest.test_case "shutdown drains in-flight work" `Quick
      test_shutdown_drains;
    Alcotest.test_case "stats counters" `Quick test_stats_counters;
  ]
