(** The [gofreec serve] daemon: protocol, resident cache, concurrency,
    and failure containment.

    Every test starts a real server on a fresh Unix socket (in-process,
    via {!Gofree_server.Server.start}) and talks to it through
    {!Gofree_server.Client} — the same code paths [gofreec client]
    uses. *)

module Json = Gofree_obs.Json
module Server = Gofree_server.Server
module Client = Gofree_server.Client
module Rpc = Gofree_server.Rpc

let counter = ref 0

let fresh_socket () =
  incr counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "gofree-test-%d-%d.sock" (Unix.getpid ()) !counter)

(** Run [f server socket] against a live daemon; always stops it. *)
let with_server ?workers f =
  let socket = fresh_socket () in
  let t = Server.start ?workers ~socket () in
  Fun.protect ~finally:(fun () -> Server.stop t) (fun () -> f t socket)

let src_free =
  {|
func localSum(n int) int {
	xs := make([]int, n)
	s := 0
	for i := range xs {
		xs[i] = i
		s = s + xs[i]
	}
	return s
}

func main() {
	println(localSum(64))
}
|}

(* a distinct program per concurrent client: the printed constant tells
   us a response was not crossed between connections *)
let src_print n =
  Printf.sprintf "func main() {\n\txs := make([]int, %d)\n\tprintln(len(xs))\n}\n" n

let analyze ?(explain = false) src =
  Rpc.Analyze { src = Rpc.Inline src; preset = Gofree_api.Gofree; explain }

let run_req src =
  Rpc.Run
    {
      src = Rpc.Inline src;
      preset = Gofree_api.Gofree;
      options = Gofree_api.default_run_options;
    }

let call_ok c request =
  match Client.call c request with
  | Ok result -> result
  | Error (code, m) -> Alcotest.failf "rpc error %s: %s" code m

(* ---- protocol basics ---- *)

let test_analyze_roundtrip () =
  with_server (fun _ socket ->
      let c = Client.connect ~socket in
      let r = call_ok c (analyze src_free) in
      Alcotest.(check bool) "first analyze is uncached" false
        (Json.get "cached" r = Json.Bool true);
      let vars =
        Json.get_list "insertions" r
        |> List.map (fun i -> Json.get_string "variable" i)
      in
      Alcotest.(check (list string)) "tcfree inserted for xs" [ "xs" ] vars;
      Client.close c)

let test_run_roundtrip () =
  with_server (fun _ socket ->
      match Client.call_once ~socket (run_req (src_print 7)) with
      | Error (code, m) -> Alcotest.failf "rpc error %s: %s" code m
      | Ok r ->
        Alcotest.(check string) "program output" "7\n"
          (Json.get_string "output" r);
        Alcotest.(check bool) "no panic" false
          (Json.get "panicked" r = Json.Bool true))

let test_warm_cache_skips_analysis () =
  with_server (fun t socket ->
      let c = Client.connect ~socket in
      let r1 = call_ok c (analyze src_free) in
      let r2 = call_ok c (analyze src_free) in
      Client.close c;
      Alcotest.(check bool) "cold miss" true
        (Json.get "cached" r1 = Json.Bool false);
      Alcotest.(check bool) "warm hit" true
        (Json.get "cached" r2 = Json.Bool true);
      (* identical payload either way: drop the cache marker and compare *)
      let strip = function
        | Json.Obj fields ->
          Json.Obj (List.filter (fun (k, _) -> k <> "cached") fields)
        | j -> j
      in
      Alcotest.(check string) "warm result is byte-identical"
        (Json.to_string (strip r1))
        (Json.to_string (strip r2));
      ignore t)

let test_build_resident_cache () =
  let root = Test_build.make_tree Test_build.tree_files in
  with_server (fun _ socket ->
      let c = Client.connect ~socket in
      let build force =
        call_ok c
          (Rpc.Build
             {
               dir = root;
               preset = Gofree_api.Gofree;
               force;
               jobs = 1;
               run = false;
               cache_dir = None;
               options = Gofree_api.default_run_options;
             })
      in
      let r1 = build false in
      let r2 = build false in
      Client.close c;
      Alcotest.(check string) "cold request misses" "miss"
        (Json.get_string "resident_cache" r1);
      Alcotest.(check string) "warm request hits" "hit"
        (Json.get_string "resident_cache" r2);
      (* the acceptance bar: identical insertions and stats, byte for
         byte — the warm path must not re-derive anything differently *)
      Alcotest.(check string) "insertions byte-identical"
        (Json.to_string (Json.get "insertions" r1))
        (Json.to_string (Json.get "insertions" r2));
      Alcotest.(check string) "stats doc byte-identical"
        (Json.to_string (Json.get "stats" r1))
        (Json.to_string (Json.get "stats" r2)))

(* ---- concurrency ---- *)

let test_concurrent_clients_isolated () =
  with_server (fun _ socket ->
      let n = 8 in
      let results = Array.make n None in
      let client i () =
        let want = 10 + i in
        match Client.call_once ~socket (run_req (src_print want)) with
        | Ok r -> results.(i) <- Some (Json.get_string "output" r)
        | Error (code, m) ->
          results.(i) <- Some (Printf.sprintf "error %s: %s" code m)
      in
      let threads =
        List.init n (fun i -> Thread.create (client i) ())
      in
      List.iter Thread.join threads;
      Array.iteri
        (fun i r ->
          Alcotest.(check (option string))
            (Printf.sprintf "client %d got its own program's output" i)
            (Some (Printf.sprintf "%d\n" (10 + i)))
            r)
        results)

let test_pipelined_ids_correlate () =
  with_server (fun _ socket ->
      (* one connection, several requests in flight: responses may come
         back in any order, the ids are the correlation *)
      let c = Client.connect ~socket in
      let n = 6 in
      for i = 1 to n do
        Client.send_line c
          (Json.to_string
             (Rpc.request_to_json ~id:(Json.Int i)
                (run_req (src_print (100 + i)))))
      done;
      let seen = Hashtbl.create n in
      for _ = 1 to n do
        match Client.recv c with
        | None -> Alcotest.fail "connection closed early"
        | Some r ->
          let id = Json.get_int "id" r in
          let out = Json.get_string "output" (Json.get "result" r) in
          Hashtbl.replace seen id out
      done;
      Client.close c;
      for i = 1 to n do
        Alcotest.(check (option string))
          (Printf.sprintf "response %d pairs with request %d" i i)
          (Some (Printf.sprintf "%d\n" (100 + i)))
          (Hashtbl.find_opt seen i)
      done)

(* ---- failure containment ---- *)

let test_malformed_line_keeps_serving () =
  with_server (fun _ socket ->
      let c = Client.connect ~socket in
      Client.send_line c "this is not json";
      (match Client.recv c with
      | Some r ->
        Alcotest.(check bool) "malformed gets ok=false" true
          (Json.get "ok" r = Json.Bool false);
        Alcotest.(check string) "code is bad_request" "bad_request"
          (Json.get_string "code" (Json.get "error" r))
      | None -> Alcotest.fail "server dropped the connection");
      (* same connection still works *)
      let r = call_ok c (analyze src_free) in
      Alcotest.(check bool) "valid request after garbage succeeds" true
        (Json.get "insertions" r <> Json.Null);
      (* wrong schema tag is also contained *)
      Client.send_line c
        {|{"schema":"gofree-rpc-v9","id":1,"method":"stats"}|};
      (match Client.recv c with
      | Some r ->
        Alcotest.(check bool) "wrong protocol version rejected" true
          (Json.get "ok" r = Json.Bool false)
      | None -> Alcotest.fail "server dropped the connection");
      Client.close c;
      (* and the daemon serves fresh clients *)
      match Client.call_once ~socket (analyze src_free) with
      | Ok _ -> ()
      | Error (code, m) -> Alcotest.failf "daemon wedged: %s %s" code m)

let test_disconnect_mid_request_keeps_serving () =
  with_server (fun _ socket ->
      (* fire a request and hang up before the response can be written *)
      let c = Client.connect ~socket in
      Client.send_line c
        (Json.to_string
           (Rpc.request_to_json ~id:(Json.Int 1) (run_req (src_print 3))));
      Client.close c;
      (* a partial line then a hangup must not wedge the reader either *)
      let c2 = Client.connect ~socket in
      Client.send_line c2 {|{"schema":"gofree-rpc-v1","id":2,"met|};
      Client.close c2;
      (* daemon is still alive and correct *)
      match Client.call_once ~socket (run_req (src_print 5)) with
      | Ok r ->
        Alcotest.(check string) "later client served" "5\n"
          (Json.get_string "output" r)
      | Error (code, m) -> Alcotest.failf "daemon wedged: %s %s" code m)

(* ---- shutdown ---- *)

let test_shutdown_drains () =
  let socket = fresh_socket () in
  let t = Server.start ~socket () in
  let c = Client.connect ~socket in
  let n = 4 in
  for i = 1 to n do
    Client.send_line c
      (Json.to_string
         (Rpc.request_to_json ~id:(Json.Int i) (run_req (src_print i))))
  done;
  (* wait until the daemon has decoded all four (they may still be
     queued or running) — decoded requests are what drain guarantees *)
  let deadline = Unix.gettimeofday () +. 10.0 in
  let decoded () =
    match Client.call_once ~socket Rpc.Stats with
    | Ok s ->
      (match Json.member "run" (Json.get "by_method" (Json.get "requests" s)) with
      | Some (Json.Int k) -> k >= n
      | _ -> false)
    | Error _ -> false
  in
  while (not (decoded ())) && Unix.gettimeofday () < deadline do
    Thread.yield ()
  done;
  (* shutdown from a second connection while those are in flight *)
  (match Client.call_once ~socket Rpc.Shutdown with
  | Ok r ->
    Alcotest.(check bool) "shutdown acknowledged" true
      (Json.get "stopping" r = Json.Bool true)
  | Error (code, m) -> Alcotest.failf "shutdown refused: %s %s" code m);
  (* every accepted request is still answered (ok or shutting_down) *)
  let answered = ref 0 in
  (try
     for _ = 1 to n do
       match Client.recv c with
       | Some _ -> incr answered
       | None -> raise Exit
     done
   with Exit | Client.Error _ -> ());
  Client.close c;
  Server.wait t;
  Alcotest.(check int) "all in-flight requests answered" n !answered;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket)

let test_stats_counters () =
  with_server (fun _ socket ->
      let c = Client.connect ~socket in
      ignore (call_ok c (analyze src_free));
      ignore (call_ok c (analyze src_free));
      Client.send_line c "garbage";
      ignore (Client.recv c);
      (match Client.call c (analyze "func main( {}") with
      | Ok _ -> Alcotest.fail "garbage source compiled"
      | Error (code, _) ->
        Alcotest.(check string) "compile failure code" "compile_error" code);
      let s = call_ok c Rpc.Stats in
      Client.close c;
      let req = Json.get "requests" s in
      Alcotest.(check bool) "served counted" true
        (Json.get_int "served" req >= 3);
      Alcotest.(check int) "malformed counted" 1
        (Json.get_int "malformed" req);
      (* the bad_request reply to the garbage line is itself an error
         response, so two errors: one malformed, one compile failure *)
      Alcotest.(check int) "errors counted" 2 (Json.get_int "errors" req);
      let cache = Json.get "cache" s in
      Alcotest.(check bool) "one resident hit" true
        (Json.get_int "hits" cache >= 1);
      Alcotest.(check bool) "hit ratio in range" true
        (let r = Json.get_float "hit_ratio" cache in
         r > 0.0 && r <= 1.0))

let suite =
  [
    Alcotest.test_case "analyze round-trip" `Quick test_analyze_roundtrip;
    Alcotest.test_case "run round-trip" `Quick test_run_roundtrip;
    Alcotest.test_case "warm cache skips analysis" `Quick
      test_warm_cache_skips_analysis;
    Alcotest.test_case "build resident cache byte-identical" `Quick
      test_build_resident_cache;
    Alcotest.test_case "concurrent clients isolated" `Quick
      test_concurrent_clients_isolated;
    Alcotest.test_case "pipelined ids correlate" `Quick
      test_pipelined_ids_correlate;
    Alcotest.test_case "malformed line keeps serving" `Quick
      test_malformed_line_keeps_serving;
    Alcotest.test_case "disconnect mid-request keeps serving" `Quick
      test_disconnect_mid_request_keeps_serving;
    Alcotest.test_case "shutdown drains in-flight work" `Quick
      test_shutdown_drains;
    Alcotest.test_case "stats counters" `Quick test_stats_counters;
  ]
