(** Call-graph condensation into analysis units: SCCs with a dependency
    DAG (reverse topological order, callees first) and content keys for
    function-granular caching.  Tarjan runs on an explicit stack, so
    pathologically deep call chains cannot overflow the OCaml stack. *)

open Minigo

type unit_def = {
  u_id : int;  (** index into the reverse-topological unit array *)
  u_funcs : Tast.func list;  (** the SCC, in Tarjan discovery order *)
  u_deps : int list;  (** units this unit calls into; always [< u_id] *)
  u_dependents : int list;  (** units calling into this one *)
  u_body_hash : string;  (** digest of the unit's pretty-printed bodies *)
  u_callees : string list;
      (** sorted distinct out-of-unit callee names (imported/external
          included) — the summary inputs of the unit *)
}

type t = {
  cg_units : unit_def array;  (** reverse topological order *)
  cg_unit_of : (string, int) Hashtbl.t;  (** function name → unit id *)
}

(** Callee names reachable from a function body (including go/defer). *)
val callees_of : Tast.func -> string list

(** Strongly connected components, callees first (iterative Tarjan). *)
val condense : Tast.func list -> Tast.func list list

val build : Tast.func list -> t

(** Names of the unit's functions, in unit order. *)
val unit_names : unit_def -> string list

(** Content key of a unit: digest over the configuration signature, the
    analysis-mode signature, the unit's body hash and every out-of-unit
    callee's summary {e content} ([callee_summary name = None] stands
    for the conservative default tag).  Equal keys guarantee equal
    analysis results for the unit. *)
val unit_key :
  config_sig:string ->
  mode_sig:string ->
  callee_summary:(string -> string option) ->
  unit_def ->
  string
