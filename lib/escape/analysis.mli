(** Whole-program escape analysis driver: functions are analyzed
    callees-first (Tarjan SCCs of the call graph in reverse topological
    order); calls into not-yet-summarized functions use the default tag. *)

open Minigo

type func_result = {
  fr_func : Tast.func;
  fr_ctx : Build.ctx;
  fr_stats : Propagate.stats;
}

type unit_report = {
  ur_id : int;  (** {!Callgraph.unit_def} id, reverse topological *)
  ur_funcs : string list;  (** the unit's functions, unit order *)
  ur_key : string;  (** content key the unit was solved (or hit) under *)
  ur_cached : bool;  (** solved from the unit cache, not analyzed *)
}

type t = {
  mode : Propagate.mode;
  funcs : (string, func_result) Hashtbl.t;
  summaries : (string, Summary.t) Hashtbl.t;
  units : unit_report list;  (** reverse topological (solve) order *)
}

(** Callee names reachable from a function body (including go/defer). *)
val callees_of : Tast.func -> string list

(** Strongly connected components of the call graph, callees first
    (iterative Tarjan — alias of {!Callgraph.condense}). *)
val scc_order : Tast.func list -> Tast.func list list

(** Compress one analyzed function into its extended parameter tag.
    [precise_contents = false] yields what stock Go knows: real
    param→return/heap flows but conservative contents (content tags are
    GoFree's addition). *)
val extract_summary :
  ?precise_contents:bool -> Tast.func -> Build.ctx -> Summary.t

(** Mode component of the units' content keys: any analysis parameter
    that changes results must appear here (alongside the configuration
    signature). *)
val mode_signature :
  ?field_sensitive:bool -> Propagate.mode -> bool -> bool -> string

(** Analyze a whole program.  [mode = Go_base] computes only stack/heap
    decisions; [Gofree] adds completeness/lifetime/ToFree.
    [use_ipa = false] forces default tags everywhere (ablation);
    [backprop = false] disables GoFree's leaf→root rules (unsound —
    robustness ablation only).  [imported] seeds the summary table with
    the stored tags of already-analyzed packages (separate compilation,
    §4.4); callees with no seeded or computed summary fall back to the
    conservative default tag.

    The program is solved bottom-up as analysis units ({!Callgraph}
    SCCs).  [config_sig] feeds the units' content keys (reported in
    [units]).  [unit_lookup ~key ~funcs] is the function-granular cache:
    returning the unit's stored summaries skips its analysis (no
    [func_result]s for its functions — the caller replays the unit's
    recorded insertions/decisions) while the summaries are installed for
    dependents.  [pool] solves independent ready units on worker
    domains; the calling thread schedules and is the only submitter.
    Results are deterministic and identical across sequential, parallel,
    cached and uncached runs. *)
val analyze :
  ?mode:Propagate.mode ->
  ?use_ipa:bool ->
  ?backprop:bool ->
  ?field_sensitive:bool ->
  ?imported:Summary.t list ->
  ?config_sig:string ->
  ?pool:Gofree_sched.Pool.t ->
  ?unit_lookup:(key:string -> funcs:string list -> Summary.t list option) ->
  Tast.program ->
  t

val func_result : t -> string -> func_result option

(** Location of a variable in its function's analyzed graph. *)
val var_loc : t -> func:string -> Tast.var -> Loc.t option

(** [true] when the allocation site must be heap-allocated. *)
val site_is_heap : t -> func:string -> Tast.alloc_site -> bool

(** Variables of [func] whose location satisfies ToFree (Def 4.17). *)
val to_free_vars : t -> func:string -> (Tast.var * Loc.t) list

(** Field slots of [func] satisfying ToFree whose base variable is a
    sound anchor (field-sensitive mode): base is a plain local, itself
    complete and not outlived, and no other variable's points-to set
    intersects the slot's.  Deterministic (base id, field) order;
    returns (base, field index, field name, slot). *)
val to_free_fields :
  t -> func:string -> (Tast.var * int * string * Loc.t) list

(** Total SPFA relaxations across all functions (complexity stats). *)
val total_walk_steps : t -> int
