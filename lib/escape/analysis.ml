(** Whole-program escape analysis driver.

    Functions are analyzed callees-first (Go orders intra-procedural
    analysis inner-to-outer so call sites find known parameter tags, §4.4).
    We compute strongly connected components of the call graph with
    Tarjan's algorithm and process them in reverse topological order;
    calls into a not-yet-summarized function (recursion or a forward cycle)
    use the conservative default tag. *)

open Minigo

type func_result = {
  fr_func : Tast.func;
  fr_ctx : Build.ctx;
  fr_stats : Propagate.stats;
}

type t = {
  mode : Propagate.mode;
  funcs : (string, func_result) Hashtbl.t;
  summaries : (string, Summary.t) Hashtbl.t;
}

(* ------------------------------------------------------------------ *)
(* Call graph                                                          *)
(* ------------------------------------------------------------------ *)

let callees_of (f : Tast.func) : string list =
  let acc = ref [] in
  let add name = if not (List.mem name !acc) then acc := name :: !acc in
  let visit_expr (e : Tast.expr) =
    match e.Tast.desc with Tast.Tcall (name, _) -> add name | _ -> ()
  in
  Tast.iter_stmts
    (fun s ->
      (match s with
      | Tast.Sgo (name, _) | Tast.Sdefer (name, _) -> add name
      | _ -> ());
      Tast.iter_stmt_exprs (fun e -> Tast.iter_expr visit_expr e) s)
    f.Tast.f_body;
  !acc

(* Tarjan SCC; returns components in reverse topological order (callees
   before callers). *)
let scc_order (funcs : Tast.func list) : Tast.func list list =
  let by_name = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace by_name f.Tast.f_name f) funcs;
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect name =
    Hashtbl.replace index name !counter;
    Hashtbl.replace lowlink name !counter;
    incr counter;
    stack := name :: !stack;
    Hashtbl.replace on_stack name true;
    (match Hashtbl.find_opt by_name name with
    | None -> ()
    | Some f ->
      List.iter
        (fun callee ->
          if Hashtbl.mem by_name callee then
            if not (Hashtbl.mem index callee) then begin
              strongconnect callee;
              Hashtbl.replace lowlink name
                (min (Hashtbl.find lowlink name)
                   (Hashtbl.find lowlink callee))
            end
            else if Hashtbl.find_opt on_stack callee = Some true then
              Hashtbl.replace lowlink name
                (min (Hashtbl.find lowlink name) (Hashtbl.find index callee)))
        (callees_of f));
    if Hashtbl.find lowlink name = Hashtbl.find index name then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | top :: rest ->
          stack := rest;
          Hashtbl.replace on_stack top false;
          if String.equal top name then top :: acc else pop (top :: acc)
      in
      let comp = pop [] in
      let comp_funcs =
        List.filter_map (fun n -> Hashtbl.find_opt by_name n) comp
      in
      components := comp_funcs :: !components
    end
  in
  List.iter
    (fun f -> if not (Hashtbl.mem index f.Tast.f_name) then
        strongconnect f.Tast.f_name)
    funcs;
  (* Tarjan emits components in reverse topological order already
     (a component is finished only after everything it reaches), so the
     accumulated list (which reversed them once more) must be reversed
     back. *)
  List.rev !components

(* ------------------------------------------------------------------ *)
(* Summary extraction                                                  *)
(* ------------------------------------------------------------------ *)

(** Compress a function's analyzed graph into its extended parameter tag.
    [precise_contents = false] produces what stock Go knows: the
    param→return/heap flows of the classic parameter tag, with the
    conservative "returns come from the heap, incomplete" contents —
    content tags are GoFree's addition (§4.4). *)
let extract_summary ?(precise_contents = true) (f : Tast.func)
    (ctx : Build.ctx) : Summary.t =
  let g = ctx.Build.g in
  let params =
    List.map (fun p -> Build.var_loc ctx p) f.Tast.f_params
  in
  let flows = ref [] in
  (* param → return_j flows, with MinDerefs weights *)
  Array.iteri
    (fun j ret ->
      Graph.walk_one g ret (fun leaf derefs ->
          List.iteri
            (fun i p ->
              if p.Loc.id = leaf.Loc.id then
                flows :=
                  { Summary.pf_param = i; pf_target = `Return j;
                    pf_derefs = derefs }
                  :: !flows)
            params))
    g.Graph.returns;
  (* param → heap flows *)
  Graph.walk_one g g.Graph.heap (fun leaf derefs ->
      List.iteri
        (fun i p ->
          if p.Loc.id = leaf.Loc.id then
            flows :=
              { Summary.pf_param = i; pf_target = `Heap; pf_derefs = derefs }
              :: !flows)
        params);
  let contents =
    Array.map
      (fun (ret : Loc.t) ->
        if precise_contents then
          {
            Summary.ct_heap_alloc = ret.Loc.points_to_heap;
            (* Only store-origin incompleteness is recorded: the
               parameter-seeded component is a potential false positive
               that the caller re-derives from its actual arguments
               (§4.4). *)
            ct_incomplete = ret.Loc.inc_store;
            ret_incomplete = ret.Loc.inc_store;
          }
        else
          { Summary.ct_heap_alloc = true; ct_incomplete = true;
            ret_incomplete = true })
      g.Graph.returns
  in
  {
    Summary.s_name = f.Tast.f_name;
    s_nparams = List.length params;
    s_flows = !flows;
    s_contents = contents;
  }

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

(** Analyze a whole program.  With [mode = Go_base] the result carries
    only stack/heap decisions (what stock Go computes); with [Gofree] it
    also carries completeness/lifetime properties and ToFree flags.
    [use_ipa = false] keeps every call site on the conservative default
    tag; [backprop = false] disables GoFree's leaf→root rules (unsound —
    ablation only). *)
let analyze ?(mode = Propagate.Gofree) ?(use_ipa = true) ?(backprop = true)
    ?(imported = []) (p : Tast.program) : t =
  let summaries = Hashtbl.create 16 in
  (* Seed the table with the stored tags of already-analyzed packages:
     calls into an imported function then resolve exactly as they would
     in a whole-program run (§4.4's separate-compilation property).
     Without IPA the ablation stays fully conservative. *)
  if use_ipa then
    List.iter
      (fun (s : Summary.t) -> Hashtbl.replace summaries s.Summary.s_name s)
      imported;
  let funcs = Hashtbl.create 16 in
  let components = scc_order p.Tast.p_funcs in
  List.iter
    (fun component ->
      (* Functions within one SCC see default tags for in-SCC calls
         (their summaries are published only after the component). *)
      let results =
        List.map
          (fun f ->
            let tid = Gofree_obs.Trace.domain_tid () in
            let ctx =
              Gofree_obs.Trace.with_span ~tid
                ("build:" ^ f.Tast.f_name)
                (fun () ->
                  Build.build_function ~tenv:p.Tast.p_tenv ~summaries f)
            in
            (* completeness, outlived and points-to propagation run fused
               inside one walkall pass, so a single span covers them *)
            let stats =
              Gofree_obs.Trace.with_span ~tid ("walk:" ^ f.Tast.f_name)
                (fun () -> Propagate.walkall ~mode ~backprop ctx.Build.g)
            in
            (f, ctx, stats))
          component
      in
      List.iter
        (fun (f, ctx, stats) ->
          Hashtbl.replace funcs f.Tast.f_name
            { fr_func = f; fr_ctx = ctx; fr_stats = stats };
          if use_ipa then
            (* Go's own parameter tags exist in both modes; only their
               content-tag refinement is GoFree-specific. *)
            Hashtbl.replace summaries f.Tast.f_name
              (extract_summary
                 ~precise_contents:(mode = Propagate.Gofree)
                 f ctx))
        results)
    components;
  { mode; funcs; summaries }

let func_result t name = Hashtbl.find_opt t.funcs name

(** Location of a variable in its function's analyzed graph. *)
let var_loc t ~func (v : Tast.var) : Loc.t option =
  match func_result t func with
  | None -> None
  | Some fr -> Hashtbl.find_opt fr.fr_ctx.Build.var_locs v.Tast.v_id

(** Stack/heap decision for an allocation site: [true] when the site must
    be heap-allocated.  Sites never touched by the graph (dead code) stay
    stack-allocatable. *)
let site_is_heap t ~func (site : Tast.alloc_site) : bool =
  match func_result t func with
  | None -> true
  | Some fr -> begin
    match
      Hashtbl.find_opt fr.fr_ctx.Build.site_locs site.Tast.site_id
    with
    | Some l -> l.Loc.heap_alloc
    | None -> false
  end

(** All variables of [func] whose location satisfies ToFree (Def 4.17). *)
let to_free_vars t ~func : (Tast.var * Loc.t) list =
  match func_result t func with
  | None -> []
  | Some fr ->
    Hashtbl.fold
      (fun _ (l : Loc.t) acc ->
        match l.Loc.kind with
        | Loc.Kvar v when Propagate.to_free l -> (v, l) :: acc
        | _ -> acc)
      fr.fr_ctx.Build.var_locs []

(** Aggregate walk statistics, for the compilation-speed experiment. *)
let total_walk_steps t =
  Hashtbl.fold
    (fun _ fr acc -> acc + fr.fr_ctx.Build.g.Graph.walk_steps)
    t.funcs 0
