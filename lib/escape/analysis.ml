(** Whole-program escape analysis driver.

    Functions are analyzed callees-first (Go orders intra-procedural
    analysis inner-to-outer so call sites find known parameter tags, §4.4).
    We compute strongly connected components of the call graph with
    Tarjan's algorithm and process them in reverse topological order;
    calls into a not-yet-summarized function (recursion or a forward cycle)
    use the conservative default tag. *)

open Minigo

type func_result = {
  fr_func : Tast.func;
  fr_ctx : Build.ctx;
  fr_stats : Propagate.stats;
}

type unit_report = {
  ur_id : int;  (** {!Callgraph.unit_def} id, reverse topological *)
  ur_funcs : string list;  (** the unit's functions, unit order *)
  ur_key : string;  (** content key the unit was solved (or hit) under *)
  ur_cached : bool;  (** solved from the unit cache, not analyzed *)
}

type t = {
  mode : Propagate.mode;
  funcs : (string, func_result) Hashtbl.t;
  summaries : (string, Summary.t) Hashtbl.t;
  units : unit_report list;  (** reverse topological (solve) order *)
}

(* ------------------------------------------------------------------ *)
(* Call graph (condensation lives in {!Callgraph})                     *)
(* ------------------------------------------------------------------ *)

let callees_of = Callgraph.callees_of

let scc_order = Callgraph.condense

(* ------------------------------------------------------------------ *)
(* Summary extraction                                                  *)
(* ------------------------------------------------------------------ *)

(** Compress a function's analyzed graph into its extended parameter tag.
    [precise_contents = false] produces what stock Go knows: the
    param→return/heap flows of the classic parameter tag, with the
    conservative "returns come from the heap, incomplete" contents —
    content tags are GoFree's addition (§4.4). *)
let extract_summary ?(precise_contents = true) (f : Tast.func)
    (ctx : Build.ctx) : Summary.t =
  let g = ctx.Build.g in
  let params =
    List.map (fun p -> Build.var_loc ctx p) f.Tast.f_params
  in
  let flows = ref [] in
  (* param → return_j flows, with MinDerefs weights *)
  Array.iteri
    (fun j ret ->
      Graph.walk_one g ret (fun leaf derefs ->
          List.iteri
            (fun i p ->
              if p.Loc.id = leaf.Loc.id then
                flows :=
                  { Summary.pf_param = i; pf_target = `Return j;
                    pf_derefs = derefs }
                  :: !flows)
            params))
    g.Graph.returns;
  (* param → heap flows *)
  Graph.walk_one g g.Graph.heap (fun leaf derefs ->
      List.iteri
        (fun i p ->
          if p.Loc.id = leaf.Loc.id then
            flows :=
              { Summary.pf_param = i; pf_target = `Heap; pf_derefs = derefs }
              :: !flows)
        params);
  (* Field-projected facts (field-sensitive mode): for every slot of a
     parameter's object that the function touched, record what it did to
     the slot — plus the param → slot flows a caller must replay. *)
  let fields = ref [] in
  if ctx.Build.field_mode then begin
    let param_index = Hashtbl.create 8 in
    List.iteri
      (fun i (p : Tast.var) -> Hashtbl.replace param_index p.Tast.v_id i)
      f.Tast.f_params;
    let slots =
      Hashtbl.fold
        (fun (vid, fidx) (slot : Loc.t) acc ->
          match Hashtbl.find_opt param_index vid with
          | Some i -> ((i, fidx), slot) :: acc
          | None -> acc)
        ctx.Build.field_locs []
      (* deterministic order: summaries are serialized into cache keys *)
      |> List.sort compare
    in
    List.iter
      (fun ((i, fidx), (slot : Loc.t)) ->
        let ff =
          {
            Summary.ff_param = i;
            ff_field = fidx;
            ff_heap = slot.Loc.points_to_heap;
            ff_content_incomplete = slot.Loc.exposes;
            ff_slot_incomplete = slot.Loc.inc_store;
          }
        in
        if ff.Summary.ff_heap || ff.Summary.ff_content_incomplete
           || ff.Summary.ff_slot_incomplete
        then fields := ff :: !fields;
        (* other params' values stored into this slot *)
        Graph.walk_one g slot (fun leaf derefs ->
            List.iteri
              (fun j p ->
                if p.Loc.id = leaf.Loc.id then
                  flows :=
                    { Summary.pf_param = j;
                      pf_target = `Param_field (i, fidx);
                      pf_derefs = derefs }
                    :: !flows)
              params))
      slots
  end;
  let contents =
    Array.map
      (fun (ret : Loc.t) ->
        if precise_contents then
          {
            Summary.ct_heap_alloc = ret.Loc.points_to_heap;
            (* Only store-origin incompleteness is recorded: the
               parameter-seeded component is a potential false positive
               that the caller re-derives from its actual arguments
               (§4.4). *)
            ct_incomplete = ret.Loc.inc_store;
            ret_incomplete = ret.Loc.inc_store;
          }
        else
          { Summary.ct_heap_alloc = true; ct_incomplete = true;
            ret_incomplete = true })
      g.Graph.returns
  in
  {
    Summary.s_name = f.Tast.f_name;
    s_nparams = List.length params;
    s_flows = !flows;
    s_contents = contents;
    s_fields = List.rev !fields;
  }

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

(* Mode parameters that change analysis results must feed the unit keys
   alongside the configuration signature. *)
let mode_signature ?(field_sensitive = false) mode use_ipa backprop =
  Printf.sprintf "mode=%s ipa=%b backprop=%b fields=%b"
    (match mode with Propagate.Gofree -> "gofree" | Propagate.Go_base -> "go")
    use_ipa backprop field_sensitive

(** Analyze a whole program.  With [mode = Go_base] the result carries
    only stack/heap decisions (what stock Go computes); with [Gofree] it
    also carries completeness/lifetime properties and ToFree flags.
    [use_ipa = false] keeps every call site on the conservative default
    tag; [backprop = false] disables GoFree's leaf→root rules (unsound —
    ablation only).

    The program is solved as analysis units (call-graph SCCs,
    {!Callgraph}) in bottom-up dependency order.  [unit_lookup] is the
    function-granular cache: given a unit's content key and function
    names it may return the unit's stored summaries, in which case the
    unit is {e not} analyzed (no [func_result]s for its functions) and
    the summaries are installed for its dependents — callers are
    expected to replay the unit's recorded insertions/decisions
    themselves.  [pool] runs independent ready units on worker domains;
    the calling thread acts as the scheduler and is the only submitter
    (workers never submit, so a full queue cannot deadlock).  Results
    are deterministic and identical across sequential, parallel, cached
    and uncached runs: in-SCC calls use default tags and a unit's
    summaries are published only after the whole unit, exactly as the
    monolithic solver did. *)
let analyze ?(mode = Propagate.Gofree) ?(use_ipa = true) ?(backprop = true)
    ?(field_sensitive = false) ?(imported = []) ?(config_sig = "") ?pool
    ?unit_lookup (p : Tast.program) : t =
  let summaries = Hashtbl.create 16 in
  (* Seed the table with the stored tags of already-analyzed packages:
     calls into an imported function then resolve exactly as they would
     in a whole-program run (§4.4's separate-compilation property).
     Without IPA the ablation stays fully conservative. *)
  if use_ipa then
    List.iter
      (fun (s : Summary.t) -> Hashtbl.replace summaries s.Summary.s_name s)
      imported;
  let funcs = Hashtbl.create 16 in
  let cg = Callgraph.build p.Tast.p_funcs in
  let nunits = Array.length cg.Callgraph.cg_units in
  let reports = Array.make nunits None in
  let msig = mode_signature ~field_sensitive mode use_ipa backprop in
  (* Key of a unit; callable only once every dependency's summaries are
     published (deps precede the unit in reverse topological order). *)
  let key_of u =
    Callgraph.unit_key ~config_sig ~mode_sig:msig
      ~callee_summary:(fun name ->
        if not use_ipa then None
        else
          Option.map Summary.to_string (Hashtbl.find_opt summaries name))
      u
  in
  (* Analyze one unit against [tbl] (the summary view it may read).
     Functions within one SCC see default tags for in-SCC calls (their
     summaries are published only after the unit). *)
  let solve_unit tbl (u : Callgraph.unit_def) =
    List.map
      (fun (f : Tast.func) ->
        let tid = Gofree_obs.Trace.domain_tid () in
        let ctx =
          Gofree_obs.Trace.with_span ~tid
            ("build:" ^ f.Tast.f_name)
            (fun () ->
              Build.build_function ~field_mode:field_sensitive
                ~tenv:p.Tast.p_tenv ~summaries:tbl f)
        in
        (* completeness, outlived and points-to propagation run fused
           inside one walkall pass, so a single span covers them *)
        let stats =
          Gofree_obs.Trace.with_span ~tid ("walk:" ^ f.Tast.f_name)
            (fun () ->
              Propagate.walkall ~mode ~backprop
                ~field_refine:field_sensitive ctx.Build.g)
        in
        (* Go's own parameter tags exist in both modes; only their
           content-tag refinement is GoFree-specific. *)
        let summary =
          if use_ipa then
            Some
              (extract_summary
                 ~precise_contents:(mode = Propagate.Gofree)
                 f ctx)
          else None
        in
        (f, ctx, stats, summary))
      u.Callgraph.u_funcs
  in
  let install results =
    List.iter
      (fun ((f : Tast.func), ctx, stats, summary) ->
        Hashtbl.replace funcs f.Tast.f_name
          { fr_func = f; fr_ctx = ctx; fr_stats = stats };
        Option.iter
          (fun s -> Hashtbl.replace summaries f.Tast.f_name s)
          summary)
      results
  in
  let try_cache (u : Callgraph.unit_def) key =
    match unit_lookup with
    | None -> false
    | Some lookup -> begin
      match lookup ~key ~funcs:(Callgraph.unit_names u) with
      | None -> false
      | Some stored ->
        if use_ipa then
          List.iter
            (fun (s : Summary.t) ->
              Hashtbl.replace summaries s.Summary.s_name s)
            stored;
        true
    end
  in
  let report (u : Callgraph.unit_def) key cached =
    reports.(u.Callgraph.u_id) <-
      Some
        {
          ur_id = u.Callgraph.u_id;
          ur_funcs = Callgraph.unit_names u;
          ur_key = key;
          ur_cached = cached;
        }
  in
  (match pool with
  | None ->
    (* Sequential bottom-up solve: byte-for-byte the monolithic order. *)
    Array.iter
      (fun u ->
        let key = key_of u in
        let cached = try_cache u key in
        if not cached then install (solve_unit summaries u);
        report u key cached)
      cg.Callgraph.cg_units
  | Some pool ->
    (* Dependency-counting scheduler.  This thread owns [ready] and is
       the only pool submitter; worker jobs publish results and wake it
       via [cond].  Workers read a per-unit snapshot of the summary
       table taken under the lock, never the live table. *)
    let mutex = Mutex.create () in
    let cond = Condition.create () in
    let pending =
      Array.map (fun u -> List.length u.Callgraph.u_deps) cg.Callgraph.cg_units
    in
    let failures = ref [] in
    let ready = Queue.create () in
    let completed = ref 0 in
    Array.iter
      (fun (u : Callgraph.unit_def) ->
        if pending.(u.Callgraph.u_id) = 0 then
          Queue.push u.Callgraph.u_id ready)
      cg.Callgraph.cg_units;
    (* with the lock held *)
    let complete uid =
      incr completed;
      List.iter
        (fun d ->
          pending.(d) <- pending.(d) - 1;
          if pending.(d) = 0 then Queue.push d ready)
        cg.Callgraph.cg_units.(uid).Callgraph.u_dependents;
      Condition.broadcast cond
    in
    Mutex.lock mutex;
    while !completed < nunits do
      if Queue.is_empty ready then Condition.wait cond mutex
      else begin
        let uid = Queue.pop ready in
        let u = cg.Callgraph.cg_units.(uid) in
        let key = key_of u in
        let cached = try_cache u key in
        report u key cached;
        if cached then complete uid
        else begin
          let snapshot = Hashtbl.copy summaries in
          Mutex.unlock mutex;
          let job () =
            let outcome =
              try Ok (solve_unit snapshot u) with e -> Error e
            in
            Mutex.lock mutex;
            (match outcome with
            | Ok results -> install results
            | Error e -> failures := e :: !failures);
            complete uid;
            Mutex.unlock mutex
          in
          (* [submit] only refuses while shutting down, which a build
             never does mid-analysis; run inline rather than hang. *)
          if not (Gofree_sched.Pool.submit pool job) then job ();
          Mutex.lock mutex
        end
      end
    done;
    let failed = !failures in
    Mutex.unlock mutex;
    (match failed with e :: _ -> raise e | [] -> ()));
  {
    mode;
    funcs;
    summaries;
    units =
      Array.to_list reports
      |> List.map (function Some r -> r | None -> assert false);
  }

let func_result t name = Hashtbl.find_opt t.funcs name

(** Location of a variable in its function's analyzed graph. *)
let var_loc t ~func (v : Tast.var) : Loc.t option =
  match func_result t func with
  | None -> None
  | Some fr -> Hashtbl.find_opt fr.fr_ctx.Build.var_locs v.Tast.v_id

(** Stack/heap decision for an allocation site: [true] when the site must
    be heap-allocated.  Sites never touched by the graph (dead code) stay
    stack-allocatable. *)
let site_is_heap t ~func (site : Tast.alloc_site) : bool =
  match func_result t func with
  | None -> true
  | Some fr -> begin
    match
      Hashtbl.find_opt fr.fr_ctx.Build.site_locs site.Tast.site_id
    with
    | Some l -> l.Loc.heap_alloc
    | None -> false
  end

(** All variables of [func] whose location satisfies ToFree (Def 4.17). *)
let to_free_vars t ~func : (Tast.var * Loc.t) list =
  match func_result t func with
  | None -> []
  | Some fr ->
    Hashtbl.fold
      (fun _ (l : Loc.t) acc ->
        match l.Loc.kind with
        | Loc.Kvar v when Propagate.to_free l -> (v, l) :: acc
        | _ -> acc)
      fr.fr_ctx.Build.var_locs []

(** Field slots of [func] satisfying ToFree (field-sensitive mode).
    Beyond Def 4.17 on the slot itself, a slot is only reported when its
    base variable is a sound anchor for the free:

    - the base is a plain local (not a parameter, global or named
      result: those objects are visible outside the frame);
    - the base's own location is neither incomplete nor outlived (an
      untracked rewrite of the base could swap the whole object under
      the slot);
    - no {e other} variable's points-to set intersects the slot's
      (same-scope aliases such as [x := db] or [x := db.f] keep their
      referent; outer-scope aliases are already caught by Outlived).

    Returns (base, field index, field name, slot location). *)
let to_free_fields t ~func : (Tast.var * int * string * Loc.t) list =
  match func_result t func with
  | None -> []
  | Some fr ->
    let ctx = fr.fr_ctx in
    let g = ctx.Build.g in
    let module IS = Set.Make (Int) in
    let pts (l : Loc.t) =
      List.fold_left
        (fun acc (m : Loc.t) -> IS.add m.Loc.id acc)
        IS.empty (Graph.points_to g l)
    in
    let candidates =
      Hashtbl.fold
        (fun _ (slot : Loc.t) acc ->
          match slot.Loc.kind with
          | Loc.Kfield (v, idx, fname) when Propagate.to_free slot ->
            (v, idx, fname, slot) :: acc
          | _ -> acc)
        ctx.Build.field_locs []
    in
    let keep ((v : Tast.var), _, _, (slot : Loc.t)) =
      v.Tast.v_kind = Tast.Vlocal
      && (match Hashtbl.find_opt ctx.Build.var_locs v.Tast.v_id with
         | Some base -> (not (Loc.incomplete base)) && not base.Loc.outlived
         | None -> false)
      &&
      let slot_pts = pts slot in
      Hashtbl.fold
        (fun vid (w : Loc.t) ok ->
          ok
          && (vid = v.Tast.v_id
             ||
             match w.Loc.kind with
             | Loc.Kvar _ -> IS.is_empty (IS.inter slot_pts (pts w))
             | _ -> true))
        ctx.Build.var_locs true
    in
    List.filter keep candidates
    |> List.sort (fun ((a : Tast.var), i, _, _) ((b : Tast.var), j, _, _) ->
           compare (a.Tast.v_id, i) (b.Tast.v_id, j))

(** Aggregate walk statistics, for the complexity experiment. *)
let total_walk_steps t =
  Hashtbl.fold
    (fun _ fr acc -> acc + fr.fr_ctx.Build.g.Graph.walk_steps)
    t.funcs 0
