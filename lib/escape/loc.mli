(** Escape-graph locations and their properties (paper Table 1). *)

(** What storage a location stands for. *)
type kind =
  | Kvar of Minigo.Tast.var  (** a named variable *)
  | Ksite of Minigo.Tast.alloc_site  (** an allocation expression *)
  | Kheap  (** the global dummy heapLoc *)
  | Kreturn of int  (** the function's i-th return value *)
  | Kcontent of string
      (** dummy content location: slice-append growth (§4.6.1), a call
          argument role, or an instantiated content tag (§4.4) *)
  | Kdefer  (** per-function sink for defer/panic arguments (§5) *)
  | Kresult of string * int
      (** caller-side instance of callee [name]'s i-th return value *)
  | Kfield of Minigo.Tast.var * int * string
      (** field-sensitive mode: the storage of one struct field of a
          local/parameter base variable (field index, field name) *)

(** Mutable, monotone analysis state per location.  Booleans only go from
    false to true; [outermost_ref] only decreases — the lattice-height
    argument behind the O(N^2) bound of {!Propagate.walkall}. *)
type t = {
  id : int;
  kind : kind;
  mutable loop_depth : int;  (** Def 4.3; −1 for dummies *)
  mutable decl_depth : int;  (** Def 4.13; −1 for dummies *)
  mutable heap_alloc : bool;  (** Def 4.10 *)
  mutable exposes : bool;  (** Def 4.11 *)
  mutable inc_param : bool;  (** Def 4.12, parameter-seeded component *)
  mutable inc_store : bool;  (** Def 4.12, indirect-store component *)
  mutable outermost_ref : int;  (** Def 4.14; starts at [decl_depth] *)
  mutable outlived : bool;  (** Def 4.15 *)
  mutable points_to_heap : bool;  (** Def 4.16 *)
  mutable walk_derefs : int;  (** transient SPFA state *)
  mutable walk_epoch : int;
  mutable walk_queued : bool;
}

(** Depth value standing in for +∞ (content tags, §4.4). *)
val infinity_depth : int

(** [Incomplete(l)] (Def 4.12): either incompleteness component. *)
val incomplete : t -> bool

(** Human-readable name, stable across runs. *)
val name : t -> string

val pp : Format.formatter -> t -> unit
