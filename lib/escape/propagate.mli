(** Property propagation over the escape graph: the paper's [walkall]
    (fig. 5) with Go's original constraint (Def 4.10) and GoFree's
    completeness and lifetime constraints (Defs 4.11–4.16). *)

type mode =
  | Go_base  (** only [HeapAlloc]: what the stock Go compiler computes *)
  | Gofree  (** all of Table 1 *)

type stats = {
  mutable roots_walked : int;
  mutable constraint_updates : int;
}

(** Apply constraints between a root and one leaf at [derefs =
    MinDerefs(leaf, root)]; returns [(leaf_updated, root_updated)].
    [backprop = false] disables the leaf→root rules of fig. 5 lines 10–13
    — deliberately unsound, used only by the robustness ablation.
    [field_refine = true] (field-sensitive mode) restricts the leaf→root
    incompleteness rule to leaves held at derefs ≥ 0: a leaf at −1
    contributes only its statically-known address to the root, so
    untracked stores into it cannot make the root's own points-to set
    incomplete. *)
val apply_constraints :
  ?backprop:bool ->
  ?field_refine:bool ->
  mode ->
  Loc.t ->
  Loc.t ->
  int ->
  bool * bool

(** Run the fixpoint to completion.  O(N^2): each location re-enters the
    unique work queue at most a constant number of times. *)
val walkall :
  ?mode:mode -> ?backprop:bool -> ?field_refine:bool -> Graph.t -> stats

(** Def 4.17: the location is safe and worthwhile to deallocate. *)
val to_free : Loc.t -> bool
