(** Minimal s-expressions for serializing summaries and build caches.
    [;] starts a line comment; atoms containing delimiters are printed
    quoted with the usual backslash escapes. *)

type t = Atom of string | List of t list

val to_string : t -> string

(** Parse exactly one s-expression (surrounding whitespace/comments ok). *)
val of_string : string -> (t, string) result

(** Parse a whole file of s-expressions. *)
val of_string_many : string -> (t list, string) result
