(** Property propagation over the escape graph: the paper's [walkall]
    (fig. 5) with Go's original constraints (Def 4.10) and GoFree's
    completeness (Defs 4.11–4.12) and lifetime (Defs 4.13–4.16)
    constraints.

    The algorithm keeps a unique-membership work queue of locations; each
    popped root is walked ({!Graph.walk_one}) and constraints are applied
    between the root and every leaf in [Holds(root)].  Go's base constraints
    only update leaves; GoFree's extension also updates the root
    (fig. 5 lines 10–13) — the root has a constant number of monotone
    properties, so it can be re-queued at most a constant number of times
    and the overall complexity stays O(N^2). *)

type mode =
  | Go_base  (** only [HeapAlloc]: what the stock Go compiler computes *)
  | Gofree  (** all of Table 1 *)

type stats = {
  mutable roots_walked : int;
  mutable constraint_updates : int;
}

(* A queue whose elements appear at most once (the paper's UniqueQueue). *)
module Unique_queue = struct
  type t = { q : Loc.t Queue.t; mutable members : bool array }

  let create n = { q = Queue.create (); members = Array.make (max n 1) false }

  let push t (l : Loc.t) =
    if l.Loc.id >= Array.length t.members then begin
      let bigger = Array.make (max (l.Loc.id + 1) (2 * Array.length t.members)) false in
      Array.blit t.members 0 bigger 0 (Array.length t.members);
      t.members <- bigger
    end;
    if not t.members.(l.Loc.id) then begin
      t.members.(l.Loc.id) <- true;
      Queue.add l t.q
    end

  let pop t =
    match Queue.take_opt t.q with
    | None -> None
    | Some l ->
      t.members.(l.Loc.id) <- false;
      Some l
end

(** Apply constraints between [root] and one [leaf] with
    [MinDerefs(leaf, root) = derefs].  Returns [(leaf_updated,
    root_updated)].  [backprop = false] disables the leaf→root rules —
    deliberately unsound, exercised by the robustness ablation. *)
let apply_constraints ?(backprop = true) ?(field_refine = false) mode
    (root : Loc.t) (leaf : Loc.t) derefs =
  let leaf_updated = ref false in
  let root_updated = ref false in
  let set_leaf cond (get, set) =
    if cond && not (get ()) then begin
      set ();
      leaf_updated := true
    end
  in
  let set_root cond (get, set) =
    if cond && not (get ()) then begin
      set ();
      root_updated := true
    end
  in
  let points_to = derefs = -1 in
  (* Def 4.10: leaf ∈ PointsTo(root) ∧ HeapAlloc(root) ⇒ HeapAlloc(leaf);
     and a pointer declared at a smaller loop depth than its referent
     forces the referent to the heap (the referent may outlive one
     iteration). *)
  set_leaf
    (points_to
    && (root.Loc.heap_alloc || root.Loc.loop_depth < leaf.Loc.loop_depth))
    ( (fun () -> leaf.Loc.heap_alloc),
      fun () -> leaf.Loc.heap_alloc <- true );
  if mode = Gofree then begin
    (* Def 4.11 rule 4: leaf's value reaches an exposing root without
       enough dereferences ⇒ the leaf's referents are exposed too. *)
    set_leaf
      (derefs <= 0 && root.Loc.exposes)
      ((fun () -> leaf.Loc.exposes), fun () -> leaf.Loc.exposes <- true);
    (* Def 4.12 rule 2: leaf ∈ PointsTo(root) ∧ Exposes(root) ⇒ leaf may be
       written through an untracked path (store-origin incompleteness). *)
    set_leaf
      (points_to && root.Loc.exposes)
      ((fun () -> leaf.Loc.inc_store), fun () -> leaf.Loc.inc_store <- true);
    (* Def 4.12 rule 3 (back-propagation, fig. 5 lines 10–13):
       leaf ∈ Holds(root) ∧ Incomplete(leaf) ⇒ Incomplete(root),
       component-wise.

       [field_refine] (field-sensitive mode) restricts the rule to
       leaves held at derefs ≥ 0.  A leaf at derefs ≥ 0 contributes its
       {e value} to the root (a copy at 0, a load out of its cells at
       ≥ 1), so the leaf's incompleteness genuinely taints what the
       root may hold.  A leaf at −1 contributes only its {e address}
       (root ∈ pointers-to-leaf), which is statically known: untracked
       stores into the leaf change the leaf's cells, not the identity
       of the object the root references, so the root's own points-to
       set stays complete.  The unrefined rule conservatively merges
       the two, which makes every slice of pointer-bearing elements
       unfreeable (the spine inherits the cell incompleteness caused by
       its own element stores). *)
    if backprop then begin
      let inherits = (not field_refine) || derefs >= 0 in
      set_root
        (inherits && leaf.Loc.inc_param)
        ( (fun () -> root.Loc.inc_param),
          fun () -> root.Loc.inc_param <- true );
      set_root
        (inherits && leaf.Loc.inc_store)
        ( (fun () -> root.Loc.inc_store),
          fun () -> root.Loc.inc_store <- true )
    end;
    (* Def 4.14: leaf ∈ PointsTo(root) ⇒
       OutermostRef(leaf) ≤ DeclDepth(root). *)
    if points_to && root.Loc.decl_depth < leaf.Loc.outermost_ref then begin
      leaf.Loc.outermost_ref <- root.Loc.decl_depth;
      leaf_updated := true
    end;
    (* Def 4.16 (root update): leaf ∈ PointsTo(root) ∧ HeapAlloc(leaf) ⇒
       PointsToHeap(root). *)
    set_root
      (points_to && leaf.Loc.heap_alloc)
      ( (fun () -> root.Loc.points_to_heap),
        fun () -> root.Loc.points_to_heap <- true );
    (* Def 4.15 (root update): leaf ∈ PointsTo(root) ∧
       OutermostRef(leaf) < DeclDepth(root) ⇒ Outlived(root). *)
    set_root
      (points_to && leaf.Loc.outermost_ref < root.Loc.decl_depth)
      ((fun () -> root.Loc.outlived), fun () -> root.Loc.outlived <- true)
  end;
  (!leaf_updated, !root_updated)

(** Run the fixpoint.  All locations start queued; constraint applications
    re-queue whichever side changed. *)
let walkall ?(mode = Gofree) ?(backprop = true) ?(field_refine = false)
    (g : Graph.t) : stats =
  let stats = { roots_walked = 0; constraint_updates = 0 } in
  let work = Unique_queue.create g.Graph.n_locs in
  List.iter (fun l -> Unique_queue.push work l) (Graph.all_locs g);
  let rec drain () =
    match Unique_queue.pop work with
    | None -> ()
    | Some root ->
      stats.roots_walked <- stats.roots_walked + 1;
      let root_changed = ref false in
      Graph.walk_one g root (fun leaf derefs ->
          if not !root_changed then begin
            let leaf_updated, root_updated =
              apply_constraints ~backprop ~field_refine mode root leaf derefs
            in
            if leaf_updated then begin
              stats.constraint_updates <- stats.constraint_updates + 1;
              Unique_queue.push work leaf
            end;
            if root_updated then begin
              stats.constraint_updates <- stats.constraint_updates + 1;
              (* fig. 5: re-queue the root and stop this walk; its data
                 changed under us. *)
              Unique_queue.push work root;
              root_changed := true
            end
          end);
      drain ()
  in
  drain ();
  stats

(** Def 4.17: [ToFree(m)] — the location is safe and worthwhile to free.
    Only meaningful after {!walkall} in {!Gofree} mode. *)
let to_free (l : Loc.t) =
  (not (Loc.incomplete l)) && (not l.Loc.outlived) && l.Loc.points_to_heap
