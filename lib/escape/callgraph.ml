(** Call-graph condensation into analysis units.

    An {e analysis unit} is one strongly connected component of the call
    graph — the smallest group of functions the escape analysis must
    solve together (in-SCC calls see default tags either way, §4.4, so a
    unit's result depends only on its own bodies and the summaries of
    the units it calls into).  Units carry everything a scheduler or a
    cache needs:

    - a dependency DAG over units ([u_deps]/[u_dependents]), emitted in
      reverse topological order (callees first), so ready units can be
      solved in parallel and bottom-up;
    - a content key ({!unit_key}): hash of the unit's pretty-printed
      bodies, the summary {e contents} of every out-of-unit callee, and
      the configuration signature.  Two analysis runs with equal keys
      are guaranteed equal results, which is what makes per-function
      incremental caching sound — an edited function invalidates its own
      unit (body hash) and exactly those dependents whose callee-summary
      contents actually changed.

    Tarjan's algorithm runs on an explicit stack: condensing a 10k-deep
    call chain must not overflow the OCaml call stack. *)

open Minigo

type unit_def = {
  u_id : int;  (** index into the reverse-topological unit array *)
  u_funcs : Tast.func list;  (** the SCC, in Tarjan discovery order *)
  u_deps : int list;  (** units this unit calls into; always [< u_id] *)
  u_dependents : int list;  (** units calling into this one *)
  u_body_hash : string;  (** digest of the unit's pretty-printed bodies *)
  u_callees : string list;
      (** sorted distinct out-of-unit callee names, imported/external
          ones included — the summary inputs of the unit *)
}

type t = {
  cg_units : unit_def array;  (** reverse topological order *)
  cg_unit_of : (string, int) Hashtbl.t;  (** function name → unit id *)
}

let callees_of (f : Tast.func) : string list =
  let acc = ref [] in
  let add name = if not (List.mem name !acc) then acc := name :: !acc in
  let visit_expr (e : Tast.expr) =
    match e.Tast.desc with Tast.Tcall (name, _) -> add name | _ -> ()
  in
  Tast.iter_stmts
    (fun s ->
      (match s with
      | Tast.Sgo (name, _) | Tast.Sdefer (name, _) -> add name
      | _ -> ());
      Tast.iter_stmt_exprs (fun e -> Tast.iter_expr visit_expr e) s)
    f.Tast.f_body;
  !acc

(* Tarjan SCC condensation on an explicit frame stack; components come
   out in reverse topological order (callees before callers).  Each
   frame is a node plus its not-yet-examined in-graph callees; a frame
   pops once its callees are exhausted, emitting its component if it is
   a root and folding its lowlink into the frame below — exactly the
   recursive algorithm's post-order, minus the OCaml call stack. *)
let condense (funcs : Tast.func list) : Tast.func list list =
  let by_name = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace by_name f.Tast.f_name f) funcs;
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let visit root =
    let frames = ref [] in
    let push name =
      Hashtbl.replace index name !counter;
      Hashtbl.replace lowlink name !counter;
      incr counter;
      stack := name :: !stack;
      Hashtbl.replace on_stack name true;
      let callees =
        match Hashtbl.find_opt by_name name with
        | None -> []
        | Some f -> List.filter (Hashtbl.mem by_name) (callees_of f)
      in
      frames := (name, ref callees) :: !frames
    in
    push root;
    while !frames <> [] do
      let name, remaining = List.hd !frames in
      match !remaining with
      | callee :: rest ->
        remaining := rest;
        if not (Hashtbl.mem index callee) then push callee
        else if Hashtbl.find_opt on_stack callee = Some true then
          Hashtbl.replace lowlink name
            (min (Hashtbl.find lowlink name) (Hashtbl.find index callee))
      | [] ->
        frames := List.tl !frames;
        if Hashtbl.find lowlink name = Hashtbl.find index name then begin
          let rec pop acc =
            match !stack with
            | [] -> acc
            | top :: rest ->
              stack := rest;
              Hashtbl.replace on_stack top false;
              if String.equal top name then top :: acc else pop (top :: acc)
          in
          let comp = pop [] in
          components :=
            List.filter_map (fun n -> Hashtbl.find_opt by_name n) comp
            :: !components
        end;
        (match !frames with
        | (parent, _) :: _ ->
          Hashtbl.replace lowlink parent
            (min (Hashtbl.find lowlink parent) (Hashtbl.find lowlink name))
        | [] -> ())
    done
  in
  List.iter
    (fun f ->
      if not (Hashtbl.mem index f.Tast.f_name) then visit f.Tast.f_name)
    funcs;
  List.rev !components

let build (funcs : Tast.func list) : t =
  let components = condense funcs in
  let cg_unit_of = Hashtbl.create 16 in
  List.iteri
    (fun i comp ->
      List.iter (fun f -> Hashtbl.replace cg_unit_of f.Tast.f_name i) comp)
    components;
  let units =
    Array.of_list
      (List.mapi
         (fun i comp ->
           let in_unit name =
             match Hashtbl.find_opt cg_unit_of name with
             | Some j -> j = i
             | None -> false
           in
           let callees =
             List.sort_uniq String.compare
               (List.filter
                  (fun c -> not (in_unit c))
                  (List.concat_map callees_of comp))
           in
           let deps =
             List.sort_uniq compare
               (List.filter_map (Hashtbl.find_opt cg_unit_of) callees)
           in
           let body_hash =
             Digest.to_hex
               (Digest.string
                  (String.concat "\000"
                     (List.map Pretty.func_to_string comp)))
           in
           {
             u_id = i;
             u_funcs = comp;
             u_deps = deps;
             u_dependents = [];
             u_body_hash = body_hash;
             u_callees = callees;
           })
         components)
  in
  Array.iter
    (fun u ->
      List.iter
        (fun d ->
          units.(d) <-
            { (units.(d)) with u_dependents = u.u_id :: units.(d).u_dependents })
        u.u_deps)
    units;
  Array.iteri
    (fun i u -> units.(i) <- { u with u_dependents = List.rev u.u_dependents })
    units;
  { cg_units = units; cg_unit_of }

let unit_names (u : unit_def) : string list =
  List.map (fun (f : Tast.func) -> f.Tast.f_name) u.u_funcs

(* The key must be stable across processes and runs: Digest of a
   canonical text.  [callee_summary] resolves an out-of-unit callee to
   the {e content} of its summary ([Summary.to_string]); [None] means
   the analysis would use the conservative default tag there, which is
   itself part of the content. *)
let unit_key ~(config_sig : string) ~(mode_sig : string)
    ~(callee_summary : string -> string option) (u : unit_def) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "gofree-unit-key-v1\n";
  Buffer.add_string buf config_sig;
  Buffer.add_char buf '\n';
  Buffer.add_string buf mode_sig;
  Buffer.add_char buf '\n';
  Buffer.add_string buf u.u_body_hash;
  Buffer.add_char buf '\n';
  List.iter
    (fun c ->
      Buffer.add_string buf c;
      Buffer.add_char buf '=';
      Buffer.add_string buf
        (match callee_summary c with Some s -> s | None -> "<default>");
      Buffer.add_char buf '\n')
    u.u_callees;
  Digest.to_hex (Digest.string (Buffer.contents buf))
