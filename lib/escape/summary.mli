(** Function summaries: Go's parameter tags extended with GoFree's
    content tags (paper §4.4). *)

(** A compressed dataflow from one parameter to a return value, the
    heap, the defer sink, or (field-sensitive mode) a field slot of
    another parameter's object, with the [MinDerefs] weight along the
    path. *)
type param_flow = {
  pf_param : int;
  pf_target : [ `Return of int | `Heap | `Defer | `Param_field of int * int ];
  pf_derefs : int;
}

(** Field-projected fact about one parameter's field slot
    (field-sensitive mode): what the callee did to field [ff_field] of
    the object parameter [ff_param] refers to. *)
type field_fact = {
  ff_param : int;
  ff_field : int;
  ff_heap : bool;
      (** the slot may point at a fresh callee heap allocation *)
  ff_content_incomplete : bool;
      (** the callee wrote through the slot's value: the pointed-at
          object's cells are incomplete *)
  ff_slot_incomplete : bool;
      (** the slot's address leaked inside the callee: the slot itself
          may be rewritten through untracked paths *)
}

(** Per-return-value content tag: what the caller may assume about the
    object the return value points at. *)
type content_tag = {
  ct_heap_alloc : bool;
      (** the return value may point at a callee heap allocation — a
          deallocation opportunity for the caller *)
  ct_incomplete : bool;
      (** indirect stores inside the callee compromised the points-to
          set; the caller must not free through this value *)
  ret_incomplete : bool;
      (** store-origin incompleteness of the return value itself (the
          paper's [Incomplete(l) = Incomplete(m)] adjustment) *)
}

type t = {
  s_name : string;
  s_nparams : int;
  s_flows : param_flow list;
  s_contents : content_tag array;
  s_fields : field_fact list;
      (** always empty outside field-sensitive mode; omitted from the
          serialized form when empty, so baseline summaries keep the
          historical wire format *)
}

(** Conservative tag for an unknown callee (recursion, §4.4): parameters
    flow to the heap, returns come from the heap, incomplete. *)
val default : name:string -> nparams:int -> nresults:int -> t

(** Serialization, the paper's separate-compilation story (§4.4): a
    callee's stored tag is all a caller's analysis needs.  [of_string]
    and [of_sexp] accept exactly what [to_string] / [to_sexp] produce
    and are total (malformed input yields [Error]). *)

val to_sexp : t -> Sexp.t

val of_sexp : Sexp.t -> (t, string) result

val to_string : t -> string

val of_string : string -> (t, string) result

val pp : Format.formatter -> t -> unit
