(** Function summaries: Go's parameter tags extended with GoFree's content
    tags (paper §4.4).

    A summary compresses a callee's escape graph into:
    - flows from each parameter to each return value (with [MinDerefs]
      weights), and from each parameter to the heap — Go's parameter tag;
    - per return value, a content tag recording whether the returned value
      may point at a fresh heap allocation ([ct_heap_alloc], from the
      callee's [PointsToHeap]) and whether its points-to set may be
      incomplete because of indirect stores {e inside the callee}
      ([ct_incomplete]); plus the return value's own store-origin
      incompleteness ([ret_incomplete], the paper's
      [Incomplete(l) = Incomplete(m)] adjustment).

    The [default] summary is used for unknown callees (recursion, §4.4):
    all parameters flow to the heap, all return values come from the heap
    with incomplete points-to sets. *)

type param_flow = {
  pf_param : int;  (** parameter index *)
  pf_target : [ `Return of int | `Heap | `Defer | `Param_field of int * int ];
      (** [`Param_field (i, f)]: the flow lands in field [f] of the
          object parameter [i] refers to (field-sensitive mode only) *)
  pf_derefs : int;  (** MinDerefs along the compressed edge *)
}

(** Field-projected fact about one parameter's field slot
    (field-sensitive mode): everything a caller must replay onto the
    matching field location of its argument variable. *)
type field_fact = {
  ff_param : int;  (** parameter index of the base object *)
  ff_field : int;  (** field index within the base struct *)
  ff_heap : bool;
      (** the slot may point at a fresh callee heap allocation — a
          deallocation opportunity for the caller *)
  ff_content_incomplete : bool;
      (** the pointed-at content's cells may hold untracked values
          (indirect stores inside the callee) *)
  ff_slot_incomplete : bool;
      (** the slot itself may be written through an untracked path
          inside the callee (its address leaked) *)
}

type content_tag = {
  ct_heap_alloc : bool;
      (** the return value may point at a heap allocation made by the
          callee: a deallocation opportunity for the caller *)
  ct_incomplete : bool;
      (** indirect stores inside the callee may have put untracked values
          behind this return value *)
  ret_incomplete : bool;
      (** store-origin incompleteness of the return value itself *)
}

type t = {
  s_name : string;
  s_nparams : int;
  s_flows : param_flow list;
  s_contents : content_tag array;  (** one per return value *)
  s_fields : field_fact list;
      (** field-projected parameter facts; always empty outside
          field-sensitive mode *)
}

(** Conservative summary for an unknown callee. *)
let default ~name ~nparams ~nresults =
  {
    s_name = name;
    s_nparams = nparams;
    s_flows =
      List.init nparams (fun i ->
          { pf_param = i; pf_target = `Heap; pf_derefs = 0 });
    s_contents =
      Array.init nresults (fun _ ->
          { ct_heap_alloc = true; ct_incomplete = true;
            ret_incomplete = true });
    s_fields = [];
  }

(* -------------------------------------------------------------- *)
(* Serialization (paper §4.4: a callee's extended parameter tag is
   everything a caller needs, which is what makes separate compilation
   possible — the build driver stores these per package).           *)
(* -------------------------------------------------------------- *)

let target_to_sexp = function
  | `Return i -> Sexp.List [ Sexp.Atom "return"; Sexp.Atom (string_of_int i) ]
  | `Heap -> Sexp.Atom "heap"
  | `Defer -> Sexp.Atom "defer"
  | `Param_field (i, f) ->
    Sexp.List
      [
        Sexp.Atom "pfield"; Sexp.Atom (string_of_int i);
        Sexp.Atom (string_of_int f);
      ]

let to_sexp s =
  let flow f =
    Sexp.List
      [
        Sexp.Atom "flow";
        Sexp.Atom (string_of_int f.pf_param);
        target_to_sexp f.pf_target;
        Sexp.Atom (string_of_int f.pf_derefs);
      ]
  in
  let content ct =
    Sexp.List
      [
        Sexp.Atom "content";
        Sexp.Atom (string_of_bool ct.ct_heap_alloc);
        Sexp.Atom (string_of_bool ct.ct_incomplete);
        Sexp.Atom (string_of_bool ct.ret_incomplete);
      ]
  in
  let field ff =
    Sexp.List
      [
        Sexp.Atom "field";
        Sexp.Atom (string_of_int ff.ff_param);
        Sexp.Atom (string_of_int ff.ff_field);
        Sexp.Atom (string_of_bool ff.ff_heap);
        Sexp.Atom (string_of_bool ff.ff_content_incomplete);
        Sexp.Atom (string_of_bool ff.ff_slot_incomplete);
      ]
  in
  Sexp.List
    ([
       Sexp.Atom "summary";
       Sexp.List [ Sexp.Atom "name"; Sexp.Atom s.s_name ];
       Sexp.List
         [ Sexp.Atom "nparams"; Sexp.Atom (string_of_int s.s_nparams) ];
       Sexp.List (Sexp.Atom "flows" :: List.map flow s.s_flows);
       Sexp.List
         (Sexp.Atom "contents"
         :: Array.to_list (Array.map content s.s_contents));
     ]
    @
    (* The fields section is omitted when empty, keeping the baseline
       wire format byte-identical to the pre-field-sensitive one. *)
    match s.s_fields with
    | [] -> []
    | ffs -> [ Sexp.List (Sexp.Atom "fields" :: List.map field ffs) ])

exception Bad of string

let of_sexp sx =
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let int_atom = function
    | Sexp.Atom a -> begin
      match int_of_string_opt a with
      | Some n -> n
      | None -> fail "expected an integer, got %s" a
    end
    | Sexp.List _ -> fail "expected an integer atom"
  in
  let bool_atom = function
    | Sexp.Atom "true" -> true
    | Sexp.Atom "false" -> false
    | _ -> fail "expected a boolean atom"
  in
  let target = function
    | Sexp.Atom "heap" -> `Heap
    | Sexp.Atom "defer" -> `Defer
    | Sexp.List [ Sexp.Atom "return"; i ] -> `Return (int_atom i)
    | Sexp.List [ Sexp.Atom "pfield"; i; f ] ->
      `Param_field (int_atom i, int_atom f)
    | _ -> fail "malformed flow target"
  in
  let flow = function
    | Sexp.List [ Sexp.Atom "flow"; p; t; d ] ->
      { pf_param = int_atom p; pf_target = target t; pf_derefs = int_atom d }
    | _ -> fail "malformed flow"
  in
  let content = function
    | Sexp.List [ Sexp.Atom "content"; h; i; r ] ->
      {
        ct_heap_alloc = bool_atom h;
        ct_incomplete = bool_atom i;
        ret_incomplete = bool_atom r;
      }
    | _ -> fail "malformed content tag"
  in
  let field = function
    | Sexp.List [ Sexp.Atom "field"; p; f; h; ci; si ] ->
      {
        ff_param = int_atom p;
        ff_field = int_atom f;
        ff_heap = bool_atom h;
        ff_content_incomplete = bool_atom ci;
        ff_slot_incomplete = bool_atom si;
      }
    | _ -> fail "malformed field fact"
  in
  match
    match sx with
    | Sexp.List
        (Sexp.Atom "summary"
        :: Sexp.List [ Sexp.Atom "name"; Sexp.Atom name ]
        :: Sexp.List [ Sexp.Atom "nparams"; np ]
        :: Sexp.List (Sexp.Atom "flows" :: flows)
        :: Sexp.List (Sexp.Atom "contents" :: contents)
        :: rest) ->
      let fields =
        match rest with
        | [] -> []
        | [ Sexp.List (Sexp.Atom "fields" :: ffs) ] -> List.map field ffs
        | _ -> fail "malformed summary tail"
      in
      {
        s_name = name;
        s_nparams = int_atom np;
        s_flows = List.map flow flows;
        s_contents = Array.of_list (List.map content contents);
        s_fields = fields;
      }
    | _ -> fail "malformed summary"
  with
  | s -> Ok s
  | exception Bad m -> Error m

let to_string s = Sexp.to_string (to_sexp s)

let of_string str =
  match Sexp.of_string str with
  | Error m -> Error m
  | Ok sx -> of_sexp sx

let pp fmt s =
  let target_str = function
    | `Return i -> Printf.sprintf "return%d" i
    | `Heap -> "heapLoc"
    | `Defer -> "deferLoc"
    | `Param_field (i, f) -> Printf.sprintf "param%d.field%d" i f
  in
  Format.fprintf fmt "@[<v 2>summary %s:" s.s_name;
  List.iter
    (fun f ->
      Format.fprintf fmt "@,param%d --%d--> %s" f.pf_param f.pf_derefs
        (target_str f.pf_target))
    s.s_flows;
  Array.iteri
    (fun i ct ->
      Format.fprintf fmt
        "@,content%d: heap_alloc=%b incomplete=%b ret_incomplete=%b" i
        ct.ct_heap_alloc ct.ct_incomplete ct.ret_incomplete)
    s.s_contents;
  List.iter
    (fun ff ->
      Format.fprintf fmt
        "@,param%d.field%d: heap=%b content_incomplete=%b \
         slot_incomplete=%b"
        ff.ff_param ff.ff_field ff.ff_heap ff.ff_content_incomplete
        ff.ff_slot_incomplete)
    s.s_fields;
  Format.fprintf fmt "@]"
