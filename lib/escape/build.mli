(** Escape-graph construction: one graph per function (paper §4.1), with
    the edge rules of Table 2 and the Go-feature handling of §4.6
    (slice append content locations, call-site tag instantiation,
    defer/panic/go sinks). *)

open Minigo

type ctx = {
  g : Graph.t;
  tenv : Types.env;
  var_locs : (int, Loc.t) Hashtbl.t;  (** var id → location *)
  site_locs : (int, Loc.t) Hashtbl.t;  (** site id → location *)
  append_locs : (int, Loc.t) Hashtbl.t;  (** append site → content loc *)
  summaries : (string, Summary.t) Hashtbl.t;
  field_mode : bool;  (** field-sensitive precision enabled *)
  field_locs : (int * int, Loc.t) Hashtbl.t;  (** (var id, field) → slot *)
  mutable cur_depth : int;
  mutable cur_loop : int;
  mutable call_instances : (string * Loc.t array) list;
}

(** Objects larger than this never go on the stack (Go's implicit
    allocation limit). *)
val max_stack_bytes : int

(** Location of a variable, created on first use (parameters seeded
    [Incomplete], globals heap/exposed/incomplete). *)
val var_loc : ctx -> Tast.var -> Loc.t

(** Location of an allocation site, created on first use with its base
    HeapAlloc decision (dynamic or oversized → heap). *)
val site_loc : ctx -> Tast.alloc_site -> Loc.t

(** Flows of an expression: the (location, derefs) sources of its value.
    Traverses the whole expression, so nested calls and appends
    contribute their edges exactly once. *)
val flow_expr : ctx -> Tast.expr -> (Loc.t * int) list

(** Build the escape graph of one function, using [summaries] for
    already-analyzed callees.  [field_mode] enables field-sensitive
    precision: one-hop struct fields of local/parameter bases get their
    own slot locations, tracked loads/stores, and summary field facts. *)
val build_function :
  ?field_mode:bool ->
  tenv:Types.env ->
  summaries:(string, Summary.t) Hashtbl.t ->
  Tast.func ->
  ctx
