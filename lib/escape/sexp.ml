(** Minimal s-expressions, used to serialize function summaries and the
    build cache.  Hand-rolled so the escape library stays dependency-free:
    atoms are quoted only when they contain delimiters, and [;] starts a
    line comment (handy for annotating stored summary files). *)

type t = Atom of string | List of t list

(* -------------------------------------------------------------- *)
(* Printing                                                        *)
(* -------------------------------------------------------------- *)

let needs_quotes s =
  s = ""
  || String.exists
       (fun c ->
         match c with
         | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';' | '\\' -> true
         | _ -> false)
       s

let add_atom buf s =
  if needs_quotes s then begin
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\r' -> Buffer.add_string buf "\\r"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'
  end
  else Buffer.add_string buf s

let rec add_sexp buf = function
  | Atom s -> add_atom buf s
  | List xs ->
    Buffer.add_char buf '(';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ' ';
        add_sexp buf x)
      xs;
    Buffer.add_char buf ')'

let to_string t =
  let buf = Buffer.create 256 in
  add_sexp buf t;
  Buffer.contents buf

(* -------------------------------------------------------------- *)
(* Parsing                                                         *)
(* -------------------------------------------------------------- *)

exception Parse_error of string

let parse_many src =
  let n = String.length src in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt in
  let rec skip_ws () =
    if !pos < n then
      match src.[!pos] with
      | ' ' | '\t' | '\n' | '\r' ->
        incr pos;
        skip_ws ()
      | ';' ->
        while !pos < n && src.[!pos] <> '\n' do
          incr pos
        done;
        skip_ws ()
      | _ -> ()
  in
  let parse_quoted () =
    (* opening quote already consumed *)
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string at offset %d" !pos;
      match src.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        if !pos + 1 >= n then fail "dangling escape at offset %d" !pos;
        (match src.[!pos + 1] with
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | c -> Buffer.add_char buf c);
        pos := !pos + 2;
        go ()
      | c ->
        Buffer.add_char buf c;
        incr pos;
        go ()
    in
    go ();
    Atom (Buffer.contents buf)
  in
  let parse_bare () =
    let start = !pos in
    let delim c =
      match c with
      | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';' -> true
      | _ -> false
    in
    while !pos < n && not (delim src.[!pos]) do
      incr pos
    done;
    Atom (String.sub src start (!pos - start))
  in
  let rec parse_one () =
    skip_ws ();
    if !pos >= n then fail "unexpected end of input";
    match src.[!pos] with
    | '(' ->
      incr pos;
      parse_list []
    | ')' -> fail "unexpected ')' at offset %d" !pos
    | '"' ->
      incr pos;
      parse_quoted ()
    | _ -> parse_bare ()
  and parse_list acc =
    skip_ws ();
    if !pos >= n then fail "unterminated list";
    if src.[!pos] = ')' then begin
      incr pos;
      List (List.rev acc)
    end
    else parse_list (parse_one () :: acc)
  in
  let rec top acc =
    skip_ws ();
    if !pos >= n then List.rev acc else top (parse_one () :: acc)
  in
  top []

let of_string_many src =
  match parse_many src with
  | xs -> Ok xs
  | exception Parse_error m -> Error m

let of_string src =
  match of_string_many src with
  | Error m -> Error m
  | Ok [ x ] -> Ok x
  | Ok [] -> Error "empty input"
  | Ok _ -> Error "trailing content after s-expression"
