(** Escape-graph locations and their properties (paper Table 1).

    A location represents a storage space: a program variable, an
    allocation site, or one of the dummy locations ([heapLoc], per-return
    [return_i], content tags, the per-function defer sink).

    Properties are mutable and monotone: booleans only go from [false] to
    [true]; [outermost_ref] only decreases.  This keeps the fixpoint of
    {!Propagate.walkall} at the paper's O(N^2) bound: each location can be
    re-queued at most a constant number of times. *)

type kind =
  | Kvar of Minigo.Tast.var  (** a named variable *)
  | Ksite of Minigo.Tast.alloc_site  (** an allocation expression *)
  | Kheap  (** the global dummy heapLoc *)
  | Kreturn of int  (** the function's i-th return value *)
  | Kcontent of string
      (** dummy content location: slice-append growth (§4.6.1) or an
          instantiated content tag (§4.4); the string describes it *)
  | Kdefer  (** per-function sink for defer/panic arguments (§5) *)
  | Kresult of string * int
      (** caller-side instance of callee [name]'s i-th return value *)
  | Kfield of Minigo.Tast.var * int * string
      (** field-sensitive mode only: the storage of one struct field
          ([base.f]) of a local/parameter base variable.  The field slot
          is genuine storage: it is in [PointsTo(base)] (weight −1 edge
          slot → base) and its value is loadable from the base (weight
          +1 edge base → slot for pointer bases, 0 for struct values) *)

(** Incompleteness is tracked as two independent monotone bits so that
    content tags can record only the incompleteness that originates from
    indirect stores inside the callee, excluding the conservative
    [Incomplete(param) = true] seed that §4.4 explains may be a false
    positive once the caller is known. *)
type t = {
  id : int;
  kind : kind;
  mutable loop_depth : int;  (** Def 4.3; −1 for dummies *)
  mutable decl_depth : int;  (** Def 4.13; −1 for dummies *)
  mutable heap_alloc : bool;  (** Def 4.10 *)
  mutable exposes : bool;  (** Def 4.11 *)
  mutable inc_param : bool;  (** Def 4.12, parameter-seeded component *)
  mutable inc_store : bool;  (** Def 4.12, indirect-store component *)
  mutable outermost_ref : int;  (** Def 4.14; starts at [decl_depth] *)
  mutable outlived : bool;  (** Def 4.15 *)
  mutable points_to_heap : bool;  (** Def 4.16 *)
  (* Transient per-walk state for the SPFA in {!Graph.walk_one}. *)
  mutable walk_derefs : int;
  mutable walk_epoch : int;
  mutable walk_queued : bool;
}

let infinity_depth = max_int / 2

let incomplete l = l.inc_param || l.inc_store

let name l =
  match l.kind with
  | Kvar v -> v.Minigo.Tast.v_name
  | Ksite s -> Printf.sprintf "alloc#%d" s.Minigo.Tast.site_id
  | Kheap -> "heapLoc"
  | Kreturn i -> Printf.sprintf "return%d" i
  | Kcontent what -> Printf.sprintf "content(%s)" what
  | Kdefer -> "deferLoc"
  | Kresult (f, i) -> Printf.sprintf "%s.result%d" f i
  | Kfield (v, _, f) -> Printf.sprintf "%s.%s" v.Minigo.Tast.v_name f

let pp fmt l =
  Format.fprintf fmt
    "%s{heap=%b exposes=%b incomplete=%b outermost=%d outlived=%b \
     ptsheap=%b}"
    (name l) l.heap_alloc l.exposes (incomplete l) l.outermost_ref
    l.outlived l.points_to_heap
