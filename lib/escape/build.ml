(** Escape-graph construction: one graph per function (paper §4.1).

    Each assignment-like construct contributes a constant number of nodes
    and edges (Table 2), keeping |L| and |E| linear in program size:

    - [p = q]   adds  [q --0--> p]
    - [p = &q]  adds  [q --(-1)--> p]
    - [p = *q]  adds  [q --1--> p]
    - [*p = q]  adds  [q --0--> heapLoc]  and seeds [Exposes(p)]

    Indirect stores are {e not} tracked further — exactly the
    simplification that makes Go's analysis O(N^2) and the points-to sets
    of some locations incomplete (the completeness analysis recovers which
    ones are trustworthy).

    Go-specific features follow §4.6: slice [append] adds a dummy content
    location with [HeapAlloc] (the possible growth array); call sites embed
    the callee's extended parameter tag (§4.4); [defer]/[panic] arguments
    flow to a function-lifetime sink; [go] arguments flow to the heap. *)

open Minigo

type ctx = {
  g : Graph.t;
  tenv : Types.env;
  var_locs : (int, Loc.t) Hashtbl.t;  (** var id → location *)
  site_locs : (int, Loc.t) Hashtbl.t;  (** site id → location *)
  append_locs : (int, Loc.t) Hashtbl.t;  (** append site id → content loc *)
  summaries : (string, Summary.t) Hashtbl.t;
  field_mode : bool;
      (** field-sensitive precision: give one-hop struct fields of
          local/parameter bases their own locations *)
  field_locs : (int * int, Loc.t) Hashtbl.t;  (** (var id, field) → slot *)
  mutable cur_depth : int;
  mutable cur_loop : int;
  mutable call_instances : (string * Loc.t array) list;
      (** call-site result locations, for tests/debugging *)
}

(** Objects larger than this are never stack-allocated (Go's
    [maxStackVarSize] is 10 MB for explicit variables but 64 KB for
    implicitly allocated backing stores such as [make] slices; we use the
    latter since all MiniGo allocation sites are of that kind). *)
let max_stack_bytes = 64 * 1024

let var_loc ctx (v : Tast.var) : Loc.t =
  match Hashtbl.find_opt ctx.var_locs v.Tast.v_id with
  | Some l -> l
  | None ->
    let l =
      Graph.fresh_loc ctx.g (Loc.Kvar v) ~loop_depth:v.Tast.v_loop_depth
        ~decl_depth:v.Tast.v_decl_depth
    in
    (match v.Tast.v_kind with
    | Tast.Vparam ->
      (* Def 4.12: a formal parameter's points-to set is incomplete. *)
      l.Loc.inc_param <- true
    | Tast.Vglobal ->
      (* Globals behave like the heap: always heap-allocated, mutable
         from anywhere. *)
      l.Loc.heap_alloc <- true;
      l.Loc.exposes <- true;
      l.Loc.inc_store <- true;
      l.Loc.loop_depth <- -1;
      l.Loc.decl_depth <- -1;
      l.Loc.outermost_ref <- -1
    | Tast.Vlocal | Tast.Vresult _ -> ());
    Hashtbl.replace ctx.var_locs v.Tast.v_id l;
    l

let site_loc ctx (site : Tast.alloc_site) : Loc.t =
  match Hashtbl.find_opt ctx.site_locs site.Tast.site_id with
  | Some l -> l
  | None ->
    let l =
      Graph.fresh_loc ctx.g (Loc.Ksite site) ~loop_depth:ctx.cur_loop
        ~decl_depth:ctx.cur_depth
    in
    (* Base HeapAlloc: dynamic size (fig. 3's make2), or too large for a
       stack frame. *)
    (match site.Tast.site_const_len with
    | None -> l.Loc.heap_alloc <- true
    | Some n ->
      if n * max 1 site.Tast.site_elem_size > max_stack_bytes then
        l.Loc.heap_alloc <- true);
    Hashtbl.replace ctx.site_locs site.Tast.site_id l;
    l

(* The dummy content location of an append site: a possible implicit
   growth allocation (§4.6.1), always heap. *)
let append_content_loc ctx (site : Tast.alloc_site) : Loc.t =
  match Hashtbl.find_opt ctx.append_locs site.Tast.site_id with
  | Some l -> l
  | None ->
    let l =
      Graph.fresh_loc ctx.g
        (Loc.Kcontent (Printf.sprintf "append#%d" site.Tast.site_id))
        ~loop_depth:ctx.cur_loop ~decl_depth:ctx.cur_depth
    in
    l.Loc.heap_alloc <- true;
    Hashtbl.replace ctx.append_locs site.Tast.site_id l;
    (* The growth allocation is this site's allocation: register it so the
       stack/heap decision (always heap) is visible to the runtime. *)
    Hashtbl.replace ctx.site_locs site.Tast.site_id l;
    l

let pointer_bearing ctx (ty : Types.t) = Types.contains_pointers ctx.tenv ty

(* ------------------------------------------------------------------ *)
(* Field-sensitive slots                                               *)
(* ------------------------------------------------------------------ *)

(* A field access is eligible for its own slot location when the base is a
   one-hop non-global variable of (pointer-to-)struct type.  Deeper chains
   and computed bases keep the field-insensitive treatment. *)
let field_base_of_expr (e : Tast.expr) : (Tast.var * string * bool) option =
  match e.Tast.desc with
  | Tast.Tvar v when v.Tast.v_kind <> Tast.Vglobal -> begin
    match e.Tast.ty with
    | Types.Struct s -> Some (v, s, false)
    | Types.Ptr (Types.Struct s) -> Some (v, s, true)
    | _ -> None
  end
  | _ -> None

(** The location of the storage of [base.f] (field-sensitive mode).  The
    slot is genuine storage inside the base's object:

    - [slot --(-1)--> base]: the slot is in [PointsTo(base)], so the
      base's heap decision, declaration depth and exposure flow onto the
      slot (Defs 4.10, 4.14, and rule 2 of Def 4.12);
    - [base --(+1|0)--> slot]: the slot's value is loaded out of the base
      (one dereference for pointer bases, a copy for struct values), so
      whatever flows into the base — including instantiated callee tags —
      remains visible through the field projection.

    Pointer-base slots live inside a pointee object whose storage is not
    this frame, so they are born [HeapAlloc] (anything stored into them is
    forced off the stack, exactly as the field-insensitive analysis
    forces [*p = q] destinations to the heap — but without the exposure
    that made those stores untracked). *)
let field_loc ctx (v : Tast.var) ~ptr_base idx fname : Loc.t =
  match Hashtbl.find_opt ctx.field_locs (v.Tast.v_id, idx) with
  | Some l -> l
  | None ->
    let base = var_loc ctx v in
    let l =
      Graph.fresh_loc ctx.g (Loc.Kfield (v, idx, fname))
        ~loop_depth:v.Tast.v_loop_depth ~decl_depth:v.Tast.v_decl_depth
    in
    Graph.add_edge ctx.g ~src:l ~dst:base ~weight:(-1);
    Graph.add_edge ctx.g ~src:base ~dst:l
      ~weight:(if ptr_base then 1 else 0);
    if ptr_base then l.Loc.heap_alloc <- true;
    Hashtbl.replace ctx.field_locs (v.Tast.v_id, idx) l;
    l

(* The slot for field [fidx] of argument expression [arg], when the
   argument is an eligible base and the field is pointer-bearing. *)
let arg_field_slot ctx (arg : Tast.expr) fidx : Loc.t option =
  if not ctx.field_mode then None
  else
    match field_base_of_expr arg with
    | Some (v, sname, ptr_base) -> begin
      match List.nth_opt (Types.struct_fields ctx.tenv sname) fidx with
      | Some (fname, fty) when pointer_bearing ctx fty ->
        Some (field_loc ctx v ~ptr_base fidx fname)
      | _ -> None
    end
    | None -> None

let connect ctx flows (dst : Loc.t) =
  List.iter
    (fun (src, derefs) -> Graph.add_edge ctx.g ~src ~dst ~weight:derefs)
    flows

(* Seed Exposes on the destination of an indirect store (Def 4.11 third
   bullet): for a pointer expression used as a store destination, every
   source holding its value or address is exposed. *)
let expose_store_dest flows =
  List.iter
    (fun ((l : Loc.t), derefs) -> if derefs <= 0 then l.Loc.exposes <- true)
    flows

(** Flows of an expression: the locations (with dereference counts) whose
    value the expression may yield.  Always traverses the whole expression
    so that nested calls and appends contribute their edges exactly once. *)
let rec flow_expr ctx (e : Tast.expr) : (Loc.t * int) list =
  match e.Tast.desc with
  | Tast.Tint _ | Tast.Tfloat _ | Tast.Tbool _ | Tast.Tstring _ | Tast.Tnil
    ->
    []
  | Tast.Tvar v -> [ (var_loc ctx v, 0) ]
  | Tast.Tbinop (_, a, b) ->
    ignore (flow_expr ctx a);
    ignore (flow_expr ctx b);
    []
  | Tast.Tunop (_, a) | Tast.Tlen a | Tast.Tcap a | Tast.Titoa a
  | Tast.Trand a ->
    ignore (flow_expr ctx a);
    []
  | Tast.Tsubstr (s, a, b) ->
    ignore (flow_expr ctx s);
    ignore (flow_expr ctx a);
    ignore (flow_expr ctx b);
    []
  | Tast.Tslice_sub (e, lo, hi) -> begin
    Option.iter (fun b -> ignore (flow_expr ctx b)) lo;
    Option.iter (fun b -> ignore (flow_expr ctx b)) hi;
    match e.Tast.ty with
    | Types.String ->
      ignore (flow_expr ctx e);
      []
    | _ ->
      (* a sub-slice aliases the same backing array: pure value flow *)
      flow_expr ctx e
  end
  | Tast.Tcopy (dst, src) ->
    let fd = flow_expr ctx dst in
    let fs = flow_expr ctx src in
    (match dst.Tast.ty with
    | Types.Slice elem when pointer_bearing ctx elem ->
      (* element-wise store through dst: untracked, like a[i] = v *)
      connect ctx (List.map (fun (l, d) -> (l, d + 1)) fs)
        ctx.g.Graph.heap;
      expose_store_dest fd
    | _ -> ());
    []
  | Tast.Tderef a -> List.map (fun (l, d) -> (l, d + 1)) (flow_expr ctx a)
  | Tast.Tindex (a, i) -> begin
    ignore (flow_expr ctx i);
    match a.Tast.ty with
    | Types.String ->
      ignore (flow_expr ctx a);
      []
    | _ -> List.map (fun (l, d) -> (l, d + 1)) (flow_expr ctx a)
  end
  | Tast.Tmap_get (m, k) | Tast.Tmap_get_ok (m, k) ->
    ignore (flow_expr ctx k);
    List.map (fun (l, d) -> (l, d + 1)) (flow_expr ctx m)
  | Tast.Trecover -> []
  | Tast.Tfield (a, idx, fname) -> begin
    match (if ctx.field_mode then field_base_of_expr a else None) with
    | Some (v, _, ptr_base) when pointer_bearing ctx e.Tast.ty ->
      (* field-sensitive load: the value comes out of the field's slot *)
      [ (field_loc ctx v ~ptr_base idx fname, 0) ]
    | _ ->
      let extra =
        match a.Tast.ty with Types.Ptr _ -> 1 | _ -> 0
      in
      List.map (fun (l, d) -> (l, d + extra)) (flow_expr ctx a)
  end
  | Tast.Taddr lv -> addr_of_lvalue ctx lv
  | Tast.Tcall (name, args) -> begin
    let results = instantiate_call ctx name args in
    match Array.to_list results with
    | [] -> []
    | [ r ] -> [ (r, 0) ]
    | rs ->
      (* Multi-value call in expression position only occurs under
         Smulti_decl/Smulti_assign, which unpack the array directly. *)
      List.map (fun r -> (r, 0)) rs
  end
  | Tast.Tmake_slice (site, _, len, cap) ->
    ignore (flow_expr ctx len);
    Option.iter (fun c -> ignore (flow_expr ctx c)) cap;
    [ (site_loc ctx site, -1) ]
  | Tast.Tmake_map (site, _, _) -> [ (site_loc ctx site, -1) ]
  | Tast.Tnew (site, _) -> [ (site_loc ctx site, -1) ]
  | Tast.Tslice_lit (site, elem, es) ->
    let sl = site_loc ctx site in
    List.iter
      (fun e ->
        let fe = flow_expr ctx e in
        if pointer_bearing ctx elem then connect ctx fe sl)
      es;
    [ (sl, -1) ]
  | Tast.Tstruct_lit (_, es) ->
    (* A struct value holds its field values (field-insensitive). *)
    List.concat_map (fun e -> flow_expr ctx e) es
  | Tast.Taddr_struct_lit (site, _, es) ->
    let sl = site_loc ctx site in
    List.iter
      (fun (e : Tast.expr) ->
        let fe = flow_expr ctx e in
        if pointer_bearing ctx e.Tast.ty then connect ctx fe sl)
      es;
    [ (sl, -1) ]
  | Tast.Tappend (site, s, vs) ->
    let fs = flow_expr ctx s in
    let content = append_content_loc ctx site in
    let elem_ty =
      match s.Tast.ty with Types.Slice t -> t | _ -> Types.Int
    in
    List.iter
      (fun v ->
        let fv = flow_expr ctx v in
        if pointer_bearing ctx elem_ty then begin
          (* The element may be stored into the existing backing array
             (untracked indirect store) or into the fresh growth array.
             Field-sensitive mode records the store one dereference in
             (the element lands in the array's {e cells}) and only
             against the heap: the heap edge alone already exposes the
             element's referents (Defs 4.11/4.12 walk through
             [heapLoc]), while an extra 0-deref edge into the content
             tag would merge the element's {e value} into the spine
             holder's — marking every pointer-element spine outlived and
             incomplete through the walk's max-0 clamp.  The
             field-insensitive analysis keeps the paper's coarser
             value-merge. *)
          if ctx.field_mode then
            connect ctx
              (List.map (fun (l, d) -> (l, d + 1)) fv)
              ctx.g.Graph.heap
          else begin
            connect ctx fv ctx.g.Graph.heap;
            connect ctx fv content
          end;
          expose_store_dest fs
        end)
      vs;
    (content, -1) :: fs

and addr_of_lvalue ctx (lv : Tast.lvalue) : (Loc.t * int) list =
  match lv with
  | Tast.Lvar v -> [ (var_loc ctx v, -1) ]
  | Tast.Lderef e -> flow_expr ctx e  (* &*e ≡ e *)
  | Tast.Lindex (a, i) ->
    ignore (flow_expr ctx i);
    flow_expr ctx a  (* &a[i]: the array's address is a's value *)
  | Tast.Lmap (m, k) ->
    ignore (flow_expr ctx k);
    flow_expr ctx m
  | Tast.Lfield (e, idx, _) -> begin
    match (if ctx.field_mode then arg_field_slot ctx e idx else None) with
    | Some slot ->
      (* &v.f: the address of the field's own slot *)
      [ (slot, -1) ]
    | None -> begin
      match e.Tast.ty with
      | Types.Ptr _ -> flow_expr ctx e  (* &p.f: within *p, address is p *)
      | _ -> addr_of_base ctx e  (* &s.f: address of the base variable *)
    end
  end

(* Address of the storage of a struct-valued expression. *)
and addr_of_base ctx (e : Tast.expr) : (Loc.t * int) list =
  match e.Tast.desc with
  | Tast.Tvar v -> [ (var_loc ctx v, -1) ]
  | Tast.Tfield (inner, _, _) -> begin
    match inner.Tast.ty with
    | Types.Ptr _ -> flow_expr ctx inner
    | _ -> addr_of_base ctx inner
  end
  | Tast.Tindex (a, _) -> flow_expr ctx a
  | Tast.Tderef p -> flow_expr ctx p
  | _ ->
    (* address of a temporary: no named storage to track *)
    ignore (flow_expr ctx e);
    []

(* Embed the callee's extended parameter tag at a call site (§4.4).
   Fresh instance locations keep the composition of dereference counts
   exact: the SPFA recomputes TrackDerefs through them. *)
and instantiate_call ctx name (args : Tast.expr list) : Loc.t array =
  let arg_flows = List.map (flow_expr ctx) args in
  let summary =
    match Hashtbl.find_opt ctx.summaries name with
    | Some s -> s
    | None ->
      Summary.default ~name ~nparams:(List.length args) ~nresults:1
  in
  let nresults = Array.length summary.Summary.s_contents in
  let params =
    Array.of_list
      (List.mapi
         (fun i flows ->
           let p =
             Graph.fresh_loc ctx.g
               (Loc.Kcontent (Printf.sprintf "%s.param%d" name i))
               ~loop_depth:ctx.cur_loop ~decl_depth:ctx.cur_depth
           in
           connect ctx flows p;
           p)
         arg_flows)
  in
  let results =
    Array.init nresults (fun j ->
        let r =
          Graph.fresh_loc ctx.g
            (Loc.Kresult (name, j))
            ~loop_depth:ctx.cur_loop ~decl_depth:ctx.cur_depth
        in
        let ct = summary.Summary.s_contents.(j) in
        r.Loc.inc_store <- ct.Summary.ret_incomplete;
        (* The content tag: a stand-in for whatever fresh allocation the
           callee's j-th return value points at.  Depths are +∞ so that it
           never looks referenced from an outer scope (§4.4). *)
        let m =
          Graph.fresh_loc ctx.g
            (Loc.Kcontent (Printf.sprintf "%s.content%d" name j))
            ~loop_depth:Loc.infinity_depth ~decl_depth:Loc.infinity_depth
        in
        m.Loc.heap_alloc <- ct.Summary.ct_heap_alloc;
        m.Loc.inc_store <- ct.Summary.ct_incomplete;
        Graph.add_edge ctx.g ~src:m ~dst:r ~weight:(-1);
        r)
  in
  let arg_exprs = Array.of_list args in
  let arg_flow_arr = Array.of_list arg_flows in
  let field_slot i fidx =
    if i < Array.length arg_exprs then
      arg_field_slot ctx arg_exprs.(i) fidx
    else None
  in
  List.iter
    (fun { Summary.pf_param; pf_target; pf_derefs } ->
      if pf_param < Array.length params then
        let src = params.(pf_param) in
        let dst =
          match pf_target with
          | `Return j -> results.(j)
          | `Heap -> ctx.g.Graph.heap
          | `Defer -> ctx.g.Graph.defer
          | `Param_field (i, f) -> begin
            match field_slot i f with
            | Some slot -> slot
            | None ->
              (* no addressable slot on the caller side: the store lands
                 in untracked memory, like [*p = q] *)
              (if i < Array.length arg_flow_arr then
                 expose_store_dest arg_flow_arr.(i));
              ctx.g.Graph.heap
          end
        in
        Graph.add_edge ctx.g ~src ~dst ~weight:pf_derefs)
    summary.Summary.s_flows;
  (* Field-projected facts: replay the callee's per-field conclusions on
     the matching slot of a simple variable argument; degrade to the
     field-insensitive indirect-store treatment otherwise. *)
  List.iter
    (fun (ff : Summary.field_fact) ->
      match field_slot ff.Summary.ff_param ff.Summary.ff_field with
      | Some slot ->
        if ff.Summary.ff_slot_incomplete then begin
          (* the callee leaked the slot's address: the slot may be
             rewritten, and stores through the leaked address are
             untracked *)
          slot.Loc.inc_store <- true;
          slot.Loc.exposes <- true
        end;
        if ff.Summary.ff_content_incomplete then
          (* the callee wrote through the slot's value: whatever object
             the slot points at has incomplete cells *)
          slot.Loc.exposes <- true;
        if ff.Summary.ff_heap then begin
          (* stand-in for the fresh callee allocation the slot may now
             point at; +∞ depths as for return-content tags (§4.4) *)
          let m =
            Graph.fresh_loc ctx.g
              (Loc.Kcontent
                 (Printf.sprintf "%s.param%d.field%d" name
                    ff.Summary.ff_param ff.Summary.ff_field))
              ~loop_depth:Loc.infinity_depth
              ~decl_depth:Loc.infinity_depth
          in
          m.Loc.heap_alloc <- true;
          m.Loc.inc_store <- ff.Summary.ff_content_incomplete;
          Graph.add_edge ctx.g ~src:m ~dst:slot ~weight:(-1)
        end
      | None ->
        if
          (ff.Summary.ff_heap || ff.Summary.ff_slot_incomplete
         || ff.Summary.ff_content_incomplete)
          && ff.Summary.ff_param < Array.length arg_flow_arr
        then expose_store_dest arg_flow_arr.(ff.Summary.ff_param))
    summary.Summary.s_fields;
  ctx.call_instances <- (name, results) :: ctx.call_instances;
  results

(* Field-sensitive routing of a struct literal bound directly to an
   eligible base variable: each field initializer additionally flows into
   the variable's field slot.  Single traversal — nested calls and
   appends contribute their edges exactly once — and every baseline
   destination (the variable, or the site for [&S{...}]) keeps its
   edges, so no field-insensitive blocking is lost.  Returns [false]
   when the construct is not eligible and the caller should use the
   baseline path. *)
let flow_struct_lit ctx (v : Tast.var) (e : Tast.expr) : bool =
  if (not ctx.field_mode) || v.Tast.v_kind = Tast.Vglobal then false
  else
    let route sname ~ptr_base ~extra_dsts es =
      let fields = Types.struct_fields ctx.tenv sname in
      List.iteri
        (fun i (fe : Tast.expr) ->
          let flows = flow_expr ctx fe in
          if pointer_bearing ctx fe.Tast.ty then begin
            (match List.nth_opt fields i with
            | Some (fname, fty) when pointer_bearing ctx fty ->
              connect ctx flows (field_loc ctx v ~ptr_base i fname)
            | _ -> ());
            List.iter (fun dst -> connect ctx flows dst) extra_dsts
          end)
        es;
      true
    in
    match (e.Tast.desc, e.Tast.ty) with
    | Tast.Tstruct_lit (_, es), Types.Struct sname ->
      route sname ~ptr_base:false ~extra_dsts:[ var_loc ctx v ] es
    | Tast.Taddr_struct_lit (site, _, es), Types.Ptr (Types.Struct sname) ->
      let sl = site_loc ctx site in
      connect ctx [ (sl, -1) ] (var_loc ctx v);
      route sname ~ptr_base:true ~extra_dsts:[ sl ] es
    | _ -> false

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

(* A store through an lvalue.  Direct stores into tracked storage add
   ordinary edges; stores through pointers/slices/maps are the untracked
   indirect stores of Table 2. *)
let rec store_lvalue ctx (lv : Tast.lvalue) (rhs : Tast.expr) =
  match lv with
  (* The guard routes eligible struct literals field-wise (and returns
     false without traversing anything otherwise). *)
  | Tast.Lvar v when flow_struct_lit ctx v rhs -> ()
  | lv ->
  let frhs = flow_expr ctx rhs in
  let relevant = pointer_bearing ctx rhs.Tast.ty in
  match lv with
  | Tast.Lvar v ->
    connect ctx frhs (var_loc ctx v);
    (* Values stored into a global are reachable from anywhere: they also
       flow to the heap so that function summaries record the leak. *)
    if v.Tast.v_kind = Tast.Vglobal && relevant then
      connect ctx frhs ctx.g.Graph.heap
  | Tast.Lderef p ->
    let fp = flow_expr ctx p in
    if relevant then begin
      connect ctx frhs ctx.g.Graph.heap;
      expose_store_dest fp
    end
  | Tast.Lindex (a, i) ->
    ignore (flow_expr ctx i);
    let fa = flow_expr ctx a in
    if relevant then begin
      connect ctx frhs ctx.g.Graph.heap;
      expose_store_dest fa
    end
  | Tast.Lmap (m, k) ->
    ignore (flow_expr ctx k);
    let fm = flow_expr ctx m in
    if relevant then begin
      connect ctx frhs ctx.g.Graph.heap;
      expose_store_dest fm
    end
  | Tast.Lfield (base, idx, _) -> begin
    match (if ctx.field_mode then arg_field_slot ctx base idx else None) with
    | Some slot ->
      (* field-sensitive store: tracked, targets the field's own slot *)
      connect ctx frhs slot
    | None -> begin
      match base.Tast.ty with
      | Types.Ptr _ ->
        let fb = flow_expr ctx base in
        if relevant then begin
          connect ctx frhs ctx.g.Graph.heap;
          expose_store_dest fb
        end
      | _ -> store_into_base ctx base frhs relevant
    end
  end

(* Store into the storage of a struct-valued expression. *)
and store_into_base ctx (base : Tast.expr) frhs relevant =
  match base.Tast.desc with
  | Tast.Tvar v -> if relevant then connect ctx frhs (var_loc ctx v)
  | Tast.Tfield (inner, _, _) -> begin
    match inner.Tast.ty with
    | Types.Ptr _ ->
      let fi = flow_expr ctx inner in
      if relevant then begin
        connect ctx frhs ctx.g.Graph.heap;
        expose_store_dest fi
      end
    | _ -> store_into_base ctx inner frhs relevant
  end
  | Tast.Tindex (a, _) | Tast.Tderef a ->
    let fa = flow_expr ctx a in
    if relevant then begin
      connect ctx frhs ctx.g.Graph.heap;
      expose_store_dest fa
    end
  | _ -> ignore (flow_expr ctx base)

let rec build_stmt ctx (s : Tast.stmt) =
  match s with
  | Tast.Sdecl (v, init) ->
    let dst = var_loc ctx v in
    Option.iter
      (fun e ->
        if not (flow_struct_lit ctx v e) then
          connect ctx (flow_expr ctx e) dst)
      init
  | Tast.Smulti_decl (vars, e) -> begin
    match e.Tast.desc with
    | Tast.Tcall (name, args) ->
      let results = instantiate_call ctx name args in
      List.iteri
        (fun j v ->
          if j < Array.length results then
            Graph.add_edge ctx.g ~src:results.(j) ~dst:(var_loc ctx v)
              ~weight:0)
        vars
    | _ -> ignore (flow_expr ctx e)
  end
  | Tast.Sassign (lv, e) -> store_lvalue ctx lv e
  | Tast.Smulti_assign (lvs, e) -> begin
    match e.Tast.desc with
    | Tast.Tcall (name, args) ->
      let results = instantiate_call ctx name args in
      List.iteri
        (fun j lv ->
          if j < Array.length results then begin
            (* route result j through a temp expression-less store *)
            let r = results.(j) in
            match lv with
            | Tast.Lvar v ->
              Graph.add_edge ctx.g ~src:r ~dst:(var_loc ctx v) ~weight:0
            | Tast.Lderef p ->
              let fp = flow_expr ctx p in
              Graph.add_edge ctx.g ~src:r ~dst:ctx.g.Graph.heap ~weight:0;
              expose_store_dest fp
            | Tast.Lindex (a, i) ->
              ignore (flow_expr ctx i);
              let fa = flow_expr ctx a in
              Graph.add_edge ctx.g ~src:r ~dst:ctx.g.Graph.heap ~weight:0;
              expose_store_dest fa
            | Tast.Lmap (m, k) ->
              ignore (flow_expr ctx k);
              let fm = flow_expr ctx m in
              Graph.add_edge ctx.g ~src:r ~dst:ctx.g.Graph.heap ~weight:0;
              expose_store_dest fm
            | Tast.Lfield (base, idx, _) -> begin
              match
                if ctx.field_mode then arg_field_slot ctx base idx
                else None
              with
              | Some slot -> Graph.add_edge ctx.g ~src:r ~dst:slot ~weight:0
              | None -> store_into_base ctx base [ (r, 0) ] true
            end
          end)
        lvs
    | _ -> ignore (flow_expr ctx e)
  end
  | Tast.Sexpr e -> ignore (flow_expr ctx e)
  | Tast.Sif (c, b1, b2) ->
    ignore (flow_expr ctx c);
    build_block ctx b1;
    Option.iter (build_block ctx) b2
  | Tast.Sfor (init, cond, post, body) ->
    let saved = ctx.cur_loop in
    ctx.cur_loop <- saved + 1;
    Option.iter (build_stmt ctx) init;
    Option.iter (fun c -> ignore (flow_expr ctx c)) cond;
    Option.iter (build_stmt ctx) post;
    build_block ctx body;
    ctx.cur_loop <- saved
  | Tast.Sforrange_map (v, m, body) ->
    let saved = ctx.cur_loop in
    ctx.cur_loop <- saved + 1;
    (* the key variable receives values from inside the map *)
    connect ctx
      (List.map (fun (l, d) -> (l, d + 1)) (flow_expr ctx m))
      (var_loc ctx v);
    build_block ctx body;
    ctx.cur_loop <- saved
  | Tast.Sreturn es ->
    List.iteri
      (fun i e ->
        if i < Array.length ctx.g.Graph.returns then
          connect ctx (flow_expr ctx e) ctx.g.Graph.returns.(i))
      es
  | Tast.Sblock b -> build_block ctx b
  | Tast.Sgo (name, args) ->
    (* The goroutine may outlive the whole call: arguments escape. *)
    let results = instantiate_call ctx name args in
    ignore results;
    List.iter
      (fun (a : Tast.expr) ->
        if pointer_bearing ctx a.Tast.ty then
          connect ctx (flow_expr ctx a) ctx.g.Graph.heap)
      args
  | Tast.Sdefer (name, args) ->
    (* The deferred call runs at function exit: arguments live to the end
       of the function body (depth 0 sink), banning scope-local frees of
       their referents (§5, "Safety upon Defer() and Panic()"). *)
    let results = instantiate_call ctx name args in
    ignore results;
    List.iter
      (fun (a : Tast.expr) ->
        if pointer_bearing ctx a.Tast.ty then
          connect ctx (flow_expr ctx a) ctx.g.Graph.defer)
      args
  | Tast.Spanic e ->
    if pointer_bearing ctx e.Tast.ty then
      connect ctx (flow_expr ctx e) ctx.g.Graph.defer
    else ignore (flow_expr ctx e)
  | Tast.Sdelete (m, k) ->
    ignore (flow_expr ctx m);
    ignore (flow_expr ctx k)
  | Tast.Sprint es ->
    List.iter (fun e -> ignore (flow_expr ctx e)) es
  | Tast.Sbreak | Tast.Scontinue -> ()
  | Tast.Stcfree _ -> ()

and build_block ctx (b : Tast.block) =
  let saved = ctx.cur_depth in
  ctx.cur_depth <- b.Tast.b_depth;
  List.iter (build_stmt ctx) b.Tast.b_stmts;
  ctx.cur_depth <- saved

(** Build the escape graph of one function.  [summaries] provides the
    already-computed extended parameter tags of callees (inner-to-outer
    processing order, §4.4). *)
let build_function ?(field_mode = false) ~tenv ~summaries (f : Tast.func) :
    ctx =
  let g = Graph.create () in
  g.Graph.returns <-
    Array.init (List.length f.Tast.f_results) (fun i ->
        let r =
          Graph.fresh_loc g (Loc.Kreturn i) ~loop_depth:(-1) ~decl_depth:(-1)
        in
        (* Def 4.10: return values are heap-allocated storage.  We do not
           seed Exposes here: caller-side exposure is analyzed in the
           caller after tag instantiation (see Summary). *)
        r.Loc.heap_alloc <- true;
        r)
      ;
  let ctx =
    {
      g;
      tenv;
      var_locs = Hashtbl.create 64;
      site_locs = Hashtbl.create 64;
      append_locs = Hashtbl.create 16;
      summaries;
      field_mode;
      field_locs = Hashtbl.create 16;
      cur_depth = 1;
      cur_loop = 0;
      call_instances = [];
    }
  in
  (* Materialize parameter locations up front so the summary extraction
     can find them even if a parameter is never used. *)
  List.iter (fun p -> ignore (var_loc ctx p)) f.Tast.f_params;
  build_block ctx f.Tast.f_body;
  ctx
