(** Goroutine fan-out workload for the multi-domain runtime.

    Unlike the six Table 6 proxies (whose main functions are
    sequential), this program spawns [size] goroutines with deliberately
    unbalanced iteration counts, so on [--domains N > 1] the later, long
    goroutines are stolen by idle domains.  Each iteration churns
    tcfree-eligible heap allocations — factory-returned buffers and
    scope maps, the Table 8 pattern that escape analysis sends to the
    heap but instrumentation frees at last use — and periodically
    escapes a larger slice into a global, keeping the GC paced.  A
    stolen goroutine frees buffers it allocated on the victim domain's
    mcache, which is exactly the paper's give-up-on-ownership-change
    tcfree race. *)

let default_size = 8

let source ~size =
  Printf.sprintf
    {|
var sink []int

// Factory: the returned buffer is a fresh heap allocation the caller
// provably drops each iteration, so the compiler frees it (§4).
func scratch(n int, fill int) []int {
  buf := make([]int, n)
  buf[0] = fill
  return buf
}

func newTab() map[int]int {
  return make(map[int]int)
}

func burn(id int, iters int) {
  acc := 0
  for i := 0; i < iters; i++ {
    buf := scratch(256, id+i)
    tab := newTab()
    for j := 0; j < 6; j++ {
      tab[j] = acc + j
    }
    acc = acc + tab[2] + buf[0]
    if i%%11 == 0 {
      esc := make([]int, 1024)
      esc[0] = acc
      sink = esc
    }
  }
  println("burn", id, acc)
}

func main() {
  n := %d
  for g := 0; g < n; g++ {
    go burn(g, 120+g*60)
  }
  burn(999, 200)
  println("fanout done")
}
|}
    (max 1 size)
