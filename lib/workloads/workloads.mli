(** Registry of the six subject-program proxies (paper Table 6). *)

type t = {
  w_name : string;  (** the paper's project name *)
  w_description : string;
  w_source : size:int -> string;
  w_default_size : int;
}

(** All six, in the paper's Table 6 order. *)
val all : t list

(** Goroutine fan-out churn for the multi-domain runtime; not part of
    {!all} (the Table 6 proxies have sequential mains). *)
val fanout : t

(** Looks up {!all} plus {!fanout}. *)
val find : string -> t option

(** MiniGo source at [size] (default: the workload's default size). *)
val source_of : ?size:int -> t -> string
