(** Registry of the six subject-program proxies (paper Table 6) and the
    fig. 10 microbenchmark.

    Each entry yields MiniGo source parameterized by a size knob; the
    default sizes are tuned so one run takes tens of milliseconds, and the
    harness can scale them with [--scale]. *)

type t = {
  w_name : string;  (** the paper's project name *)
  w_description : string;
  w_source : size:int -> string;
  w_default_size : int;
}

let all : t list =
  [
    {
      w_name = "Go";
      w_description = "the Go compiler: slice-heavy basic-block buffers";
      w_source = Wl_compiler.source;
      w_default_size = Wl_compiler.default_size;
    };
    {
      w_name = "hugo";
      w_description = "webpage generator converting markdown into HTML";
      w_source = Wl_hugo.source;
      w_default_size = Wl_hugo.default_size;
    };
    {
      w_name = "badger";
      w_description = "key-value database with LSM memtables";
      w_source = Wl_badger.source;
      w_default_size = Wl_badger.default_size;
    };
    {
      w_name = "json";
      w_description = "JSON parsing and manipulation";
      w_source = Wl_json.source;
      w_default_size = Wl_json.default_size;
    };
    {
      w_name = "scheck";
      w_description = "static checking tool (per-function fact maps)";
      w_source = Wl_scheck.source;
      w_default_size = Wl_scheck.default_size;
    };
    {
      w_name = "slayout";
      w_description = "struct layout analysis tool";
      w_source = Wl_slayout.source;
      w_default_size = Wl_slayout.default_size;
    };
  ]

(** Goroutine fan-out churn for the multi-domain runtime ([--domains]).
    Deliberately NOT part of {!all}: the six Table 6 proxies have
    sequential mains, and the committed single-domain bench baselines
    must not change. *)
let fanout : t =
  {
    w_name = "fanout";
    w_description =
      "goroutine fan-out churn exercising work stealing and cross-domain \
       frees";
    w_source = Wl_fanout.source;
    w_default_size = Wl_fanout.default_size;
  }

let find name =
  List.find_opt (fun w -> String.equal w.w_name name) (all @ [ fanout ])

let source_of ?size (w : t) =
  w.w_source ~size:(Option.value size ~default:w.w_default_size)
