(** Recursive-descent parser for MiniGo.

    Precedence (loosest to tightest), following Go:
    [||]  <  [&&]  <  comparisons  <  [+ -]  <  [* / %]  <  unary. *)

exception Error of string * Token.pos

let error pos fmt = Format.kasprintf (fun s -> raise (Error (s, pos))) fmt

type state = {
  lexer : Lexer.state;
  mutable tok : Token.t;
  mutable pos : Token.pos;
  mutable peeked : (Token.t * Token.pos) option;
  mutable allow_composite : bool;
      (** Go's composite-literal ambiguity: [T{...}] is not allowed at the
          top level of an if/for header expression (the [{] would read as
          the statement block); parentheses or brackets re-enable it. *)
  mutable imports : string list;
      (** local names of imported packages; [pkg.Sel] is parsed as a
          qualified reference only when [pkg] is in this list *)
}

let make src =
  let lexer = Lexer.make src in
  let tok, pos = Lexer.next lexer in
  { lexer; tok; pos; peeked = None; allow_composite = true; imports = [] }

(* Parse a control-flow header fragment with composite literals off. *)
let in_header st f =
  let saved = st.allow_composite in
  st.allow_composite <- false;
  match f () with
  | result ->
    st.allow_composite <- saved;
    result
  | exception e ->
    st.allow_composite <- saved;
    raise e

(* Re-enable composite literals inside bracketing tokens. *)
let in_brackets st f =
  let saved = st.allow_composite in
  st.allow_composite <- true;
  match f () with
  | result ->
    st.allow_composite <- saved;
    result
  | exception e ->
    st.allow_composite <- saved;
    raise e

let advance st =
  match st.peeked with
  | Some (tok, pos) ->
    st.peeked <- None;
    st.tok <- tok;
    st.pos <- pos
  | None ->
    let tok, pos = Lexer.next st.lexer in
    st.tok <- tok;
    st.pos <- pos

(* One-token lookahead beyond the current token. *)
let peek_ahead st =
  match st.peeked with
  | Some (tok, _) -> tok
  | None ->
    let tok, pos = Lexer.next st.lexer in
    st.peeked <- Some (tok, pos);
    tok

let expect st tok =
  if st.tok = tok then advance st
  else error st.pos "expected %s but found %s" (Token.to_string tok)
      (Token.to_string st.tok)

let expect_ident st =
  match st.tok with
  | Token.IDENT s -> advance st; s
  | t -> error st.pos "expected identifier but found %s" (Token.to_string t)

let accept st tok = if st.tok = tok then (advance st; true) else false

let skip_semis st =
  while st.tok = Token.SEMI do
    advance st
  done

(* -------------------------------------------------------------------- *)
(* Types                                                                 *)
(* -------------------------------------------------------------------- *)

let rec parse_type st : Ast.ty =
  match st.tok with
  | Token.IDENT "int" -> advance st; Ast.Tyint
  | Token.IDENT "bool" -> advance st; Ast.Tybool
  | Token.IDENT "string" -> advance st; Ast.Tystring
  | Token.IDENT "float" -> advance st; Ast.Tyfloat
  | Token.IDENT name ->
    advance st;
    if List.mem name st.imports && st.tok = Token.DOT then begin
      (* qualified type from an imported package: pkg.T *)
      advance st;
      let sel = expect_ident st in
      Ast.Tyname (name ^ "." ^ sel)
    end
    else Ast.Tyname name
  | Token.STAR ->
    advance st;
    Ast.Typtr (parse_type st)
  | Token.LBRACKET ->
    advance st;
    expect st Token.RBRACKET;
    Ast.Tyslice (parse_type st)
  | Token.KW_MAP ->
    advance st;
    expect st Token.LBRACKET;
    let k = parse_type st in
    expect st Token.RBRACKET;
    let v = parse_type st in
    Ast.Tymap (k, v)
  | t -> error st.pos "expected a type but found %s" (Token.to_string t)

(* -------------------------------------------------------------------- *)
(* Expressions                                                           *)
(* -------------------------------------------------------------------- *)

let binop_of_token = function
  | Token.PLUS -> Some Ast.Badd
  | Token.MINUS -> Some Ast.Bsub
  | Token.STAR -> Some Ast.Bmul
  | Token.SLASH -> Some Ast.Bdiv
  | Token.PERCENT -> Some Ast.Bmod
  | Token.EQ -> Some Ast.Beq
  | Token.NE -> Some Ast.Bne
  | Token.LT -> Some Ast.Blt
  | Token.LE -> Some Ast.Ble
  | Token.GT -> Some Ast.Bgt
  | Token.GE -> Some Ast.Bge
  | Token.AMPAMP -> Some Ast.Band
  | Token.BARBAR -> Some Ast.Bor
  | Token.AMP -> Some Ast.Band_bits
  | Token.BAR -> Some Ast.Bor_bits
  | Token.CARET -> Some Ast.Bxor
  | Token.SHL -> Some Ast.Bshl
  | Token.SHR -> Some Ast.Bshr
  | _ -> None

let precedence = function
  | Ast.Bor -> 1
  | Ast.Band -> 2
  | Ast.Beq | Ast.Bne | Ast.Blt | Ast.Ble | Ast.Bgt | Ast.Bge -> 3
  | Ast.Badd | Ast.Bsub | Ast.Bor_bits | Ast.Bxor -> 4
  | Ast.Bmul | Ast.Bdiv | Ast.Bmod | Ast.Band_bits | Ast.Bshl | Ast.Bshr ->
    5

let mk pos desc : Ast.expr = { Ast.desc; pos }

let rec parse_expr st = parse_binary st 1

and parse_binary st min_prec =
  let lhs = parse_unary st in
  let rec loop lhs =
    match binop_of_token st.tok with
    | Some op when precedence op >= min_prec ->
      let pos = st.pos in
      advance st;
      let rhs = parse_binary st (precedence op + 1) in
      loop (mk pos (Ast.Ebinop (op, lhs, rhs)))
    | _ -> lhs
  in
  loop lhs

and parse_unary st =
  let pos = st.pos in
  match st.tok with
  | Token.MINUS ->
    advance st;
    mk pos (Ast.Eunop (Ast.Uneg, parse_unary st))
  | Token.BANG ->
    advance st;
    mk pos (Ast.Eunop (Ast.Unot, parse_unary st))
  | Token.STAR ->
    advance st;
    mk pos (Ast.Ederef (parse_unary st))
  | Token.AMP ->
    advance st;
    mk pos (Ast.Eaddr (parse_unary st))
  | _ -> parse_postfix st

and parse_postfix st =
  let e = parse_primary st in
  let rec loop e =
    match st.tok with
    | Token.LBRACKET ->
      let pos = st.pos in
      advance st;
      let e' =
        in_brackets st (fun () ->
            if accept st Token.COLON then begin
              (* e[:hi] or e[:] *)
              let hi =
                if st.tok = Token.RBRACKET then None
                else Some (parse_expr st)
              in
              expect st Token.RBRACKET;
              mk pos (Ast.Eslice (e, None, hi))
            end
            else begin
              let first = parse_expr st in
              if accept st Token.COLON then begin
                let hi =
                  if st.tok = Token.RBRACKET then None
                  else Some (parse_expr st)
                in
                expect st Token.RBRACKET;
                mk pos (Ast.Eslice (e, Some first, hi))
              end
              else begin
                expect st Token.RBRACKET;
                mk pos (Ast.Eindex (e, first))
              end
            end)
      in
      loop e'
    | Token.DOT ->
      let pos = st.pos in
      advance st;
      let f = expect_ident st in
      loop (mk pos (Ast.Efield (e, f)))
    | _ -> e
  in
  loop e

and parse_call_args st =
  expect st Token.LPAREN;
  if accept st Token.RPAREN then []
  else
    in_brackets st (fun () ->
        let rec loop acc =
          let e = parse_expr st in
          if accept st Token.COMMA then loop (e :: acc)
          else begin
            expect st Token.RPAREN;
            List.rev (e :: acc)
          end
        in
        loop [])

and parse_primary st =
  let pos = st.pos in
  match st.tok with
  | Token.INT_LIT n -> advance st; mk pos (Ast.Eint n)
  | Token.FLOAT_LIT f -> advance st; mk pos (Ast.Efloat f)
  | Token.STRING_LIT s -> advance st; mk pos (Ast.Estring s)
  | Token.KW_TRUE -> advance st; mk pos (Ast.Ebool true)
  | Token.KW_FALSE -> advance st; mk pos (Ast.Ebool false)
  | Token.KW_NIL -> advance st; mk pos Ast.Enil
  | Token.LPAREN ->
    advance st;
    let e = in_brackets st (fun () -> parse_expr st) in
    expect st Token.RPAREN;
    e
  | Token.LBRACKET ->
    (* slice literal: []T{e1, e2, ...} *)
    let ty = parse_type st in
    parse_composite st pos ty
  | Token.KW_MAP ->
    let ty = parse_type st in
    parse_composite st pos ty
  | Token.IDENT "make" when peek_ahead st = Token.LPAREN ->
    advance st;
    expect st Token.LPAREN;
    let ty = parse_type st in
    let args =
      if accept st Token.COMMA then
        let rec loop acc =
          let e = parse_expr st in
          if accept st Token.COMMA then loop (e :: acc) else List.rev (e :: acc)
        in
        loop []
      else []
    in
    expect st Token.RPAREN;
    mk pos (Ast.Emake (ty, args))
  | Token.IDENT "new" when peek_ahead st = Token.LPAREN ->
    advance st;
    expect st Token.LPAREN;
    let ty = parse_type st in
    expect st Token.RPAREN;
    mk pos (Ast.Enew ty)
  | Token.IDENT "append" when peek_ahead st = Token.LPAREN ->
    advance st;
    let args = parse_call_args st in
    (match args with
    | s :: (_ :: _ as rest) -> mk pos (Ast.Eappend (s, rest))
    | _ -> error pos "append needs a slice and at least one element")
  | Token.IDENT "len" when peek_ahead st = Token.LPAREN ->
    advance st;
    (match parse_call_args st with
    | [ e ] -> mk pos (Ast.Elen e)
    | _ -> error pos "len takes exactly one argument")
  | Token.IDENT "cap" when peek_ahead st = Token.LPAREN ->
    advance st;
    (match parse_call_args st with
    | [ e ] -> mk pos (Ast.Ecap e)
    | _ -> error pos "cap takes exactly one argument")
  | Token.IDENT pkg when List.mem pkg st.imports && peek_ahead st = Token.DOT
    -> begin
    (* qualified reference into an imported package: pkg.Fn(...),
       pkg.Var, or pkg.T{...} — resolved here because MiniGo has no
       method calls, so IDENT.IDENT( is unambiguous once [pkg] is known
       to be an import *)
    advance st;
    advance st;
    let sel = expect_ident st in
    let qname = pkg ^ "." ^ sel in
    match st.tok with
    | Token.LPAREN ->
      let args = parse_call_args st in
      mk pos (Ast.Ecall (qname, args))
    | Token.LBRACE when st.allow_composite ->
      parse_composite st pos (Ast.Tyname qname)
    | _ -> mk pos (Ast.Eident qname)
  end
  | Token.IDENT name -> begin
    advance st;
    match st.tok with
    | Token.LPAREN ->
      let args = parse_call_args st in
      mk pos (Ast.Ecall (name, args))
    | Token.LBRACE when st.allow_composite ->
      parse_composite st pos (Ast.Tyname name)
    | _ -> mk pos (Ast.Eident name)
  end
  | t -> error pos "expected an expression but found %s" (Token.to_string t)

(* T{...}: struct literal with optional field names, or slice literal. *)
and parse_composite st pos ty =
  expect st Token.LBRACE;
  skip_semis st;
  let fields = ref [] in
  let rec loop () =
    if st.tok = Token.RBRACE then ()
    else begin
      let entry =
        match st.tok with
        | Token.IDENT f when peek_ahead st = Token.COLON ->
          advance st;
          advance st;
          (Some f, parse_expr st)
        | _ -> (None, parse_expr st)
      in
      fields := entry :: !fields;
      skip_semis st;
      if accept st Token.COMMA then begin
        skip_semis st;
        loop ()
      end
    end
  in
  loop ();
  expect st Token.RBRACE;
  mk pos (Ast.Ecomposite (ty, List.rev !fields))

(* -------------------------------------------------------------------- *)
(* Statements                                                            *)
(* -------------------------------------------------------------------- *)

let mks pos sdesc : Ast.stmt = { Ast.sdesc; spos = pos }

let name_of_lhs (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Eident s -> s
  | _ -> error e.Ast.pos "left-hand side of ':=' must be an identifier"

(* A "simple statement": expression, assignment, short declaration,
   increment.  Used both standalone and in for/if headers. *)
let rec parse_simple_stmt st : Ast.stmt =
  let pos = st.pos in
  let lhs = parse_expr_list st in
  match st.tok with
  | Token.DEFINE ->
    advance st;
    let names = List.map name_of_lhs lhs in
    let rhs = parse_expr_list st in
    mks pos (Ast.Sdecl (names, None, rhs))
  | Token.ASSIGN ->
    advance st;
    let rhs = parse_expr_list st in
    mks pos (Ast.Sassign (lhs, rhs))
  | Token.PLUS_ASSIGN | Token.MINUS_ASSIGN | Token.STAR_ASSIGN ->
    let op =
      match st.tok with
      | Token.PLUS_ASSIGN -> Ast.Badd
      | Token.MINUS_ASSIGN -> Ast.Bsub
      | _ -> Ast.Bmul
    in
    advance st;
    let rhs = parse_expr st in
    (match lhs with
    | [ l ] -> mks pos (Ast.Sop_assign (l, op, rhs))
    | _ -> error pos "compound assignment needs a single left-hand side")
  | Token.PLUSPLUS ->
    advance st;
    (match lhs with
    | [ l ] -> mks pos (Ast.Sincr l)
    | _ -> error pos "'++' needs a single operand")
  | Token.MINUSMINUS ->
    advance st;
    (match lhs with
    | [ l ] -> mks pos (Ast.Sdecr l)
    | _ -> error pos "'--' needs a single operand")
  | _ ->
    (match lhs with
    | [ e ] -> mks pos (Ast.Sexpr e)
    | _ -> error pos "expected assignment after expression list")

and parse_expr_list st =
  let rec loop acc =
    let e = parse_expr st in
    if accept st Token.COMMA then loop (e :: acc) else List.rev (e :: acc)
  in
  loop []

and parse_block st : Ast.block =
  expect st Token.LBRACE;
  skip_semis st;
  let rec loop acc =
    if st.tok = Token.RBRACE then begin
      advance st;
      List.rev acc
    end
    else begin
      let s = parse_stmt st in
      skip_semis st;
      loop (s :: acc)
    end
  in
  loop []

and parse_stmt st : Ast.stmt =
  let pos = st.pos in
  match st.tok with
  | Token.KW_VAR ->
    advance st;
    let name = expect_ident st in
    let names = ref [ name ] in
    while accept st Token.COMMA do
      names := expect_ident st :: !names
    done;
    let ty = if st.tok <> Token.ASSIGN then Some (parse_type st) else None in
    let init = if accept st Token.ASSIGN then parse_expr_list st else [] in
    mks pos (Ast.Sdecl (List.rev !names, ty, init))
  | Token.KW_IF -> parse_if st
  | Token.KW_FOR -> parse_for st
  | Token.KW_RETURN ->
    advance st;
    let exprs =
      if st.tok = Token.SEMI || st.tok = Token.RBRACE then []
      else parse_expr_list st
    in
    mks pos (Ast.Sreturn exprs)
  | Token.LBRACE -> mks pos (Ast.Sblock (parse_block st))
  | Token.KW_GO ->
    advance st;
    mks pos (Ast.Sgo (parse_expr st))
  | Token.KW_DEFER ->
    advance st;
    mks pos (Ast.Sdefer (parse_expr st))
  | Token.KW_PANIC ->
    advance st;
    expect st Token.LPAREN;
    let e = parse_expr st in
    expect st Token.RPAREN;
    mks pos (Ast.Spanic e)
  | Token.KW_BREAK -> advance st; mks pos Ast.Sbreak
  | Token.KW_CONTINUE -> advance st; mks pos Ast.Scontinue
  | Token.IDENT "delete" when peek_ahead st = Token.LPAREN ->
    advance st;
    (match parse_call_args st with
    | [ m; k ] -> mks pos (Ast.Sdelete (m, k))
    | _ -> error pos "delete takes a map and a key")
  | Token.IDENT "println" when peek_ahead st = Token.LPAREN ->
    advance st;
    let args = parse_call_args st in
    mks pos (Ast.Sprint args)
  | _ -> parse_simple_stmt st

and parse_if st : Ast.stmt =
  let pos = st.pos in
  expect st Token.KW_IF;
  let cond = in_header st (fun () -> parse_expr st) in
  let body = parse_block st in
  let else_branch =
    if accept st Token.KW_ELSE then
      if st.tok = Token.KW_IF then Some (parse_if st)
      else Some (mks st.pos (Ast.Sblock (parse_block st)))
    else None
  in
  mks pos (Ast.Sif (cond, body, else_branch))

and parse_for st : Ast.stmt =
  let pos = st.pos in
  expect st Token.KW_FOR;
  if st.tok = Token.LBRACE then
    (* for {} : infinite loop *)
    mks pos (Ast.Sfor (None, None, None, parse_block st))
  else begin
    (* Distinguish:  for i := range e {...}
                     for cond {...}
                     for init; cond; post {...} *)
    match st.tok with
    | Token.IDENT name
      when peek_ahead st = Token.DEFINE -> begin
      (* could be range or a 3-clause with := init *)
      let saved_name = name in
      advance st;
      (* now at := *)
      advance st;
      if st.tok = Token.KW_RANGE then begin
        advance st;
        let e = in_header st (fun () -> parse_expr st) in
        let body = parse_block st in
        mks pos (Ast.Sforrange (saved_name, e, body))
      end
      else begin
        let rhs = in_header st (fun () -> parse_expr_list st) in
        let init = mks pos (Ast.Sdecl ([ saved_name ], None, rhs)) in
        expect st Token.SEMI;
        let cond =
          if st.tok = Token.SEMI then None
          else Some (in_header st (fun () -> parse_expr st))
        in
        expect st Token.SEMI;
        let post =
          if st.tok = Token.LBRACE then None
          else Some (in_header st (fun () -> parse_simple_stmt st))
        in
        let body = parse_block st in
        mks pos (Ast.Sfor (Some init, cond, post, body))
      end
    end
    | _ ->
      let first = in_header st (fun () -> parse_simple_stmt st) in
      if st.tok = Token.SEMI then begin
        advance st;
        let cond =
          if st.tok = Token.SEMI then None
          else Some (in_header st (fun () -> parse_expr st))
        in
        expect st Token.SEMI;
        let post =
          if st.tok = Token.LBRACE then None
          else Some (in_header st (fun () -> parse_simple_stmt st))
        in
        let body = parse_block st in
        mks pos (Ast.Sfor (Some first, cond, post, body))
      end
      else begin
        (* "for cond { ... }" — first must be a bare expression *)
        match first.Ast.sdesc with
        | Ast.Sexpr cond ->
          let body = parse_block st in
          mks pos (Ast.Sfor (None, Some cond, None, body))
        | _ -> error pos "expected ';' in for clause"
      end
  end

(* -------------------------------------------------------------------- *)
(* Top-level declarations                                                *)
(* -------------------------------------------------------------------- *)

let parse_func st : Ast.func_decl =
  let pos = st.pos in
  expect st Token.KW_FUNC;
  let name = expect_ident st in
  expect st Token.LPAREN;
  let params = ref [] in
  if st.tok <> Token.RPAREN then begin
    let rec loop () =
      let pname = expect_ident st in
      let pty = parse_type st in
      params := (pname, pty) :: !params;
      if accept st Token.COMMA then loop ()
    in
    loop ()
  end;
  expect st Token.RPAREN;
  let results =
    match st.tok with
    | Token.LBRACE -> []
    | Token.LPAREN ->
      advance st;
      let tys = ref [] in
      let rec loop () =
        (* allow "(r0 []int, r1 []int)" named results: name is optional *)
        (match (st.tok, peek_ahead st) with
        | Token.IDENT _, (Token.IDENT _ | Token.STAR | Token.LBRACKET | Token.KW_MAP) ->
          ignore (expect_ident st)
        | _ -> ());
        tys := parse_type st :: !tys;
        if accept st Token.COMMA then loop ()
      in
      loop ();
      expect st Token.RPAREN;
      List.rev !tys
    | _ -> [ parse_type st ]
  in
  let body = parse_block st in
  { Ast.fd_name = name; fd_params = List.rev !params; fd_results = results;
    fd_body = body; fd_pos = pos }

let parse_struct st : Ast.struct_decl =
  let pos = st.pos in
  expect st Token.KW_TYPE;
  let name = expect_ident st in
  expect st Token.KW_STRUCT;
  expect st Token.LBRACE;
  skip_semis st;
  let fields = ref [] in
  while st.tok <> Token.RBRACE do
    let fname = expect_ident st in
    let fnames = ref [ fname ] in
    while accept st Token.COMMA do
      fnames := expect_ident st :: !fnames
    done;
    let fty = parse_type st in
    List.iter (fun n -> fields := (n, fty) :: !fields) (List.rev !fnames);
    skip_semis st
  done;
  expect st Token.RBRACE;
  { Ast.sd_name = name; sd_fields = List.rev !fields; sd_pos = pos }

let parse_global st : Ast.global_decl =
  let pos = st.pos in
  expect st Token.KW_VAR;
  let name = expect_ident st in
  let ty = if st.tok <> Token.ASSIGN then Some (parse_type st) else None in
  let init = if accept st Token.ASSIGN then Some (parse_expr st) else None in
  { Ast.gd_name = name; gd_ty = ty; gd_init = init; gd_pos = pos }

let parse_program st : Ast.program =
  skip_semis st;
  let rec loop acc =
    match st.tok with
    | Token.EOF -> List.rev acc
    | Token.KW_FUNC ->
      let f = parse_func st in
      skip_semis st;
      loop (Ast.Dfunc f :: acc)
    | Token.KW_TYPE ->
      let s = parse_struct st in
      skip_semis st;
      loop (Ast.Dstruct s :: acc)
    | Token.KW_VAR ->
      let g = parse_global st in
      skip_semis st;
      loop (Ast.Dglobal g :: acc)
    | t ->
      error st.pos "expected a top-level declaration but found %s"
        (Token.to_string t)
  in
  loop []

(* -------------------------------------------------------------------- *)
(* Files: package clause and imports                                     *)
(* -------------------------------------------------------------------- *)

(* One import declaration: [import "path"], [import alias "path"], or a
   parenthesized group of either form. *)
let parse_import st : Ast.import_decl list =
  expect st Token.KW_IMPORT;
  let one () =
    let pos = st.pos in
    match st.tok with
    | Token.IDENT alias -> begin
      advance st;
      match st.tok with
      | Token.STRING_LIT path ->
        advance st;
        { Ast.imp_path = path; imp_alias = alias; imp_pos = pos }
      | t ->
        error st.pos "expected an import path string but found %s"
          (Token.to_string t)
    end
    | Token.STRING_LIT path ->
      advance st;
      { Ast.imp_path = path; imp_alias = Ast.import_base path;
        imp_pos = pos }
    | t ->
      error st.pos "expected an import path but found %s" (Token.to_string t)
  in
  if accept st Token.LPAREN then begin
    skip_semis st;
    let acc = ref [] in
    while st.tok <> Token.RPAREN do
      acc := one () :: !acc;
      skip_semis st
    done;
    expect st Token.RPAREN;
    List.rev !acc
  end
  else [ one () ]

(** Parse a source file: optional [package] clause, [import]
    declarations, then top-level declarations.  A file without a package
    clause is treated as package [main] with no imports (the single-file
    whole-program form). *)
let parse_file_state st : Ast.file =
  skip_semis st;
  let pkg =
    if accept st Token.KW_PACKAGE then begin
      let name = expect_ident st in
      skip_semis st;
      name
    end
    else "main"
  in
  let imports = ref [] in
  while st.tok = Token.KW_IMPORT do
    imports := !imports @ parse_import st;
    skip_semis st
  done;
  List.iter
    (fun (i : Ast.import_decl) ->
      if not (List.mem i.Ast.imp_alias st.imports) then
        st.imports <- i.Ast.imp_alias :: st.imports)
    !imports;
  let decls = parse_program st in
  { Ast.file_package = pkg; file_imports = !imports; file_decls = decls }

let parse_file src = parse_file_state (make src)

(** Parse a complete MiniGo source string (whole-program form; a leading
    package clause and imports are accepted and discarded). *)
let parse src = (parse_file src).Ast.file_decls
