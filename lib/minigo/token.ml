(** Lexical tokens of MiniGo.

    MiniGo is the Go subset that the GoFree reproduction analyzes: functions
    with multiple return values, pointers, slices, maps, structs, loops,
    [defer]/[panic], and goroutines. *)

type pos = {
  line : int;  (** 1-based line *)
  col : int;  (** 1-based column *)
}

let dummy_pos = { line = 0; col = 0 }

let pp_pos fmt p = Format.fprintf fmt "%d:%d" p.line p.col

let string_of_pos p = Format.asprintf "%a" pp_pos p

type t =
  (* literals and identifiers *)
  | IDENT of string
  | INT_LIT of int
  | FLOAT_LIT of float
  | STRING_LIT of string
  (* keywords *)
  | KW_PACKAGE
  | KW_IMPORT
  | KW_FUNC
  | KW_VAR
  | KW_TYPE
  | KW_STRUCT
  | KW_MAP
  | KW_IF
  | KW_ELSE
  | KW_FOR
  | KW_RANGE
  | KW_RETURN
  | KW_GO
  | KW_DEFER
  | KW_PANIC
  | KW_BREAK
  | KW_CONTINUE
  | KW_TRUE
  | KW_FALSE
  | KW_NIL
  (* punctuation *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | COLON
  | DOT
  (* operators *)
  | ASSIGN  (** [=] *)
  | DEFINE  (** [:=] *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | AMPAMP
  | BARBAR
  | BANG
  | AMP
  | BAR  (** bitwise or *)
  | CARET  (** bitwise xor *)
  | SHL
  | SHR
  | PLUSPLUS
  | MINUSMINUS
  | PLUS_ASSIGN
  | MINUS_ASSIGN
  | STAR_ASSIGN
  | EOF

let keyword_of_string = function
  | "package" -> Some KW_PACKAGE
  | "import" -> Some KW_IMPORT
  | "func" -> Some KW_FUNC
  | "var" -> Some KW_VAR
  | "type" -> Some KW_TYPE
  | "struct" -> Some KW_STRUCT
  | "map" -> Some KW_MAP
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "for" -> Some KW_FOR
  | "range" -> Some KW_RANGE
  | "return" -> Some KW_RETURN
  | "go" -> Some KW_GO
  | "defer" -> Some KW_DEFER
  | "panic" -> Some KW_PANIC
  | "break" -> Some KW_BREAK
  | "continue" -> Some KW_CONTINUE
  | "true" -> Some KW_TRUE
  | "false" -> Some KW_FALSE
  | "nil" -> Some KW_NIL
  | _ -> None

let to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT_LIT n -> Printf.sprintf "integer %d" n
  | FLOAT_LIT f -> Printf.sprintf "float %g" f
  | STRING_LIT s -> Printf.sprintf "string %S" s
  | KW_PACKAGE -> "'package'"
  | KW_IMPORT -> "'import'"
  | KW_FUNC -> "'func'"
  | KW_VAR -> "'var'"
  | KW_TYPE -> "'type'"
  | KW_STRUCT -> "'struct'"
  | KW_MAP -> "'map'"
  | KW_IF -> "'if'"
  | KW_ELSE -> "'else'"
  | KW_FOR -> "'for'"
  | KW_RANGE -> "'range'"
  | KW_RETURN -> "'return'"
  | KW_GO -> "'go'"
  | KW_DEFER -> "'defer'"
  | KW_PANIC -> "'panic'"
  | KW_BREAK -> "'break'"
  | KW_CONTINUE -> "'continue'"
  | KW_TRUE -> "'true'"
  | KW_FALSE -> "'false'"
  | KW_NIL -> "'nil'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | COLON -> "':'"
  | DOT -> "'.'"
  | ASSIGN -> "'='"
  | DEFINE -> "':='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | EQ -> "'=='"
  | NE -> "'!='"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | AMPAMP -> "'&&'"
  | BARBAR -> "'||'"
  | BANG -> "'!'"
  | AMP -> "'&'"
  | BAR -> "'|'"
  | CARET -> "'^'"
  | SHL -> "'<<'"
  | SHR -> "'>>'"
  | PLUSPLUS -> "'++'"
  | MINUSMINUS -> "'--'"
  | PLUS_ASSIGN -> "'+='"
  | MINUS_ASSIGN -> "'-='"
  | STAR_ASSIGN -> "'*='"
  | EOF -> "end of file"

(** Tokens after which Go's automatic semicolon insertion applies at a
    newline (a subset of the Go spec rule sufficient for MiniGo). *)
let ends_statement = function
  | IDENT _ | INT_LIT _ | FLOAT_LIT _ | STRING_LIT _ | KW_RETURN | KW_BREAK
  | KW_CONTINUE | KW_TRUE | KW_FALSE | KW_NIL | RPAREN | RBRACE | RBRACKET
  | PLUSPLUS | MINUSMINUS ->
    true
  | _ -> false
