(** Recursive-descent parser for MiniGo.

    Implements Go's composite-literal restriction: [T{...}] is not
    recognized at the top level of an if/for header (the brace would read
    as the statement block); parentheses or brackets re-enable it. *)

exception Error of string * Token.pos

(** Parse a complete source string into the surface AST (whole-program
    form; a leading [package] clause and [import]s are accepted and
    discarded). *)
val parse : string -> Ast.program

(** Parse a source file in package mode: optional [package] clause,
    [import] declarations, then top-level declarations.  Inside the
    declarations, [pkg.Sel] is parsed as a qualified reference whenever
    [pkg] is the local name of one of the file's imports. *)
val parse_file : string -> Ast.file
