(** Name resolution and type checking: lowers the surface {!Ast} to the
    typed {!Tast}, assigning unique variable ids, the scope and loop
    depths the escape analysis needs (Defs 4.3, 4.13), and one allocation
    site per allocating expression. *)

exception Error of string * Token.pos

type func_sig = { sig_params : Types.t list; sig_results : Types.t list }

(** Check a whole program; raises {!Error} on the first problem. *)
val check : Ast.program -> Tast.program

(** The exported interface of a checked package, as seen by its
    importers: package-qualified struct types, function signatures and
    globals.  Visibility is enforced at the reference site (capitalized
    = exported, as in Go), so the interface lists every top-level
    declaration. *)
type pkg_iface = {
  pi_pkg : string;
  pi_structs : (string * (string * Types.t) list) list;
  pi_funcs : (string * func_sig) list;
  pi_globals : (string * Tast.var) list;
}

(** Final id-counter values after checking a package; feed them as the
    [first_*] bases of the next package so ids stay globally unique. *)
type counters = { c_next_var : int; c_next_scope : int; c_next_site : int }

(** Check one package against the interfaces of its imports.

    Top-level names are qualified as [pkg.name] — except in package
    [main], whose names stay plain so the interpreter entry point and
    whole-program compiles coincide.  [first_var] / [first_scope] /
    [first_site] seed the id counters so several packages can be checked
    in sequence and linked without renumbering: pass the previous
    package's final counts ([p_nvars], …).  Raises {!Error} on the first
    problem, including references to unexported (lower-case) members of
    an imported package. *)
val check_package :
  ?imports:pkg_iface list ->
  ?first_var:int ->
  ?first_scope:int ->
  ?first_site:int ->
  Ast.file ->
  Tast.program * pkg_iface * counters
