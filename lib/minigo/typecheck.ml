(** Name resolution and type checking: lowers the surface {!Ast} to the
    typed {!Tast}.

    Besides checking, this pass computes the per-variable [DeclDepth] /
    [LoopDepth] values the escape analysis needs (paper Defs 4.3, 4.13) and
    allocates one {!Tast.alloc_site} per allocation expression. *)

exception Error of string * Token.pos

let error pos fmt = Format.kasprintf (fun s -> raise (Error (s, pos))) fmt

type func_sig = { sig_params : Types.t list; sig_results : Types.t list }

type state = {
  tenv : Types.env;
  sigs : (string, func_sig) Hashtbl.t;
  globals : (string, Tast.var) Hashtbl.t;
  pkg : string;
      (** qualification prefix for top-level names; [""] for the main
          package / whole-program mode (names stay plain) *)
  aliases : (string, string) Hashtbl.t;
      (** import alias → package name, for resolving [alias.Sel] *)
  mutable scopes : (string, Tast.var) Hashtbl.t list;  (** innermost first *)
  mutable next_var : int;
  mutable next_scope : int;
  mutable next_site : int;
  mutable sites : Tast.alloc_site list;  (** reverse order *)
  mutable decl_depth : int;
  mutable loop_depth : int;
  mutable cur_func : string;
  mutable cur_results : Types.t list;
  mutable cur_scope : int;
}

let create ?(pkg = "") ?(first_var = 0) ?(first_scope = 0) ?(first_site = 0)
    () =
  {
    tenv = Types.create_env ();
    sigs = Hashtbl.create 16;
    globals = Hashtbl.create 16;
    pkg;
    aliases = Hashtbl.create 4;
    scopes = [];
    next_var = first_var;
    next_scope = first_scope;
    next_site = first_site;
    sites = [];
    decl_depth = 0;
    loop_depth = 0;
    cur_func = "";
    cur_results = [];
    cur_scope = 0;
  }

(* ------------------------------------------------------------------ *)
(* Package-qualified names                                             *)
(* ------------------------------------------------------------------ *)

(* The qualified name a top-level declaration of this package goes by:
   [pkg.name], or just [name] in main/whole-program mode. *)
let qualify st name = if st.pkg = "" then name else st.pkg ^ "." ^ name

let split_qualified name =
  match String.index_opt name '.' with
  | None -> None
  | Some i ->
    Some
      ( String.sub name 0 i,
        String.sub name (i + 1) (String.length name - i - 1) )

(* Go's visibility rule: a capitalized first letter means exported. *)
let is_exported name =
  String.length name > 0 && name.[0] >= 'A' && name.[0] <= 'Z'

(* Canonical qualified name of an imported reference [alias.Sel]:
   resolves the alias to its package name and enforces the
   capitalization rule. *)
let resolve_qualified st pos name =
  match split_qualified name with
  | None -> name
  | Some (alias, sel) ->
    let pkg =
      match Hashtbl.find_opt st.aliases alias with
      | Some p -> p
      | None -> error pos "unknown package %s" alias
    in
    if not (is_exported sel) then
      error pos "%s is not exported by package %s" sel pkg;
    pkg ^ "." ^ sel

(* Cross-package field accesses must name exported fields. *)
let check_field_access st pos sname fname =
  match split_qualified sname with
  | Some (p, _) when p <> st.pkg && not (is_exported fname) ->
    error pos "field %s of %s is not exported by package %s" fname sname p
  | _ -> ()

(* Canonical name of a struct type reference: own-package names resolve
   to their qualified form first, then to a plain (imported-main or
   whole-program) name; [alias.Sel] resolves through the alias table. *)
let find_struct st pos n =
  if String.contains n '.' then begin
    let qn = resolve_qualified st pos n in
    if Hashtbl.mem st.tenv.Types.structs qn then Some qn else None
  end
  else begin
    let qn = qualify st n in
    if Hashtbl.mem st.tenv.Types.structs qn then Some qn
    else if Hashtbl.mem st.tenv.Types.structs n then Some n
    else None
  end

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let rec resolve_ty st pos : Ast.ty -> Types.t = function
  | Ast.Tyint -> Types.Int
  | Ast.Tybool -> Types.Bool
  | Ast.Tystring -> Types.String
  | Ast.Tyfloat -> Types.Float
  | Ast.Typtr t -> Types.Ptr (resolve_ty st pos t)
  | Ast.Tyslice t -> Types.Slice (resolve_ty st pos t)
  | Ast.Tymap (k, v) ->
    let k = resolve_ty st pos k in
    (match k with
    | Types.Int | Types.String | Types.Bool | Types.Float -> ()
    | _ -> error pos "map key type must be a scalar or string");
    Types.Map (k, resolve_ty st pos v)
  | Ast.Tyname n -> begin
    match find_struct st pos n with
    | Some qn -> Types.Struct qn
    | None -> error pos "unknown type %s" n
  end

(* ------------------------------------------------------------------ *)
(* Variables and scopes                                                *)
(* ------------------------------------------------------------------ *)

let fresh_var st name ty kind : Tast.var =
  let id = st.next_var in
  st.next_var <- id + 1;
  {
    Tast.v_id = id;
    v_name = name;
    v_ty = ty;
    v_decl_depth = st.decl_depth;
    v_loop_depth = st.loop_depth;
    v_scope = st.cur_scope;
    v_kind = kind;
  }

let declare st pos name ty kind =
  match st.scopes with
  | [] -> error pos "internal: no open scope"
  | scope :: _ ->
    if Hashtbl.mem scope name then
      error pos "%s is already declared in this scope" name;
    let v = fresh_var st name ty kind in
    Hashtbl.replace scope name v;
    v

let lookup st pos name : Tast.var =
  let rec search = function
    | [] -> begin
      let found =
        if String.contains name '.' then
          Hashtbl.find_opt st.globals (resolve_qualified st pos name)
        else begin
          match Hashtbl.find_opt st.globals (qualify st name) with
          | Some v -> Some v
          | None -> Hashtbl.find_opt st.globals name
        end
      in
      match found with
      | Some v -> v
      | None -> error pos "undefined variable %s" name
    end
    | scope :: rest -> begin
      match Hashtbl.find_opt scope name with
      | Some v -> v
      | None -> search rest
    end
  in
  search st.scopes

(* Run [f] inside a fresh nested scope; returns the scope id and result. *)
let in_scope st f =
  let id = st.next_scope in
  st.next_scope <- id + 1;
  let saved_scope = st.cur_scope in
  st.scopes <- Hashtbl.create 8 :: st.scopes;
  st.decl_depth <- st.decl_depth + 1;
  st.cur_scope <- id;
  let finish () =
    st.scopes <- List.tl st.scopes;
    st.decl_depth <- st.decl_depth - 1;
    st.cur_scope <- saved_scope
  in
  match f id with
  | result ->
    finish ();
    result
  | exception e ->
    finish ();
    raise e

let fresh_site st pos kind ~elem_size ~const_len : Tast.alloc_site =
  let id = st.next_site in
  st.next_site <- id + 1;
  let site =
    {
      Tast.site_id = id;
      site_kind = kind;
      site_pos = pos;
      site_func = st.cur_func;
      site_elem_size = elem_size;
      site_const_len = const_len;
    }
  in
  st.sites <- site :: st.sites;
  site

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let mk ty pos desc : Tast.expr = { Tast.ty; pos; desc }

let is_arith = function Types.Int | Types.Float -> true | _ -> false

let const_len (e : Tast.expr) =
  match e.Tast.desc with Tast.Tint n -> Some n | _ -> None

let rec check_expr st (e : Ast.expr) : Tast.expr =
  let pos = e.Ast.pos in
  match e.Ast.desc with
  | Ast.Eint n -> mk Types.Int pos (Tast.Tint n)
  | Ast.Efloat f -> mk Types.Float pos (Tast.Tfloat f)
  | Ast.Ebool b -> mk Types.Bool pos (Tast.Tbool b)
  | Ast.Estring s -> mk Types.String pos (Tast.Tstring s)
  | Ast.Enil -> mk Types.Nil pos Tast.Tnil
  | Ast.Eident name ->
    let v = lookup st pos name in
    mk v.Tast.v_ty pos (Tast.Tvar v)
  | Ast.Ebinop (op, a, b) -> check_binop st pos op a b
  | Ast.Eunop (Ast.Uneg, a) ->
    let a = check_expr st a in
    if not (is_arith a.Tast.ty) then
      error pos "operand of unary '-' must be numeric, got %s"
        (Types.to_string a.Tast.ty);
    mk a.Tast.ty pos (Tast.Tunop (Ast.Uneg, a))
  | Ast.Eunop (Ast.Unot, a) ->
    let a = check_expr st a in
    if a.Tast.ty <> Types.Bool then
      error pos "operand of '!' must be bool, got %s"
        (Types.to_string a.Tast.ty);
    mk Types.Bool pos (Tast.Tunop (Ast.Unot, a))
  | Ast.Eaddr inner -> begin
    match inner.Ast.desc with
    | Ast.Ecomposite (Ast.Tyname sname, fields) ->
      (* &T{...}: a heap-allocatable object, one allocation site *)
      let sname =
        match find_struct st pos sname with
        | Some qn -> qn
        | None -> error pos "unknown struct type %s" sname
      in
      let inits = check_struct_lit st pos sname fields in
      let size = Types.size_of st.tenv (Types.Struct sname) in
      let site =
        fresh_site st pos Tast.Site_new ~elem_size:size ~const_len:(Some 1)
      in
      mk (Types.Ptr (Types.Struct sname)) pos
        (Tast.Taddr_struct_lit (site, sname, inits))
    | _ ->
      let lv, ty = check_lvalue st inner in
      mk (Types.Ptr ty) pos (Tast.Taddr lv)
  end
  | Ast.Ederef a ->
    let a = check_expr st a in
    (match a.Tast.ty with
    | Types.Ptr t -> mk t pos (Tast.Tderef a)
    | t -> error pos "cannot dereference a value of type %s"
             (Types.to_string t))
  | Ast.Eindex (a, i) ->
    let a = check_expr st a in
    let i = check_expr st i in
    (match a.Tast.ty with
    | Types.Slice t ->
      if i.Tast.ty <> Types.Int then error pos "slice index must be int";
      mk t pos (Tast.Tindex (a, i))
    | Types.String ->
      if i.Tast.ty <> Types.Int then error pos "string index must be int";
      mk Types.Int pos (Tast.Tindex (a, i))
    | Types.Map (k, v) ->
      if not (Types.compatible i.Tast.ty k) then
        error pos "map key has type %s but %s is required"
          (Types.to_string i.Tast.ty) (Types.to_string k);
      mk v pos (Tast.Tmap_get (a, i))
    | t -> error pos "cannot index a value of type %s" (Types.to_string t))
  | Ast.Eslice (a, lo, hi) ->
    let a = check_expr st a in
    let check_bound b =
      Option.map
        (fun e ->
          let e = check_expr st e in
          if e.Tast.ty <> Types.Int then
            error pos "slice bound must be int";
          e)
        b
    in
    let lo = check_bound lo and hi = check_bound hi in
    (match a.Tast.ty with
    | Types.Slice _ | Types.String ->
      mk a.Tast.ty pos (Tast.Tslice_sub (a, lo, hi))
    | t -> error pos "cannot slice a value of type %s" (Types.to_string t))
  | Ast.Efield (a, fname) ->
    let a = check_expr st a in
    let sname =
      match a.Tast.ty with
      | Types.Struct s -> s
      | Types.Ptr (Types.Struct s) -> s
      | t -> error pos "cannot select field %s on type %s" fname
               (Types.to_string t)
    in
    check_field_access st pos sname fname;
    (match Types.field_index st.tenv sname fname with
    | Some (idx, fty) -> mk fty pos (Tast.Tfield (a, idx, fname))
    | None -> error pos "struct %s has no field %s" sname fname)
  | Ast.Ecall ("itoa", [ a ]) ->
    let a = check_expr st a in
    if a.Tast.ty <> Types.Int then error pos "itoa takes an int";
    mk Types.String pos (Tast.Titoa a)
  | Ast.Ecall ("rand", [ a ]) ->
    let a = check_expr st a in
    if a.Tast.ty <> Types.Int then error pos "rand takes an int";
    mk Types.Int pos (Tast.Trand a)
  | Ast.Ecall ("recover", []) -> mk Types.String pos Tast.Trecover
  | Ast.Ecall ("copy", [ dst; src ]) ->
    let dst = check_expr st dst in
    let src = check_expr st src in
    (match (dst.Tast.ty, src.Tast.ty) with
    | Types.Slice a, Types.Slice b when Types.equal a b ->
      mk Types.Int pos (Tast.Tcopy (dst, src))
    | _ -> error pos "copy takes two slices of the same element type")
  | Ast.Ecall ("substr", [ s; a; b ]) ->
    let s = check_expr st s in
    let a = check_expr st a in
    let b = check_expr st b in
    if s.Tast.ty <> Types.String then
      error pos "substr takes a string and two ints";
    if a.Tast.ty <> Types.Int || b.Tast.ty <> Types.Int then
      error pos "substr bounds must be ints";
    mk Types.String pos (Tast.Tsubstr (s, a, b))
  | Ast.Ecall (name, args) -> begin
    let resolved =
      if String.contains name '.' then begin
        let qn = resolve_qualified st pos name in
        if Hashtbl.mem st.sigs qn then Some qn else None
      end
      else begin
        let qn = qualify st name in
        if Hashtbl.mem st.sigs qn then Some qn
        else if Hashtbl.mem st.sigs name then Some name
        else None
      end
    in
    match resolved with
    | None -> error pos "call to undefined function %s" name
    | Some rname ->
      let fsig = Hashtbl.find st.sigs rname in
      let args = List.map (check_expr st) args in
      let nexpected = List.length fsig.sig_params in
      if List.length args <> nexpected then
        error pos "%s expects %d argument(s), got %d" name nexpected
          (List.length args);
      List.iteri
        (fun i (arg : Tast.expr) ->
          let want = List.nth fsig.sig_params i in
          if not (Types.compatible arg.Tast.ty want) then
            error arg.Tast.pos
              "argument %d of %s has type %s but %s is required" (i + 1)
              name
              (Types.to_string arg.Tast.ty)
              (Types.to_string want))
        args;
      let ty =
        match fsig.sig_results with
        | [] -> Types.Unit
        | [ t ] -> t
        | ts -> Types.Tuple ts
      in
      mk ty pos (Tast.Tcall (rname, args))
  end
  | Ast.Emake (Ast.Tyslice elem, args) ->
    let elem = resolve_ty st pos elem in
    let len, cap =
      match args with
      | [ l ] -> (check_expr st l, None)
      | [ l; c ] -> (check_expr st l, Some (check_expr st c))
      | _ -> error pos "make([]T) takes a length and an optional capacity"
    in
    if len.Tast.ty <> Types.Int then error pos "slice length must be int";
    Option.iter
      (fun (c : Tast.expr) ->
        if c.Tast.ty <> Types.Int then error pos "slice capacity must be int")
      cap;
    let site =
      fresh_site st pos Tast.Site_slice
        ~elem_size:(Types.size_of st.tenv elem)
        ~const_len:
          (match cap with Some c -> const_len c | None -> const_len len)
    in
    mk (Types.Slice elem) pos (Tast.Tmake_slice (site, elem, len, cap))
  | Ast.Emake (Ast.Tymap (k, v), args) ->
    if args <> [] then error pos "make(map[K]V) takes no size argument";
    let kv =
      match resolve_ty st pos (Ast.Tymap (k, v)) with
      | Types.Map (k, v) -> (k, v)
      | _ -> assert false
    in
    let k, v = kv in
    let entry = Types.size_of st.tenv k + Types.size_of st.tenv v in
    let site =
      fresh_site st pos Tast.Site_map ~elem_size:entry ~const_len:(Some 0)
    in
    mk (Types.Map (k, v)) pos (Tast.Tmake_map (site, k, v))
  | Ast.Emake (t, _) ->
    error pos "make requires a slice or map type, got %s" (Ast.ty_to_string t)
  | Ast.Enew t ->
    let t = resolve_ty st pos t in
    let site =
      fresh_site st pos Tast.Site_new
        ~elem_size:(Types.size_of st.tenv t)
        ~const_len:(Some 1)
    in
    mk (Types.Ptr t) pos (Tast.Tnew (site, t))
  | Ast.Ecomposite (Ast.Tyname sname, fields) ->
    let sname =
      match find_struct st pos sname with
      | Some qn -> qn
      | None -> error pos "unknown struct type %s" sname
    in
    let inits = check_struct_lit st pos sname fields in
    mk (Types.Struct sname) pos (Tast.Tstruct_lit (sname, inits))
  | Ast.Ecomposite (Ast.Tyslice elem, entries) ->
    let elem = resolve_ty st pos elem in
    let exprs =
      List.map
        (fun (fname, e) ->
          if fname <> None then
            error pos "slice literals cannot use field names";
          let e = check_expr st e in
          if not (Types.compatible e.Tast.ty elem) then
            error e.Tast.pos "slice literal element has type %s, want %s"
              (Types.to_string e.Tast.ty) (Types.to_string elem);
          e)
        entries
    in
    let site =
      fresh_site st pos Tast.Site_slice
        ~elem_size:(Types.size_of st.tenv elem)
        ~const_len:(Some (List.length exprs))
    in
    mk (Types.Slice elem) pos (Tast.Tslice_lit (site, elem, exprs))
  | Ast.Ecomposite (t, _) ->
    error pos "composite literal requires a struct or slice type, got %s"
      (Ast.ty_to_string t)
  | Ast.Eappend (s, elems) ->
    let s = check_expr st s in
    let elem_ty =
      match s.Tast.ty with
      | Types.Slice t -> t
      | t -> error pos "append requires a slice, got %s" (Types.to_string t)
    in
    let elems =
      List.map
        (fun e ->
          let e = check_expr st e in
          if not (Types.compatible e.Tast.ty elem_ty) then
            error e.Tast.pos "appended element has type %s, want %s"
              (Types.to_string e.Tast.ty)
              (Types.to_string elem_ty);
          e)
        elems
    in
    let site =
      fresh_site st pos Tast.Site_append
        ~elem_size:(Types.size_of st.tenv elem_ty)
        ~const_len:None
    in
    mk s.Tast.ty pos (Tast.Tappend (site, s, elems))
  | Ast.Elen a ->
    let a = check_expr st a in
    (match a.Tast.ty with
    | Types.Slice _ | Types.Map _ | Types.String ->
      mk Types.Int pos (Tast.Tlen a)
    | t -> error pos "len is not defined on %s" (Types.to_string t))
  | Ast.Ecap a ->
    let a = check_expr st a in
    (match a.Tast.ty with
    | Types.Slice _ -> mk Types.Int pos (Tast.Tcap a)
    | t -> error pos "cap is not defined on %s" (Types.to_string t))

and check_binop st pos op a b : Tast.expr =
  let a = check_expr st a in
  let b = check_expr st b in
  let ta = a.Tast.ty and tb = b.Tast.ty in
  let result =
    match op with
    | Ast.Badd ->
      if Types.equal ta tb && (is_arith ta || ta = Types.String) then ta
      else
        error pos "invalid operands %s + %s" (Types.to_string ta)
          (Types.to_string tb)
    | Ast.Bsub | Ast.Bmul | Ast.Bdiv ->
      if Types.equal ta tb && is_arith ta then ta
      else
        error pos "invalid numeric operands %s, %s" (Types.to_string ta)
          (Types.to_string tb)
    | Ast.Bmod ->
      if ta = Types.Int && tb = Types.Int then Types.Int
      else error pos "'%%' requires int operands"
    | Ast.Band_bits | Ast.Bor_bits | Ast.Bxor | Ast.Bshl | Ast.Bshr ->
      if ta = Types.Int && tb = Types.Int then Types.Int
      else error pos "bitwise operators require int operands"
    | Ast.Beq | Ast.Bne ->
      if Types.compatible ta tb then Types.Bool
      else
        error pos "cannot compare %s and %s" (Types.to_string ta)
          (Types.to_string tb)
    | Ast.Blt | Ast.Ble | Ast.Bgt | Ast.Bge ->
      if Types.equal ta tb && (is_arith ta || ta = Types.String) then
        Types.Bool
      else
        error pos "cannot order %s and %s" (Types.to_string ta)
          (Types.to_string tb)
    | Ast.Band | Ast.Bor ->
      if ta = Types.Bool && tb = Types.Bool then Types.Bool
      else error pos "logical operators require bool operands"
  in
  mk result pos (Tast.Tbinop (op, a, b))

and check_struct_lit st pos sname fields : Tast.expr list =
  let decl_fields = Types.struct_fields st.tenv sname in
  let named = List.exists (fun (n, _) -> n <> None) fields in
  if named && List.exists (fun (n, _) -> n = None) fields then
    error pos "cannot mix named and positional fields in a struct literal";
  if named then
    List.iter
      (fun (n, _) ->
        Option.iter (fun f -> check_field_access st pos sname f) n)
      fields;
  if named then
    (* one initializer per named field; missing fields get zero values *)
    List.map
      (fun (fname, fty) ->
        match
          List.find_opt (fun (n, _) -> n = Some fname) fields
        with
        | Some (_, e) ->
          let e = check_expr st e in
          if not (Types.compatible e.Tast.ty fty) then
            error e.Tast.pos "field %s has type %s, want %s" fname
              (Types.to_string e.Tast.ty)
              (Types.to_string fty);
          e
        | None -> zero_value_expr st pos fty)
      decl_fields
  else if fields = [] then
    List.map (fun (_, fty) -> zero_value_expr st pos fty) decl_fields
  else begin
    if List.length fields <> List.length decl_fields then
      error pos "struct %s has %d field(s), literal provides %d" sname
        (List.length decl_fields) (List.length fields);
    List.map2
      (fun (_, e) (fname, fty) ->
        let e = check_expr st e in
        if not (Types.compatible e.Tast.ty fty) then
          error e.Tast.pos "field %s has type %s, want %s" fname
            (Types.to_string e.Tast.ty)
            (Types.to_string fty);
        e)
      fields decl_fields
  end

(* A synthesized expression producing the zero value of [ty]. *)
and zero_value_expr st pos (ty : Types.t) : Tast.expr =
  match ty with
  | Types.Int -> mk Types.Int pos (Tast.Tint 0)
  | Types.Float -> mk Types.Float pos (Tast.Tfloat 0.0)
  | Types.Bool -> mk Types.Bool pos (Tast.Tbool false)
  | Types.String -> mk Types.String pos (Tast.Tstring "")
  | Types.Ptr _ | Types.Slice _ | Types.Map _ -> mk ty pos Tast.Tnil
  | Types.Struct sname ->
    let inits =
      List.map
        (fun (_, fty) -> zero_value_expr st pos fty)
        (Types.struct_fields st.tenv sname)
    in
    mk ty pos (Tast.Tstruct_lit (sname, inits))
  | Types.Tuple _ | Types.Unit | Types.Nil ->
    error pos "internal: no zero value for %s" (Types.to_string ty)

and check_lvalue st (e : Ast.expr) : Tast.lvalue * Types.t =
  let pos = e.Ast.pos in
  match e.Ast.desc with
  | Ast.Eident name ->
    let v = lookup st pos name in
    (Tast.Lvar v, v.Tast.v_ty)
  | Ast.Ederef a ->
    let a = check_expr st a in
    (match a.Tast.ty with
    | Types.Ptr t -> (Tast.Lderef a, t)
    | t -> error pos "cannot assign through a value of type %s"
             (Types.to_string t))
  | Ast.Eindex (a, i) ->
    let a = check_expr st a in
    let i = check_expr st i in
    (match a.Tast.ty with
    | Types.Slice t ->
      if i.Tast.ty <> Types.Int then error pos "slice index must be int";
      (Tast.Lindex (a, i), t)
    | Types.Map (k, v) ->
      if not (Types.compatible i.Tast.ty k) then
        error pos "map key has type %s but %s is required"
          (Types.to_string i.Tast.ty) (Types.to_string k);
      (Tast.Lmap (a, i), v)
    | t -> error pos "cannot assign into a value of type %s"
             (Types.to_string t))
  | Ast.Efield (a, fname) ->
    let a = check_expr st a in
    let sname =
      match a.Tast.ty with
      | Types.Struct s | Types.Ptr (Types.Struct s) -> s
      | t -> error pos "cannot select field %s on type %s" fname
               (Types.to_string t)
    in
    check_field_access st pos sname fname;
    (match Types.field_index st.tenv sname fname with
    | Some (idx, fty) -> (Tast.Lfield (a, idx, fname), fty)
    | None -> error pos "struct %s has no field %s" sname fname)
  | _ -> error pos "expression is not assignable"

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec check_block st (stmts : Ast.block) : Tast.block =
  in_scope st (fun scope_id ->
      let depth = st.decl_depth in
      let checked = List.concat_map (check_stmt st) stmts in
      { Tast.b_scope = scope_id; b_depth = depth; b_stmts = checked })

(* One surface statement can lower to several typed statements
   (e.g. paired multi-assignment). *)
and check_stmt st (s : Ast.stmt) : Tast.stmt list =
  let pos = s.Ast.spos in
  match s.Ast.sdesc with
  | Ast.Sdecl (names, ty_opt, inits) -> check_decl st pos names ty_opt inits
  | Ast.Sassign (lhss, rhss) -> check_assign st pos lhss rhss
  | Ast.Sop_assign (lhs, op, rhs) ->
    let lv, lty = check_lvalue st lhs in
    let rhs = check_expr st rhs in
    let lhs_expr = expr_of_lvalue st pos lv lty in
    let combined =
      check_binop_typed st pos op lhs_expr rhs
    in
    [ Tast.Sassign (lv, combined) ]
  | Ast.Sincr lhs ->
    let lv, lty = check_lvalue st lhs in
    if lty <> Types.Int then error pos "'++' requires an int operand";
    let one = mk Types.Int pos (Tast.Tint 1) in
    let cur = expr_of_lvalue st pos lv lty in
    [ Tast.Sassign (lv, mk Types.Int pos (Tast.Tbinop (Ast.Badd, cur, one))) ]
  | Ast.Sdecr lhs ->
    let lv, lty = check_lvalue st lhs in
    if lty <> Types.Int then error pos "'--' requires an int operand";
    let one = mk Types.Int pos (Tast.Tint 1) in
    let cur = expr_of_lvalue st pos lv lty in
    [ Tast.Sassign (lv, mk Types.Int pos (Tast.Tbinop (Ast.Bsub, cur, one))) ]
  | Ast.Sexpr e ->
    let e = check_expr st e in
    (match e.Tast.desc with
    | Tast.Tcall _ | Tast.Tcopy _ -> ()
    | _ -> error pos "expression statement must be a function call");
    [ Tast.Sexpr e ]
  | Ast.Sif (cond, body, else_opt) ->
    let cond = check_expr st cond in
    if cond.Tast.ty <> Types.Bool then
      error pos "if condition must be bool, got %s"
        (Types.to_string cond.Tast.ty);
    let body = check_block st body in
    let else_blk =
      match else_opt with
      | None -> None
      | Some { Ast.sdesc = Ast.Sblock b; _ } -> Some (check_block st b)
      | Some ({ Ast.sdesc = Ast.Sif _; _ } as elif) ->
        (* wrap "else if" into a block of its own *)
        Some
          (in_scope st (fun scope_id ->
               {
                 Tast.b_scope = scope_id;
                 b_depth = st.decl_depth;
                 b_stmts = check_stmt st elif;
               }))
      | Some _ -> error pos "internal: malformed else branch"
    in
    [ Tast.Sif (cond, body, else_blk) ]
  | Ast.Sfor (init, cond, post, body) ->
    (* The init variable lives in an implicit scope around the loop; the
       whole for statement (incl. init) is at loop depth + 1, as in Go's
       escape analysis. *)
    st.loop_depth <- st.loop_depth + 1;
    let result =
      in_scope st (fun scope_id ->
          let init = Option.map (fun s -> one_stmt st pos (check_stmt st s)) init in
          let cond =
            Option.map
              (fun c ->
                let c = check_expr st c in
                if c.Tast.ty <> Types.Bool then
                  error pos "for condition must be bool";
                c)
              cond
          in
          let post = Option.map (fun s -> one_stmt st pos (check_stmt st s)) post in
          let body = check_block st body in
          {
            Tast.b_scope = scope_id;
            b_depth = st.decl_depth;
            b_stmts = [ Tast.Sfor (init, cond, post, body) ];
          })
    in
    st.loop_depth <- st.loop_depth - 1;
    [ Tast.Sblock result ]
  | Ast.Sforrange (name, e, body) when
      (match (check_expr st e).Tast.ty with
       | Types.Map _ -> true
       | _ -> false) ->
    (* range over a map: iterate keys directly (no integer desugaring) *)
    let e = check_expr st e in
    let key_ty =
      match e.Tast.ty with Types.Map (k, _) -> k | _ -> assert false
    in
    st.loop_depth <- st.loop_depth + 1;
    let result =
      in_scope st (fun scope_id ->
          let k = declare st pos name key_ty Tast.Vlocal in
          let body = check_block st body in
          {
            Tast.b_scope = scope_id;
            b_depth = st.decl_depth;
            b_stmts = [ Tast.Sforrange_map (k, e, body) ];
          })
    in
    st.loop_depth <- st.loop_depth - 1;
    [ Tast.Sblock result ]
  | Ast.Sforrange (name, e, body) ->
    (* Desugar:  for i := range e  ==>
         { bound := <len e or e>; for i := 0; i < bound; i++ { body } } *)
    let e = check_expr st e in
    let bound_expr =
      match e.Tast.ty with
      | Types.Int -> e
      | Types.Slice _ -> mk Types.Int pos (Tast.Tlen e)
      | t -> error pos "cannot range over %s" (Types.to_string t)
    in
    let outer =
      in_scope st (fun outer_id ->
          let bound = declare st pos ("range$" ^ name) Types.Int Tast.Vlocal in
          let bound_decl = Tast.Sdecl (bound, Some bound_expr) in
          st.loop_depth <- st.loop_depth + 1;
          let loop =
            in_scope st (fun for_id ->
                let i = declare st pos name Types.Int Tast.Vlocal in
                let init = Tast.Sdecl (i, Some (mk Types.Int pos (Tast.Tint 0))) in
                let cond =
                  mk Types.Bool pos
                    (Tast.Tbinop
                       ( Ast.Blt,
                         mk Types.Int pos (Tast.Tvar i),
                         mk Types.Int pos (Tast.Tvar bound) ))
                in
                let post =
                  Tast.Sassign
                    ( Tast.Lvar i,
                      mk Types.Int pos
                        (Tast.Tbinop
                           ( Ast.Badd,
                             mk Types.Int pos (Tast.Tvar i),
                             mk Types.Int pos (Tast.Tint 1) )) )
                in
                let body = check_block st body in
                {
                  Tast.b_scope = for_id;
                  b_depth = st.decl_depth;
                  b_stmts = [ Tast.Sfor (Some init, Some cond, Some post, body) ];
                })
          in
          st.loop_depth <- st.loop_depth - 1;
          {
            Tast.b_scope = outer_id;
            b_depth = st.decl_depth;
            b_stmts = [ bound_decl; Tast.Sblock loop ];
          })
    in
    [ Tast.Sblock outer ]
  | Ast.Sreturn exprs ->
    let exprs = List.map (check_expr st) exprs in
    let want = st.cur_results in
    if List.length exprs <> List.length want then
      error pos "%s returns %d value(s), got %d" st.cur_func
        (List.length want) (List.length exprs);
    List.iteri
      (fun i (e : Tast.expr) ->
        let w = List.nth want i in
        if not (Types.compatible e.Tast.ty w) then
          error e.Tast.pos "return value %d has type %s, want %s" (i + 1)
            (Types.to_string e.Tast.ty)
            (Types.to_string w))
      exprs;
    [ Tast.Sreturn exprs ]
  | Ast.Sblock b -> [ Tast.Sblock (check_block st b) ]
  | Ast.Sgo e -> begin
    match check_expr st e with
    | { Tast.desc = Tast.Tcall (name, args); _ } -> [ Tast.Sgo (name, args) ]
    | _ -> error pos "go requires a function call"
  end
  | Ast.Sdefer e -> begin
    match check_expr st e with
    | { Tast.desc = Tast.Tcall (name, args); _ } ->
      [ Tast.Sdefer (name, args) ]
    | _ -> error pos "defer requires a function call"
  end
  | Ast.Spanic e -> [ Tast.Spanic (check_expr st e) ]
  | Ast.Sbreak -> [ Tast.Sbreak ]
  | Ast.Scontinue -> [ Tast.Scontinue ]
  | Ast.Sdelete (m, k) ->
    let m = check_expr st m in
    let k = check_expr st k in
    (match m.Tast.ty with
    | Types.Map (kt, _) ->
      if not (Types.compatible k.Tast.ty kt) then
        error pos "delete key has type %s, want %s"
          (Types.to_string k.Tast.ty) (Types.to_string kt);
      [ Tast.Sdelete (m, k) ]
    | t -> error pos "delete requires a map, got %s" (Types.to_string t))
  | Ast.Sprint es -> [ Tast.Sprint (List.map (check_expr st) es) ]

and one_stmt _st pos = function
  | [ s ] -> s
  | _ -> error pos "this statement form is not allowed in a for clause"

and expr_of_lvalue st pos (lv : Tast.lvalue) ty : Tast.expr =
  ignore st;
  match lv with
  | Tast.Lvar v -> mk ty pos (Tast.Tvar v)
  | Tast.Lderef e -> mk ty pos (Tast.Tderef e)
  | Tast.Lindex (a, i) -> mk ty pos (Tast.Tindex (a, i))
  | Tast.Lmap (m, k) -> mk ty pos (Tast.Tmap_get (m, k))
  | Tast.Lfield (e, idx, name) -> mk ty pos (Tast.Tfield (e, idx, name))

and check_binop_typed st pos op (a : Tast.expr) (b : Tast.expr) : Tast.expr =
  ignore st;
  let ta = a.Tast.ty in
  (match op with
  | Ast.Badd ->
    if not (is_arith ta || ta = Types.String) then
      error pos "invalid '+=' operand type %s" (Types.to_string ta)
  | Ast.Bsub | Ast.Bmul ->
    if not (is_arith ta) then
      error pos "invalid compound assignment operand type %s"
        (Types.to_string ta)
  | _ -> error pos "unsupported compound assignment");
  if not (Types.equal ta b.Tast.ty) then
    error pos "mismatched compound assignment operands %s and %s"
      (Types.to_string ta)
      (Types.to_string b.Tast.ty);
  mk ta pos (Tast.Tbinop (op, a, b))

and check_decl st pos names ty_opt inits : Tast.stmt list =
  let declared_ty = Option.map (resolve_ty st pos) ty_opt in
  match (names, inits) with
  | _, [] ->
    (* var x, y T  — zero values *)
    let ty =
      match declared_ty with
      | Some t -> t
      | None -> error pos "declaration needs a type or an initializer"
    in
    List.map
      (fun name ->
        let v = declare st pos name ty Tast.Vlocal in
        Tast.Sdecl (v, None))
      names
  | [ name ], [ init ] ->
    let init = check_expr st init in
    let ty =
      match declared_ty with
      | Some t ->
        if not (Types.compatible init.Tast.ty t) then
          error pos "cannot initialize %s (%s) with %s" name
            (Types.to_string t)
            (Types.to_string init.Tast.ty);
        t
      | None -> begin
        match init.Tast.ty with
        | Types.Unit -> error pos "%s has no value" name
        | Types.Tuple _ ->
          error pos "multiple-value call needs multiple targets"
        | Types.Nil -> error pos "cannot infer a type from nil"
        | t -> t
      end
    in
    let v = declare st pos name ty Tast.Vlocal in
    [ Tast.Sdecl (v, Some init) ]
  | names, [ init ] when List.length names > 1 ->
    (* a, b := f() — one multi-value call; or the comma-ok map form *)
    let init = check_expr st init in
    let init =
      match (init.Tast.desc, names) with
      | Tast.Tmap_get (m, k), [ _; _ ] ->
        mk
          (Types.Tuple [ init.Tast.ty; Types.Bool ])
          pos
          (Tast.Tmap_get_ok (m, k))
      | _ -> init
    in
    (match init.Tast.ty with
    | Types.Tuple tys when List.length tys = List.length names ->
      let vars =
        List.map2 (fun name ty -> declare st pos name ty Tast.Vlocal) names
          tys
      in
      [ Tast.Smulti_decl (vars, init) ]
    | Types.Tuple tys ->
      error pos "call returns %d values but %d targets given"
        (List.length tys) (List.length names)
    | _ -> error pos "multiple targets require a multiple-value call")
  | names, inits ->
    if List.length names <> List.length inits then
      error pos "declaration has %d name(s) but %d value(s)"
        (List.length names) (List.length inits);
    (* a, b := e1, e2 — element-wise; rhs evaluated before any binding is
       visible, which holds because each rhs is checked in the current
       scope before the names are declared. *)
    let checked = List.map (check_expr st) inits in
    List.map2
      (fun name (init : Tast.expr) ->
        let ty =
          match declared_ty with
          | Some t -> t
          | None -> begin
            match init.Tast.ty with
            | Types.Nil -> error pos "cannot infer a type from nil"
            | Types.Unit | Types.Tuple _ ->
              error pos "invalid initializer for %s" name
            | t -> t
          end
        in
        let v = declare st pos name ty Tast.Vlocal in
        Tast.Sdecl (v, Some init))
      names checked

and check_assign st pos lhss rhss : Tast.stmt list =
  match (lhss, rhss) with
  | [ lhs ], [ rhs ] ->
    let lv, lty = check_lvalue st lhs in
    let rhs = check_expr st rhs in
    if not (Types.compatible rhs.Tast.ty lty) then
      error pos "cannot assign %s to %s"
        (Types.to_string rhs.Tast.ty)
        (Types.to_string lty);
    [ Tast.Sassign (lv, rhs) ]
  | lhss, [ rhs ] when List.length lhss > 1 ->
    let rhs = check_expr st rhs in
    let rhs =
      match (rhs.Tast.desc, lhss) with
      | Tast.Tmap_get (m, k), [ _; _ ] ->
        mk
          (Types.Tuple [ rhs.Tast.ty; Types.Bool ])
          pos
          (Tast.Tmap_get_ok (m, k))
      | _ -> rhs
    in
    (match rhs.Tast.ty with
    | Types.Tuple tys when List.length tys = List.length lhss ->
      let lvs =
        List.map2
          (fun lhs ty ->
            let lv, lty = check_lvalue st lhs in
            if not (Types.compatible ty lty) then
              error pos "cannot assign %s to %s" (Types.to_string ty)
                (Types.to_string lty);
            lv)
          lhss tys
      in
      [ Tast.Smulti_assign (lvs, rhs) ]
    | Types.Tuple tys ->
      error pos "call returns %d values but %d targets given"
        (List.length tys) (List.length lhss)
    | _ -> error pos "multiple targets require a multiple-value call")
  | lhss, rhss ->
    if List.length lhss <> List.length rhss then
      error pos "assignment has %d target(s) but %d value(s)"
        (List.length lhss) (List.length rhss);
    (* a, b = e1, e2: evaluate all of the rhs into temporaries first so
       that swaps work, then assign. *)
    in_scope st (fun scope_id ->
        let temps =
          List.map
            (fun rhs ->
              let rhs = check_expr st rhs in
              let v =
                declare st pos
                  (Printf.sprintf "swap$%d" st.next_var)
                  rhs.Tast.ty Tast.Vlocal
              in
              (v, rhs))
            rhss
        in
        let decls =
          List.map (fun (v, rhs) -> Tast.Sdecl (v, Some rhs)) temps
        in
        let assigns =
          List.map2
            (fun lhs (v, (rhs : Tast.expr)) ->
              let lv, lty = check_lvalue st lhs in
              if not (Types.compatible rhs.Tast.ty lty) then
                error pos "cannot assign %s to %s"
                  (Types.to_string rhs.Tast.ty)
                  (Types.to_string lty);
              Tast.Sassign (lv, mk lty pos (Tast.Tvar v)))
            lhss temps
        in
        [ Tast.Sblock
            {
              Tast.b_scope = scope_id;
              b_depth = st.decl_depth;
              b_stmts = decls @ assigns;
            } ])

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let check_func st (fd : Ast.func_decl) : Tast.func =
  st.cur_func <- qualify st fd.Ast.fd_name;
  st.decl_depth <- 0;
  st.loop_depth <- 0;
  let results =
    List.map (resolve_ty st fd.Ast.fd_pos) fd.Ast.fd_results
  in
  st.cur_results <- results;
  let body =
    in_scope st (fun scope_id ->
        (* parameters live in the body scope (depth 1), like Go *)
        let params =
          List.map
            (fun (name, ty) ->
              declare st fd.Ast.fd_pos name
                (resolve_ty st fd.Ast.fd_pos ty)
                Tast.Vparam)
            fd.Ast.fd_params
        in
        let depth = st.decl_depth in
        let stmts = List.concat_map (check_stmt st) fd.Ast.fd_body in
        ( params,
          { Tast.b_scope = scope_id; b_depth = depth; b_stmts = stmts } ))
  in
  let params, body = body in
  {
    Tast.f_name = qualify st fd.Ast.fd_name;
    f_params = params;
    f_results = results;
    f_body = body;
    f_pos = fd.Ast.fd_pos;
  }

(* Check one program's declarations against an already-initialized state
   (possibly holding imported interfaces and id bases). *)
let check_decls st (prog : Ast.program) : Tast.program =
  (* Pass 1: struct declarations (names first so they can be mutually
     recursive through pointers). *)
  List.iter
    (function
      | Ast.Dstruct sd -> Types.add_struct st.tenv (qualify st sd.Ast.sd_name) []
      | Ast.Dfunc _ | Ast.Dglobal _ -> ())
    prog;
  List.iter
    (function
      | Ast.Dstruct sd ->
        let fields =
          List.map
            (fun (n, ty) -> (n, resolve_ty st sd.Ast.sd_pos ty))
            sd.Ast.sd_fields
        in
        Types.add_struct st.tenv (qualify st sd.Ast.sd_name) fields
      | Ast.Dfunc _ | Ast.Dglobal _ -> ())
    prog;
  (* Reject value-recursive structs (infinite size). *)
  List.iter
    (function
      | Ast.Dstruct sd ->
        let name = qualify st sd.Ast.sd_name in
        let rec occurs seen = function
          | Types.Struct s ->
            if List.mem s seen then
              error sd.Ast.sd_pos "struct %s is recursive by value" name
            else
              List.iter
                (fun (_, ty) -> occurs (s :: seen) ty)
                (Types.struct_fields st.tenv s)
          | Types.Tuple ts -> List.iter (occurs seen) ts
          | Types.Int | Types.Bool | Types.String | Types.Float
          | Types.Ptr _ | Types.Slice _ | Types.Map _ | Types.Unit
          | Types.Nil ->
            ()
        in
        List.iter
          (fun (_, ty) -> occurs [ name ] ty)
          (Types.struct_fields st.tenv name)
      | Ast.Dfunc _ | Ast.Dglobal _ -> ())
    prog;
  (* Pass 2: function signatures. *)
  List.iter
    (function
      | Ast.Dfunc fd ->
        if Hashtbl.mem st.sigs (qualify st fd.Ast.fd_name) then
          error fd.Ast.fd_pos "function %s is declared twice" fd.Ast.fd_name;
        Hashtbl.replace st.sigs (qualify st fd.Ast.fd_name)
          {
            sig_params =
              List.map
                (fun (_, ty) -> resolve_ty st fd.Ast.fd_pos ty)
                fd.Ast.fd_params;
            sig_results =
              List.map (resolve_ty st fd.Ast.fd_pos) fd.Ast.fd_results;
          }
      | Ast.Dstruct _ | Ast.Dglobal _ -> ())
    prog;
  (* Pass 3: globals (initializers may call functions). *)
  let globals =
    List.filter_map
      (function
        | Ast.Dglobal gd ->
          let init = Option.map (check_expr st) gd.Ast.gd_init in
          let ty =
            match (Option.map (resolve_ty st gd.Ast.gd_pos) gd.Ast.gd_ty,
                   init)
            with
            | Some t, Some i ->
              if not (Types.compatible i.Tast.ty t) then
                error gd.Ast.gd_pos "global %s initializer type mismatch"
                  gd.Ast.gd_name;
              t
            | Some t, None -> t
            | None, Some i -> i.Tast.ty
            | None, None ->
              error gd.Ast.gd_pos "global %s needs a type or initializer"
                gd.Ast.gd_name
          in
          if Hashtbl.mem st.globals (qualify st gd.Ast.gd_name) then
            error gd.Ast.gd_pos "global %s is declared twice" gd.Ast.gd_name;
          let v = fresh_var st (qualify st gd.Ast.gd_name) ty Tast.Vglobal in
          Hashtbl.replace st.globals (qualify st gd.Ast.gd_name) v;
          Some (v, init)
        | Ast.Dfunc _ | Ast.Dstruct _ -> None)
      prog
  in
  (* Pass 4: function bodies. *)
  let funcs =
    List.filter_map
      (function
        | Ast.Dfunc fd -> Some (check_func st fd)
        | Ast.Dstruct _ | Ast.Dglobal _ -> None)
      prog
  in
  {
    Tast.p_funcs = funcs;
    p_globals = globals;
    p_tenv = st.tenv;
    p_sites = List.rev st.sites;
    p_nvars = st.next_var;
  }

(** Check a whole program.  Raises {!Error} on the first type error. *)
let check (prog : Ast.program) : Tast.program = check_decls (create ()) prog

(* ------------------------------------------------------------------ *)
(* Package mode                                                        *)
(* ------------------------------------------------------------------ *)

type pkg_iface = {
  pi_pkg : string;
  pi_structs : (string * (string * Types.t) list) list;
  pi_funcs : (string * func_sig) list;
  pi_globals : (string * Tast.var) list;
}

type counters = { c_next_var : int; c_next_scope : int; c_next_site : int }

let check_package ?(imports = []) ?(first_var = 0) ?(first_scope = 0)
    ?(first_site = 0) (file : Ast.file) :
    Tast.program * pkg_iface * counters =
  let pkg = file.Ast.file_package in
  (* The main package keeps plain names so the interpreter's "main" entry
     point and single-file compiles line up; other packages qualify every
     top-level name as [pkg.name]. *)
  let st =
    create
      ~pkg:(if pkg = "main" then "" else pkg)
      ~first_var ~first_scope ~first_site ()
  in
  List.iter
    (fun (imp : Ast.import_decl) ->
      let pname = Ast.import_base imp.Ast.imp_path in
      (match Hashtbl.find_opt st.aliases imp.Ast.imp_alias with
      | Some existing when existing <> pname ->
        error imp.Ast.imp_pos "duplicate import alias %s" imp.Ast.imp_alias
      | _ -> ());
      if not (List.exists (fun pi -> pi.pi_pkg = pname) imports) then
        error imp.Ast.imp_pos "import %S: cannot find package %s"
          imp.Ast.imp_path pname;
      Hashtbl.replace st.aliases imp.Ast.imp_alias pname)
    file.Ast.file_imports;
  (* Pre-load the interfaces of the imported packages: their (qualified)
     struct types, function signatures and globals become visible exactly
     as if their declarations preceded this package's. *)
  List.iter
    (fun pi ->
      List.iter
        (fun (n, fields) -> Types.add_struct st.tenv n fields)
        pi.pi_structs;
      List.iter (fun (n, s) -> Hashtbl.replace st.sigs n s) pi.pi_funcs;
      List.iter (fun (n, v) -> Hashtbl.replace st.globals n v) pi.pi_globals)
    imports;
  let tprog = check_decls st file.Ast.file_decls in
  let q = qualify st in
  let iface =
    {
      pi_pkg = pkg;
      pi_structs =
        List.filter_map
          (function
            | Ast.Dstruct sd ->
              Some
                ( q sd.Ast.sd_name,
                  Types.struct_fields st.tenv (q sd.Ast.sd_name) )
            | Ast.Dfunc _ | Ast.Dglobal _ -> None)
          file.Ast.file_decls;
      pi_funcs =
        List.filter_map
          (function
            | Ast.Dfunc fd ->
              Some (q fd.Ast.fd_name, Hashtbl.find st.sigs (q fd.Ast.fd_name))
            | Ast.Dstruct _ | Ast.Dglobal _ -> None)
          file.Ast.file_decls;
      pi_globals =
        List.map
          (fun ((v : Tast.var), _) -> (v.Tast.v_name, v))
          tprog.Tast.p_globals;
    }
  in
  let counters =
    {
      c_next_var = st.next_var;
      c_next_scope = st.next_scope;
      c_next_site = st.next_site;
    }
  in
  (tprog, iface, counters)
