(** Surface (parsed, untyped) abstract syntax of MiniGo.

    The parser produces this AST; {!Typecheck} resolves names, checks types
    and lowers it to the typed AST ({!Tast}) consumed by the escape analysis
    and the interpreter. *)

type pos = Token.pos

(** Surface types as written by the programmer. [Tyname] refers to a
    declared struct type. *)
type ty =
  | Tyint
  | Tybool
  | Tystring
  | Tyfloat
  | Typtr of ty
  | Tyslice of ty
  | Tymap of ty * ty
  | Tyname of string

type unop =
  | Uneg  (** arithmetic negation *)
  | Unot  (** boolean not *)

type binop =
  | Badd
  | Bsub
  | Bmul
  | Bdiv
  | Bmod
  | Band_bits  (** [&] *)
  | Bor_bits  (** [|] *)
  | Bxor  (** [^] *)
  | Bshl
  | Bshr
  | Beq
  | Bne
  | Blt
  | Ble
  | Bgt
  | Bge
  | Band
  | Bor

type expr = { desc : expr_desc; pos : pos }

and expr_desc =
  | Eint of int
  | Efloat of float
  | Ebool of bool
  | Estring of string
  | Enil
  | Eident of string
  | Ebinop of binop * expr * expr
  | Eunop of unop * expr
  | Eaddr of expr  (** [&e] *)
  | Ederef of expr  (** [*e] *)
  | Eindex of expr * expr  (** [e1\[e2\]] on slices, maps and strings *)
  | Eslice of expr * expr option * expr option
      (** [e\[lo:hi\]] on slices and strings; either bound may be omitted *)
  | Efield of expr * string  (** [e.f]; auto-dereferences pointer receivers *)
  | Ecall of string * expr list
  | Emake of ty * expr list  (** [make(\[\]T, len\[, cap\])], [make(map\[K\]V)] *)
  | Enew of ty  (** [new(T)] *)
  | Ecomposite of ty * (string option * expr) list
      (** struct literal [T{f: e, ...}] or slice literal [\[\]T{e, ...}] *)
  | Eappend of expr * expr list
  | Elen of expr
  | Ecap of expr

type stmt = { sdesc : stmt_desc; spos : pos }

and stmt_desc =
  | Sdecl of string list * ty option * expr list
      (** [var x T = e] or [x, y := e1, e2]; one rhs call may produce
          several values *)
  | Sassign of expr list * expr list  (** lhs must be addressable *)
  | Sop_assign of expr * binop * expr  (** [x += e] and friends *)
  | Sincr of expr  (** [x++] *)
  | Sdecr of expr  (** [x--] *)
  | Sexpr of expr
  | Sif of expr * block * stmt option
      (** else branch is [Sblock] or a nested [Sif] *)
  | Sfor of stmt option * expr option * stmt option * block
  | Sforrange of string * expr * block  (** [for i := range e] *)
  | Sreturn of expr list
  | Sblock of block
  | Sgo of expr  (** argument must be a call *)
  | Sdefer of expr  (** argument must be a call *)
  | Spanic of expr
  | Sbreak
  | Scontinue
  | Sdelete of expr * expr  (** [delete(m, k)] *)
  | Sprint of expr list  (** [println(...)]: observable output *)

and block = stmt list

type func_decl = {
  fd_name : string;
  fd_params : (string * ty) list;
  fd_results : ty list;
  fd_body : block;
  fd_pos : pos;
}

type struct_decl = {
  sd_name : string;
  sd_fields : (string * ty) list;
  sd_pos : pos;
}

type global_decl = {
  gd_name : string;
  gd_ty : ty option;
  gd_init : expr option;
  gd_pos : pos;
}

type top_decl =
  | Dfunc of func_decl
  | Dstruct of struct_decl
  | Dglobal of global_decl

type program = top_decl list

(** One [import] declaration.  [imp_path] is the import path as written
    (the last path component is the package name); [imp_alias] is the
    local name the package is referred to by — the explicit alias when
    one was given, the path's base name otherwise. *)
type import_decl = {
  imp_path : string;
  imp_alias : string;
  imp_pos : pos;
}

(** A source file in package mode: [package] clause, imports, then
    top-level declarations.  Single-file (whole-program) sources are the
    degenerate case: package ["main"], no imports. *)
type file = {
  file_package : string;
  file_imports : import_decl list;
  file_decls : program;
}

(** Base name of an import path: ["lib/util"] imports as [util]. *)
let import_base path =
  match String.rindex_opt path '/' with
  | None -> path
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)

let rec ty_to_string = function
  | Tyint -> "int"
  | Tybool -> "bool"
  | Tystring -> "string"
  | Tyfloat -> "float"
  | Typtr t -> "*" ^ ty_to_string t
  | Tyslice t -> "[]" ^ ty_to_string t
  | Tymap (k, v) -> "map[" ^ ty_to_string k ^ "]" ^ ty_to_string v
  | Tyname s -> s
