(** Typed AST of MiniGo.

    Produced by {!Typecheck}; consumed by the escape analysis
    ([Gofree_escape]), the instrumentation pass and the interpreter.

    Every variable carries a unique id plus its declaration scope depth and
    loop depth — the [DeclDepth] and [LoopDepth] inputs of the paper's
    analysis (Defs 4.3 and 4.13).  Every allocation expression carries an
    {!alloc_site} that the analysis maps to an escape-graph location and the
    interpreter uses for per-site stack/heap accounting (Table 8). *)

type pos = Token.pos

(** A resolved variable.  Parameters and globals are flagged: parameters
    seed [Incomplete] (Def 4.12) and globals behave like the heap. *)
type var = {
  mutable v_id : int;
      (** unique; the instrumentation pass creates temporaries with a
          [-1] placeholder id and renumbers them program-wide at the end
          of compilation ({!val:program.p_nvars} grows accordingly) *)
  v_name : string;
  v_ty : Types.t;
  v_decl_depth : int;  (** nesting depth of the declaring scope; function body = 1 *)
  v_loop_depth : int;  (** number of enclosing loops at the declaration *)
  v_scope : int;  (** unique id of the declaring block *)
  v_kind : var_kind;
}

and var_kind = Vlocal | Vparam | Vglobal | Vresult of int
    (** [Vresult i]: compiler temporary holding the i-th value returned by a
        multi-value call. *)

(** What an allocation site allocates; drives both the runtime object kind
    and the Table 8 / Table 9 accounting categories. *)
type site_kind =
  | Site_slice  (** [make(\[\]T, n)] or a slice literal's backing array *)
  | Site_map  (** [make(map\[K\]V)] *)
  | Site_new  (** [new(T)] or [&T{...}] *)
  | Site_append  (** implicit backing-array growth at an [append] *)
  | Site_string  (** string concatenation result *)

type alloc_site = {
  site_id : int;
  site_kind : site_kind;
  site_pos : pos;
  site_func : string;
  site_elem_size : int;  (** element size in bytes (slice/append) or object size (new/map bucket entry) *)
  site_const_len : int option;  (** compile-time-constant length, when known *)
}

type unop = Ast.unop
type binop = Ast.binop

type expr = { ty : Types.t; pos : pos; desc : desc }

and desc =
  | Tint of int
  | Tfloat of float
  | Tbool of bool
  | Tstring of string
  | Tnil
  | Tvar of var
  | Tbinop of binop * expr * expr
  | Tunop of unop * expr
  | Taddr of lvalue  (** [&lv] *)
  | Tderef of expr
  | Tindex of expr * expr  (** slice or string indexing *)
  | Tmap_get of expr * expr  (** [m\[k\]], single-value form *)
  | Tfield of expr * int * string
      (** [e.f]; if [e] is a pointer it is implicitly dereferenced *)
  | Tcall of string * expr list
      (** user-defined function; [ty] is [Tuple] for multi-value calls *)
  | Tmake_slice of alloc_site * Types.t * expr * expr option
      (** element type, length, optional capacity *)
  | Tmake_map of alloc_site * Types.t * Types.t
  | Tnew of alloc_site * Types.t
  | Tslice_lit of alloc_site * Types.t * expr list
  | Tstruct_lit of string * expr list
      (** field initializers in declaration order; a *value* — heap
          allocation only happens via [Taddr] on it *)
  | Taddr_struct_lit of alloc_site * string * expr list  (** [&T{...}] *)
  | Tappend of alloc_site * expr * expr list
  | Tlen of expr
  | Tcap of expr
  | Titoa of expr  (** built-in int-to-string conversion *)
  | Trand of expr  (** deterministic PRNG: [rand(n)] in [0, n) *)
  | Tsubstr of expr * expr * expr  (** [substr(s, start, end)] *)
  | Tslice_sub of expr * expr option * expr option
      (** [e\[lo:hi\]]: a view sharing the backing array (slices) or a
          substring (strings) *)
  | Tcopy of expr * expr  (** [copy(dst, src)]; yields elements copied *)
  | Tmap_get_ok of expr * expr
      (** the comma-ok form [v, ok := m\[k\]]; type is a (value, bool)
          tuple *)
  | Trecover
      (** [recover()]: during panic unwinding in a deferred call, stops
          the unwind and yields the panic message; otherwise "" (MiniGo
          returns string where Go returns interface{}) *)

and lvalue =
  | Lvar of var
  | Lderef of expr  (** [*p = ...] *)
  | Lindex of expr * expr  (** [a\[i\] = ...] (slice) *)
  | Lmap of expr * expr  (** [m\[k\] = ...] *)
  | Lfield of expr * int * string  (** [s.f = ...] *)

(** Which tcfree runtime entry point an inserted free uses (Table 4). *)
type free_kind = Free_slice | Free_map | Free_obj

type stmt =
  | Sdecl of var * expr option
  | Smulti_decl of var list * expr  (** [a, b := f()] *)
  | Sassign of lvalue * expr
  | Smulti_assign of lvalue list * expr
  | Sexpr of expr
  | Sif of expr * block * block option
  | Sfor of stmt option * expr option * stmt option * block
  | Sforrange_map of var * expr * block
      (** [for k := range m]: iterate the map's keys (deterministic bucket
          order in this runtime; Go randomizes) *)
  | Sreturn of expr list
  | Sblock of block
  | Sgo of string * expr list
  | Sdefer of string * expr list
  | Spanic of expr
  | Sbreak
  | Scontinue
  | Sdelete of expr * expr
  | Sprint of expr list
  | Stcfree of var * free_kind
      (** inserted by the GoFree instrumentation (§4.5); never written by
          the programmer *)

and block = {
  b_scope : int;  (** unique block id *)
  b_depth : int;  (** scope nesting depth; function body = 1 *)
  mutable b_stmts : stmt list;
      (** mutable so the instrumentation pass can insert tcfree calls *)
}

type func = {
  f_name : string;
  f_params : var list;
  f_results : Types.t list;
  f_body : block;
  f_pos : pos;
}

type program = {
  p_funcs : func list;
  p_globals : (var * expr option) list;
  p_tenv : Types.env;
  p_sites : alloc_site list;  (** all allocation sites, by id *)
  mutable p_nvars : int;  (** number of allocated variable ids *)
}

let find_func program name =
  List.find_opt (fun f -> String.equal f.f_name name) program.p_funcs

(* ---------------------------------------------------------------- *)
(* Traversal helpers shared by analyses.                              *)
(* ---------------------------------------------------------------- *)

(** Apply [f] to every statement in a block, recursing into nested
    blocks. *)
let rec iter_stmts f (b : block) =
  List.iter
    (fun s ->
      f s;
      match s with
      | Sif (_, b1, b2) ->
        iter_stmts f b1;
        Option.iter (iter_stmts f) b2
      | Sfor (init, _, post, body) ->
        Option.iter f init;
        Option.iter f post;
        iter_stmts f body
      | Sforrange_map (_, _, body) -> iter_stmts f body
      | Sblock b -> iter_stmts f b
      | Sdecl _ | Smulti_decl _ | Sassign _ | Smulti_assign _ | Sexpr _
      | Sreturn _ | Sgo _ | Sdefer _ | Spanic _ | Sbreak | Scontinue
      | Sdelete _ | Sprint _ | Stcfree _ ->
        ())
    b.b_stmts

(** Apply [f] to every expression in a statement (shallow in blocks: use
    with {!iter_stmts} to visit a whole function). *)
let iter_stmt_exprs f s =
  let fl = function
    | Lvar _ -> ()
    | Lderef e -> f e
    | Lindex (e1, e2) | Lmap (e1, e2) -> f e1; f e2
    | Lfield (e, _, _) -> f e
  in
  match s with
  | Sdecl (_, eo) -> Option.iter f eo
  | Smulti_decl (_, e) -> f e
  | Sassign (lv, e) -> fl lv; f e
  | Smulti_assign (lvs, e) -> List.iter fl lvs; f e
  | Sexpr e -> f e
  | Sif (c, _, _) -> f c
  | Sfor (_, cond, _, _) -> Option.iter f cond
  | Sforrange_map (_, m, _) -> f m
  | Sreturn es -> List.iter f es
  | Sgo (_, es) | Sdefer (_, es) -> List.iter f es
  | Spanic e -> f e
  | Sdelete (e1, e2) -> f e1; f e2
  | Sprint es -> List.iter f es
  | Sblock _ | Sbreak | Scontinue | Stcfree _ -> ()

(** Apply [f] to [e] and all its subexpressions, outermost first. *)
let rec iter_expr f (e : expr) =
  f e;
  let fl = function
    | Lvar _ -> ()
    | Lderef e -> iter_expr f e
    | Lindex (e1, e2) | Lmap (e1, e2) -> iter_expr f e1; iter_expr f e2
    | Lfield (e, _, _) -> iter_expr f e
  in
  match e.desc with
  | Tint _ | Tfloat _ | Tbool _ | Tstring _ | Tnil | Tvar _ -> ()
  | Tbinop (_, a, b) -> iter_expr f a; iter_expr f b
  | Tunop (_, a) | Tderef a | Tlen a | Tcap a | Titoa a | Trand a ->
    iter_expr f a
  | Tsubstr (a, b, c) -> iter_expr f a; iter_expr f b; iter_expr f c
  | Tslice_sub (e, lo, hi) ->
    iter_expr f e;
    Option.iter (iter_expr f) lo;
    Option.iter (iter_expr f) hi
  | Tcopy (dst, src) -> iter_expr f dst; iter_expr f src
  | Tmap_get_ok (m, k) -> iter_expr f m; iter_expr f k
  | Trecover -> ()
  | Taddr lv -> fl lv
  | Tindex (a, b) | Tmap_get (a, b) -> iter_expr f a; iter_expr f b
  | Tfield (a, _, _) -> iter_expr f a
  | Tcall (_, args) -> List.iter (iter_expr f) args
  | Tmake_slice (_, _, len, cap) ->
    iter_expr f len;
    Option.iter (iter_expr f) cap
  | Tmake_map _ -> ()
  | Tnew _ -> ()
  | Tslice_lit (_, _, es) | Tstruct_lit (_, es)
  | Taddr_struct_lit (_, _, es) ->
    List.iter (iter_expr f) es
  | Tappend (_, s, es) ->
    iter_expr f s;
    List.iter (iter_expr f) es
