(** Per-package summary store: serialized extended parameter tags plus
    the recorded instrumentation and stack/heap decisions, keyed by a
    content hash over sources, dependency keys and configuration
    (paper §4.4's separate compilation). *)

open Minigo
module E := Gofree_escape

type entry = {
  e_pkg : string;
  e_key : string;  (** content hash this entry was built from *)
  e_nvars : int;  (** variable ids the package allocates *)
  e_nsites : int;  (** allocation sites the package allocates *)
  e_summaries : E.Summary.t list;  (** one per function, decl order *)
  e_frees : (string * int * int * Tast.free_kind) list;
      (** inserted tcfrees: function, relative var id, field index
          ([-1] for a whole-variable free), kind *)
  e_site_heap : bool list;  (** per site, in site order *)
  e_var_boxed : int list;  (** relative ids of boxed variables *)
}

(** Content hash of a package: sources + dependencies' keys (transitive
    invalidation) + pipeline configuration + format version. *)
val key :
  sources:(string * string) list ->
  dep_keys:string list ->
  config:Gofree_core.Config.t ->
  string

val to_string : entry -> string

val of_string : string -> (entry, string) result

val entry_path : dir:string -> pkg:string -> string

val save : dir:string -> entry -> unit

(** [None] when absent, unreadable or stale-format — all just "miss". *)
val load : dir:string -> pkg:string -> entry option

(** One record per analysis unit (call-graph SCC), layered {e under}
    the package entry: a package-level miss assembles its entry from
    unit hits and re-analyzes only units whose content key changed.
    Variable/site ids are relative to their {e function}'s first id, so
    they survive other functions in the package changing size. *)
type unit_record = {
  u_key : string;  (** {!Gofree_escape.Callgraph.unit_key} content key *)
  u_funcs : string list;  (** the unit's functions, unit order *)
  u_summaries : E.Summary.t list;
      (** extended parameter tags; empty when the build ran without IPA *)
  u_frees : (string * int * int * Tast.free_kind) list;
      (** inserted tcfrees: function, function-relative var id, field
          index ([-1] for a whole-variable free), kind *)
  u_sites : (string * int * bool) list;
      (** function, function-relative site id, heap decision *)
  u_boxed : (string * int) list;
      (** boxed variables: function, function-relative var id *)
}

val units_to_string : unit_record list -> string

val units_of_string : string -> (unit_record list, string) result

val units_path : dir:string -> pkg:string -> string

(** Replace the package's stored unit records with the latest full set. *)
val save_units : dir:string -> pkg:string -> unit_record list -> unit

(** [None] is just "no unit cache for the package". *)
val load_units : dir:string -> pkg:string -> unit_record list option
