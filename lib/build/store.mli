(** Per-package summary store: serialized extended parameter tags plus
    the recorded instrumentation and stack/heap decisions, keyed by a
    content hash over sources, dependency keys and configuration
    (paper §4.4's separate compilation). *)

open Minigo
module E := Gofree_escape

type entry = {
  e_pkg : string;
  e_key : string;  (** content hash this entry was built from *)
  e_nvars : int;  (** variable ids the package allocates *)
  e_nsites : int;  (** allocation sites the package allocates *)
  e_summaries : E.Summary.t list;  (** one per function, decl order *)
  e_frees : (string * int * Tast.free_kind) list;
      (** inserted tcfrees: function, relative var id, kind *)
  e_site_heap : bool list;  (** per site, in site order *)
  e_var_boxed : int list;  (** relative ids of boxed variables *)
}

(** Content hash of a package: sources + dependencies' keys (transitive
    invalidation) + pipeline configuration + format version. *)
val key :
  sources:(string * string) list ->
  dep_keys:string list ->
  config:Gofree_core.Config.t ->
  string

val to_string : entry -> string

val of_string : string -> (entry, string) result

val entry_path : dir:string -> pkg:string -> string

val save : dir:string -> entry -> unit

(** [None] when absent, unreadable or stale-format — all just "miss". *)
val load : dir:string -> pkg:string -> entry option
