(** The incremental, parallel multi-package build driver.

    Pipeline, per build:
    + load and parse every package of the tree ({!Loader});
    + schedule them into dependency waves ({!Pkg_graph});
    + typecheck sequentially in topological order, threading the
      variable/scope/site id bases so ids stay globally unique and the
      packages link without renumbering;
    + for each package, compute its content-hash key; on a cache hit
      ({!Store}) skip the escape analysis entirely and replay the
      recorded tcfree insertions, otherwise analyze the package against
      its dependencies' {e stored summaries} (paper §4.4: a callee's
      extended parameter tag is all a caller needs) — packages within a
      wave are independent and run on parallel {!Domain}s;
    + link everything into one {!Tast.program} plus the runtime's
      stack/heap and boxing decision arrays.

    The import graph is acyclic, so per-package analysis seeded with
    callee summaries computes exactly what the whole-program SCC order
    would: insertion sites and runtime metrics match a single-file
    compile of the same declarations. *)

open Minigo
module E = Gofree_escape
module Core = Gofree_core

exception Error of string

module Trace = Gofree_obs.Trace
module Json = Gofree_obs.Json

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

type pkg_report = {
  pr_name : string;
  pr_wave : int;  (** dependency wave the package was scheduled in *)
  pr_cached : bool;  (** analysis skipped, summaries came from the store *)
  pr_ms : float;  (** analysis time; 0 for cache hits *)
  pr_nfuncs : int;
  pr_nsummaries : int;
}

type stats = {
  bs_pkgs : pkg_report list;  (** topological order *)
  bs_hits : int;
  bs_misses : int;
  bs_jobs : int;
  bs_total_ms : float;
}

type result = {
  b_program : Tast.program;  (** linked and instrumented *)
  b_inserted : Core.Instrument.inserted list;
  b_site_heap : bool array;  (** indexed by absolute site id *)
  b_var_boxed : bool array;  (** indexed by absolute variable id *)
  b_stats : stats;
}

let now_ms () = Unix.gettimeofday () *. 1000.

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

(* Analyze one package against its dependencies' summaries and compress
   the outcome into a store entry.  Runs on a worker domain: everything
   it touches (its own typed program, the read-only tenv, the imported
   summary list) is either private or immutable during the wave. *)
let analyze_package ~config ~key ~name ~base_var ~nvars ~nsites ~imported
    (tp : Tast.program) : Store.entry * Core.Instrument.inserted list * float
    =
  let t0 = now_ms () in
  let compiled = Core.Pipeline.compile_program ~config ~imported tp in
  let analysis = compiled.Core.Pipeline.c_analysis in
  let own_summaries =
    List.filter_map
      (fun (f : Tast.func) ->
        Hashtbl.find_opt analysis.E.Analysis.summaries f.Tast.f_name)
      tp.Tast.p_funcs
  in
  let frees =
    List.map
      (fun (i : Core.Instrument.inserted) ->
        ( i.Core.Instrument.ins_func,
          i.Core.Instrument.ins_var.Tast.v_id - base_var,
          i.Core.Instrument.ins_kind ))
      compiled.Core.Pipeline.c_inserted
  in
  let site_heap =
    List.map
      (fun (s : Tast.alloc_site) ->
        E.Analysis.site_is_heap analysis ~func:s.Tast.site_func s)
      tp.Tast.p_sites
  in
  let boxed = ref [] in
  Hashtbl.iter
    (fun _ (fr : E.Analysis.func_result) ->
      Hashtbl.iter
        (fun var_id (l : E.Loc.t) ->
          match l.E.Loc.kind with
          | E.Loc.Kvar v
            when v.Tast.v_kind <> Tast.Vglobal && l.E.Loc.heap_alloc ->
            let rel = var_id - base_var in
            if rel >= 0 && rel < nvars && not (List.mem rel !boxed) then
              boxed := rel :: !boxed
          | _ -> ())
        fr.E.Analysis.fr_ctx.E.Build.var_locs)
    analysis.E.Analysis.funcs;
  let entry =
    {
      Store.e_pkg = name;
      e_key = key;
      e_nvars = nvars;
      e_nsites = nsites;
      e_summaries = own_summaries;
      e_frees = frees;
      e_site_heap = site_heap;
      e_var_boxed = List.sort compare !boxed;
    }
  in
  (entry, compiled.Core.Pipeline.c_inserted, now_ms () -. t0)

(** Build the multi-package tree rooted at [root].  [jobs = 0] (the
    default) picks a worker count from the machine; [force] ignores the
    cache.  Raises {!Error} (or {!Loader.Error}) on build problems. *)
let build ?(config = Core.Config.gofree) ?cache_dir ?(jobs = 0)
    ?(force = false) (root : string) : result =
  let t_start = now_ms () in
  let pkgs =
    Trace.with_span ~tid:(Trace.domain_tid ()) "load" (fun () ->
        Loader.load root)
  in
  let cache_dir =
    match cache_dir with
    | Some d -> d
    | None -> Filename.concat root ".gofree-cache"
  in
  let jobs = if jobs > 0 then jobs else default_jobs () in
  let wave_list =
    try
      Pkg_graph.waves
        (List.map (fun p -> (p.Loader.pkg_name, p.Loader.pkg_deps)) pkgs)
    with Pkg_graph.Cycle c ->
      fail "import cycle: %s" (String.concat " -> " c)
  in
  let order = List.concat wave_list in
  let pkg name = List.find (fun p -> p.Loader.pkg_name = name) pkgs in
  (* -------- sequential typecheck in topological order -------- *)
  let ifaces = Hashtbl.create 8 in
  let tprogs = Hashtbl.create 8 in
  let bases = Hashtbl.create 8 in  (* name -> (base_var, base_site) *)
  let owned = Hashtbl.create 8 in  (* name -> (nvars, nsites) *)
  let next = ref (0, 0, 0) in
  List.iter
    (fun name ->
      let p = pkg name in
      let first_var, first_scope, first_site = !next in
      let imports =
        List.map (fun d -> Hashtbl.find ifaces d) p.Loader.pkg_deps
      in
      let tp, iface, counters =
        try
          Trace.with_span ~tid:(Trace.domain_tid ())
            ("typecheck:" ^ name)
            (fun () ->
              Typecheck.check_package ~imports ~first_var ~first_scope
                ~first_site p.Loader.pkg_file)
        with Typecheck.Error (m, pos) ->
          fail "package %s: type error at %s: %s" name
            (Token.string_of_pos pos) m
      in
      Hashtbl.replace ifaces name iface;
      Hashtbl.replace tprogs name tp;
      Hashtbl.replace bases name (first_var, first_site);
      Hashtbl.replace owned name
        ( counters.Typecheck.c_next_var - first_var,
          counters.Typecheck.c_next_site - first_site );
      next :=
        ( counters.Typecheck.c_next_var,
          counters.Typecheck.c_next_scope,
          counters.Typecheck.c_next_site ))
    order;
  let total_vars, _, total_sites = !next in
  (* -------- cache keys (dep keys feed in: transitive invalidation) --- *)
  let keys = Hashtbl.create 8 in
  List.iter
    (fun name ->
      let p = pkg name in
      let dep_keys = List.map (Hashtbl.find keys) p.Loader.pkg_deps in
      Hashtbl.replace keys name
        (Store.key ~sources:p.Loader.pkg_files ~dep_keys ~config))
    order;
  let cached = Hashtbl.create 8 in
  if not force then
    List.iter
      (fun name ->
        match Store.load ~dir:cache_dir ~pkg:name with
        | Some e
          when e.Store.e_key = Hashtbl.find keys name
               && (let nv, ns = Hashtbl.find owned name in
                   e.Store.e_nvars = nv && e.Store.e_nsites = ns) ->
          Hashtbl.replace cached name e
        | _ -> ())
      order;
  (* -------- per-wave analysis; misses run on parallel domains ------- *)
  let entries = Hashtbl.create 8 in
  let inserted = Hashtbl.create 8 in
  let times = Hashtbl.create 8 in
  let wave_of = Hashtbl.create 8 in
  List.iteri
    (fun wave_idx wave ->
      List.iter (fun n -> Hashtbl.replace wave_of n wave_idx) wave;
      let hits, misses = List.partition (Hashtbl.mem cached) wave in
      if Trace.enabled () then begin
        Trace.begin_span
          ~args:
            [
              ("packages", Json.Int (List.length wave));
              ("hits", Json.Int (List.length hits));
              ("misses", Json.Int (List.length misses));
            ]
          ~tid:(Trace.domain_tid ())
          (Printf.sprintf "wave %d" wave_idx);
        List.iter
          (fun n ->
            Trace.instant
              ~args:[ ("pkg", Json.Str n) ]
              ~tid:(Trace.domain_tid ()) "cache hit")
          hits;
        List.iter
          (fun n ->
            Trace.instant
              ~args:[ ("pkg", Json.Str n) ]
              ~tid:(Trace.domain_tid ()) "cache miss")
          misses
      end;
      (* Cache hits: no analysis; re-apply the recorded frees to the
         fresh bodies, shifting stored relative ids onto this build's
         id base. *)
      List.iter
        (fun name ->
          let e = Hashtbl.find cached name in
          let tp = Hashtbl.find tprogs name in
          let base_var, _ = Hashtbl.find bases name in
          let ins =
            List.concat_map
              (fun (f : Tast.func) ->
                let frees =
                  List.filter_map
                    (fun (fn, rel, kind) ->
                      if fn = f.Tast.f_name then Some (base_var + rel, kind)
                      else None)
                    e.Store.e_frees
                in
                if frees = [] then []
                else Core.Instrument.replay_function f frees)
              tp.Tast.p_funcs
          in
          Hashtbl.replace entries name e;
          Hashtbl.replace inserted name ins;
          Hashtbl.replace times name 0.)
        hits;
      (* Misses: capture every input in the parent so worker domains
         share nothing mutable, then fan out. *)
      let tasks =
        List.map
          (fun name ->
            let p = pkg name in
            let imported =
              List.concat_map
                (fun d -> (Hashtbl.find entries d).Store.e_summaries)
                p.Loader.pkg_deps
            in
            let base_var, _ = Hashtbl.find bases name in
            let nvars, nsites = Hashtbl.find owned name in
            let key = Hashtbl.find keys name in
            let tp = Hashtbl.find tprogs name in
            fun () ->
              (* lands on the worker's track when run from a domain *)
              Trace.with_span
                ~tid:(Trace.domain_tid ())
                ("analyze:" ^ name)
                (fun () ->
                  let entry, ins, ms =
                    analyze_package ~config ~key ~name ~base_var ~nvars
                      ~nsites ~imported tp
                  in
                  (name, entry, ins, ms)))
          misses
      in
      let results =
        if jobs <= 1 || List.length tasks <= 1 then
          List.map (fun task -> task ()) tasks
        else begin
          let n = min jobs (List.length tasks) in
          let buckets = Array.make n [] in
          List.iteri
            (fun i task -> buckets.(i mod n) <- task :: buckets.(i mod n))
            tasks;
          let domains =
            Array.mapi
              (fun i tasks ->
                let tasks = List.rev tasks in
                Domain.spawn (fun () ->
                    if Trace.enabled () then begin
                      Trace.set_domain_tid (Trace.tid_worker i);
                      Trace.name_thread ~tid:(Trace.tid_worker i)
                        (Printf.sprintf "worker %d" i)
                    end;
                    List.map (fun t -> t ()) tasks))
              buckets
          in
          List.concat_map Domain.join (Array.to_list domains)
        end
      in
      List.iter
        (fun (name, entry, ins, ms) ->
          Store.save ~dir:cache_dir entry;
          Hashtbl.replace entries name entry;
          Hashtbl.replace inserted name ins;
          Hashtbl.replace times name ms)
        results;
      Trace.end_span ~tid:(Trace.domain_tid ())
        (Printf.sprintf "wave %d" wave_idx))
    wave_list;
  (* -------- link -------- *)
  Trace.begin_span ~tid:(Trace.domain_tid ()) "link";
  let tenv = Types.create_env () in
  List.iter
    (fun name ->
      let tp = Hashtbl.find tprogs name in
      Hashtbl.iter
        (fun n fields -> Types.add_struct tenv n fields)
        tp.Tast.p_tenv.Types.structs)
    order;
  let linked =
    {
      Tast.p_funcs =
        List.concat_map (fun n -> (Hashtbl.find tprogs n).Tast.p_funcs) order;
      p_globals =
        List.concat_map
          (fun n -> (Hashtbl.find tprogs n).Tast.p_globals)
          order;
      p_tenv = tenv;
      p_sites =
        List.concat_map (fun n -> (Hashtbl.find tprogs n).Tast.p_sites) order;
      p_nvars = total_vars;
    }
  in
  let site_heap = Array.make (max 1 total_sites) false in
  let var_boxed = Array.make (max 1 total_vars) false in
  List.iter
    (fun name ->
      let e = Hashtbl.find entries name in
      let base_var, base_site = Hashtbl.find bases name in
      List.iteri
        (fun i b -> if b then site_heap.(base_site + i) <- true)
        e.Store.e_site_heap;
      List.iter (fun rel -> var_boxed.(base_var + rel) <- true)
        e.Store.e_var_boxed)
    order;
  Trace.end_span ~tid:(Trace.domain_tid ()) "link";
  let reports =
    List.map
      (fun name ->
        {
          pr_name = name;
          pr_wave = Hashtbl.find wave_of name;
          pr_cached = Hashtbl.mem cached name;
          pr_ms = Hashtbl.find times name;
          pr_nfuncs =
            List.length (Hashtbl.find tprogs name).Tast.p_funcs;
          pr_nsummaries =
            List.length (Hashtbl.find entries name).Store.e_summaries;
        })
      order
  in
  let hits = List.length (List.filter (fun r -> r.pr_cached) reports) in
  {
    b_program = linked;
    b_inserted = List.concat_map (fun n -> Hashtbl.find inserted n) order;
    b_site_heap = site_heap;
    b_var_boxed = var_boxed;
    b_stats =
      {
        bs_pkgs = reports;
        bs_hits = hits;
        bs_misses = List.length reports - hits;
        bs_jobs = jobs;
        bs_total_ms = now_ms () -. t_start;
      };
  }

let pp_stats fmt (st : stats) =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-16s wave %d  %s  %3d func(s)  %d summarie(s)%s@,"
        r.pr_name r.pr_wave
        (if r.pr_cached then "cached  " else
           Printf.sprintf "%6.1fms" r.pr_ms)
        r.pr_nfuncs r.pr_nsummaries
        (if r.pr_cached then "  [cache hit]" else ""))
    st.bs_pkgs;
  Format.fprintf fmt
    "packages: %d  cache hits: %d  analyzed: %d  jobs: %d  total: %.1fms@]"
    (List.length st.bs_pkgs) st.bs_hits st.bs_misses st.bs_jobs
    st.bs_total_ms

(** Build statistics as JSON (schema [gofree-build-stats-v1]) — the
    payload of [gofreec build --stats-json]. *)
let stats_to_json (st : stats) : Json.t =
  Json.Obj
    [
      Gofree_obs.Schema.(field Build_stats);
      ( "packages",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("name", Json.Str r.pr_name);
                   ("wave", Json.Int r.pr_wave);
                   ("cached", Json.Bool r.pr_cached);
                   ("analysis_ms", Json.Float r.pr_ms);
                   ("funcs", Json.Int r.pr_nfuncs);
                   ("summaries", Json.Int r.pr_nsummaries);
                 ])
             st.bs_pkgs) );
      ("cache_hits", Json.Int st.bs_hits);
      ("cache_misses", Json.Int st.bs_misses);
      ("jobs", Json.Int st.bs_jobs);
      ("total_ms", Json.Float st.bs_total_ms);
    ]
