(** The incremental, parallel multi-package build driver.

    Pipeline, per build:
    + load and parse every package of the tree ({!Loader});
    + schedule them into dependency waves ({!Pkg_graph});
    + typecheck sequentially in topological order, threading the
      variable/scope/site id bases so ids stay globally unique and the
      packages link without renumbering;
    + for each package, compute its content-hash key; on a cache hit
      ({!Store}) skip the escape analysis entirely and replay the
      recorded tcfree insertions, otherwise analyze the package against
      its dependencies' {e stored summaries} (paper §4.4: a callee's
      extended parameter tag is all a caller needs) — packages within a
      wave are independent and run on parallel {!Domain}s, and {e
      within} a package the analysis solves call-graph SCC units on a
      shared worker pool ({!Gofree_sched.Pool});
    + on a package-level miss, consult the {e function-granular} unit
      cache: units whose content key (bodies ⊕ callee summary contents ⊕
      config) is unchanged replay their recorded insertions and
      decisions instead of re-analyzing, so one edited function
      re-solves only its own SCC plus the units whose callee-summary
      contents actually changed;
    + link everything into one {!Tast.program} plus the runtime's
      stack/heap and boxing decision arrays.

    The import graph is acyclic, so per-package analysis seeded with
    callee summaries computes exactly what the whole-program SCC order
    would: insertion sites and runtime metrics match a single-file
    compile of the same declarations — cached or not, parallel or not. *)

open Minigo
module E = Gofree_escape
module Core = Gofree_core
module Pool = Gofree_sched.Pool

exception Error of string

module Trace = Gofree_obs.Trace
module Json = Gofree_obs.Json

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

type pkg_report = {
  pr_name : string;
  pr_wave : int;  (** dependency wave the package was scheduled in *)
  pr_cached : bool;  (** analysis skipped, summaries came from the store *)
  pr_ms : float;  (** analysis time; 0 for cache hits *)
  pr_nfuncs : int;
  pr_nsummaries : int;
  pr_units : int;  (** analysis units (call-graph SCCs); 0 on pkg hits *)
  pr_unit_hits : int;  (** units replayed from the unit cache *)
}

type stats = {
  bs_pkgs : pkg_report list;  (** topological order *)
  bs_hits : int;
  bs_misses : int;
  bs_unit_hits : int;  (** units replayed instead of re-analyzed *)
  bs_unit_misses : int;  (** units actually analyzed *)
  bs_jobs : int;
  bs_total_ms : float;
}

type result = {
  b_program : Tast.program;  (** linked and instrumented *)
  b_inserted : Core.Instrument.inserted list;
  b_site_heap : bool array;  (** indexed by absolute site id *)
  b_var_boxed : bool array;  (** indexed by absolute variable id *)
  b_stats : stats;
}

let now_ms () = Unix.gettimeofday () *. 1000.

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

(* ------------------------------------------------------------------ *)
(* Function-granular unit cache                                        *)
(* ------------------------------------------------------------------ *)

(** Where unit records live between builds.  The driver only ever asks
    two things: a record by (package, content key) and "here is the
    package's complete current record set".  The daemon layers its
    resident table over the disk implementation through this same
    interface. *)
type unit_cache = {
  uc_lookup : pkg:string -> key:string -> Store.unit_record option;
  uc_commit : pkg:string -> Store.unit_record list -> unit;
}

(** Always misses, never stores: a build with package-level caching
    only (what the driver did before unit records existed). *)
let no_unit_cache =
  { uc_lookup = (fun ~pkg:_ ~key:_ -> None); uc_commit = (fun ~pkg:_ _ -> ()) }

(** The on-disk unit cache: [<dir>/<pkg>.units], loaded lazily once per
    package and replaced wholesale on commit.  Thread-safe — package
    schedulers on different domains share one instance per build. *)
let disk_unit_cache ~dir : unit_cache =
  let mutex = Mutex.create () in
  let loaded : (string, (string, Store.unit_record) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let table pkg =
    match Hashtbl.find_opt loaded pkg with
    | Some t -> t
    | None ->
      let t = Hashtbl.create 16 in
      (match Store.load_units ~dir ~pkg with
      | Some records ->
        List.iter (fun (r : Store.unit_record) ->
            Hashtbl.replace t r.Store.u_key r)
          records
      | None -> ());
      Hashtbl.replace loaded pkg t;
      t
  in
  {
    uc_lookup =
      (fun ~pkg ~key ->
        Mutex.lock mutex;
        let r = Hashtbl.find_opt (table pkg) key in
        Mutex.unlock mutex;
        r);
    uc_commit =
      (fun ~pkg records ->
        Mutex.lock mutex;
        let t = Hashtbl.create 16 in
        List.iter
          (fun (r : Store.unit_record) -> Hashtbl.replace t r.Store.u_key r)
          records;
        Hashtbl.replace loaded pkg t;
        (try Store.save_units ~dir ~pkg records
         with Sys_error _ -> ());
        Mutex.unlock mutex);
  }

(* ------------------------------------------------------------------ *)
(* Per-package analysis                                                *)
(* ------------------------------------------------------------------ *)

type pkg_outcome = {
  po_entry : Store.entry;
  po_inserted : Core.Instrument.inserted list;
  po_records : Store.unit_record list;  (** complete set, unit order *)
  po_units : int;
  po_unit_hits : int;
  po_ms : float;
}

(* First variable id of each function (over params and every declaration)
   and first site id of each function: the bases the unit records'
   function-relative ids are stored against.  Stable per function as
   long as its body is unchanged — which the unit's body hash
   guarantees — even when other functions in the package change size. *)
let func_bases (tp : Tast.program) =
  let min_var = Hashtbl.create 16 in
  List.iter
    (fun (f : Tast.func) ->
      match Core.Instrument.func_vars f with
      | [] -> ()
      | vars ->
        Hashtbl.replace min_var f.Tast.f_name
          (List.fold_left
             (fun acc (v : Tast.var) -> min acc v.Tast.v_id)
             max_int vars))
    tp.Tast.p_funcs;
  let min_site = Hashtbl.create 16 in
  List.iter
    (fun (s : Tast.alloc_site) ->
      match Hashtbl.find_opt min_site s.Tast.site_func with
      | Some m when m <= s.Tast.site_id -> ()
      | _ -> Hashtbl.replace min_site s.Tast.site_func s.Tast.site_id)
    tp.Tast.p_sites;
  (min_var, min_site)

(* Analyze one package against its dependencies' summaries and compress
   the outcome into a store entry plus per-unit records.  Runs on a
   worker domain: everything it touches (its own typed program, the
   read-only tenv, the imported summary list) is either private or
   immutable during the wave; the unit cache and the shared pool are
   thread-safe. *)
let analyze_package ~config ~key ~name ~base_var ~nvars ~nsites ~imported
    ~pool ~(lookup : pkg:string -> key:string -> Store.unit_record option)
    (tp : Tast.program) : pkg_outcome =
  let t0 = now_ms () in
  let min_var, min_site = func_bases tp in
  let var_base fn = Hashtbl.find min_var fn in
  let site_base fn = Hashtbl.find min_site fn in
  (* Records whose key matched this run, stashed at lookup time so the
     assembly below can replay them. *)
  let hit_records : (string, Store.unit_record) Hashtbl.t =
    Hashtbl.create 8
  in
  let unit_lookup ~key:ukey ~funcs =
    match lookup ~pkg:name ~key:ukey with
    | Some r when r.Store.u_funcs = funcs ->
      Hashtbl.replace hit_records ukey r;
      if Trace.enabled () then
        Trace.instant
          ~args:
            [ ("pkg", Json.Str name);
              ("funcs", Json.Str (String.concat "," funcs)) ]
          ~tid:(Trace.domain_tid ()) "unit hit";
      Some r.Store.u_summaries
    | _ ->
      if Trace.enabled () then
        Trace.instant
          ~args:
            [ ("pkg", Json.Str name);
              ("funcs", Json.Str (String.concat "," funcs)) ]
          ~tid:(Trace.domain_tid ()) "unit miss";
      None
  in
  let analysis =
    Core.Pipeline.analyze_program ~config ~imported ?pool ~unit_lookup tp
  in
  (* Which functions came out of the unit cache (no func_result). *)
  let cached_func : (string, Store.unit_record) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun (ur : E.Analysis.unit_report) ->
      if ur.E.Analysis.ur_cached then begin
        let r = Hashtbl.find hit_records ur.E.Analysis.ur_key in
        List.iter
          (fun fn -> Hashtbl.replace cached_func fn r)
          ur.E.Analysis.ur_funcs
      end)
    analysis.E.Analysis.units;
  (* Instrument in declaration order: analyzed functions run the real
     instrumentation, cached ones replay their recorded frees shifted
     onto this build's id base — same placement rules, same result. *)
  let inserted_by_func : (string, Core.Instrument.inserted list) Hashtbl.t =
    Hashtbl.create 16
  in
  let inserted =
    Trace.with_span ~tid:(Trace.domain_tid ()) "instrument" (fun () ->
        List.concat_map
          (fun (f : Tast.func) ->
            let fn = f.Tast.f_name in
            let ins =
              match Hashtbl.find_opt cached_func fn with
              | Some r ->
                let frees =
                  List.filter_map
                    (fun (func, rel, fidx, kind) ->
                      if func = fn then Some (var_base fn + rel, fidx, kind)
                      else None)
                    r.Store.u_frees
                in
                if frees = [] then []
                else
                  Core.Instrument.replay_function ~tenv:tp.Tast.p_tenv
                    ~config f frees
              | None ->
                Core.Instrument.instrument_function ~tenv:tp.Tast.p_tenv
                  analysis config f
            in
            Hashtbl.replace inserted_by_func fn ins;
            ins)
          tp.Tast.p_funcs)
  in
  let own_summaries =
    List.filter_map
      (fun (f : Tast.func) ->
        Hashtbl.find_opt analysis.E.Analysis.summaries f.Tast.f_name)
      tp.Tast.p_funcs
  in
  let frees =
    List.map
      (fun (i : Core.Instrument.inserted) ->
        ( i.Core.Instrument.ins_func,
          i.Core.Instrument.ins_var.Tast.v_id - base_var,
          (match i.Core.Instrument.ins_field with
          | Some (idx, _) -> idx
          | None -> -1),
          i.Core.Instrument.ins_kind ))
      inserted
  in
  let site_heap =
    List.map
      (fun (s : Tast.alloc_site) ->
        match Hashtbl.find_opt cached_func s.Tast.site_func with
        | Some r -> begin
          let fn = s.Tast.site_func in
          let rel = s.Tast.site_id - site_base fn in
          match
            List.find_opt
              (fun (func, r2, _) -> func = fn && r2 = rel)
              r.Store.u_sites
          with
          | Some (_, _, heap) -> heap
          | None -> true  (* unknown to the record: stay conservative *)
        end
        | None -> E.Analysis.site_is_heap analysis ~func:s.Tast.site_func s)
      tp.Tast.p_sites
  in
  (* Boxed variables, package-relative: analyzed functions from the live
     graphs, cached ones from their records. *)
  let boxed = ref [] in
  Hashtbl.iter
    (fun _ (fr : E.Analysis.func_result) ->
      Hashtbl.iter
        (fun var_id (l : E.Loc.t) ->
          match l.E.Loc.kind with
          | E.Loc.Kvar v
            when v.Tast.v_kind <> Tast.Vglobal && l.E.Loc.heap_alloc ->
            let rel = var_id - base_var in
            if rel >= 0 && rel < nvars then boxed := rel :: !boxed
          | _ -> ())
        fr.E.Analysis.fr_ctx.E.Build.var_locs)
    analysis.E.Analysis.funcs;
  Hashtbl.iter
    (fun fn (r : Store.unit_record) ->
      List.iter
        (fun (func, rel) ->
          if func = fn then
            boxed := (var_base fn + rel - base_var) :: !boxed)
        r.Store.u_boxed)
    cached_func;
  let entry =
    {
      Store.e_pkg = name;
      e_key = key;
      e_nvars = nvars;
      e_nsites = nsites;
      e_summaries = own_summaries;
      e_frees = frees;
      e_site_heap = site_heap;
      e_var_boxed = List.sort_uniq compare !boxed;
    }
  in
  (* Unit records: hits pass through unchanged, misses are compressed
     from the fresh analysis — together the package's complete set. *)
  let records =
    List.map
      (fun (ur : E.Analysis.unit_report) ->
        if ur.E.Analysis.ur_cached then
          Hashtbl.find hit_records ur.E.Analysis.ur_key
        else begin
          let funcs = ur.E.Analysis.ur_funcs in
          let u_summaries =
            List.filter_map
              (fun fn -> Hashtbl.find_opt analysis.E.Analysis.summaries fn)
              funcs
          in
          let u_frees =
            List.concat_map
              (fun fn ->
                List.map
                  (fun (i : Core.Instrument.inserted) ->
                    ( fn,
                      i.Core.Instrument.ins_var.Tast.v_id - var_base fn,
                      (match i.Core.Instrument.ins_field with
                      | Some (idx, _) -> idx
                      | None -> -1),
                      i.Core.Instrument.ins_kind ))
                  (try Hashtbl.find inserted_by_func fn
                   with Not_found -> []))
              funcs
          in
          let u_sites =
            List.filter_map
              (fun (s : Tast.alloc_site) ->
                let fn = s.Tast.site_func in
                if List.mem fn funcs then
                  Some
                    ( fn,
                      s.Tast.site_id - site_base fn,
                      E.Analysis.site_is_heap analysis ~func:fn s )
                else None)
              tp.Tast.p_sites
          in
          let u_boxed =
            List.concat_map
              (fun fn ->
                match Hashtbl.find_opt analysis.E.Analysis.funcs fn with
                | None -> []
                | Some fr ->
                  let acc = ref [] in
                  Hashtbl.iter
                    (fun var_id (l : E.Loc.t) ->
                      match l.E.Loc.kind with
                      | E.Loc.Kvar v
                        when v.Tast.v_kind <> Tast.Vglobal
                             && l.E.Loc.heap_alloc ->
                        acc := (fn, var_id - var_base fn) :: !acc
                      | _ -> ())
                    fr.E.Analysis.fr_ctx.E.Build.var_locs;
                  List.sort_uniq compare !acc)
              funcs
          in
          { Store.u_key = ur.E.Analysis.ur_key; u_funcs = funcs;
            u_summaries; u_frees; u_sites; u_boxed }
        end)
      analysis.E.Analysis.units
  in
  let unit_hits =
    List.length
      (List.filter
         (fun (ur : E.Analysis.unit_report) -> ur.E.Analysis.ur_cached)
         analysis.E.Analysis.units)
  in
  {
    po_entry = entry;
    po_inserted = inserted;
    po_records = records;
    po_units = List.length analysis.E.Analysis.units;
    po_unit_hits = unit_hits;
    po_ms = now_ms () -. t0;
  }

(** Build the multi-package tree rooted at [root].  [jobs = 0] (the
    default) picks a worker count from the machine; [force] ignores both
    cache levels (package entries and unit records) while still
    refreshing them.  [unit_cache] defaults to the on-disk cache under
    [cache_dir]; pass {!no_unit_cache} for package-level caching only.
    Raises {!Error} (or {!Loader.Error}) on build problems. *)
let build ?(config = Core.Config.gofree) ?cache_dir ?(jobs = 0)
    ?(force = false) ?unit_cache (root : string) : result =
  let t_start = now_ms () in
  let pkgs =
    Trace.with_span ~tid:(Trace.domain_tid ()) "load" (fun () ->
        Loader.load root)
  in
  let cache_dir =
    match cache_dir with
    | Some d -> d
    | None -> Filename.concat root ".gofree-cache"
  in
  let jobs = if jobs > 0 then jobs else default_jobs () in
  let unit_cache =
    match unit_cache with
    | Some uc -> uc
    | None -> disk_unit_cache ~dir:cache_dir
  in
  (* force = cold: no lookups on either level, but commits still refresh
     both caches for the next build. *)
  let lookup =
    if force then fun ~pkg:_ ~key:_ -> None else unit_cache.uc_lookup
  in
  let wave_list =
    try
      Pkg_graph.waves
        (List.map (fun p -> (p.Loader.pkg_name, p.Loader.pkg_deps)) pkgs)
    with Pkg_graph.Cycle c ->
      fail "import cycle: %s" (String.concat " -> " c)
  in
  let order = List.concat wave_list in
  let pkg name = List.find (fun p -> p.Loader.pkg_name = name) pkgs in
  (* -------- sequential typecheck in topological order -------- *)
  let ifaces = Hashtbl.create 8 in
  let tprogs = Hashtbl.create 8 in
  let bases = Hashtbl.create 8 in  (* name -> (base_var, base_site) *)
  let owned = Hashtbl.create 8 in  (* name -> (nvars, nsites) *)
  let next = ref (0, 0, 0) in
  List.iter
    (fun name ->
      let p = pkg name in
      let first_var, first_scope, first_site = !next in
      let imports =
        List.map (fun d -> Hashtbl.find ifaces d) p.Loader.pkg_deps
      in
      let tp, iface, counters =
        try
          Trace.with_span ~tid:(Trace.domain_tid ())
            ("typecheck:" ^ name)
            (fun () ->
              Typecheck.check_package ~imports ~first_var ~first_scope
                ~first_site p.Loader.pkg_file)
        with Typecheck.Error (m, pos) ->
          fail "package %s: type error at %s: %s" name
            (Token.string_of_pos pos) m
      in
      Hashtbl.replace ifaces name iface;
      Hashtbl.replace tprogs name tp;
      Hashtbl.replace bases name (first_var, first_site);
      Hashtbl.replace owned name
        ( counters.Typecheck.c_next_var - first_var,
          counters.Typecheck.c_next_site - first_site );
      next :=
        ( counters.Typecheck.c_next_var,
          counters.Typecheck.c_next_scope,
          counters.Typecheck.c_next_site ))
    order;
  let total_vars, _, total_sites = !next in
  (* -------- cache keys (dep keys feed in: transitive invalidation) --- *)
  let keys = Hashtbl.create 8 in
  List.iter
    (fun name ->
      let p = pkg name in
      let dep_keys = List.map (Hashtbl.find keys) p.Loader.pkg_deps in
      Hashtbl.replace keys name
        (Store.key ~sources:p.Loader.pkg_files ~dep_keys ~config))
    order;
  let cached = Hashtbl.create 8 in
  if not force then
    List.iter
      (fun name ->
        match Store.load ~dir:cache_dir ~pkg:name with
        | Some e
          when e.Store.e_key = Hashtbl.find keys name
               && (let nv, ns = Hashtbl.find owned name in
                   e.Store.e_nvars = nv && e.Store.e_nsites = ns) ->
          Hashtbl.replace cached name e
        | _ -> ())
      order;
  (* One worker pool for the whole build: package schedulers (bucket
     domains, below) fan their ready analysis units out to it.  Workers
     never submit, so a full queue cannot deadlock. *)
  let pool =
    if jobs > 1 then Some (Pool.create ~workers:jobs ()) else None
  in
  Fun.protect ~finally:(fun () -> Option.iter Pool.shutdown pool)
  @@ fun () ->
  (* -------- per-wave analysis; misses run on parallel domains ------- *)
  let entries = Hashtbl.create 8 in
  let inserted = Hashtbl.create 8 in
  let times = Hashtbl.create 8 in
  let unit_counts = Hashtbl.create 8 in  (* name -> (units, unit hits) *)
  let wave_of = Hashtbl.create 8 in
  List.iteri
    (fun wave_idx wave ->
      List.iter (fun n -> Hashtbl.replace wave_of n wave_idx) wave;
      let hits, misses = List.partition (Hashtbl.mem cached) wave in
      if Trace.enabled () then begin
        Trace.begin_span
          ~args:
            [
              ("packages", Json.Int (List.length wave));
              ("hits", Json.Int (List.length hits));
              ("misses", Json.Int (List.length misses));
            ]
          ~tid:(Trace.domain_tid ())
          (Printf.sprintf "wave %d" wave_idx);
        List.iter
          (fun n ->
            Trace.instant
              ~args:[ ("pkg", Json.Str n) ]
              ~tid:(Trace.domain_tid ()) "cache hit")
          hits;
        List.iter
          (fun n ->
            Trace.instant
              ~args:[ ("pkg", Json.Str n) ]
              ~tid:(Trace.domain_tid ()) "cache miss")
          misses
      end;
      (* Cache hits: no analysis; re-apply the recorded frees to the
         fresh bodies, shifting stored relative ids onto this build's
         id base. *)
      List.iter
        (fun name ->
          let e = Hashtbl.find cached name in
          let tp = Hashtbl.find tprogs name in
          let base_var, _ = Hashtbl.find bases name in
          let ins =
            List.concat_map
              (fun (f : Tast.func) ->
                let frees =
                  List.filter_map
                    (fun (fn, rel, fidx, kind) ->
                      if fn = f.Tast.f_name then
                        Some (base_var + rel, fidx, kind)
                      else None)
                    e.Store.e_frees
                in
                if frees = [] then []
                else
                  Core.Instrument.replay_function ~tenv:tp.Tast.p_tenv
                    ~config f frees)
              tp.Tast.p_funcs
          in
          Hashtbl.replace entries name e;
          Hashtbl.replace inserted name ins;
          Hashtbl.replace times name 0.;
          Hashtbl.replace unit_counts name (0, 0))
        hits;
      (* Misses: capture every input in the parent so worker domains
         share nothing mutable, then fan out. *)
      let tasks =
        List.map
          (fun name ->
            let p = pkg name in
            let imported =
              List.concat_map
                (fun d -> (Hashtbl.find entries d).Store.e_summaries)
                p.Loader.pkg_deps
            in
            let base_var, _ = Hashtbl.find bases name in
            let nvars, nsites = Hashtbl.find owned name in
            let key = Hashtbl.find keys name in
            let tp = Hashtbl.find tprogs name in
            fun () ->
              (* lands on the worker's track when run from a domain *)
              Trace.with_span
                ~tid:(Trace.domain_tid ())
                ("analyze:" ^ name)
                (fun () ->
                  let outcome =
                    analyze_package ~config ~key ~name ~base_var ~nvars
                      ~nsites ~imported ~pool ~lookup tp
                  in
                  (name, outcome)))
          misses
      in
      let results =
        if jobs <= 1 || List.length tasks <= 1 then
          List.map (fun task -> task ()) tasks
        else begin
          let n = min jobs (List.length tasks) in
          let buckets = Array.make n [] in
          List.iteri
            (fun i task -> buckets.(i mod n) <- task :: buckets.(i mod n))
            tasks;
          let domains =
            Array.mapi
              (fun i tasks ->
                let tasks = List.rev tasks in
                Domain.spawn (fun () ->
                    if Trace.enabled () then begin
                      Trace.set_domain_tid (Trace.tid_worker i);
                      Trace.name_thread ~tid:(Trace.tid_worker i)
                        (Printf.sprintf "worker %d" i)
                    end;
                    List.map (fun t -> t ()) tasks))
              buckets
          in
          List.concat_map Domain.join (Array.to_list domains)
        end
      in
      List.iter
        (fun (name, (o : pkg_outcome)) ->
          Store.save ~dir:cache_dir o.po_entry;
          unit_cache.uc_commit ~pkg:name o.po_records;
          Hashtbl.replace entries name o.po_entry;
          Hashtbl.replace inserted name o.po_inserted;
          Hashtbl.replace times name o.po_ms;
          Hashtbl.replace unit_counts name (o.po_units, o.po_unit_hits))
        results;
      Trace.end_span ~tid:(Trace.domain_tid ())
        (Printf.sprintf "wave %d" wave_idx))
    wave_list;
  (* -------- link -------- *)
  Trace.begin_span ~tid:(Trace.domain_tid ()) "link";
  let tenv = Types.create_env () in
  List.iter
    (fun name ->
      let tp = Hashtbl.find tprogs name in
      Hashtbl.iter
        (fun n fields -> Types.add_struct tenv n fields)
        tp.Tast.p_tenv.Types.structs)
    order;
  let linked =
    {
      Tast.p_funcs =
        List.concat_map (fun n -> (Hashtbl.find tprogs n).Tast.p_funcs) order;
      p_globals =
        List.concat_map
          (fun n -> (Hashtbl.find tprogs n).Tast.p_globals)
          order;
      p_tenv = tenv;
      p_sites =
        List.concat_map (fun n -> (Hashtbl.find tprogs n).Tast.p_sites) order;
      p_nvars = total_vars;
    }
  in
  (* Instrumentation temporaries (field frees, hoisted returns) carry
     placeholder ids until the whole program is assembled; renumber
     them now, in program order, so ids are deterministic however the
     per-package instrumentation was scheduled.  Grows [p_nvars]. *)
  Core.Instrument.assign_temp_ids linked;
  let site_heap = Array.make (max 1 total_sites) false in
  let var_boxed = Array.make (max 1 linked.Tast.p_nvars) false in
  List.iter
    (fun name ->
      let e = Hashtbl.find entries name in
      let base_var, base_site = Hashtbl.find bases name in
      List.iteri
        (fun i b -> if b then site_heap.(base_site + i) <- true)
        e.Store.e_site_heap;
      List.iter (fun rel -> var_boxed.(base_var + rel) <- true)
        e.Store.e_var_boxed)
    order;
  Trace.end_span ~tid:(Trace.domain_tid ()) "link";
  let reports =
    List.map
      (fun name ->
        let units, unit_hits = Hashtbl.find unit_counts name in
        {
          pr_name = name;
          pr_wave = Hashtbl.find wave_of name;
          pr_cached = Hashtbl.mem cached name;
          pr_ms = Hashtbl.find times name;
          pr_nfuncs =
            List.length (Hashtbl.find tprogs name).Tast.p_funcs;
          pr_nsummaries =
            List.length (Hashtbl.find entries name).Store.e_summaries;
          pr_units = units;
          pr_unit_hits = unit_hits;
        })
      order
  in
  let hits = List.length (List.filter (fun r -> r.pr_cached) reports) in
  let unit_hits =
    List.fold_left (fun acc r -> acc + r.pr_unit_hits) 0 reports
  in
  let unit_misses =
    List.fold_left (fun acc r -> acc + (r.pr_units - r.pr_unit_hits)) 0
      reports
  in
  {
    b_program = linked;
    b_inserted = List.concat_map (fun n -> Hashtbl.find inserted n) order;
    b_site_heap = site_heap;
    b_var_boxed = var_boxed;
    b_stats =
      {
        bs_pkgs = reports;
        bs_hits = hits;
        bs_misses = List.length reports - hits;
        bs_unit_hits = unit_hits;
        bs_unit_misses = unit_misses;
        bs_jobs = jobs;
        bs_total_ms = now_ms () -. t_start;
      };
  }

let pp_stats fmt (st : stats) =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun r ->
      Format.fprintf fmt
        "%-16s wave %d  %s  %3d func(s)  %d summarie(s)%s%s@,"
        r.pr_name r.pr_wave
        (if r.pr_cached then "cached  " else
           Printf.sprintf "%6.1fms" r.pr_ms)
        r.pr_nfuncs r.pr_nsummaries
        (if r.pr_cached then "  [cache hit]"
         else
           Printf.sprintf "  [%d/%d unit(s) cached]" r.pr_unit_hits
             r.pr_units)
        "")
    st.bs_pkgs;
  Format.fprintf fmt
    "packages: %d  cache hits: %d  analyzed: %d  unit hits: %d  units \
     analyzed: %d  jobs: %d  total: %.1fms@]"
    (List.length st.bs_pkgs) st.bs_hits st.bs_misses st.bs_unit_hits
    st.bs_unit_misses st.bs_jobs st.bs_total_ms

(** Build statistics as JSON (schema [gofree-build-stats-v1]) — the
    payload of [gofreec build --stats-json]. *)
let stats_to_json (st : stats) : Json.t =
  Json.Obj
    [
      Gofree_obs.Schema.(field Build_stats);
      ( "packages",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("name", Json.Str r.pr_name);
                   ("wave", Json.Int r.pr_wave);
                   ("cached", Json.Bool r.pr_cached);
                   ("analysis_ms", Json.Float r.pr_ms);
                   ("funcs", Json.Int r.pr_nfuncs);
                   ("summaries", Json.Int r.pr_nsummaries);
                   ("units", Json.Int r.pr_units);
                   ("unit_hits", Json.Int r.pr_unit_hits);
                 ])
             st.bs_pkgs) );
      ("cache_hits", Json.Int st.bs_hits);
      ("cache_misses", Json.Int st.bs_misses);
      ("unit_hits", Json.Int st.bs_unit_hits);
      ("units_analyzed", Json.Int st.bs_unit_misses);
      ("jobs", Json.Int st.bs_jobs);
      ("total_ms", Json.Float st.bs_total_ms);
    ]
