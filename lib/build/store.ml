(** The per-package summary store (paper §4.4's separate-compilation
    story made concrete).

    One file per package, [<cache>/<pkg>.sum], holding everything a
    downstream build needs without re-analyzing the package:
    - the extended parameter tags ({!Gofree_escape.Summary.t}) of its
      functions, for callers' IPA;
    - the tcfree insertions ((function, variable, kind) triples) so the
      cache-hit path can re-instrument the freshly typechecked bodies;
    - the stack/heap decision per allocation site and the set of boxed
      variables, which the runtime needs and which only the (skipped)
      analysis could otherwise provide.

    Variable and site ids are stored {e relative} to the package's id
    base: absolute ids shift whenever an upstream package changes size,
    but the relative ids are stable because typechecking is
    deterministic.

    The cache key is a content hash over the package's sources, its
    dependencies' keys (transitive invalidation) and the pipeline
    configuration. *)

open Minigo
module E = Gofree_escape

(* Bump when the file layout changes: a stale-format file then simply
   misses. *)
let format_version = "gofree-sum-v2"

type entry = {
  e_pkg : string;
  e_key : string;  (** content hash this entry was built from *)
  e_nvars : int;  (** variable ids the package allocates *)
  e_nsites : int;  (** allocation sites the package allocates *)
  e_summaries : E.Summary.t list;  (** one per function, decl order *)
  e_frees : (string * int * int * Tast.free_kind) list;
      (** inserted tcfrees: function, relative var id, field index
          ([-1] for a whole-variable free), kind *)
  e_site_heap : bool list;  (** per site, in site order *)
  e_var_boxed : int list;  (** relative ids of boxed variables *)
}

(* ---------------------------------------------------------------- *)
(* Cache keys                                                        *)
(* ---------------------------------------------------------------- *)

(* [Config.signature] destructures the record exhaustively, so a new
   config field that is not part of the cache key fails to compile. *)
let config_signature = Gofree_core.Config.signature

let key ~(sources : (string * string) list) ~(dep_keys : string list)
    ~(config : Gofree_core.Config.t) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf format_version;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (config_signature config);
  Buffer.add_char buf '\n';
  List.iter
    (fun (name, src) ->
      Buffer.add_string buf name;
      Buffer.add_char buf '\000';
      Buffer.add_string buf src;
      Buffer.add_char buf '\000')
    sources;
  List.iter
    (fun k ->
      Buffer.add_string buf k;
      Buffer.add_char buf '\n')
    dep_keys;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ---------------------------------------------------------------- *)
(* Serialization                                                     *)
(* ---------------------------------------------------------------- *)

let kind_atom = function
  | Tast.Free_slice -> "slice"
  | Tast.Free_map -> "map"
  | Tast.Free_obj -> "obj"

let kind_of_atom = function
  | "slice" -> Some Tast.Free_slice
  | "map" -> Some Tast.Free_map
  | "obj" -> Some Tast.Free_obj
  | _ -> None

let to_sexps (e : entry) : E.Sexp.t list =
  let atom s = E.Sexp.Atom s in
  let int n = atom (string_of_int n) in
  [
    E.Sexp.List [ atom "format"; atom format_version ];
    E.Sexp.List [ atom "package"; atom e.e_pkg ];
    E.Sexp.List [ atom "key"; atom e.e_key ];
    E.Sexp.List [ atom "nvars"; int e.e_nvars ];
    E.Sexp.List [ atom "nsites"; int e.e_nsites ];
    E.Sexp.List
      (atom "summaries" :: List.map E.Summary.to_sexp e.e_summaries);
    E.Sexp.List
      (atom "frees"
      :: List.map
           (fun (func, rel, fidx, kind) ->
             E.Sexp.List
               [ atom "free"; atom func; int rel; int fidx;
                 atom (kind_atom kind) ])
           e.e_frees);
    E.Sexp.List
      (atom "site-heap"
      :: List.map (fun b -> atom (string_of_bool b)) e.e_site_heap);
    E.Sexp.List (atom "var-boxed" :: List.map int e.e_var_boxed);
  ]

let to_string (e : entry) : string =
  String.concat "\n" (List.map E.Sexp.to_string (to_sexps e)) ^ "\n"

exception Bad of string

let of_string (s : string) : (entry, string) result =
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let int_atom = function
    | E.Sexp.Atom a -> begin
      match int_of_string_opt a with
      | Some n -> n
      | None -> fail "expected an integer, got %s" a
    end
    | E.Sexp.List _ -> fail "expected an integer"
  in
  let bool_atom = function
    | E.Sexp.Atom "true" -> true
    | E.Sexp.Atom "false" -> false
    | _ -> fail "expected a boolean"
  in
  match E.Sexp.of_string_many s with
  | Error m -> Error m
  | Ok forms -> begin
    let field name =
      List.find_map
        (function
          | E.Sexp.List (E.Sexp.Atom head :: rest) when head = name ->
            Some rest
          | _ -> None)
        forms
    in
    let req name =
      match field name with
      | Some rest -> rest
      | None -> fail "missing (%s ...)" name
    in
    match
      let str1 name =
        match req name with
        | [ E.Sexp.Atom a ] -> a
        | _ -> fail "malformed (%s ...)" name
      in
      if str1 "format" <> format_version then
        fail "stale format %s" (str1 "format");
      let summaries =
        List.map
          (fun sx ->
            match E.Summary.of_sexp sx with
            | Ok s -> s
            | Error m -> fail "bad summary: %s" m)
          (req "summaries")
      in
      let frees =
        List.map
          (function
            | E.Sexp.List
                [ E.Sexp.Atom "free"; E.Sexp.Atom func; rel; fidx;
                  E.Sexp.Atom k ]
              -> begin
              match kind_of_atom k with
              | Some kind -> (func, int_atom rel, int_atom fidx, kind)
              | None -> fail "bad free kind %s" k
            end
            | _ -> fail "malformed free")
          (req "frees")
      in
      {
        e_pkg = str1 "package";
        e_key = str1 "key";
        e_nvars = int_atom (List.nth (req "nvars") 0);
        e_nsites = int_atom (List.nth (req "nsites") 0);
        e_summaries = summaries;
        e_frees = frees;
        e_site_heap = List.map bool_atom (req "site-heap");
        e_var_boxed = List.map int_atom (req "var-boxed");
      }
    with
    | e -> Ok e
    | exception Bad m -> Error m
    | exception Failure m -> Error m
  end

(* ---------------------------------------------------------------- *)
(* Function-granular unit records                                    *)
(* ---------------------------------------------------------------- *)

(* One record per analysis unit (call-graph SCC), layered {e under} the
   package entry: a package-level miss can still assemble most of its
   entry from unit hits, re-analyzing only the units whose content key
   changed.  Variable and site ids are stored relative to their
   {e function}'s first id (not the package base): they stay stable even
   when an earlier function in the same package grows or shrinks. *)

let units_format_version = "gofree-units-v2"

type unit_record = {
  u_key : string;  (** {!Gofree_escape.Callgraph.unit_key} content key *)
  u_funcs : string list;  (** the unit's functions, unit order *)
  u_summaries : E.Summary.t list;
      (** extended parameter tags; empty when the build ran without IPA *)
  u_frees : (string * int * int * Tast.free_kind) list;
      (** inserted tcfrees: function, function-relative var id, field
          index ([-1] for a whole-variable free), kind *)
  u_sites : (string * int * bool) list;
      (** function, function-relative site id, heap decision *)
  u_boxed : (string * int) list;
      (** boxed variables: function, function-relative var id *)
}

let unit_record_to_sexp (u : unit_record) : E.Sexp.t =
  let atom s = E.Sexp.Atom s in
  let int n = atom (string_of_int n) in
  E.Sexp.List
    [
      atom "unit";
      E.Sexp.List [ atom "key"; atom u.u_key ];
      E.Sexp.List (atom "funcs" :: List.map atom u.u_funcs);
      E.Sexp.List
        (atom "summaries" :: List.map E.Summary.to_sexp u.u_summaries);
      E.Sexp.List
        (atom "frees"
        :: List.map
             (fun (func, rel, fidx, kind) ->
               E.Sexp.List
                 [ atom "free"; atom func; int rel; int fidx;
                   atom (kind_atom kind) ])
             u.u_frees);
      E.Sexp.List
        (atom "sites"
        :: List.map
             (fun (func, rel, heap) ->
               E.Sexp.List
                 [ atom "site"; atom func; int rel;
                   atom (string_of_bool heap) ])
             u.u_sites);
      E.Sexp.List
        (atom "boxed"
        :: List.map
             (fun (func, rel) ->
               E.Sexp.List [ atom "box"; atom func; int rel ])
             u.u_boxed);
    ]

let unit_record_of_sexp (sx : E.Sexp.t) : (unit_record, string) result =
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let int_atom = function
    | E.Sexp.Atom a -> begin
      match int_of_string_opt a with
      | Some n -> n
      | None -> fail "expected an integer, got %s" a
    end
    | E.Sexp.List _ -> fail "expected an integer"
  in
  let str_atom = function
    | E.Sexp.Atom a -> a
    | E.Sexp.List _ -> fail "expected an atom"
  in
  match sx with
  | E.Sexp.List (E.Sexp.Atom "unit" :: fields) -> begin
    let field name =
      List.find_map
        (function
          | E.Sexp.List (E.Sexp.Atom head :: rest) when head = name ->
            Some rest
          | _ -> None)
        fields
    in
    let req name =
      match field name with
      | Some rest -> rest
      | None -> fail "missing (%s ...) in unit" name
    in
    match
      {
        u_key =
          (match req "key" with
          | [ E.Sexp.Atom a ] -> a
          | _ -> fail "malformed (key ...)");
        u_funcs = List.map str_atom (req "funcs");
        u_summaries =
          List.map
            (fun sx ->
              match E.Summary.of_sexp sx with
              | Ok s -> s
              | Error m -> fail "bad summary: %s" m)
            (req "summaries");
        u_frees =
          List.map
            (function
              | E.Sexp.List
                  [ E.Sexp.Atom "free"; E.Sexp.Atom func; rel; fidx;
                    E.Sexp.Atom k ] -> begin
                match kind_of_atom k with
                | Some kind -> (func, int_atom rel, int_atom fidx, kind)
                | None -> fail "bad free kind %s" k
              end
              | _ -> fail "malformed free")
            (req "frees");
        u_sites =
          List.map
            (function
              | E.Sexp.List
                  [ E.Sexp.Atom "site"; E.Sexp.Atom func; rel;
                    E.Sexp.Atom heap ] -> begin
                match bool_of_string_opt heap with
                | Some h -> (func, int_atom rel, h)
                | None -> fail "bad site decision %s" heap
              end
              | _ -> fail "malformed site")
            (req "sites");
        u_boxed =
          List.map
            (function
              | E.Sexp.List [ E.Sexp.Atom "box"; E.Sexp.Atom func; rel ] ->
                (func, int_atom rel)
              | _ -> fail "malformed box")
            (req "boxed");
      }
    with
    | u -> Ok u
    | exception Bad m -> Error m
    | exception Failure m -> Error m
  end
  | _ -> Error "expected (unit ...)"

let units_to_string (records : unit_record list) : string =
  String.concat "\n"
    (E.Sexp.to_string
       (E.Sexp.List
          [ E.Sexp.Atom "format"; E.Sexp.Atom units_format_version ])
    :: List.map
         (fun u -> E.Sexp.to_string (unit_record_to_sexp u))
         records)
  ^ "\n"

let units_of_string (s : string) : (unit_record list, string) result =
  match E.Sexp.of_string_many s with
  | Error m -> Error m
  | Ok [] -> Error "empty unit file"
  | Ok (header :: records) -> begin
    match header with
    | E.Sexp.List [ E.Sexp.Atom "format"; E.Sexp.Atom v ]
      when v = units_format_version -> begin
      let rec parse acc = function
        | [] -> Ok (List.rev acc)
        | sx :: rest -> begin
          match unit_record_of_sexp sx with
          | Ok u -> parse (u :: acc) rest
          | Error m -> Error m
        end
      in
      parse [] records
    end
    | _ -> Error "stale unit-file format"
  end

(* ---------------------------------------------------------------- *)
(* Files                                                             *)
(* ---------------------------------------------------------------- *)

let entry_path ~dir ~pkg = Filename.concat dir (pkg ^ ".sum")

let units_path ~dir ~pkg = Filename.concat dir (pkg ^ ".units")

let save ~dir (e : entry) : unit =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = entry_path ~dir ~pkg:e.e_pkg in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (to_string e);
  close_out oc;
  Sys.rename tmp path

(** Load a package's stored entry; [None] when absent, unreadable or in
    a stale format (all three just mean "cache miss"). *)
let load ~dir ~pkg : entry option =
  let path = entry_path ~dir ~pkg in
  if not (Sys.file_exists path) then None
  else begin
    match
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      of_string s
    with
    | Ok e -> Some e
    | Error _ -> None
    | exception Sys_error _ -> None
  end

(** Replace the package's stored unit records with [records] (the full
    set from the latest analysis, so the file never accumulates dead
    units). *)
let save_units ~dir ~pkg (records : unit_record list) : unit =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = units_path ~dir ~pkg in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (units_to_string records);
  close_out oc;
  Sys.rename tmp path

(** Load a package's unit records; [None] is just "no unit cache". *)
let load_units ~dir ~pkg : unit_record list option =
  let path = units_path ~dir ~pkg in
  if not (Sys.file_exists path) then None
  else begin
    match
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      units_of_string s
    with
    | Ok records -> Some records
    | Error _ -> None
    | exception Sys_error _ -> None
  end
