(** The per-package summary store (paper §4.4's separate-compilation
    story made concrete).

    One file per package, [<cache>/<pkg>.sum], holding everything a
    downstream build needs without re-analyzing the package:
    - the extended parameter tags ({!Gofree_escape.Summary.t}) of its
      functions, for callers' IPA;
    - the tcfree insertions ((function, variable, kind) triples) so the
      cache-hit path can re-instrument the freshly typechecked bodies;
    - the stack/heap decision per allocation site and the set of boxed
      variables, which the runtime needs and which only the (skipped)
      analysis could otherwise provide.

    Variable and site ids are stored {e relative} to the package's id
    base: absolute ids shift whenever an upstream package changes size,
    but the relative ids are stable because typechecking is
    deterministic.

    The cache key is a content hash over the package's sources, its
    dependencies' keys (transitive invalidation) and the pipeline
    configuration. *)

open Minigo
module E = Gofree_escape

(* Bump when the file layout changes: a stale-format file then simply
   misses. *)
let format_version = "gofree-sum-v1"

type entry = {
  e_pkg : string;
  e_key : string;  (** content hash this entry was built from *)
  e_nvars : int;  (** variable ids the package allocates *)
  e_nsites : int;  (** allocation sites the package allocates *)
  e_summaries : E.Summary.t list;  (** one per function, decl order *)
  e_frees : (string * int * Tast.free_kind) list;
      (** inserted tcfrees: function, relative var id, kind *)
  e_site_heap : bool list;  (** per site, in site order *)
  e_var_boxed : int list;  (** relative ids of boxed variables *)
}

(* ---------------------------------------------------------------- *)
(* Cache keys                                                        *)
(* ---------------------------------------------------------------- *)

let config_signature (c : Gofree_core.Config.t) =
  Printf.sprintf "tcfree=%b targets=%s ipa=%b backprop=%b"
    c.Gofree_core.Config.insert_tcfree
    (match c.Gofree_core.Config.targets with
    | Gofree_core.Config.Slices_and_maps -> "slices+maps"
    | Gofree_core.Config.All_pointers -> "all")
    c.Gofree_core.Config.ipa c.Gofree_core.Config.backprop

let key ~(sources : (string * string) list) ~(dep_keys : string list)
    ~(config : Gofree_core.Config.t) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf format_version;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (config_signature config);
  Buffer.add_char buf '\n';
  List.iter
    (fun (name, src) ->
      Buffer.add_string buf name;
      Buffer.add_char buf '\000';
      Buffer.add_string buf src;
      Buffer.add_char buf '\000')
    sources;
  List.iter
    (fun k ->
      Buffer.add_string buf k;
      Buffer.add_char buf '\n')
    dep_keys;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ---------------------------------------------------------------- *)
(* Serialization                                                     *)
(* ---------------------------------------------------------------- *)

let kind_atom = function
  | Tast.Free_slice -> "slice"
  | Tast.Free_map -> "map"
  | Tast.Free_obj -> "obj"

let kind_of_atom = function
  | "slice" -> Some Tast.Free_slice
  | "map" -> Some Tast.Free_map
  | "obj" -> Some Tast.Free_obj
  | _ -> None

let to_sexps (e : entry) : E.Sexp.t list =
  let atom s = E.Sexp.Atom s in
  let int n = atom (string_of_int n) in
  [
    E.Sexp.List [ atom "format"; atom format_version ];
    E.Sexp.List [ atom "package"; atom e.e_pkg ];
    E.Sexp.List [ atom "key"; atom e.e_key ];
    E.Sexp.List [ atom "nvars"; int e.e_nvars ];
    E.Sexp.List [ atom "nsites"; int e.e_nsites ];
    E.Sexp.List
      (atom "summaries" :: List.map E.Summary.to_sexp e.e_summaries);
    E.Sexp.List
      (atom "frees"
      :: List.map
           (fun (func, rel, kind) ->
             E.Sexp.List
               [ atom "free"; atom func; int rel; atom (kind_atom kind) ])
           e.e_frees);
    E.Sexp.List
      (atom "site-heap"
      :: List.map (fun b -> atom (string_of_bool b)) e.e_site_heap);
    E.Sexp.List (atom "var-boxed" :: List.map int e.e_var_boxed);
  ]

let to_string (e : entry) : string =
  String.concat "\n" (List.map E.Sexp.to_string (to_sexps e)) ^ "\n"

exception Bad of string

let of_string (s : string) : (entry, string) result =
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let int_atom = function
    | E.Sexp.Atom a -> begin
      match int_of_string_opt a with
      | Some n -> n
      | None -> fail "expected an integer, got %s" a
    end
    | E.Sexp.List _ -> fail "expected an integer"
  in
  let bool_atom = function
    | E.Sexp.Atom "true" -> true
    | E.Sexp.Atom "false" -> false
    | _ -> fail "expected a boolean"
  in
  match E.Sexp.of_string_many s with
  | Error m -> Error m
  | Ok forms -> begin
    let field name =
      List.find_map
        (function
          | E.Sexp.List (E.Sexp.Atom head :: rest) when head = name ->
            Some rest
          | _ -> None)
        forms
    in
    let req name =
      match field name with
      | Some rest -> rest
      | None -> fail "missing (%s ...)" name
    in
    match
      let str1 name =
        match req name with
        | [ E.Sexp.Atom a ] -> a
        | _ -> fail "malformed (%s ...)" name
      in
      if str1 "format" <> format_version then
        fail "stale format %s" (str1 "format");
      let summaries =
        List.map
          (fun sx ->
            match E.Summary.of_sexp sx with
            | Ok s -> s
            | Error m -> fail "bad summary: %s" m)
          (req "summaries")
      in
      let frees =
        List.map
          (function
            | E.Sexp.List
                [ E.Sexp.Atom "free"; E.Sexp.Atom func; rel; E.Sexp.Atom k ]
              -> begin
              match kind_of_atom k with
              | Some kind -> (func, int_atom rel, kind)
              | None -> fail "bad free kind %s" k
            end
            | _ -> fail "malformed free")
          (req "frees")
      in
      {
        e_pkg = str1 "package";
        e_key = str1 "key";
        e_nvars = int_atom (List.nth (req "nvars") 0);
        e_nsites = int_atom (List.nth (req "nsites") 0);
        e_summaries = summaries;
        e_frees = frees;
        e_site_heap = List.map bool_atom (req "site-heap");
        e_var_boxed = List.map int_atom (req "var-boxed");
      }
    with
    | e -> Ok e
    | exception Bad m -> Error m
    | exception Failure m -> Error m
  end

(* ---------------------------------------------------------------- *)
(* Files                                                             *)
(* ---------------------------------------------------------------- *)

let entry_path ~dir ~pkg = Filename.concat dir (pkg ^ ".sum")

let save ~dir (e : entry) : unit =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = entry_path ~dir ~pkg:e.e_pkg in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (to_string e);
  close_out oc;
  Sys.rename tmp path

(** Load a package's stored entry; [None] when absent, unreadable or in
    a stale format (all three just mean "cache miss"). *)
let load ~dir ~pkg : entry option =
  let path = entry_path ~dir ~pkg in
  if not (Sys.file_exists path) then None
  else begin
    match
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      of_string s
    with
    | Ok e -> Some e
    | Error _ -> None
    | exception Sys_error _ -> None
  end
