(** Import-graph scheduling: Kahn levels for the parallel build, cycle
    detection with a readable witness. *)

exception Cycle of string list

(** Group packages (name → imported names) into dependency waves: every
    package's imports live in strictly earlier waves, names sorted
    within a wave.  Raises {!Cycle} on an import cycle. *)
val waves : (string * string list) list -> string list list

(** Flat topological order (concatenated waves). *)
val topo_order : (string * string list) list -> string list
