(** The import graph: cycle detection and topological scheduling.

    [waves] computes Kahn levels — wave [i] holds every package whose
    imports all live in waves [< i] — which is exactly the parallelism
    structure of the build: packages within one wave are independent and
    can be analyzed concurrently.  Import cycles are illegal (as in Go);
    the offending cycle is reported by name. *)

exception Cycle of string list

(* A cycle certainly exists among [nodes]; walk dep edges until a name
   repeats to produce a readable witness. *)
let find_cycle deps_of nodes =
  match nodes with
  | [] -> []
  | start :: _ ->
    let rec walk trail name =
      match List.find_opt (String.equal name) trail with
      | Some _ ->
        (* drop the tail before the first occurrence *)
        let rec from = function
          | [] -> []
          | x :: rest -> if String.equal x name then x :: rest else from rest
        in
        from (List.rev (name :: trail))
      | None ->
        let next =
          List.find_opt (fun d -> List.mem d nodes) (deps_of name)
        in
        (match next with
        | None -> List.rev (name :: trail)  (* unreachable for true cycles *)
        | Some d -> walk (name :: trail) d)
    in
    walk [] start

(** [waves pkgs] where [pkgs] maps package name → imported package
    names.  Returns the packages grouped into dependency levels, names
    sorted within each wave (deterministic schedule).  Edges to unknown
    names are ignored (the loader has already validated imports).
    Raises {!Cycle} with a witness path on a cyclic import graph. *)
let waves (pkgs : (string * string list) list) : string list list =
  let names = List.map fst pkgs in
  let deps_of name =
    match List.assoc_opt name pkgs with
    | Some ds -> List.filter (fun d -> List.mem d names) ds
    | None -> []
  in
  let placed = Hashtbl.create 16 in
  let rec go acc remaining =
    if remaining = [] then List.rev acc
    else begin
      let ready =
        List.filter
          (fun n -> List.for_all (Hashtbl.mem placed) (deps_of n))
          remaining
      in
      if ready = [] then raise (Cycle (find_cycle deps_of remaining));
      let ready = List.sort compare ready in
      List.iter (fun n -> Hashtbl.replace placed n ()) ready;
      go (ready :: acc)
        (List.filter (fun n -> not (Hashtbl.mem placed n)) remaining)
    end
  in
  go [] names

(** Flat topological order (concatenated waves). *)
let topo_order pkgs = List.concat (waves pkgs)
