(** Package loader for multi-package MiniGo trees.

    Layout convention, mirroring a Go module rooted at [DIR]:
    - source files directly in [DIR] form package [main];
    - every (non-hidden) subdirectory holding source files is one
      package, its import path being the directory's path relative to
      the root and its package name the path's base component.

    A package may span several files; all must carry the same [package]
    clause, and their imports are merged. *)

open Minigo

exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

type package = {
  pkg_name : string;  (** package name (= import-path base) *)
  pkg_path : string;  (** import path, relative to the build root *)
  pkg_dir : string;  (** directory on disk *)
  pkg_files : (string * string) list;  (** file name → source, sorted *)
  pkg_file : Ast.file;  (** all files merged into one *)
  pkg_deps : string list;  (** imported package names, sorted, deduped *)
}

let is_source f =
  Filename.check_suffix f ".go" || Filename.check_suffix f ".minigo"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let list_dir dir = Sys.readdir dir |> Array.to_list |> List.sort compare

(* _build-style and hidden directories (including the cache) are not
   packages. *)
let skip_dir name =
  String.length name = 0 || name.[0] = '.' || name.[0] = '_'

let parse_one ~path source : Ast.file =
  try Parser.parse_file source with
  | Lexer.Error (m, pos) ->
    fail "%s:%s: lex error: %s" path (Token.string_of_pos pos) m
  | Parser.Error (m, pos) ->
    fail "%s:%s: parse error: %s" path (Token.string_of_pos pos) m

(* Merge the files of one package: same package clause everywhere,
   imports unioned (one local alias cannot name two different paths),
   declarations concatenated in file order. *)
let merge ~what (files : (string * Ast.file) list) : Ast.file =
  match files with
  | [] -> fail "package %s has no source files" what
  | (first_name, first) :: _ ->
    let package = first.Ast.file_package in
    List.iter
      (fun (name, f) ->
        if f.Ast.file_package <> package then
          fail "%s: package %s conflicts with %s in %s" name
            f.Ast.file_package package first_name)
      files;
    let imports =
      List.fold_left
        (fun acc (name, f) ->
          List.fold_left
            (fun acc (imp : Ast.import_decl) ->
              match
                List.find_opt
                  (fun (i : Ast.import_decl) ->
                    i.Ast.imp_alias = imp.Ast.imp_alias)
                  acc
              with
              | Some prev when prev.Ast.imp_path <> imp.Ast.imp_path ->
                fail "%s: import alias %s refers to both %S and %S" name
                  imp.Ast.imp_alias prev.Ast.imp_path imp.Ast.imp_path
              | Some _ -> acc
              | None -> acc @ [ imp ])
            acc f.Ast.file_imports)
        [] files
    in
    {
      Ast.file_package = package;
      file_imports = imports;
      file_decls = List.concat_map (fun (_, f) -> f.Ast.file_decls) files;
    }

let load_package ~root ~rel_path : package option =
  let dir = if rel_path = "" then root else Filename.concat root rel_path in
  let sources = List.filter is_source (list_dir dir) in
  if sources = [] then None
  else begin
    let files =
      List.map (fun f -> (f, read_file (Filename.concat dir f))) sources
    in
    let parsed =
      List.map
        (fun (f, src) -> (f, parse_one ~path:(Filename.concat dir f) src))
        files
    in
    let expected =
      if rel_path = "" then "main" else Ast.import_base rel_path
    in
    let merged = merge ~what:(if rel_path = "" then "main" else rel_path)
        parsed in
    if merged.Ast.file_package <> expected then
      fail "%s: found package %s, expected package %s"
        (if rel_path = "" then root else rel_path)
        merged.Ast.file_package expected;
    let deps =
      List.sort_uniq compare
        (List.map
           (fun (i : Ast.import_decl) -> Ast.import_base i.Ast.imp_path)
           merged.Ast.file_imports)
    in
    Some
      {
        pkg_name = merged.Ast.file_package;
        pkg_path = rel_path;
        pkg_dir = dir;
        pkg_files = files;
        pkg_file = merged;
        pkg_deps = deps;
      }
  end

(** Load every package of the tree rooted at [root].  The result always
    contains package [main]; imports are checked to resolve to loaded
    packages. *)
let load (root : string) : package list =
  if not (Sys.file_exists root && Sys.is_directory root) then
    fail "%s is not a directory" root;
  (* root files = package main; each subdirectory tree = one package per
     directory that holds sources *)
  let rec subdirs rel acc =
    let dir = if rel = "" then root else Filename.concat root rel in
    List.fold_left
      (fun acc entry ->
        let child_rel =
          if rel = "" then entry else Filename.concat rel entry
        in
        if
          (not (skip_dir entry))
          && Sys.is_directory (Filename.concat root child_rel)
        then subdirs child_rel (child_rel :: acc)
        else acc)
      acc (list_dir dir)
  in
  let rels = "" :: List.rev (subdirs "" []) in
  let pkgs = List.filter_map (fun rel -> load_package ~root ~rel_path:rel) rels in
  if not (List.exists (fun p -> p.pkg_name = "main") pkgs) then
    fail "%s: no main package (no source files at the root)" root;
  (* Package names must be unique: they key the summary store and the
     qualified namespace. *)
  List.iter
    (fun p ->
      match
        List.find_opt
          (fun q -> q.pkg_name = p.pkg_name && q.pkg_path < p.pkg_path)
          pkgs
      with
      | Some q ->
        fail "duplicate package name %s (%s and %s)" p.pkg_name
          (if q.pkg_path = "" then "." else q.pkg_path)
          p.pkg_path
      | None -> ())
    pkgs;
  (* Imports must resolve to loaded packages by exact path. *)
  List.iter
    (fun p ->
      List.iter
        (fun (i : Ast.import_decl) ->
          if
            not
              (List.exists (fun q -> q.pkg_path = i.Ast.imp_path) pkgs)
          then
            fail "package %s imports %S, which is not in the build tree"
              p.pkg_name i.Ast.imp_path)
        p.pkg_file.Ast.file_imports)
    pkgs;
  pkgs
