(** Incremental, parallel multi-package build driver: topological
    typechecking with threaded id bases, per-package escape analysis
    against stored dependency summaries (§4.4), two-level content-hash
    caching (package entries over function-granular unit records),
    wave-parallel analysis on OCaml domains with in-package analysis
    units fanned out to a shared worker pool, and linking into one
    runnable {!Tast.program}. *)

open Minigo
module Core := Gofree_core

exception Error of string

type pkg_report = {
  pr_name : string;
  pr_wave : int;  (** dependency wave the package was scheduled in *)
  pr_cached : bool;  (** analysis skipped, summaries came from the store *)
  pr_ms : float;  (** analysis time; 0 for cache hits *)
  pr_nfuncs : int;
  pr_nsummaries : int;
  pr_units : int;  (** analysis units (call-graph SCCs); 0 on pkg hits *)
  pr_unit_hits : int;  (** units replayed from the unit cache *)
}

type stats = {
  bs_pkgs : pkg_report list;  (** topological order *)
  bs_hits : int;
  bs_misses : int;
  bs_unit_hits : int;  (** units replayed instead of re-analyzed *)
  bs_unit_misses : int;  (** units actually analyzed *)
  bs_jobs : int;
  bs_total_ms : float;
}

type result = {
  b_program : Tast.program;  (** linked and instrumented *)
  b_inserted : Core.Instrument.inserted list;
  b_site_heap : bool array;  (** indexed by absolute site id *)
  b_var_boxed : bool array;  (** indexed by absolute variable id *)
  b_stats : stats;
}

(** The function-granular cache the driver consults on package-level
    misses: a record by (package, unit content key), and wholesale
    replacement of a package's record set after its analysis.  Both
    must be thread-safe (package schedulers run on parallel domains). *)
type unit_cache = {
  uc_lookup : pkg:string -> key:string -> Store.unit_record option;
  uc_commit : pkg:string -> Store.unit_record list -> unit;
}

(** Always misses, never stores — package-level caching only. *)
val no_unit_cache : unit_cache

(** The on-disk cache ([<dir>/<pkg>.units]), lazily loaded, replaced
    wholesale on commit; thread-safe. *)
val disk_unit_cache : dir:string -> unit_cache

(** Build the tree rooted at the directory.  [cache_dir] defaults to
    [<root>/.gofree-cache]; [jobs = 0] picks a worker count from the
    machine; [force] ignores both cache levels while still refreshing
    them.  [unit_cache] defaults to {!disk_unit_cache} under
    [cache_dir].  Raises {!Error} or {!Loader.Error} on build
    problems. *)
val build :
  ?config:Core.Config.t ->
  ?cache_dir:string ->
  ?jobs:int ->
  ?force:bool ->
  ?unit_cache:unit_cache ->
  string ->
  result

val pp_stats : Format.formatter -> stats -> unit

(** Build statistics as JSON (schema [gofree-build-stats-v1]) — the
    payload of [gofreec build --stats-json]. *)
val stats_to_json : stats -> Gofree_obs.Json.t
