(** Incremental, parallel multi-package build driver: topological
    typechecking with threaded id bases, per-package escape analysis
    against stored dependency summaries (§4.4), content-hash caching,
    wave-parallel analysis on OCaml domains, and linking into one
    runnable {!Tast.program}. *)

open Minigo
module Core := Gofree_core

exception Error of string

type pkg_report = {
  pr_name : string;
  pr_wave : int;  (** dependency wave the package was scheduled in *)
  pr_cached : bool;  (** analysis skipped, summaries came from the store *)
  pr_ms : float;  (** analysis time; 0 for cache hits *)
  pr_nfuncs : int;
  pr_nsummaries : int;
}

type stats = {
  bs_pkgs : pkg_report list;  (** topological order *)
  bs_hits : int;
  bs_misses : int;
  bs_jobs : int;
  bs_total_ms : float;
}

type result = {
  b_program : Tast.program;  (** linked and instrumented *)
  b_inserted : Core.Instrument.inserted list;
  b_site_heap : bool array;  (** indexed by absolute site id *)
  b_var_boxed : bool array;  (** indexed by absolute variable id *)
  b_stats : stats;
}

(** Build the tree rooted at the directory.  [cache_dir] defaults to
    [<root>/.gofree-cache]; [jobs = 0] picks a worker count from the
    machine; [force] ignores the cache.  Raises {!Error} or
    {!Loader.Error} on build problems. *)
val build :
  ?config:Core.Config.t ->
  ?cache_dir:string ->
  ?jobs:int ->
  ?force:bool ->
  string ->
  result

val pp_stats : Format.formatter -> stats -> unit

(** Build statistics as JSON (schema [gofree-build-stats-v1]) — the
    payload of [gofreec build --stats-json]. *)
val stats_to_json : stats -> Gofree_obs.Json.t
