(** Package loader for multi-package MiniGo trees: files at the root are
    package [main]; each subdirectory holding sources is one package,
    imported by its path relative to the root. *)

open Minigo

exception Error of string

type package = {
  pkg_name : string;  (** package name (= import-path base) *)
  pkg_path : string;  (** import path, relative to the build root *)
  pkg_dir : string;  (** directory on disk *)
  pkg_files : (string * string) list;  (** file name → source, sorted *)
  pkg_file : Ast.file;  (** all files merged into one *)
  pkg_deps : string list;  (** imported package names, sorted, deduped *)
}

(** Load every package of the tree rooted at the directory.  Raises
    {!Error} on parse errors, a missing main package, duplicate package
    names, or imports that do not resolve within the tree. *)
val load : string -> package list
