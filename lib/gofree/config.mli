(** GoFree pipeline configuration; the defaults match the paper's shipped
    system (§6.5: slices and maps only, IPA on, map-growth freeing on). *)

type free_targets =
  | Slices_and_maps  (** the paper's choice (§6.5) *)
  | All_pointers  (** also free [new]/[&T{}] objects (ablation) *)

type t = {
  insert_tcfree : bool;  (** [false] reproduces stock Go *)
  targets : free_targets;
  ipa : bool;  (** extended parameter tags (§4.4) *)
  backprop : bool;
      (** fig. 5 lines 10–13; disabling is unsound — robustness ablation
          only *)
}

(** The paper's configuration. *)
val gofree : t

(** Canonical cache-key signature (exhaustive over the record: adding a
    config field without extending it is a compile error, not a silent
    cache-aliasing bug).  Used by the summary store, the analysis-unit
    keys and the daemon's resident caches. *)
val signature : t -> string

(** Stock Go: no tcfree insertion. *)
val go : t

val all_targets : t

val no_ipa : t

val unsound_no_backprop : t
