(** GoFree pipeline configuration; the defaults match the paper's shipped
    system (§6.5: slices and maps only, IPA on, map-growth freeing on).
    The {!precision} record carries the opt-in precision modes layered on
    top of the paper's analysis. *)

type free_targets =
  | Slices_and_maps  (** the paper's choice (§6.5) *)
  | All_pointers  (** also free [new]/[&T{}] objects (ablation) *)

type free_placement =
  | Scope_exit  (** the paper's placement (§5) *)
  | Last_use  (** free after the last syntactic use / local alias use *)

type precision = {
  field_sensitive : bool;
      (** per-field points-to/escape facts for one-hop field projections *)
  placement : free_placement;
}

type t = {
  insert_tcfree : bool;  (** [false] reproduces stock Go *)
  targets : free_targets;
  ipa : bool;  (** extended parameter tags (§4.4) *)
  backprop : bool;
      (** fig. 5 lines 10–13; disabling is unsound — robustness ablation
          only *)
  precision : precision;
}

(** The paper's precision: field-insensitive, scope-exit placement. *)
val baseline_precision : precision

(** Both precision upgrades on. *)
val precise_precision : precision

(** The paper's configuration. *)
val gofree : t

val placement_str : free_placement -> string

val placement_of_string : string -> free_placement option

(** Canonical cache-key signature in [cfg-v2;key=value;...] form
    (exhaustive over the record: adding a config field without extending
    it is a compile error, not a silent cache-aliasing bug).  Used by
    the summary store, the analysis-unit keys and the daemon's resident
    caches. *)
val signature : t -> string

(** Stock Go: no tcfree insertion. *)
val go : t

val all_targets : t

val no_ipa : t

val unsound_no_backprop : t

(** Field-sensitive escape tracking only. *)
val field_sensitive : t

(** Last-use free placement only. *)
val last_use : t

(** Both precision upgrades ({!field_sensitive} + {!last_use}). *)
val precise : t
