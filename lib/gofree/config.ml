(** GoFree pipeline configuration.

    The defaults match the paper's shipped configuration: explicit
    deallocation of slices and maps only (§6.5 motivates the choice via
    Table 8), inter-procedural content tags enabled, map-growth freeing
    enabled. The other combinations exist for the ablation benchmarks. *)

type free_targets =
  | Slices_and_maps  (** the paper's choice (§6.5) *)
  | All_pointers  (** also free [new]/[&T{}] objects through raw pointers *)

type t = {
  insert_tcfree : bool;
      (** master switch: [false] reproduces stock Go compilation *)
  targets : free_targets;
  ipa : bool;
      (** use extended parameter tags; [false] forces default summaries at
          every call site (ablation: kills cross-function freeing) *)
  backprop : bool;
      (** GoFree's leaf→root propagation (fig. 5 lines 10–13); disabling
          it makes the completeness analysis unsound — used only by the
          robustness ablation to show the poison test catching it *)
}

let gofree =
  { insert_tcfree = true; targets = Slices_and_maps; ipa = true;
    backprop = true }

(** Canonical cache-key signature of a configuration.  The record
    pattern below is deliberately exhaustive and wildcard-free: adding a
    field to {!t} without extending the signature then fails to compile
    instead of silently aliasing cache entries built under different
    configurations. *)
let signature (c : t) : string =
  let { insert_tcfree; targets; ipa; backprop } = c in
  Printf.sprintf "tcfree=%b targets=%s ipa=%b backprop=%b" insert_tcfree
    (match targets with
    | Slices_and_maps -> "slices+maps"
    | All_pointers -> "all")
    ipa backprop

let go = { gofree with insert_tcfree = false }

let all_targets = { gofree with targets = All_pointers }

let no_ipa = { gofree with ipa = false }

let unsound_no_backprop = { gofree with backprop = false }
