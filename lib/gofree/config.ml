(** GoFree pipeline configuration.

    The defaults match the paper's shipped configuration: explicit
    deallocation of slices and maps only (§6.5 motivates the choice via
    Table 8), inter-procedural content tags enabled, map-growth freeing
    enabled.  The other combinations exist for the ablation benchmarks
    and for the opt-in precision modes (field-sensitive escape tracking
    and last-use free placement). *)

type free_targets =
  | Slices_and_maps  (** the paper's choice (§6.5) *)
  | All_pointers  (** also free [new]/[&T{}] objects through raw pointers *)

type free_placement =
  | Scope_exit
      (** the paper's placement: tcfree at the end of the declaring
          scope (§5) *)
  | Last_use
      (** liveness-extended placement: tcfree after the last syntactic
          use of the variable (or any local alias of it), falling back
          to scope exit when the last use is a control-transfer
          statement that cannot be safely rewritten *)

type precision = {
  field_sensitive : bool;
      (** key points-to/escape facts per struct field (one-hop field
          projections of local struct / pointer-to-struct variables)
          instead of collapsing every field into the whole object;
          enables freeing slice/map-valued fields of local structs *)
  placement : free_placement;
}

type t = {
  insert_tcfree : bool;
      (** master switch: [false] reproduces stock Go compilation *)
  targets : free_targets;
  ipa : bool;
      (** use extended parameter tags; [false] forces default summaries at
          every call site (ablation: kills cross-function freeing) *)
  backprop : bool;
      (** GoFree's leaf→root propagation (fig. 5 lines 10–13); disabling
          it makes the completeness analysis unsound — used only by the
          robustness ablation to show the poison test catching it *)
  precision : precision;
}

let baseline_precision = { field_sensitive = false; placement = Scope_exit }

let precise_precision = { field_sensitive = true; placement = Last_use }

let gofree =
  { insert_tcfree = true; targets = Slices_and_maps; ipa = true;
    backprop = true; precision = baseline_precision }

let placement_str = function
  | Scope_exit -> "scope-exit"
  | Last_use -> "last-use"

let placement_of_string = function
  | "scope-exit" -> Some Scope_exit
  | "last-use" -> Some Last_use
  | _ -> None

(** Canonical cache-key signature of a configuration, in [key=value;]
    form behind a [cfg-v2;] version prefix (bumping the prefix
    invalidates every disk cache at once instead of silently aliasing
    entries across format generations).  The record patterns below are
    deliberately exhaustive and wildcard-free: adding a field to {!t}
    or {!precision} without extending the signature then fails to
    compile instead of silently aliasing cache entries built under
    different configurations. *)
let signature (c : t) : string =
  let { insert_tcfree; targets; ipa; backprop; precision } = c in
  let { field_sensitive; placement } = precision in
  Printf.sprintf "cfg-v2;tcfree=%b;targets=%s;ipa=%b;backprop=%b;fields=%b;placement=%s;"
    insert_tcfree
    (match targets with
    | Slices_and_maps -> "slices+maps"
    | All_pointers -> "all")
    ipa backprop field_sensitive (placement_str placement)

let go = { gofree with insert_tcfree = false }

let all_targets = { gofree with targets = All_pointers }

let no_ipa = { gofree with ipa = false }

let unsound_no_backprop = { gofree with backprop = false }

let field_sensitive =
  { gofree with precision = { baseline_precision with field_sensitive = true } }

let last_use =
  { gofree with precision = { baseline_precision with placement = Last_use } }

let precise = { gofree with precision = precise_precision }
