(** tcfree instrumentation (paper §4.5).

    For every variable whose location satisfies [ToFree] (Def 4.17) and
    whose type is in the configured target set, a [Stcfree] statement is
    inserted into the variable's declaration scope.  Placement follows
    the configured precision:

    - [Scope_exit] (the paper's placement): last statement of the scope,
      before a trailing [return]/[break]/[continue]/[panic] so the free
      is live.  If the trailing return still mentions the variable the
      free is skipped (left to GC) rather than risking a use-after-free
      in the return expression.
    - [Last_use]: directly after the last scope-level statement that
      mentions the variable or any of its syntactic aliases (any
      variable assigned from an expression mentioning a member of the
      closure — this covers sub-slices, field loads, and values routed
      through calls such as [w := f(v)]).  A trailing return that is
      itself the last use is rewritten to [tmp := e; tcfree(v);
      return tmp]: the return expression is fully evaluated before the
      free, and [ToFree] already guarantees the returned value cannot
      reference the freed object.  Functions containing [defer] or [go]
      fall back to scope-exit placement wholesale (§5's safety
      protocol).

    Field-sensitive mode additionally frees per-field slots
    ({!Gofree_escape.Analysis.to_free_fields}) by loading the field into
    a compiler temporary and freeing the temporary — always at scope
    exit, and always {e before} the base variable's own free so the
    field load never reads a freed object.  Temporaries carry a [-1]
    placeholder id until {!assign_temp_ids} renumbers them
    program-wide. *)

open Minigo

type inserted = {
  ins_func : string;
  ins_var : Tast.var;  (** the base variable *)
  ins_field : (int * string) option;
      (** [Some (index, name)] for a field-slot free *)
  ins_kind : Tast.free_kind;
}

let free_kind_of_type (targets : Config.free_targets) (ty : Types.t) :
    Tast.free_kind option =
  match (ty, targets) with
  | Types.Slice _, _ -> Some Tast.Free_slice
  | Types.Map _, _ -> Some Tast.Free_map
  | Types.Ptr _, Config.All_pointers -> Some Tast.Free_obj
  | Types.Ptr _, Config.Slices_and_maps -> None
  | _ -> None

(* Does the expression mention variable [v]? *)
let mentions_var (v : Tast.var) (e : Tast.expr) =
  let found = ref false in
  Tast.iter_expr
    (fun e ->
      match e.Tast.desc with
      | Tast.Tvar v' when v'.Tast.v_id = v.Tast.v_id -> found := true
      | _ -> ())
    e;
  !found

let stmt_mentions_var v s =
  let found = ref false in
  Tast.iter_stmt_exprs (fun e -> if mentions_var v e then found := true) s;
  !found

(* Insert [free_stmts] at the end of [stmts], before a trailing control
   transfer.  Returns None when the insertion would be unsafe (the
   trailing statement still uses the variable). *)
let insert_seq_at_end (v : Tast.var) free_stmts stmts =
  let rec split_last acc = function
    | [] -> (List.rev acc, None)
    | [ last ] -> (List.rev acc, Some last)
    | s :: rest -> split_last (s :: acc) rest
  in
  match split_last [] stmts with
  | prefix, Some ((Tast.Sreturn _ | Tast.Spanic _) as last) ->
    if stmt_mentions_var v last then None
    else Some (prefix @ free_stmts @ [ last ])
  | prefix, Some ((Tast.Sbreak | Tast.Scontinue) as last) ->
    Some (prefix @ free_stmts @ [ last ])
  | _, Some _ | _, None -> Some (stmts @ free_stmts)

let insert_at_end v free_stmt stmts = insert_seq_at_end v [ free_stmt ] stmts

(* Find the block with scope id [scope] inside [b]. *)
let rec find_block (b : Tast.block) scope : Tast.block option =
  if b.Tast.b_scope = scope then Some b
  else begin
    let found = ref None in
    let check_block b' =
      if !found = None then found := find_block b' scope
    in
    List.iter
      (fun s ->
        match s with
        | Tast.Sif (_, b1, b2) ->
          check_block b1;
          Option.iter check_block b2
        | Tast.Sfor (_, _, _, body) -> check_block body
        | Tast.Sforrange_map (_, _, body) -> check_block body
        | Tast.Sblock b' -> check_block b'
        | _ -> ())
      b.Tast.b_stmts;
    !found
  end

(* ------------------------------------------------------------------ *)
(* Last-use placement (purely syntactic: identical on fresh analysis    *)
(* and on cache replay)                                                 *)
(* ------------------------------------------------------------------ *)

let func_has_defer_or_go (f : Tast.func) =
  let found = ref false in
  Tast.iter_stmts
    (fun s ->
      match s with
      | Tast.Sdefer _ | Tast.Sgo _ -> found := true
      | _ -> ())
    f.Tast.f_body;
  !found

(* Apply [f] to [s] and every statement nested inside it. *)
let rec iter_stmt_deep f (s : Tast.stmt) =
  f s;
  let block b = List.iter (iter_stmt_deep f) b.Tast.b_stmts in
  match s with
  | Tast.Sif (_, b1, b2) ->
    block b1;
    Option.iter block b2
  | Tast.Sfor (init, _, post, body) ->
    Option.iter (iter_stmt_deep f) init;
    Option.iter (iter_stmt_deep f) post;
    block body
  | Tast.Sforrange_map (_, _, body) -> block body
  | Tast.Sblock b -> block b
  | _ -> ()

(* The syntactic alias closure of [v]: every variable bound from an
   expression that mentions a member.  Over-approximates may-alias —
   arithmetic on a member also taints — which only delays the free. *)
let alias_closure (f : Tast.func) (v : Tast.var) : (int, unit) Hashtbl.t =
  let members = Hashtbl.create 8 in
  Hashtbl.replace members v.Tast.v_id ();
  let mentions_member e =
    let found = ref false in
    Tast.iter_expr
      (fun e ->
        match e.Tast.desc with
        | Tast.Tvar w when Hashtbl.mem members w.Tast.v_id -> found := true
        | _ -> ())
      e;
    !found
  in
  let changed = ref true in
  while !changed do
    changed := false;
    let add (w : Tast.var) =
      if not (Hashtbl.mem members w.Tast.v_id) then begin
        Hashtbl.replace members w.Tast.v_id ();
        changed := true
      end
    in
    Tast.iter_stmts
      (fun s ->
        match s with
        | Tast.Sdecl (w, Some e) when mentions_member e -> add w
        | Tast.Smulti_decl (ws, e) when mentions_member e ->
          List.iter add ws
        | Tast.Sassign (Tast.Lvar w, e) when mentions_member e -> add w
        | Tast.Smulti_assign (lvs, e) when mentions_member e ->
          List.iter (function Tast.Lvar w -> add w | _ -> ()) lvs
        | _ -> ())
      f.Tast.f_body
  done;
  members

(* Does [s] (deeply) mention or bind any closure member? *)
let stmt_mentions_members members (s : Tast.stmt) =
  let found = ref false in
  let mem (w : Tast.var) = Hashtbl.mem members w.Tast.v_id in
  let check_e e =
    Tast.iter_expr
      (fun e ->
        match e.Tast.desc with
        | Tast.Tvar w when mem w -> found := true
        | _ -> ())
      e
  in
  iter_stmt_deep
    (fun s' ->
      Tast.iter_stmt_exprs check_e s';
      match s' with
      | Tast.Stcfree (w, _) when mem w -> found := true
      | Tast.Sdecl (w, _) when mem w -> found := true
      | Tast.Smulti_decl (ws, _) when List.exists mem ws -> found := true
      | Tast.Sforrange_map (w, _, _) when mem w -> found := true
      | Tast.Sassign (Tast.Lvar w, _) when mem w -> found := true
      | _ -> ())
    s;
  !found

(* A compiler temporary; the placeholder id is renumbered program-wide
   by {!assign_temp_ids}.  The name must be derived from the insertion
   itself (never from a counter): instrumentation runs on parallel
   worker domains and the names feed build fingerprints. *)
let mk_temp ~name ~ty (block : Tast.block) (v : Tast.var) : Tast.var =
  {
    Tast.v_id = -1;
    v_name = name;
    v_ty = ty;
    v_decl_depth = block.Tast.b_depth;
    v_loop_depth = v.Tast.v_loop_depth;
    v_scope = block.Tast.b_scope;
    v_kind = Tast.Vlocal;
  }

let tvar_expr (v : Tast.var) : Tast.expr =
  { Tast.ty = v.Tast.v_ty; pos = Token.dummy_pos; desc = Tast.Tvar v }

(* Insert [free_stmts] after the last scope-level statement mentioning a
   closure member.  A trailing return that is the last use is hoisted
   into temporaries so the free runs after the return expression is
   evaluated but before control leaves the frame. *)
let insert_last_use members free_stmts (block : Tast.block)
    (v : Tast.var) stmts =
  let arr = Array.of_list stmts in
  let last = ref (-1) in
  Array.iteri
    (fun i s -> if stmt_mentions_members members s then last := i)
    arr;
  if !last < 0 then Some (stmts @ free_stmts)
  else if !last = Array.length arr - 1 then begin
    match arr.(!last) with
    | Tast.Sreturn es when es <> [] ->
      let prefix = Array.to_list (Array.sub arr 0 (!last)) in
      let temps =
        List.mapi
          (fun i (e : Tast.expr) ->
            mk_temp ~name:(Printf.sprintf "__ret%d" i) ~ty:e.Tast.ty block v)
          es
      in
      let decls = List.map2 (fun t e -> Tast.Sdecl (t, Some e)) temps es in
      Some
        (prefix @ decls @ free_stmts
        @ [ Tast.Sreturn (List.map tvar_expr temps) ])
    | Tast.Sreturn _ | Tast.Spanic _ -> None
    | Tast.Sbreak | Tast.Scontinue ->
      let prefix = Array.to_list (Array.sub arr 0 (!last)) in
      Some (prefix @ free_stmts @ [ arr.(!last) ])
    | _ -> Some (stmts @ free_stmts)
  end
  else begin
    let n = Array.length arr in
    let prefix = Array.to_list (Array.sub arr 0 (!last + 1)) in
    let suffix = Array.to_list (Array.sub arr (!last + 1) (n - !last - 1)) in
    Some (prefix @ free_stmts @ suffix)
  end

(* ------------------------------------------------------------------ *)
(* Free application (shared by fresh instrumentation and cache replay)  *)
(* ------------------------------------------------------------------ *)

(* One free to place: a whole variable, or one field slot of it. *)
type free_item = {
  fi_var : Tast.var;
  fi_field : (int * string * Types.t) option;
  fi_kind : Tast.free_kind;
}

(* The struct-field load [v.f] (through the pointer for pointer bases). *)
let field_load_expr (v : Tast.var) idx fname fty : Tast.expr =
  {
    Tast.ty = fty;
    pos = Token.dummy_pos;
    desc = Tast.Tfield (tvar_expr v, idx, fname);
  }

(** Place a list of frees in [f], in canonical order: field slots first
    (so the field load never reads an already-freed base object), then
    whole variables; each group by (base id, field index).  The same
    routine runs on fresh analysis results and on cache replay, so both
    paths place byte-identical statements. *)
let apply_frees (config : Config.t) (f : Tast.func)
    (items : free_item list) : inserted list =
  let last_use =
    config.Config.precision.Config.placement = Config.Last_use
    && not (func_has_defer_or_go f)
  in
  let rank it =
    ( (match it.fi_field with Some _ -> 0 | None -> 1),
      it.fi_var.Tast.v_id,
      match it.fi_field with Some (i, _, _) -> i | None -> -1 )
  in
  let items = List.sort (fun a b -> compare (rank a) (rank b)) items in
  List.filter_map
    (fun it ->
      let v = it.fi_var in
      match v.Tast.v_kind with
      | Tast.Vglobal -> None  (* globals live forever *)
      | Tast.Vparam | Tast.Vlocal | Tast.Vresult _ -> begin
        match find_block f.Tast.f_body v.Tast.v_scope with
        | None -> None
        | Some block -> begin
          let placed =
            match it.fi_field with
            | Some (idx, fname, fty) ->
              let tmp =
                mk_temp
                  ~name:
                    (Printf.sprintf "__free_%s_%s" v.Tast.v_name fname)
                  ~ty:fty block v
              in
              let stmts =
                [
                  Tast.Sdecl (tmp, Some (field_load_expr v idx fname fty));
                  Tast.Stcfree (tmp, it.fi_kind);
                ]
              in
              insert_seq_at_end v stmts block.Tast.b_stmts
            | None ->
              let free_stmt = Tast.Stcfree (v, it.fi_kind) in
              if last_use then
                insert_last_use (alias_closure f v) [ free_stmt ] block v
                  block.Tast.b_stmts
              else insert_at_end v free_stmt block.Tast.b_stmts
          in
          match placed with
          | None -> None
          | Some stmts ->
            block.Tast.b_stmts <- stmts;
            Some
              {
                ins_func = f.Tast.f_name;
                ins_var = v;
                ins_field =
                  Option.map (fun (i, n, _) -> (i, n)) it.fi_field;
                ins_kind = it.fi_kind;
              }
        end
      end)
    items

(* Field name and type of field [idx] of [v]'s (pointer-to-)struct
   type. *)
let resolve_field tenv (v : Tast.var) idx : (string * Types.t) option =
  let sname =
    match v.Tast.v_ty with
    | Types.Struct s | Types.Ptr (Types.Struct s) -> Some s
    | _ -> None
  in
  Option.bind sname (fun s ->
      List.nth_opt (Types.struct_fields tenv s) idx)

(** Instrument one function in place; returns the inserted frees. *)
let instrument_function ~tenv (analysis : Gofree_escape.Analysis.t)
    (config : Config.t) (f : Tast.func) : inserted list =
  if not config.Config.insert_tcfree then []
  else begin
    let var_items =
      List.filter_map
        (fun ((v : Tast.var), _loc) ->
          Option.map
            (fun kind -> { fi_var = v; fi_field = None; fi_kind = kind })
            (free_kind_of_type config.Config.targets v.Tast.v_ty))
        (Gofree_escape.Analysis.to_free_vars analysis ~func:f.Tast.f_name)
    in
    let field_items =
      if not config.Config.precision.Config.field_sensitive then []
      else
        List.filter_map
          (fun ((v : Tast.var), idx, fname, _slot) ->
            match resolve_field tenv v idx with
            | Some (fname', fty) when fname' = fname ->
              Option.map
                (fun kind ->
                  { fi_var = v; fi_field = Some (idx, fname, fty);
                    fi_kind = kind })
                (free_kind_of_type config.Config.targets fty)
            | _ -> None)
          (Gofree_escape.Analysis.to_free_fields analysis
             ~func:f.Tast.f_name)
    in
    apply_frees config f (field_items @ var_items)
  end

(** Renumber the [-1] placeholder ids of instrumentation temporaries,
    scanning functions in program order — deterministic however the
    per-package instrumentation was scheduled — and grow
    [p.p_nvars] so frame layouts size their slot tables correctly.
    Idempotent. *)
let assign_temp_ids (p : Tast.program) =
  let next = ref p.Tast.p_nvars in
  List.iter
    (fun (f : Tast.func) ->
      Tast.iter_stmts
        (fun s ->
          match s with
          | Tast.Sdecl (v, _) when v.Tast.v_id < 0 ->
            v.Tast.v_id <- !next;
            incr next
          | _ -> ())
        f.Tast.f_body)
    p.Tast.p_funcs;
  p.Tast.p_nvars <- !next

(** Instrument a whole program in place. *)
let instrument (analysis : Gofree_escape.Analysis.t) (config : Config.t)
    (p : Tast.program) : inserted list =
  let ins =
    List.concat_map
      (instrument_function ~tenv:p.Tast.p_tenv analysis config)
      p.Tast.p_funcs
  in
  assign_temp_ids p;
  ins

(* All variables declared anywhere in a function (params included). *)
let func_vars (f : Tast.func) : Tast.var list =
  let acc = ref (List.rev f.Tast.f_params) in
  Tast.iter_stmts
    (fun s ->
      match s with
      | Tast.Sdecl (v, _) -> acc := v :: !acc
      | Tast.Smulti_decl (vs, _) -> acc := List.rev_append vs !acc
      | Tast.Sforrange_map (v, _, _) -> acc := v :: !acc
      | _ -> ())
    f.Tast.f_body;
  List.rev !acc

(** Re-apply recorded frees to a freshly typechecked function — the
    cache-hit path of the incremental build driver, which has the
    (variable id, field index, kind) triples from a previous run but no
    analysis ([field < 0] means a whole-variable free).  The same
    placement rules run again under the same configuration, so the
    result is exactly what {!instrument_function} produced
    originally. *)
let replay_function ~tenv ~(config : Config.t) (f : Tast.func)
    (frees : (int * int * Tast.free_kind) list) : inserted list =
  let vars = func_vars f in
  let items =
    List.filter_map
      (fun (var_id, fidx, kind) ->
        match
          List.find_opt (fun (v : Tast.var) -> v.Tast.v_id = var_id) vars
        with
        | None -> None
        | Some v ->
          if fidx < 0 then
            Some { fi_var = v; fi_field = None; fi_kind = kind }
          else
            Option.map
              (fun (fname, fty) ->
                { fi_var = v; fi_field = Some (fidx, fname, fty);
                  fi_kind = kind })
              (resolve_field tenv v fidx))
      frees
  in
  apply_frees config f items
