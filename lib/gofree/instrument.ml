(** tcfree instrumentation (paper §4.5).

    For every variable whose location satisfies [ToFree] (Def 4.17) and
    whose type is in the configured target set, a [Stcfree] statement is
    inserted as the last statement of the variable's declaration scope —
    before a trailing [return]/[break]/[continue]/[panic] so the free is
    live.  If the trailing return still mentions the variable, the free is
    skipped (left to GC) rather than risking a use-after-free in the
    return expression. *)

open Minigo

type inserted = {
  ins_func : string;
  ins_var : Tast.var;
  ins_kind : Tast.free_kind;
}

let free_kind_of_type (targets : Config.free_targets) (ty : Types.t) :
    Tast.free_kind option =
  match (ty, targets) with
  | Types.Slice _, _ -> Some Tast.Free_slice
  | Types.Map _, _ -> Some Tast.Free_map
  | Types.Ptr _, Config.All_pointers -> Some Tast.Free_obj
  | Types.Ptr _, Config.Slices_and_maps -> None
  | _ -> None

(* Does the expression mention variable [v]? *)
let mentions_var (v : Tast.var) (e : Tast.expr) =
  let found = ref false in
  Tast.iter_expr
    (fun e ->
      match e.Tast.desc with
      | Tast.Tvar v' when v'.Tast.v_id = v.Tast.v_id -> found := true
      | _ -> ())
    e;
  !found

let stmt_mentions_var v s =
  let found = ref false in
  Tast.iter_stmt_exprs (fun e -> if mentions_var v e then found := true) s;
  !found

(* Insert [free_stmt] at the end of [stmts], before a trailing control
   transfer.  Returns None when the insertion would be unsafe (the
   trailing statement still uses the variable). *)
let insert_at_end (v : Tast.var) free_stmt stmts =
  let rec split_last acc = function
    | [] -> (List.rev acc, None)
    | [ last ] -> (List.rev acc, Some last)
    | s :: rest -> split_last (s :: acc) rest
  in
  match split_last [] stmts with
  | prefix, Some ((Tast.Sreturn _ | Tast.Spanic _) as last) ->
    if stmt_mentions_var v last then None
    else Some (prefix @ [ free_stmt; last ])
  | prefix, Some ((Tast.Sbreak | Tast.Scontinue) as last) ->
    Some (prefix @ [ free_stmt; last ])
  | _, Some _ | _, None -> Some (stmts @ [ free_stmt ])

(* Find the block with scope id [scope] inside [b]. *)
let rec find_block (b : Tast.block) scope : Tast.block option =
  if b.Tast.b_scope = scope then Some b
  else begin
    let found = ref None in
    let check_block b' =
      if !found = None then found := find_block b' scope
    in
    List.iter
      (fun s ->
        match s with
        | Tast.Sif (_, b1, b2) ->
          check_block b1;
          Option.iter check_block b2
        | Tast.Sfor (_, _, _, body) -> check_block body
        | Tast.Sforrange_map (_, _, body) -> check_block body
        | Tast.Sblock b' -> check_block b'
        | _ -> ())
      b.Tast.b_stmts;
    !found
  end

(** Instrument one function in place; returns the inserted frees. *)
let instrument_function (analysis : Gofree_escape.Analysis.t)
    (config : Config.t) (f : Tast.func) : inserted list =
  if not config.Config.insert_tcfree then []
  else begin
    let candidates =
      Gofree_escape.Analysis.to_free_vars analysis ~func:f.Tast.f_name
    in
    (* Deterministic order: by variable id. *)
    let candidates =
      List.sort
        (fun ((a : Tast.var), _) (b, _) -> compare a.Tast.v_id b.Tast.v_id)
        candidates
    in
    List.filter_map
      (fun ((v : Tast.var), _loc) ->
        match free_kind_of_type config.Config.targets v.Tast.v_ty with
        | None -> None
        | Some kind -> begin
          match v.Tast.v_kind with
          | Tast.Vglobal -> None  (* globals live forever *)
          | Tast.Vparam | Tast.Vlocal | Tast.Vresult _ -> begin
            match find_block f.Tast.f_body v.Tast.v_scope with
            | None -> None
            | Some block -> begin
              let free_stmt = Tast.Stcfree (v, kind) in
              match insert_at_end v free_stmt block.Tast.b_stmts with
              | None -> None
              | Some stmts ->
                block.Tast.b_stmts <- stmts;
                Some { ins_func = f.Tast.f_name; ins_var = v;
                       ins_kind = kind }
            end
          end
        end)
      candidates
  end

(** Instrument a whole program in place. *)
let instrument (analysis : Gofree_escape.Analysis.t) (config : Config.t)
    (p : Tast.program) : inserted list =
  List.concat_map (instrument_function analysis config) p.Tast.p_funcs

(* All variables declared anywhere in a function (params included). *)
let func_vars (f : Tast.func) : Tast.var list =
  let acc = ref (List.rev f.Tast.f_params) in
  Tast.iter_stmts
    (fun s ->
      match s with
      | Tast.Sdecl (v, _) -> acc := v :: !acc
      | Tast.Smulti_decl (vs, _) -> acc := List.rev_append vs !acc
      | Tast.Sforrange_map (v, _, _) -> acc := v :: !acc
      | _ -> ())
    f.Tast.f_body;
  List.rev !acc

(** Re-apply recorded frees to a freshly typechecked function — the
    cache-hit path of the incremental build driver, which has the
    (variable id, kind) pairs from a previous run but no analysis.
    Variable ids are matched against the function's declarations; the
    same end-of-scope placement rules run again, so the result is
    exactly what {!instrument_function} produced originally. *)
let replay_function (f : Tast.func)
    (frees : (int * Tast.free_kind) list) : inserted list =
  let vars = func_vars f in
  let frees =
    List.sort (fun (a, _) (b, _) -> compare a b) frees
  in
  List.filter_map
    (fun (var_id, kind) ->
      match
        List.find_opt (fun (v : Tast.var) -> v.Tast.v_id = var_id) vars
      with
      | None -> None
      | Some v -> begin
        match find_block f.Tast.f_body v.Tast.v_scope with
        | None -> None
        | Some block -> begin
          let free_stmt = Tast.Stcfree (v, kind) in
          match insert_at_end v free_stmt block.Tast.b_stmts with
          | None -> None
          | Some stmts ->
            block.Tast.b_stmts <- stmts;
            Some { ins_func = f.Tast.f_name; ins_var = v; ins_kind = kind }
        end
      end)
    frees
