(** Human-readable dumps of the analysis results: escape-graph locations,
    their Table-1 properties, points-to sets, stack/heap decisions and the
    inserted tcfrees.  Used by [gofreec --print-escape] and the
    escape_explorer example. *)

open Minigo

(* Heap decision and property table for one analyzed function. *)
let pp_function fmt (analysis : Gofree_escape.Analysis.t) name =
  match Gofree_escape.Analysis.func_result analysis name with
  | None -> Format.fprintf fmt "function %s: not analyzed@." name
  | Some fr ->
    let g = fr.Gofree_escape.Analysis.fr_ctx.Gofree_escape.Build.g in
    Format.fprintf fmt "@[<v>== escape analysis of %s ==@," name;
    Format.fprintf fmt "locations: %d, edges: %d@," g.Gofree_escape.Graph.n_locs
      g.Gofree_escape.Graph.n_edges;
    List.iter
      (fun (l : Gofree_escape.Loc.t) ->
        let pts = Gofree_escape.Graph.points_to g l in
        let pts_names =
          String.concat ", "
            (List.map Gofree_escape.Loc.name
               (List.sort
                  (fun (a : Gofree_escape.Loc.t) b ->
                    compare a.Gofree_escape.Loc.id b.Gofree_escape.Loc.id)
                  pts))
        in
        Format.fprintf fmt
          "%-24s heap=%-5b exposes=%-5b incomplete=%-5b outlived=%-5b \
           ptsHeap=%-5b toFree=%-5b pointsTo={%s}@,"
          (Gofree_escape.Loc.name l)
          l.Gofree_escape.Loc.heap_alloc l.Gofree_escape.Loc.exposes
          (Gofree_escape.Loc.incomplete l)
          l.Gofree_escape.Loc.outlived l.Gofree_escape.Loc.points_to_heap
          (Gofree_escape.Propagate.to_free l)
          pts_names)
      (Gofree_escape.Graph.all_locs g);
    Format.fprintf fmt "@]"

let pp_inserted fmt (inserted : Instrument.inserted list) =
  Format.fprintf fmt "@[<v>inserted tcfree calls: %d@,"
    (List.length inserted);
  List.iter
    (fun { Instrument.ins_func; ins_var; ins_field; ins_kind } ->
      Format.fprintf fmt "  %s: %s(%s%s)@," ins_func
        (Pretty.free_kind_str ins_kind)
        ins_var.Tast.v_name
        (match ins_field with
        | Some (_, fname) -> "." ^ fname
        | None -> ""))
    inserted;
  Format.fprintf fmt "@]"

(** Points-to set of a named variable in a function, as location names —
    the Table 3 comparison uses this. *)
let points_to_of_var (analysis : Gofree_escape.Analysis.t) ~func ~var :
    string list =
  match Gofree_escape.Analysis.func_result analysis func with
  | None -> []
  | Some fr ->
    let ctx = fr.Gofree_escape.Analysis.fr_ctx in
    let found = ref [] in
    Hashtbl.iter
      (fun _ (l : Gofree_escape.Loc.t) ->
        match l.Gofree_escape.Loc.kind with
        | Gofree_escape.Loc.Kvar v when String.equal v.Tast.v_name var ->
          found :=
            List.map Gofree_escape.Loc.name
              (Gofree_escape.Graph.points_to ctx.Gofree_escape.Build.g l)
        | _ -> ())
      ctx.Gofree_escape.Build.var_locs;
    List.sort compare !found

(** Table-1 style property record of a named variable. *)
let var_properties (analysis : Gofree_escape.Analysis.t) ~func ~var :
    Gofree_escape.Loc.t option =
  match Gofree_escape.Analysis.func_result analysis func with
  | None -> None
  | Some fr ->
    let ctx = fr.Gofree_escape.Analysis.fr_ctx in
    Hashtbl.fold
      (fun _ (l : Gofree_escape.Loc.t) acc ->
        match l.Gofree_escape.Loc.kind with
        | Gofree_escape.Loc.Kvar v when String.equal v.Tast.v_name var ->
          Some l
        | _ -> acc)
      ctx.Gofree_escape.Build.var_locs None

(** Heap decision of the [n]-th allocation site (program order) in
    [func]. *)
let site_decisions (analysis : Gofree_escape.Analysis.t)
    (p : Tast.program) ~func : (Tast.alloc_site * bool) list =
  List.filter_map
    (fun (site : Tast.alloc_site) ->
      if String.equal site.Tast.site_func func then
        Some (site, Gofree_escape.Analysis.site_is_heap analysis ~func site)
      else None)
    p.Tast.p_sites

(* ------------------------------------------------------------------ *)
(* Graphviz export                                                     *)
(* ------------------------------------------------------------------ *)

(** Render one analyzed function's escape graph as Graphviz DOT, in the
    style of the paper's fig. 1: blue for stack-allocated locations,
    green for heap-allocated ones, dashed boxes for dummy locations, and
    edge labels carrying the Derefs weights of Table 2. *)
let to_dot (analysis : Gofree_escape.Analysis.t) name : string option =
  match Gofree_escape.Analysis.func_result analysis name with
  | None -> None
  | Some fr ->
    let g = fr.Gofree_escape.Analysis.fr_ctx.Gofree_escape.Build.g in
    let buf = Buffer.create 1024 in
    let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    add "digraph escape_graph_%s {\n" name;
    add "  rankdir=LR;\n  node [fontname=\"Helvetica\"];\n";
    List.iter
      (fun (l : Gofree_escape.Loc.t) ->
        let dummy =
          match l.Gofree_escape.Loc.kind with
          | Gofree_escape.Loc.Kvar _ | Gofree_escape.Loc.Ksite _ -> false
          | _ -> true
        in
        let color =
          if l.Gofree_escape.Loc.heap_alloc then "palegreen"
          else "lightblue"
        in
        let extras =
          String.concat ""
            [
              (if Gofree_escape.Loc.incomplete l then "\\nincomplete"
               else "");
              (if l.Gofree_escape.Loc.exposes then "\\nexposes" else "");
              (if Gofree_escape.Propagate.to_free l then "\\nToFree"
               else "");
            ]
        in
        add "  n%d [label=\"%s%s\", style=\"filled%s\", fillcolor=%s];\n"
          l.Gofree_escape.Loc.id
          (Gofree_escape.Loc.name l)
          extras
          (if dummy then ",dashed" else "")
          color)
      (Gofree_escape.Graph.all_locs g);
    List.iter
      (fun (l : Gofree_escape.Loc.t) ->
        List.iter
          (fun { Gofree_escape.Graph.src; weight } ->
            add "  n%d -> n%d [label=\"%d\"];\n"
              src.Gofree_escape.Loc.id l.Gofree_escape.Loc.id weight)
          (Gofree_escape.Graph.incoming_edges g l))
      (Gofree_escape.Graph.all_locs g);
    add "}\n";
    Some (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Freeing diagnostics: gofreec analyze --explain                      *)
(* ------------------------------------------------------------------ *)

module E = Gofree_escape
module Json = Gofree_obs.Json

(** Why a heap allocation site is left to the GC.  The classification is
    total: every unfreed heap site maps to exactly one constructor. *)
type blocking =
  | Escapes_to_caller  (** flows into a return value (Holds of a return root) *)
  | Escapes_to_global  (** flows into heapLoc: a global, or a store into an
                           escaping structure *)
  | Incomplete_param  (** Def 4.12's parameter-seeded component: the holder
                          may alias a caller object *)
  | Incomplete_store  (** Def 4.12's indirect-store component: something was
                          stored through a pointer into it *)
  | Outlived  (** Def 4.15: reachable from a longer-lived scope *)
  | Not_target  (** freeable, but the type is outside the configured
                    free-target set (e.g. [*T] under slices_and_maps) *)
  | Unsafe_insertion  (** ToFree held but the trailing control transfer still
                          mentions the holder, so insertion was skipped *)
  | No_named_holder  (** reachable only through dummy locations: no variable
                         owns it at end of scope *)

let blocking_str = function
  | Escapes_to_caller -> "escapes to caller"
  | Escapes_to_global -> "escapes to global/heap store"
  | Incomplete_param -> "incomplete (parameter-seeded)"
  | Incomplete_store -> "incomplete (indirect store)"
  | Outlived -> "outlived"
  | Not_target -> "not a free target"
  | Unsafe_insertion -> "insertion unsafe (trailing use)"
  | No_named_holder -> "no named holder"

type site_explain = {
  ex_site : Tast.alloc_site;
  ex_heap : bool;  (** the stack/heap decision *)
  ex_freed_by : string option;
      (** variable whose inserted tcfree covers this site's objects *)
  ex_blocking : blocking option;  (** [Some] iff heap-allocated and unfreed *)
}

let site_kind_str = function
  | Tast.Site_slice -> "slice"
  | Tast.Site_map -> "map"
  | Tast.Site_new -> "new"
  | Tast.Site_append -> "append"
  | Tast.Site_string -> "string"

(* Named variables of [func] whose PointsTo contains [site_loc]. *)
let holders_of (fr : E.Analysis.func_result) (site_loc : E.Loc.t) :
    (Tast.var * E.Loc.t) list =
  let g = fr.E.Analysis.fr_ctx.E.Build.g in
  Hashtbl.fold
    (fun _ (l : E.Loc.t) acc ->
      match l.E.Loc.kind with
      | E.Loc.Kvar v ->
        if
          List.exists
            (fun (m : E.Loc.t) -> m.E.Loc.id = site_loc.E.Loc.id)
            (E.Graph.points_to g l)
        then (v, l) :: acc
        else acc
      | _ -> acc)
    fr.E.Analysis.fr_ctx.E.Build.var_locs []

let explain_site (analysis : E.Analysis.t)
    (inserted : Instrument.inserted list) (config : Config.t)
    (site : Tast.alloc_site) : site_explain =
  let stack_site () =
    { ex_site = site; ex_heap = false; ex_freed_by = None;
      ex_blocking = None }
  in
  match E.Analysis.func_result analysis site.Tast.site_func with
  | None -> stack_site ()  (* dead function: never analyzed, never run *)
  | Some fr -> begin
    let ctx = fr.E.Analysis.fr_ctx in
    let g = ctx.E.Build.g in
    match Hashtbl.find_opt ctx.E.Build.site_locs site.Tast.site_id with
    | None -> stack_site ()  (* dead code: site never entered the graph *)
    | Some site_loc when not site_loc.E.Loc.heap_alloc -> stack_site ()
    | Some site_loc ->
      let holders = holders_of fr site_loc in
      (* An inserted tcfree on a holder reclaims this site's objects.  A
         field-slot free covers the site when the site is in the
         {e slot's} points-to set, and is reported as "var.field". *)
      let freed_by =
        let covering =
          List.filter_map
            (fun { Instrument.ins_func; ins_var; ins_field; _ } ->
              if not (String.equal ins_func site.Tast.site_func) then None
              else
                match ins_field with
                | Some (idx, fname) -> begin
                  match
                    Hashtbl.find_opt ctx.E.Build.field_locs
                      (ins_var.Tast.v_id, idx)
                  with
                  | Some slot
                    when List.exists
                           (fun (m : E.Loc.t) ->
                             m.E.Loc.id = site_loc.E.Loc.id)
                           (E.Graph.points_to g slot) ->
                    Some (ins_var.Tast.v_name ^ "." ^ fname, Some slot)
                  | _ -> None
                end
                | None ->
                  if
                    List.exists
                      (fun ((v : Tast.var), _) ->
                        v.Tast.v_id = ins_var.Tast.v_id)
                      holders
                  then Some (ins_var.Tast.v_name, None)
                  else None)
            inserted
        in
        (* Slot points-to sets blur through the slot<->base cycle, so
           several field frees can appear to cover one site; a direct
           store edge (site --(-1)--> slot) pins the true owner. *)
        let direct (_, slot_opt) =
          match slot_opt with
          | None -> false
          | Some slot ->
            List.exists
              (fun (e : E.Graph.edge) ->
                e.E.Graph.src.E.Loc.id = site_loc.E.Loc.id
                && e.E.Graph.weight = -1)
              (E.Graph.incoming_edges g slot)
        in
        match List.find_opt direct covering with
        | Some (n, _) -> Some n
        | None -> (
          match covering with [] -> None | (n, _) :: _ -> Some n)
      in
      let blocking =
        match freed_by with
        | Some _ -> None
        | None ->
          (* The object escapes through [root] only if root can hold a
             POINTER to it (MinDerefs < 0) — a plain element load puts
             the site in Holds at derefs ≥ 0 without the object itself
             leaving. *)
          let escapes_via root =
            match E.Graph.min_derefs g site_loc root with
            | Some d -> d < 0
            | None -> false
          in
          let escapes_caller =
            Array.exists escapes_via g.E.Graph.returns
          in
          let escapes_global = escapes_via g.E.Graph.heap in
          let best p = List.exists (fun (_, l) -> p l) holders in
          Some
            (if escapes_caller then Escapes_to_caller
             else if escapes_global then Escapes_to_global
             else if holders = [] then No_named_holder
             else if
               best (fun (l : E.Loc.t) ->
                   E.Propagate.to_free l
                   && Instrument.free_kind_of_type config.Config.targets
                        (match l.E.Loc.kind with
                        | E.Loc.Kvar v -> v.Tast.v_ty
                        | _ -> assert false)
                      <> None)
             then Unsafe_insertion
             else if
               best (fun (l : E.Loc.t) -> E.Propagate.to_free l)
             then Not_target
             else if best (fun l -> l.E.Loc.inc_store) then
               Incomplete_store
             else if best (fun l -> l.E.Loc.inc_param) then
               Incomplete_param
             else if best (fun l -> l.E.Loc.outlived) then Outlived
             else No_named_holder)
      in
      { ex_site = site; ex_heap = true; ex_freed_by = freed_by;
        ex_blocking = blocking }
  end

(** Explain every allocation site of [p]: the stack/heap decision and,
    for heap sites, either the inserted tcfree that reclaims them or the
    property blocking the free. *)
let explain (analysis : E.Analysis.t)
    (inserted : Instrument.inserted list) (config : Config.t)
    (p : Tast.program) : site_explain list =
  List.map (explain_site analysis inserted config) p.Tast.p_sites

let pp_explain fmt (entries : site_explain list) =
  let heap = List.filter (fun e -> e.ex_heap) entries in
  let freed = List.filter (fun e -> e.ex_freed_by <> None) heap in
  Format.fprintf fmt "@[<v>== freeing diagnostics ==@,";
  Format.fprintf fmt
    "%d allocation sites: %d stack, %d heap (%d freed by tcfree, %d left \
     to GC)@,"
    (List.length entries)
    (List.length entries - List.length heap)
    (List.length heap) (List.length freed)
    (List.length heap - List.length freed);
  List.iter
    (fun e ->
      let s = e.ex_site in
      let where =
        Printf.sprintf "%s:%s [%s #%d]" s.Tast.site_func
          (Token.string_of_pos s.Tast.site_pos)
          (site_kind_str s.Tast.site_kind)
          s.Tast.site_id
      in
      match (e.ex_heap, e.ex_freed_by, e.ex_blocking) with
      | false, _, _ ->
        Format.fprintf fmt "%-44s stack@," where
      | true, Some var, _ ->
        Format.fprintf fmt "%-44s heap, freed by tcfree(%s)@," where var
      | true, None, Some b ->
        Format.fprintf fmt "%-44s heap, GC: %s@," where (blocking_str b)
      | true, None, None -> assert false)
    entries;
  Format.fprintf fmt "@]"

let all_blocking =
  [ Escapes_to_caller; Escapes_to_global; Incomplete_param;
    Incomplete_store; Outlived; Not_target; Unsafe_insertion;
    No_named_holder ]

(** Histogram of why heap sites were left to the GC. *)
let blocking_counts (entries : site_explain list) : (blocking * int) list =
  List.map
    (fun b ->
      ( b,
        List.length
          (List.filter (fun e -> e.ex_blocking = Some b) entries) ))
    all_blocking

(** Per-reason delta between a baseline explain run and a refined one on
    the same program: how many blocked sites each precision mode
    eliminated (positive) or introduced (negative, which the differential
    suite treats as a regression). *)
let explain_delta ~(baseline : site_explain list)
    ~(refined : site_explain list) : Json.t =
  let base = blocking_counts baseline and refi = blocking_counts refined in
  let freed es =
    List.length (List.filter (fun e -> e.ex_freed_by <> None) es)
  in
  Json.Obj
    [
      ("freed_baseline", Json.Int (freed baseline));
      ("freed_refined", Json.Int (freed refined));
      ( "eliminated",
        Json.Obj
          (List.map2
             (fun (b, nb) (_, nr) -> (blocking_str b, Json.Int (nb - nr)))
             base refi) );
    ]

let explain_to_json (entries : site_explain list) : Json.t =
  Json.Obj
    [
      Gofree_obs.Schema.(field Explain);
      ( "sites",
        Json.List
          (List.map
             (fun e ->
               let s = e.ex_site in
               Json.Obj
                 [
                   ("site_id", Json.Int s.Tast.site_id);
                   ("func", Json.Str s.Tast.site_func);
                   ("pos", Json.Str (Token.string_of_pos s.Tast.site_pos));
                   ("kind", Json.Str (site_kind_str s.Tast.site_kind));
                   ( "decision",
                     Json.Str (if e.ex_heap then "heap" else "stack") );
                   ( "freed_by",
                     match e.ex_freed_by with
                     | Some v -> Json.Str v
                     | None -> Json.Null );
                   ( "blocking",
                     match e.ex_blocking with
                     | Some b -> Json.Str (blocking_str b)
                     | None -> Json.Null );
                 ])
             entries) );
    ]
