(** The GoFree compilation pipeline: source → parse → typecheck →
    escape analysis → tcfree instrumentation.

    [compile] is what [gofreec], the examples, the workload harness and
    the benchmarks all call. *)

open Minigo

type compiled = {
  c_program : Tast.program;  (** instrumented in place *)
  c_analysis : Gofree_escape.Analysis.t;
  c_inserted : Instrument.inserted list;
  c_config : Config.t;
}

exception Compile_error of string

module Trace = Gofree_obs.Trace

(* Phase spans land on the current domain's track, so single-file
   compiles trace on the main track while the build driver's worker
   domains trace on their own. *)
let phase name f = Trace.with_span ~tid:(Trace.domain_tid ()) name f

let parse_and_check (source : string) : Tast.program =
  (* When tracing, run the lexer once on its own so the "lex" phase gets
     a span of its own; the parse span then covers parsing proper.  The
     tokens are discarded — the parser re-lexes internally — which is
     fine: traces are about where time goes, and lexing twice only
     happens while one is being captured. *)
  if Trace.enabled () then
    phase "lex" (fun () ->
        try ignore (Lexer.tokenize source) with _ -> ());
  let ast =
    try phase "parse" (fun () -> Parser.parse source) with
    | Lexer.Error (msg, pos) ->
      raise
        (Compile_error
           (Printf.sprintf "lex error at %s: %s" (Token.string_of_pos pos)
              msg))
    | Parser.Error (msg, pos) ->
      raise
        (Compile_error
           (Printf.sprintf "parse error at %s: %s" (Token.string_of_pos pos)
              msg))
  in
  try phase "typecheck" (fun () -> Typecheck.check ast)
  with Typecheck.Error (msg, pos) ->
    raise
      (Compile_error
         (Printf.sprintf "type error at %s: %s" (Token.string_of_pos pos)
            msg))

(** Escape-analyze an already-typechecked program under [config] —
    the one place the configuration is lowered onto the analysis knobs
    (mode, IPA, backprop, signature).  [pool] and [unit_lookup] thread
    through to the analysis-unit scheduler: the build driver passes its
    worker pool and function-granular cache here. *)
let analyze_program ?(config = Config.gofree) ?(imported = []) ?pool
    ?unit_lookup (program : Tast.program) : Gofree_escape.Analysis.t =
  let mode =
    if config.Config.insert_tcfree then Gofree_escape.Propagate.Gofree
    else Gofree_escape.Propagate.Go_base
  in
  (* The escape span covers the whole abstract interpretation: building
     constraint graphs plus the fused completeness/outlived/points-to
     propagation (per-function sub-spans come from Analysis.analyze). *)
  (* Field sensitivity only matters under the full GoFree constraint
     set; in Go_base mode the extra slots would just be dead graph
     nodes. *)
  let field_sensitive =
    config.Config.insert_tcfree
    && config.Config.precision.Config.field_sensitive
  in
  phase "escape" (fun () ->
      Gofree_escape.Analysis.analyze ~mode ~use_ipa:config.Config.ipa
        ~backprop:config.Config.backprop ~field_sensitive ~imported
        ~config_sig:(Config.signature config) ?pool ?unit_lookup program)

(** Analyze and instrument an already-typechecked program.  [imported]
    seeds the analysis with stored summaries of other packages (separate
    compilation, §4.4). *)
let compile_program ?(config = Config.gofree) ?(imported = [])
    (program : Tast.program) : compiled =
  let analysis = analyze_program ~config ~imported program in
  let inserted =
    phase "instrument" (fun () ->
        Instrument.instrument analysis config program)
  in
  { c_program = program; c_analysis = analysis; c_inserted = inserted;
    c_config = config }

(** Compile a MiniGo source string under [config]. *)
let compile ?(config = Config.gofree) (source : string) : compiled =
  compile_program ~config (parse_and_check source)

(** Compile with stock-Go settings (no tcfree, Go's base analysis for the
    stack/heap decisions). *)
let compile_go source = compile ~config:Config.go source
