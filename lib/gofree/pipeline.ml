(** The GoFree compilation pipeline: source → parse → typecheck →
    escape analysis → tcfree instrumentation.

    [compile] is what [gofreec], the examples, the workload harness and
    the benchmarks all call. *)

open Minigo

type compiled = {
  c_program : Tast.program;  (** instrumented in place *)
  c_analysis : Gofree_escape.Analysis.t;
  c_inserted : Instrument.inserted list;
  c_config : Config.t;
}

exception Compile_error of string

let parse_and_check (source : string) : Tast.program =
  let ast =
    try Parser.parse source with
    | Lexer.Error (msg, pos) ->
      raise
        (Compile_error
           (Printf.sprintf "lex error at %s: %s" (Token.string_of_pos pos)
              msg))
    | Parser.Error (msg, pos) ->
      raise
        (Compile_error
           (Printf.sprintf "parse error at %s: %s" (Token.string_of_pos pos)
              msg))
  in
  try Typecheck.check ast
  with Typecheck.Error (msg, pos) ->
    raise
      (Compile_error
         (Printf.sprintf "type error at %s: %s" (Token.string_of_pos pos)
            msg))

(** Analyze and instrument an already-typechecked program.  [imported]
    seeds the analysis with stored summaries of other packages (separate
    compilation, §4.4). *)
let compile_program ?(config = Config.gofree) ?(imported = [])
    (program : Tast.program) : compiled =
  let mode =
    if config.Config.insert_tcfree then Gofree_escape.Propagate.Gofree
    else Gofree_escape.Propagate.Go_base
  in
  let analysis =
    Gofree_escape.Analysis.analyze ~mode ~use_ipa:config.Config.ipa
      ~backprop:config.Config.backprop ~imported program
  in
  let inserted = Instrument.instrument analysis config program in
  { c_program = program; c_analysis = analysis; c_inserted = inserted;
    c_config = config }

(** Compile a MiniGo source string under [config]. *)
let compile ?(config = Config.gofree) (source : string) : compiled =
  compile_program ~config (parse_and_check source)

(** Compile with stock-Go settings (no tcfree, Go's base analysis for the
    stack/heap decisions). *)
let compile_go source = compile ~config:Config.go source
