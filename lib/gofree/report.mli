(** Human-readable and Graphviz dumps of analysis results, used by
    [gofreec analyze] and the examples. *)

open Minigo

(** Property table and points-to sets of one analyzed function. *)
val pp_function :
  Format.formatter -> Gofree_escape.Analysis.t -> string -> unit

val pp_inserted : Format.formatter -> Instrument.inserted list -> unit

(** Points-to set of a named variable as sorted location names (the
    Table 3 comparison). *)
val points_to_of_var :
  Gofree_escape.Analysis.t -> func:string -> var:string -> string list

(** The analyzed location of a named variable, if any. *)
val var_properties :
  Gofree_escape.Analysis.t -> func:string -> var:string ->
  Gofree_escape.Loc.t option

(** Stack/heap decision per allocation site of a function. *)
val site_decisions :
  Gofree_escape.Analysis.t -> Tast.program -> func:string ->
  (Tast.alloc_site * bool) list

(** Escape graph as Graphviz DOT in the paper's fig. 1 style: blue =
    stack, green = heap, dashed = dummy locations, edge labels = Derefs
    weights. *)
val to_dot : Gofree_escape.Analysis.t -> string -> string option

(** {1 Freeing diagnostics — [gofreec analyze --explain]} *)

(** Why a heap allocation site is left to the GC; total over unfreed heap
    sites. *)
type blocking =
  | Escapes_to_caller
  | Escapes_to_global
  | Incomplete_param
  | Incomplete_store
  | Outlived
  | Not_target
  | Unsafe_insertion
  | No_named_holder

val blocking_str : blocking -> string

type site_explain = {
  ex_site : Tast.alloc_site;
  ex_heap : bool;
  ex_freed_by : string option;
      (** variable whose inserted tcfree covers this site's objects *)
  ex_blocking : blocking option;  (** [Some] iff heap-allocated and unfreed *)
}

(** Per-site decision and diagnosis for every allocation site of the
    program. *)
val explain :
  Gofree_escape.Analysis.t -> Instrument.inserted list -> Config.t ->
  Tast.program -> site_explain list

val pp_explain : Format.formatter -> site_explain list -> unit

(** Histogram over [ex_blocking] of the GC-bound heap sites; every
    [blocking] constructor appears exactly once. *)
val blocking_counts : site_explain list -> (blocking * int) list

(** How many blocked sites [refined] eliminated relative to [baseline]
    per blocking reason (negative = regression), plus freed-site counts.
    The per-mode artifact behind [analyze --explain] comparisons. *)
val explain_delta :
  baseline:site_explain list -> refined:site_explain list -> Gofree_obs.Json.t

(** Schema [gofree-explain-v1]. *)
val explain_to_json : site_explain list -> Gofree_obs.Json.t
