(** tcfree instrumentation (paper §4.5): inserts [Stcfree] statements
    into each ToFree variable's declaration scope — at scope exit (the
    paper's placement) or, under [Last_use] precision, directly after
    the last syntactic use of the variable and its aliases.
    Field-sensitive mode additionally frees ToFree struct-field slots by
    loading the field into a compiler temporary and freeing that. *)

open Minigo

type inserted = {
  ins_func : string;
  ins_var : Tast.var;  (** the base variable *)
  ins_field : (int * string) option;
      (** [Some (index, name)] for a field-slot free *)
  ins_kind : Tast.free_kind;
}

(** Which runtime free variant (if any) applies to a value of this type
    under the configured target set. *)
val free_kind_of_type :
  Config.free_targets -> Types.t -> Tast.free_kind option

(** Instrument one function in place; returns the inserted frees.
    [tenv] resolves struct-field names/types for field-slot frees. *)
val instrument_function :
  tenv:Types.env ->
  Gofree_escape.Analysis.t ->
  Config.t ->
  Tast.func ->
  inserted list

(** Renumber the [-1] placeholder ids of instrumentation temporaries in
    program order and grow [p_nvars] accordingly.  Must run after all
    functions are instrumented (or replayed) and before any frame
    layout is built.  Idempotent; deterministic regardless of how the
    per-function instrumentation was scheduled. *)
val assign_temp_ids : Tast.program -> unit

(** Instrument a whole program in place (runs {!assign_temp_ids}). *)
val instrument :
  Gofree_escape.Analysis.t -> Config.t -> Tast.program -> inserted list

(** All variables declared anywhere in a function, params included —
    the basis for the build driver's function-relative id ranges. *)
val func_vars : Tast.func -> Tast.var list

(** Re-apply recorded frees — (variable id, field index, kind) triples
    from a previous run, field index [< 0] meaning a whole-variable
    free — to a freshly typechecked function: the cache-hit path of the
    incremental build driver, which has no analysis to consult.  Runs
    the same placement rules as {!instrument_function} under the same
    [config], so the replayed program is byte-identical to the fresh
    one. *)
val replay_function :
  tenv:Types.env ->
  config:Config.t ->
  Tast.func ->
  (int * int * Tast.free_kind) list ->
  inserted list
