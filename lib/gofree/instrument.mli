(** tcfree instrumentation (paper §4.5): inserts [Stcfree] statements at
    the end of each ToFree variable's declaration scope — before a
    trailing control transfer, skipped entirely when the trailing return
    still mentions the variable. *)

open Minigo

type inserted = {
  ins_func : string;
  ins_var : Tast.var;
  ins_kind : Tast.free_kind;
}

(** Which runtime free variant (if any) applies to a value of this type
    under the configured target set. *)
val free_kind_of_type :
  Config.free_targets -> Types.t -> Tast.free_kind option

(** Instrument one function in place; returns the inserted frees. *)
val instrument_function :
  Gofree_escape.Analysis.t -> Config.t -> Tast.func -> inserted list

(** Instrument a whole program in place. *)
val instrument :
  Gofree_escape.Analysis.t -> Config.t -> Tast.program -> inserted list

(** All variables declared anywhere in a function, params included —
    the basis for the build driver's function-relative id ranges. *)
val func_vars : Tast.func -> Tast.var list

(** Re-apply recorded frees — (variable id, kind) pairs from a previous
    run — to a freshly typechecked function: the cache-hit path of the
    incremental build driver, which has no analysis to consult. *)
val replay_function :
  Tast.func -> (int * Tast.free_kind) list -> inserted list
