(** The GoFree compilation pipeline: source → parse → typecheck → escape
    analysis → tcfree instrumentation. *)

open Minigo

type compiled = {
  c_program : Tast.program;  (** instrumented in place *)
  c_analysis : Gofree_escape.Analysis.t;
  c_inserted : Instrument.inserted list;
  c_config : Config.t;
}

exception Compile_error of string

(** Parse and typecheck only; wraps lexer/parser/typechecker errors in
    {!Compile_error} with positions. *)
val parse_and_check : string -> Tast.program

(** Escape-analyze an already-typechecked program, lowering [config]
    onto the analysis knobs (mode/IPA/backprop and the configuration
    signature feeding the unit content keys).  [pool] runs independent
    analysis units on worker domains; [unit_lookup] is the
    function-granular unit cache (see {!Gofree_escape.Analysis.analyze}).
    The build driver uses this entry point and instruments selectively
    (replaying cached units); {!compile_program} is this plus whole-
    program instrumentation. *)
val analyze_program :
  ?config:Config.t ->
  ?imported:Gofree_escape.Summary.t list ->
  ?pool:Gofree_sched.Pool.t ->
  ?unit_lookup:
    (key:string -> funcs:string list -> Gofree_escape.Summary.t list option) ->
  Tast.program ->
  Gofree_escape.Analysis.t

(** Analyze and instrument an already-typechecked program.  [imported]
    seeds the escape analysis with the stored summaries of other
    packages, so call sites into them resolve as in a whole-program run
    (separate compilation, §4.4). *)
val compile_program :
  ?config:Config.t ->
  ?imported:Gofree_escape.Summary.t list ->
  Tast.program ->
  compiled

(** Compile a MiniGo source string under [config]
    (default {!Config.gofree}). *)
val compile : ?config:Config.t -> string -> compiled

(** Compile with stock-Go settings (no tcfree). *)
val compile_go : string -> compiled
