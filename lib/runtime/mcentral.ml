(** mcentral: the shared middle layer between per-thread mcaches and the
    page heap (paper §3.3).

    One bucket per size class holding spans that still have free slots
    (partial) and spans with none (full).  When an mcache's span fills up
    it is pushed here; the mcache then pulls a partial span or asks the
    page heap for a fresh one.  Large-object spans live outside mcentral
    entirely (they take the 2-step tcfree path of fig. 9). *)

type t = {
  partial : Mspan.t list array;  (** per class: spans with free slots *)
  full : Mspan.t list array;
  pages : Pageheap.t;
  lock : Mutex.t;
  mutable locked : bool;
      (** true in the shared (multi-domain) heap: span acquire/release
          and rebucketing then serialize on [lock] *)
}

let create pages =
  {
    partial = Array.make Sizeclass.n_classes [];
    full = Array.make Sizeclass.n_classes [];
    pages;
    lock = Mutex.create ();
    locked = false;
  }

let acquire_span_unlocked t class_idx ~for_thread : Mspan.t =
  match t.partial.(class_idx) with
  | span :: rest ->
    t.partial.(class_idx) <- rest;
    span.Mspan.state <- Mspan.In_mcache for_thread;
    span
  | [] ->
    let span = Mspan.create_small class_idx in
    Pageheap.alloc_pages t.pages span.Mspan.npages;
    span.Mspan.state <- Mspan.In_mcache for_thread;
    span

(** Take a span with free capacity for [class_idx], pulling from the
    partial list or creating one from the page heap. *)
let acquire_span t class_idx ~for_thread : Mspan.t =
  if t.locked then begin
    Mutex.lock t.lock;
    let span = acquire_span_unlocked t class_idx ~for_thread in
    Mutex.unlock t.lock;
    span
  end
  else acquire_span_unlocked t class_idx ~for_thread

(** Return a span from an mcache (it filled up, or its thread exited). *)
let release_span t (span : Mspan.t) =
  if t.locked then Mutex.lock t.lock;
  span.Mspan.state <- Mspan.In_mcentral;
  if Mspan.is_full span then
    t.full.(span.Mspan.class_idx) <-
      span :: t.full.(span.Mspan.class_idx)
  else
    t.partial.(span.Mspan.class_idx) <-
      span :: t.partial.(span.Mspan.class_idx);
  if t.locked then Mutex.unlock t.lock

(** After a GC sweep some full spans have free slots again and some spans
    are completely empty; rebucket them and return empty spans' pages. *)
let rebucket_after_sweep t =
  if t.locked then Mutex.lock t.lock;
  for c = 0 to Sizeclass.n_classes - 1 do
    let all = t.partial.(c) @ t.full.(c) in
    let keep, empty =
      List.partition (fun (s : Mspan.t) -> s.Mspan.allocated > 0) all
    in
    List.iter
      (fun (s : Mspan.t) ->
        s.Mspan.state <- Mspan.Free;
        Pageheap.free_pages t.pages s.Mspan.npages)
      empty;
    let partial, full = List.partition (fun s -> not (Mspan.is_full s)) keep in
    t.partial.(c) <- partial;
    t.full.(c) <- full
  done;
  if t.locked then Mutex.unlock t.lock
