(** Open-addressing hash table from positive int keys to ['a] — the
    heap's object store.  Allocation-free inserts and probes; see the
    implementation for the tombstone scheme.  Keys must be positive. *)

type 'a t

(** [dummy] fills empty value slots so removed entries are not
    retained. *)
val create : ?capacity:int -> dummy:'a -> unit -> 'a t

(** Number of live entries. *)
val length : 'a t -> int

val find_opt : 'a t -> int -> 'a option

val mem : 'a t -> int -> bool

(** Insert, overwriting any existing entry for the key. *)
val replace : 'a t -> int -> 'a -> unit

(** Remove if present. *)
val remove : 'a t -> int -> unit

(** Live entries, in unspecified order. *)
val iter : (int -> 'a -> unit) -> 'a t -> unit

val fold : (int -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
