(** Open-addressing hash table from positive int keys to ['a] — the
    heap's object store.  Allocation-free inserts and probes; see the
    implementation for the tombstone scheme.  Keys must be positive.

    Internally sharded by the key's low bits.  The default is one
    unlocked shard (the sequential configuration); the multi-domain
    heap creates it with [~shards:(ndomains)] and [~locked:true], which
    guards every shard with its own mutex. *)

type 'a t

(** [dummy] fills empty value slots so removed entries are not
    retained.  [shards] is rounded up to a power of two. *)
val create :
  ?capacity:int -> ?shards:int -> ?locked:bool -> dummy:'a -> unit -> 'a t

val nshards : 'a t -> int

(** Number of live entries (sums shard counts without locking — exact
    only when no domain is mutating). *)
val length : 'a t -> int

val find_opt : 'a t -> int -> 'a option

val mem : 'a t -> int -> bool

(** Insert, overwriting any existing entry for the key. *)
val replace : 'a t -> int -> 'a -> unit

(** Remove if present. *)
val remove : 'a t -> int -> unit

(** Live entries, in unspecified order. *)
val iter : (int -> 'a -> unit) -> 'a t -> unit

val fold : (int -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b

(** Fold the [i]th shard only — the parallel sweep's unit of work.
    Skips the shard lock: callers must guarantee no concurrent mutation
    (the GC holds the world stopped). *)
val fold_shard : (int -> 'a -> 'b -> 'b) -> 'a t -> int -> 'b -> 'b
