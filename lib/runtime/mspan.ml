(** mspans: runs of pages carved into equally-sized slots (paper §3.3).

    A span is owned by exactly one place at a time: a thread's mcache (so
    allocation and tcfree on it are lock-free), the mcentral (shared,
    requires "locking" — modelled as a tcfree give-up), dangling (large
    span in the middle of the 2-step free of fig. 9), or free. *)

type state =
  | In_mcache of int  (** owned by thread/P [i] *)
  | In_mcentral
  | Dangling  (** large span: pages already returned, struct awaiting GC *)
  | Free

type t = {
  span_id : int;
  class_idx : int;  (** −1 for a dedicated large-object span *)
  npages : int;
  slot_size : int;
  nslots : int;
  alloc_bits : Bytes.t;
  mutable free_index : int;  (** next never-used slot (bump pointer) *)
  mutable free_list : int list;  (** slots freed by tcfree/sweep *)
  mutable allocated : int;  (** live slots *)
  mutable state : state;
}

(* Atomic: the serve daemon runs programs on parallel worker domains,
   and every heap's spans draw ids from this one counter. *)
let next_id = Atomic.make 0

let create ~class_idx ~npages ~slot_size ~nslots =
  {
    span_id = Atomic.fetch_and_add next_id 1 + 1;
    class_idx;
    npages;
    slot_size;
    nslots;
    alloc_bits = Bytes.make nslots '\000';
    free_index = 0;
    free_list = [];
    allocated = 0;
    state = Free;
  }

let create_small class_idx =
  let npages = Sizeclass.pages_for_class class_idx in
  let slot_size = Sizeclass.class_size class_idx in
  let nslots = npages * Sizeclass.page_size / slot_size in
  create ~class_idx ~npages ~slot_size ~nslots

let create_large bytes =
  let npages = Sizeclass.pages_for_large bytes in
  create ~class_idx:(-1) ~npages ~slot_size:bytes ~nslots:1

let slot_allocated t slot = Bytes.get t.alloc_bits slot <> '\000'

let set_slot t slot b =
  Bytes.set t.alloc_bits slot (if b then '\001' else '\000')

let is_full t = t.free_index >= t.nslots && t.free_list = []

(** Allocate one slot: pop the free list, else bump the free index. *)
let alloc_slot t : int option =
  match t.free_list with
  | slot :: rest ->
    t.free_list <- rest;
    set_slot t slot true;
    t.allocated <- t.allocated + 1;
    Some slot
  | [] ->
    if t.free_index < t.nslots then begin
      let slot = t.free_index in
      t.free_index <- slot + 1;
      set_slot t slot true;
      t.allocated <- t.allocated + 1;
      Some slot
    end
    else None

(** Free one slot.  If it is the top of the bump region, the free index
    is reverted (cascading over already-freed slots below it) — the
    cheap path the paper's TcfreeSmall relies on; otherwise it goes on
    the span's free list. *)
let free_slot t slot =
  assert (slot_allocated t slot);
  set_slot t slot false;
  t.allocated <- t.allocated - 1;
  if slot = t.free_index - 1 then begin
    (* revert the allocator pointer over the trailing run of free slots *)
    let idx = ref slot in
    while !idx >= 0 && not (slot_allocated t !idx) do
      decr idx
    done;
    t.free_index <- !idx + 1;
    (* drop reverted slots from the free list *)
    t.free_list <- List.filter (fun s -> s < t.free_index) t.free_list
  end
  else t.free_list <- slot :: t.free_list
