(** TCMalloc-style size classes (paper §3.3).

    Small objects are rounded up to one of ~60 size classes and allocated
    from per-class spans; anything above {!max_small} gets a dedicated
    span of whole pages, like Go's large-object path.  The class table is
    generated the way Go's is: 8-byte steps at the bottom, growing by
    roughly 12.5% per class above 128 bytes, capped at 32 KiB. *)

let page_size = 8192

let max_small = 32768

(* Class sizes, ascending.  Generated once at startup. *)
let sizes : int array =
  let round_up v align = (v + align - 1) / align * align in
  let rec gen acc size =
    if size >= max_small then List.rev (max_small :: acc)
    else begin
      let align =
        if size <= 128 then 8
        else if size <= 1024 then 16
        else if size <= 8192 then 128
        else 1024
      in
      let next = round_up (size + (size / 8) + 1) align in
      gen (size :: acc) next
    end
  in
  Array.of_list (gen [] 8)

let n_classes = Array.length sizes

(** Reference lookup, kept as the oracle for the direct-mapped tables
    below (and their equivalence test). *)
let class_for_size_search bytes =
  if bytes > max_small then None
  else begin
    (* binary search for the first class >= bytes *)
    let lo = ref 0 and hi = ref (n_classes - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if sizes.(mid) >= bytes then hi := mid else lo := mid + 1
    done;
    Some !lo
  end

(* Direct-mapped size→class tables, Go's size_to_class8/size_to_class128
   scheme.  Two granularities: 8-byte buckets up to [small_cutoff] and
   16-byte buckets above it.  Go's second table uses 128-byte buckets,
   but our generated class sizes above 1024 are 16-aligned rather than
   128-aligned (e.g. 1168), so 16 is the coarsest granularity that maps
   every bucket to the minimal class without changing the class table
   itself. *)

let small_cutoff = 1024

(* size_to_class8.(divRoundUp s 8) for s <= small_cutoff *)
let size_to_class8 : int array =
  let t = Array.make ((small_cutoff / 8) + 1) 0 in
  let cls = ref 0 in
  for bucket = 1 to small_cutoff / 8 do
    let bytes = bucket * 8 in
    while sizes.(!cls) < bytes do
      incr cls
    done;
    t.(bucket) <- !cls
  done;
  t

(* size_to_class16.(divRoundUp (s - small_cutoff) 16) for
   small_cutoff < s <= max_small *)
let size_to_class16 : int array =
  let t = Array.make (((max_small - small_cutoff) / 16) + 1) 0 in
  let cls = ref 0 in
  for bucket = 1 to (max_small - small_cutoff) / 16 do
    let bytes = small_cutoff + (bucket * 16) in
    while sizes.(!cls) < bytes do
      incr cls
    done;
    t.(bucket) <- !cls
  done;
  t

(** Smallest class index whose size fits [bytes]; [None] for large
    objects.  O(1): one table load on both small-object branches. *)
let class_for_size bytes =
  if bytes <= small_cutoff then
    if bytes <= 0 then Some 0
    else Some size_to_class8.((bytes + 7) lsr 3)
  else if bytes <= max_small then
    Some size_to_class16.((bytes - small_cutoff + 15) lsr 4)
  else None

let class_size idx = sizes.(idx)

(** Number of pages a span of this class occupies: enough that slot waste
    stays under ~12.5%, like Go's class_to_allocnpages table. *)
let pages_for_class idx =
  let size = sizes.(idx) in
  let rec try_pages n =
    let span_bytes = n * page_size in
    let slots = span_bytes / size in
    let waste = span_bytes - (slots * size) in
    if slots >= 1 && waste * 8 <= span_bytes then n else try_pages (n + 1)
  in
  try_pages 1

let pages_for_large bytes = (bytes + page_size - 1) / page_size
