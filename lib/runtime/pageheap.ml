(** Page-level accounting: the bottom of the allocator stack.

    Pages are never handed back to the "OS" during a run; a freed span's
    pages go to a free pool that later span creations draw from first,
    which is what Go's page allocator does within one heap arena. *)

type t = {
  mutable mapped_pages : int;  (** high-water mark of pages ever used *)
  mutable free_pages : int;  (** pages in the reuse pool *)
  mutable used_pages : int;  (** pages currently backing live spans *)
  mutable max_used_pages : int;
      (** peak of [used_pages]: the paper's "maxheap" — heap size as the
          process sees it, which only shrinks when whole spans release
          their pages *)
  mutable idle_spans : Mspan.t list;  (** recycled span structs *)
  lock : Mutex.t;
  mutable locked : bool;
      (** true in the shared (multi-domain) heap: page transitions then
          take [lock], since every domain's mcache refill ends here *)
}

let create () =
  { mapped_pages = 0; free_pages = 0; used_pages = 0; max_used_pages = 0;
    idle_spans = []; lock = Mutex.create (); locked = false }

let alloc_pages t n =
  if t.locked then Mutex.lock t.lock;
  if t.free_pages >= n then t.free_pages <- t.free_pages - n
  else begin
    let fresh = n - t.free_pages in
    t.free_pages <- 0;
    t.mapped_pages <- t.mapped_pages + fresh
  end;
  t.used_pages <- t.used_pages + n;
  if t.used_pages > t.max_used_pages then t.max_used_pages <- t.used_pages;
  if t.locked then Mutex.unlock t.lock

let free_pages t n =
  if t.locked then Mutex.lock t.lock;
  t.free_pages <- t.free_pages + n;
  t.used_pages <- t.used_pages - n;
  if t.locked then Mutex.unlock t.lock

let mapped_bytes t = t.mapped_pages * Sizeclass.page_size

let max_used_bytes t = t.max_used_pages * Sizeclass.page_size

let used_bytes t = t.used_pages * Sizeclass.page_size
