(** Page-level accounting: the bottom of the allocator stack.  Pages are
    never unmapped during a run; freed spans' pages go to a reuse pool. *)

type t = {
  mutable mapped_pages : int;
  mutable free_pages : int;
  mutable used_pages : int;
  mutable max_used_pages : int;
      (** peak pages backing live spans — the paper's "maxheap" *)
  mutable idle_spans : Mspan.t list;
  lock : Mutex.t;
  mutable locked : bool;
      (** set by the shared (multi-domain) heap; page transitions then
          take [lock] *)
}

val create : unit -> t

val alloc_pages : t -> int -> unit

val free_pages : t -> int -> unit

val mapped_bytes : t -> int

val max_used_bytes : t -> int

(** Bytes currently backing live spans (the sampler's span-backed curve). *)
val used_bytes : t -> int
