(** Periodic metrics sampler: every [every] interpreter steps, snapshot
    the heap counters into a bounded ring so long runs still dump a
    tractable time series (`--metrics-json` includes it). *)

module Json = Gofree_obs.Json
module Ring = Gofree_obs.Ring

type sample = {
  sm_step : int;  (** interpreter step at which the snapshot was taken *)
  sm_heap_live : int;
  sm_span_bytes : int;  (** pages backing live spans, in bytes *)
  sm_gc_time_ns : int64;  (** cumulative *)
  sm_gc_cycles : int;
  sm_alloced_bytes : int;  (** cumulative *)
  sm_freed_bytes : int;  (** cumulative, tcfree only *)
}

(* [lock] guards the ring: with goroutines running on multiple domains,
   several mutators can reach a sampling safepoint concurrently, and
   [Ring.push] mutates head/length state that would corrupt under a
   race.  Uncontended in sequential runs. *)
type t = { every : int; ring : sample Ring.t; lock : Mutex.t }

let create ?(capacity = 4096) ~every () =
  if every <= 0 then invalid_arg "Sampler.create: every must be positive";
  { every; ring = Ring.create ~capacity; lock = Mutex.create () }

let every t = t.every

(** Should a snapshot be taken at interpreter step [step]? *)
let due t ~step = step mod t.every = 0

let record t ~step ~span_bytes (m : Metrics.t) =
  let s =
    {
      sm_step = step;
      sm_heap_live = m.Metrics.heap_live;
      sm_span_bytes = span_bytes;
      sm_gc_time_ns = m.Metrics.gc_time_ns;
      sm_gc_cycles = m.Metrics.gc_cycles;
      sm_alloced_bytes = m.Metrics.alloced_bytes;
      sm_freed_bytes = m.Metrics.freed_bytes;
    }
  in
  Mutex.lock t.lock;
  Ring.push t.ring s;
  Mutex.unlock t.lock

let samples t =
  Mutex.lock t.lock;
  let l = Ring.to_list t.ring in
  Mutex.unlock t.lock;
  l

let sample_to_json s =
  Json.Obj
    [
      ("step", Json.Int s.sm_step);
      ("heap_live", Json.Int s.sm_heap_live);
      ("span_bytes", Json.Int s.sm_span_bytes);
      ("gc_time_ns", Json.Int (Int64.to_int s.sm_gc_time_ns));
      ("gc_cycles", Json.Int s.sm_gc_cycles);
      ("alloced_bytes", Json.Int s.sm_alloced_bytes);
      ("freed_bytes", Json.Int s.sm_freed_bytes);
    ]

(** The time series as JSON.  [dropped] counts samples lost to ring
    wraparound, so consumers can tell a truncated series from a full
    one. *)
let to_json t =
  Json.Obj
    [
      Gofree_obs.Schema.(field Samples);
      ("every", Json.Int t.every);
      ("capacity", Json.Int (Ring.capacity t.ring));
      ("recorded", Json.Int (Ring.pushed t.ring));
      ("dropped", Json.Int (Ring.pushed t.ring - Ring.length t.ring));
      ("samples", Json.List (List.map sample_to_json (samples t)));
    ]
