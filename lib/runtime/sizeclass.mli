(** TCMalloc-style size classes (paper §3.3). *)

val page_size : int

(** Largest small-object size; anything above gets a dedicated span. *)
val max_small : int

(** Class sizes, ascending; first 8, last {!max_small}. *)
val sizes : int array

val n_classes : int

(** Smallest class whose slot fits [bytes]; [None] for large objects.
    O(1) via direct-mapped size→class tables (Go's size_to_class8
    scheme). *)
val class_for_size : int -> int option

(** The original binary-search lookup, kept as the oracle the table
    lookup is property-tested against. *)
val class_for_size_search : int -> int option

val class_size : int -> int

(** Pages per span of a class, keeping slot waste under ~12.5%. *)
val pages_for_class : int -> int

val pages_for_large : int -> int
