(** The simulated Go heap: object store, allocation entry points, GC
    pacing, and hooks connecting the mutator (the MiniGo interpreter) to
    the collector.

    Every MiniGo heap object is a record here, placed in a real
    mspan/mcache/mcentral slot so that tcfree's ownership and span-state
    checks behave like the paper's runtime.  Stack-allocated objects get
    records too (pointers need uniform addresses) but occupy no span and
    cost the GC nothing; the interpreter releases them when their scope
    exits.

    Payloads are an extensible variant so the runtime library stays
    independent of the interpreter's value type; the interpreter registers
    a tracer that enumerates the heap addresses a payload references. *)

type payload = ..

type payload += No_payload

type placement =
  | On_heap of Mspan.t * int  (** span and slot *)
  | On_stack of int  (** owning scope token *)

type obj = {
  addr : int;
  size : int;  (** requested bytes *)
  category : Metrics.category;
  mutable payload : payload;
  placement : placement;
  mutable marked : bool;
  mutable freed : bool;
  mutable poisoned : bool;
}

type config = {
  gogc : int;  (** heap growth percentage between GCs (GOGC) *)
  gc_disabled : bool;  (** the Go-GCOff setting of fig. 11 *)
  poison_on_free : bool;  (** §6.8's mock tcfree: corrupt freed memory *)
  concurrent_gc_window : int;
      (** bytes of allocation after a GC cycle during which the collector
          is considered "running concurrently" and tcfree backs off (§5);
          byte-based so the window has the same duration for small- and
          large-object workloads *)
  min_heap : int;  (** first GC trigger threshold *)
  grow_map_free_old : bool;
      (** GrowMapAndFreeOld (§4.6.2): explicitly free a growing map's
          abandoned bucket array.  Off in the stock-Go runtime. *)
}

let default_config =
  {
    gogc = 100;
    gc_disabled = false;
    poison_on_free = false;
    concurrent_gc_window = 16 * 1024;
    min_heap = 512 * 1024;
    grow_map_free_old = true;
  }

type t = {
  config : config;
  metrics : Metrics.t;
  pages : Pageheap.t;
  central : Mcentral.t;
  mutable caches : Mcache.t array;  (** one per logical processor *)
  objects : obj Objtable.t;  (** live (and stack) objects by address *)
  mutable next_addr : int;
  mutable next_gc : int;  (** heap_live threshold for the next cycle *)
  mutable gc_window_left : int;
      (** remaining bytes of the simulated concurrent-mark window *)
  mutable dangling_spans : Mspan.t list;  (** fig. 9 step-1 output *)
  (* mutator hooks, registered by the interpreter *)
  mutable trace_payload : payload -> (int -> unit) -> unit;
  mutable poison_payload : payload -> unit;
      (** poison mode: overwrite the payload's contents so any later read
          through a stale reference fails loudly (§6.8) *)
  mutable iter_roots : (int -> unit) -> unit;
  mutable gc_requested : bool;
  mutable sampler : Sampler.t option;
      (** periodic metrics snapshots; attached by the runner when
          [--metrics-json]/[sample_every] asks for a time series *)
  mutable last_gc_end_ns : int64;
      (** wall-clock end of the previous cycle; 0 before the first —
          feeds the inter-pause-gap histogram *)
  tombstones : (int, string) Hashtbl.t;
      (** freed address → how it died; diagnostic detail for corruption
          reports *)
}

(* A placeholder filling the object table's empty value slots; never
   returned by a lookup (its address 0 is not a valid key). *)
let dummy_obj =
  {
    addr = 0;
    size = 0;
    category = Metrics.Cat_other;
    payload = No_payload;
    placement = On_stack 0;
    marked = false;
    freed = true;
    poisoned = false;
  }

let create ?(config = default_config) ?(nprocs = 4) () =
  let pages = Pageheap.create () in
  {
    config;
    metrics = Metrics.create ();
    pages;
    central = Mcentral.create pages;
    caches = Array.init nprocs Mcache.create;
    objects = Objtable.create ~capacity:4096 ~dummy:dummy_obj ();
    next_addr = 1;
    next_gc = config.min_heap;
    gc_window_left = 0;
    dangling_spans = [];
    trace_payload = (fun _ _ -> ());
    poison_payload = (fun _ -> ());
    iter_roots = (fun _ -> ());
    gc_requested = false;
    sampler = None;
    last_gc_end_ns = 0L;
    tombstones = Hashtbl.create 64;
  }

let nprocs t = Array.length t.caches

(** Is the (simulated concurrent) collector currently running?  tcfree
    refuses to race it (§5). *)
let gc_running t = t.gc_window_left > 0

let find_obj t addr = Objtable.find_opt t.objects addr

let fresh_addr t =
  let a = t.next_addr in
  t.next_addr <- a + 1;
  a

(** Allocate a heap object of [size] bytes on behalf of [thread].
    Checks GC pacing first (setting [gc_requested] — the interpreter runs
    the cycle at its next safepoint, keeping collection out of the middle
    of an allocation). *)
let alloc_heap t ~thread ~category ~size ~payload : obj =
  if
    (not t.config.gc_disabled)
    && t.metrics.Metrics.heap_live >= t.next_gc
  then t.gc_requested <- true;
  if t.gc_window_left > 0 then
    t.gc_window_left <- max 0 (t.gc_window_left - max 1 size);
  let thread = thread mod Array.length t.caches in
  let placement =
    match Sizeclass.class_for_size (max 1 size) with
    | Some class_idx ->
      let span, slot =
        Mcache.alloc t.caches.(thread) t.central class_idx
      in
      On_heap (span, slot)
    | None ->
      (* Large object: dedicated span, pushed straight to mcentral-like
         shared ownership (fig. 9 treats it outside any mcache). *)
      let span = Mspan.create_large size in
      Pageheap.alloc_pages t.pages span.Mspan.npages;
      span.Mspan.state <- Mspan.In_mcentral;
      ignore (Mspan.alloc_slot span);
      On_heap (span, 0)
  in
  let obj =
    {
      addr = fresh_addr t;
      size;
      category;
      payload;
      placement;
      marked = false;
      freed = false;
      poisoned = false;
    }
  in
  Objtable.replace t.objects obj.addr obj;
  Metrics.count_alloc t.metrics ~category ~heap:true ~bytes:size;
  obj

(** Allocate a stack object: no span, no GC cost; released when scope
    [scope] exits. *)
let alloc_stack t ~scope ~category ~size ~payload : obj =
  let obj =
    {
      addr = fresh_addr t;
      size;
      category;
      payload;
      placement = On_stack scope;
      marked = false;
      freed = false;
      poisoned = false;
    }
  in
  Objtable.replace t.objects obj.addr obj;
  Metrics.count_alloc t.metrics ~category ~heap:false ~bytes:size;
  obj

let is_stack_obj obj =
  match obj.placement with On_stack _ -> true | On_heap _ -> false

(* Tombstones are diagnostic detail for corruption reports; they are only
   recorded in poison mode, where wrong frees are being hunted — normal
   runs skip the bookkeeping entirely. *)
let bury t addr reason =
  if t.config.poison_on_free then Hashtbl.replace t.tombstones addr reason

let death_of t addr =
  match Hashtbl.find_opt t.tombstones addr with
  | Some reason -> reason
  | None ->
    if t.config.poison_on_free then "never existed"
    else "tombstones disabled outside poison mode"

(** Drop a stack object at scope exit. *)
let release_stack t obj =
  if not obj.freed then begin
    obj.freed <- true;
    if t.config.poison_on_free then begin
      obj.poisoned <- true;
      t.poison_payload obj.payload
    end;
    bury t obj.addr "stack scope exit";
    Objtable.remove t.objects obj.addr
  end

let live_heap_objects t =
  Objtable.fold
    (fun _ o acc -> if is_stack_obj o then acc else o :: acc)
    t.objects []
