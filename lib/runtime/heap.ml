(** The simulated Go heap: object store, allocation entry points, GC
    pacing, and hooks connecting the mutator (the MiniGo interpreter) to
    the collector.

    Every MiniGo heap object is a record here, placed in a real
    mspan/mcache/mcentral slot so that tcfree's ownership and span-state
    checks behave like the paper's runtime.  Stack-allocated objects get
    records too (pointers need uniform addresses) but occupy no span and
    cost the GC nothing; the interpreter releases them when their scope
    exits.

    Payloads are an extensible variant so the runtime library stays
    independent of the interpreter's value type; the interpreter registers
    a tracer that enumerates the heap addresses a payload references. *)

type payload = ..

type payload += No_payload

type placement =
  | On_heap of Mspan.t * int  (** span and slot *)
  | On_stack of int  (** owning scope token *)

type obj = {
  addr : int;
  size : int;  (** requested bytes *)
  category : Metrics.category;
  mutable payload : payload;
  placement : placement;
  mutable marked : bool;
  mutable freed : bool;
  mutable poisoned : bool;
}

type config = {
  gogc : int;  (** heap growth percentage between GCs (GOGC) *)
  gc_disabled : bool;  (** the Go-GCOff setting of fig. 11 *)
  poison_on_free : bool;  (** §6.8's mock tcfree: corrupt freed memory *)
  concurrent_gc_window : int;
      (** bytes of allocation after a GC cycle during which the collector
          is considered "running concurrently" and tcfree backs off (§5);
          byte-based so the window has the same duration for small- and
          large-object workloads *)
  min_heap : int;  (** first GC trigger threshold *)
  grow_map_free_old : bool;
      (** GrowMapAndFreeOld (§4.6.2): explicitly free a growing map's
          abandoned bucket array.  Off in the stock-Go runtime. *)
}

let default_config =
  {
    gogc = 100;
    gc_disabled = false;
    poison_on_free = false;
    concurrent_gc_window = 16 * 1024;
    min_heap = 512 * 1024;
    grow_map_free_old = true;
  }

type t = {
  config : config;
  metrics : Metrics.t;
      (** sequential heap: the one record every event updates.  Shared
          heap: shard 0 of [metric_shards]; read {!merged_metrics}. *)
  pages : Pageheap.t;
  central : Mcentral.t;
  mutable caches : Mcache.t array;  (** one per logical processor *)
  objects : obj Objtable.t;  (** live (and stack) objects by address *)
  shared : bool;
      (** true when multiple domains mutate this heap concurrently: the
          object table is sharded+locked, mcentral/pageheap serialize
          internally, metrics stripe per domain, and frees serialize on
          [free_mutex] *)
  metric_shards : Metrics.t array;
      (** per-domain metric stripes; [metric_shards.(0) == metrics].
          Length 1 unless [shared]. *)
  live_atomic : int Atomic.t;
      (** shared mode: authoritative live-byte count for GC pacing
          (per-shard [heap_live] values only sum to it, individually
          they are meaningless) *)
  max_live_atomic : int Atomic.t;  (** shared mode: true concurrent peak *)
  free_mutex : Mutex.t;
      (** shared mode: serializes tcfree bodies so the check-then-free
          sequence (§5) is atomic with respect to other freeing domains;
          uncontended in the common path since most frees are local *)
  tomb_mutex : Mutex.t;  (** guards [tombstones] in shared poison runs *)
  next_addr : int Atomic.t;
  mutable next_gc : int;  (** heap_live threshold for the next cycle *)
  mutable gc_window_left : int;
      (** remaining bytes of the simulated concurrent-mark window *)
  mutable dangling_spans : Mspan.t list;  (** fig. 9 step-1 output *)
  (* mutator hooks, registered by the interpreter *)
  mutable trace_payload : payload -> (int -> unit) -> unit;
  mutable poison_payload : payload -> unit;
      (** poison mode: overwrite the payload's contents so any later read
          through a stale reference fails loudly (§6.8) *)
  mutable iter_roots : (int -> unit) -> unit;
  mutable gc_requested : bool;
  mutable sampler : Sampler.t option;
      (** periodic metrics snapshots; attached by the runner when
          [--metrics-json]/[sample_every] asks for a time series *)
  mutable last_gc_end_ns : int64;
      (** wall-clock end of the previous cycle; 0 before the first —
          feeds the inter-pause-gap histogram *)
  tombstones : (int, string) Hashtbl.t;
      (** freed address → how it died; diagnostic detail for corruption
          reports *)
}

(* A placeholder filling the object table's empty value slots; never
   returned by a lookup (its address 0 is not a valid key). *)
let dummy_obj =
  {
    addr = 0;
    size = 0;
    category = Metrics.Cat_other;
    payload = No_payload;
    placement = On_stack 0;
    marked = false;
    freed = true;
    poisoned = false;
  }

let create ?(config = default_config) ?(nprocs = 4) ?(shared = false) () =
  let pages = Pageheap.create () in
  let central = Mcentral.create pages in
  if shared then begin
    pages.Pageheap.locked <- true;
    central.Mcentral.locked <- true
  end;
  let metrics = Metrics.create () in
  {
    config;
    metrics;
    pages;
    central;
    caches = Array.init nprocs Mcache.create;
    objects =
      Objtable.create ~capacity:4096
        ~shards:(if shared then max 2 nprocs else 1)
        ~locked:shared ~dummy:dummy_obj ();
    shared;
    metric_shards =
      (if shared then
         Array.init nprocs (fun i -> if i = 0 then metrics else Metrics.create ())
       else [| metrics |]);
    live_atomic = Atomic.make 0;
    max_live_atomic = Atomic.make 0;
    free_mutex = Mutex.create ();
    tomb_mutex = Mutex.create ();
    next_addr = Atomic.make 1;
    next_gc = config.min_heap;
    gc_window_left = 0;
    dangling_spans = [];
    trace_payload = (fun _ _ -> ());
    poison_payload = (fun _ -> ());
    iter_roots = (fun _ -> ());
    gc_requested = false;
    sampler = None;
    last_gc_end_ns = 0L;
    tombstones = Hashtbl.create 64;
  }

let nprocs t = Array.length t.caches

(** Is the (simulated concurrent) collector currently running?  tcfree
    refuses to race it (§5). *)
let gc_running t = t.gc_window_left > 0

let find_obj t addr = Objtable.find_opt t.objects addr

let fresh_addr t = Atomic.fetch_and_add t.next_addr 1

(** The metric stripe [thread] writes to: the single shared record on a
    sequential heap, the domain's own shard on a shared one. *)
let[@inline] metrics_for t thread =
  if t.shared then
    t.metric_shards.(thread mod Array.length t.metric_shards)
  else t.metrics

(** Authoritative live-byte count — drives GC pacing in both modes. *)
let[@inline] live_bytes t =
  if t.shared then Atomic.get t.live_atomic else t.metrics.Metrics.heap_live

let bump_live t bytes =
  let live = Atomic.fetch_and_add t.live_atomic bytes + bytes in
  let rec raise_max () =
    let m = Atomic.get t.max_live_atomic in
    if live > m && not (Atomic.compare_and_set t.max_live_atomic m live) then
      raise_max ()
  in
  raise_max ()

let drop_live t bytes = ignore (Atomic.fetch_and_add t.live_atomic (-bytes))

(** One coherent metrics record.  On a sequential heap this is the live
    record itself; on a shared heap the per-domain stripes are summed
    and the atomically tracked live/peak values overwrite the stripe
    artifacts.  Only meaningful when no domain is mutating. *)
let merged_metrics t =
  if not t.shared then t.metrics
  else begin
    let m = Metrics.merged t.metric_shards in
    m.Metrics.heap_live <- Atomic.get t.live_atomic;
    m.Metrics.max_heap <- Atomic.get t.max_live_atomic;
    m
  end

(** Allocate a heap object of [size] bytes on behalf of [thread].
    Checks GC pacing first (setting [gc_requested] — the interpreter runs
    the cycle at its next safepoint, keeping collection out of the middle
    of an allocation). *)
let alloc_heap t ~thread ~category ~size ~payload : obj =
  if (not t.config.gc_disabled) && live_bytes t >= t.next_gc then
    t.gc_requested <- true;
  if t.gc_window_left > 0 then
    t.gc_window_left <- max 0 (t.gc_window_left - max 1 size);
  let thread = thread mod Array.length t.caches in
  let placement =
    match Sizeclass.class_for_size (max 1 size) with
    | Some class_idx ->
      let span, slot =
        Mcache.alloc t.caches.(thread) t.central class_idx
      in
      On_heap (span, slot)
    | None ->
      (* Large object: dedicated span, pushed straight to mcentral-like
         shared ownership (fig. 9 treats it outside any mcache). *)
      let span = Mspan.create_large size in
      Pageheap.alloc_pages t.pages span.Mspan.npages;
      span.Mspan.state <- Mspan.In_mcentral;
      ignore (Mspan.alloc_slot span);
      On_heap (span, 0)
  in
  let obj =
    {
      addr = fresh_addr t;
      size;
      category;
      payload;
      placement;
      marked = false;
      freed = false;
      poisoned = false;
    }
  in
  Objtable.replace t.objects obj.addr obj;
  Metrics.count_alloc (metrics_for t thread) ~category ~heap:true ~bytes:size;
  if t.shared then bump_live t size;
  obj

(** Allocate a stack object: no span, no GC cost; released when scope
    [scope] exits. *)
let alloc_stack ?(thread = 0) t ~scope ~category ~size ~payload : obj =
  let obj =
    {
      addr = fresh_addr t;
      size;
      category;
      payload;
      placement = On_stack scope;
      marked = false;
      freed = false;
      poisoned = false;
    }
  in
  Objtable.replace t.objects obj.addr obj;
  Metrics.count_alloc (metrics_for t thread) ~category ~heap:false ~bytes:size;
  obj

let is_stack_obj obj =
  match obj.placement with On_stack _ -> true | On_heap _ -> false

(* Tombstones are diagnostic detail for corruption reports; they are only
   recorded in poison mode, where wrong frees are being hunted — normal
   runs skip the bookkeeping entirely. *)
let bury t addr reason =
  if t.config.poison_on_free then
    if t.shared then begin
      Mutex.lock t.tomb_mutex;
      Hashtbl.replace t.tombstones addr reason;
      Mutex.unlock t.tomb_mutex
    end
    else Hashtbl.replace t.tombstones addr reason

let death_of t addr =
  match Hashtbl.find_opt t.tombstones addr with
  | Some reason -> reason
  | None ->
    if t.config.poison_on_free then "never existed"
    else "tombstones disabled outside poison mode"

(** Drop a stack object at scope exit. *)
let release_stack t obj =
  if not obj.freed then begin
    obj.freed <- true;
    if t.config.poison_on_free then begin
      obj.poisoned <- true;
      t.poison_payload obj.payload
    end;
    bury t obj.addr "stack scope exit";
    Objtable.remove t.objects obj.addr
  end

let live_heap_objects t =
  Objtable.fold
    (fun _ o acc -> if is_stack_obj o then acc else o :: acc)
    t.objects []
