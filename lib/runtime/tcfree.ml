(** The tcfree family (paper §5, Table 4): best-effort explicit
    deallocation that never compromises safety — whenever freeing would be
    unsafe or too costly, it gives up and leaves the object for GC.

    Give-up conditions implemented (§5):
    - GC is running concurrently (the simulated mark window);
    - the object's mspan has been swapped out of the allocating thread's
      mcache, or is owned by a different thread;
    - the object was already freed (tolerated double free);
    - the address is a stack object or not an object at all (ignored).

    Small objects are freed on the mcache fast path (clear the alloc bit,
    revert the span's free index when possible).  Large objects take the
    2-step path of fig. 9: pages are returned and the span is marked
    dangling immediately; the span struct itself is retired at the next
    GC sweep. *)

type outcome =
  | Freed of int  (** bytes reclaimed *)
  | Gave_up of Metrics.giveup

(* Shared bookkeeping once a free has been decided.  [metrics] is the
   calling thread's stripe ([Heap.metrics_for]). *)
let reclaim (heap : Heap.t) (metrics : Metrics.t) (obj : Heap.obj) ~source =
  obj.Heap.freed <- true;
  if heap.Heap.config.Heap.poison_on_free then begin
    obj.Heap.poisoned <- true;
    heap.Heap.poison_payload obj.Heap.payload
  end
  else obj.Heap.payload <- Heap.No_payload;
  Heap.bury heap obj.Heap.addr "tcfree";
  Objtable.remove heap.Heap.objects obj.Heap.addr;
  Metrics.count_tcfree metrics ~category:obj.Heap.category
    ~source ~bytes:obj.Heap.size;
  if heap.Heap.shared then Heap.drop_live heap obj.Heap.size;
  metrics.Metrics.tcfree_success <- metrics.Metrics.tcfree_success + 1;
  Freed obj.Heap.size

let tcfree_small (heap : Heap.t) metrics ~thread (obj : Heap.obj) span slot
    ~source =
  let cache = heap.Heap.caches.(thread mod Array.length heap.Heap.caches) in
  match span.Mspan.state with
  | Mspan.In_mcache owner
    when owner = cache.Mcache.thread_id && Mcache.owns cache span ->
    Mspan.free_slot span slot;
    reclaim heap metrics obj ~source
  | Mspan.In_mcache _ -> Gave_up Metrics.Ownership_changed
  | Mspan.In_mcentral | Mspan.Dangling | Mspan.Free ->
    (* span filled up and was swapped out since the allocation: freeing
       would require locking mcentral, so give up (§5) *)
    Gave_up Metrics.Span_swapped_out

let tcfree_large (heap : Heap.t) metrics (obj : Heap.obj) span slot ~source =
  (* Step 1 of fig. 9: return the pages and mark the span dangling; the
     GC mark phase skips dangling spans and the sweep retires them. *)
  Mspan.free_slot span slot;
  span.Mspan.state <- Mspan.Dangling;
  Pageheap.free_pages heap.Heap.pages span.Mspan.npages;
  heap.Heap.dangling_spans <- span :: heap.Heap.dangling_spans;
  reclaim heap metrics obj ~source

module Trace = Gofree_obs.Trace
module Json = Gofree_obs.Json
module Reg = Gofree_obs.Registry

(* Registry counters on the process-global runtime registry, active only
   while something holds [Reg.acquire_runtime] (the per-heap
   [Metrics.t] always counts; these exist so a daemon's telemetry scrape
   sees tcfree activity across every heap it has run). *)
let c_attempts =
  Reg.counter Reg.runtime ~help:"tcfree calls"
    "gofree_tcfree_attempts_total"

let c_freed =
  Reg.counter Reg.runtime ~help:"tcfree calls that freed the object"
    "gofree_tcfree_freed_total"

let c_giveup =
  Reg.counter Reg.runtime ~help:"tcfree calls that deferred to GC"
    "gofree_tcfree_giveup_total"

let c_giveup_by_reason =
  Array.map
    (fun name ->
      Reg.counter Reg.runtime ("gofree_tcfree_giveup_" ^ name ^ "_total"))
    Metrics.giveup_names

let count_outcome = function
  | Freed _ ->
    Reg.incr c_attempts;
    Reg.incr c_freed
  | Gave_up reason ->
    Reg.incr c_attempts;
    Reg.incr c_giveup;
    Reg.incr c_giveup_by_reason.(Metrics.giveup_index reason)

let source_name = function
  | Metrics.Src_slice -> "slice"
  | Metrics.Src_map -> "map"
  | Metrics.Src_map_grow -> "map_grow"

(* Trace instants on the runtime track: one per call, labelled with the
   outcome so giveup storms are visible next to GC cycles in Perfetto.
   Only reached when a trace is being captured. *)
let trace_outcome ~source addr = function
  | Freed bytes ->
    Trace.instant
      ~args:
        [
          ("addr", Json.Int addr);
          ("bytes", Json.Int bytes);
          ("source", Json.Str (source_name source));
        ]
      ~tid:Trace.tid_runtime "tcfree"
  | Gave_up reason ->
    Trace.instant
      ~args:
        [
          ("addr", Json.Int addr);
          ("reason", Json.Str Metrics.giveup_names.(Metrics.giveup_index reason));
        ]
      ~tid:Trace.tid_runtime "tcfree giveup"

(** [tcfree heap ~thread ~source addr] — the dispatching primitive of
    Table 4.  [source] records the Table 9 attribution
    (slice / map / map-growth). *)
let tcfree_impl (heap : Heap.t) ~thread ~source addr : outcome =
  let metrics = Heap.metrics_for heap thread in
  metrics.Metrics.tcfree_calls <- metrics.Metrics.tcfree_calls + 1;
  let give_up reason =
    Metrics.count_giveup metrics reason;
    Gave_up reason
  in
  if addr <= 0 then give_up Metrics.Not_an_object
  else
    match Heap.find_obj heap addr with
    | None -> give_up Metrics.Already_freed
    | Some obj ->
      if obj.Heap.freed then give_up Metrics.Already_freed
      else if Heap.is_stack_obj obj then give_up Metrics.Stack_object
      else if Heap.gc_running heap then give_up Metrics.Gc_running
      else begin
        match obj.Heap.placement with
        | Heap.On_stack _ -> give_up Metrics.Stack_object
        | Heap.On_heap (span, slot) ->
          if span.Mspan.class_idx >= 0 then
            let outcome =
              tcfree_small heap metrics ~thread obj span slot ~source
            in
            (match outcome with
            | Gave_up reason -> Metrics.count_giveup metrics reason
            | Freed _ -> ());
            outcome
          else tcfree_large heap metrics obj span slot ~source
      end

(* On a shared heap the whole check-then-free sequence serializes on
   [free_mutex]: two domains may race to free the same address (or a
   free may race a concurrent span swap), and the span/objtable edits
   must be atomic with respect to each other.  The ownership and
   GC-running *checks* stay inside the lock too — they are exactly the
   §5 give-up conditions this runtime exists to exercise, and the lock
   makes their answer definitive rather than best-effort. *)
let tcfree (heap : Heap.t) ~thread ~source addr : outcome =
  let outcome =
    if heap.Heap.shared then begin
      Mutex.lock heap.Heap.free_mutex;
      let o = tcfree_impl heap ~thread ~source addr in
      Mutex.unlock heap.Heap.free_mutex;
      o
    end
    else tcfree_impl heap ~thread ~source addr
  in
  if Reg.runtime_enabled () then count_outcome outcome;
  if Trace.enabled () then trace_outcome ~source addr outcome;
  outcome
