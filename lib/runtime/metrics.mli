(** Runtime metrics (paper Table 5, plus the accounting behind Tables
    8–9). *)

type category = Cat_slice | Cat_map | Cat_other

type free_source =
  | Src_slice  (** TcfreeSlice at a slice's end of life *)
  | Src_map  (** TcfreeMap at a map's end of life *)
  | Src_map_grow  (** GrowMapAndFreeOld *)

type giveup =
  | Gc_running
  | Ownership_changed
  | Span_swapped_out
  | Already_freed
  | Stack_object
  | Not_an_object

type t = {
  mutable alloced_bytes : int;
  mutable freed_bytes : int;
  mutable gc_cycles : int;
  mutable gc_time_ns : int64;
  mutable max_heap : int;  (** peak live bytes *)
  mutable max_heap_pages : int;  (** peak span-backed bytes: the paper's maxheap *)
  mutable heap_live : int;
  mutable stack_allocs : int array;  (** by category *)
  mutable heap_allocs : int array;
  mutable tcfreed_objects : int array;
  mutable gc_freed_objects : int array;
  mutable freed_by_source : int array;  (** bytes, by free_source *)
  mutable tcfree_calls : int;
  mutable tcfree_success : int;
  mutable giveups : int array;
  mutable heap_to_stack_pointers : int;  (** invariant-1 violations; must be 0 *)
  mutable poison_reads : int;
  mutable gc_marked_objects : int;
  mutable gc_swept_objects : int;
}

val category_index : category -> int

val source_index : free_source -> int

val giveup_index : giveup -> int

val create : unit -> t

(** freed / alloced, the paper's headline per-program metric. *)
val free_ratio : t -> float

val count_alloc : t -> category:category -> heap:bool -> bytes:int -> unit

val count_tcfree :
  t -> category:category -> source:free_source -> bytes:int -> unit

val count_gc_free : t -> category:category -> bytes:int -> unit

val count_giveup : t -> giveup -> unit

(** Accumulate a per-domain shard into [dst] (all counters summed;
    peaks maxed — the shared heap overwrites peaks with its atomically
    tracked values after merging). *)
val merge_into : dst:t -> t -> unit

(** Sum an array of per-domain shards into a fresh record. *)
val merged : t array -> t

(** Check the run-level conservation invariants (tcfree attempts =
    successes + giveups; successes = freed objects; and, given the
    surviving [live_objects] count, heap allocs = tcfreed + gc_freed +
    live).  [Error msg] names the first violated equation. *)
val check_conservation : ?live_objects:int -> t -> (unit, string) result

val pp : Format.formatter -> t -> unit

(** Name of a giveup counter, as used in the JSON export and the trace's
    tcfree instants. *)
val giveup_names : string array

(** Full metrics record as a JSON tree (schema [gofree-metrics-v1]). *)
val to_json : t -> Gofree_obs.Json.t

(** Inverse of {!to_json}; raises {!Gofree_obs.Json.Parse_error} on shape
    mismatches. *)
val of_json : Gofree_obs.Json.t -> t
