(** Periodic metrics sampler: bounded time series of heap counters,
    snapshotted every N interpreter steps. *)

type sample = {
  sm_step : int;
  sm_heap_live : int;
  sm_span_bytes : int;  (** bytes backing live spans at the snapshot *)
  sm_gc_time_ns : int64;  (** cumulative *)
  sm_gc_cycles : int;
  sm_alloced_bytes : int;  (** cumulative *)
  sm_freed_bytes : int;  (** cumulative, tcfree only *)
}

type t

(** [create ~every ()] samples every [every] steps into a ring of
    [capacity] slots (default 4096); older samples are dropped once the
    ring wraps. *)
val create : ?capacity:int -> every:int -> unit -> t

val every : t -> int

(** Should a snapshot be taken at interpreter step [step]? *)
val due : t -> step:int -> bool

val record : t -> step:int -> span_bytes:int -> Metrics.t -> unit

(** Retained samples, oldest first. *)
val samples : t -> sample list

(** Schema [gofree-samples-v1]; includes a [dropped] count so consumers
    can tell a wrapped series from a complete one. *)
val to_json : t -> Gofree_obs.Json.t
