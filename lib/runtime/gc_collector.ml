(** Non-moving mark-sweep collector with GOGC pacing (paper §3.3).

    Mark: walk from the mutator's registered roots through payload
    tracers, setting mark bits.  Heap objects that reference stack objects
    are Go memory-invariant violations and are counted (they must never
    occur if the escape analysis is sound).

    Sweep: every unmarked heap object is freed — its span slot is
    released and the object disappears from the store.  Dangling spans
    from the 2-step large-object tcfree (fig. 9) are retired here, and
    completely empty spans hand their pages back to the page heap.

    Pacing: the next cycle triggers when live heap grows past
    [heap_marked * (1 + GOGC/100)], Go's soft-goal mechanism (§6.4). *)

let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

let mark (heap : Heap.t) =
  let stack = Stack.create () in
  let push_addr from_heap addr =
    if addr > 0 then
      match Heap.find_obj heap addr with
      | None -> ()  (* dangling value: object already freed *)
      | Some obj ->
        if from_heap && Heap.is_stack_obj obj then
          heap.Heap.metrics.Metrics.heap_to_stack_pointers <-
            heap.Heap.metrics.Metrics.heap_to_stack_pointers + 1;
        if not obj.Heap.marked then begin
          obj.Heap.marked <- true;
          heap.Heap.metrics.Metrics.gc_marked_objects <-
            heap.Heap.metrics.Metrics.gc_marked_objects + 1;
          Stack.push obj stack
        end
  in
  (if Sys.getenv_opt "GOFREE_GC_DEBUG" <> None then begin
     let n = ref 0 in
     heap.Heap.iter_roots (fun _ -> incr n);
     Printf.eprintf "[gc] root addrs yielded: %d\n%!" !n
   end);
  heap.Heap.iter_roots (push_addr false);
  while not (Stack.is_empty stack) do
    let obj = Stack.pop stack in
    let from_heap = not (Heap.is_stack_obj obj) in
    (* A dangling large span's contents are skipped by marking (fig. 9):
       its object is already freed and no longer in the store, so it can
       never be popped here; nothing to special-case. *)
    heap.Heap.trace_payload obj.Heap.payload (push_addr from_heap)
  done

let sweep (heap : Heap.t) =
  let metrics = heap.Heap.metrics in
  let dead =
    Objtable.fold
      (fun _ (o : Heap.obj) acc ->
        if Heap.is_stack_obj o then begin
          (* stack objects are never swept, but their mark bits must be
             reset or the next cycle would skip tracing through them *)
          o.Heap.marked <- false;
          acc
        end
        else if o.Heap.marked then begin
          o.Heap.marked <- false;
          acc
        end
        else o :: acc)
      heap.Heap.objects []
  in
  if Sys.getenv_opt "GOFREE_GC_DEBUG" <> None then begin
    Printf.eprintf "[gc] cycle %d: marked %d, dead %d\n%!"
      (metrics.Metrics.gc_cycles + 1) metrics.Metrics.gc_marked_objects
      (List.length dead);
    List.iter (fun (o : Heap.obj) ->
        Printf.eprintf "  dead addr=%d size=%d cat=%d\n%!" o.Heap.addr o.Heap.size
          (Metrics.category_index o.Heap.category)) dead
  end;
  List.iter
    (fun (o : Heap.obj) ->
      metrics.Metrics.gc_swept_objects <-
        metrics.Metrics.gc_swept_objects + 1;
      (match o.Heap.placement with
      | Heap.On_heap (span, slot) ->
        if span.Mspan.class_idx >= 0 then Mspan.free_slot span slot
        else begin
          (* unreferenced large object: free its dedicated span now *)
          Mspan.free_slot span slot;
          span.Mspan.state <- Mspan.Free;
          Pageheap.free_pages heap.Heap.pages span.Mspan.npages
        end
      | Heap.On_stack _ -> assert false);
      o.Heap.freed <- true;
      if heap.Heap.config.Heap.poison_on_free then begin
        o.Heap.poisoned <- true;
        heap.Heap.poison_payload o.Heap.payload
      end;
      Metrics.count_gc_free metrics ~category:o.Heap.category
        ~bytes:o.Heap.size;
      Heap.bury heap o.Heap.addr
        (Printf.sprintf "swept by GC cycle %d"
           (metrics.Metrics.gc_cycles + 1));
      Objtable.remove heap.Heap.objects o.Heap.addr)
    dead;
  (* Step 2 of the large-object tcfree (fig. 9): dangling span structs
     join the idle pool after the mark phase. *)
  List.iter
    (fun (span : Mspan.t) -> span.Mspan.state <- Mspan.Free)
    heap.Heap.dangling_spans;
  heap.Heap.dangling_spans <- [];
  Mcentral.rebucket_after_sweep heap.Heap.central

module Trace = Gofree_obs.Trace
module Json = Gofree_obs.Json
module Reg = Gofree_obs.Registry

(* Pause/gap instruments live on the process-global runtime registry and
   record only while something (a daemon, a bench) holds
   [Reg.acquire_runtime] — otherwise each [collect] pays one atomic
   load.  Exponential rungs: simulated cycles span 10 µs "pauses" to
   multi-second gaps between cycles. *)
let gc_buckets_ms = Reg.exponential_buckets ~start:0.01 ~factor:2.0 ~count:18

let h_gc_pause =
  Reg.histogram Reg.runtime ~buckets:gc_buckets_ms
    ~help:"stop-the-world GC cycle duration (mark + sweep)"
    "gofree_gc_pause_ms"

let h_gc_gap =
  Reg.histogram Reg.runtime ~buckets:gc_buckets_ms
    ~help:"gap between consecutive GC cycles (end to start)"
    "gofree_gc_gap_ms"

(** Run one full GC cycle and update pacing. *)
let collect (heap : Heap.t) =
  let metrics = heap.Heap.metrics in
  if Trace.enabled () then
    Trace.begin_span
      ~args:
        [
          ("cycle", Json.Int (metrics.Metrics.gc_cycles + 1));
          ("heap_live", Json.Int metrics.Metrics.heap_live);
        ]
      ~tid:Trace.tid_runtime "gc cycle";
  let t0 = now_ns () in
  Trace.with_span ~tid:Trace.tid_runtime "mark" (fun () -> mark heap);
  Trace.with_span ~tid:Trace.tid_runtime "sweep" (fun () -> sweep heap);
  let t1 = now_ns () in
  if Trace.enabled () then begin
    Trace.end_span ~tid:Trace.tid_runtime "gc cycle";
    Trace.counter ~tid:Trace.tid_runtime "heap"
      [
        ("live", float_of_int metrics.Metrics.heap_live);
        ( "span_bytes",
          float_of_int (Pageheap.used_bytes heap.Heap.pages) );
      ]
  end;
  metrics.Metrics.gc_cycles <- metrics.Metrics.gc_cycles + 1;
  metrics.Metrics.gc_time_ns <-
    Int64.add metrics.Metrics.gc_time_ns (Int64.sub t1 t0);
  if Reg.runtime_enabled () then begin
    Reg.observe h_gc_pause (Int64.to_float (Int64.sub t1 t0) /. 1e6);
    if heap.Heap.last_gc_end_ns <> 0L then
      Reg.observe h_gc_gap
        (Int64.to_float (Int64.sub t0 heap.Heap.last_gc_end_ns) /. 1e6)
  end;
  heap.Heap.last_gc_end_ns <- t1;
  let marked = metrics.Metrics.heap_live in
  heap.Heap.next_gc <-
    max heap.Heap.config.Heap.min_heap
      (marked + (marked * heap.Heap.config.Heap.gogc / 100));
  (* Open the simulated concurrent-mark window: for the next few
     allocations, tcfree behaves as if GC were still running. *)
  heap.Heap.gc_window_left <- heap.Heap.config.Heap.concurrent_gc_window;
  heap.Heap.gc_requested <- false

(** Safepoint check: run a cycle if the pacer requested one. *)
let maybe_collect (heap : Heap.t) =
  if heap.Heap.gc_requested && not heap.Heap.config.Heap.gc_disabled then
    collect heap

(** Parallel mark + per-domain sweep for the multi-domain runtime.

    The whole cycle runs stop-the-world: the scheduler parks every
    mutator at a safepoint, then the GC leader builds a {!Par.cycle}
    and all rendezvoused domains help drain it.

    Mark: a shared grey list under the cycle mutex.  A worker takes an
    object, traces its payload *outside* the lock (the expensive part),
    then publishes children and mark bits back under the lock —
    check-and-set of mark bits is serialized so no object is counted
    twice.  Mark terminates when the grey list is empty and no worker
    is mid-trace.

    Sweep: workers claim object-table shards via an atomic ticket and
    scan them concurrently (mark-bit resets and dead-list collection
    touch disjoint shards).  The *application* of the dead list — span
    slot frees, page returns, metric updates, table removals — is then
    done serially by the leader: those structures are cross-shard and
    serializing the apply keeps the span state machine free of
    concurrent transitions.  GC accounting lands on metric stripe 0. *)
module Par = struct
  type cycle = {
    heap : Heap.t;
    mu : Mutex.t;
    cv : Condition.t;
    mutable grey : Heap.obj list;
    mutable tracing : int;  (* workers currently tracing a payload *)
    mutable mark_done : bool;
    mutable marked : int;  (* objects marked this cycle *)
    mutable h2s : int;  (* heap->stack edges observed while marking *)
    shard_next : int Atomic.t;  (* sweep-scan ticket *)
    mutable scanned : int;  (* shards folded and appended to [dead] *)
    mutable dead : Heap.obj list;
    mutable finished : bool;
    t0 : int64;
  }

  (* Must be called with [c.mu] held (or pre-publication by the leader,
     when no other domain can see the cycle yet). *)
  let push_addr c from_heap addr =
    if addr > 0 then
      match Heap.find_obj c.heap addr with
      | None -> ()  (* dangling value: object already freed *)
      | Some obj ->
        if from_heap && Heap.is_stack_obj obj then c.h2s <- c.h2s + 1;
        if not obj.Heap.marked then begin
          obj.Heap.marked <- true;
          c.marked <- c.marked + 1;
          c.grey <- obj :: c.grey
        end

  (** Build a cycle and seed the grey list from the roots.  Leader-only,
      before the cycle is published to helpers. *)
  let start (heap : Heap.t) : cycle =
    let c =
      {
        heap;
        mu = Mutex.create ();
        cv = Condition.create ();
        grey = [];
        tracing = 0;
        mark_done = false;
        marked = 0;
        h2s = 0;
        shard_next = Atomic.make 0;
        scanned = 0;
        dead = [];
        finished = false;
        t0 = now_ns ();
      }
    in
    heap.Heap.iter_roots (push_addr c false);
    c

  let mark_worker c =
    Mutex.lock c.mu;
    let rec loop () =
      if c.mark_done then Mutex.unlock c.mu
      else
        match c.grey with
        | [] ->
          if c.tracing = 0 then begin
            c.mark_done <- true;
            Condition.broadcast c.cv;
            Mutex.unlock c.mu
          end
          else begin
            Condition.wait c.cv c.mu;
            loop ()
          end
        | obj :: rest ->
          c.grey <- rest;
          c.tracing <- c.tracing + 1;
          Mutex.unlock c.mu;
          let from_heap = not (Heap.is_stack_obj obj) in
          let children = ref [] in
          c.heap.Heap.trace_payload obj.Heap.payload (fun a ->
              children := a :: !children);
          Mutex.lock c.mu;
          List.iter (push_addr c from_heap) !children;
          c.tracing <- c.tracing - 1;
          Condition.broadcast c.cv;
          loop ()
    in
    loop ()

  let scan_worker c =
    let objects = c.heap.Heap.objects in
    let n = Objtable.nshards objects in
    let rec grab () =
      let i = Atomic.fetch_and_add c.shard_next 1 in
      if i < n then begin
        let dead =
          Objtable.fold_shard
            (fun _ (o : Heap.obj) acc ->
              if Heap.is_stack_obj o then begin
                (* never swept, but the mark bit must reset or the next
                   cycle would skip tracing through it *)
                o.Heap.marked <- false;
                acc
              end
              else if o.Heap.marked then begin
                o.Heap.marked <- false;
                acc
              end
              else o :: acc)
            objects i []
        in
        Mutex.lock c.mu;
        c.dead <- List.rev_append dead c.dead;
        c.scanned <- c.scanned + 1;
        Condition.broadcast c.cv;
        Mutex.unlock c.mu;
        grab ()
      end
    in
    grab ()

  (* Serial application of the concurrently collected dead list, plus
     pacing — leader only, after every shard has been scanned. *)
  let apply c =
    let heap = c.heap in
    let metrics = heap.Heap.metrics in
    metrics.Metrics.gc_marked_objects <-
      metrics.Metrics.gc_marked_objects + c.marked;
    metrics.Metrics.heap_to_stack_pointers <-
      metrics.Metrics.heap_to_stack_pointers + c.h2s;
    List.iter
      (fun (o : Heap.obj) ->
        metrics.Metrics.gc_swept_objects <-
          metrics.Metrics.gc_swept_objects + 1;
        (match o.Heap.placement with
        | Heap.On_heap (span, slot) ->
          if span.Mspan.class_idx >= 0 then Mspan.free_slot span slot
          else begin
            Mspan.free_slot span slot;
            span.Mspan.state <- Mspan.Free;
            Pageheap.free_pages heap.Heap.pages span.Mspan.npages
          end
        | Heap.On_stack _ -> assert false);
        o.Heap.freed <- true;
        if heap.Heap.config.Heap.poison_on_free then begin
          o.Heap.poisoned <- true;
          heap.Heap.poison_payload o.Heap.payload
        end;
        Metrics.count_gc_free metrics ~category:o.Heap.category
          ~bytes:o.Heap.size;
        Heap.drop_live heap o.Heap.size;
        Heap.bury heap o.Heap.addr
          (Printf.sprintf "swept by GC cycle %d"
             (metrics.Metrics.gc_cycles + 1));
        Objtable.remove heap.Heap.objects o.Heap.addr)
      c.dead;
    List.iter
      (fun (span : Mspan.t) -> span.Mspan.state <- Mspan.Free)
      heap.Heap.dangling_spans;
    heap.Heap.dangling_spans <- [];
    Mcentral.rebucket_after_sweep heap.Heap.central;
    let t1 = now_ns () in
    metrics.Metrics.gc_cycles <- metrics.Metrics.gc_cycles + 1;
    metrics.Metrics.gc_time_ns <-
      Int64.add metrics.Metrics.gc_time_ns (Int64.sub t1 c.t0);
    if Reg.runtime_enabled () then begin
      Reg.observe h_gc_pause (Int64.to_float (Int64.sub t1 c.t0) /. 1e6);
      if heap.Heap.last_gc_end_ns <> 0L then
        Reg.observe h_gc_gap
          (Int64.to_float (Int64.sub c.t0 heap.Heap.last_gc_end_ns) /. 1e6)
    end;
    heap.Heap.last_gc_end_ns <- t1;
    let live = Heap.live_bytes heap in
    heap.Heap.next_gc <-
      max heap.Heap.config.Heap.min_heap
        (live + (live * heap.Heap.config.Heap.gogc / 100));
    heap.Heap.gc_window_left <- heap.Heap.config.Heap.concurrent_gc_window;
    heap.Heap.gc_requested <- false

  (** Drive the cycle as the leader: help mark and scan, wait for every
      claimed shard to be appended, apply, release the helpers. *)
  let run_leader c =
    if Trace.enabled () then
      Trace.begin_span
        ~args:[ ("cycle", Json.Int (c.heap.Heap.metrics.Metrics.gc_cycles + 1)) ]
        ~tid:Trace.tid_runtime "gc cycle (par)";
    mark_worker c;
    scan_worker c;
    let n = Objtable.nshards c.heap.Heap.objects in
    Mutex.lock c.mu;
    while c.scanned < n do
      Condition.wait c.cv c.mu
    done;
    Mutex.unlock c.mu;
    apply c;
    if Trace.enabled () then
      Trace.end_span ~tid:Trace.tid_runtime "gc cycle (par)";
    Mutex.lock c.mu;
    c.finished <- true;
    Condition.broadcast c.cv;
    Mutex.unlock c.mu

  (** Help an in-flight cycle from a rendezvoused domain, returning once
      the leader has finished applying it. *)
  let run_helper c =
    Mutex.lock c.mu;
    let already_finished = c.finished in
    Mutex.unlock c.mu;
    if not already_finished then begin
      mark_worker c;
      scan_worker c;
      Mutex.lock c.mu;
      while not c.finished do
        Condition.wait c.cv c.mu
      done;
      Mutex.unlock c.mu
    end
end
