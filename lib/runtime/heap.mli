(** The simulated Go heap: object store, allocation entry points, GC
    pacing, and the hooks connecting the mutator (the MiniGo interpreter)
    to the collector. *)

(** Payloads are an extensible variant so this library stays independent
    of the interpreter's value type. *)
type payload = ..

type payload += No_payload

type placement =
  | On_heap of Mspan.t * int  (** span and slot *)
  | On_stack of int  (** owning scope token *)

type obj = {
  addr : int;
  size : int;  (** requested bytes *)
  category : Metrics.category;
  mutable payload : payload;
  placement : placement;
  mutable marked : bool;
  mutable freed : bool;
  mutable poisoned : bool;
}

type config = {
  gogc : int;  (** heap growth percentage between GCs (GOGC) *)
  gc_disabled : bool;  (** the Go-GCOff setting of fig. 11 *)
  poison_on_free : bool;  (** §6.8's mock tcfree *)
  concurrent_gc_window : int;
      (** bytes of allocation after a GC cycle during which tcfree treats
          the collector as still running and backs off (§5) *)
  min_heap : int;  (** first GC trigger threshold *)
  grow_map_free_old : bool;  (** GrowMapAndFreeOld (§4.6.2) *)
}

val default_config : config

type t = {
  config : config;
  metrics : Metrics.t;
      (** sequential heap: the record every event updates; shared heap:
          shard 0 of [metric_shards] — read {!merged_metrics} instead *)
  pages : Pageheap.t;
  central : Mcentral.t;
  mutable caches : Mcache.t array;  (** one per logical processor *)
  objects : obj Objtable.t;
  shared : bool;
      (** multiple domains mutate this heap: table sharded+locked,
          mcentral/pageheap internally serialized, metrics striped *)
  metric_shards : Metrics.t array;
      (** per-domain stripes; [metric_shards.(0) == metrics] *)
  live_atomic : int Atomic.t;  (** shared mode: authoritative live bytes *)
  max_live_atomic : int Atomic.t;  (** shared mode: true concurrent peak *)
  free_mutex : Mutex.t;  (** shared mode: serializes tcfree bodies *)
  tomb_mutex : Mutex.t;  (** guards [tombstones] in shared poison runs *)
  next_addr : int Atomic.t;
  mutable next_gc : int;
  mutable gc_window_left : int;
  mutable dangling_spans : Mspan.t list;  (** fig. 9 step-1 output *)
  mutable trace_payload : payload -> (int -> unit) -> unit;
  mutable poison_payload : payload -> unit;
  mutable iter_roots : (int -> unit) -> unit;
  mutable gc_requested : bool;
  mutable sampler : Sampler.t option;
      (** periodic metrics snapshots; attached by the runner when a
          metrics time series was requested *)
  mutable last_gc_end_ns : int64;
      (** wall-clock end of the previous GC cycle; 0 before the first *)
  tombstones : (int, string) Hashtbl.t;
}

(** [shared:true] builds the multi-domain configuration: [nprocs]
    metric stripes and mcaches (one per domain), a sharded+locked
    object table, and internally locked mcentral/pageheap. *)
val create : ?config:config -> ?nprocs:int -> ?shared:bool -> unit -> t

val nprocs : t -> int

(** The metric stripe [thread] writes to (the shared record on a
    sequential heap). *)
val metrics_for : t -> int -> Metrics.t

(** Authoritative live-byte count — drives GC pacing in both modes. *)
val live_bytes : t -> int

(** Shared mode: atomically add allocated bytes to the live count and
    update the peak. *)
val bump_live : t -> int -> unit

(** Shared mode: atomically subtract freed bytes from the live count. *)
val drop_live : t -> int -> unit

(** One coherent metrics record: the live record itself (sequential) or
    the summed stripes with atomic live/peak patched in (shared; only
    meaningful while no domain mutates). *)
val merged_metrics : t -> Metrics.t

(** Is the simulated concurrent collector running? (§5 give-up check.) *)
val gc_running : t -> bool

val find_obj : t -> int -> obj option

(** Allocate on the heap: picks a span via the thread's mcache (or a
    dedicated span for large objects), updates metrics, and requests a GC
    cycle when pacing demands one (the cycle itself runs at the
    interpreter's next safepoint). *)
val alloc_heap :
  t -> thread:int -> category:Metrics.category -> size:int ->
  payload:payload -> obj

(** Allocate a stack object: no span, no GC cost; released at scope
    exit.  [thread] only selects the metric stripe. *)
val alloc_stack :
  ?thread:int -> t -> scope:int -> category:Metrics.category -> size:int ->
  payload:payload -> obj

val is_stack_obj : obj -> bool

(** Record how an address died (poison mode only — diagnostics). *)
val bury : t -> int -> string -> unit

val death_of : t -> int -> string

(** Drop a stack object at scope exit (poisons it in poison mode). *)
val release_stack : t -> obj -> unit

val live_heap_objects : t -> obj list
