(** mcentral: the shared middle layer between mcaches and the page heap
    (paper §3.3). *)

type t = {
  partial : Mspan.t list array;  (** per class: spans with free slots *)
  full : Mspan.t list array;
  pages : Pageheap.t;
  lock : Mutex.t;
  mutable locked : bool;
      (** set by the shared (multi-domain) heap; span acquire/release
          and rebucketing then serialize on [lock] *)
}

val create : Pageheap.t -> t

(** A span with free capacity for the class: a partial span if one
    exists, otherwise a fresh span from the page heap.  The span becomes
    owned by [for_thread]. *)
val acquire_span : t -> int -> for_thread:int -> Mspan.t

(** Hand a span back from an mcache. *)
val release_span : t -> Mspan.t -> unit

(** Post-sweep maintenance: re-bucket partial/full spans and return empty
    spans' pages to the page heap. *)
val rebucket_after_sweep : t -> unit
