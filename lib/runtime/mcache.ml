(** Per-thread (per-P) span cache: the top, lock-free allocation layer
    (paper §3.3).

    Each logical processor owns at most one span per size class.  All
    allocations and the fast tcfree path operate on these spans without
    synchronization — the model's analogue of TCMalloc's thread caches. *)

type t = {
  thread_id : int;
  spans : Mspan.t option array;  (** per size class *)
}

let create thread_id =
  { thread_id; spans = Array.make Sizeclass.n_classes None }

(* Refill path: the cached span is absent or full.  Out of line so the
   hit path below stays closure-free and small enough to inline. *)
let rec alloc_refill t (central : Mcentral.t) class_idx : Mspan.t * int =
  (match t.spans.(class_idx) with
  | Some span ->
    (* span has filled: hand it to mcentral before acquiring a new one *)
    Mcentral.release_span central span;
    t.spans.(class_idx) <- None
  | None -> ());
  let span =
    Mcentral.acquire_span central class_idx ~for_thread:t.thread_id
  in
  t.spans.(class_idx) <- Some span;
  match Mspan.alloc_slot span with
  | Some slot -> (span, slot)
  | None -> alloc_refill t central class_idx

(** Allocate a slot of [class_idx]; swaps in a new span from mcentral
    when the cached one is full.  Returns the span and slot.  The common
    case — cached span with a free slot — is a single match with no
    closure allocation. *)
let alloc t (central : Mcentral.t) class_idx : Mspan.t * int =
  match t.spans.(class_idx) with
  | Some span -> begin
    match Mspan.alloc_slot span with
    | Some slot -> (span, slot)
    | None -> alloc_refill t central class_idx
  end
  | None -> alloc_refill t central class_idx

(** Whether [span] is currently owned by this cache — the condition the
    paper's TcfreeSmall requires for the lock-free fast path. *)
let owns t (span : Mspan.t) =
  match t.spans.(span.Mspan.class_idx) with
  | Some s -> s.Mspan.span_id = span.Mspan.span_id
  | None -> false

(** Flush all cached spans back to mcentral (thread exit / migration). *)
let flush t (central : Mcentral.t) =
  Array.iteri
    (fun c span ->
      match span with
      | Some s ->
        Mcentral.release_span central s;
        t.spans.(c) <- None
      | None -> ())
    t.spans
