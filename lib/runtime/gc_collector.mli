(** Non-moving mark-sweep collector with GOGC pacing (paper §3.3). *)

(** Mark from the registered roots and sweep every unmarked heap object;
    retires dangling spans (fig. 9 step 2), returns empty spans' pages,
    updates the pacing target and opens the simulated concurrent-mark
    window during which tcfree backs off. *)
val collect : Heap.t -> unit

(** Safepoint check: run a cycle iff the pacer requested one and GC is
    enabled. *)
val maybe_collect : Heap.t -> unit

(** Parallel mark + per-domain sweep for the multi-domain runtime.  The
    cycle runs stop-the-world: one domain becomes the leader
    ({!Par.start} then {!Par.run_leader}); every other rendezvoused
    domain calls {!Par.run_helper} on the published cycle.  Marking
    drains a shared grey list (payload tracing outside the cycle lock,
    mark-bit check-and-set under it); sweeping scans object-table
    shards concurrently and the leader applies the dead list serially.
    GC accounting lands on metric stripe 0. *)
module Par : sig
  type cycle

  (** Seed a cycle from the roots.  Leader-only, with the world already
      stopped, before publishing the cycle to helpers. *)
  val start : Heap.t -> cycle

  (** Help mark+scan, wait for all shards, apply, release helpers. *)
  val run_leader : cycle -> unit

  (** Help mark+scan, then block until the leader finishes applying. *)
  val run_helper : cycle -> unit
end
