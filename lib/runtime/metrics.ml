(** Runtime metrics (paper Table 5, plus the accounting that Tables 8–9
    need).

    One record per program execution; the interpreter's heap owns it and
    every allocation / free / GC event updates it. *)

(** What kind of data an allocation carries, for Table 8's
    slices/maps/others split. *)
type category = Cat_slice | Cat_map | Cat_other

(** Where reclaimed bytes come from, for Table 9. *)
type free_source =
  | Src_slice  (** TcfreeSlice at a slice's end of life *)
  | Src_map  (** TcfreeMap at a map's end of life *)
  | Src_map_grow  (** GrowMapAndFreeOld: the abandoned bucket array *)

(** Why a tcfree call gave up (§5). *)
type giveup =
  | Gc_running
  | Ownership_changed
  | Span_swapped_out
  | Already_freed  (** double free, tolerated *)
  | Stack_object
  | Not_an_object  (** nil or dangling value *)

type t = {
  (* Table 5 *)
  mutable alloced_bytes : int;  (** total heap allocation *)
  mutable freed_bytes : int;  (** total reclaimed by tcfree *)
  mutable gc_cycles : int;
  mutable gc_time_ns : int64;  (** wall time spent in mark+sweep *)
  mutable max_heap : int;  (** peak live heap bytes *)
  mutable max_heap_pages : int;
      (** peak span-backed heap bytes (pages in use): the paper's
          "maxheap" — filled in from the page heap at end of run *)
  mutable heap_live : int;
  (* Table 8: dynamic stack/heap decisions per category *)
  mutable stack_allocs : int array;  (** indexed by category *)
  mutable heap_allocs : int array;
  mutable tcfreed_objects : int array;  (** heap objects freed by tcfree *)
  mutable gc_freed_objects : int array;  (** heap objects reclaimed by GC *)
  (* Table 9 *)
  mutable freed_by_source : int array;  (** bytes, indexed by free_source *)
  (* tcfree behaviour *)
  mutable tcfree_calls : int;
  mutable tcfree_success : int;
  mutable giveups : int array;
  (* soundness counters *)
  mutable heap_to_stack_pointers : int;
      (** Go memory invariant 1 violations observed while marking; must
          stay 0 *)
  mutable poison_reads : int;
      (** reads of poisoned (mock-freed) memory; must stay 0 *)
  (* GC work, in objects *)
  mutable gc_marked_objects : int;
  mutable gc_swept_objects : int;
}

let category_index = function Cat_slice -> 0 | Cat_map -> 1 | Cat_other -> 2

let source_index = function Src_slice -> 0 | Src_map -> 1 | Src_map_grow -> 2

let giveup_index = function
  | Gc_running -> 0
  | Ownership_changed -> 1
  | Span_swapped_out -> 2
  | Already_freed -> 3
  | Stack_object -> 4
  | Not_an_object -> 5

let create () =
  {
    alloced_bytes = 0;
    freed_bytes = 0;
    gc_cycles = 0;
    gc_time_ns = 0L;
    max_heap = 0;
    max_heap_pages = 0;
    heap_live = 0;
    stack_allocs = Array.make 3 0;
    heap_allocs = Array.make 3 0;
    tcfreed_objects = Array.make 3 0;
    gc_freed_objects = Array.make 3 0;
    freed_by_source = Array.make 3 0;
    tcfree_calls = 0;
    tcfree_success = 0;
    giveups = Array.make 6 0;
    heap_to_stack_pointers = 0;
    poison_reads = 0;
    gc_marked_objects = 0;
    gc_swept_objects = 0;
  }

let free_ratio m =
  if m.alloced_bytes = 0 then 0.0
  else float_of_int m.freed_bytes /. float_of_int m.alloced_bytes

let count_alloc m ~category ~heap ~bytes =
  let idx = category_index category in
  if heap then begin
    m.heap_allocs.(idx) <- m.heap_allocs.(idx) + 1;
    m.alloced_bytes <- m.alloced_bytes + bytes;
    m.heap_live <- m.heap_live + bytes;
    if m.heap_live > m.max_heap then m.max_heap <- m.heap_live
  end
  else m.stack_allocs.(idx) <- m.stack_allocs.(idx) + 1

let count_tcfree m ~category ~source ~bytes =
  let cidx = category_index category in
  m.tcfreed_objects.(cidx) <- m.tcfreed_objects.(cidx) + 1;
  m.freed_bytes <- m.freed_bytes + bytes;
  m.heap_live <- m.heap_live - bytes;
  let sidx = source_index source in
  m.freed_by_source.(sidx) <- m.freed_by_source.(sidx) + bytes

let count_gc_free m ~category ~bytes =
  let cidx = category_index category in
  m.gc_freed_objects.(cidx) <- m.gc_freed_objects.(cidx) + 1;
  m.heap_live <- m.heap_live - bytes

let count_giveup m reason =
  let idx = giveup_index reason in
  m.giveups.(idx) <- m.giveups.(idx) + 1

(* ------------------------------------------------------------------ *)
(* Striping support: per-domain shards merged into one record           *)
(* ------------------------------------------------------------------ *)

let add_arrays dst src =
  Array.iteri (fun i v -> dst.(i) <- dst.(i) + v) src

(** Accumulate [src] into [dst].  Every counter is summed — including
    [heap_live], which is a signed alloc-minus-free delta, so summing
    per-domain shards yields the correct global value even though each
    shard alone may be negative.  [max_heap]/[max_heap_pages] take the
    max, which under-reports a true concurrent peak; the shared heap
    tracks the real peak atomically and overwrites it after merging. *)
let merge_into ~(dst : t) (src : t) =
  dst.alloced_bytes <- dst.alloced_bytes + src.alloced_bytes;
  dst.freed_bytes <- dst.freed_bytes + src.freed_bytes;
  dst.gc_cycles <- dst.gc_cycles + src.gc_cycles;
  dst.gc_time_ns <- Int64.add dst.gc_time_ns src.gc_time_ns;
  dst.max_heap <- max dst.max_heap src.max_heap;
  dst.max_heap_pages <- max dst.max_heap_pages src.max_heap_pages;
  dst.heap_live <- dst.heap_live + src.heap_live;
  add_arrays dst.stack_allocs src.stack_allocs;
  add_arrays dst.heap_allocs src.heap_allocs;
  add_arrays dst.tcfreed_objects src.tcfreed_objects;
  add_arrays dst.gc_freed_objects src.gc_freed_objects;
  add_arrays dst.freed_by_source src.freed_by_source;
  dst.tcfree_calls <- dst.tcfree_calls + src.tcfree_calls;
  dst.tcfree_success <- dst.tcfree_success + src.tcfree_success;
  add_arrays dst.giveups src.giveups;
  dst.heap_to_stack_pointers <-
    dst.heap_to_stack_pointers + src.heap_to_stack_pointers;
  dst.poison_reads <- dst.poison_reads + src.poison_reads;
  dst.gc_marked_objects <- dst.gc_marked_objects + src.gc_marked_objects;
  dst.gc_swept_objects <- dst.gc_swept_objects + src.gc_swept_objects

let merged (shards : t array) : t =
  let dst = create () in
  Array.iter (fun s -> merge_into ~dst s) shards;
  dst

let sum = Array.fold_left ( + ) 0

(** Conservation invariants that must hold for any completed run,
    sequential or parallel (ISSUE 10's multi-domain gate):

    - every tcfree attempt either succeeded or gave up for a counted
      reason ([tcfree_calls] = [tcfree_success] + Σ giveups);
    - every success freed exactly one object
      ([tcfree_success] = Σ [tcfreed_objects]);
    - when the caller knows the surviving object count, every heap
      allocation is accounted for
      (Σ [heap_allocs] = Σ [tcfreed_objects] + Σ [gc_freed_objects] +
      [live_objects]).

    Returns [Error msg] naming the first violated equation. *)
let check_conservation ?live_objects (m : t) : (unit, string) result =
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  let giveups = sum m.giveups in
  if m.tcfree_calls <> m.tcfree_success + giveups then
    fail "tcfree_calls %d <> success %d + giveups %d" m.tcfree_calls
      m.tcfree_success giveups
  else if m.tcfree_success <> sum m.tcfreed_objects then
    fail "tcfree_success %d <> tcfreed objects %d" m.tcfree_success
      (sum m.tcfreed_objects)
  else
    match live_objects with
    | Some live
      when sum m.heap_allocs
           <> sum m.tcfreed_objects + sum m.gc_freed_objects + live ->
        fail "heap allocs %d <> tcfreed %d + gc_freed %d + live %d"
          (sum m.heap_allocs) (sum m.tcfreed_objects)
          (sum m.gc_freed_objects) live
    | _ -> Ok ()

let pp fmt m =
  Format.fprintf fmt
    "@[<v>alloced      %d bytes@,freed        %d bytes (ratio %.1f%%)@,\
     GCs          %d@,GC time      %.3f ms@,maxheap      %d live bytes (%d span bytes)@,\
     tcfree       %d calls, %d freed@,\
     stack allocs slices=%d maps=%d others=%d@,\
     heap allocs  slices=%d maps=%d others=%d@,\
     freed via    slice=%dB map=%dB mapgrow=%dB@]"
    m.alloced_bytes m.freed_bytes
    (100.0 *. free_ratio m)
    m.gc_cycles
    (Int64.to_float m.gc_time_ns /. 1e6)
    m.max_heap m.max_heap_pages m.tcfree_calls m.tcfree_success m.stack_allocs.(0)
    m.stack_allocs.(1) m.stack_allocs.(2) m.heap_allocs.(0)
    m.heap_allocs.(1) m.heap_allocs.(2) m.freed_by_source.(0)
    m.freed_by_source.(1) m.freed_by_source.(2)

(* ------------------------------------------------------------------ *)
(* Machine-readable export                                             *)
(* ------------------------------------------------------------------ *)

module Json = Gofree_obs.Json

let category_names = [| "slices"; "maps"; "others" |]

let source_names = [| "slice"; "map"; "map_grow" |]

let giveup_names =
  [|
    "gc_running"; "ownership_changed"; "span_swapped_out"; "already_freed";
    "stack_object"; "not_an_object";
  |]

let named_counts names arr =
  Json.Obj (List.init (Array.length names) (fun i ->
      (names.(i), Json.Int arr.(i))))

(** Full metrics record as a JSON tree (schema [gofree-metrics-v1]).
    Every counter of the paper's Tables 5/8/9 plus the soundness and GC
    work counters; [free_ratio] is included as a derived convenience. *)
let to_json (m : t) : Json.t =
  Json.Obj
    [
      Gofree_obs.Schema.(field Metrics);
      ("alloced_bytes", Json.Int m.alloced_bytes);
      ("freed_bytes", Json.Int m.freed_bytes);
      ("free_ratio", Json.Float (free_ratio m));
      ("gc_cycles", Json.Int m.gc_cycles);
      ("gc_time_ns", Json.Int (Int64.to_int m.gc_time_ns));
      ("max_heap", Json.Int m.max_heap);
      ("max_heap_pages", Json.Int m.max_heap_pages);
      ("heap_live", Json.Int m.heap_live);
      ("stack_allocs", named_counts category_names m.stack_allocs);
      ("heap_allocs", named_counts category_names m.heap_allocs);
      ("tcfreed_objects", named_counts category_names m.tcfreed_objects);
      ("gc_freed_objects", named_counts category_names m.gc_freed_objects);
      ("freed_by_source", named_counts source_names m.freed_by_source);
      ("tcfree_calls", Json.Int m.tcfree_calls);
      ("tcfree_success", Json.Int m.tcfree_success);
      ("giveups", named_counts giveup_names m.giveups);
      ("heap_to_stack_pointers", Json.Int m.heap_to_stack_pointers);
      ("poison_reads", Json.Int m.poison_reads);
      ("gc_marked_objects", Json.Int m.gc_marked_objects);
      ("gc_swept_objects", Json.Int m.gc_swept_objects);
    ]

(** Inverse of {!to_json}; raises {!Gofree_obs.Json.Parse_error} on shape
    mismatches.  Unknown fields are ignored so the schema can grow. *)
let of_json (j : Json.t) : t =
  Gofree_obs.Schema.(check_exn Metrics) j;
  let counts names field =
    let o = Json.get field j in
    Array.map (fun n -> Json.get_int n o) names
  in
  {
    alloced_bytes = Json.get_int "alloced_bytes" j;
    freed_bytes = Json.get_int "freed_bytes" j;
    gc_cycles = Json.get_int "gc_cycles" j;
    gc_time_ns = Int64.of_int (Json.get_int "gc_time_ns" j);
    max_heap = Json.get_int "max_heap" j;
    max_heap_pages = Json.get_int "max_heap_pages" j;
    heap_live = Json.get_int "heap_live" j;
    stack_allocs = counts category_names "stack_allocs";
    heap_allocs = counts category_names "heap_allocs";
    tcfreed_objects = counts category_names "tcfreed_objects";
    gc_freed_objects = counts category_names "gc_freed_objects";
    freed_by_source = counts source_names "freed_by_source";
    tcfree_calls = Json.get_int "tcfree_calls" j;
    tcfree_success = Json.get_int "tcfree_success" j;
    giveups = counts giveup_names "giveups";
    heap_to_stack_pointers = Json.get_int "heap_to_stack_pointers" j;
    poison_reads = Json.get_int "poison_reads" j;
    gc_marked_objects = Json.get_int "gc_marked_objects" j;
    gc_swept_objects = Json.get_int "gc_swept_objects" j;
  }
