(** Open-addressing hash table from positive int keys to ['a], the
    heap's object store.  Every simulated allocation (heap or stack)
    inserts here and every free removes, so this sits on the hottest
    mutator path of all three execution engines; unlike [Hashtbl] an
    insert allocates nothing (no bucket cons, no boxed key) and a probe
    touches two flat arrays.

    Linear probing over a power-of-two capacity.  [keys] doubles as the
    slot state: [0] = never used, [-1] = tombstone (deleted), anything
    positive is a live key.  A shard grows (or rehashes in place to
    clear tombstones) when live + tombstones exceed half the capacity,
    so probe chains stay short.  Values of removed slots are reset to
    [dummy] so the table never retains a dead object.

    For the multi-domain runtime the table is internally sharded by the
    key's low bits — addresses are a counter, so consecutive
    allocations round-robin across shards — with an optional per-shard
    mutex ([locked:true]).  The default single unlocked shard is the
    sequential configuration and adds only one array load per
    operation over the flat layout. *)

type 'a shard = {
  mutable keys : int array;  (* 0 empty / -1 tombstone / key *)
  mutable vals : 'a array;
  mutable mask : int;  (* capacity - 1; capacity is a power of two *)
  mutable live : int;
  mutable used : int;  (* live + tombstones *)
  dummy : 'a;
}

type 'a t = {
  shards : 'a shard array;
  smask : int;  (* nshards - 1; nshards is a power of two *)
  locks : Mutex.t array;  (* same length as [shards] *)
  locked : bool;
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ?(capacity = 4096) ?(shards = 1) ?(locked = false) ~dummy () =
  let ns = pow2_at_least (max 1 shards) 1 in
  let cap = pow2_at_least (max 16 (capacity / ns)) 16 in
  let mk_shard () =
    {
      keys = Array.make cap 0;
      vals = Array.make cap dummy;
      mask = cap - 1;
      live = 0;
      used = 0;
      dummy;
    }
  in
  {
    shards = Array.init ns (fun _ -> mk_shard ());
    smask = ns - 1;
    locks = Array.init ns (fun _ -> Mutex.create ());
    locked;
  }

let nshards t = Array.length t.shards

(* Multiplicative mixing: consecutive addresses (the common case —
   [Heap.fresh_addr] is a counter) land on an odd stride that cycles
   through the whole shard, and the xor-shift spreads any structured
   keys. *)
let slot_of s k =
  let h = k * 0x1E3779B97F4A7C15 in
  (h lxor (h lsr 29)) land s.mask

let[@inline] shard_idx t k = k land t.smask

let[@inline] with_shard t k f =
  let i = shard_idx t k in
  let s = Array.unsafe_get t.shards i in
  if t.locked then begin
    let l = Array.unsafe_get t.locks i in
    Mutex.lock l;
    let r = f s k in
    Mutex.unlock l;
    r
  end
  else f s k

(** Index of [k]'s slot in its shard, or [-1] if absent. *)
let find_slot s k =
  let keys = s.keys in
  let mask = s.mask in
  let rec probe i =
    let key = Array.unsafe_get keys i in
    if key = k then i else if key = 0 then -1 else probe ((i + 1) land mask)
  in
  probe (slot_of s k)

let s_find_opt s k =
  let i = find_slot s k in
  if i < 0 then None else Some (Array.unsafe_get s.vals i)

let find_opt t k = with_shard t k s_find_opt

let mem t k = with_shard t k (fun s k -> find_slot s k >= 0)

let length t =
  Array.fold_left (fun acc s -> acc + s.live) 0 t.shards

let iter_shard f s =
  let keys = s.keys in
  for i = 0 to Array.length keys - 1 do
    let key = Array.unsafe_get keys i in
    if key > 0 then f key (Array.unsafe_get s.vals i)
  done

let iter f t = Array.iter (iter_shard f) t.shards

let fold_over_shard f s init =
  let keys = s.keys in
  let acc = ref init in
  for i = 0 to Array.length keys - 1 do
    let key = Array.unsafe_get keys i in
    if key > 0 then acc := f key (Array.unsafe_get s.vals i) !acc
  done;
  !acc

let fold f t init =
  Array.fold_left (fun acc s -> fold_over_shard f s acc) init t.shards

(** Fold one shard by index — the parallel sweep's unit of work.  The
    caller must guarantee no concurrent mutation of that shard (the GC
    runs it under stop-the-world). *)
let fold_shard f t i init = fold_over_shard f t.shards.(i) init

(* Insert a key known to be absent, into a shard with no tombstones
   (only used right after allocating fresh arrays). *)
let add_fresh s k v =
  let keys = s.keys in
  let mask = s.mask in
  let rec probe i =
    if Array.unsafe_get keys i = 0 then begin
      Array.unsafe_set keys i k;
      Array.unsafe_set s.vals i v
    end
    else probe ((i + 1) land mask)
  in
  probe (slot_of s k)

let rehash s =
  (* Grow while more than a quarter full of live entries; otherwise the
     same capacity back, just clearing tombstones. *)
  let old_keys = s.keys in
  let old_vals = s.vals in
  let cap = Array.length old_keys in
  let new_cap = if s.live * 4 >= cap then cap * 2 else cap in
  s.keys <- Array.make new_cap 0;
  s.vals <- Array.make new_cap s.dummy;
  s.mask <- new_cap - 1;
  s.used <- s.live;
  for i = 0 to cap - 1 do
    let key = Array.unsafe_get old_keys i in
    if key > 0 then add_fresh s key (Array.unsafe_get old_vals i)
  done

let s_replace s k v =
  let keys = s.keys in
  let mask = s.mask in
  (* Probe for [k], remembering the first reusable (tombstone) slot. *)
  let rec probe i reuse =
    let key = Array.unsafe_get keys i in
    if key = k then Array.unsafe_set s.vals i v
    else if key = 0 then begin
      let target = if reuse >= 0 then reuse else i in
      Array.unsafe_set keys target k;
      Array.unsafe_set s.vals target v;
      s.live <- s.live + 1;
      if reuse < 0 then begin
        s.used <- s.used + 1;
        if s.used * 2 >= Array.length keys then rehash s
      end
    end
    else
      probe ((i + 1) land mask)
        (if reuse < 0 && key = -1 then i else reuse)
  in
  probe (slot_of s k) (-1)

let replace t k v = with_shard t k (fun s k -> s_replace s k v)

let s_remove s k =
  let i = find_slot s k in
  if i >= 0 then begin
    Array.unsafe_set s.keys i (-1);
    Array.unsafe_set s.vals i s.dummy;
    s.live <- s.live - 1
  end

let remove t k = with_shard t k s_remove
