(** Open-addressing hash table from positive int keys to ['a], the
    heap's object store.  Every simulated allocation (heap or stack)
    inserts here and every free removes, so this sits on the hottest
    mutator path of all three execution engines; unlike [Hashtbl] an
    insert allocates nothing (no bucket cons, no boxed key) and a probe
    touches two flat arrays.

    Linear probing over a power-of-two capacity.  [keys] doubles as the
    slot state: [0] = never used, [-1] = tombstone (deleted), anything
    positive is a live key.  The table grows (or rehashes in place to
    clear tombstones) when live + tombstones exceed half the capacity,
    so probe chains stay short.  Values of removed slots are reset to
    [dummy] so the table never retains a dead object. *)

type 'a t = {
  mutable keys : int array;  (* 0 empty / -1 tombstone / key *)
  mutable vals : 'a array;
  mutable mask : int;  (* capacity - 1; capacity is a power of two *)
  mutable live : int;
  mutable used : int;  (* live + tombstones *)
  dummy : 'a;
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ?(capacity = 4096) ~dummy () =
  let cap = pow2_at_least (max 16 capacity) 16 in
  {
    keys = Array.make cap 0;
    vals = Array.make cap dummy;
    mask = cap - 1;
    live = 0;
    used = 0;
    dummy;
  }

(* Multiplicative mixing: consecutive addresses (the common case —
   [Heap.fresh_addr] is a counter) land on an odd stride that cycles
   through the whole table, and the xor-shift spreads any structured
   keys. *)
let slot_of t k =
  let h = k * 0x1E3779B97F4A7C15 in
  (h lxor (h lsr 29)) land t.mask

let length t = t.live

(** Index of [k]'s slot, or [-1] if absent. *)
let find_slot t k =
  let keys = t.keys in
  let mask = t.mask in
  let rec probe i =
    let key = Array.unsafe_get keys i in
    if key = k then i else if key = 0 then -1 else probe ((i + 1) land mask)
  in
  probe (slot_of t k)

let find_opt t k =
  let i = find_slot t k in
  if i < 0 then None else Some (Array.unsafe_get t.vals i)

let mem t k = find_slot t k >= 0

let iter f t =
  let keys = t.keys in
  for i = 0 to Array.length keys - 1 do
    let key = Array.unsafe_get keys i in
    if key > 0 then f key (Array.unsafe_get t.vals i)
  done

let fold f t init =
  let keys = t.keys in
  let acc = ref init in
  for i = 0 to Array.length keys - 1 do
    let key = Array.unsafe_get keys i in
    if key > 0 then acc := f key (Array.unsafe_get t.vals i) !acc
  done;
  !acc

(* Insert a key known to be absent, into a table with no tombstones
   (only used right after allocating fresh arrays). *)
let add_fresh t k v =
  let keys = t.keys in
  let mask = t.mask in
  let rec probe i =
    if Array.unsafe_get keys i = 0 then begin
      Array.unsafe_set keys i k;
      Array.unsafe_set t.vals i v
    end
    else probe ((i + 1) land mask)
  in
  probe (slot_of t k)

let rehash t =
  (* Grow while more than a quarter full of live entries; otherwise the
     same capacity back, just clearing tombstones. *)
  let old_keys = t.keys in
  let old_vals = t.vals in
  let cap = Array.length old_keys in
  let new_cap = if t.live * 4 >= cap then cap * 2 else cap in
  t.keys <- Array.make new_cap 0;
  t.vals <- Array.make new_cap t.dummy;
  t.mask <- new_cap - 1;
  t.used <- t.live;
  for i = 0 to cap - 1 do
    let key = Array.unsafe_get old_keys i in
    if key > 0 then add_fresh t key (Array.unsafe_get old_vals i)
  done

let replace t k v =
  let keys = t.keys in
  let mask = t.mask in
  (* Probe for [k], remembering the first reusable (tombstone) slot. *)
  let rec probe i reuse =
    let key = Array.unsafe_get keys i in
    if key = k then Array.unsafe_set t.vals i v
    else if key = 0 then begin
      let target = if reuse >= 0 then reuse else i in
      Array.unsafe_set keys target k;
      Array.unsafe_set t.vals target v;
      t.live <- t.live + 1;
      if reuse < 0 then begin
        t.used <- t.used + 1;
        if t.used * 2 >= Array.length keys then rehash t
      end
    end
    else
      probe ((i + 1) land mask)
        (if reuse < 0 && key = -1 then i else reuse)
  in
  probe (slot_of t k) (-1)

let remove t k =
  let i = find_slot t k in
  if i >= 0 then begin
    Array.unsafe_set t.keys i (-1);
    Array.unsafe_set t.vals i t.dummy;
    t.live <- t.live - 1
  end
