(** The load harness proper: virtual clients driving a live daemon.

    {!run} connects [clients] virtual clients to a serving daemon and
    replays each one's deterministic {!Schedule} until the duration
    elapses: closed-loop clients issue the next request as soon as the
    previous response lands, open-loop clients send on schedule with
    pipelining (responses correlate by id on a receiver thread), and
    churn events drop the connection abruptly mid-stream — exercising
    the daemon's cancellation path — before re-dialing.

    Every response is classified ([ok] | [error] | [overloaded] |
    [timed_out]); latencies are recorded per request kind for the [ok]
    responses (the population the SLO speaks about), and the stable part
    of each result (program output and metrics for [run], insertions for
    [analyze]/[build], the diagnostics document for [explain]) is
    digest-checked across every response of the same (kind, workload) —
    load must change {e when} you are served, never {e what}.

    The product is one [gofree-load-v1] JSON document: offered vs
    achieved RPS, p50/p95/p99/max latency overall and per kind,
    shed/timeout/error/drop counts, consistency verdict, and the SLO
    assertions of {!check_slo} — violations make [gofreec load] exit
    nonzero, which is what the CI gate runs. *)

module Json = Gofree_obs.Json
module Schema = Gofree_obs.Schema
module Client = Gofree_server.Client
module Rpc = Gofree_server.Rpc
module Stats = Gofree_stats.Stats
module W = Gofree_workloads.Workloads

let now_s () = Unix.gettimeofday ()
let now_ms () = Unix.gettimeofday () *. 1000.

(* ---------------------------------------------------------------- *)
(* Configuration                                                     *)
(* ---------------------------------------------------------------- *)

type config = {
  socket : string;
  clients : int;
  arrival : Schedule.arrival;  (** rates are per {e client} *)
  duration_s : float;
  mix : Mix.t;
  churn : float;  (** per-request reconnect probability *)
  seed : int;
  scale : int;  (** workload size, percent of each default *)
  deadline_ms : int option;  (** sent as the requests' [deadline_ms] *)
  build_dir : string option;  (** target of [build] mix terms *)
  slo_p99_ms : float option;
}

let default_config ~socket =
  {
    socket;
    clients = 4;
    arrival = Schedule.Closed;
    duration_s = 5.0;
    mix = Mix.default;
    churn = 0.0;
    seed = 0;
    scale = 100;
    deadline_ms = None;
    build_dir = None;
    slo_p99_ms = None;
  }

(** The per-client rate [r] such that [clients] clients offer
    [total_rps] together. *)
let per_client_rate ~clients total_rps =
  if clients <= 0 then total_rps else total_rps /. float_of_int clients

let validate (cfg : config) : (unit, string) result =
  if cfg.clients < 1 then Error "clients must be >= 1"
  else if cfg.duration_s <= 0.0 then Error "duration must be positive"
  else if Mix.total cfg.mix = 0 then Error "mix has zero total weight"
  else if Mix.weight cfg.mix Mix.Build > 0 && cfg.build_dir = None then
    Error "mix includes build requests but no --build-dir was given"
  else Ok ()

(* ---------------------------------------------------------------- *)
(* Request targets                                                   *)
(* ---------------------------------------------------------------- *)

type target = { tg_name : string; tg_source : string }

(** The six paper workloads at [scale]% of their default sizes, sources
    precomputed once so the harness threads never regenerate them. *)
let targets ~scale : target array =
  Array.of_list
    (List.map
       (fun w ->
         let size = max 1 (w.W.w_default_size * scale / 100) in
         { tg_name = w.W.w_name; tg_source = W.source_of ~size w })
       W.all)

let workload_name (cfg : config) (targets : target array)
    (kind : Mix.kind) (idx : int) : string =
  match kind with
  | Mix.Build -> Option.value cfg.build_dir ~default:"-"
  | Mix.Stats -> "-"
  | Mix.Analyze | Mix.Run | Mix.Explain -> targets.(idx).tg_name

let request_of_event (cfg : config) (targets : target array)
    (ev : Schedule.event) : Rpc.request =
  let src = Rpc.Inline targets.(ev.Schedule.ev_workload).tg_source in
  let config = Gofree_api.Preset.(to_config default) in
  match ev.Schedule.ev_kind with
  | Mix.Analyze -> Rpc.Analyze { src; config; explain = false }
  | Mix.Run ->
    Rpc.Run { src; config; options = Gofree_api.default_run_options }
  | Mix.Explain -> Rpc.Explain { src; config }
  | Mix.Build ->
    Rpc.Build
      {
        dir = Option.get cfg.build_dir;
        config;
        force = false;
        jobs = 1;
        run = false;
        cache_dir = None;
        options = Gofree_api.default_run_options;
      }
  | Mix.Stats -> Rpc.Stats

(* The part of a result that must not depend on server load: what is
   computed, never how long it took or whether a cache served it.  The
   run metrics are deterministic counters except [gc_time_ns], which is
   wall time spent in mark+sweep — stripped before hashing. *)
let stable_digest (kind : Mix.kind) (result : Json.t) : string option =
  let rec strip_times = function
    | Json.Obj fields ->
      Json.Obj
        (List.filter_map
           (fun (k, v) ->
             if k = "gc_time_ns" then None else Some (k, strip_times v))
           fields)
    | Json.List l -> Json.List (List.map strip_times l)
    | j -> j
  in
  let pick keys =
    let fields =
      List.filter_map
        (fun k ->
          Option.map (fun v -> (k, strip_times v)) (Json.member k result))
        keys
    in
    Some (Digest.to_hex (Digest.string (Json.to_string (Json.Obj fields))))
  in
  match kind with
  | Mix.Analyze -> pick [ "functions"; "insertions" ]
  | Mix.Explain -> pick [ "explain" ]
  | Mix.Run -> pick [ "output"; "metrics" ]
  | Mix.Build -> pick [ "insertions" ]
  | Mix.Stats -> None

(* ---------------------------------------------------------------- *)
(* Recorder                                                          *)
(* ---------------------------------------------------------------- *)

type recorder = {
  r_mutex : Mutex.t;
  mutable r_sent : int;
  mutable r_ok : int;
  mutable r_errors : int;
  mutable r_shed : int;
  mutable r_timed_out : int;
  mutable r_dropped : int;  (** sent, response never seen *)
  mutable r_reconnects : int;
  mutable r_connect_failures : int;
  r_lat_by_kind : (string, float list ref) Hashtbl.t;  (** ok only, ms *)
  mutable r_lat_all : float list;
  r_digests : (string, string) Hashtbl.t;  (** kind:workload → digest *)
  mutable r_mismatches : string list;
}

let recorder () =
  {
    r_mutex = Mutex.create ();
    r_sent = 0;
    r_ok = 0;
    r_errors = 0;
    r_shed = 0;
    r_timed_out = 0;
    r_dropped = 0;
    r_reconnects = 0;
    r_connect_failures = 0;
    r_lat_by_kind = Hashtbl.create 8;
    r_lat_all = [];
    r_digests = Hashtbl.create 64;
    r_mismatches = [];
  }

let locked (r : recorder) f =
  Mutex.lock r.r_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock r.r_mutex) f

let record_response (cfg : config) (targets : target array) (r : recorder)
    ~(kind : Mix.kind) ~(wl : int) ~(lat_ms : float) (resp : Json.t) : unit
    =
  let ok = Json.member "ok" resp = Some (Json.Bool true) in
  let error_code () =
    match Json.member "error" resp with
    | Some e -> ( try Json.get_string "code" e with _ -> "unknown")
    | None -> "unknown"
  in
  if not ok then
    locked r (fun () ->
        match error_code () with
        | "overloaded" -> r.r_shed <- r.r_shed + 1
        | "timed_out" -> r.r_timed_out <- r.r_timed_out + 1
        | _ -> r.r_errors <- r.r_errors + 1)
  else begin
    let digest =
      match Json.member "result" resp with
      | Some result -> stable_digest kind result
      | None -> None
    in
    let key =
      Mix.kind_name kind ^ ":" ^ workload_name cfg targets kind wl
    in
    locked r (fun () ->
        r.r_ok <- r.r_ok + 1;
        r.r_lat_all <- lat_ms :: r.r_lat_all;
        let per_kind =
          match Hashtbl.find_opt r.r_lat_by_kind (Mix.kind_name kind) with
          | Some l -> l
          | None ->
            let l = ref [] in
            Hashtbl.replace r.r_lat_by_kind (Mix.kind_name kind) l;
            l
        in
        per_kind := lat_ms :: !per_kind;
        match digest with
        | None -> ()
        | Some d -> begin
          match Hashtbl.find_opt r.r_digests key with
          | None -> Hashtbl.replace r.r_digests key d
          | Some d' when d' = d -> ()
          | Some _ ->
            if not (List.mem key r.r_mismatches) then
              r.r_mismatches <- key :: r.r_mismatches
        end)
  end

(* ---------------------------------------------------------------- *)
(* Virtual clients                                                   *)
(* ---------------------------------------------------------------- *)

type vclient = {
  v_idx : int;
  v_cfg : config;
  v_targets : target array;
  v_rec : recorder;
  v_gen : Schedule.gen;
  v_deadline : float;  (** absolute, seconds *)
  v_mutex : Mutex.t;
  v_outstanding : (int, float * Mix.kind * int) Hashtbl.t;
      (** id → send time (ms), kind, workload *)
  mutable v_conn : Client.t option;
  mutable v_recv : Thread.t option;
  mutable v_next_id : int;
}

let outstanding (v : vclient) =
  Mutex.lock v.v_mutex;
  let n = Hashtbl.length v.v_outstanding in
  Mutex.unlock v.v_mutex;
  n

(* Receiver for one connection's lifetime: correlate responses to sends
   by id, record, exit on EOF or a torn-down socket. *)
let receiver (v : vclient) (c : Client.t) () =
  let rec loop () =
    match Client.recv c with
    | None | (exception Client.Error _) -> ()
    | Some resp ->
      let id =
        match Json.member "id" resp with
        | Some (Json.Int i) -> i
        | _ -> -1
      in
      Mutex.lock v.v_mutex;
      let entry = Hashtbl.find_opt v.v_outstanding id in
      Hashtbl.remove v.v_outstanding id;
      Mutex.unlock v.v_mutex;
      (match entry with
      | None -> ()
      | Some (t_send, kind, wl) ->
        record_response v.v_cfg v.v_targets v.v_rec ~kind ~wl
          ~lat_ms:(now_ms () -. t_send)
          resp);
      loop ()
  in
  loop ()

(** Poll until this client's in-flight requests are all answered, or
    [until] (absolute seconds) passes. *)
let wait_outstanding (v : vclient) ~until =
  while outstanding v > 0 && now_s () < until do
    Thread.delay 0.002
  done

(* Tear the connection down.  [abrupt] closes with responses possibly
   still owed (the churn model, and what makes the daemon's cancellation
   path real); otherwise the caller has already drained.  Whatever is
   still outstanding is recorded as dropped. *)
let drop_conn (v : vclient) =
  match v.v_conn with
  | None -> ()
  | Some c ->
    (try Unix.shutdown c.Client.fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    Client.close c;
    (match v.v_recv with Some t -> Thread.join t | None -> ());
    Mutex.lock v.v_mutex;
    let leftover = Hashtbl.length v.v_outstanding in
    Hashtbl.reset v.v_outstanding;
    Mutex.unlock v.v_mutex;
    if leftover > 0 then
      locked v.v_rec (fun () ->
          v.v_rec.r_dropped <- v.v_rec.r_dropped + leftover);
    v.v_conn <- None;
    v.v_recv <- None

(** [true] iff a connection is up (possibly freshly dialed). *)
let ensure_conn (v : vclient) : bool =
  match v.v_conn with
  | Some _ -> true
  | None -> begin
    match Client.connect ~socket:v.v_cfg.socket with
    | c ->
      v.v_conn <- Some c;
      v.v_recv <- Some (Thread.create (receiver v c) ());
      true
    | exception Client.Error _ ->
      locked v.v_rec (fun () ->
          v.v_rec.r_connect_failures <- v.v_rec.r_connect_failures + 1);
      false
  end

let send_event (v : vclient) (ev : Schedule.event) : unit =
  match v.v_conn with
  | None -> ()
  | Some c ->
    let id = v.v_next_id in
    v.v_next_id <- id + 1;
    let line =
      Json.to_string
        (Rpc.request_to_json ~id:(Json.Int id)
           ?deadline_ms:v.v_cfg.deadline_ms
           (request_of_event v.v_cfg v.v_targets ev))
    in
    Mutex.lock v.v_mutex;
    Hashtbl.replace v.v_outstanding id
      (now_ms (), ev.Schedule.ev_kind, ev.Schedule.ev_workload);
    Mutex.unlock v.v_mutex;
    (match Client.send_line c line with
    | () -> locked v.v_rec (fun () -> v.v_rec.r_sent <- v.v_rec.r_sent + 1)
    | exception Client.Error _ ->
      Mutex.lock v.v_mutex;
      Hashtbl.remove v.v_outstanding id;
      Mutex.unlock v.v_mutex;
      drop_conn v)

let vclient_main (v : vclient) () =
  let closed_loop = v.v_cfg.arrival = Schedule.Closed in
  (* open loop: stagger the clients' first arrivals uniformly across one
     mean gap so N clients do not fire as one synchronized burst *)
  let next_due = ref (now_s ()) in
  (match v.v_cfg.arrival with
  | Schedule.Closed -> ()
  | Schedule.Poisson rps | Schedule.Uniform rps ->
    if rps > 0.0 then
      next_due :=
        !next_due
        +. (float_of_int v.v_idx /. float_of_int v.v_cfg.clients /. rps));
  let rec step () =
    if now_s () < v.v_deadline then begin
      let ev = Schedule.next v.v_gen in
      if ev.Schedule.ev_reconnect && v.v_conn <> None then begin
        (* churn: abrupt, mid-stream — in-flight responses are lost *)
        drop_conn v;
        locked v.v_rec (fun () ->
            v.v_rec.r_reconnects <- v.v_rec.r_reconnects + 1)
      end;
      if ensure_conn v then begin
        if not closed_loop then begin
          next_due := !next_due +. (ev.Schedule.ev_gap_ms /. 1000.0);
          let pause = !next_due -. now_s () in
          if pause > 0.0 then Thread.delay pause
        end;
        if now_s () < v.v_deadline then begin
          send_event v ev;
          if closed_loop then
            wait_outstanding v ~until:(v.v_deadline +. 5.0)
        end;
        step ()
      end
      (* connect refused: back off briefly, then keep trying until the
         deadline — the daemon may be mid-restart *)
      else begin
        Thread.delay 0.05;
        step ()
      end
    end
  in
  step ();
  (* drain what is still in flight, then leave *)
  wait_outstanding v ~until:(v.v_deadline +. 5.0);
  drop_conn v

(* ---------------------------------------------------------------- *)
(* Report                                                            *)
(* ---------------------------------------------------------------- *)

let summary_json (s : Stats.latency_summary) : Json.t =
  Json.Obj
    [
      ("count", Json.Int s.Stats.ls_count);
      ("p50_ms", Json.Float s.Stats.ls_p50_ms);
      ("p95_ms", Json.Float s.Stats.ls_p95_ms);
      ("p99_ms", Json.Float s.Stats.ls_p99_ms);
      ("max_ms", Json.Float s.Stats.ls_max_ms);
    ]

let latency_summary (xs : float list) : Json.t =
  match Stats.latency_summary (Array.of_list xs) with
  | None -> Json.Obj [ ("count", Json.Int 0) ]
  | Some s -> summary_json s

(** The overall latency ladder back out of a report, for callers that
    only have the JSON (the [gofreec load] stderr line). *)
let report_latency_summary (report : Json.t) : Stats.latency_summary option
    =
  match Json.member "latency_ms" report with
  | None -> None
  | Some lats -> begin
    match Json.member "all" lats with
    | Some all -> begin
      match
        ( Json.member "count" all,
          Json.member "p50_ms" all,
          Json.member "p95_ms" all,
          Json.member "p99_ms" all,
          Json.member "max_ms" all )
      with
      | Some (Json.Int count), Some p50, Some p95, Some p99, Some mx ->
        let f j = Option.value (Json.to_float_opt j) ~default:0.0 in
        Some
          {
            Stats.ls_count = count;
            ls_p50_ms = f p50;
            ls_p95_ms = f p95;
            ls_p99_ms = f p99;
            ls_max_ms = f mx;
          }
      | _ -> None
    end
    | None -> None
  end

let arrival_json ~clients : Schedule.arrival -> Json.t = function
  | Schedule.Closed -> Json.Obj [ ("model", Json.Str "closed") ]
  | Schedule.Poisson rps ->
    Json.Obj
      [
        ("model", Json.Str "poisson");
        ("rate_rps_per_client", Json.Float rps);
        ("rate_rps_total", Json.Float (rps *. float_of_int clients));
      ]
  | Schedule.Uniform rps ->
    Json.Obj
      [
        ("model", Json.Str "uniform");
        ("rate_rps_per_client", Json.Float rps);
        ("rate_rps_total", Json.Float (rps *. float_of_int clients));
      ]

let config_json (cfg : config) : Json.t =
  Json.Obj
    ([
       ("socket", Json.Str cfg.socket);
       ("clients", Json.Int cfg.clients);
       ("arrival", arrival_json ~clients:cfg.clients cfg.arrival);
       ("duration_s", Json.Float cfg.duration_s);
       ("mix", Mix.to_json cfg.mix);
       ("churn", Json.Float cfg.churn);
       ("seed", Json.Int cfg.seed);
       ("scale_pct", Json.Int cfg.scale);
     ]
    @ (match cfg.deadline_ms with
      | Some d -> [ ("deadline_ms", Json.Int d) ]
      | None -> [])
    @
    match cfg.build_dir with
    | Some d -> [ ("build_dir", Json.Str d) ]
    | None -> [])

(** The SLO verdict: every violated assertion, in English.  Shed and
    timed-out responses are {e not} violations — they are the graceful
    degradation the harness exists to demonstrate; hard errors,
    inconsistent outputs, a missed p99 and an all-failure run are. *)
let violations ~(cfg : config) (r : recorder) : string list =
  let v = ref [] in
  let add fmt = Printf.ksprintf (fun m -> v := m :: !v) fmt in
  if r.r_ok = 0 then add "no successful responses";
  if r.r_errors > 0 then add "%d hard error responses" r.r_errors;
  if r.r_mismatches <> [] then
    add "outputs not byte-identical under load: %s"
      (String.concat ", " (List.sort compare r.r_mismatches));
  (match cfg.slo_p99_ms with
  | Some slo when r.r_lat_all <> [] ->
    let p99 =
      Stats.percentile 99.0 (Array.of_list r.r_lat_all)
    in
    if p99 > slo then add "p99 %.1fms exceeds SLO %.1fms" p99 slo
  | Some _ -> ()  (* no-ok-responses already reported *)
  | None -> ());
  List.rev !v

let report ~(cfg : config) ~(elapsed_s : float) (r : recorder) : Json.t =
  let rps n = if elapsed_s > 0.0 then float_of_int n /. elapsed_s else 0.0 in
  let by_kind =
    Hashtbl.fold
      (fun kind lats acc -> (kind, latency_summary !lats) :: acc)
      r.r_lat_by_kind []
    |> List.sort compare
  in
  let viols = violations ~cfg r in
  Json.Obj
    [
      Schema.field Schema.Load;
      ("config", config_json cfg);
      ("elapsed_s", Json.Float elapsed_s);
      ( "offered",
        Json.Obj
          [ ("requests", Json.Int r.r_sent); ("rps", Json.Float (rps r.r_sent)) ]
      );
      ( "achieved",
        Json.Obj
          [
            ("ok", Json.Int r.r_ok);
            ("rps", Json.Float (rps r.r_ok));
            ("errors", Json.Int r.r_errors);
            ("shed", Json.Int r.r_shed);
            ("timed_out", Json.Int r.r_timed_out);
            ("dropped", Json.Int r.r_dropped);
            ("reconnects", Json.Int r.r_reconnects);
            ("connect_failures", Json.Int r.r_connect_failures);
          ] );
      ( "latency_ms",
        Json.Obj
          [
            ("all", latency_summary r.r_lat_all);
            ("by_kind", Json.Obj by_kind);
          ] );
      ( "consistency",
        Json.Obj
          [
            ("outputs_identical", Json.Bool (r.r_mismatches = []));
            ( "mismatches",
              Json.List
                (List.map
                   (fun k -> Json.Str k)
                   (List.sort compare r.r_mismatches)) );
          ] );
      ( "slo",
        Json.Obj
          ((match cfg.slo_p99_ms with
           | Some s -> [ ("p99_ms", Json.Float s) ]
           | None -> [])
          @ [
              ("ok", Json.Bool (viols = []));
              ( "violations",
                Json.List (List.map (fun m -> Json.Str m) viols) );
            ]) );
    ]

(** The report's SLO verdict, for callers that only have the JSON. *)
let slo_ok (report : Json.t) : bool =
  match Json.member "slo" report with
  | Some slo -> Json.member "ok" slo = Some (Json.Bool true)
  | None -> false

(* ---------------------------------------------------------------- *)
(* Entry points                                                      *)
(* ---------------------------------------------------------------- *)

(** Drive the daemon at [cfg.socket]; returns the [gofree-load-v1]
    report.  [Error] is reserved for configurations that cannot run at
    all — a failing SLO is a {e report} with [slo.ok = false]. *)
let run (cfg : config) : (Json.t, string) result =
  match validate cfg with
  | Error m -> Error m
  | Ok () ->
    let targets = targets ~scale:cfg.scale in
    let r = recorder () in
    let t0 = now_s () in
    let deadline = t0 +. cfg.duration_s in
    let vclients =
      List.init cfg.clients (fun idx ->
          {
            v_idx = idx;
            v_cfg = cfg;
            v_targets = targets;
            v_rec = r;
            v_gen =
              Schedule.make ~seed:cfg.seed ~client:idx ~mix:cfg.mix
                ~workloads:(Array.length targets) ~churn:cfg.churn
                ~arrival:cfg.arrival;
            v_deadline = deadline;
            v_mutex = Mutex.create ();
            v_outstanding = Hashtbl.create 32;
            v_conn = None;
            v_recv = None;
            v_next_id = 1;
          })
    in
    let threads =
      List.map (fun v -> Thread.create (vclient_main v) ()) vclients
    in
    List.iter Thread.join threads;
    let elapsed = now_s () -. t0 in
    Ok (report ~cfg ~elapsed_s:elapsed r)

(** The deterministic schedule the run {e would} replay: the first
    [events] events of every client, no daemon required.  Two calls with
    equal configs are byte-identical — the seeded-determinism contract
    [gofreec load --dry-run] and its test check. *)
let dry_run (cfg : config) ~(events : int) : (Json.t, string) result =
  match validate cfg with
  | Error m -> Error m
  | Ok () ->
    let targets = targets ~scale:cfg.scale in
    let clients =
      List.init cfg.clients (fun idx ->
          let gen =
            Schedule.make ~seed:cfg.seed ~client:idx ~mix:cfg.mix
              ~workloads:(Array.length targets) ~churn:cfg.churn
              ~arrival:cfg.arrival
          in
          let evs =
            List.init (max 0 events) (fun _ -> Schedule.next gen)
          in
          Json.Obj
            [
              ("client", Json.Int idx);
              ( "events",
                Json.List
                  (List.map
                     (Schedule.event_json
                        ~workload_name:(workload_name cfg targets))
                     evs) );
            ])
    in
    Ok
      (Json.Obj
         [
           Schema.field Schema.Load;
           ("dry_run", Json.Bool true);
           ("config", config_json cfg);
           ("clients", Json.List clients);
         ])
