(** The workload-mix model: a weighted blend of request kinds.

    A mix is written [analyze=4,run=2,explain=1,stats=1,build=0] — each
    term a method of the [gofree-rpc-v1] protocol with an integer
    weight.  Sampling is by cumulative weight over one uniform draw, so
    a mix plus a {!Rng} stream yields a deterministic request kind
    sequence. *)

module Json = Gofree_obs.Json

type kind = Analyze | Run | Explain | Build | Stats

let kinds = [ Analyze; Run; Explain; Build; Stats ]

let kind_name = function
  | Analyze -> "analyze"
  | Run -> "run"
  | Explain -> "explain"
  | Build -> "build"
  | Stats -> "stats"

let kind_of_name n = List.find_opt (fun k -> kind_name k = n) kinds

(** Weights in the fixed {!kinds} order; absent terms weigh 0. *)
type t = (kind * int) list

let default : t =
  [ (Analyze, 4); (Run, 2); (Explain, 1); (Build, 0); (Stats, 1) ]

let weight (t : t) k = Option.value (List.assoc_opt k t) ~default:0

let total (t : t) = List.fold_left (fun acc (_, w) -> acc + w) 0 t

let to_string (t : t) =
  String.concat ","
    (List.filter_map
       (fun k ->
         let w = weight t k in
         if w = 0 then None
         else Some (Printf.sprintf "%s=%d" (kind_name k) w))
       kinds)

(** Parse a [kind=weight,...] spec.  Unknown kinds, bad weights, repeats
    and the all-zero mix are errors. *)
let of_string (s : string) : (t, string) result =
  let exception Bad of string in
  try
    let terms =
      String.split_on_char ',' s
      |> List.map String.trim
      |> List.filter (fun term -> term <> "")
    in
    if terms = [] then raise (Bad "empty mix");
    let parsed =
      List.map
        (fun term ->
          match String.index_opt term '=' with
          | None ->
            raise
              (Bad (Printf.sprintf "term %S is not of the form kind=N" term))
          | Some i ->
            let name = String.sub term 0 i in
            let value = String.sub term (i + 1) (String.length term - i - 1) in
            let kind =
              match kind_of_name name with
              | Some k -> k
              | None ->
                raise
                  (Bad
                     (Printf.sprintf
                        "unknown kind %S (analyze | run | explain | build \
                         | stats)" name))
            in
            let w =
              match int_of_string_opt value with
              | Some w when w >= 0 -> w
              | _ ->
                raise
                  (Bad
                     (Printf.sprintf "weight %S must be a non-negative int"
                        value))
            in
            (kind, w))
        terms
    in
    List.iter
      (fun k ->
        if List.length (List.filter (fun (k', _) -> k' = k) parsed) > 1 then
          raise (Bad (Printf.sprintf "kind %s repeated" (kind_name k))))
      kinds;
    let t =
      List.map
        (fun k ->
          (k, Option.value (List.assoc_opt k parsed) ~default:0))
        kinds
    in
    if total t = 0 then raise (Bad "mix has zero total weight");
    Ok t
  with Bad m -> Error m

(** Sample one kind from [u] in [0, 1) by cumulative weight. *)
let pick (t : t) ~(u : float) : kind =
  let tot = total t in
  if tot = 0 then invalid_arg "Mix.pick: zero total weight";
  let target = int_of_float (u *. float_of_int tot) in
  let rec go acc = function
    | [] -> assert false
    | (k, w) :: rest -> if target < acc + w then k else go (acc + w) rest
  in
  go 0 (List.filter (fun (_, w) -> w > 0) t)

let to_json (t : t) : Json.t =
  Json.Obj
    (List.filter_map
       (fun k ->
         let w = weight t k in
         if w = 0 then None else Some (kind_name k, Json.Int w))
       kinds)
