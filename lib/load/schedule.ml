(** Deterministic seeded arrival processes.

    A {!gen} is one virtual client's request stream: an infinite,
    lazily-drawn sequence of {!event}s that is a pure function of
    [(seed, client, mix, arrival, churn)].  Each event consumes exactly
    four draws from the client's {!Rng} stream — kind, workload, gap,
    churn — whether or not the arrival model uses them, so the realized
    schedule never depends on which parameters happen to be enabled.

    Arrival models:
    - {e closed-loop} ([Closed]): the client issues its next request as
      soon as the previous response lands — offered load adapts to the
      server (gap is 0);
    - {e open-loop Poisson} ([Poisson rps]): exponentially-distributed
      inter-arrival gaps with the given per-client rate — requests are
      sent on schedule regardless of outstanding responses, the model
      that exposes queueing collapse;
    - {e open-loop uniform} ([Uniform rps]): constant gaps at the given
      per-client rate. *)

type arrival =
  | Closed
  | Poisson of float  (** per-client requests per second *)
  | Uniform of float  (** per-client requests per second *)

let arrival_name = function
  | Closed -> "closed"
  | Poisson _ -> "poisson"
  | Uniform _ -> "uniform"

type event = {
  ev_seq : int;  (** 0-based position in this client's stream *)
  ev_kind : Mix.kind;
  ev_workload : int;  (** index into the harness's workload table *)
  ev_gap_ms : float;  (** open loop: send this long after the previous *)
  ev_reconnect : bool;  (** churn: drop and re-dial before sending *)
}

type gen = {
  g_rng : Rng.t;
  g_mix : Mix.t;
  g_workloads : int;  (** size of the workload table *)
  g_arrival : arrival;
  g_churn : float;  (** per-request reconnect probability *)
  mutable g_seq : int;
}

let make ~seed ~client ~(mix : Mix.t) ~workloads ~churn ~arrival : gen =
  if workloads <= 0 then invalid_arg "Schedule.make: no workloads";
  {
    g_rng = Rng.stream ~seed ~client;
    g_mix = mix;
    g_workloads = workloads;
    g_arrival = arrival;
    g_churn = (if churn < 0.0 then 0.0 else if churn > 1.0 then 1.0 else churn);
    g_seq = 0;
  }

let gap_ms (g : gen) (u : float) : float =
  match g.g_arrival with
  | Closed -> 0.0
  | Uniform rps -> if rps <= 0.0 then 0.0 else 1000.0 /. rps
  | Poisson rps ->
    if rps <= 0.0 then 0.0
    else
      (* inverse-CDF exponential; clamp u away from 1 for finiteness *)
      let u = if u > 0.999999 then 0.999999 else u in
      -.log (1.0 -. u) /. rps *. 1000.0

let next (g : gen) : event =
  let u_kind = Rng.float g.g_rng in
  let u_workload = Rng.float g.g_rng in
  let u_gap = Rng.float g.g_rng in
  let u_churn = Rng.float g.g_rng in
  let seq = g.g_seq in
  g.g_seq <- seq + 1;
  {
    ev_seq = seq;
    ev_kind = Mix.pick g.g_mix ~u:u_kind;
    ev_workload =
      (let i = int_of_float (u_workload *. float_of_int g.g_workloads) in
       if i >= g.g_workloads then g.g_workloads - 1 else i);
    ev_gap_ms = gap_ms g u_gap;
    (* the first request of a connection cannot churn: there is nothing
       to drop yet *)
    ev_reconnect = seq > 0 && g.g_churn > 0.0 && u_churn < g.g_churn;
  }

let event_json ~workload_name (ev : event) : Gofree_obs.Json.t =
  let module Json = Gofree_obs.Json in
  Json.Obj
    [
      ("seq", Json.Int ev.ev_seq);
      ("kind", Json.Str (Mix.kind_name ev.ev_kind));
      ("workload", Json.Str (workload_name ev.ev_kind ev.ev_workload));
      ("gap_ms", Json.Float ev.ev_gap_ms);
      ("reconnect", Json.Bool ev.ev_reconnect);
    ]
