(** Deterministic PRNG streams for the load harness (splitmix64).

    Every random decision the harness makes — mix sampling, arrival
    gaps, connection churn — draws from a stream that is a pure
    function of [(seed, client)], so two runs with the same [--seed]
    produce the same request schedule, and a client's stream does not
    shift when another client is added.  Nothing here touches the
    global [Random] state. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed : t = { state = mix64 (Int64.of_int seed) }

(** The [client]-th substream of [seed]: seeded from both, far apart in
    the sequence for any pair. *)
let stream ~seed ~client : t =
  {
    state =
      mix64
        (Int64.logxor
           (mix64 (Int64.of_int seed))
           (Int64.mul golden (Int64.of_int (client + 1))));
  }

let next (t : t) : int64 =
  t.state <- Int64.add t.state golden;
  mix64 t.state

(** Uniform in [0, 1). *)
let float (t : t) : float =
  let bits53 = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits53 *. (1.0 /. 9007199254740992.0)

(** Uniform in [0, n). *)
let int (t : t) (n : int) : int =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  int_of_float (float t *. float_of_int n)
