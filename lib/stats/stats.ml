(** Basic sample statistics for the evaluation harness. *)

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let ss =
      Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
    in
    ss /. float_of_int (n - 1)
  end

let stdev xs = sqrt (variance xs)

let min_max xs =
  Array.fold_left
    (fun (lo, hi) x -> (min lo x, max hi x))
    (infinity, neg_infinity) xs

(** [percentile p xs] with linear interpolation; [p] in [0, 100]. *)
let percentile p xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "percentile: empty sample";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

(** [percentile] at several [p]s, sorting the sample once — what the
    latency reporters (daemon [stats], [gofreec client], [gofreec load])
    use so a big ring is not re-sorted per quantile. *)
let percentile_many ps xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "percentile_many: empty sample";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let at p =
    if n = 1 then sorted.(0)
    else begin
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (floor rank) in
      let hi = min (n - 1) (lo + 1) in
      let frac = rank -. float_of_int lo in
      (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
    end
  in
  List.map (fun p -> (p, at p)) ps

let median xs = percentile 50.0 xs

(** Ratio of the means, the paper's "ratio" columns (GoFree / Go). *)
let ratio ~treatment ~control =
  let c = mean control in
  if c = 0.0 then 1.0 else mean treatment /. c

(** Coefficient of variation of the ratio sample, the paper's "stdev"
    columns: per-run treatment values normalized by the control mean. *)
let ratio_stdev ~treatment ~control =
  let c = mean control in
  if c = 0.0 then 0.0
  else stdev (Array.map (fun x -> x /. c) treatment)
