(** Basic sample statistics for the evaluation harness. *)

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let ss =
      Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
    in
    ss /. float_of_int (n - 1)
  end

let stdev xs = sqrt (variance xs)

let min_max xs =
  Array.fold_left
    (fun (lo, hi) x -> (min lo x, max hi x))
    (infinity, neg_infinity) xs

(** [percentile p xs] with linear interpolation; [p] in [0, 100]. *)
let percentile p xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "percentile: empty sample";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

(** [percentile] at several [p]s, sorting the sample once — what the
    latency reporters (daemon [stats], [gofreec client], [gofreec load])
    use so a big ring is not re-sorted per quantile. *)
let percentile_many ps xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "percentile_many: empty sample";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let at p =
    if n = 1 then sorted.(0)
    else begin
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (floor rank) in
      let hi = min (n - 1) (lo + 1) in
      let frac = rank -. float_of_int lo in
      (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
    end
  in
  List.map (fun p -> (p, at p)) ps

let median xs = percentile 50.0 xs

(** The one latency ladder every reporter prints: p50/p95/p99/max over
    a millisecond sample.  [gofreec client --concurrency], [gofreec
    load] and the load harness's report all derive their summaries from
    this record, so the percentile set and the sort behind it
    ({!percentile_many}) cannot drift apart between surfaces. *)
type latency_summary = {
  ls_count : int;
  ls_p50_ms : float;
  ls_p95_ms : float;
  ls_p99_ms : float;
  ls_max_ms : float;
}

let latency_summary (xs : float array) : latency_summary option =
  if Array.length xs = 0 then None
  else begin
    match percentile_many [ 50.0; 95.0; 99.0 ] xs with
    | [ (_, p50); (_, p95); (_, p99) ] ->
      let _, max_ms = min_max xs in
      Some
        {
          ls_count = Array.length xs;
          ls_p50_ms = p50;
          ls_p95_ms = p95;
          ls_p99_ms = p99;
          ls_max_ms = max_ms;
        }
    | _ -> assert false
  end

let latency_summary_line (s : latency_summary) : string =
  Printf.sprintf "latency ms p50 %.2f p95 %.2f p99 %.2f max %.2f"
    s.ls_p50_ms s.ls_p95_ms s.ls_p99_ms s.ls_max_ms

(** Ratio of the means, the paper's "ratio" columns (GoFree / Go). *)
let ratio ~treatment ~control =
  let c = mean control in
  if c = 0.0 then 1.0 else mean treatment /. c

(** Coefficient of variation of the ratio sample, the paper's "stdev"
    columns: per-run treatment values normalized by the control mean. *)
let ratio_stdev ~treatment ~control =
  let c = mean control in
  if c = 0.0 then 0.0
  else stdev (Array.map (fun x -> x /. c) treatment)
