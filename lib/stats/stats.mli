(** Basic sample statistics for the evaluation harness. *)

val mean : float array -> float

(** Unbiased sample variance (n − 1 denominator). *)
val variance : float array -> float

val stdev : float array -> float

val min_max : float array -> float * float

(** Linear-interpolation percentile; [p] in [0, 100].
    Raises [Invalid_argument] on an empty sample. *)
val percentile : float -> float array -> float

(** {!percentile} at several points, sorting the sample once; returns
    [(p, value)] pairs in input order.
    Raises [Invalid_argument] on an empty sample. *)
val percentile_many : float list -> float array -> (float * float) list

val median : float array -> float

(** The shared latency ladder (count, p50/p95/p99/max in ms) that every
    latency reporter — [gofreec client --concurrency], [gofreec load],
    the load harness report — derives from the same
    {!percentile_many} call. *)
type latency_summary = {
  ls_count : int;
  ls_p50_ms : float;
  ls_p95_ms : float;
  ls_p99_ms : float;
  ls_max_ms : float;
}

(** [None] on an empty sample. *)
val latency_summary : float array -> latency_summary option

(** ["latency ms p50 ... p95 ... p99 ... max ..."] — callers prefix
    their own context. *)
val latency_summary_line : latency_summary -> string

(** Ratio of means (the paper's "ratio" columns, treatment / control). *)
val ratio : treatment:float array -> control:float array -> float

(** Stdev of the per-run treatment values normalized by the control
    mean — the paper's "stdev" columns. *)
val ratio_stdev : treatment:float array -> control:float array -> float
