(** Basic sample statistics for the evaluation harness. *)

val mean : float array -> float

(** Unbiased sample variance (n − 1 denominator). *)
val variance : float array -> float

val stdev : float array -> float

val min_max : float array -> float * float

(** Linear-interpolation percentile; [p] in [0, 100].
    Raises [Invalid_argument] on an empty sample. *)
val percentile : float -> float array -> float

(** {!percentile} at several points, sorting the sample once; returns
    [(p, value)] pairs in input order.
    Raises [Invalid_argument] on an empty sample. *)
val percentile_many : float list -> float array -> (float * float) list

val median : float array -> float

(** Ratio of means (the paper's "ratio" columns, treatment / control). *)
val ratio : treatment:float array -> control:float array -> float

(** Stdev of the per-run treatment values normalized by the control
    mean — the paper's "stdev" columns. *)
val ratio_stdev : treatment:float array -> control:float array -> float
