(** Client side of the [gofree-rpc-v1] protocol — what [gofreec client]
    and the benches speak. *)

module Json = Gofree_obs.Json

exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

type t = { fd : Unix.file_descr; rd : Rpc.reader; mutable next_id : int }

(** Connect to a serving daemon.  Raises {!Error} when nothing listens
    on [socket]. *)
let connect ~socket : t =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> { fd; rd = Rpc.reader fd; next_id = 1 }
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    fail "cannot connect to %s: %s" socket (Unix.error_message e)

let close (t : t) = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* Raw write used by the batch path: the line is sent verbatim so even
   intentionally malformed inputs reach the server unchanged. *)
let write_string (fd : Unix.file_descr) (s : string) : unit =
  let len = String.length s in
  let rec push off =
    if off < len then begin
      let n =
        try Unix.write_substring fd s off (len - off)
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      push (off + n)
    end
  in
  push 0

let send_line (t : t) (line : string) : unit =
  match write_string t.fd (line ^ "\n") with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
    fail "connection lost while sending: %s" (Unix.error_message e)

(** Next response line, parsed; [None] when the server closed the
    connection. *)
let recv (t : t) : Json.t option =
  match Rpc.read_line t.rd with
  | None -> None
  | Some line -> begin
    match Json.parse line with
    | j -> Some j
    | exception Json.Parse_error m -> fail "bad response line: %s" m
  end

(** Send [request] (an {!Rpc.request}), wait for its response, return
    the response document.  Ids are assigned per connection; a response
    with a different id (out-of-order completion of a pipelined peer)
    is a protocol error here, since this helper never pipelines.
    [deadline_ms] asks the daemon to time the request out rather than
    execute it if it queues longer than that. *)
let rpc ?deadline_ms (t : t) (request : Rpc.request) : Json.t =
  let id = Json.Int t.next_id in
  t.next_id <- t.next_id + 1;
  (match
     Rpc.write_line t.fd (Rpc.request_to_json ~id ?deadline_ms request)
   with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
    fail "connection lost while sending: %s" (Unix.error_message e));
  match recv t with
  | None -> fail "server closed the connection before responding"
  | Some response ->
    if Json.member "id" response <> Some id then
      fail "response id mismatch (unexpected pipelining?)";
    response

(** [rpc], unwrapping the envelope: [Ok result] or [Error (code, msg)]. *)
let call ?deadline_ms (t : t) (request : Rpc.request) :
    (Json.t, string * string) result =
  let response = rpc ?deadline_ms t request in
  match Json.member "ok" response with
  | Some (Json.Bool true) -> begin
    match Json.member "result" response with
    | Some r -> Ok r
    | None -> fail "ok response without result"
  end
  | Some (Json.Bool false) -> begin
    match Json.member "error" response with
    | Some e ->
      Error
        ( (try Json.get_string "code" e with _ -> "unknown"),
          try Json.get_string "message" e with _ -> "unknown" )
    | None -> fail "error response without error object"
  end
  | _ -> fail "response without \"ok\" field"

(** One-shot convenience: connect, call, close. *)
let call_once ~socket (request : Rpc.request) :
    (Json.t, string * string) result =
  let t = connect ~socket in
  Fun.protect ~finally:(fun () -> close t) (fun () -> call t request)
