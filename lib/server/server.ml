(** The [gofreec serve] daemon: a Unix-domain socket listener that keeps
    compilation and build results resident across requests.

    Threading model:
    - the {e accept} loop runs in {!serve}'s caller (or a background
      thread via {!start});
    - each connection gets a lightweight {e reader thread} that frames
      request lines, decodes them, and feeds the shared bounded
      {!Pool}, keyed by connection so the pool drains round-robin
      across clients — one pipelining client cannot starve the rest;
    - a fixed pool of {e worker domains} executes the requests (the
      parallelism follows "Retrofitting Parallelism onto OCaml", like
      the build driver's analysis waves) and writes each response back
      under the connection's write mutex, so responses never interleave
      mid-line even when one client pipelines requests.

    Overload behavior (admission control):
    - past the shed high-watermark the daemon answers [overloaded]
      immediately instead of blocking the reader — per-request work
      stays bounded and the client decides whether to back off or
      retry (graceful degradation rather than unbounded queueing);
    - a request still {e queued} past its deadline ([deadline_ms]
      param, or the server-wide default) gets a [timed_out] response
      when it reaches a worker; running requests are never interrupted;
    - queued work whose client has disconnected is cancelled — the
      worker skips it (counted, no response owed).

    Failure containment, per the protocol contract:
    - a malformed line gets a [bad_request] error response and the
      connection keeps serving;
    - a client that disconnects mid-request only loses its own
      response (the write fails, the result is dropped, the daemon
      lives on);
    - [shutdown] stops intake, {e drains} queued and in-flight work so
      every accepted request is answered, then closes.

    The invariant all three overload paths preserve: {e one response
    per request} on a live connection — shed and timeout produce error
    {e responses} with the request's id echoed, never silence, so a
    pipelining client's id bookkeeping survives overload. *)

module Json = Gofree_obs.Json
module Trace = Gofree_obs.Trace
module Ring = Gofree_obs.Ring
module Reg = Gofree_obs.Registry
module Log = Gofree_obs.Log
module Pool = Gofree_sched.Pool

type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  c_wmutex : Mutex.t;  (** guards writes and the fields below *)
  mutable c_alive : bool;  (** false once a write failed *)
  mutable c_pending : int;  (** requests submitted, response not written *)
  mutable c_eof : bool;  (** reader saw EOF; close once pending drains *)
  mutable c_closed : bool;
  mutable c_served : int;  (** responses written to this client *)
}

type t = {
  socket_path : string;
  listen_fd : Unix.file_descr;
  pool : Pool.t;
  shed_watermark : int;  (** queue depth past which requests shed *)
  default_deadline_ms : int;  (** 0 = no server-wide deadline *)
  cache : Cache.t;
  stopping : bool Atomic.t;
  t0 : float;
  (* ---- telemetry (the per-server registry; lock-free updates) ---- *)
  reg : Reg.t;
  m_responses : Reg.counter;  (** responses sent, errors included *)
  m_errors : Reg.counter;  (** error responses among them *)
  m_malformed : Reg.counter;  (** undecodable request lines *)
  m_dropped : Reg.counter;  (** responses lost to dead connections *)
  m_shed : Reg.counter;  (** requests refused with [overloaded] *)
  m_timed_out : Reg.counter;  (** queued past deadline, answered so *)
  m_cancelled : Reg.counter;  (** queued work skipped: client gone *)
  h_queue_wait : Reg.histogram;  (** ms, receipt → dequeue *)
  h_service : Reg.histogram;  (** ms, dequeue → response written *)
  h_request : Reg.histogram;  (** ms, receipt → response written *)
  g_queue_depth : Reg.gauge;
  g_connections : Reg.gauge;
  g_uptime : Reg.gauge;
  next_req : int Atomic.t;  (** request ids, minted at the reader *)
  (* ---- connection bookkeeping (under st_mutex) ---- *)
  st_mutex : Mutex.t;
  latencies : float Ring.t;
      (** ms, receipt → response, pooled requests — the bounded
          {e recent window} behind [stats.latency_recent_ms]; the
          all-time percentiles come from [h_request] *)
  mutable conns : conn list;
  mutable conns_total : int;
  mutable threads : Thread.t list;
  mutable serve_thread : Thread.t option;
}

(* One latency ladder for queue-wait, service and total so snapshots of
   the three merge and compare; sub-ms lower rungs resolve the
   queue-wait of an idle daemon. *)
let latency_buckets_ms = Reg.default_buckets_ms

let method_counter_prefix = "gofree_rpc_method_"

let method_counter (t : t) name =
  Reg.counter t.reg (method_counter_prefix ^ name ^ "_total")

let now_ms () = Unix.gettimeofday () *. 1000.

(* ---------------------------------------------------------------- *)
(* Lifecycle                                                         *)
(* ---------------------------------------------------------------- *)

let create ?(workers = 0) ?(queue_capacity = 64) ?shed_watermark
    ?(default_deadline_ms = 0) ~socket () : t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  if Sys.file_exists socket then begin
    match (Unix.lstat socket).Unix.st_kind with
    | Unix.S_SOCK -> Unix.unlink socket  (* stale socket of a dead server *)
    | _ ->
      invalid_arg
        (Printf.sprintf "Server.create: %s exists and is not a socket"
           socket)
  end;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX socket);
     Unix.listen listen_fd 64
   with e ->
     Unix.close listen_fd;
     raise e);
  let queue_capacity = max 1 queue_capacity in
  (* the daemon's lifetime turns the runtime instruments (GC pause/gap,
     tcfree counters) on; [serve] releases on the way out *)
  Reg.acquire_runtime ();
  let reg = Reg.create () in
  let histo help name =
    Reg.histogram reg ~help ~buckets:latency_buckets_ms name
  in
  {
    socket_path = socket;
    listen_fd;
    pool = Pool.create ~workers ~capacity:queue_capacity ();
    shed_watermark =
      (match shed_watermark with
      | Some w -> min (max 1 w) queue_capacity
      | None -> queue_capacity);
    default_deadline_ms = max 0 default_deadline_ms;
    cache = Cache.create ();
    stopping = Atomic.make false;
    t0 = now_ms ();
    reg;
    m_responses =
      Reg.counter reg ~help:"responses sent, errors included"
        "gofree_rpc_responses_total";
    m_errors =
      Reg.counter reg ~help:"error responses among the responses"
        "gofree_rpc_responses_error_total";
    m_malformed =
      Reg.counter reg ~help:"undecodable request lines"
        "gofree_rpc_malformed_total";
    m_dropped =
      Reg.counter reg ~help:"responses lost to dead connections"
        "gofree_rpc_responses_dropped_total";
    m_shed =
      Reg.counter reg ~help:"requests refused with overloaded"
        "gofree_rpc_shed_total";
    m_timed_out =
      Reg.counter reg ~help:"requests queued past their deadline"
        "gofree_rpc_timed_out_total";
    m_cancelled =
      Reg.counter reg ~help:"queued work skipped: client disconnected"
        "gofree_rpc_cancelled_total";
    h_queue_wait =
      histo "ms from receipt to dequeue (pooled requests)"
        "gofree_rpc_queue_wait_ms";
    h_service =
      histo "ms from dequeue to response written"
        "gofree_rpc_service_ms";
    h_request =
      histo "ms from receipt to response written"
        "gofree_rpc_request_ms";
    g_queue_depth =
      Reg.gauge reg ~help:"queue depth at last scrape"
        "gofree_rpc_queue_depth";
    g_connections =
      Reg.gauge reg ~help:"active connections at last scrape"
        "gofree_rpc_connections_active";
    g_uptime = Reg.gauge reg ~help:"ms since create" "gofree_uptime_ms";
    next_req = Atomic.make 1;
    st_mutex = Mutex.create ();
    latencies = Ring.create ~capacity:1024;
    conns = [];
    conns_total = 0;
    threads = [];
    serve_thread = None;
  }

(* Wake the accept loop after [stopping] flips: a throwaway connection
   to our own socket makes the blocking accept return. *)
let wake_accept (t : t) =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.connect fd (Unix.ADDR_UNIX t.socket_path)
     with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

(** Ask the server to stop: intake ends, queued and in-flight requests
    are still answered, then sockets close.  Safe from any thread. *)
let request_shutdown (t : t) : unit =
  if Atomic.compare_and_set t.stopping false true then wake_accept t

(* ---------------------------------------------------------------- *)
(* Connection bookkeeping                                            *)
(* ---------------------------------------------------------------- *)

let close_locked (c : conn) =
  if not c.c_closed then begin
    c.c_closed <- true;
    try Unix.close c.c_fd with Unix.Unix_error _ -> ()
  end

(* The fd closes only when the reader is done AND no response is still
   owed — otherwise a freshly accepted connection could reuse the fd
   number and receive a stale response. *)
let conn_done_one (c : conn) =
  Mutex.lock c.c_wmutex;
  c.c_pending <- c.c_pending - 1;
  if c.c_eof && c.c_pending = 0 then close_locked c;
  Mutex.unlock c.c_wmutex

let conn_reader_done (t : t) (c : conn) =
  Mutex.lock c.c_wmutex;
  c.c_eof <- true;
  if c.c_pending = 0 then close_locked c;
  Mutex.unlock c.c_wmutex;
  Mutex.lock t.st_mutex;
  t.conns <- List.filter (fun c' -> c'.c_id <> c.c_id) t.conns;
  Mutex.unlock t.st_mutex;
  if Log.enabled Log.Debug then
    Log.log Log.Debug "conn_close"
      [ ("conn", Json.Int c.c_id); ("served", Json.Int c.c_served) ]

(** Write one response line; [false] (and counted) when the client is
    gone.  A dead connection swallows all later responses too. *)
let send (t : t) (c : conn) (j : Json.t) : bool =
  (* counted before the bytes go out: the moment the write lands the
     client can already be scraping stats/telemetry on another
     connection, and the scrape must include this response.  A failed
     write is counted under dropped as well. *)
  Reg.incr t.m_responses;
  Mutex.lock c.c_wmutex;
  let ok =
    c.c_alive && not c.c_closed
    &&
    match Rpc.write_line c.c_fd j with
    | () -> true
    | exception Unix.Unix_error _ ->
      c.c_alive <- false;
      false
  in
  if ok then c.c_served <- c.c_served + 1;
  Mutex.unlock c.c_wmutex;
  if not ok then Reg.incr t.m_dropped;
  ok

let count_method (t : t) name = Reg.incr (method_counter t name)

let count_error (t : t) = Reg.incr t.m_errors

(* The three overload outcomes: counter, request-correlated trace
   instant on the connection's reader track, and a warn-level log line. *)
let count_outcome (c : conn) ~rid ~meth counter what =
  Reg.incr counter;
  if Trace.enabled () then
    Trace.instant
      ~args:[ ("req", Json.Int rid); ("conn", Json.Int c.c_id) ]
      ~tid:(Trace.tid_reader c.c_id)
      ("rpc:" ^ what);
  if Log.enabled Log.Warn then
    Log.log Log.Warn what
      [
        ("req", Json.Int rid);
        ("conn", Json.Int c.c_id);
        ("method", Json.Str meth);
      ]

let count_shed (t : t) c ~rid ~meth =
  count_outcome c ~rid ~meth t.m_shed "shed"

let count_timed_out (t : t) c ~rid ~meth =
  count_outcome c ~rid ~meth t.m_timed_out "timed_out"

let count_cancelled (t : t) c ~rid ~meth =
  count_outcome c ~rid ~meth t.m_cancelled "cancelled"

(* A connection whose reader saw EOF (or whose last write failed) owes
   nothing: queued work for it is cancelled instead of executed. *)
let conn_gone (c : conn) =
  Mutex.lock c.c_wmutex;
  let gone = (not c.c_alive) || c.c_closed || c.c_eof in
  Mutex.unlock c.c_wmutex;
  gone

(* ---------------------------------------------------------------- *)
(* Request handlers                                                  *)
(* ---------------------------------------------------------------- *)

let insertion_json (i : Gofree_api.insertion) : Json.t =
  Json.Obj
    [
      ("function", Json.Str i.Gofree_api.ins_function);
      ("variable", Json.Str i.Gofree_api.ins_variable);
      ("kind", Json.Str (Gofree_api.free_kind_name i.Gofree_api.ins_kind));
    ]

let outcome_json ~cached (o : Gofree_api.run_outcome) : Json.t =
  Json.Obj
    [
      ("output", Json.Str o.Gofree_api.output);
      ("panicked", Json.Bool o.Gofree_api.panicked);
      ("steps", Json.Int o.Gofree_api.steps);
      ("wall_ns", Json.Int (Int64.to_int o.Gofree_api.wall_ns));
      ("cached", Json.Bool cached);
      ("metrics", o.Gofree_api.metrics_json);
    ]

let source_of_src : Rpc.src -> (string, Gofree_api.error) result = function
  | Rpc.Inline s -> Ok s
  | Rpc.File f -> begin
    match Gofree_api.read_file f with
    | s -> Ok s
    | exception Sys_error m -> Error (Gofree_api.Compile_error m)
  end

let cached_compilation (t : t) ~config src =
  match source_of_src src with
  | Error e -> Error e
  | Ok source -> Cache.compilation t.cache ~config source

(* The ladder both latency views share.  The all-time view reads the
   request histogram — unlike the pre-telemetry ring it never forgets
   early requests once more than the window have been served, so p99
   keeps meaning p99 {e of the run} under pressure.  Quantiles are
   bucket-interpolated estimates clamped to the tracked maximum. *)
let histogram_latency_fields (h : Reg.Snapshot.histo) =
  let count = Reg.Snapshot.count h in
  if count = 0 then []
  else
    [
      ("count", Json.Int count);
      ("p50_ms", Json.Float (Reg.Snapshot.quantile h 50.0));
      ("p95_ms", Json.Float (Reg.Snapshot.quantile h 95.0));
      ("p99_ms", Json.Float (Reg.Snapshot.quantile h 99.0));
      ("max_ms", Json.Float h.Reg.Snapshot.max_value);
    ]

(* Exact sample percentiles, but only over the ring's bounded recent
   window — the complementary "what just happened" view. *)
let ring_latency_fields (lats : float array) =
  match Gofree_stats.Stats.latency_summary lats with
  | None -> []
  | Some s ->
    [
      ("window", Json.Int (Array.length lats));
      ("p50_ms", Json.Float s.Gofree_stats.Stats.ls_p50_ms);
      ("p95_ms", Json.Float s.Gofree_stats.Stats.ls_p95_ms);
      ("p99_ms", Json.Float s.Gofree_stats.Stats.ls_p99_ms);
      ("max_ms", Json.Float s.Gofree_stats.Stats.ls_max_ms);
    ]

let stats_json (t : t) : Json.t =
  let hits, misses = Cache.counts t.cache in
  Mutex.lock t.st_mutex;
  let active = List.length t.conns and total = t.conns_total in
  let clients =
    List.rev_map
      (fun c ->
        Mutex.lock c.c_wmutex;
        let served = c.c_served and pending = c.c_pending in
        Mutex.unlock c.c_wmutex;
        Json.Obj
          [
            ("id", Json.Int c.c_id);
            ("served", Json.Int served);
            ("pending", Json.Int pending);
          ])
      t.conns
  in
  let lats = Array.of_list (Ring.to_list t.latencies) in
  Mutex.unlock t.st_mutex;
  let snap = Reg.snapshot t.reg in
  let by_method =
    List.filter_map
      (fun (name, v) ->
        let plen = String.length method_counter_prefix in
        if
          String.length name > plen + 6
          && String.sub name 0 plen = method_counter_prefix
          && Filename.check_suffix name "_total"
        then
          Some
            ( String.sub name plen (String.length name - plen - 6),
              Json.Int v )
        else None)
      snap.Reg.Snapshot.counters
  in
  let served = Reg.counter_value t.m_responses in
  let errored = Reg.counter_value t.m_errors in
  let malformed = Reg.counter_value t.m_malformed in
  let dropped = Reg.counter_value t.m_dropped in
  let shed = Reg.counter_value t.m_shed in
  let timed_out = Reg.counter_value t.m_timed_out in
  let cancelled = Reg.counter_value t.m_cancelled in
  let latency =
    match Reg.Snapshot.find_histogram "gofree_rpc_request_ms" snap with
    | Some h -> histogram_latency_fields h
    | None -> []
  in
  Json.Obj
    [
      ("api_version", Json.Int Gofree_api.api_version);
      ("uptime_ms", Json.Float (now_ms () -. t.t0));
      ( "requests",
        Json.Obj
          [
            ("served", Json.Int served);
            ("errors", Json.Int errored);
            ("malformed", Json.Int malformed);
            ("dropped_responses", Json.Int dropped);
            ("shed", Json.Int shed);
            ("timed_out", Json.Int timed_out);
            ("cancelled", Json.Int cancelled);
            ("by_method", Json.Obj by_method);
          ] );
      ( "cache",
        Json.Obj
          [
            ("hits", Json.Int hits);
            ("misses", Json.Int misses);
            ( "hit_ratio",
              Json.Float
                (if hits + misses = 0 then 0.0
                 else float_of_int hits /. float_of_int (hits + misses)) );
          ] );
      ( "unit_cache",
        let uh, um = Cache.unit_counts t.cache in
        Json.Obj
          [ ("hits", Json.Int uh); ("misses", Json.Int um) ] );
      ( "vm",
        (* the bytecode engine's inline-cache traffic across every run
           this process served, from the process-wide runtime registry *)
        let rsnap = Reg.snapshot Reg.runtime in
        let counter name =
          Option.value ~default:0
            (List.assoc_opt name rsnap.Reg.Snapshot.counters)
        in
        let ic_hits = counter "gofree_vm_ic_hit_total" in
        let ic_misses = counter "gofree_vm_ic_miss_total" in
        Json.Obj
          [
            ("ic_hits", Json.Int ic_hits);
            ("ic_misses", Json.Int ic_misses);
            ( "ic_hit_ratio",
              Json.Float
                (if ic_hits + ic_misses = 0 then 0.0
                 else
                   float_of_int ic_hits
                   /. float_of_int (ic_hits + ic_misses)) );
          ] );
      ( "queue",
        Json.Obj
          [
            ("depth", Json.Int (Pool.queue_depth t.pool));
            ("high_watermark", Json.Int (Pool.max_queue_depth t.pool));
            ("capacity", Json.Int (Pool.capacity t.pool));
            ("shed_watermark", Json.Int t.shed_watermark);
            ("workers", Json.Int (Pool.size t.pool));
          ] );
      ( "connections",
        Json.Obj
          [
            ("active", Json.Int active);
            ("total", Json.Int total);
            ("clients", Json.List clients);
          ] );
      ("latency_ms", Json.Obj latency);
      ("latency_recent_ms", Json.Obj (ring_latency_fields lats));
    ]

(** The [telemetry] verb: one [gofree-telemetry-v1] document merging
    this server's request registry with the process-wide runtime
    registry (GC pause/gap histograms, tcfree counters).  Gauges are
    sampled at scrape time. *)
let telemetry_json (t : t) : Json.t =
  Reg.set t.g_uptime (now_ms () -. t.t0);
  Reg.set t.g_queue_depth (float_of_int (Pool.queue_depth t.pool));
  Mutex.lock t.st_mutex;
  let active = List.length t.conns in
  Mutex.unlock t.st_mutex;
  Reg.set t.g_connections (float_of_int active);
  Reg.Snapshot.to_json
    (Reg.Snapshot.merge (Reg.snapshot Reg.runtime) (Reg.snapshot t.reg))

(** Execute one decoded request; [Error (code, message)] becomes an
    error response. *)
let handle (t : t) (r : Rpc.request) : (Json.t, string * string) result =
  let api e = (Rpc.error_code e, Gofree_api.error_message e) in
  match r with
  | Rpc.Stats -> Ok (stats_json t)
  | Rpc.Telemetry -> Ok (telemetry_json t)
  | Rpc.Shutdown ->
    request_shutdown t;
    Ok (Json.Obj [ ("stopping", Json.Bool true) ])
  | Rpc.Analyze { src; config; explain } -> begin
    match cached_compilation t ~config src with
    | Error e -> Error (api e)
    | Ok (c, cached) ->
      Ok
        (Json.Obj
           ([
              ( "functions",
                Json.List
                  (List.map
                     (fun f -> Json.Str f)
                     (Gofree_api.function_names c)) );
              ( "insertions",
                Json.List
                  (List.map insertion_json (Gofree_api.insertions c)) );
              ("cached", Json.Bool cached);
            ]
           @
           if explain then
             [ ("explain",
                Gofree_api.explain_to_json (Gofree_api.explain c)) ]
           else []))
  end
  | Rpc.Explain { src; config } -> begin
    match cached_compilation t ~config src with
    | Error e -> Error (api e)
    | Ok (c, cached) ->
      Ok
        (Json.Obj
           [
             ("cached", Json.Bool cached);
             ("explain",
              Gofree_api.explain_to_json (Gofree_api.explain c));
           ])
  end
  | Rpc.Run { src; config; options } -> begin
    match cached_compilation t ~config src with
    | Error e -> Error (api e)
    | Ok (c, cached) -> begin
      match Gofree_api.run_compilation ~options c with
      | Error e -> Error (api e)
      | Ok o -> Ok (outcome_json ~cached o)
    end
  end
  | Rpc.Build { dir; config; force; jobs; run; cache_dir; options } ->
  begin
    match Cache.build t.cache ~config ?cache_dir ~jobs ~force dir with
    | Error e -> Error (api e)
    | Ok (b, resident) -> begin
      let packages, store_hits = Gofree_api.build_cache_counts b in
      let unit_hits, units_analyzed = Gofree_api.build_unit_counts b in
      let base =
        [
          ("resident_cache", Json.Str (if resident then "hit" else "miss"));
          ("packages", Json.Int packages);
          ("store_hits", Json.Int store_hits);
          ("unit_hits", Json.Int unit_hits);
          ("units_analyzed", Json.Int units_analyzed);
          ("stats", Gofree_api.build_stats_to_json
             (Gofree_api.build_stats b));
          ( "insertions",
            Json.List
              (List.map insertion_json (Gofree_api.build_insertions b)) );
        ]
      in
      if not run then Ok (Json.Obj base)
      else begin
        match Gofree_api.run_build ~options b with
        | Error e -> Error (api e)
        | Ok o ->
          Ok (Json.Obj (base @ [ ("run", outcome_json ~cached:resident o) ]))
      end
    end
  end

(* ---------------------------------------------------------------- *)
(* Per-connection reader                                             *)
(* ---------------------------------------------------------------- *)

let respond (t : t) (c : conn) ~id (outcome : (Json.t, string * string) result)
    =
  let response =
    match outcome with
    | Ok result -> Rpc.response_ok ~id result
    | Error (code, message) ->
      count_error t;
      Rpc.response_error ~id ~code message
  in
  ignore (send t c response)

let outcome_name = function
  | Ok _ -> "ok"
  | Error (code, _) -> code

(* One info line per pooled response, carrying the whole latency
   decomposition. *)
let log_request (c : conn) ~rid ~meth ~outcome ~queue_wait_ms
    ~service_ms ~total_ms =
  if Log.enabled Log.Info then
    Log.log Log.Info "request"
      [
        ("req", Json.Int rid);
        ("conn", Json.Int c.c_id);
        ("method", Json.Str meth);
        ("outcome", Json.Str (outcome_name outcome));
        ("queue_wait_ms", Json.Float queue_wait_ms);
        ("service_ms", Json.Float service_ms);
        ("total_ms", Json.Float total_ms);
      ]

let record_latency (t : t) total_ms =
  Reg.observe t.h_request total_ms;
  Mutex.lock t.st_mutex;
  Ring.push t.latencies total_ms;
  Mutex.unlock t.st_mutex

let reader_loop (t : t) (c : conn) =
  let rd = Rpc.reader c.c_fd in
  if Trace.enabled () then
    Trace.name_thread
      ~tid:(Trace.tid_reader c.c_id)
      (Printf.sprintf "reader %d" c.c_id);
  let rec loop () =
    match Rpc.read_line rd with
    | None -> ()
    | Some line ->
      let t_recv = now_ms () in
      (* the request id is minted here, at the reader, and follows the
         request through queue, worker domain and nested spans *)
      let rid = Atomic.fetch_and_add t.next_req 1 in
      let rtid = Trace.tid_reader c.c_id in
      (match Rpc.decode line with
      | Error (id, message) ->
        Reg.incr t.m_malformed;
        if Log.enabled Log.Warn then
          Log.log Log.Warn "malformed"
            [
              ("req", Json.Int rid);
              ("conn", Json.Int c.c_id);
              ("message", Json.Str message);
            ];
        respond t c ~id (Error ("bad_request", message))
      | Ok { Rpc.rq_id = id; rq_request; rq_deadline_ms } -> begin
        let meth = Rpc.method_name rq_request in
        count_method t meth;
        if Trace.enabled () then
          Trace.instant
            ~args:[ ("req", Json.Int rid); ("method", Json.Str meth) ]
            ~tid:rtid "rpc:recv";
        match rq_request with
        | Rpc.Stats | Rpc.Telemetry | Rpc.Shutdown ->
          (* cheap and latency-sensitive: answered on the reader
             thread, ahead of any queue *)
          let outcome = handle t rq_request in
          respond t c ~id outcome;
          if Trace.enabled () then
            Trace.instant ~args:[ ("req", Json.Int rid) ] ~tid:rtid
              "rpc:respond";
          log_request c ~rid ~meth ~outcome ~queue_wait_ms:0.0
            ~service_ms:(now_ms () -. t_recv)
            ~total_ms:(now_ms () -. t_recv)
        | _ ->
          let deadline_ms =
            match rq_deadline_ms with
            | Some d -> d
            | None -> t.default_deadline_ms
          in
          Mutex.lock c.c_wmutex;
          c.c_pending <- c.c_pending + 1;
          Mutex.unlock c.c_wmutex;
          (* queue-wait renders as a span on the reader track: B here,
             E at dequeue (or right below, when admission refuses) *)
          if Trace.enabled () then
            Trace.begin_span
              ~args:[ ("req", Json.Int rid); ("method", Json.Str meth) ]
              ~tid:rtid "rpc:queued";
          let job () =
            (* the worker domain owns this request until done: nested
               spans (pipeline, GC, tcfree) inherit args.req *)
            Trace.with_request_id (Some rid) (fun () ->
                let t_deq = now_ms () in
                let queue_wait_ms = t_deq -. t_recv in
                if Trace.enabled () then Trace.end_span ~tid:rtid "rpc:queued";
                (* decided at dequeue time, so queued work is never
                   executed for a dead client or past its deadline *)
                if conn_gone c then count_cancelled t c ~rid ~meth
                else if
                  deadline_ms > 0
                  && queue_wait_ms > float_of_int deadline_ms
                then begin
                  Reg.observe t.h_queue_wait queue_wait_ms;
                  count_timed_out t c ~rid ~meth;
                  let outcome =
                    Error
                      ( "timed_out",
                        Printf.sprintf
                          "request exceeded its %dms deadline while queued"
                          deadline_ms )
                  in
                  (* record before the response goes out, so a stats or
                     telemetry call pipelined right behind the response
                     already sees this request *)
                  let total_ms = now_ms () -. t_recv in
                  record_latency t total_ms;
                  respond t c ~id outcome;
                  log_request c ~rid ~meth ~outcome ~queue_wait_ms
                    ~service_ms:0.0 ~total_ms
                end
                else begin
                  Reg.observe t.h_queue_wait queue_wait_ms;
                  let outcome =
                    match
                      Trace.with_span ~tid:(Trace.domain_tid ())
                        ("rpc:" ^ meth)
                        (fun () -> handle t rq_request)
                    with
                    | outcome -> outcome
                    | exception e ->
                      Error ("internal_error", Printexc.to_string e)
                  in
                  (* record before the response goes out (same reason as
                     the timeout path); the write itself is not part of
                     the service time *)
                  let t_done = now_ms () in
                  Reg.observe t.h_service (t_done -. t_deq);
                  record_latency t (t_done -. t_recv);
                  respond t c ~id outcome;
                  if Trace.enabled () then
                    Trace.instant ~args:[ ("req", Json.Int rid) ]
                      ~tid:rtid "rpc:respond";
                  log_request c ~rid ~meth ~outcome ~queue_wait_ms
                    ~service_ms:(t_done -. t_deq)
                    ~total_ms:(t_done -. t_recv)
                end);
            conn_done_one c
          in
          (* admission control: keyed by connection (round-robin
             fairness); past the watermark shed rather than block *)
          match
            Pool.try_submit ~key:c.c_id ~watermark:t.shed_watermark t.pool
              job
          with
          | `Accepted -> ()
          | `Full ->
            if Trace.enabled () then Trace.end_span ~tid:rtid "rpc:queued";
            count_shed t c ~rid ~meth;
            respond t c ~id
              (Error
                 ( "overloaded",
                   Printf.sprintf
                     "queue at high-watermark (%d); request shed"
                     t.shed_watermark ));
            conn_done_one c
          | `Stopping ->
            if Trace.enabled () then Trace.end_span ~tid:rtid "rpc:queued";
            respond t c ~id
              (Error ("shutting_down", "server is shutting down"));
            conn_done_one c
      end);
      if not (Atomic.get t.stopping) then loop ()
  in
  (try loop () with _ -> ());
  conn_reader_done t c

(* ---------------------------------------------------------------- *)
(* Accept loop                                                       *)
(* ---------------------------------------------------------------- *)

(** Serve until a [shutdown] request (or {!request_shutdown}) arrives:
    accepts connections, drains outstanding work, closes everything,
    removes the socket file. *)
let serve (t : t) : unit =
  if Log.enabled Log.Info then
    Log.log Log.Info "listening"
      [
        ("socket", Json.Str t.socket_path);
        ("workers", Json.Int (Pool.size t.pool));
      ];
  let rec accept_loop () =
    if not (Atomic.get t.stopping) then begin
      match Unix.accept t.listen_fd with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error _ -> ()  (* listener closed under us *)
      | fd, _ ->
        if Atomic.get t.stopping then
          try Unix.close fd with Unix.Unix_error _ -> ()
        else begin
          let c =
            {
              c_id = t.conns_total;
              c_fd = fd;
              c_wmutex = Mutex.create ();
              c_alive = true;
              c_pending = 0;
              c_eof = false;
              c_closed = false;
              c_served = 0;
            }
          in
          Mutex.lock t.st_mutex;
          t.conns_total <- t.conns_total + 1;
          t.conns <- c :: t.conns;
          Mutex.unlock t.st_mutex;
          if Log.enabled Log.Debug then
            Log.log Log.Debug "conn_open" [ ("conn", Json.Int c.c_id) ];
          let th = Thread.create (fun () -> reader_loop t c) () in
          Mutex.lock t.st_mutex;
          t.threads <- th :: t.threads;
          Mutex.unlock t.st_mutex;
          accept_loop ()
        end
    end
  in
  accept_loop ();
  (* intake over: answer everything already accepted ... *)
  Pool.shutdown t.pool;
  (* ... then unblock readers still waiting for request lines *)
  Mutex.lock t.st_mutex;
  let conns = t.conns and threads = t.threads in
  Mutex.unlock t.st_mutex;
  List.iter
    (fun c ->
      try Unix.shutdown c.c_fd Unix.SHUTDOWN_RECEIVE
      with Unix.Unix_error _ -> ())
    conns;
  List.iter Thread.join threads;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink t.socket_path with Unix.Unix_error _ | Sys_error _ -> ());
  if Log.enabled Log.Info then
    Log.log Log.Info "shutdown"
      [
        ("socket", Json.Str t.socket_path);
        ("conns_total", Json.Int t.conns_total);
        ("responses", Json.Int (Reg.counter_value t.m_responses));
      ];
  (* [create] turned the runtime instruments on for the daemon's
     lifetime; release on the way out. *)
  Reg.release_runtime ()

(** {!create} + {!serve} on a background thread — the in-process form
    the tests and benches use.  {!wait} joins it. *)
let start ?workers ?queue_capacity ?shed_watermark ?default_deadline_ms
    ~socket () : t =
  let t =
    create ?workers ?queue_capacity ?shed_watermark ?default_deadline_ms
      ~socket ()
  in
  t.serve_thread <- Some (Thread.create (fun () -> serve t) ());
  t

let wait (t : t) : unit =
  match t.serve_thread with Some th -> Thread.join th | None -> ()

(** {!request_shutdown} + {!wait}. *)
let stop (t : t) : unit =
  request_shutdown t;
  wait t
